package hwclock

import (
	"sync"
	"testing"
	"time"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"mmtimer", MMTimerConfig(16), true},
		{"ideal", IdealConfig(4), true},
		{"zero hz", Config{TickHz: 0, Nodes: 1}, false},
		{"zero nodes", Config{TickHz: 1000, Nodes: 0}, false},
		{"negative latency", Config{TickHz: 1000, Nodes: 1, ReadLatencyTicks: -1}, false},
		{"negative jitter", Config{TickHz: 1000, Nodes: 1, JitterTicks: -3}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.cfg.Validate()
			if (err == nil) != c.ok {
				t.Errorf("Validate(%+v) = %v, want ok=%v", c.cfg, err, c.ok)
			}
		})
	}
}

func TestNowAdvances(t *testing.T) {
	d := New(IdealConfig(1))
	a := d.Now()
	time.Sleep(time.Millisecond)
	b := d.Now()
	if b <= a {
		t.Fatalf("Now did not advance: %d then %d", a, b)
	}
}

func TestNodeReadStrictlyMonotonicPerNode(t *testing.T) {
	d := New(Config{TickHz: 1_000_000_000, Nodes: 2, JitterTicks: 100, MaxOffsetTicks: 50, Seed: 1})
	for node := 0; node < 2; node++ {
		last := d.NodeRead(node)
		for i := 0; i < 2000; i++ {
			v := d.NodeRead(node)
			if v <= last {
				t.Fatalf("node %d read went backwards: %d then %d", node, last, v)
			}
			last = v
		}
	}
}

func TestNodeReadMonotonicUnderConcurrency(t *testing.T) {
	d := New(Config{TickHz: 1_000_000_000, Nodes: 1, JitterTicks: 20, Seed: 9})
	const workers = 8
	var wg sync.WaitGroup
	bad := make(chan int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := int64(-1)
			for i := 0; i < 1000; i++ {
				v := d.NodeRead(0)
				if v <= last {
					bad <- v
					return
				}
				last = v
			}
		}()
	}
	wg.Wait()
	close(bad)
	if v, ok := <-bad; ok {
		t.Fatalf("concurrent reads of one register not strictly monotonic (saw %d)", v)
	}
}

func TestOffsetsWithinBound(t *testing.T) {
	const bound = 500
	d := New(Config{TickHz: 1_000_000_000, Nodes: 32, MaxOffsetTicks: bound, Seed: 11})
	nonzero := 0
	for i := 0; i < d.Nodes(); i++ {
		off := d.TrueOffset(i)
		if off < -bound || off > bound {
			t.Errorf("node %d offset %d outside ±%d", i, off, bound)
		}
		if off != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Error("all 32 offsets are zero; offset injection appears broken")
	}
}

func TestZeroOffsetConfigHasZeroOffsets(t *testing.T) {
	d := New(MMTimerConfig(8))
	for i := 0; i < d.Nodes(); i++ {
		if d.TrueOffset(i) != 0 {
			t.Fatalf("perfectly synchronized config has nonzero offset on node %d", i)
		}
	}
}

func TestReadLatencyIsPhysical(t *testing.T) {
	// 1 MHz, 100-tick latency → each read must take ≥ 100 µs.
	d := New(Config{TickHz: 1_000_000, Nodes: 1, ReadLatencyTicks: 100})
	start := time.Now()
	const reads = 10
	for i := 0; i < reads; i++ {
		d.NodeRead(0)
	}
	if el := time.Since(start); el < reads*100*time.Microsecond {
		t.Errorf("%d reads took %v, want ≥ %v", reads, el, reads*100*time.Microsecond)
	}
}

func TestNodeReadTracksTrueTime(t *testing.T) {
	d := New(Config{TickHz: 1_000_000_000, Nodes: 4, MaxOffsetTicks: 100, JitterTicks: 30, Seed: 5})
	worst := d.Config().MaxErrorTicks()
	for node := 0; node < 4; node++ {
		for i := 0; i < 100; i++ {
			before := d.Now()
			v := d.NodeRead(node)
			after := d.Now()
			if v < before-worst || v > after+worst {
				t.Fatalf("node %d read %d outside [%d, %d] ± %d", node, v, before, after, worst)
			}
		}
	}
}

func TestMaxErrorTicks(t *testing.T) {
	c := Config{TickHz: 1000, Nodes: 1, MaxOffsetTicks: 40, JitterTicks: 7}
	if got := c.MaxErrorTicks(); got != 48 {
		t.Errorf("MaxErrorTicks = %d, want 40+7+1 = 48", got)
	}
}

func TestTickPeriod(t *testing.T) {
	d := New(Config{TickHz: 20_000_000, Nodes: 1})
	if got := d.TickPeriod(); got != 50*time.Nanosecond {
		t.Errorf("20 MHz tick period = %v, want 50ns", got)
	}
}
