// Package rstmval is a validating STM baseline in the style the paper
// attributes to RSTM (§1.2): single-version objects, invisible reads, and
// consistency maintained by validation — re-checking that every previously
// read object is unchanged — on each access.
//
// Naive per-access validation costs O(reads so far), so the total read
// overhead grows quadratically with transaction size. RSTM's heuristic
// bounds this: a global "commit counter" counts attempted commits of update
// transactions; a transaction revalidates only when the counter has moved
// since its last check. The price is exactly what §1.2 points out: the
// counter must be read on every object access, so even fully disjoint
// updates drag a shared cache line through every reader — the
// reproduction's baselines experiment measures that effect against LSA-RT.
package rstmval

import (
	"errors"
	"sync/atomic"
)

// ErrAborted signals that the transaction attempt failed and was retried.
var ErrAborted = errors.New("rstmval: transaction aborted")

// ErrReadOnly is returned by Write inside a read-only transaction.
var ErrReadOnly = errors.New("rstmval: write inside read-only transaction")

// STM is a validating-STM universe with its global commit counter.
type STM struct {
	_  [64]byte
	cc atomic.Int64 // attempted update commits
	_  [64]byte
}

// New creates a universe.
func New() *STM { return &STM{} }

// CommitCounter exposes the heuristic counter, for tests.
func (s *STM) CommitCounter() int64 { return s.cc.Load() }

// Object is a single-version cell: a versioned lock word (version<<1|locked)
// and the value.
type Object struct {
	meta atomic.Int64
	val  atomic.Pointer[any]
}

// NewObject creates an object at version 0 holding initial.
func NewObject(initial any) *Object {
	o := &Object{}
	v := initial
	o.val.Store(&v)
	return o
}

func locked(meta int64) bool { return meta&1 == 1 }

// Tx is one transaction attempt.
type Tx struct {
	stm      *STM
	readOnly bool
	lastCC   int64
	reads    []readEntry
	writes   []writeEntry
	windex   map[*Object]int
}

type readEntry struct {
	obj  *Object
	meta int64 // version word observed at first read
}

type writeEntry struct {
	obj *Object
	val any
}

// Read opens the object, revalidating the read set first if the commit
// counter indicates system progress since the last check.
func (tx *Tx) Read(o *Object) (any, error) {
	if idx, ok := tx.windex[o]; ok {
		return tx.writes[idx].val, nil
	}
	// The heuristic: read the global counter on *every* access; skip
	// validation while it is unchanged.
	if cc := tx.stm.cc.Load(); cc != tx.lastCC {
		if !tx.validate() {
			return nil, ErrAborted
		}
		tx.lastCC = cc
	}
	m1 := o.meta.Load()
	if locked(m1) {
		return nil, ErrAborted
	}
	vp := o.val.Load()
	if o.meta.Load() != m1 {
		return nil, ErrAborted
	}
	tx.reads = append(tx.reads, readEntry{obj: o, meta: m1})
	return *vp, nil
}

// validate checks that every read object is unchanged (and unlocked).
func (tx *Tx) validate() bool {
	for _, r := range tx.reads {
		m := r.obj.meta.Load()
		if m != r.meta {
			if _, own := tx.windex[r.obj]; own && m == r.meta|1 {
				continue // locked by ourselves during commit
			}
			return false
		}
	}
	return true
}

// Write buffers the new value; it becomes visible at commit.
func (tx *Tx) Write(o *Object, val any) error {
	if tx.readOnly {
		return ErrReadOnly
	}
	if idx, ok := tx.windex[o]; ok {
		tx.writes[idx].val = val
		return nil
	}
	tx.writes = append(tx.writes, writeEntry{obj: o, val: val})
	if tx.windex == nil {
		tx.windex = make(map[*Object]int, 8)
	}
	tx.windex[o] = len(tx.writes) - 1
	return nil
}

// commit locks the write set, signals progress on the commit counter,
// validates the read set, and installs the new values.
func (tx *Tx) commit() error {
	if len(tx.writes) == 0 {
		// Read-only (or write-free) transactions validated incrementally;
		// one final check makes the snapshot current at commit.
		if !tx.validate() {
			return ErrAborted
		}
		return nil
	}
	lockedUpTo := -1
	for i := range tx.writes {
		o := tx.writes[i].obj
		m := o.meta.Load()
		if locked(m) || !o.meta.CompareAndSwap(m, m|1) {
			tx.unlock(lockedUpTo)
			return ErrAborted
		}
		lockedUpTo = i
	}
	// Announce the attempted commit: this is what other transactions'
	// heuristics poll.
	tx.stm.cc.Add(1)
	if !tx.validate() {
		tx.unlock(lockedUpTo)
		return ErrAborted
	}
	for i := range tx.writes {
		w := &tx.writes[i]
		v := w.val
		w.obj.val.Store(&v)
		w.obj.meta.Store((w.obj.meta.Load() >> 1 << 1) + 2) // version+1, unlocked
	}
	return nil
}

// unlock releases write locks [0..upTo] after a failed commit.
func (tx *Tx) unlock(upTo int) {
	for i := 0; i <= upTo; i++ {
		o := tx.writes[i].obj
		o.meta.Store(o.meta.Load() &^ 1)
	}
}

// Thread is a worker context (API-compatible shape with the core engine).
type Thread struct {
	stm *STM
}

// Thread creates a worker context.
func (s *STM) Thread(id int) *Thread { return &Thread{stm: s} }

// Run executes fn transactionally, retrying on aborts.
func (t *Thread) Run(fn func(*Tx) error) error { return t.run(false, fn) }

// RunReadOnly executes fn as a read-only transaction (writes rejected).
func (t *Thread) RunReadOnly(fn func(*Tx) error) error { return t.run(true, fn) }

func (t *Thread) run(readOnly bool, fn func(*Tx) error) error {
	for {
		tx := &Tx{stm: t.stm, readOnly: readOnly, lastCC: t.stm.cc.Load()}
		err := fn(tx)
		if err == nil {
			err = tx.commit()
		}
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrAborted) {
			return err
		}
	}
}
