// Package durable wraps any registered STM engine into a recoverable store:
// a write-ahead log of redo records plus a compacting snapshot, replayed at
// construction, turn a crash back into the last acknowledged state.
//
// # Design
//
// The wrapper is engine-agnostic — it never sees a backend's internals, only
// the Engine/Thread/Txn surface — so the commit order it journals must come
// from the inner engine itself. It does this with a ticket cell: a hidden
// transactional cell holding the last assigned commit sequence number. The
// first write of every transaction read-increments the ticket inside the
// same transaction, so the inner engine's own serializability totally orders
// tickets consistently with every data write; an aborted attempt discards
// its ticket write, so sequence numbers stay dense. After the inner commit
// returns, the thread hands its redo record to the log's sequencer, which
// admits appends strictly in ticket order — the on-disk log is therefore
// always a seq-dense prefix of the commit order, and recovery treats a gap
// as corruption. The ticket makes every pair of update transactions
// conflict; that contention is the engine-agnostic durability tax, and
// read-only transactions never pay it.
//
// Recovery runs inside Wrap, before the application creates any cell: the
// snapshot (if present) and every segment above its watermark are folded
// into a cellID → value map, a torn final record is truncated (never
// refused), and NewCell substitutes the recovered value for the caller's
// initial. The contract is that the application creates its cells in a
// deterministic order across restarts — cmd/stmserve creates its whole
// keyspace at boot, in key order, before serving.
//
// Redo records carry typed val.Value payloads, so only WAL-serializable
// values may be written through a durable engine: the numeric lane plus
// boxed nil, bool, string, float64 and []byte. Writes of anything else fail
// at Write time with ErrUnsupportedPayload, before a commit can happen.
package durable

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/val"
)

// defaultSnapshotBytes triggers compaction after 8 MiB of appended redo
// records.
const defaultSnapshotBytes = 8 << 20

// snapThreadID is the inner-engine worker id of the snapshot capture
// thread, far above any real worker's dense 0..N−1 ids.
const snapThreadID = 1 << 16

// Options parameterize Wrap. The zero value is usable: a temp WAL
// directory, group-commit fsync, 8 MiB compaction threshold.
type Options struct {
	// Dir is the WAL directory. Empty creates a fresh temp directory —
	// durability within the process run only (benches, conformance); real
	// recovery needs a path that survives restarts.
	Dir string
	// Fsync is FsyncAlways, FsyncGroup or FsyncNever ("" = group).
	Fsync string
	// SnapshotBytes of appended redo records trigger a background snapshot
	// compaction. 0 selects the 8 MiB default; negative disables
	// compaction.
	SnapshotBytes int64
	// SegmentBytes rotates log segments (0 = 4 MiB default).
	SegmentBytes int64
	// GroupInterval bounds the group-commit flush wait (0 = 2 ms default).
	GroupInterval time.Duration
	// Crash arms the deterministic fault-injection seam (nil = no faults).
	Crash *Crashpoints
}

// Engine wraps an inner engine with the WAL. It implements engine.Engine
// and engine.Durable.
type Engine struct {
	inner engine.Engine
	name  string
	log   *Log
	opt   Options
	info  engine.DurabilityInfo

	mu        sync.Mutex
	cells     []engine.Cell
	recovered map[uint64]val.Value // never mutated after Wrap

	seqCell engine.Cell // the ticket cell, on the inner engine

	bytesSince atomic.Int64
	compacting atomic.Bool
	compactWG  sync.WaitGroup
	snapOnce   sync.Once
	snapThread engine.Thread
}

// Wrap recovers the WAL directory's state and returns a durable engine over
// inner. Recovery happens here — before the first NewCell — so the caller
// must not have created any cell on inner yet, and must create its cells in
// the same order as the run that produced the log.
func Wrap(inner engine.Engine, opt Options) (*Engine, error) {
	dir := opt.Dir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "durable-wal-"); err != nil {
			return nil, err
		}
	}
	rec, err := recoverDir(dir)
	if err != nil {
		return nil, err
	}
	if opt.SnapshotBytes == 0 {
		opt.SnapshotBytes = defaultSnapshotBytes
	}
	e := &Engine{
		inner:     inner,
		name:      "durable/" + inner.Name(),
		opt:       opt,
		recovered: rec.values,
	}
	// The ticket cell is created before any application cell and resumes
	// from the recovered sequence, so commit numbering continues densely
	// across restarts.
	e.seqCell = inner.NewCell(int64(rec.lastSeq))
	l, err := openLog(logConfig{
		dir:           dir,
		policy:        opt.Fsync,
		segmentBytes:  opt.SegmentBytes,
		groupInterval: opt.GroupInterval,
		startSeq:      rec.lastSeq + 1,
		crash:         opt.Crash,
	})
	if err != nil {
		return nil, err
	}
	e.log = l
	e.info = engine.DurabilityInfo{
		WALDir:           dir,
		FsyncPolicy:      l.cfg.policy,
		RecoveredCommits: rec.commits,
		RecoveredSeq:     rec.lastSeq,
		SnapshotSeq:      rec.snapSeq,
		TornTailBytes:    rec.tornBytes,
	}
	return e, nil
}

// dcell pairs the wrapper's stable cell id (the WAL's key) with the inner
// engine's handle.
type dcell struct {
	id    uint64
	inner engine.Cell
}

// Name returns "durable/<inner name>".
func (e *Engine) Name() string { return e.name }

// NewCell allocates the next cell id and substitutes the recovered value
// for initial when the log knows one. Ids are assigned in creation order —
// the deterministic-creation-order contract recovery depends on.
func (e *Engine) NewCell(initial any) engine.Cell {
	e.mu.Lock()
	id := uint64(len(e.cells))
	if v, ok := e.recovered[id]; ok {
		initial = v.Load()
	}
	c := e.inner.NewCell(initial)
	e.cells = append(e.cells, c)
	e.mu.Unlock()
	return &dcell{id: id, inner: c}
}

// Thread wraps an inner thread with the journaling transaction runner.
func (e *Engine) Thread(id int) engine.Thread {
	return &dthread{e: e, inner: e.inner.Thread(id)}
}

// Stats delegates to the inner engine (snapshot-capture transactions are
// counted like any other read-only commit).
func (e *Engine) Stats() engine.Stats { return e.inner.Stats() }

// DurabilityInfo reports the persistence configuration and what recovery
// found at boot.
func (e *Engine) DurabilityInfo() engine.DurabilityInfo { return e.info }

// WALSync forces buffered records to stable storage regardless of policy.
func (e *Engine) WALSync() error { return e.log.Sync() }

// WALClose flushes, syncs and closes the log after waiting out any
// in-flight compaction. The engine stays readable; update transactions fail
// from here on. Idempotent.
func (e *Engine) WALClose() error {
	e.compactWG.Wait()
	return e.log.Close()
}

// Crashed returns the sticky crash error, or nil. After a crashpoint or
// I/O error the in-memory engine may be ahead of the disk image, so every
// transaction is refused; discard the engine and Wrap a fresh one over the
// same directory.
func (e *Engine) Crashed() error { return e.log.Err() }

// maybeCompact starts a background snapshot when enough redo bytes
// accumulated since the last one (single-flight).
func (e *Engine) maybeCompact() {
	if e.opt.SnapshotBytes < 0 || e.bytesSince.Load() < e.opt.SnapshotBytes {
		return
	}
	if !e.compacting.CompareAndSwap(false, true) {
		return
	}
	e.compactWG.Add(1)
	go func() {
		defer e.compactWG.Done()
		defer e.compacting.Store(false)
		e.compact()
	}()
}

// compact captures a consistent snapshot and installs it. The capture is
// one read-only inner transaction over the ticket cell and every data cell:
// serializability makes the ticket value s the exact watermark of the
// captured state (every commit ≤ s is in it, nothing above s is). Cells can
// be created concurrently, so after the capture returns the cell count is
// re-checked: if it grew, a commit ≤ s could have written a cell the
// capture missed (its NewCell, which appends under mu, happened before that
// commit, which happened before the capture returned — so the growth is
// visible here), and the capture retries over the larger set. Compaction is
// an optimization, so after bounded retries it simply gives up until the
// next trigger.
func (e *Engine) compact() {
	if e.log.Err() != nil {
		return
	}
	e.snapOnce.Do(func() { e.snapThread = e.inner.Thread(snapThreadID) })
	for try := 0; try < 8; try++ {
		e.mu.Lock()
		n := len(e.cells)
		cells := make([]engine.Cell, n)
		copy(cells, e.cells)
		e.mu.Unlock()

		var watermark int64
		vals := make([]val.Value, n)
		err := e.snapThread.RunReadOnly(func(tx engine.Txn) error {
			s, err := engine.Get[int64](tx, e.seqCell)
			if err != nil {
				return err
			}
			watermark = s
			for i, c := range cells {
				v, err := tx.Read(c)
				if err != nil {
					return err
				}
				vals[i] = val.OfAny(v)
			}
			return nil
		})
		if err != nil {
			return
		}
		e.mu.Lock()
		grown := len(e.cells) > n
		e.mu.Unlock()
		if grown {
			continue
		}

		entries := make([]writeEntry, 0, n)
		for i, v := range vals {
			if !EncodableValue(v) {
				// A cell was created with a non-serializable initial and
				// never overwritten; it cannot be snapshotted, so keep
				// replaying the log instead.
				return
			}
			entries = append(entries, writeEntry{id: uint64(i), v: v})
		}
		// Recovered cells the application has not re-created yet still
		// belong to the durable state: fold them in so compaction never
		// drops them.
		for id, v := range e.recovered {
			if id >= uint64(n) {
				entries = append(entries, writeEntry{id: id, v: v})
			}
		}
		if e.log.WriteSnapshot(uint64(watermark), entries) == nil {
			e.bytesSince.Store(0)
		}
		return
	}
}

// dthread is the journaling thread wrapper: it runs the caller's closure
// over a journaling transaction, and after the inner commit hands the redo
// record to the log sequencer.
type dthread struct {
	e       *Engine
	inner   engine.Thread
	tx      dtxn
	scratch []byte
}

func (t *dthread) ID() int { return t.inner.ID() }

// Attempts implements engine.AttemptCounter by delegation.
func (t *dthread) Attempts() uint64 {
	if ac, ok := t.inner.(engine.AttemptCounter); ok {
		return ac.Attempts()
	}
	return 0
}

var framePad [frameHeaderLen]byte

func (t *dthread) Run(fn func(engine.Txn) error) error {
	if err := t.e.log.Err(); err != nil {
		return err
	}
	tx := &t.tx
	err := t.inner.Run(func(itx engine.Txn) error {
		tx.reset(t.e, itx)
		return fn(tx)
	})
	if err != nil {
		return err
	}
	if tx.seq == 0 {
		return nil // no writes: nothing to journal
	}
	// The inner commit succeeded; the record MUST reach the sequencer, or
	// every later ticket waits forever. Encoding cannot fail here (Write
	// screened every payload), so an error is an internal invariant break:
	// wedge the log so waiters wake instead of hanging.
	b := append(t.scratch[:0], framePad[:]...)
	b, encErr := appendCommitPayload(b, tx.seq, tx.writes)
	t.scratch = b[:0]
	if encErr != nil {
		t.e.log.mu.Lock()
		t.e.log.fail(fmt.Errorf("durable: committed payload became unencodable: %w", encErr))
		t.e.log.mu.Unlock()
		return encErr
	}
	n, err := t.e.log.Commit(tx.seq, b)
	if err != nil {
		return err
	}
	t.e.bytesSince.Add(n)
	t.e.maybeCompact()
	return nil
}

func (t *dthread) RunReadOnly(fn func(engine.Txn) error) error {
	if err := t.e.log.Err(); err != nil {
		return err
	}
	tx := &t.tx
	return t.inner.RunReadOnly(func(itx engine.Txn) error {
		tx.reset(t.e, itx)
		return fn(tx)
	})
}

// dtxn is the journaling transaction: reads pass through; writes screen the
// payload for WAL-serializability, take the commit ticket on first use, and
// buffer the redo entry.
type dtxn struct {
	e      *Engine
	itx    engine.Txn
	iint   engine.IntTxn // itx's lane, nil if absent
	seq    uint64
	writes []writeEntry
}

func (t *dtxn) reset(e *Engine, itx engine.Txn) {
	t.e = e
	t.itx = itx
	t.iint, _ = itx.(engine.IntTxn)
	t.seq = 0
	t.writes = t.writes[:0]
}

// ticket read-increments the sequence cell inside the transaction — the
// serialization-order ticket (see the package comment).
func (t *dtxn) ticket() error {
	if t.seq != 0 {
		return nil
	}
	// Refuse before the inner engine can commit: after a crash the memory
	// image is untrustworthy, and after an orderly close an update would
	// commit in memory with no journal entry.
	if err := t.e.log.usable(); err != nil {
		return err
	}
	s, err := engine.Get[int64](t.itx, t.e.seqCell)
	if err != nil {
		return err
	}
	if err := engine.Set(t.itx, t.e.seqCell, s+1); err != nil {
		return err
	}
	t.seq = uint64(s) + 1
	return nil
}

func (t *dtxn) Read(c engine.Cell) (any, error) {
	return t.itx.Read(c.(*dcell).inner)
}

func (t *dtxn) Write(c engine.Cell, v any) error {
	dc := c.(*dcell)
	w := val.OfAny(v)
	if !EncodableValue(w) {
		return fmt.Errorf("%w: %T", ErrUnsupportedPayload, v)
	}
	if err := t.ticket(); err != nil {
		return err
	}
	if err := t.itx.Write(dc.inner, v); err != nil {
		return err
	}
	t.writes = append(t.writes, writeEntry{id: dc.id, v: w})
	return nil
}

func (t *dtxn) ReadInt(c engine.Cell) (int64, bool, error) {
	if t.iint == nil {
		return 0, false, nil
	}
	return t.iint.ReadInt(c.(*dcell).inner)
}

func (t *dtxn) WriteInt(c engine.Cell, v int64) error {
	dc := c.(*dcell)
	if err := t.ticket(); err != nil {
		return err
	}
	if t.iint == nil {
		// Lane writes have canonical dynamic type int; mirror that through
		// the boxed fallback.
		if err := t.itx.Write(dc.inner, int(v)); err != nil {
			return err
		}
	} else if err := t.iint.WriteInt(dc.inner, v); err != nil {
		return err
	}
	t.writes = append(t.writes, writeEntry{id: dc.id, v: val.OfInt(int(v))})
	return nil
}

func (t *dtxn) UpdateInt(c engine.Cell, f func(int64) int64) (bool, error) {
	n, ok, err := t.ReadInt(c)
	if !ok || err != nil {
		return ok, err
	}
	return true, t.WriteInt(c, f(n))
}

// Wrapped lists the inner backends registered as "durable/<name>" wrappers.
var Wrapped = []string{"glock", "lsa/shared", "norec"}

func init() {
	for _, base := range Wrapped {
		base := base
		info, ok := engine.Describe(base)
		if !ok {
			panic(fmt.Sprintf("durable: base engine %q not registered", base))
		}
		caps := info.Capabilities
		caps.Durable = true
		caps.Tunables = append(append([]string{}, caps.Tunables...), "wal", "fsync", "snapshot")
		engine.Register("durable/"+base, engine.Info{
			Summary:      "recoverable " + base + ": redo WAL + compacting snapshot, crash recovery on boot",
			Capabilities: caps,
		}, func(o engine.Options) (engine.Engine, error) {
			inner, err := engine.New(base, o)
			if err != nil {
				return nil, err
			}
			return Wrap(inner, Options{
				Dir:           o.WALDir,
				Fsync:         o.Fsync,
				SnapshotBytes: o.SnapshotBytes,
			})
		})
	}
}
