package workload

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/engine"
)

func TestSkipHeightDistribution(t *testing.T) {
	counts := make([]int, skipMaxLevel+1)
	const n = 1 << 14
	for k := 0; k < n; k++ {
		h := skipHeight(k)
		if h < 1 || h > skipMaxLevel {
			t.Fatalf("skipHeight(%d) = %d, outside [1, %d]", k, h, skipMaxLevel)
		}
		counts[h]++
		if h != skipHeight(k) {
			t.Fatalf("skipHeight(%d) not deterministic", k)
		}
	}
	// Roughly geometric: about half the keys stay at level 1, and towers
	// above level 1 must exist at all (the index levels do something).
	if counts[1] < n/3 || counts[1] > 2*n/3 {
		t.Errorf("level-1 fraction %d/%d far from 1/2", counts[1], n)
	}
	tall := 0
	for h := 2; h <= skipMaxLevel; h++ {
		tall += counts[h]
	}
	if tall == 0 {
		t.Error("no towers above level 1; index levels are dead")
	}
}

func TestSkipListSequentialSemantics(t *testing.T) {
	eng := newEng(t)
	s := &SkipList{KeyRange: 64, InitialFill: -1}
	if err := s.Init(eng, 1); err != nil {
		t.Fatal(err)
	}
	th := eng.Thread(0)
	model := map[int]bool{}
	ops := []struct {
		op  string
		key int
	}{
		{"add", 5}, {"add", 3}, {"add", 9}, {"add", 5},
		{"rm", 3}, {"rm", 3}, {"add", 1}, {"rm", 9}, {"add", 7},
		{"add", 63}, {"add", 0}, {"rm", 5}, {"add", 5},
	}
	for i, op := range ops {
		switch op.op {
		case "add":
			got, err := s.Add(th, op.key)
			if err != nil {
				t.Fatal(err)
			}
			if want := !model[op.key]; got != want {
				t.Errorf("op %d add(%d) = %v, want %v", i, op.key, got, want)
			}
			model[op.key] = true
		case "rm":
			got, err := s.Remove(th, op.key)
			if err != nil {
				t.Fatal(err)
			}
			if want := model[op.key]; got != want {
				t.Errorf("op %d remove(%d) = %v, want %v", i, op.key, got, want)
			}
			delete(model, op.key)
		}
		for k := 0; k < 10; k++ {
			got, err := s.Contains(th, k)
			if err != nil {
				t.Fatal(err)
			}
			if got != model[k] {
				t.Errorf("op %d: contains(%d) = %v, want %v", i, k, got, model[k])
			}
		}
	}
	keys, err := s.Snapshot(th)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(keys) {
		t.Errorf("snapshot not sorted: %v", keys)
	}
	if len(keys) != len(model) {
		t.Errorf("snapshot size %d, want %d", len(keys), len(model))
	}
}

// TestSkipListTowersConsistent fills a list and checks every index level
// against the bottom level: each level must be a sorted subsequence of the
// level below, and each key's tower height must match skipHeight.
func TestSkipListTowersConsistent(t *testing.T) {
	eng := newEng(t)
	s := &SkipList{KeyRange: 256, InitialFill: 0.6, Seed: 5}
	if err := s.Init(eng, 1); err != nil {
		t.Fatal(err)
	}
	th := eng.Thread(0)
	bottom, err := s.Snapshot(th)
	if err != nil {
		t.Fatal(err)
	}
	inSet := map[int]bool{}
	for _, k := range bottom {
		inSet[k] = true
	}
	for lvl := 0; lvl < skipMaxLevel; lvl++ {
		var level []int
		if err := th.RunReadOnly(func(tx engine.Txn) error {
			level = level[:0]
			node, err := engine.Get[skipNode](tx, s.head)
			if err != nil {
				return err
			}
			for node.next[lvl] != nil {
				node, err = engine.Get[skipNode](tx, node.next[lvl])
				if err != nil {
					return err
				}
				if node.next[0] != nil { // not the tail sentinel
					level = append(level, node.key)
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if !sort.IntsAreSorted(level) {
			t.Fatalf("level %d not sorted: %v", lvl, level)
		}
		for _, k := range level {
			if !inSet[k] {
				t.Errorf("level %d holds key %d missing from bottom level", lvl, k)
			}
			if skipHeight(k) <= lvl {
				t.Errorf("key %d (height %d) linked at level %d", k, skipHeight(k), lvl)
			}
		}
	}
}

func TestSkipListConcurrent(t *testing.T) {
	for _, mk := range []func(*testing.T) engine.Engine{newEng, newClockEng} {
		eng := mk(t)
		s := &SkipList{KeyRange: 64, UpdateRatio: 0.6, Seed: 11}
		const workers, steps = 4, 150
		if err := s.Init(eng, workers); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				th := eng.Thread(id)
				step := s.Step(eng, th, id)
				for i := 0; i < steps; i++ {
					if err := step(); err != nil {
						t.Errorf("worker %d: %v", id, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		keys, err := s.Snapshot(eng.Thread(50))
		if err != nil {
			t.Fatal(err)
		}
		if !sort.IntsAreSorted(keys) {
			t.Errorf("skiplist not sorted after concurrency: %v", keys)
		}
		seen := map[int]bool{}
		for _, k := range keys {
			if seen[k] {
				t.Errorf("duplicate key %d", k)
			}
			seen[k] = true
			if k < 0 || k >= 64 {
				t.Errorf("key %d outside range", k)
			}
		}
	}
}
