package engine

import (
	"fmt"

	"repro/internal/timebase"
	"repro/internal/tl2"
	"repro/internal/val"
)

// The "tl2" backend: the lean single-version TL2 reimplementation on its
// classic shared-counter version clock. Read-only transactions keep no read
// set; readers that arrive too late abort instead of reading history.
//
// The "tl2/extsync" backend composes the same algorithm with the externally
// synchronized time base of §3.2 (the same device and deviation bound as
// "lsa/extsync"). The pairing isolates what multi-versioning buys under
// clock deviation: both engines pay the masked ⪰ comparisons, but where LSA
// serves an older version from history, single-version TL2 can only abort —
// the throughput gap between "tl2/extsync" and "lsa/extsync" is the Fig. 2
// question asked from the other side.
//
// The "tl2/sharded" backend runs the same algorithm on the sharded software
// counter (per-shard epochs, lazy cross-shard synchronization): commits bump
// an uncontended shard instead of the global version clock, at the price of
// a masked uncertainty window that — with no version history to fall back
// to — turns into aborts on freshly written objects.
func init() {
	tl2Info := func(summary string, tunables ...string) Info {
		return Info{
			Summary: summary,
			Capabilities: Capabilities{
				IntLane:        true,
				AttemptCounter: true,
				Tunables:       tunables,
			},
		}
	}
	Register("tl2", tl2Info("single-version TL2 on its classic shared version clock"),
		func(o Options) (Engine, error) {
			return &tl2Engine{name: "tl2", stm: tl2.New()}, nil
		})
	Register("tl2/extsync", tl2Info("single-version TL2 on the externally synchronized ±dev clock", "nodes", "deviation"),
		func(o Options) (Engine, error) {
			tb, err := newExtSyncTimeBase(o)
			if err != nil {
				return nil, err
			}
			return &tl2Engine{name: "tl2/extsync", stm: tl2.NewWithTimeBase(tb)}, nil
		})
	Register("tl2/sharded", tl2Info("single-version TL2 on the sharded software counter", "nodes", "shard-window"),
		func(o Options) (Engine, error) {
			tb := timebase.NewShardedCounter(o.Nodes, o.ShardWindow)
			return &tl2Engine{name: "tl2/sharded", stm: tl2.NewWithTimeBase(tb)}, nil
		})
}

type tl2Engine struct {
	name string
	stm  *tl2.STM
	counterSet
}

func (e *tl2Engine) Name() string { return e.name }

func (e *tl2Engine) NewCell(initial any) Cell { return tl2.NewObject(initial) }

// Thread builds the worker context (see adapterThread) with its retry
// closure and bound method values allocated once: per-transaction Run calls
// only swap the fn pointer, so the adapter layer adds zero allocations to
// the native engine's steady state.
func (e *tl2Engine) Thread(id int) Thread {
	th := e.stm.Thread(id)
	t := &adapterThread[*tl2.Tx]{
		id: id, counters: e.newCounters(),
		run: th.Run, runRO: th.RunReadOnly, boxed: th.BoxedCommits,
		reasons: th.AbortCounts,
	}
	t.step = func(tx *tl2.Tx) error {
		t.attempts++
		return t.fn(tl2Txn{tx})
	}
	return t
}

type tl2Txn struct {
	tx *tl2.Tx
}

func (t tl2Txn) Read(c Cell) (any, error)  { return t.tx.Read(tl2Cell(c)) }
func (t tl2Txn) Write(c Cell, v any) error { return t.tx.Write(tl2Cell(c), v) }

func (t tl2Txn) ReadInt(c Cell) (int64, bool, error) {
	v, err := t.tx.ReadValue(tl2Cell(c))
	if err != nil {
		return 0, false, err
	}
	n, ok := v.AsInt64()
	return n, ok, nil
}

func (t tl2Txn) WriteInt(c Cell, v int64) error {
	return t.tx.WriteValue(tl2Cell(c), val.OfInt(int(v)))
}

func (t tl2Txn) UpdateInt(c Cell, f func(int64) int64) (bool, error) {
	return updateIntVia(t, c, f)
}

func tl2Cell(c Cell) *tl2.Object {
	o, ok := c.(*tl2.Object)
	if !ok {
		panic(fmt.Sprintf("engine: cell of type %T used with the tl2 backend", c))
	}
	return o
}
