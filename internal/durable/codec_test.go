package durable

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/val"
)

// pair is the test codec's payload type: a tiny struct, the shape codecs
// exist to carry.
type pair struct{ x, y int32 }

func init() {
	RegisterCodec("test/pair", pair{},
		func(a any) ([]byte, error) {
			p := a.(pair)
			b := binary.LittleEndian.AppendUint32(nil, uint32(p.x))
			return binary.LittleEndian.AppendUint32(b, uint32(p.y)), nil
		},
		func(b []byte) (any, error) {
			if len(b) != 8 {
				return nil, errors.New("test/pair: want 8 bytes")
			}
			return pair{
				x: int32(binary.LittleEndian.Uint32(b[0:4])),
				y: int32(binary.LittleEndian.Uint32(b[4:8])),
			}, nil
		})
}

// TestCodecValueRoundTrip: a registered codec payload is encodable, encodes
// under its name, and decodes back to the exact value.
func TestCodecValueRoundTrip(t *testing.T) {
	want := pair{x: -3, y: 7}
	if !EncodableValue(val.OfAny(want)) {
		t.Fatal("EncodableValue(codec type) = false")
	}
	b, err := appendValue(nil, val.OfAny(want))
	if err != nil {
		t.Fatal(err)
	}
	got, rest, err := decodeValue(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("%d trailing bytes", len(rest))
	}
	if got.Load() != want {
		t.Errorf("round trip %#v → %#v", want, got.Load())
	}
}

// TestIntsCodecRoundTrip: the built-in "ints" codec (the one that carries
// the hash-set workload's buckets) round-trips sorted, unsorted, negative
// and empty slices exactly.
func TestIntsCodecRoundTrip(t *testing.T) {
	cases := [][]int{
		nil,
		{},
		{42},
		{1, 2, 3, 100, 10_000},
		{-5, -1, 0, 7},
		{9, 3, -20, 3}, // unsorted with a repeat: deltas go negative
	}
	for _, keys := range cases {
		b, err := appendValue(nil, val.OfAny(keys))
		if err != nil {
			t.Fatalf("%v: %v", keys, err)
		}
		got, rest, err := decodeValue(b)
		if err != nil {
			t.Fatalf("%v: %v", keys, err)
		}
		if len(rest) != 0 {
			t.Errorf("%v: %d trailing bytes", keys, len(rest))
		}
		dec := got.Load().([]int)
		if len(dec) != len(keys) {
			t.Fatalf("%v round-tripped to %v", keys, dec)
		}
		for i := range keys {
			if dec[i] != keys[i] {
				t.Fatalf("%v round-tripped to %v", keys, dec)
			}
		}
	}
}

// TestCodecUnknownNameRejected: a frame naming a codec this process never
// registered must fail decode with the name in the error — not panic, not
// silently drop the value.
func TestCodecUnknownNameRejected(t *testing.T) {
	name := "test/nobody-registered-this"
	b := []byte{tagCodec}
	b = binary.AppendUvarint(b, uint64(len(name)))
	b = append(b, name...)
	b = binary.AppendUvarint(b, 0)
	if _, _, err := decodeValue(b); err == nil || !strings.Contains(err.Error(), name) {
		t.Errorf("decodeValue = %v, want error naming %q", err, name)
	}
}

// TestCodecRecoveryRoundTrip: codec payloads written through a durable
// engine survive crash recovery — the full journal → recoverDir → NewCell
// substitution path, not just the value codec in isolation.
func TestCodecRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e := newTestEngine(t, "norec", dir, Options{})
	c := e.NewCell(pair{})
	th := e.Thread(0)
	want := pair{x: 11, y: -22}
	if err := th.Run(func(tx engine.Txn) error { return tx.Write(c, want) }); err != nil {
		t.Fatal(err)
	}
	if err := e.WALClose(); err != nil {
		t.Fatal(err)
	}

	e2 := newTestEngine(t, "norec", dir, Options{})
	c2 := e2.NewCell(pair{})
	var got any
	if err := e2.Thread(0).RunReadOnly(func(tx engine.Txn) error {
		v, err := tx.Read(c2)
		got = v
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("recovered %#v, want %#v", got, want)
	}
	if err := e2.WALClose(); err != nil {
		t.Fatal(err)
	}
}

// TestRegisterCodecCollisions: duplicate names and duplicate types both
// panic at registration.
func TestRegisterCodecCollisions(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	enc := func(any) ([]byte, error) { return nil, nil }
	dec := func([]byte) (any, error) { return nil, nil }
	mustPanic("dup name", func() { RegisterCodec("test/pair", struct{ z bool }{}, enc, dec) })
	mustPanic("dup type", func() { RegisterCodec("test/pair2", pair{}, enc, dec) })
	mustPanic("nil prototype", func() { RegisterCodec("test/nil", nil, enc, dec) })
}
