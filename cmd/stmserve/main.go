// Command stmserve serves transactional operations over any registered STM
// engine — the wire-facing face of the engine family (internal/stmserve).
// It is deliberately a thin shell: flags, listeners and signal handling
// live here; every transactional semantic lives in the service layer, which
// is tested without sockets.
//
//	stmserve -engine norec                          line protocol on :7070
//	stmserve -engine lsa/shared -conn-mode pool     bounded worker pool instead of thread-per-conn
//	stmserve -engine tl2 -http-api localhost:8080   plus the HTTP/JSON API (/op, /engines, /stats)
//	stmserve -engine norec/adaptive -stripes 16     engine tunables via the shared Options flags
//
// The two -conn-mode values are the experiment cmd/stmload exists to run:
// "thread" gives every connection its own engine thread (state grows with
// connections, no queueing), "pool" multiplexes all connections over
// -pool-workers long-lived threads (fixed state, queueing under load).
// SIGINT/SIGTERM shut down gracefully and print the per-op latency table
// and the engine's abort taxonomy.
//
// A durable engine can replicate. The primary streams its WAL to followers:
//
//	stmserve -engine durable/norec -wal ./p -repl-listen :7071 -repl-ack quorum
//	stmserve -engine durable/norec -wal ./f -listen :7170 -follow host:7071
//
// A follower serves reads but refuses updates until the PROMOTE op (or a
// dead primary's operator) seals its stream and brings it up as serving
// primary — cmd/stmload's -failover-audit drives exactly that and proves no
// quorum-acked commit was lost. STATS gains a "replication" block on both
// roles (follower count, lag in seqs and bytes, resyncs, reconnects).
//
// Runtime diagnostics match the other cmds: -cpuprofile/-memprofile/-trace
// write the standard Go profiles, -http serves expvar and pprof.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/diag"
	"repro/internal/durable"
	"repro/internal/engine"
	"repro/internal/replica"
	"repro/internal/stats"
	"repro/internal/stmserve"
)

func main() {
	var (
		listen      = flag.String("listen", ":7070", "line-protocol listen address")
		httpAPI     = flag.String("http-api", "", "also serve the HTTP/JSON API on this address (POST /op, GET /engines, /stats, /healthz)")
		engName     = flag.String("engine", "norec", "engine backend (see lsabench -list-engines)")
		keys        = flag.Int("keys", 1024, "keyspace size")
		initial     = flag.Int64("initial", 1000, "initial balance per key")
		connMode    = flag.String("conn-mode", stmserve.ModeThread, "connection-to-engine-thread mapping: thread|pool")
		poolWorkers = flag.Int("pool-workers", runtime.GOMAXPROCS(0), "engine threads in pool mode")
		replListen  = flag.String("repl-listen", "", "stream the WAL to followers on this address (primary role; durable engines only)")
		follow      = flag.String("follow", "", "replicate from the primary at this address (hot-standby role; durable engines only)")
		replAck     = flag.String("repl-ack", "none", "replication ack mode: none (commits ack locally) or quorum (client acks wait for -repl-quorum follower acks)")
		replQuorum  = flag.Int("repl-quorum", 1, "follower acks a commit needs in -repl-ack quorum mode")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		tracePath   = flag.String("trace", "", "write an execution trace to this file")
		httpAddr    = flag.String("http", "", "serve expvar and pprof on this address (e.g. localhost:6060)")
	)
	var opt engine.Options
	opt.BindFlags(flag.CommandLine)
	flag.Parse()
	if *replListen != "" && *follow != "" {
		fatal(fmt.Errorf("-repl-listen and -follow are mutually exclusive (a node is a primary or a follower, not both)"))
	}
	if *replAck != "none" && *replAck != "quorum" {
		fatal(fmt.Errorf("-repl-ack %q: want none or quorum", *replAck))
	}
	if *replAck == "quorum" && *replListen == "" {
		fatal(fmt.Errorf("-repl-ack quorum only applies to a primary (-repl-listen)"))
	}
	if *replQuorum < 1 {
		fatal(fmt.Errorf("-repl-quorum %d: must be ≥ 1", *replQuorum))
	}
	if opt.Nodes == 0 {
		// Engine threads are created per connection (thread mode) or per
		// pool worker; size the per-node time bases for the pool upper
		// bound and let larger ids share clocks modulo Nodes.
		opt.Nodes = *poolWorkers
	}

	stopDiag, err := diag.Start(diag.Flags{
		CPUProfile: *cpuProfile, MemProfile: *memProfile, Trace: *tracePath, HTTP: *httpAddr,
	})
	if err != nil {
		fatal(err)
	}

	eng, err := engine.New(*engName, opt)
	if err != nil {
		fatal(err)
	}
	if d, ok := eng.(engine.Durable); ok {
		// Recovery already ran inside engine.New (replay is part of
		// constructing a durable engine); report what it found before the
		// service repopulates the keyspace from the recovered cells.
		di := d.DurabilityInfo()
		fmt.Printf("stmserve: durable: wal=%s fsync=%s recovered %d commits (seq %d, snapshot %d, torn tail %d bytes)\n",
			di.WALDir, di.FsyncPolicy, di.RecoveredCommits, di.RecoveredSeq, di.SnapshotSeq, di.TornTailBytes)
	}
	svc, err := stmserve.New(eng, stmserve.Config{
		Keys: *keys, Initial: *initial, Mode: *connMode, PoolWorkers: *poolWorkers,
	})
	if err != nil {
		fatal(err)
	}
	diag.Publish("stmserve", func() any { return svc.Stats() })

	// Replication wiring: the shell adapts the replica layer onto the
	// service's hooks so internal/stmserve never imports internal/replica.
	var (
		prim   *replica.Primary
		foll   *replica.Follower
		replLn net.Listener
	)
	if *replListen != "" || *follow != "" {
		deng, ok := eng.(*durable.Engine)
		if !ok {
			fatal(fmt.Errorf("replication needs a durable engine (-engine durable/...), not %s", eng.Name()))
		}
		if *replListen != "" {
			quorum := 0
			if *replAck == "quorum" {
				quorum = *replQuorum
			}
			prim = replica.NewPrimary(deng, replica.PrimaryOptions{Quorum: quorum})
			replLn, err = net.Listen("tcp", *replListen)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("stmserve: primary: streaming WAL to followers on %s (ack=%s)\n", replLn.Addr(), *replAck)
			go func() {
				// The accept loop ends when shutdown closes the listener; that
				// error is the normal exit, not worth reporting.
				_ = prim.Serve(replLn)
			}()
			svc.SetReplStats(func() *stmserve.ReplStats {
				st := prim.Stats()
				return &stmserve.ReplStats{
					Role: "primary", AppendedSeq: st.AppendedSeq,
					Followers: st.Followers, MinAckedSeq: st.MinAckedSeq,
					LagSeqs: st.LagSeqs, LagBytes: st.LagBytes, Resyncs: st.Resyncs,
					Accepts: st.Accepts, Disconnects: st.Disconnects,
				}
			})
		} else {
			addr := *follow
			foll = replica.NewFollower(deng, func() (net.Conn, error) {
				return net.DialTimeout("tcp", addr, 5*time.Second)
			}, replica.FollowerOptions{})
			fmt.Printf("stmserve: hot standby following %s (updates refused until PROMOTE)\n", addr)
			svc.SetPromote(foll.Promote)
			svc.SetReplStats(func() *stmserve.ReplStats {
				st := foll.Stats()
				return &stmserve.ReplStats{
					Role: "follower", AppendedSeq: st.AppliedSeq,
					Connected: st.Connected, Reconnects: st.Reconnects,
					Snapshots: st.Snapshots, Promoted: st.Promoted,
				}
			})
		}
	}

	srv := stmserve.NewServer(svc)
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("stmserve: engine=%s keys=%d mode=%s listening on %s\n",
		eng.Name(), *keys, svc.Mode(), l.Addr())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	var httpSrv *http.Server
	if *httpAPI != "" {
		httpSrv = &http.Server{Addr: *httpAPI, Handler: stmserve.NewHTTPHandler(svc)}
		fmt.Printf("stmserve: HTTP/JSON API on %s\n", *httpAPI)
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "stmserve: http api:", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("stmserve: %v, shutting down\n", s)
	case err := <-serveErr:
		if err != nil && err != stmserve.ErrServerClosed {
			fatal(err)
		}
	}
	// Shutdown ordering matters: drain the line-protocol handlers (Shutdown
	// waits for every in-flight session), drain the HTTP API the same way,
	// and only then close the service — which flushes and closes the WAL as
	// its last step — so the stats table below is exact and every
	// acknowledged commit is on disk before the process exits.
	srv.Shutdown()
	if httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "stmserve: http api shutdown:", err)
		}
		cancel()
	}
	// Replication teardown before the WAL closes: the follower loop quiesces
	// (a no-op if it promoted), the primary stops tapping commits and drops
	// its streams.
	if foll != nil {
		foll.Close()
	}
	if prim != nil {
		replLn.Close()
		prim.Close()
	}
	if err := svc.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "stmserve: wal close:", err)
	}

	report(svc.Stats())
	if err := stopDiag(); err != nil {
		fatal(err)
	}
}

// report prints the shutdown summary: per-op service-side latency and the
// engine's abort taxonomy (exact now that the service is quiesced).
func report(st stmserve.Stats) {
	if st.Ops == 0 && st.Errs == 0 {
		fmt.Println("stmserve: no operations served")
		return
	}
	t := stats.NewTable("op", "ops", "errs", "p50", "p99", "p999")
	for _, op := range st.PerOp {
		p50, p99, p999 := "-", "-", "-"
		if s := op.Latency; s != nil {
			p50 = time.Duration(s.P50).String()
			p99 = time.Duration(s.P99).String()
			p999 = time.Duration(s.P999).String()
		}
		t.AddRowf(op.Op, op.Ops, op.Errs, p50, p99, p999)
	}
	fmt.Printf("\nstmserve: %d ops (%d errs), engine %s, mode %s\n%s",
		st.Ops, st.Errs, st.Engine, st.Mode, t.String())
	es := st.EngineStats
	fmt.Printf("engine: commits=%d aborts=%d (rate=%.4f) mix=%s\n",
		es.Commits, es.Aborts, es.AbortRate(), es.AbortMix())
	if data, err := json.Marshal(st); err == nil {
		fmt.Printf("stats: %s\n", data)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stmserve:", err)
	os.Exit(1)
}
