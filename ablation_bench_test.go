// Ablation benchmarks for the design choices DESIGN.md calls out: version
// history depth, validity-range extension, contention management policy,
// and snapshot isolation. These are not paper figures; they quantify the
// engine's own knobs.
package tstm_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/timebase"
)

// scanUnderUpdates runs one reader doing s-object read-only scans against
// one updater rewriting the table, and reports the reader's abort rate.
func scanUnderUpdates(b *testing.B, cfg core.Config, scan int) {
	b.Helper()
	rt := core.MustRuntime(cfg)
	objs := make([]*core.Object, scan)
	for i := range objs {
		objs[i] = core.NewObject(0)
	}
	var stop sync.WaitGroup
	done := make(chan struct{})
	stop.Add(1)
	go func() {
		defer stop.Done()
		th := rt.Thread(1)
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			o := objs[i%len(objs)]
			_ = th.Run(func(tx *core.Tx) error {
				v, err := tx.Read(o)
				if err != nil {
					return err
				}
				return tx.Write(o, v.(int)+1)
			})
		}
	}()
	reader := rt.Thread(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reader.RunReadOnly(func(tx *core.Tx) error {
			for k := 0; k < scan; k++ {
				if _, err := tx.Read(objs[k]); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(done)
	stop.Wait()
	rs := reader.Stats()
	b.ReportMetric(rs.AbortRate(), "reader-aborts/attempt")
}

// BenchmarkAblation_MaxVersions sweeps the history depth: deeper history
// lets read-only scans dodge concurrent updates (fewer retries per scan),
// at the cost of keeping old values alive.
func BenchmarkAblation_MaxVersions(b *testing.B) {
	for _, mv := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("versions=%d", mv), func(b *testing.B) {
			scanUnderUpdates(b, core.Config{
				TimeBase:    timebase.NewSharedCounter(),
				MaxVersions: mv,
			}, 64)
		})
	}
}

// BenchmarkAblation_Extension compares lazy-snapshot extension against the
// TL2-style no-extension mode on read-modify-write transactions whose
// snapshot frequently needs to grow.
func BenchmarkAblation_Extension(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "extension=on"
		if disable {
			name = "extension=off"
		}
		b.Run(name, func(b *testing.B) {
			rt := core.MustRuntime(core.Config{
				TimeBase:         timebase.NewSharedCounter(),
				DisableExtension: disable,
			})
			objs := make([]*core.Object, 16)
			for i := range objs {
				objs[i] = core.NewObject(0)
			}
			var wg sync.WaitGroup
			per := b.N/2 + 1
			b.ResetTimer()
			for id := 0; id < 2; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					th := rt.Thread(id)
					for i := 0; i < per; i++ {
						_ = th.Run(func(tx *core.Tx) error {
							for k := 0; k < 4; k++ {
								o := objs[(id*3+i+k*5)%len(objs)]
								v, err := tx.Read(o)
								if err != nil {
									return err
								}
								if err := tx.Write(o, v.(int)+1); err != nil {
									return err
								}
							}
							return nil
						})
					}
				}(id)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(rt.Stats().AbortRate(), "aborts/attempt")
			b.ReportMetric(float64(rt.Stats().Extensions)/float64(b.N), "extensions/tx")
		})
	}
}

// BenchmarkAblation_ContentionManagers compares the arbitration policies on
// a deliberately hot object.
func BenchmarkAblation_ContentionManagers(b *testing.B) {
	managers := []core.ContentionManager{
		contention.Aggressive{}, contention.Suicide{}, contention.Polite{},
		contention.Karma{}, contention.Timestamp{},
	}
	for _, m := range managers {
		b.Run("cm="+m.Name(), func(b *testing.B) {
			rt := core.MustRuntime(core.Config{
				TimeBase: timebase.NewSharedCounter(),
				Manager:  m,
			})
			hot := core.NewObject(0)
			var wg sync.WaitGroup
			per := b.N/4 + 1
			b.ResetTimer()
			for id := 0; id < 4; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					th := rt.Thread(id)
					for i := 0; i < per; i++ {
						_ = th.Run(func(tx *core.Tx) error {
							v, err := tx.Read(hot)
							if err != nil {
								return err
							}
							return tx.Write(hot, v.(int)+1)
						})
					}
				}(id)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(rt.Stats().AbortRate(), "aborts/attempt")
		})
	}
}

// BenchmarkAblation_SnapshotIsolation compares serializable and SI commits
// on read-heavy update transactions (large read set, single write): SI
// skips the read-set revalidation at commit.
func BenchmarkAblation_SnapshotIsolation(b *testing.B) {
	for _, si := range []bool{false, true} {
		name := "mode=serializable"
		if si {
			name = "mode=snapshot-isolation"
		}
		b.Run(name, func(b *testing.B) {
			rt := core.MustRuntime(core.Config{
				TimeBase:          timebase.NewSharedCounter(),
				SnapshotIsolation: si,
				MaxVersions:       8,
			})
			objs := make([]*core.Object, 64)
			for i := range objs {
				objs[i] = core.NewObject(0)
			}
			var wg sync.WaitGroup
			per := b.N/2 + 1
			b.ResetTimer()
			for id := 0; id < 2; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					th := rt.Thread(id)
					for i := 0; i < per; i++ {
						_ = th.Run(func(tx *core.Tx) error {
							// Read half the table, write one own-partition cell.
							for k := 0; k < 32; k++ {
								if _, err := tx.Read(objs[(k*2+id)%len(objs)]); err != nil {
									return err
								}
							}
							o := objs[(id*32+i%32)%len(objs)]
							v, err := tx.Read(o)
							if err != nil {
								return err
							}
							return tx.Write(o, v.(int)+1)
						})
					}
				}(id)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(rt.Stats().AbortRate(), "aborts/attempt")
		})
	}
}
