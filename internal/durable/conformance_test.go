package durable

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
)

// TestRegistryWrappers: every wrapped backend is registered as
// "durable/<base>" with truthful capability claims, and the registry
// factory honors the -wal/-fsync/-snapshot options.
func TestRegistryWrappers(t *testing.T) {
	for _, base := range Wrapped {
		name := "durable/" + base
		t.Run(name, func(t *testing.T) {
			info, ok := engine.Describe(name)
			if !ok {
				t.Fatalf("%s not registered", name)
			}
			if !info.Capabilities.Durable {
				t.Error("Durable capability not claimed")
			}
			baseInfo, _ := engine.Describe(base)
			if info.Capabilities.IntLane != baseInfo.Capabilities.IntLane ||
				info.Capabilities.MultiVersion != baseInfo.Capabilities.MultiVersion {
				t.Errorf("capabilities %+v diverge from base %+v", info.Capabilities, baseInfo.Capabilities)
			}
			for _, tun := range []string{"wal", "fsync", "snapshot"} {
				found := false
				for _, have := range info.Capabilities.Tunables {
					if have == tun {
						found = true
					}
				}
				if !found {
					t.Errorf("tunable %q not listed", tun)
				}
			}

			dir := t.TempDir()
			eng, err := engine.New(name, engine.Options{WALDir: dir, Fsync: FsyncAlways, SnapshotBytes: -1})
			if err != nil {
				t.Fatal(err)
			}
			d, ok := eng.(engine.Durable)
			if !ok {
				t.Fatal("engine does not implement engine.Durable")
			}
			if got := d.DurabilityInfo(); got.WALDir != dir || got.FsyncPolicy != FsyncAlways {
				t.Errorf("DurabilityInfo = %+v, want dir %s, policy always", got, dir)
			}
			// Capability claims verified against the live transaction.
			c := eng.NewCell(1)
			th := eng.Thread(0)
			if _, ok := th.(engine.AttemptCounter); ok != info.Capabilities.AttemptCounter {
				t.Errorf("AttemptCounter claim %v, thread says %v", info.Capabilities.AttemptCounter, ok)
			}
			if err := th.Run(func(tx engine.Txn) error {
				if _, ok := tx.(engine.IntTxn); ok != info.Capabilities.IntLane {
					t.Errorf("IntLane claim %v, transaction says %v", info.Capabilities.IntLane, ok)
				}
				return engine.Set(tx, c, 2)
			}); err != nil {
				t.Fatal(err)
			}
			if err := d.WALSync(); err != nil {
				t.Fatal(err)
			}
			if err := d.WALClose(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBankRecoveryRoundTrip is the in-process half of the headline proof:
// for every wrapped backend, a concurrent bank run closes cleanly (or is
// left mid-flight by a crashpoint elsewhere in this file), reboots from the
// same directory, and the conserved sum plus every acknowledged commit
// survive.
func TestBankRecoveryRoundTrip(t *testing.T) {
	const (
		nAccounts = 8
		nThreads  = 4
		initial   = 100
	)
	iters := 60
	if testing.Short() {
		iters = 15
	}
	for _, base := range Wrapped {
		for _, policy := range []string{FsyncAlways, FsyncGroup, FsyncNever} {
			t.Run("durable/"+base+"/"+policy, func(t *testing.T) {
				dir := t.TempDir()
				boot := func() (*Engine, []engine.Cell) {
					e := newTestEngine(t, base, dir, Options{Fsync: policy})
					cells := make([]engine.Cell, nAccounts)
					for i := range cells {
						cells[i] = e.NewCell(initial)
					}
					return e, cells
				}
				e, cells := boot()
				var commits atomic.Uint64
				var wg sync.WaitGroup
				for w := 0; w < nThreads; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						th := e.Thread(w)
						for i := 0; i < iters; i++ {
							from, to := (w+i)%nAccounts, (w+i+1)%nAccounts
							err := th.Run(func(tx engine.Txn) error {
								if err := engine.Update(tx, cells[from], func(n int) int { return n - 1 }); err != nil {
									return err
								}
								return engine.Update(tx, cells[to], func(n int) int { return n + 1 })
							})
							if err != nil {
								t.Error(err)
								return
							}
							commits.Add(1)
						}
					}(w)
				}
				wg.Wait()
				d := engine.Durable(e)
				if err := d.WALClose(); err != nil {
					t.Fatal(err)
				}

				e2, cells2 := boot()
				info := e2.DurabilityInfo()
				if info.RecoveredSeq != commits.Load() {
					t.Errorf("recovered seq %d, want %d (dense tickets, no gaps)", info.RecoveredSeq, commits.Load())
				}
				sum := 0
				th := e2.Thread(0)
				if err := th.RunReadOnly(func(tx engine.Txn) error {
					sum = 0
					for _, c := range cells2 {
						n, err := engine.Get[int](tx, c)
						if err != nil {
							return err
						}
						sum += n
					}
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				if sum != nAccounts*initial {
					t.Errorf("conserved sum %d, want %d", sum, nAccounts*initial)
				}
				// Read-your-committed-writes across the restart: one more
				// transfer, then its effect is visible.
				if err := th.Run(func(tx engine.Txn) error {
					return engine.Update(tx, cells2[0], func(n int) int { return n + 5 })
				}); err != nil {
					t.Fatal(err)
				}
				var got int
				if err := th.RunReadOnly(func(tx engine.Txn) error {
					var err error
					got, err = engine.Get[int](tx, cells2[0])
					return err
				}); err != nil {
					t.Fatal(err)
				}
				if err := e2.WALClose(); err != nil {
					t.Fatal(err)
				}
				e3, cells3 := boot()
				defer e3.WALClose()
				var after int
				if err := e3.Thread(0).RunReadOnly(func(tx engine.Txn) error {
					var err error
					after, err = engine.Get[int](tx, cells3[0])
					return err
				}); err != nil {
					t.Fatal(err)
				}
				if after != got {
					t.Errorf("read-your-writes across restart: %d, want %d", after, got)
				}
			})
		}
	}
}

// TestCrashpointConformance is the injected-fault half of the headline
// proof: for every wrapped backend and every crashpoint, a single-threaded
// bank run is killed mid-commit (or mid-compaction), the wedged engine is
// discarded, and a fresh boot from the directory restores a state that (a)
// conserves the sum, (b) contains every acknowledged commit, and (c) is an
// exact seq-dense prefix of the run (counter == recovered seq).
func TestCrashpointConformance(t *testing.T) {
	points := []string{
		CrashAfterPartialRecord,
		CrashAfterRecordBeforeSync,
		CrashMidSnapshotRename,
		CrashAfterSnapshotRename,
	}
	for _, base := range Wrapped {
		for _, point := range points {
			t.Run("durable/"+base+"/"+point, func(t *testing.T) {
				dir := t.TempDir()
				crash := &Crashpoints{}
				opt := Options{Crash: crash}
				snapshotPoint := point == CrashMidSnapshotRename || point == CrashAfterSnapshotRename
				if snapshotPoint {
					// Tiny threshold: the first commit triggers compaction,
					// whose crashpoint then wedges the log asynchronously.
					opt.SnapshotBytes = 1
				}
				e := newTestEngine(t, base, dir, opt)
				th := e.Thread(0)
				a, b, c := bankCells(e)

				lastAcked := 0
				armAt := 5
				var crashErr error
				for i := 1; i <= 200; i++ {
					if !snapshotPoint && i == armAt {
						crash.mu.Lock()
						switch point {
						case CrashAfterPartialRecord:
							crash.AfterPartialRecord = true
							crash.PartialBytes = 6
						case CrashAfterRecordBeforeSync:
							crash.AfterRecordBeforeSync = true
						}
						crash.mu.Unlock()
					}
					if snapshotPoint && i == armAt {
						crash.mu.Lock()
						if point == CrashMidSnapshotRename {
							crash.MidSnapshotRename = true
						} else {
							crash.AfterSnapshotRename = true
						}
						crash.mu.Unlock()
					}
					if err := transfer(th, a, b, c, i); err != nil {
						crashErr = err
						break
					}
					lastAcked = i
				}
				if crashErr == nil && snapshotPoint {
					// Compaction crashes asynchronously; wait it out, then
					// the next transfer must observe the wedged log.
					e.compactWG.Wait()
					crashErr = transfer(th, a, b, c, 201)
				}
				if !errors.Is(crashErr, ErrCrashed) {
					t.Fatalf("run never crashed: lastAcked=%d err=%v", lastAcked, crashErr)
				}
				if e.Crashed() == nil {
					t.Fatal("engine not wedged after crashpoint")
				}
				if crash.Fired() != point {
					t.Fatalf("fired %q, want %q", crash.Fired(), point)
				}

				// Discard the wedged engine; recover a fresh one.
				e2 := newTestEngine(t, base, dir, Options{})
				defer e2.WALClose()
				a2, b2, c2 := bankCells(e2)
				var av, bv, cv int
				if err := e2.Thread(0).RunReadOnly(func(tx engine.Txn) error {
					var err error
					if av, err = engine.Get[int](tx, a2); err != nil {
						return err
					}
					if bv, err = engine.Get[int](tx, b2); err != nil {
						return err
					}
					cv, err = engine.Get[int](tx, c2)
					return err
				}); err != nil {
					t.Fatal(err)
				}
				if av+bv != 2000 {
					t.Errorf("conserved sum %d+%d, want 2000", av, bv)
				}
				if cv < lastAcked {
					t.Errorf("acked commit lost: counter %d < last acked %d", cv, lastAcked)
				}
				info := e2.DurabilityInfo()
				if uint64(cv) != info.RecoveredSeq {
					t.Errorf("counter %d != recovered seq %d (not a dense prefix)", cv, info.RecoveredSeq)
				}
				if av != 1000-cv || bv != 1000+cv {
					t.Errorf("state a=%d b=%d not the seq-%d prefix", av, bv, cv)
				}
				if snapshotPoint && point == CrashAfterSnapshotRename && info.SnapshotSeq == 0 {
					t.Error("snapshot was installed but boot ignored it")
				}
			})
		}
	}
}

// TestConcurrentGroupCommitCrash: a crashpoint under concurrent load and
// group fsync still recovers every acknowledged commit — the group flush
// happens before the acknowledgment, so acked ⇒ durable even batched.
func TestConcurrentGroupCommitCrash(t *testing.T) {
	for _, base := range Wrapped {
		t.Run("durable/"+base, func(t *testing.T) {
			dir := t.TempDir()
			crash := &Crashpoints{}
			e := newTestEngine(t, base, dir, Options{Fsync: FsyncGroup, Crash: crash})
			const nThreads = 4
			cells := make([]engine.Cell, nThreads)
			for i := range cells {
				cells[i] = e.NewCell(0)
			}
			var acked [nThreads]atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < nThreads; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					th := e.Thread(w)
					for i := 1; i <= 500; i++ {
						if w == 0 && i == 40 {
							crash.mu.Lock()
							crash.AfterPartialRecord = true
							crash.PartialBytes = 3
							crash.mu.Unlock()
						}
						err := th.Run(func(tx engine.Txn) error {
							return engine.Set(tx, cells[w], i)
						})
						if err != nil {
							return
						}
						acked[w].Store(int64(i))
					}
				}(w)
			}
			wg.Wait()
			if e.Crashed() == nil {
				t.Fatal("engine never crashed")
			}

			e2 := newTestEngine(t, base, dir, Options{})
			defer e2.WALClose()
			cells2 := make([]engine.Cell, nThreads)
			for i := range cells2 {
				cells2[i] = e2.NewCell(0)
			}
			if err := e2.Thread(0).RunReadOnly(func(tx engine.Txn) error {
				for w := 0; w < nThreads; w++ {
					n, err := engine.Get[int](tx, cells2[w])
					if err != nil {
						return err
					}
					if int64(n) < acked[w].Load() {
						t.Errorf("thread %d: acked commit lost (recovered %d < acked %d)", w, n, acked[w].Load())
					}
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRecoveredCellsBeyondRecreation: values recovered for cell ids the
// application has not re-created survive both boot and a later compaction.
func TestRecoveredCellsBeyondRecreation(t *testing.T) {
	dir := t.TempDir()
	e := newTestEngine(t, "norec", dir, Options{})
	cells := make([]engine.Cell, 4)
	for i := range cells {
		cells[i] = e.NewCell(0)
	}
	th := e.Thread(0)
	for i, c := range cells {
		c := c
		if err := th.Run(func(tx engine.Txn) error { return engine.Set(tx, c, 10+i) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.WALClose(); err != nil {
		t.Fatal(err)
	}

	// Reboot recreating only 2 of the 4 cells, commit, compact, close.
	e2 := newTestEngine(t, "norec", dir, Options{})
	c0, c1 := e2.NewCell(0), e2.NewCell(0)
	_ = c1
	th2 := e2.Thread(0)
	if err := th2.Run(func(tx engine.Txn) error { return engine.Set(tx, c0, 99) }); err != nil {
		t.Fatal(err)
	}
	e2.compact()
	if err := e2.WALClose(); err != nil {
		t.Fatal(err)
	}

	rec, err := recoverDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range map[uint64]int{0: 99, 1: 11, 2: 12, 3: 13} {
		v, ok := rec.values[id]
		if !ok {
			t.Errorf("cell %d dropped by compaction", id)
			continue
		}
		if got := v.Load().(int); got != want {
			t.Errorf("cell %d = %d, want %d", id, got, want)
		}
	}
	if rec.snapSeq == 0 {
		t.Error("compaction never installed a snapshot")
	}
}

// TestRegisteredDurableCount pins the wrapper roster: the three paper
// engines named by the acceptance criteria, each present in the registry.
func TestRegisteredDurableCount(t *testing.T) {
	want := map[string]bool{"durable/norec": true, "durable/lsa/shared": true, "durable/glock": true}
	got := 0
	for _, n := range engine.Names() {
		if want[n] {
			got++
		}
	}
	if got != len(want) {
		t.Fatalf("registered %d of %d durable wrappers: %v", got, len(want), engine.Names())
	}
}

// TestDurabilityInfoJSONShape: the info block stmserve and the bench
// snapshot embed marshals with the documented field names.
func TestDurabilityInfoJSONShape(t *testing.T) {
	dir := t.TempDir()
	e := newTestEngine(t, "norec", dir, Options{})
	defer e.WALClose()
	info := e.DurabilityInfo()
	if info.FsyncPolicy != FsyncAlways || info.WALDir != dir {
		t.Errorf("info = %+v", info)
	}
	s := fmt.Sprintf("%+v", info)
	if s == "" {
		t.Fatal("unprintable info")
	}
}
