package stmserve

// The two connection→engine.Thread mappings behind Session. Both implement
// the same pair of internal interfaces so the Service, the servers and the
// conformance suite are indifferent to the choice; cmd/stmload exists to
// measure the difference.

// executor owns the Service's engine Threads and hands out sessions.
type executor interface {
	// session creates one connection's execution context.
	session() execSession
	// close shuts the executor down; in-flight pool requests fail with
	// ErrClosed.
	close()
}

// execSession runs transactional requests for one connection. Like Session,
// single-goroutine.
type execSession interface {
	do(req *Request, resp *Response) error
	close()
}

// threadExecutor is the goroutine-per-connection mapping: every session owns
// a freshly created engine.Thread (plus its prebuilt applier), so requests
// run inline on the calling goroutine with no queueing. Thread state scales
// with the connection count.
type threadExecutor struct {
	svc *Service
}

func (e *threadExecutor) session() execSession {
	svc := e.svc
	return &threadSession{ap: newApplier(svc, svc.eng.Thread(svc.nextThreadID()))}
}

func (e *threadExecutor) close() {}

type threadSession struct {
	ap *applier
}

func (s *threadSession) do(req *Request, resp *Response) error { return s.ap.do(req, resp) }
func (s *threadSession) close()                                {}

// poolExecutor is the bounded-worker mapping: a fixed set of workers, each
// owning one long-lived engine.Thread, drains a shared queue that all
// sessions submit to. Thread state is fixed regardless of connection count;
// requests pay queueing delay under load (visible in the per-op latency
// histograms, which bracket the whole Exec).
type poolExecutor struct {
	svc   *Service
	calls chan *poolCall
	quit  chan struct{}
}

// poolCall is one queued request. done is buffered so a worker's completion
// send never blocks, and the session drains it before reuse.
type poolCall struct {
	req  *Request
	resp *Response
	done chan error
}

func newPoolExecutor(svc *Service, workers int) *poolExecutor {
	e := &poolExecutor{
		svc:   svc,
		calls: make(chan *poolCall),
		quit:  make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		ap := newApplier(svc, svc.eng.Thread(svc.nextThreadID()))
		go e.worker(ap)
	}
	return e
}

func (e *poolExecutor) worker(ap *applier) {
	for {
		select {
		case c := <-e.calls:
			c.done <- ap.do(c.req, c.resp)
		case <-e.quit:
			return
		}
	}
}

func (e *poolExecutor) close() { close(e.quit) }

func (e *poolExecutor) session() execSession {
	return &poolSession{exec: e, call: &poolCall{done: make(chan error, 1)}}
}

// poolSession submits to the shared queue. The session reuses one poolCall;
// do always drains done before returning, so the call is free on re-entry.
type poolSession struct {
	exec *poolExecutor
	call *poolCall
}

func (s *poolSession) do(req *Request, resp *Response) error {
	c := s.call
	c.req, c.resp = req, resp
	select {
	case s.exec.calls <- c:
	case <-s.exec.quit:
		return ErrClosed
	}
	// The handoff over the unbuffered channel succeeded, so a worker's
	// select committed to the calls branch: it runs the request to
	// completion and sends done before it can observe quit. Blocking here
	// cannot hang, and never leaves a stale result behind for the next
	// reuse of the call.
	return <-c.done
}

func (s *poolSession) close() {}
