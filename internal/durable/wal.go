// The segmented write-ahead log: ordered appends, fsync policies, segment
// rotation, crashpoint fault injection, and the recovery-on-boot scan.
package durable

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/val"
)

// Fsync policy names, as accepted by engine.Options.Fsync and reported by
// DurabilityInfo.FsyncPolicy.
const (
	FsyncAlways = "always"
	FsyncGroup  = "group"
	FsyncNever  = "never"
)

const (
	segmentMagic  = "DWAL0001"
	snapshotMagic = "DSNAP001"
	snapshotName  = "snapshot"
	snapshotTmp   = "snapshot.tmp"
	segmentPrefix = "wal-"
	segmentSuffix = ".log"

	// defaultSegmentBytes rotates segments at 4 MiB; tests shrink it to
	// force rotation with tiny workloads.
	defaultSegmentBytes = 4 << 20
	// defaultGroupInterval bounds how long a group-commit acknowledgment
	// may wait for the shared fsync.
	defaultGroupInterval = 2 * time.Millisecond
)

var (
	// ErrCrashed is the sticky error a Log reports after a crashpoint fired
	// (or after an I/O error): the in-memory engine state may be ahead of
	// the disk image, so the engine refuses all further transactions. The
	// only way forward is to discard the engine and recover from the
	// directory.
	ErrCrashed = errors.New("durable: write-ahead log crashed")
	// ErrClosed reports use after an orderly WALClose.
	ErrClosed = errors.New("durable: write-ahead log closed")
)

// Crashpoints is the deterministic fault-injection seam inside the WAL
// writer. Each point fires at most once; after firing the Log wedges with
// ErrCrashed, simulating the process dying at exactly that instant (the
// in-memory engine "loses its memory" — tests discard it and recover a
// fresh one from the directory). Zero value = no faults.
type Crashpoints struct {
	// AfterPartialRecord: the next commit writes only PartialBytes bytes of
	// its frame (synced, so the torn prefix is exactly what recovery sees),
	// then crashes — the torn-final-record case.
	AfterPartialRecord bool
	// PartialBytes is how many bytes of the frame AfterPartialRecord leaves
	// behind (clamped to frame length − 1 so the record is genuinely torn).
	PartialBytes int
	// AfterRecordBeforeSync: the next commit writes its full frame to the
	// OS but crashes before fsync — the record may or may not survive a
	// real power cut; in-process recovery sees it (recovering more than was
	// acknowledged is always legal).
	AfterRecordBeforeSync bool
	// MidSnapshotRename: the next snapshot crashes after writing and
	// syncing snapshot.tmp but before the atomic rename — boot must ignore
	// and clean up the leftover tmp.
	MidSnapshotRename bool
	// AfterSnapshotRename: the next snapshot crashes after the rename but
	// before old-segment truncation — boot must skip the segment records
	// the snapshot already covers.
	AfterSnapshotRename bool

	mu    sync.Mutex
	fired string
}

// Crashpoint names, as reported by Fired.
const (
	CrashAfterPartialRecord    = "after-partial-record"
	CrashAfterRecordBeforeSync = "after-record-before-sync"
	CrashMidSnapshotRename     = "mid-snapshot-rename"
	CrashAfterSnapshotRename   = "after-snapshot-rename"
)

// fire consumes the named point if armed (each fires at most once).
func (c *Crashpoints) fire(name string) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var armed *bool
	switch name {
	case CrashAfterPartialRecord:
		armed = &c.AfterPartialRecord
	case CrashAfterRecordBeforeSync:
		armed = &c.AfterRecordBeforeSync
	case CrashMidSnapshotRename:
		armed = &c.MidSnapshotRename
	case CrashAfterSnapshotRename:
		armed = &c.AfterSnapshotRename
	}
	if armed == nil || !*armed {
		return false
	}
	*armed = false
	c.fired = name
	return true
}

// Fired returns the name of the crashpoint that fired, or "".
func (c *Crashpoints) Fired() string {
	if c == nil {
		return ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fired
}

// logConfig parameterizes openLog.
type logConfig struct {
	dir           string
	policy        string // FsyncAlways | FsyncGroup | FsyncNever
	segmentBytes  int64
	groupInterval time.Duration
	startSeq      uint64 // first seq this log will accept (recovered lastSeq+1)
	crash         *Crashpoints
}

// Log is the append side of the WAL. Commit acknowledgments respect the
// fsync policy: under "always" and "group" a Commit that returns nil has
// been fsynced; under "never" it has only been buffered.
//
// Appends are sequenced: Commit(seq, …) blocks until every lower seq has
// been appended, so the on-disk log is always a dense prefix of the commit
// order — recovery can treat a sequence gap as corruption.
type Log struct {
	cfg logConfig

	mu        sync.Mutex
	seqCond   *sync.Cond // append turnstile: waits for nextSeq == seq
	flushCond *sync.Cond // group-commit ack: waits for flushedSeq ≥ seq

	f           *os.File
	buf         *bufio.Writer
	segSize     int64  // bytes written into the current segment
	nextSeq     uint64 // seq the next append must carry
	appendedSeq uint64 // highest seq written into buf
	flushedSeq  uint64 // highest seq known flushed+synced (tracked under group/always)
	sticky      error  // ErrCrashed / wrapped I/O error; wedges the log
	closed      bool
	// tap, when set, observes every appended frame in seq order (the
	// replication feed). Called with l.mu held, immediately after the
	// append; the frame bytes are only valid during the call. The tap must
	// never block and never touch the Log.
	tap func(seq uint64, frame []byte)

	stopFlusher chan struct{}
	flusherDone chan struct{}
}

func openLog(cfg logConfig) (*Log, error) {
	if cfg.segmentBytes <= 0 {
		cfg.segmentBytes = defaultSegmentBytes
	}
	if cfg.groupInterval <= 0 {
		cfg.groupInterval = defaultGroupInterval
	}
	switch cfg.policy {
	case FsyncAlways, FsyncGroup, FsyncNever:
	case "":
		cfg.policy = FsyncGroup
	default:
		return nil, fmt.Errorf("durable: unknown fsync policy %q", cfg.policy)
	}
	l := &Log{
		cfg:         cfg,
		nextSeq:     cfg.startSeq,
		appendedSeq: cfg.startSeq - 1,
		flushedSeq:  cfg.startSeq - 1,
	}
	l.seqCond = sync.NewCond(&l.mu)
	l.flushCond = sync.NewCond(&l.mu)
	if err := l.openSegment(cfg.startSeq); err != nil {
		return nil, err
	}
	if cfg.policy == FsyncGroup {
		l.stopFlusher = make(chan struct{})
		l.flusherDone = make(chan struct{})
		go l.flusher()
	}
	return l, nil
}

func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("%s%016x%s", segmentPrefix, firstSeq, segmentSuffix)
}

// openSegment finalizes the current segment (if any) and starts a fresh one
// whose name records the first seq it will hold. Finalized segments are
// always flushed and synced, whatever the policy — so only the final segment
// of a log can ever be torn. Called with l.mu held (or before the Log is
// shared).
func (l *Log) openSegment(firstSeq uint64) error {
	if l.f != nil {
		if err := l.buf.Flush(); err != nil {
			return err
		}
		if err := l.f.Sync(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return err
		}
	}
	path := filepath.Join(l.cfg.dir, segmentName(firstSeq))
	// The name can pre-exist only if that segment held zero records (boot
	// reuses firstSeq = lastSeq+1, which lands inside an old segment only
	// when the old segment is empty), so truncating is safe.
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(segmentMagic); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(l.cfg.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.buf = bufio.NewWriterSize(f, 1<<16)
	l.segSize = int64(len(segmentMagic))
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// fail wedges the log with err and wakes every waiter. Called with l.mu held.
func (l *Log) fail(err error) {
	if l.sticky == nil {
		l.sticky = err
	}
	l.seqCond.Broadcast()
	l.flushCond.Broadcast()
}

// Err returns the sticky crash/I/O error, or nil.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sticky
}

// usable reports why a new update transaction must be refused: the sticky
// crash error, ErrClosed after an orderly close, or nil.
func (l *Log) usable() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sticky != nil {
		return l.sticky
	}
	if l.closed {
		return ErrClosed
	}
	return nil
}

// Commit appends the redo frame for seq (payload pre-encoded by the caller,
// with frameHeaderLen reserved bytes up front) and blocks per the fsync
// policy until the record is acknowledged durable. It returns the frame
// length appended (the compaction trigger's byte feed).
func (l *Log) Commit(seq uint64, frame []byte) (int64, error) {
	frame = frameAround(frame)
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.sticky == nil && !l.closed && l.nextSeq != seq {
		l.seqCond.Wait()
	}
	if l.sticky != nil {
		return 0, l.sticky
	}
	if l.closed {
		return 0, ErrClosed
	}

	if l.cfg.crash.fire(CrashAfterPartialRecord) {
		// Leave exactly PartialBytes of the frame behind, synced, then
		// wedge: the deterministic torn-final-record fault.
		cut := l.cfg.crash.PartialBytes
		if cut >= len(frame) {
			cut = len(frame) - 1
		}
		if cut < 0 {
			cut = 0
		}
		if err := l.buf.Flush(); err == nil {
			if _, err = l.f.Write(frame[:cut]); err == nil {
				err = l.f.Sync()
			}
			if err != nil {
				l.fail(fmt.Errorf("durable: crashpoint write: %w", err))
				return 0, l.sticky
			}
		}
		l.fail(ErrCrashed)
		return 0, ErrCrashed
	}

	if _, err := l.buf.Write(frame); err != nil {
		l.fail(fmt.Errorf("durable: append: %w", err))
		return 0, l.sticky
	}
	l.segSize += int64(len(frame))
	l.appendedSeq = seq
	l.nextSeq = seq + 1
	if l.tap != nil {
		// Under l.mu, so the tap sees frames strictly in seq order — the
		// property the replication stream inherits from the sequencer.
		l.tap(seq, frame)
	}
	l.seqCond.Broadcast()

	if l.cfg.crash.fire(CrashAfterRecordBeforeSync) {
		// Full frame reaches the OS, no fsync: after a real power cut the
		// record's fate would be undecided; in-process it survives.
		if err := l.buf.Flush(); err != nil {
			l.fail(fmt.Errorf("durable: crashpoint flush: %w", err))
			return 0, l.sticky
		}
		l.fail(ErrCrashed)
		return 0, ErrCrashed
	}

	switch l.cfg.policy {
	case FsyncAlways:
		if err := l.buf.Flush(); err == nil {
			err = l.f.Sync()
			if err != nil {
				l.fail(fmt.Errorf("durable: fsync: %w", err))
				return 0, l.sticky
			}
		} else {
			l.fail(fmt.Errorf("durable: flush: %w", err))
			return 0, l.sticky
		}
		l.flushedSeq = seq
	case FsyncNever:
		// Acknowledge immediately; acknowledged commits can be lost.
	case FsyncGroup:
		for l.sticky == nil && l.flushedSeq < seq {
			l.flushCond.Wait()
		}
		if l.sticky != nil {
			return 0, l.sticky
		}
	}

	if l.segSize >= l.cfg.segmentBytes {
		if err := l.openSegment(l.nextSeq); err != nil {
			l.fail(fmt.Errorf("durable: segment rotation: %w", err))
			return 0, l.sticky
		}
	}
	return int64(len(frame)), nil
}

// flusher is the group-commit heartbeat: every groupInterval it flushes and
// fsyncs whatever has been appended and wakes the committers waiting on it.
func (l *Log) flusher() {
	defer close(l.flusherDone)
	t := time.NewTicker(l.cfg.groupInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stopFlusher:
			return
		case <-t.C:
		}
		l.mu.Lock()
		if l.sticky == nil && !l.closed && l.appendedSeq > l.flushedSeq {
			err := l.buf.Flush()
			if err == nil {
				err = l.f.Sync()
			}
			if err != nil {
				l.fail(fmt.Errorf("durable: group fsync: %w", err))
			} else {
				l.flushedSeq = l.appendedSeq
				l.flushCond.Broadcast()
			}
		}
		l.mu.Unlock()
	}
}

// setTap installs (or clears, with nil) the append observer. Install it
// before commits flow; replacing a live tap is racy only in the sense that
// an in-flight Commit uses whichever tap it observes under l.mu.
func (l *Log) setTap(tap func(seq uint64, frame []byte)) {
	l.mu.Lock()
	l.tap = tap
	l.mu.Unlock()
}

// AppendedSeq returns the highest sequence number appended so far.
func (l *Log) AppendedSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendedSeq
}

// skipTo advances the sequencer to firstSeq, rotating to a fresh segment
// named for it, so the next Commit must carry exactly firstSeq. It is the
// follower-side half of snapshot installation: after a replica snapshot at
// watermark W is on disk, the log resumes at W+1 with no on-disk gap (the
// rotation starts a new segment whose name declares the jump; records at or
// below W in older segments are covered by the snapshot). Refuses to move
// backwards.
func (l *Log) skipTo(firstSeq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sticky != nil {
		return l.sticky
	}
	if l.closed {
		return ErrClosed
	}
	if firstSeq < l.nextSeq {
		return fmt.Errorf("durable: skipTo %d would regress the sequencer (next %d)", firstSeq, l.nextSeq)
	}
	if firstSeq == l.nextSeq {
		return nil
	}
	if err := l.openSegment(firstSeq); err != nil {
		l.fail(fmt.Errorf("durable: skipTo rotation: %w", err))
		return l.sticky
	}
	l.nextSeq = firstSeq
	l.appendedSeq = firstSeq - 1
	l.flushedSeq = firstSeq - 1
	l.seqCond.Broadcast()
	l.flushCond.Broadcast()
	return nil
}

// Sync forces everything appended so far to stable storage, regardless of
// policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sticky != nil {
		return l.sticky
	}
	if l.closed {
		return nil // Close already flushed and synced
	}
	if err := l.buf.Flush(); err != nil {
		l.fail(fmt.Errorf("durable: flush: %w", err))
		return l.sticky
	}
	if err := l.f.Sync(); err != nil {
		l.fail(fmt.Errorf("durable: fsync: %w", err))
		return l.sticky
	}
	l.flushedSeq = l.appendedSeq
	l.flushCond.Broadcast()
	return nil
}

// Close flushes, syncs and closes the log. Idempotent; subsequent Commits
// fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	var err error
	if l.sticky == nil {
		if err = l.buf.Flush(); err == nil {
			err = l.f.Sync()
		}
		l.flushedSeq = l.appendedSeq
	}
	cerr := l.f.Close()
	if err == nil {
		err = cerr
	}
	l.seqCond.Broadcast()
	l.flushCond.Broadcast()
	stop := l.stopFlusher
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.flusherDone
	}
	return err
}

// --- recovery ---

// recovery is what a boot-time scan of a WAL directory yields.
type recovery struct {
	// values holds the recovered cellID → latest value map (snapshot state
	// overlaid with every replayed redo record).
	values map[uint64]val.Value
	// lastSeq is the highest commit sequence restored (snapshot watermark
	// included); the reopened log starts at lastSeq+1.
	lastSeq uint64
	// commits counts redo records replayed (snapshot state excluded).
	commits uint64
	// snapSeq is the snapshot watermark boot started from (0 = none).
	snapSeq uint64
	// tornBytes is how many bytes of torn final frame were truncated away.
	tornBytes int64
}

// segmentFile pairs a segment path with the first seq its name declares.
type segmentFile struct {
	path     string
	firstSeq uint64
}

func listSegments(dir string) ([]segmentFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentFile
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		hexSeq := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
		seq, err := strconv.ParseUint(hexSeq, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("durable: malformed segment name %q: %v", name, err)
		}
		segs = append(segs, segmentFile{path: filepath.Join(dir, name), firstSeq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

// recoverDir scans a WAL directory: loads the snapshot (if any), replays
// every segment's redo records above the snapshot watermark in sequence
// order, truncates a torn final frame (reporting how many bytes), and
// rejects mid-log corruption or sequence gaps as hard errors. A leftover
// snapshot.tmp from an interrupted compaction is deleted. An empty or
// absent directory recovers to the empty state.
func recoverDir(dir string) (*recovery, error) {
	rec := &recovery{values: map[uint64]val.Value{}}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// An interrupted compaction can leave snapshot.tmp behind (crash
	// between write and rename); it never became the live snapshot, so
	// drop it.
	if err := os.Remove(filepath.Join(dir, snapshotTmp)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	if err := loadSnapshot(dir, rec); err != nil {
		return nil, err
	}
	rec.lastSeq = rec.snapSeq

	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for i, seg := range segs {
		last := i == len(segs)-1
		if err := replaySegment(seg, last, rec); err != nil {
			return nil, err
		}
	}
	return rec, nil
}

func loadSnapshot(dir string, rec *recovery) error {
	path := filepath.Join(dir, snapshotName)
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != snapshotMagic {
		return fmt.Errorf("durable: bad snapshot magic in %s", path)
	}
	payload, _, err := ReadFrame(r)
	if err != nil {
		// The snapshot was written with write-tmp → fsync → rename, so a
		// torn snapshot means disk corruption, not a crash: refuse.
		return fmt.Errorf("durable: corrupt snapshot %s: %v", path, err)
	}
	seq, values, err := DecodeSnapshotPayload(payload)
	if err != nil {
		return fmt.Errorf("durable: corrupt snapshot %s: %v", path, err)
	}
	rec.snapSeq = seq
	rec.values = values
	return nil
}

// replaySegment applies seg's redo records above the snapshot watermark to
// rec. Torn frames are tolerated (truncated, counted) only in the final
// segment: every earlier segment was flushed and synced at rotation, so a
// bad frame there is mid-log corruption and recovery refuses to guess past
// it.
func replaySegment(seg segmentFile, lastSegment bool, rec *recovery) error {
	f, err := os.Open(seg.path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	magic := make([]byte, len(segmentMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != segmentMagic {
		return fmt.Errorf("durable: bad segment magic in %s", seg.path)
	}
	offset := int64(len(segmentMagic))
	for {
		payload, frameLen, err := ReadFrame(r)
		if err == io.EOF {
			return nil
		}
		if errors.Is(err, ErrTorn) {
			if !lastSegment {
				return fmt.Errorf("durable: corrupt frame mid-log in %s at offset %d: %v", seg.path, offset, err)
			}
			st, serr := f.Stat()
			if serr != nil {
				return serr
			}
			rec.tornBytes = st.Size() - offset
			if terr := os.Truncate(seg.path, offset); terr != nil {
				return terr
			}
			return nil
		}
		if err != nil {
			return err
		}
		seq, writes, err := DecodeCommitPayload(payload)
		if err != nil {
			// A CRC-valid frame with a malformed payload is corruption the
			// CRC cannot excuse — refuse even in the final segment.
			return fmt.Errorf("durable: malformed record in %s at offset %d: %v", seg.path, offset, err)
		}
		if seq > rec.snapSeq {
			if seq != rec.lastSeq+1 {
				return fmt.Errorf("durable: sequence gap in %s at offset %d: got seq %d, want %d",
					seg.path, offset, seq, rec.lastSeq+1)
			}
			for _, w := range writes {
				rec.values[w.ID] = w.V
			}
			rec.lastSeq = seq
			rec.commits++
		}
		offset += frameLen
	}
}
