package stmserve

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/engine"
)

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	eng, err := engine.New("norec", engine.Options{})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	svc, err := New(eng, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

// exec runs one op and fails the test on an op-level error.
func exec(t *testing.T, sess *Session, req *Request) *Response {
	t.Helper()
	var resp Response
	if err := sess.Exec(req, &resp); err != nil {
		t.Fatalf("Exec(%v): %v", req.Op, err)
	}
	return &resp
}

func TestServiceOps(t *testing.T) {
	svc := newTestService(t, Config{Keys: 16, Initial: 100})
	sess := svc.Session()
	defer sess.Close()

	// Read the initial balance.
	if got := exec(t, sess, &Request{Op: OpRead, Key: 3}).Vals[0]; got != 100 {
		t.Fatalf("initial read = %d, want 100", got)
	}
	// Write, read back.
	exec(t, sess, &Request{Op: OpWrite, Key: 3, Val: 250})
	if got := exec(t, sess, &Request{Op: OpRead, Key: 3}).Vals[0]; got != 250 {
		t.Fatalf("read after write = %d, want 250", got)
	}
	// Transfer conserves and moves.
	exec(t, sess, &Request{Op: OpTransfer, Key: 3, Key2: 4, Val: 50})
	if got := exec(t, sess, &Request{Op: OpRead, Key: 3}).Vals[0]; got != 200 {
		t.Fatalf("from after transfer = %d, want 200", got)
	}
	if got := exec(t, sess, &Request{Op: OpRead, Key: 4}).Vals[0]; got != 150 {
		t.Fatalf("to after transfer = %d, want 150", got)
	}
	// Snapshot and batch read see the same values.
	snap := exec(t, sess, &Request{Op: OpSnapshot, Keys: []int{3, 4}})
	if snap.Vals[0] != 200 || snap.Vals[1] != 150 {
		t.Fatalf("snapshot = %v, want [200 150]", snap.Vals)
	}
	br := exec(t, sess, &Request{Op: OpBatchRead, Keys: []int{3, 4}})
	if br.Vals[0] != 200 || br.Vals[1] != 150 {
		t.Fatalf("batch read = %v, want [200 150]", br.Vals)
	}
	// Batch write.
	exec(t, sess, &Request{Op: OpBatchWrite, Keys: []int{0, 1}, Vals: []int64{7, 8}})
	if got := exec(t, sess, &Request{Op: OpSnapshot, Keys: []int{0, 1}}); got.Vals[0] != 7 || got.Vals[1] != 8 {
		t.Fatalf("after batch write = %v, want [7 8]", got.Vals)
	}
	// CAS succeeds only on a match.
	if got := exec(t, sess, &Request{Op: OpCAS, Key: 0, Val: 999, Val2: 1}); got.Bool() {
		t.Fatal("CAS with wrong expectation swapped")
	}
	if got := exec(t, sess, &Request{Op: OpCAS, Key: 0, Val: 7, Val2: 1}); !got.Bool() {
		t.Fatal("CAS with right expectation did not swap")
	}
	if got := exec(t, sess, &Request{Op: OpRead, Key: 0}).Vals[0]; got != 1 {
		t.Fatalf("after CAS = %d, want 1", got)
	}
	// Set ops: add is idempotent-by-report, remove mirrors it.
	if !exec(t, sess, &Request{Op: OpSetAdd, Key: 5}).Bool() {
		t.Fatal("first add reported no change")
	}
	if exec(t, sess, &Request{Op: OpSetAdd, Key: 5}).Bool() {
		t.Fatal("second add reported a change")
	}
	if !exec(t, sess, &Request{Op: OpSetContains, Key: 5}).Bool() {
		t.Fatal("contains after add = false")
	}
	if !exec(t, sess, &Request{Op: OpSetRemove, Key: 5}).Bool() {
		t.Fatal("remove of member reported no change")
	}
	if exec(t, sess, &Request{Op: OpSetRemove, Key: 5}).Bool() {
		t.Fatal("remove of non-member reported a change")
	}
	if exec(t, sess, &Request{Op: OpSetContains, Key: 5}).Bool() {
		t.Fatal("contains after remove = true")
	}
	// Control ops.
	exec(t, sess, &Request{Op: OpPing})
	info := exec(t, sess, &Request{Op: OpInfo})
	if info.Text != "norec" || info.Vals[0] != 16 {
		t.Fatalf("INFO = %q %v, want norec [16]", info.Text, info.Vals)
	}
	st := exec(t, sess, &Request{Op: OpStats})
	var decoded Stats
	if err := json.Unmarshal([]byte(st.Text), &decoded); err != nil {
		t.Fatalf("STATS payload does not parse: %v", err)
	}
	if decoded.Engine != "norec" || decoded.Ops == 0 {
		t.Fatalf("STATS = %+v, want engine norec with ops recorded", decoded)
	}
	if strings.ContainsRune(st.Text, ' ') {
		t.Fatalf("STATS text contains a space (breaks the wire Text token): %q", st.Text)
	}
}

func TestServiceErrors(t *testing.T) {
	svc := newTestService(t, Config{Keys: 8})
	sess := svc.Session()
	defer sess.Close()

	var resp Response
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"invalid op", Request{Op: OpInvalid}, "invalid op"},
		{"key out of range", Request{Op: OpRead, Key: 8}, "out of range"},
		{"negative key", Request{Op: OpWrite, Key: -1}, "out of range"},
		{"self transfer", Request{Op: OpTransfer, Key: 2, Key2: 2}, "itself"},
		{"transfer bad to", Request{Op: OpTransfer, Key: 2, Key2: 99}, "out of range"},
		{"empty snapshot", Request{Op: OpSnapshot}, "without keys"},
		{"batch key out of range", Request{Op: OpBatchRead, Keys: []int{1, 42}}, "out of range"},
		{"ragged batch write", Request{Op: OpBatchWrite, Keys: []int{1, 2}, Vals: []int64{5}}, "2 keys but 1 values"},
	}
	for _, tc := range cases {
		err := sess.Exec(&tc.req, &resp)
		if err == nil || resp.Err == "" {
			t.Errorf("%s: no error (resp.Err = %q)", tc.name, resp.Err)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if resp.Err != err.Error() {
			t.Errorf("%s: resp.Err %q != err %q", tc.name, resp.Err, err)
		}
	}

	// The error counters saw every failure.
	st := svc.Stats()
	if st.Errs != uint64(len(cases)) {
		t.Fatalf("Stats.Errs = %d, want %d", st.Errs, len(cases))
	}
}

func TestServiceStatsPerOp(t *testing.T) {
	svc := newTestService(t, Config{Keys: 8})
	sess := svc.Session()
	defer sess.Close()
	for i := 0; i < 5; i++ {
		exec(t, sess, &Request{Op: OpRead, Key: i})
	}
	exec(t, sess, &Request{Op: OpWrite, Key: 0, Val: 9})

	st := svc.Stats()
	if st.Ops != 6 {
		t.Fatalf("Stats.Ops = %d, want 6", st.Ops)
	}
	byOp := map[string]OpStat{}
	for _, o := range st.PerOp {
		byOp[o.Op] = o
	}
	if byOp["read"].Ops != 5 || byOp["write"].Ops != 1 {
		t.Fatalf("per-op = %+v, want read=5 write=1", byOp)
	}
	for _, o := range st.PerOp {
		if o.Latency == nil {
			t.Fatalf("op %s has no latency summary", o.Op)
		}
		if err := o.Latency.Validate(); err != nil {
			t.Fatalf("op %s latency summary invalid: %v", o.Op, err)
		}
	}
	// Engine-side counters flowed through.
	if st.EngineStats.Commits == 0 {
		t.Fatal("engine stats show no commits")
	}
}

func TestServiceClose(t *testing.T) {
	for _, mode := range []string{ModeThread, ModePool} {
		t.Run(mode, func(t *testing.T) {
			eng := engine.MustNew("norec", engine.Options{})
			svc, err := New(eng, Config{Keys: 4, Mode: mode, PoolWorkers: 2})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			sess := svc.Session()
			exec(t, sess, &Request{Op: OpRead, Key: 0})
			svc.Close()
			svc.Close() // idempotent
			var resp Response
			if err := sess.Exec(&Request{Op: OpRead, Key: 0}, &resp); err != ErrClosed {
				t.Fatalf("Exec after Close = %v, want ErrClosed", err)
			}
			sess.Close()
		})
	}
}

func TestServiceConfigRejected(t *testing.T) {
	eng := engine.MustNew("norec", engine.Options{})
	if _, err := New(eng, Config{Keys: -1}); err == nil {
		t.Fatal("negative Keys accepted")
	}
	if _, err := New(eng, Config{Mode: "fiber"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestOpTextRoundTrip(t *testing.T) {
	for op := OpPing; op < numOps; op++ {
		text, err := op.MarshalText()
		if err != nil {
			t.Fatalf("%v: MarshalText: %v", op, err)
		}
		var back Op
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("%v: UnmarshalText(%q): %v", op, text, err)
		}
		if back != op {
			t.Fatalf("round trip %v → %q → %v", op, text, back)
		}
	}
	var bad Op
	if err := bad.UnmarshalText([]byte("warp")); err == nil {
		t.Fatal("unknown op text accepted")
	}
}

// TestPoolModeSharedThreads checks the defining property of ModePool: many
// sessions, bounded engine threads, and requests still execute correctly
// when sessions outnumber workers.
func TestPoolModeSharedThreads(t *testing.T) {
	svc := newTestService(t, Config{Keys: 8, Mode: ModePool, PoolWorkers: 2})
	done := make(chan error)
	const sessions = 8
	for i := 0; i < sessions; i++ {
		go func(id int) {
			sess := svc.Session()
			defer sess.Close()
			var resp Response
			for j := 0; j < 50; j++ {
				if err := sess.Exec(&Request{Op: OpTransfer, Key: id % 8, Key2: (id + 1) % 8, Val: 1}, &resp); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(i)
	}
	for i := 0; i < sessions; i++ {
		if err := <-done; err != nil {
			t.Fatalf("session failed: %v", err)
		}
	}
	// Pool mode created exactly PoolWorkers engine threads (+0 per session).
	if got := svc.nextID.Load(); got != 2 {
		t.Fatalf("pool mode allocated %d engine threads, want 2", got)
	}
	// Conservation: transfers moved value around but the sum is intact.
	sess := svc.Session()
	defer sess.Close()
	keys := make([]int, 8)
	for i := range keys {
		keys[i] = i
	}
	snap := exec(t, sess, &Request{Op: OpSnapshot, Keys: keys})
	var sum int64
	for _, v := range snap.Vals {
		sum += v
	}
	if want := int64(8 * 1000); sum != want {
		t.Fatalf("sum after transfers = %d, want %d", sum, want)
	}
}
