package engine

import (
	"fmt"

	"repro/internal/glock"
)

// The "glock" backend: the coarse-global-lock honesty baseline. One
// reader/writer mutex serializes all transactions — no versions, no
// validation, no aborts — so it trivially satisfies opacity and anchors the
// low-thread-count end of every comparison: an STM only earns its keep where
// its curve crosses above this one.
func init() {
	Register("glock", func(o Options) (Engine, error) {
		return &glockEngine{stm: glock.New()}, nil
	})
}

type glockEngine struct {
	stm *glock.STM
	counterSet
}

func (e *glockEngine) Name() string { return "glock" }

func (e *glockEngine) NewCell(initial any) Cell { return glock.NewObject(initial) }

func (e *glockEngine) Thread(id int) Thread {
	return &glockThread{id: id, th: e.stm.Thread(id), counters: e.newCounters()}
}

type glockThread struct {
	id       int
	th       *glock.Thread
	counters *txnCounters
}

func (t *glockThread) ID() int { return t.id }

func (t *glockThread) Run(fn func(Txn) error) error {
	return runCounted(t.counters, t.th.Run, wrapGlock, fn)
}

func (t *glockThread) RunReadOnly(fn func(Txn) error) error {
	return runCounted(t.counters, t.th.RunReadOnly, wrapGlock, fn)
}

func wrapGlock(tx *glock.Tx) Txn { return glockTxn{tx} }

type glockTxn struct {
	tx *glock.Tx
}

func (t glockTxn) Read(c Cell) (any, error)  { return t.tx.Read(glockCell(c)) }
func (t glockTxn) Write(c Cell, v any) error { return t.tx.Write(glockCell(c), v) }

func glockCell(c Cell) *glock.Object {
	o, ok := c.(*glock.Object)
	if !ok {
		panic(fmt.Sprintf("engine: cell of type %T used with the glock backend", c))
	}
	return o
}
