// Benchmarks regenerating every figure and measured claim of the paper's
// evaluation (§4). Mapping (see DESIGN.md for the full experiment index):
//
//	BenchmarkFig1_ClockComparison   — Figure 1: clock synchronization errors
//	BenchmarkFig2_RealSTM           — Figure 2 on the real engine (this host)
//	BenchmarkFig2_SimMachine        — Figure 2 on the simulated 16-CPU ccNUMA machine
//	BenchmarkTL2CounterOpt          — §4.2: TL2 commit-timestamp sharing
//	BenchmarkSyncErrorAborts        — §4.3: deviation vs abort behaviour
//	BenchmarkBaselines_*            — §1.2: read scans vs TL2/validating STMs
//	BenchmarkWordVsObjectSTM        — §1.1: word- vs object-based LSA engines
//	BenchmarkTimeBaseOps            — micro: GetTime/GetNewTS per time base
//	BenchmarkTxOps                  — micro: read/write/commit path costs
//
// Ablation benchmarks for the engine's own design knobs (history depth,
// extension, contention managers, snapshot isolation) live in
// ablation_bench_test.go.
//
// Custom metrics: tx/s (or scans/s) is the figure's y-axis; ns/op reflects
// per-transaction latency. Absolute values on this host are not the paper's
// Altix values; EXPERIMENTS.md records the shape comparison.
package tstm_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/clocksync"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/hwclock"
	"repro/internal/rstmval"
	"repro/internal/simmachine"
	"repro/internal/timebase"
	"repro/internal/tl2"
	"repro/internal/wordstm"
	"repro/internal/workload"
)

// benchThreads is the sweep used by the real-STM benchmarks. On a
// single-CPU host the sweep measures overhead under interleaving, not
// parallel speedup; the simulated-machine benchmarks cover the scaling
// shape.
var benchThreads = []int{1, 2, 4, 8, 16}

// BenchmarkFig1_ClockComparison measures clock-comparison rounds against
// the simulated MMTimer and reports the observed error bound (Figure 1's
// headline number) as a custom metric.
func BenchmarkFig1_ClockComparison(b *testing.B) {
	dev := hwclock.New(hwclock.Config{TickHz: 20_000_000, ReadLatencyTicks: 7, Nodes: 16})
	b.ResetTimer()
	var maxErr, maxOff int64
	for i := 0; i < b.N; i++ {
		res, err := clocksync.Measure(clocksync.Config{Device: dev, Rounds: 1})
		if err != nil {
			b.Fatal(err)
		}
		if e := res.MaxError(); e > maxErr {
			maxErr = e
		}
		if o := res.MaxAbsOffset(); o > maxOff {
			maxOff = o
		}
	}
	b.ReportMetric(float64(maxErr), "max-error-ticks")
	b.ReportMetric(float64(maxOff), "max-offset-ticks")
}

// runDisjoint drives b.N disjoint-update transactions of the given size
// across the given worker count on a fresh runtime and reports tx/s.
func runDisjoint(b *testing.B, tb timebase.TimeBase, size, threads int) {
	b.Helper()
	eng := engine.WrapLSA(tb.Name(), core.MustRuntime(core.Config{TimeBase: tb}))
	runWorkload(b, eng, &workload.Disjoint{Accesses: size}, threads)
}

// runWorkload drives b.N workload steps split across the worker count on
// the given engine and reports tx/s — the benchmark-shaped version of the
// harness loop, usable with any registered backend.
func runWorkload(b *testing.B, eng engine.Engine, w harness.Workload, threads int) {
	b.Helper()
	if err := w.Init(eng, threads); err != nil {
		b.Fatal(err)
	}
	per := b.N / threads
	if per == 0 {
		per = 1
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := eng.Thread(id)
			step := w.Step(eng, th, id)
			for i := 0; i < per; i++ {
				if err := step(); err != nil {
					b.Error(err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	b.StopTimer()
	txs := float64(per * threads)
	b.ReportMetric(txs/b.Elapsed().Seconds(), "tx/s")
}

// BenchmarkEngineMatrix runs the bank and intset workloads on every
// registered backend — the cross-engine comparison the unified engine layer
// buys: any future backend shows up here for free.
func BenchmarkEngineMatrix(b *testing.B) {
	const threads = 4
	for _, name := range engine.Names() {
		b.Run("bank/"+name, func(b *testing.B) {
			eng := engine.MustNew(name, engine.Options{Nodes: threads})
			runWorkload(b, eng, &workload.Bank{Accounts: 64, Seed: 1}, threads)
		})
		b.Run("intset/"+name, func(b *testing.B) {
			eng := engine.MustNew(name, engine.Options{Nodes: threads})
			runWorkload(b, eng, &workload.IntSet{KeyRange: 128, Seed: 1}, threads)
		})
	}
}

// BenchmarkSmallTxAllocs tracks the per-commit allocation cost of the
// small-transaction fast paths on the engines whose hot paths are hand-tuned
// to be allocation-lean (run with -benchmem; the allocs/op column is the
// contract — with the typed value lane, norec runs the bank at 0 allocs/op).
// Single worker on purpose: allocs/op then is exactly allocations per
// committed transaction, with no concurrent-abort noise. The same budgets
// are locked in by the TestAllocBudget tests in internal/core,
// internal/norec, internal/tl2, internal/glock and internal/rstmval, and by
// TestIntLaneUnboxed in internal/engine; this benchmark is the place to see
// the bytes and the trend across PRs. CI prints it (-benchmem) in the
// bench-smoke job log.
func BenchmarkSmallTxAllocs(b *testing.B) {
	workloads := func() []harness.Workload {
		return []harness.Workload{
			&workload.Bank{Accounts: 64, Seed: 1},
			&workload.IntSet{KeyRange: 128, Seed: 1},
		}
	}
	for _, name := range []string{"lsa/shared", "norec", "tl2"} {
		for _, w := range workloads() {
			b.Run(name+"/"+w.Name(), func(b *testing.B) {
				eng := engine.MustNew(name, engine.Options{Nodes: 1})
				if err := w.Init(eng, 1); err != nil {
					b.Fatal(err)
				}
				th := eng.Thread(0)
				step := w.Step(eng, th, 0)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := step(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkReadSetIndex measures the access-set lookup paths. Each
// transaction reads n distinct objects (n access-set entries — note a
// read-modify-write would add two entries per object) and then re-reads
// them all, so every re-read exercises the entry lookup. n ≤ 8 stays on
// the linear-scan fast path with no map in sight; larger n promotes to the
// map. Before the fast path, every attempt paid the map clearing and
// hashed inserts even for 2-object transactions.
func BenchmarkReadSetIndex(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16, 64} {
		b.Run(fmt.Sprintf("reads=%d", n), func(b *testing.B) {
			rt := core.MustRuntime(core.Config{TimeBase: timebase.NewSharedCounter()})
			objs := make([]*core.Object, n)
			for i := range objs {
				objs[i] = core.NewObject(0)
			}
			th := rt.Thread(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := th.RunReadOnly(func(tx *core.Tx) error {
					for pass := 0; pass < 2; pass++ {
						for _, o := range objs {
							if _, err := tx.Read(o); err != nil {
								return err
							}
						}
					}
					return nil
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig2_RealSTM is Figure 2 on the real engine: disjoint update
// transactions of 10/50/100 accesses, shared counter vs simulated MMTimer.
func BenchmarkFig2_RealSTM(b *testing.B) {
	for _, size := range experiments.DefaultSizes {
		for _, base := range []string{"counter", "mmtimer"} {
			for _, threads := range benchThreads {
				b.Run(fmt.Sprintf("accesses=%d/base=%s/threads=%d", size, base, threads), func(b *testing.B) {
					tb, err := experiments.NewTimeBase(base, threads)
					if err != nil {
						b.Fatal(err)
					}
					runDisjoint(b, tb, size, threads)
				})
			}
		}
	}
}

// BenchmarkFig2_SimMachine is Figure 2 on the simulated ccNUMA machine —
// the scalability shape the paper plots. The metric Mtx/s matches the
// paper's y-axis unit.
func BenchmarkFig2_SimMachine(b *testing.B) {
	for _, size := range experiments.DefaultSizes {
		for _, kind := range []simmachine.TimeBaseKind{simmachine.Counter, simmachine.HWClock} {
			for _, cpus := range experiments.DefaultThreads {
				b.Run(fmt.Sprintf("accesses=%d/base=%s/cpus=%d", size, kind, cpus), func(b *testing.B) {
					var last simmachine.Result
					for i := 0; i < b.N; i++ {
						r, err := simmachine.Run(simmachine.Config{
							CPUs: cpus, TimeBase: kind, Accesses: size, Duration: 10_000_000,
						})
						if err != nil {
							b.Fatal(err)
						}
						last = r
					}
					b.ReportMetric(last.TxPerSec/1e6, "Mtx/s")
					b.ReportMetric(float64(last.CounterTransfers), "line-transfers")
				})
			}
		}
	}
}

// BenchmarkTL2CounterOpt is the §4.2 comparison: plain fetch-and-add
// counter vs the TL2 sharing counter, on the real engine.
func BenchmarkTL2CounterOpt(b *testing.B) {
	for _, base := range []string{"counter", "tl2counter"} {
		for _, threads := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("base=%s/threads=%d", base, threads), func(b *testing.B) {
				tb, err := experiments.NewTimeBase(base, threads)
				if err != nil {
					b.Fatal(err)
				}
				runDisjoint(b, tb, 10, threads)
			})
		}
	}
}

// BenchmarkSyncErrorAborts is the §4.3 experiment: the read-write mix on
// externally synchronized clocks with growing advertised deviation. The
// abort rate (reported as aborts/attempt) grows with the deviation; the
// multi-version configuration tolerates more than the single-version one.
func BenchmarkSyncErrorAborts(b *testing.B) {
	for _, mv := range []int{1, 8} {
		for _, dev := range []int64{0, 1_000, 100_000, 10_000_000} {
			b.Run(fmt.Sprintf("versions=%d/dev=%dns", mv, dev), func(b *testing.B) {
				var tb timebase.TimeBase
				if dev == 0 {
					tb = timebase.NewPerfectClock(hwclock.New(hwclock.IdealConfig(4)))
				} else {
					d := hwclock.New(hwclock.Config{TickHz: 1_000_000_000, Nodes: 4, Seed: 1})
					etb, err := timebase.NewExtSyncClockFrom(d, dev)
					if err != nil {
						b.Fatal(err)
					}
					tb = etb
				}
				rt := core.MustRuntime(core.Config{TimeBase: tb, MaxVersions: mv})
				objs := make([]*core.Object, 64)
				for i := range objs {
					objs[i] = core.NewObject(0)
				}
				var wg sync.WaitGroup
				per := b.N/4 + 1
				b.ResetTimer()
				for id := 0; id < 4; id++ {
					wg.Add(1)
					go func(id int) {
						defer wg.Done()
						th := rt.Thread(id)
						for i := 0; i < per; i++ {
							if id%2 == 0 {
								o := objs[(id*7+i)%len(objs)]
								_ = th.Run(func(tx *core.Tx) error {
									v, err := tx.Read(o)
									if err != nil {
										return err
									}
									return tx.Write(o, v.(int)+1)
								})
							} else {
								start := (id*13 + i) % len(objs)
								_ = th.RunReadOnly(func(tx *core.Tx) error {
									for k := 0; k < 16; k++ {
										if _, err := tx.Read(objs[(start+k)%len(objs)]); err != nil {
											return err
										}
									}
									return nil
								})
							}
						}
					}(id)
				}
				wg.Wait()
				b.StopTimer()
				s := rt.Stats()
				b.ReportMetric(s.AbortRate(), "aborts/attempt")
				b.ReportMetric(float64(s.AbortSnapshot), "snapshot-aborts")
			})
		}
	}
}

// BenchmarkBaselines_ReadScan is the §1.2 comparison: read-only scans of
// growing size under concurrent updates, LSA-RT vs TL2 vs the validating
// STM. The interesting shape is how scans/s decays with scan size.
func BenchmarkBaselines_ReadScan(b *testing.B) {
	const tableSize = 256
	for _, scan := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("stm=LSA-RT/scan=%d", scan), func(b *testing.B) {
			rt := core.MustRuntime(core.Config{TimeBase: timebase.NewSharedCounter()})
			objs := make([]*core.Object, tableSize)
			for i := range objs {
				objs[i] = core.NewObject(0)
			}
			th := rt.Thread(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := th.RunReadOnly(func(tx *core.Tx) error {
					for k := 0; k < scan; k++ {
						if _, err := tx.Read(objs[k]); err != nil {
							return err
						}
					}
					return nil
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("stm=TL2/scan=%d", scan), func(b *testing.B) {
			s := tl2.New()
			objs := make([]*tl2.Object, tableSize)
			for i := range objs {
				objs[i] = tl2.NewObject(0)
			}
			th := s.Thread(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := th.RunReadOnly(func(tx *tl2.Tx) error {
					for k := 0; k < scan; k++ {
						if _, err := tx.Read(objs[k]); err != nil {
							return err
						}
					}
					return nil
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("stm=RSTM-val/scan=%d", scan), func(b *testing.B) {
			s := rstmval.New()
			objs := make([]*rstmval.Object, tableSize)
			for i := range objs {
				objs[i] = rstmval.NewObject(0)
			}
			th := s.Thread(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := th.RunReadOnly(func(tx *rstmval.Tx) error {
					for k := 0; k < scan; k++ {
						if _, err := tx.Read(objs[k]); err != nil {
							return err
						}
					}
					return nil
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTimeBaseOps microbenchmarks the raw time-base operations whose
// relative costs drive Figure 2: counter loads/increments vs hardware
// clock reads.
func BenchmarkTimeBaseOps(b *testing.B) {
	bases := map[string]timebase.TimeBase{
		"counter":    timebase.NewSharedCounter(),
		"tl2counter": timebase.NewTL2Counter(),
		"ideal":      timebase.NewPerfectClock(hwclock.New(hwclock.IdealConfig(1))),
		"mmtimer":    timebase.NewMMTimer(1),
	}
	for name, tb := range bases {
		b.Run("GetTime/"+name, func(b *testing.B) {
			c := tb.Clock(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = c.GetTime()
			}
		})
		b.Run("GetNewTS/"+name, func(b *testing.B) {
			c := tb.Clock(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = c.GetNewTS()
			}
		})
	}
}

// BenchmarkTxOps microbenchmarks the engine's per-transaction paths.
func BenchmarkTxOps(b *testing.B) {
	b.Run("read-only-1", func(b *testing.B) {
		rt := core.MustRuntime(core.Config{TimeBase: timebase.NewSharedCounter()})
		o := core.NewObject(0)
		th := rt.Thread(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = th.RunReadOnly(func(tx *core.Tx) error {
				_, err := tx.Read(o)
				return err
			})
		}
	})
	b.Run("update-1", func(b *testing.B) {
		rt := core.MustRuntime(core.Config{TimeBase: timebase.NewSharedCounter()})
		o := core.NewObject(0)
		th := rt.Thread(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = th.Run(func(tx *core.Tx) error {
				return tx.Write(o, i)
			})
		}
	})
	b.Run("read-modify-write-10", func(b *testing.B) {
		rt := core.MustRuntime(core.Config{TimeBase: timebase.NewSharedCounter()})
		objs := make([]*core.Object, 10)
		for i := range objs {
			objs[i] = core.NewObject(0)
		}
		th := rt.Thread(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = th.Run(func(tx *core.Tx) error {
				for _, o := range objs {
					v, err := tx.Read(o)
					if err != nil {
						return err
					}
					if err := tx.Write(o, v.(int)+1); err != nil {
						return err
					}
				}
				return nil
			})
		}
	})
}

// BenchmarkWordVsObjectSTM compares the two LSA representations (§1.1:
// "both object-based and word-based STMs can be used") on the disjoint
// update workload: the word engine's leaner metadata vs the object engine's
// multi-version flexibility.
func BenchmarkWordVsObjectSTM(b *testing.B) {
	const accesses = 10
	b.Run("object", func(b *testing.B) {
		rt := core.MustRuntime(core.Config{TimeBase: timebase.NewSharedCounter()})
		objs := make([]*core.Object, accesses)
		for i := range objs {
			objs[i] = core.NewObject(0)
		}
		th := rt.Thread(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := th.Run(func(tx *core.Tx) error {
				for _, o := range objs {
					v, err := tx.Read(o)
					if err != nil {
						return err
					}
					if err := tx.Write(o, v.(int)+1); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("word", func(b *testing.B) {
		s, err := wordstm.New(timebase.NewSharedCounter(), accesses)
		if err != nil {
			b.Fatal(err)
		}
		th := s.Thread(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := th.Run(func(tx *wordstm.Tx) error {
				for a := 0; a < accesses; a++ {
					v, err := tx.Load(wordstm.Addr(a))
					if err != nil {
						return err
					}
					if err := tx.Store(wordstm.Addr(a), v+1); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
