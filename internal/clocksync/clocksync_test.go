package clocksync

import (
	"testing"

	"repro/internal/hwclock"
	"repro/internal/timebase"
)

func TestMeasureValidation(t *testing.T) {
	dev := hwclock.New(hwclock.IdealConfig(4))
	if _, err := Measure(Config{Rounds: 1}); err == nil {
		t.Error("missing device must be rejected")
	}
	if _, err := Measure(Config{Device: hwclock.New(hwclock.IdealConfig(1)), Rounds: 1}); err == nil {
		t.Error("single-node device must be rejected")
	}
	if _, err := Measure(Config{Device: dev, Rounds: 0}); err == nil {
		t.Error("zero rounds must be rejected")
	}
}

func TestMeasurePerfectClockOffsetsWithinError(t *testing.T) {
	// Against a perfectly synchronized device the estimated offsets must be
	// covered by the error bounds — the paper's Figure 1 observation that
	// "errors are always larger than offsets".
	dev := hwclock.New(hwclock.Config{TickHz: 20_000_000, ReadLatencyTicks: 7, Nodes: 4})
	res, err := Measure(Config{Device: dev, Rounds: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 20 {
		t.Fatalf("rounds = %d, want 20", len(res.Rounds))
	}
	for _, rr := range res.Rounds {
		if rr.MaxAbsOffset > rr.MaxError {
			t.Errorf("round %d: offset %d exceeds error %d on a synchronized clock",
				rr.Round, rr.MaxAbsOffset, rr.MaxError)
		}
		if rr.MaxErrorPlusOffset < rr.MaxError {
			t.Errorf("round %d: error+offset %d < error %d", rr.Round, rr.MaxErrorPlusOffset, rr.MaxError)
		}
	}
	if res.MaxError() <= 0 {
		t.Error("measured error must be positive (communication is not free)")
	}
}

func TestMeasureDetectsInjectedOffsets(t *testing.T) {
	// With large injected offsets and a fine-grained cheap-to-read clock,
	// the estimates must recover the true offsets within the error bound.
	const trueBound = 20000
	dev := hwclock.New(hwclock.Config{
		TickHz: 1_000_000_000, Nodes: 4, MaxOffsetTicks: trueBound, Seed: 23,
	})
	res, err := Measure(Config{Device: dev, Rounds: 5, SamplesPerNode: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Final) != 3 {
		t.Fatalf("final estimates = %d, want 3", len(res.Final))
	}
	for _, est := range res.Final {
		truth := dev.TrueOffset(est.Node) - dev.TrueOffset(0)
		diff := est.Offset - truth
		if diff < 0 {
			diff = -diff
		}
		if diff > est.Error {
			t.Errorf("node %d: estimated offset %d vs true %d differs by %d > error bound %d",
				est.Node, est.Offset, truth, diff, est.Error)
		}
	}
}

func TestCorrectedReducesDisagreement(t *testing.T) {
	const trueBound = 50000
	dev := hwclock.New(hwclock.Config{
		TickHz: 1_000_000_000, Nodes: 4, MaxOffsetTicks: trueBound, Seed: 31,
	})
	res, err := Measure(Config{Device: dev, Rounds: 3, SamplesPerNode: 5})
	if err != nil {
		t.Fatal(err)
	}
	cor, err := NewCorrected(dev, res.Final)
	if err != nil {
		t.Fatal(err)
	}
	if cor.Nodes() != 4 {
		t.Errorf("Nodes = %d, want 4", cor.Nodes())
	}
	if cor.Offset(0) != 0 {
		t.Errorf("reference node correction = %d, want 0", cor.Offset(0))
	}
	// Corrected node reads must agree with the *reference node's* clock
	// (true time + node 0's offset) within the residual bound: external
	// synchronization establishes mutual agreement, not absolute truth.
	ref := dev.TrueOffset(0)
	for node := 0; node < 4; node++ {
		before := dev.Now() + ref
		v := cor.NodeRead(node)
		after := dev.Now() + ref
		slack := cor.Bound() + 2
		if v < before-slack || v > after+slack {
			t.Errorf("node %d corrected read %d outside [%d,%d]±%d", node, v, before, after, slack)
		}
	}
}

func TestCorrectedRejectsBadEstimates(t *testing.T) {
	dev := hwclock.New(hwclock.IdealConfig(2))
	if _, err := NewCorrected(nil, nil); err == nil {
		t.Error("nil device must be rejected")
	}
	if _, err := NewCorrected(dev, []NodeEstimate{{Node: 5}}); err == nil {
		t.Error("out-of-range node must be rejected")
	}
}

func TestCorrectedBacksExtSyncTimeBase(t *testing.T) {
	// End-to-end §3.2 pipeline: measure → correct → run the STM time base
	// on the corrected clocks.
	dev := hwclock.New(hwclock.Config{
		TickHz: 1_000_000_000, Nodes: 4, MaxOffsetTicks: 30000, Seed: 7,
	})
	res, err := Measure(Config{Device: dev, Rounds: 3, SamplesPerNode: 5})
	if err != nil {
		t.Fatal(err)
	}
	cor, err := NewCorrected(dev, res.Final)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := timebase.NewExtSyncClockFrom(cor, cor.Bound())
	if err != nil {
		t.Fatal(err)
	}
	c := tb.Clock(1)
	prev := c.GetTime()
	for i := 0; i < 100; i++ {
		cur := c.GetTime()
		if cur.TS < prev.TS {
			t.Fatalf("corrected time base went backwards: %v → %v", prev, cur)
		}
		if cur.Dev != cor.Bound() {
			t.Fatalf("timestamp deviation %d, want %d", cur.Dev, cor.Bound())
		}
		prev = cur
	}
}

func TestResultAggregates(t *testing.T) {
	r := &Result{Rounds: []RoundResult{
		{MaxAbsOffset: 3, MaxError: 10},
		{MaxAbsOffset: 7, MaxError: 4},
	}}
	if got := r.MaxError(); got != 10 {
		t.Errorf("MaxError = %d, want 10", got)
	}
	if got := r.MaxAbsOffset(); got != 7 {
		t.Errorf("MaxAbsOffset = %d, want 7", got)
	}
}
