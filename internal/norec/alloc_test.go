package norec

// Allocation budgets for the NOrec fast paths — the ratchet behind the
// repo-root BenchmarkSmallTxAllocs trend. The Thread recycles its one Tx
// (read/write logs, promoted index) across attempts, nothing an attempt
// builds escapes it, and with the typed value lane the write-back of a
// numeric payload lands in the cell's atomic word, so the steady-state
// costs are:
//
//   - read-only, small read set: 0 — the value log appends into the
//     recycled backing array.
//   - update, 2 int writes: 0 — the commit write-back stores the numeric
//     lane in place; only escape-hatch (boxed) payloads publish a fresh
//     snapshot pointer.
//
// The striped variant is held to the same zero-allocation budgets.
//
// Values are written far outside the runtime's small-int interface cache
// (> 2⁴⁰) through the typed lane, so these budgets prove zero boxing
// allocations per int write.

import (
	"testing"

	"repro/internal/val"
)

func allocBudget(t *testing.T, name string, budget float64, f func()) {
	t.Helper()
	f() // warm the recycled logs before AllocsPerRun's own warmup
	if got := testing.AllocsPerRun(200, f); got > budget {
		t.Errorf("%s: %.1f allocs/run, budget %.0f", name, got, budget)
	}
}

const big = int64(1) << 40

func TestAllocBudgetReadOnlySmall(t *testing.T) {
	s := New()
	a, b := NewObject(big+1), NewObject(big+2)
	th := s.Thread(0)
	fn := func(tx *Tx) error {
		if _, err := tx.ReadValue(a); err != nil {
			return err
		}
		_, err := tx.ReadValue(b)
		return err
	}
	allocBudget(t, "norec read-only 2 reads", 0, func() {
		if err := th.RunReadOnly(fn); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocBudgetUpdateSmall(t *testing.T) {
	s := New()
	a, b := NewObject(big), NewObject(big)
	th := s.Thread(0)
	bump := func(tx *Tx, o *Object) error {
		v, err := tx.ReadValue(o)
		if err != nil {
			return err
		}
		n, _ := v.AsInt64()
		return tx.WriteValue(o, val.OfInt(int(big+(n+1)%100)))
	}
	fn := func(tx *Tx) error {
		if err := bump(tx, a); err != nil {
			return err
		}
		return bump(tx, b)
	}
	allocBudget(t, "norec 2-write update", 0, func() {
		if err := th.Run(fn); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocBudgetCombinedUpdateSmall(t *testing.T) {
	s := NewCombined()
	a, b := NewObject(big), NewObject(big)
	th := s.Thread(0)
	bump := func(tx *CTx, o *Object) error {
		v, err := tx.ReadValue(o)
		if err != nil {
			return err
		}
		n, _ := v.AsInt64()
		return tx.WriteValue(o, val.OfInt(int(big+(n+1)%100)))
	}
	fn := func(tx *CTx) error {
		if err := bump(tx, a); err != nil {
			return err
		}
		return bump(tx, b)
	}
	allocBudget(t, "norec/combined 2-write update", 0, func() {
		if err := th.Run(fn); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocBudgetAdaptiveUpdateSmall(t *testing.T) {
	s, err := NewAdaptive(AdaptiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewObject(big), NewObject(big)
	th := s.Thread(0)
	bump := func(tx *ATx, o *Object) error {
		v, err := tx.ReadValue(o)
		if err != nil {
			return err
		}
		n, _ := v.AsInt64()
		return tx.WriteValue(o, val.OfInt(int(big+(n+1)%100)))
	}
	fn := func(tx *ATx) error {
		if err := bump(tx, a); err != nil {
			return err
		}
		return bump(tx, b)
	}
	allocBudget(t, "norec/adaptive 2-write update (striped path)", 0, func() {
		if err := th.Run(fn); err != nil {
			t.Fatal(err)
		}
	})
}

// The escalated path is held to the same zero budget: with the width
// threshold at 1 stripe every two-cell transaction escalates mid-attempt,
// so this exercises escalate(), the global read path and commitGlobal.
func TestAllocBudgetAdaptiveEscalatedUpdateSmall(t *testing.T) {
	s, err := NewAdaptive(AdaptiveOptions{EscalateStripes: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewObject(big), NewObject(big)
	if s.sindex(a) == s.sindex(b) {
		t.Fatal("test objects landed in one stripe; the escalated path needs two")
	}
	th := s.Thread(0)
	bump := func(tx *ATx, o *Object) error {
		v, err := tx.ReadValue(o)
		if err != nil {
			return err
		}
		n, _ := v.AsInt64()
		return tx.WriteValue(o, val.OfInt(int(big+(n+1)%100)))
	}
	fn := func(tx *ATx) error {
		if err := bump(tx, a); err != nil {
			return err
		}
		if err := bump(tx, b); err != nil {
			return err
		}
		if !tx.escalated {
			t.Error("two-stripe attempt did not escalate at threshold 1")
		}
		return nil
	}
	allocBudget(t, "norec/adaptive 2-write update (escalated path)", 0, func() {
		if err := th.Run(fn); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocBudgetStripedUpdateSmall(t *testing.T) {
	s := NewStriped()
	a, b := NewObject(big), NewObject(big)
	th := s.Thread(0)
	bump := func(tx *STx, o *Object) error {
		v, err := tx.ReadValue(o)
		if err != nil {
			return err
		}
		n, _ := v.AsInt64()
		return tx.WriteValue(o, val.OfInt(int(big+(n+1)%100)))
	}
	fn := func(tx *STx) error {
		if err := bump(tx, a); err != nil {
			return err
		}
		return bump(tx, b)
	}
	allocBudget(t, "norec/striped 2-write update", 0, func() {
		if err := th.Run(fn); err != nil {
			t.Fatal(err)
		}
	})
}
