package stmserve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Server serves the line protocol over stream connections. It is a thin
// shell: each connection gets one Session (so the executor decides the
// Thread mapping), a reused Request/Response pair, and a read loop — all
// transactional semantics live in the Service. ServeConn is exported so
// tests drive it over net.Pipe without sockets.
type Server struct {
	svc *Service

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool

	wg sync.WaitGroup
}

// NewServer builds a line-protocol server over svc.
func NewServer(svc *Service) *Server {
	return &Server{
		svc:       svc,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
}

// Service returns the backing service.
func (s *Server) Service() *Service { return s.svc }

// ErrServerClosed is returned by Serve after Shutdown.
var ErrServerClosed = errors.New("stmserve: server closed")

// Serve accepts connections on l until Shutdown (or a fatal accept error),
// serving each on its own goroutine. It blocks; run it on a goroutine per
// listener.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return ErrServerClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return fmt.Errorf("stmserve: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				s.wg.Done()
			}()
			s.ServeConn(conn)
		}()
	}
}

// Shutdown closes every listener and open connection, then waits for the
// connection handlers to drain. Safe to call more than once.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// maxLine bounds a request line; batch requests beyond it should be split.
const maxLine = 1 << 20

// ServeConn serves the line protocol on one connection until EOF or error.
// One Session spans the connection's life — in ModeThread this is what
// gives each connection its own engine Thread.
func (s *Server) ServeConn(conn io.ReadWriteCloser) {
	defer conn.Close()
	sess := s.svc.Session()
	defer sess.Close()

	var req Request
	var resp Response
	out := make([]byte, 0, 256)
	w := bufio.NewWriter(conn)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), maxLine)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if err := ParseRequest(line, &req); err != nil {
			resp.Reset()
			resp.Err = err.Error()
		} else {
			sess.Exec(&req, &resp) // failure is already in resp.Err
		}
		out = AppendResponse(out[:0], &resp)
		out = append(out, '\n')
		if _, err := w.Write(out); err != nil {
			return
		}
		// The protocol is strictly request-response per connection, so
		// flush eagerly; batching happens across connections, not within.
		if err := w.Flush(); err != nil {
			return
		}
	}
}
