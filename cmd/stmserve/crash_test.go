package main

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/stmserve"
)

// TestKillNineRecovery is the real-process half of the crash-recovery
// proof: build the actual stmserve binary, run it with a WAL, hard-kill it
// (SIGKILL — no handlers, no flush, exactly `kill -9`) while the recovery
// audit is driving acknowledged transfers over TCP, restart it over the
// same WAL directory, and require the audit to find every acked commit
// again. The in-process crashpoint tests cover every deterministic fault;
// this covers the one thing they cannot — a dead process.
func TestKillNineRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real server binary; skipped in -short")
	}

	bin := filepath.Join(t.TempDir(), "stmserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Both server runs must bind the same address (the audit reconnects to
	// it), so reserve a port the usual racy-but-reliable way.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	walDir := t.TempDir()
	start := func() *exec.Cmd {
		t.Helper()
		cmd := exec.Command(bin,
			"-engine", "durable/norec", "-wal", walDir, "-fsync", "group",
			"-keys", "64", "-listen", addr)
		cmd.Stderr = os.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// The server prints "listening on <addr>" once the socket is bound.
		ready := make(chan error, 1)
		go func() {
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				if strings.Contains(sc.Text(), "listening on") {
					ready <- nil
					// Keep draining so the server never blocks on stdout.
					for sc.Scan() {
					}
					return
				}
			}
			ready <- fmt.Errorf("server exited before listening (%v)", sc.Err())
		}()
		select {
		case err := <-ready:
			if err != nil {
				cmd.Process.Kill()
				t.Fatal(err)
			}
		case <-time.After(20 * time.Second):
			cmd.Process.Kill()
			t.Fatal("server did not start listening in time")
		}
		return cmd
	}

	srv := start()

	// Drive the audit from this process over real TCP; it blocks until the
	// server dies, reconnects, and verifies.
	auditDone := make(chan struct {
		rep *stmserve.AuditReport
		err error
	}, 1)
	go func() {
		rep, err := stmserve.RunRecoveryAudit(stmserve.NetDialer(addr), stmserve.AuditOptions{
			Conns:            4,
			Window:           60 * time.Second,
			ReconnectTimeout: 60 * time.Second,
			ExpectRecovered:  true,
		})
		auditDone <- struct {
			rep *stmserve.AuditReport
			err error
		}{rep, err}
	}()

	// Let the audit bank some acked transfers, then kill -9.
	time.Sleep(500 * time.Millisecond)
	if err := srv.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	if err := srv.Wait(); err == nil {
		t.Fatal("SIGKILLed server exited cleanly?")
	}

	// Restart over the same WAL; the audit's reconnect loop finds it.
	srv2 := start()
	defer func() {
		srv2.Process.Signal(syscall.SIGTERM)
		srv2.Wait()
	}()

	select {
	case res := <-auditDone:
		if res.err != nil {
			t.Fatalf("recovery audit failed: %v (report %+v)", res.err, res.rep)
		}
		if res.rep.Acked == 0 {
			t.Fatal("audit acked zero transfers before the kill")
		}
		if res.rep.RecoveredCommits == 0 {
			t.Fatal("restarted server recovered zero commits")
		}
		t.Logf("kill -9 audit: acked %d, down after %v, back after %v, recovered %d commits",
			res.rep.Acked, res.rep.DownAfter.Round(time.Millisecond),
			res.rep.ReconnectAfter.Round(time.Millisecond), res.rep.RecoveredCommits)
	case <-time.After(120 * time.Second):
		t.Fatal("recovery audit did not finish")
	}
}
