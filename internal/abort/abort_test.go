package abort

import (
	"errors"
	"fmt"
	"testing"
)

func TestErrIsSentinel(t *testing.T) {
	sentinel := errors.New("stm: aborted")
	tagged := &Err{Sentinel: sentinel, Reason: Contention, Msg: "stm: aborted: lock held"}
	if !errors.Is(tagged, sentinel) {
		t.Error("tagged abort must satisfy errors.Is against its sentinel")
	}
	if errors.Is(tagged, errors.New("other")) {
		t.Error("tagged abort must not match unrelated errors")
	}
	if tagged.Error() != "stm: aborted: lock held" {
		t.Errorf("Error() = %q", tagged.Error())
	}
	// Wrapping a tagged abort (fmt %w) must still match the sentinel.
	wrapped := fmt.Errorf("worker 3: %w", tagged)
	if !errors.Is(wrapped, sentinel) {
		t.Error("wrapped tagged abort must still match the sentinel")
	}
}

func TestObserve(t *testing.T) {
	sentinel := errors.New("aborted")
	var c Counts
	c.Observe(&Err{Sentinel: sentinel, Reason: Snapshot})
	c.Observe(&Err{Sentinel: sentinel, Reason: Snapshot})
	c.Observe(&Err{Sentinel: sentinel, Reason: Contention})
	c.Observe(&Err{Sentinel: sentinel, Reason: Escalation})
	c.Observe(sentinel) // untagged → Validation
	want := Counts{Snapshot: 2, Validation: 1, Contention: 1, Escalation: 1}
	if c != want {
		t.Errorf("counts = %v, want %v", c, want)
	}
	if c.Total() != 5 {
		t.Errorf("total = %d, want 5", c.Total())
	}
	var d Counts
	d.Observe(sentinel)
	d.Add(c)
	if d.Total() != 6 || d[Validation] != 2 {
		t.Errorf("after Add: %v", d)
	}
}

func TestReasonString(t *testing.T) {
	names := map[Reason]string{
		Snapshot: "snapshot", Validation: "validation",
		Contention: "contention", Escalation: "escalation", NumReasons: "unknown",
	}
	for r, want := range names {
		if r.String() != want {
			t.Errorf("Reason(%d).String() = %q, want %q", r, r.String(), want)
		}
	}
}
