package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/engine"
)

// listNode is one element of the transactional sorted linked list. The node
// value stored in a cell is immutable; updates replace the node.
type listNode struct {
	key  int
	next engine.Cell // nil at the tail sentinel
}

// IntSet is a sorted-linked-list integer set — the standard STM
// data-structure benchmark. Membership tests traverse the list reading many
// objects; inserts and removes splice nodes by rewriting one predecessor.
// Long traversals under concurrent splices are exactly the access pattern
// that rewards cheap per-access consistency.
type IntSet struct {
	// KeyRange is the key universe [0, KeyRange) (default 256).
	KeyRange int
	// UpdateRatio is the fraction of add/remove operations, split evenly
	// (default 0.2; the rest are contains).
	UpdateRatio float64
	// InitialFill is the fraction of the key range pre-inserted (default
	// 0.5).
	InitialFill float64
	// Seed seeds the per-worker RNGs.
	Seed int64

	eng  engine.Engine
	head engine.Cell
}

// Name implements harness.Workload.
func (s *IntSet) Name() string { return fmt.Sprintf("intset/%d", s.keyRange()) }

func (s *IntSet) keyRange() int {
	if s.KeyRange == 0 {
		return 256
	}
	return s.KeyRange
}

func (s *IntSet) updateRatio() float64 {
	if s.UpdateRatio == 0 {
		return 0.2
	}
	return s.UpdateRatio
}

func (s *IntSet) initialFill() float64 {
	if s.InitialFill == 0 {
		return 0.5
	}
	return s.InitialFill
}

// Init implements harness.Workload: build head/tail sentinels and pre-fill.
func (s *IntSet) Init(eng engine.Engine, workers int) error {
	if s.keyRange() < 1 {
		return fmt.Errorf("workload: IntSet.KeyRange must be ≥ 1, got %d", s.KeyRange)
	}
	s.eng = eng
	tail := eng.NewCell(listNode{key: math.MaxInt})
	s.head = eng.NewCell(listNode{key: math.MinInt, next: tail})
	th := eng.Thread(1 << 19)
	rng := rand.New(rand.NewSource(s.Seed + 99))
	for k := 0; k < s.keyRange(); k++ {
		if rng.Float64() >= s.initialFill() {
			continue
		}
		if _, err := s.Add(th, k); err != nil {
			return err
		}
	}
	return nil
}

// Step implements harness.Workload. The transaction closures are built once
// per worker and fed the key through a captured local.
func (s *IntSet) Step(eng engine.Engine, th engine.Thread, id int) func() error {
	rng := rand.New(rand.NewSource(s.Seed + int64(id)*104729 + 3))
	var key int
	add := func(tx engine.Txn) error {
		_, err := s.addIn(tx, key)
		return err
	}
	remove := func(tx engine.Txn) error {
		_, err := s.removeIn(tx, key)
		return err
	}
	contains := func(tx engine.Txn) error {
		_, _, _, err := s.find(tx, key)
		return err
	}
	return func() error {
		key = rng.Intn(s.keyRange())
		p := rng.Float64()
		switch {
		case p < s.updateRatio()/2:
			return th.Run(add)
		case p < s.updateRatio():
			return th.Run(remove)
		default:
			return th.RunReadOnly(contains)
		}
	}
}

// find walks the list inside tx and returns the predecessor cell, its
// node, and the node at or after key.
func (s *IntSet) find(tx engine.Txn, key int) (predCell engine.Cell, pred listNode, cur listNode, err error) {
	predCell = s.head
	pred, err = engine.Get[listNode](tx, predCell)
	if err != nil {
		return nil, listNode{}, listNode{}, err
	}
	for {
		curCell := pred.next
		cur, err = engine.Get[listNode](tx, curCell)
		if err != nil {
			return nil, listNode{}, listNode{}, err
		}
		if cur.key >= key {
			return predCell, pred, cur, nil
		}
		predCell, pred = curCell, cur
	}
}

// Contains reports whether key is in the set (read-only transaction).
func (s *IntSet) Contains(th engine.Thread, key int) (bool, error) {
	var found bool
	err := th.RunReadOnly(func(tx engine.Txn) error {
		_, _, cur, err := s.find(tx, key)
		if err != nil {
			return err
		}
		found = cur.key == key
		return nil
	})
	return found, err
}

// addIn is Add's transactional body.
func (s *IntSet) addIn(tx engine.Txn, key int) (bool, error) {
	predCell, pred, cur, err := s.find(tx, key)
	if err != nil {
		return false, err
	}
	if cur.key == key {
		return false, nil
	}
	node := s.eng.NewCell(listNode{key: key, next: pred.next})
	if err := tx.Write(predCell, listNode{key: pred.key, next: node}); err != nil {
		return false, err
	}
	return true, nil
}

// Add inserts key; it reports whether the set changed.
func (s *IntSet) Add(th engine.Thread, key int) (bool, error) {
	var added bool
	err := th.Run(func(tx engine.Txn) error {
		var err error
		added, err = s.addIn(tx, key)
		return err
	})
	return added, err
}

// removeIn is Remove's transactional body.
func (s *IntSet) removeIn(tx engine.Txn, key int) (bool, error) {
	predCell, pred, cur, err := s.find(tx, key)
	if err != nil {
		return false, err
	}
	if cur.key != key {
		return false, nil
	}
	// Read the victim to get its successor, then splice it out.
	victim, err := engine.Get[listNode](tx, pred.next)
	if err != nil {
		return false, err
	}
	if err := tx.Write(predCell, listNode{key: pred.key, next: victim.next}); err != nil {
		return false, err
	}
	return true, nil
}

// Remove deletes key; it reports whether the set changed.
func (s *IntSet) Remove(th engine.Thread, key int) (bool, error) {
	var removed bool
	err := th.Run(func(tx engine.Txn) error {
		var err error
		removed, err = s.removeIn(tx, key)
		return err
	})
	return removed, err
}

// Snapshot returns the keys currently in the set, in order, via a read-only
// transaction.
func (s *IntSet) Snapshot(th engine.Thread) ([]int, error) {
	var keys []int
	err := th.RunReadOnly(func(tx engine.Txn) error {
		keys = keys[:0]
		node, err := engine.Get[listNode](tx, s.head)
		if err != nil {
			return err
		}
		for node.next != nil {
			node, err = engine.Get[listNode](tx, node.next)
			if err != nil {
				return err
			}
			if node.next != nil { // skip the tail sentinel
				keys = append(keys, node.key)
			}
		}
		return nil
	})
	return keys, err
}
