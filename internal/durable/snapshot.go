// Snapshot writing and log compaction: the snapshot file replaces every
// redo record at or below its watermark, so old segments can be deleted and
// recovery replays snapshot-then-tail instead of the full history.
package durable

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// WriteSnapshot atomically installs a snapshot of entries at watermark seq
// and deletes every segment the watermark fully covers. The install is
// write-tmp → fsync → rename → fsync-dir, so a crash leaves either the old
// snapshot or the new one, never a torn one; a crash between rename and
// segment deletion leaves stale segments whose records recovery then skips
// (they are ≤ the watermark). Concurrent appends are safe: only segments
// strictly older than the active one are ever deleted.
func (l *Log) WriteSnapshot(seq uint64, entries []Entry) error {
	if err := l.Err(); err != nil {
		return err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
	buf := make([]byte, len(snapshotMagic)+frameHeaderLen, len(snapshotMagic)+frameHeaderLen+64+8*len(entries))
	copy(buf, snapshotMagic)
	payload, err := appendSnapshotPayload(buf, seq, entries)
	if err != nil {
		return err
	}
	frameAround(payload[len(snapshotMagic):])

	tmp := filepath.Join(l.cfg.dir, snapshotTmp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := w.Write(payload); err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("durable: snapshot write: %w", err)
	}

	if l.cfg.crash.fire(CrashMidSnapshotRename) {
		// Crash between writing snapshot.tmp and the rename: the tmp file
		// is left behind for boot to ignore and clean up.
		l.mu.Lock()
		l.fail(ErrCrashed)
		l.mu.Unlock()
		return ErrCrashed
	}

	if err := os.Rename(tmp, filepath.Join(l.cfg.dir, snapshotName)); err != nil {
		return err
	}
	if err := syncDir(l.cfg.dir); err != nil {
		return err
	}

	if l.cfg.crash.fire(CrashAfterSnapshotRename) {
		// Crash between the rename and old-segment truncation: the new
		// snapshot is live, the covered segments linger; boot skips their
		// records (all ≤ the watermark).
		l.mu.Lock()
		l.fail(ErrCrashed)
		l.mu.Unlock()
		return ErrCrashed
	}

	return l.truncateCovered(seq)
}

// truncateCovered deletes every segment all of whose records the snapshot
// watermark covers: segment i is disposable when the next segment starts at
// or below watermark+1 (so every seq in segment i is ≤ watermark). The last
// segment (the active one) never has a successor and is never deleted, so
// this cannot race the appender.
func (l *Log) truncateCovered(watermark uint64) error {
	segs, err := listSegments(l.cfg.dir)
	if err != nil {
		return err
	}
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].firstSeq <= watermark+1 {
			if err := os.Remove(segs[i].path); err != nil {
				return err
			}
		}
	}
	return syncDir(l.cfg.dir)
}
