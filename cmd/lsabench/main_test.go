package main

import (
	"reflect"
	"testing"
)

func TestParseInts(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		ok   bool
	}{
		{"", nil, true},
		{"1", []int{1}, true},
		{"1,2,16", []int{1, 2, 16}, true},
		{" 1 , 2 ", []int{1, 2}, true},
		{"1,x", nil, false},
		{",", nil, false},
	}
	for _, c := range cases {
		got, err := parseInts(c.in)
		if (err == nil) != c.ok {
			t.Errorf("parseInts(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseInts(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}
