package stmserve

import (
	"bufio"
	"fmt"
	"io"
	"net"
)

// Client speaks the line protocol over one stream connection. Like Session,
// a Client is single-goroutine; open one per concurrent caller (that is the
// load generator's whole point).
type Client struct {
	conn io.ReadWriteCloser
	w    *bufio.Writer
	sc   *bufio.Scanner
	buf  []byte
}

// NewClient wraps an established connection (net.Conn, net.Pipe end, ...).
func NewClient(conn io.ReadWriteCloser) *Client {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), maxLine)
	return &Client{conn: conn, w: bufio.NewWriter(conn), sc: sc, buf: make([]byte, 0, 256)}
}

// Dial connects to a line-protocol server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do executes one request: encode, write, read, decode. Transport and
// protocol failures come back as the error; op-level failures land in
// resp.Err with a nil error (callers branch on resp.Err like the in-proc
// Session's callers branch on the returned error).
func (c *Client) Do(req *Request, resp *Response) error {
	var err error
	c.buf, err = AppendRequest(c.buf[:0], req)
	if err != nil {
		return err
	}
	c.buf = append(c.buf, '\n')
	if _, err := c.w.Write(c.buf); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return err
		}
		return fmt.Errorf("stmserve: connection closed mid-request: %w", io.EOF)
	}
	return ParseResponse(c.sc.Bytes(), resp)
}
