package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// Queue is a transactional bounded FIFO ring buffer: producers and
// consumers contend on the head/tail cursors while the slots themselves are
// mostly disjoint — a classic mixed-contention STM workload (two hot
// objects, many cold ones).
type Queue struct {
	// Capacity is the ring size (default 64).
	Capacity int
	// Seed seeds the per-worker RNGs.
	Seed int64

	head  *core.Object // index of the next element to pop
	tail  *core.Object // index of the next free slot
	slots []*core.Object
}

// Name implements harness.Workload.
func (q *Queue) Name() string { return fmt.Sprintf("queue/%d", q.capacity()) }

func (q *Queue) capacity() int {
	if q.Capacity == 0 {
		return 64
	}
	return q.Capacity
}

// Init implements harness.Workload.
func (q *Queue) Init(rt *core.Runtime, workers int) error {
	if q.capacity() < 1 {
		return fmt.Errorf("workload: Queue.Capacity must be ≥ 1, got %d", q.Capacity)
	}
	q.head = core.NewObject(0)
	q.tail = core.NewObject(0)
	q.slots = make([]*core.Object, q.capacity())
	for i := range q.slots {
		q.slots[i] = core.NewObject(0)
	}
	return nil
}

// Push appends v; it reports false if the queue was full.
func (q *Queue) Push(th *core.Thread, v int) (bool, error) {
	var ok bool
	err := th.Run(func(tx *core.Tx) error {
		hv, err := tx.Read(q.head)
		if err != nil {
			return err
		}
		tv, err := tx.Read(q.tail)
		if err != nil {
			return err
		}
		if tv.(int)-hv.(int) >= q.capacity() {
			ok = false
			return nil
		}
		if err := tx.Write(q.slots[tv.(int)%q.capacity()], v); err != nil {
			return err
		}
		if err := tx.Write(q.tail, tv.(int)+1); err != nil {
			return err
		}
		ok = true
		return nil
	})
	return ok, err
}

// Pop removes the oldest element; it reports false if the queue was empty.
func (q *Queue) Pop(th *core.Thread) (int, bool, error) {
	var out int
	var ok bool
	err := th.Run(func(tx *core.Tx) error {
		hv, err := tx.Read(q.head)
		if err != nil {
			return err
		}
		tv, err := tx.Read(q.tail)
		if err != nil {
			return err
		}
		if hv.(int) == tv.(int) {
			ok = false
			return nil
		}
		sv, err := tx.Read(q.slots[hv.(int)%q.capacity()])
		if err != nil {
			return err
		}
		if err := tx.Write(q.head, hv.(int)+1); err != nil {
			return err
		}
		out, ok = sv.(int), true
		return nil
	})
	return out, ok, err
}

// Len returns the current number of queued elements.
func (q *Queue) Len(th *core.Thread) (int, error) {
	var n int
	err := th.RunReadOnly(func(tx *core.Tx) error {
		hv, err := tx.Read(q.head)
		if err != nil {
			return err
		}
		tv, err := tx.Read(q.tail)
		if err != nil {
			return err
		}
		n = tv.(int) - hv.(int)
		return nil
	})
	return n, err
}

// Step implements harness.Workload: even workers produce, odd workers
// consume.
func (q *Queue) Step(rt *core.Runtime, th *core.Thread, id int) func() error {
	rng := rand.New(rand.NewSource(q.Seed + int64(id)*131 + 7))
	return func() error {
		if id%2 == 0 {
			_, err := q.Push(th, rng.Int())
			return err
		}
		_, _, err := q.Pop(th)
		return err
	}
}

// ReadMostly is an array of objects scanned by everyone and occasionally
// updated: the workload where invisible reads and cheap per-access
// consistency pay off most.
type ReadMostly struct {
	// Objects is the table size (default 128).
	Objects int
	// WriteRatio is the fraction of update transactions (default 0.05).
	WriteRatio float64
	// ScanLen is how many objects a reader scans (default 32).
	ScanLen int
	// Seed seeds the per-worker RNGs.
	Seed int64

	objs []*core.Object
}

// Name implements harness.Workload.
func (r *ReadMostly) Name() string { return fmt.Sprintf("readmostly/%d", r.objects()) }

func (r *ReadMostly) objects() int {
	if r.Objects == 0 {
		return 128
	}
	return r.Objects
}

func (r *ReadMostly) writeRatio() float64 {
	if r.WriteRatio == 0 {
		return 0.05
	}
	return r.WriteRatio
}

func (r *ReadMostly) scanLen() int {
	if r.ScanLen == 0 {
		return 32
	}
	return r.ScanLen
}

// Init implements harness.Workload.
func (r *ReadMostly) Init(rt *core.Runtime, workers int) error {
	if r.scanLen() > r.objects() {
		return fmt.Errorf("workload: scan %d exceeds table %d", r.scanLen(), r.objects())
	}
	r.objs = make([]*core.Object, r.objects())
	for i := range r.objs {
		r.objs[i] = core.NewObject(0)
	}
	return nil
}

// Step implements harness.Workload.
func (r *ReadMostly) Step(rt *core.Runtime, th *core.Thread, id int) func() error {
	rng := rand.New(rand.NewSource(r.Seed + int64(id)*977 + 13))
	return func() error {
		if rng.Float64() < r.writeRatio() {
			o := r.objs[rng.Intn(len(r.objs))]
			return th.Run(func(tx *core.Tx) error {
				v, err := tx.Read(o)
				if err != nil {
					return err
				}
				return tx.Write(o, v.(int)+1)
			})
		}
		start := rng.Intn(len(r.objs))
		return th.RunReadOnly(func(tx *core.Tx) error {
			for i := 0; i < r.scanLen(); i++ {
				if _, err := tx.Read(r.objs[(start+i)%len(r.objs)]); err != nil {
					return err
				}
			}
			return nil
		})
	}
}
