package stmserve

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/latency"
	"repro/internal/stats"
)

// The load generator: drive a service — over the wire or in-process — from
// many concurrent connections with a zipfian key distribution, and report
// throughput plus per-op client-side latency percentiles. cmd/stmload is a
// flag shell over RunLoad; the Caller/Dialer abstraction is what lets the
// same loop hammer a TCP server and an in-proc Service (and lets tests run
// the whole generator without sockets).

// Caller issues requests for one connection. Single-goroutine, like Client
// and Session.
type Caller interface {
	// Do executes one request. Transport failures are the error; op-level
	// failures land in resp.Err.
	Do(req *Request, resp *Response) error
	Close() error
}

// Dialer opens one load connection.
type Dialer func() (Caller, error)

// NetDialer dials the line-protocol server at addr for each connection.
func NetDialer(addr string) Dialer {
	return func() (Caller, error) { return Dial(addr) }
}

// ServiceDialer issues requests directly against svc — the in-process mode
// that isolates service+engine cost from the network stack.
func ServiceDialer(svc *Service) Dialer {
	return func() (Caller, error) { return &sessionCaller{sess: svc.Session()}, nil }
}

type sessionCaller struct {
	sess *Session
}

func (c *sessionCaller) Do(req *Request, resp *Response) error {
	c.sess.Exec(req, resp) // op-level failure is already in resp.Err
	return nil
}

func (c *sessionCaller) Close() error {
	c.sess.Close()
	return nil
}

// Mix weighs the generated operations. Weights are relative (they need not
// sum to 100); zero-weight ops are never issued.
type Mix struct {
	Transfer   int
	Read       int
	Write      int
	Snapshot   int
	BatchRead  int
	BatchWrite int
	CAS        int
	SetOps     int // split evenly across add/remove/contains
}

// DefaultMix is a bank-style blend: transfer-dominated, with enough reads,
// snapshots and batch traffic to exercise every code path.
var DefaultMix = Mix{
	Transfer: 40, Read: 20, Write: 5, Snapshot: 10,
	BatchRead: 5, BatchWrite: 5, CAS: 10, SetOps: 5,
}

// ParseMix parses "transfer=40,read=20,snapshot=10,..." (keys are the Op
// names plus "set" for the set-op bundle; omitted keys weigh zero).
func ParseMix(s string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("stmserve: mix entry %q is not name=weight", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return m, fmt.Errorf("stmserve: mix weight %q is not a non-negative integer", val)
		}
		switch name {
		case "transfer":
			m.Transfer = w
		case "read":
			m.Read = w
		case "write":
			m.Write = w
		case "snapshot":
			m.Snapshot = w
		case "batch-read":
			m.BatchRead = w
		case "batch-write":
			m.BatchWrite = w
		case "cas":
			m.CAS = w
		case "set":
			m.SetOps = w
		default:
			return m, fmt.Errorf("stmserve: unknown mix op %q", name)
		}
	}
	if m == (Mix{}) {
		return m, fmt.Errorf("stmserve: mix %q has no positive weights", s)
	}
	return m, nil
}

// mixTable expands the weights into a cumulative (op, bound) ladder for
// O(#ops) weighted sampling. Set ops split across the three verbs.
type mixEntry struct {
	op    Op
	bound int
}

func (m Mix) table() ([]mixEntry, int, error) {
	weights := []struct {
		op Op
		w  int
	}{
		{OpTransfer, m.Transfer}, {OpRead, m.Read}, {OpWrite, m.Write},
		{OpSnapshot, m.Snapshot}, {OpBatchRead, m.BatchRead},
		{OpBatchWrite, m.BatchWrite}, {OpCAS, m.CAS},
		{OpSetAdd, m.SetOps}, {OpSetRemove, m.SetOps}, {OpSetContains, m.SetOps},
	}
	var entries []mixEntry
	total := 0
	for _, e := range weights {
		if e.w <= 0 {
			continue
		}
		total += e.w
		entries = append(entries, mixEntry{e.op, total})
	}
	if total == 0 {
		return nil, 0, fmt.Errorf("stmserve: operation mix has no positive weights")
	}
	return entries, total, nil
}

// LoadOptions parameterizes RunLoad. Zero values select the defaults.
type LoadOptions struct {
	// Conns is the number of concurrent connections (default 64). Each is
	// one goroutine driving one Caller in a closed loop.
	Conns int
	// Duration is the measured run length (default 5s).
	Duration time.Duration
	// Keys is the target keyspace size. 0 asks the server via INFO.
	Keys int
	// BatchKeys sizes snapshot/batch requests (default 8, clamped to Keys).
	BatchKeys int
	// ZipfS and ZipfV shape the zipfian key distribution (defaults 1.2 and
	// 1; s must be > 1, v ≥ 1 — rand.NewZipf's domain).
	ZipfS, ZipfV float64
	// Mix weighs the operations (default DefaultMix).
	Mix Mix
	// Seed makes runs reproducible; 0 derives per-connection seeds from 1.
	Seed int64
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Conns <= 0 {
		o.Conns = 64
	}
	if o.Duration <= 0 {
		o.Duration = 5 * time.Second
	}
	if o.BatchKeys <= 0 {
		o.BatchKeys = 8
	}
	if o.ZipfS == 0 {
		o.ZipfS = 1.2
	}
	if o.ZipfV == 0 {
		o.ZipfV = 1
	}
	if o.Mix == (Mix{}) {
		o.Mix = DefaultMix
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// OpReport is one operation's client-side outcome: completed calls, op-level
// errors, and the end-to-end latency distribution (queueing, wire and
// service included — this is what the connection saw).
type OpReport struct {
	Op      string           `json:"op"`
	Ops     uint64           `json:"ops"`
	Errs    uint64           `json:"errs,omitempty"`
	Latency *latency.Summary `json:"latency_ns,omitempty"`
}

// LoadReport is a load run's result.
type LoadReport struct {
	Conns      int           `json:"conns"`
	Duration   time.Duration `json:"duration_ns"`
	Keys       int           `json:"keys"`
	Ops        uint64        `json:"ops"`
	Errs       uint64        `json:"errs,omitempty"`
	DialErrs   uint64        `json:"dial_errs,omitempty"`
	Throughput float64       `json:"ops_per_sec"`
	PerOp      []OpReport    `json:"per_op,omitempty"`
}

// Table renders the per-op latency breakdown.
func (r *LoadReport) Table() string {
	t := stats.NewTable("op", "ops", "errs", "p50", "p99", "p999")
	for _, op := range r.PerOp {
		p50, p99, p999 := "-", "-", "-"
		if s := op.Latency; s != nil {
			p50 = time.Duration(s.P50).String()
			p99 = time.Duration(s.P99).String()
			p999 = time.Duration(s.P999).String()
		}
		t.AddRowf(op.Op, op.Ops, op.Errs, p50, p99, p999)
	}
	t.AddRowf("total", r.Ops, r.Errs, "", "", "")
	return t.String()
}

// RunLoad drives dial-per-connection closed-loop load for opts.Duration and
// reports what the clients observed. It returns an error only when setup
// fails outright (no connection could be established, unusable options);
// per-call failures are counted in the report instead.
func RunLoad(dial Dialer, opts LoadOptions) (*LoadReport, error) {
	opts = opts.withDefaults()
	if opts.ZipfS <= 1 || opts.ZipfV < 1 {
		return nil, fmt.Errorf("stmserve: zipf parameters s=%v v=%v out of range (need s > 1, v ≥ 1)", opts.ZipfS, opts.ZipfV)
	}
	entries, total, err := opts.Mix.table()
	if err != nil {
		return nil, err
	}

	keys := opts.Keys
	if keys == 0 {
		// Ask the server: INFO returns the keyspace size as Vals[0].
		c, err := dial()
		if err != nil {
			return nil, fmt.Errorf("stmserve: load dial: %w", err)
		}
		var resp Response
		err = c.Do(&Request{Op: OpInfo}, &resp)
		c.Close()
		if err != nil {
			return nil, fmt.Errorf("stmserve: INFO: %w", err)
		}
		if resp.Err != "" || len(resp.Vals) == 0 {
			return nil, fmt.Errorf("stmserve: INFO: %s", resp.Err)
		}
		keys = int(resp.Vals[0])
	}
	if keys < 2 {
		return nil, fmt.Errorf("stmserve: keyspace of %d keys is too small to load (need ≥ 2)", keys)
	}
	batch := opts.BatchKeys
	if batch > keys {
		batch = keys
	}

	// Shared per-op telemetry: atomic histograms and counters, recorded by
	// every connection, merged by address.
	var hists [numOps]latency.Histogram
	var ops, errs [numOps]atomic.Uint64
	var dialErrs atomic.Uint64

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < opts.Conns; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := dial()
			if err != nil {
				dialErrs.Add(1)
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(opts.Seed + int64(id)))
			zipf := rand.NewZipf(rng, opts.ZipfS, opts.ZipfV, uint64(keys-1))
			key := func() int { return int(zipf.Uint64()) }
			req := Request{Keys: make([]int, 0, batch), Vals: make([]int64, 0, batch)}
			var resp Response
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := rng.Intn(total)
				var op Op
				for _, e := range entries {
					if n < e.bound {
						op = e.op
						break
					}
				}
				req.Op = op
				req.Keys, req.Vals = req.Keys[:0], req.Vals[:0]
				switch op {
				case OpTransfer:
					k := key()
					req.Key = k
					req.Key2 = (k + 1 + rng.Intn(keys-1)) % keys
					req.Val = int64(rng.Intn(10))
				case OpRead, OpSetAdd, OpSetRemove, OpSetContains:
					req.Key = key()
				case OpWrite:
					req.Key = key()
					req.Val = int64(rng.Intn(1000))
				case OpCAS:
					req.Key = key()
					req.Val = int64(rng.Intn(1000))
					req.Val2 = int64(rng.Intn(1000))
				case OpSnapshot, OpBatchRead:
					for j := 0; j < batch; j++ {
						req.Keys = append(req.Keys, key())
					}
				case OpBatchWrite:
					// Distinct keys keep the written values well-defined;
					// a fixed stride window is cheap and good enough.
					base := key()
					for j := 0; j < batch; j++ {
						req.Keys = append(req.Keys, (base+j)%keys)
						req.Vals = append(req.Vals, int64(rng.Intn(1000)))
					}
				}
				start := time.Now()
				if err := c.Do(&req, &resp); err != nil {
					// Transport failure: likely server shutdown; this
					// connection is done.
					errs[op].Add(1)
					return
				}
				hists[op].Record(time.Since(start))
				if resp.Err != "" {
					errs[op].Add(1)
				} else {
					ops[op].Add(1)
				}
			}
		}(i)
	}

	timer := time.NewTimer(opts.Duration)
	<-timer.C
	close(stop)
	wg.Wait()

	rep := &LoadReport{Conns: opts.Conns, Duration: opts.Duration, Keys: keys, DialErrs: dialErrs.Load()}
	for op := OpPing; op < numOps; op++ {
		o, e := ops[op].Load(), errs[op].Load()
		if o == 0 && e == 0 {
			continue
		}
		rep.Ops += o
		rep.Errs += e
		rep.PerOp = append(rep.PerOp, OpReport{
			Op: op.String(), Ops: o, Errs: e, Latency: hists[op].Load().Summary(),
		})
	}
	sort.Slice(rep.PerOp, func(i, j int) bool { return rep.PerOp[i].Ops > rep.PerOp[j].Ops })
	rep.Throughput = float64(rep.Ops) / opts.Duration.Seconds()
	if rep.DialErrs == uint64(opts.Conns) {
		return rep, fmt.Errorf("stmserve: all %d load connections failed to dial", opts.Conns)
	}
	return rep, nil
}
