// Package tl2 is a compact reimplementation of the Transactional Locking II
// algorithm (Dice, Shalev, Shavit, DISC 2006), the lean single-version
// time-based STM the paper discusses in §1.2. It serves as a baseline
// against LSA-RT:
//
//   - one version per object — readers that arrive "too late" abort instead
//     of falling back to an older version;
//   - no validity-range extensions — an object may only be read if its last
//     update precedes the transaction's start time, except for the implicit
//     revalidation during commit;
//   - commit locks the write set, fetches a new timestamp from the version
//     clock, and validates the read set against the start time.
//
// The version clock is pluggable (NewWithTimeBase): by default it is the
// same shared-counter time base whose scalability the paper questions; the
// optional commit-timestamp sharing optimization lives in the counter itself
// (timebase.TL2Counter) and is benchmarked separately. Running TL2 on the
// externally synchronized clock of §3.2 (timebase.ExtSyncClock) isolates
// what multi-versioning buys under clock deviation: versions and snapshots
// compare through the masked ⪰ operator, so the deviation virtually ages
// recent versions — and TL2, having no history to fall back to, turns every
// masked gap into an abort where LSA serves an older version.
package tl2

import (
	"errors"
	"sync/atomic"

	"repro/internal/abort"
	"repro/internal/timebase"
	"repro/internal/val"
)

// ErrAborted signals that the transaction attempt failed and was retried.
var ErrAborted = errors.New("tl2: transaction aborted")

// ErrReadOnly is returned by Write inside a read-only transaction.
var ErrReadOnly = errors.New("tl2: write inside read-only transaction")

// Reason-tagged abort instances (see internal/abort): one per abort-site
// class, allocated once. All satisfy errors.Is(err, ErrAborted).
var (
	// errAbortSnapshot: a read found a version newer than rv (or the version
	// word moved under the value load) — TL2's "arrived too late" abort,
	// which LSA would serve from an older version.
	errAbortSnapshot = &abort.Err{Sentinel: ErrAborted, Reason: abort.Snapshot,
		Msg: "tl2: transaction aborted: read version newer than start time"}
	// errAbortValidation: a version check failed at commit time (phase 1
	// write-set freshness or phase 3 read-set validation).
	errAbortValidation = &abort.Err{Sentinel: ErrAborted, Reason: abort.Validation,
		Msg: "tl2: transaction aborted: commit-time validation failed"}
	// errAbortContention: a lock word was (or became) held by a concurrent
	// committer — read-time locked orecs and phase-1 lock races.
	errAbortContention = &abort.Err{Sentinel: ErrAborted, Reason: abort.Contention,
		Msg: "tl2: transaction aborted: versioned lock held by another commit"}
)

// STM is a TL2 universe: a version clock shared by all objects created
// against it.
type STM struct {
	tb timebase.TimeBase
	// exclusive records that GetNewTS values are obtained by an exclusive
	// atomic increment, which the rv+1 validation short cut requires: a
	// shared timestamp (TL2Counter's sharing path) can equal rv+1 even
	// though another transaction committed in between.
	exclusive bool
}

// New creates a TL2 universe on the classic shared-counter version clock.
func New() *STM { return NewWithTimeBase(timebase.NewSharedCounter()) }

// NewWithTimeBase creates a TL2 universe whose read and write versions come
// from tb. The plain shared counter reproduces the original algorithm
// including its validation short cut; every other base — the
// timestamp-sharing TL2Counter (whose shared values may collide with rv+1
// without excluding intervening commits) as well as imprecise clocks —
// validates the read set on every update commit. Imprecise bases
// (ExtSyncClock) are compared through the deviation-masking Timestamp
// operators, which keeps the algorithm safe at the price of extra aborts
// near the deviation bound.
func NewWithTimeBase(tb timebase.TimeBase) *STM {
	_, exclusive := tb.(*timebase.SharedCounter)
	return &STM{tb: tb, exclusive: exclusive}
}

// TimeBase returns the version clock the universe runs on.
func (s *STM) TimeBase() timebase.TimeBase { return s.tb }

// verMeta is one immutable version-lock state of an object. Every state
// transition installs a fresh *verMeta, so two equal pointers observed
// around a value load prove the object did not change in between. (A failed
// commit restores the exact pre-lock pointer, but it also leaves the value
// untouched, so that ABA is harmless.)
type verMeta struct {
	ver    timebase.Timestamp
	locked bool
}

// genesisMeta is the shared version word of freshly created objects: valid
// since −∞, so a transaction on any time base — including one whose clock
// values are small compared to its deviation — can read new objects.
var genesisMeta = &verMeta{ver: timebase.NegInf}

// lockedMeta is the shared "locked" version word installed on every
// write-set object during commit. It is immutable, and every path that
// observes a locked word aborts (or, in the lock phase, fails) before
// reading anything else from it, so one global sentinel serves all
// transactions: pointer identity across distinct commits is harmless
// because ownership — the successful CAS from an *unlocked* word — is what
// authorizes unlock, and two transactions can never own the same object.
var lockedMeta = &verMeta{locked: true}

// Object is a single-version transactional cell: a versioned lock word and
// the current typed value slot (numeric payloads live unboxed in the cell's
// atomic word; see val.AtomicCell for the consistency contract — here the
// verMeta pointer sandwich is the reader's discard signal).
type Object struct {
	meta atomic.Pointer[verMeta]
	cell val.AtomicCell
}

// NewObject creates an object at the genesis version holding initial.
func NewObject(initial any) *Object {
	o := &Object{}
	o.cell.Store(val.OfAny(initial))
	o.meta.Store(genesisMeta)
	return o
}

// smallWriteSet is the write-set size up to which wlookup scans the writes
// slice instead of maintaining a map — the same ≤8-entry linear-scan fast
// path as the LSA core's access set and norec's write set. Most TL2
// transactions write a handful of objects; below the threshold no map is
// ever allocated.
const smallWriteSet = 8

// Tx is one TL2 transaction attempt. Attempts are recycled across retries
// by their Thread: nothing a TL2 attempt builds escapes it — commit
// publishes a fresh shared version word and fresh value snapshots, never
// pointers into the logs — so the read/write sets and the promoted index
// are reused attempt after attempt and the steady-state retry costs zero
// allocations.
type Tx struct {
	stm      *STM
	rv       timebase.Timestamp // read version: clock reading at start
	readOnly bool
	boxed    bool // some write took the escape hatch
	reads    []readEntry
	writes   []writeEntry
	windex   map[*Object]int // nil while the write set is small
	// spareIndex keeps the promoted map alive between attempts so a large
	// write set pays the map allocation once per thread, not per attempt.
	spareIndex map[*Object]int
}

// reset rearms the attempt for reuse. Truncating the logs keeps their
// backing arrays (stale pointers in the unused capacity persist until
// overwritten — bounded by the largest set this thread has seen).
func (tx *Tx) reset(rv timebase.Timestamp, readOnly bool) {
	tx.rv = rv
	tx.readOnly = readOnly
	tx.boxed = false
	tx.reads = tx.reads[:0]
	tx.writes = tx.writes[:0]
	tx.windex = nil
}

type readEntry struct {
	obj *Object
}

type writeEntry struct {
	obj  *Object
	v    val.Value
	prev *verMeta // pre-lock version word, restored on a failed commit
}

// wlookup finds the write-set entry for o: a linear scan while the set is
// small, the map built by wadd beyond that. A miss returns index −1 (0 is a
// valid entry index).
func (tx *Tx) wlookup(o *Object) (int, bool) {
	if tx.windex != nil {
		if idx, ok := tx.windex[o]; ok {
			return idx, true
		}
		return -1, false
	}
	for i := len(tx.writes) - 1; i >= 0; i-- {
		if tx.writes[i].obj == o {
			return i, true
		}
	}
	return -1, false
}

// wadd appends a write-set entry; crossing smallWriteSet promotes the index
// to the attempt's reusable map (cleared, not reallocated, after the first
// promotion on this thread).
func (tx *Tx) wadd(o *Object, v val.Value) {
	tx.writes = append(tx.writes, writeEntry{obj: o, v: v})
	if tx.windex != nil {
		tx.windex[o] = len(tx.writes) - 1
	} else if len(tx.writes) > smallWriteSet {
		if tx.spareIndex == nil {
			tx.spareIndex = make(map[*Object]int, 4*smallWriteSet)
		} else {
			clear(tx.spareIndex)
		}
		tx.windex = tx.spareIndex
		for i := range tx.writes {
			tx.windex[tx.writes[i].obj] = i
		}
	}
}

// Read returns the object's value as `any` — the generic escape-hatch view
// of ReadValue (numeric-lane payloads are boxed here).
func (tx *Tx) Read(o *Object) (any, error) {
	v, err := tx.ReadValue(o)
	if err != nil {
		return nil, err
	}
	return v.Load(), nil
}

// ReadValue returns the object's value if its version precedes the
// transaction's start time; otherwise the attempt aborts (TL2 has no
// extensions and no old versions). The verMeta pointer sandwich around the
// two-word cell snapshot discards any torn pair.
func (tx *Tx) ReadValue(o *Object) (val.Value, error) {
	if idx, ok := tx.wlookup(o); ok {
		return tx.writes[idx].v, nil
	}
	m1 := o.meta.Load()
	if m1.locked {
		return val.Value{}, errAbortContention
	}
	num, box := o.cell.Snapshot()
	if o.meta.Load() != m1 || !tx.rv.LaterEq(m1.ver) {
		return val.Value{}, errAbortSnapshot
	}
	if !tx.readOnly {
		tx.reads = append(tx.reads, readEntry{obj: o})
	}
	return val.Decode(num, box), nil
}

// Write buffers the new value; it becomes visible at commit — the generic
// escape-hatch view of WriteValue.
func (tx *Tx) Write(o *Object, v any) error {
	return tx.WriteValue(o, val.OfAny(v))
}

// WriteValue buffers the new typed value; numeric-lane values never box.
func (tx *Tx) WriteValue(o *Object, v val.Value) error {
	if tx.readOnly {
		return ErrReadOnly
	}
	if v.Kind() == val.KindBoxed {
		tx.boxed = true
	}
	if idx, ok := tx.wlookup(o); ok {
		tx.writes[idx].v = v
		return nil
	}
	tx.wadd(o, v)
	return nil
}

// exactSuccessor reports that wv is the immediate successor of rv on an
// exact clock — TL2's validation short cut: when wv additionally comes from
// an exclusive increment (STM.exclusive), no transaction can have committed
// between the two, so the read set needs no commit-time check. Imprecise
// timestamps never qualify.
func exactSuccessor(rv, wv timebase.Timestamp) bool {
	return rv.CID == timebase.CIDExact && wv.CID == timebase.CIDExact &&
		rv.Dev == 0 && wv.Dev == 0 && wv.TS == rv.TS+1
}

// commit runs the TL2 commit protocol.
func (tx *Tx) commit(clock timebase.Clock) error {
	if len(tx.writes) == 0 {
		// Reads were individually validated against rv; nothing to do.
		return nil
	}
	// Phase 1: lock the write set (try-lock; abort on any conflict). The
	// global lockedMeta sentinel serves every set: nothing ever reads ver
	// from a locked word (every path aborts on locked first), and unlock
	// restores the saved per-object prev pointers.
	locked := lockedMeta
	lockedUpTo := -1
	for i := range tx.writes {
		o := tx.writes[i].obj
		m := o.meta.Load()
		if m.locked {
			tx.unlock(lockedUpTo)
			return errAbortContention
		}
		if !tx.rv.LaterEq(m.ver) {
			// A write-set object was committed past rv: the read of it (or the
			// blind write's implicit freshness requirement) no longer holds.
			tx.unlock(lockedUpTo)
			return errAbortValidation
		}
		if !o.meta.CompareAndSwap(m, locked) {
			// Lost the lock race to a concurrent committer.
			tx.unlock(lockedUpTo)
			return errAbortContention
		}
		tx.writes[i].prev = m
		lockedUpTo = i
	}
	// Phase 2: fetch the write version from the clock.
	wv := clock.GetNewTS()
	// Phase 3: validate the read set — unless wv is provably the immediate
	// successor of rv obtained by an exclusive increment, in which case no
	// transaction can have committed in between (the TL2 short cut).
	if !tx.stm.exclusive || !exactSuccessor(tx.rv, wv) {
		for _, r := range tx.reads {
			if _, own := tx.wlookup(r.obj); own {
				continue
			}
			m := r.obj.meta.Load()
			if m.locked || !tx.rv.LaterEq(m.ver) {
				tx.unlock(lockedUpTo)
				return errAbortValidation
			}
		}
	}
	// Phase 4: install values and release locks with the new version. One
	// version word is shared by the whole write set: pointer identity is
	// only ever compared per object, so sharing is safe and saves
	// allocations — with the numeric lane it is the only allocation of an
	// int-valued commit.
	next := &verMeta{ver: wv}
	for i := range tx.writes {
		w := &tx.writes[i]
		w.obj.cell.Store(w.v)
		w.obj.meta.Store(next)
	}
	return nil
}

// unlock releases write locks [0..upTo] after a failed commit, restoring
// the pre-lock version word.
func (tx *Tx) unlock(upTo int) {
	for i := 0; i <= upTo; i++ {
		tx.writes[i].obj.meta.Store(tx.writes[i].prev)
	}
}

// Thread is a worker context (API-compatible shape with the core engine's
// Thread so workloads translate directly). It owns the one Tx it recycles
// across attempts — a Thread must be used by a single goroutine.
type Thread struct {
	stm          *STM
	clock        timebase.Clock
	tx           Tx
	boxedCommits uint64
	aborts       abort.Counts
}

// BoxedCommits returns how many of this thread's commits wrote at least one
// escape-hatch (boxed) payload.
func (t *Thread) BoxedCommits() uint64 { return t.boxedCommits }

// AbortCounts returns this thread's aborts classified by reason.
func (t *Thread) AbortCounts() abort.Counts { return t.aborts }

// Thread creates a worker context. id selects the worker's clock for
// per-node time bases.
func (s *STM) Thread(id int) *Thread {
	return &Thread{stm: s, clock: s.tb.Clock(id)}
}

// Run executes fn transactionally, retrying on aborts.
func (t *Thread) Run(fn func(*Tx) error) error { return t.run(false, fn) }

// RunReadOnly executes fn as a read-only transaction. TL2 read-only
// transactions keep no read set at all: each read is validated against the
// start time, and commit is empty.
func (t *Thread) RunReadOnly(fn func(*Tx) error) error { return t.run(true, fn) }

func (t *Thread) run(readOnly bool, fn func(*Tx) error) error {
	tx := &t.tx
	tx.stm = t.stm
	for {
		tx.reset(t.clock.GetTime(), readOnly)
		err := fn(tx)
		if err == nil {
			err = tx.commit(t.clock)
		}
		if err == nil {
			if tx.boxed {
				t.boxedCommits++
			}
			return nil
		}
		if !errors.Is(err, ErrAborted) {
			return err
		}
		t.aborts.Observe(err)
		// TL2 aborts whenever a version is possibly newer than rv; on time
		// bases with a stale local view (timebase.ShardedCounter) that can
		// simply mean this thread's shard is behind. Reconcile so the next
		// attempt reads a fresh rv — and, because reconciliation ticks the
		// clock, so that a fixed version eventually ages past the masked
		// deviation window.
		if r, ok := t.clock.(timebase.Reconciler); ok {
			r.Reconcile()
		}
	}
}
