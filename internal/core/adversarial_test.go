package core

// Adversarial schedule tests: drive the engine through the narrow races
// the protocol must survive — racing helpers, external aborts hitting every
// state, history trimming under readers — by manipulating transaction
// states directly (white-box) and by brute interleaving.

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/timebase"
)

// TestRacingHelpersAgreeOnOutcome parks update transactions in the
// committing state and lets several helpers finish each one concurrently;
// all must observe the same terminal state and the object must hold the
// committed value exactly once.
func TestRacingHelpersAgreeOnOutcome(t *testing.T) {
	rt := counterRT()
	for round := 0; round < 200; round++ {
		o := NewObject(0)
		th := rt.Thread(0)
		w := th.newTx(0, false)
		if err := w.Write(o, round+1); err != nil {
			t.Fatal(err)
		}
		if !w.status.CompareAndSwap(int32(StatusActive), int32(StatusCommitting)) {
			t.Fatal("could not park in committing")
		}
		const helpers = 4
		results := make([]bool, helpers)
		var wg sync.WaitGroup
		for h := 0; h < helpers; h++ {
			wg.Add(1)
			go func(h int) {
				defer wg.Done()
				results[h] = w.finishCommit(rt.TimeBase().Clock(h + 1))
			}(h)
		}
		wg.Wait()
		st := w.Status()
		if !st.Terminal() {
			t.Fatalf("round %d: non-terminal state %v after helping", round, st)
		}
		for h, r := range results {
			if r != (st == StatusCommitted) {
				t.Fatalf("round %d: helper %d observed %v, status %v", round, h, r, st)
			}
		}
		if st == StatusCommitted {
			if got := mustReadInt(t, rt, o); got != round+1 {
				t.Fatalf("round %d: value %d, want %d", round, got, round+1)
			}
		}
	}
}

// TestExternalAbortRaces fires abortExternal at transactions in every phase
// while the owner drives them forward; whatever the interleaving, the final
// state must be consistent: either the write landed exactly once or not at
// all, and the owner's Run result must match.
func TestExternalAbortRaces(t *testing.T) {
	rt := counterRT()
	o := NewObject(0)
	committed := 0
	for round := 0; round < 400; round++ {
		th := rt.Thread(0)
		victim := make(chan *Tx, 1)
		var sniper sync.WaitGroup
		sniper.Add(1)
		go func() {
			defer sniper.Done()
			w := <-victim
			w.abortExternal()
		}()
		err := th.Run(func(tx *Tx) error {
			select {
			case victim <- tx:
			default:
			}
			v, err := tx.Read(o)
			if err != nil {
				return err
			}
			return tx.Write(o, v.(int)+1)
		})
		sniper.Wait()
		if err != nil {
			t.Fatalf("round %d: Run should retry through external aborts, got %v", round, err)
		}
		committed++
		if got := mustReadInt(t, rt, o); got != committed {
			t.Fatalf("round %d: value %d, want %d (lost or doubled update)", round, got, committed)
		}
	}
}

// TestReadersDuringHistoryChurn hammers one object with commits (trimming
// the chain every settle) while read-only transactions walk the history
// concurrently; every read must return some committed value in range and
// never a torn or tentative one.
func TestReadersDuringHistoryChurn(t *testing.T) {
	rt := MustRuntime(Config{TimeBase: timebase.NewSharedCounter(), MaxVersions: 3})
	o := NewObject(0)
	var stop sync.WaitGroup
	done := make(chan struct{})
	stop.Add(1)
	go func() {
		defer stop.Done()
		th := rt.Thread(0)
		for i := 1; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if err := th.Run(func(tx *Tx) error { return tx.Write(o, i) }); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()
	var readers sync.WaitGroup
	for r := 1; r <= 3; r++ {
		readers.Add(1)
		go func(id int) {
			defer readers.Done()
			th := rt.Thread(id)
			last := 0
			for i := 0; i < 500; i++ {
				var got int
				if err := th.RunReadOnly(func(tx *Tx) error {
					v, err := tx.Read(o)
					if err != nil {
						return err
					}
					got = v.(int)
					return nil
				}); err != nil {
					t.Errorf("reader %d: %v", id, err)
					return
				}
				if got < last {
					t.Errorf("reader %d: time went backwards: %d after %d", id, got, last)
					return
				}
				last = got
			}
		}(r)
	}
	readers.Wait()
	close(done)
	stop.Wait()
}

// TestAbortIdempotentFromAllStates drives abort() against every reachable
// state and checks terminal states are never overwritten.
func TestAbortIdempotentFromAllStates(t *testing.T) {
	rt := counterRT()
	th := rt.Thread(0)

	active := th.newTx(0, false)
	active.abort()
	if active.Status() != StatusAborted {
		t.Errorf("abort(active) = %v", active.Status())
	}
	active.abort() // idempotent
	if active.Status() != StatusAborted {
		t.Errorf("double abort = %v", active.Status())
	}

	committing := th.newTx(0, false)
	committing.update = true
	committing.status.Store(int32(StatusCommitting))
	committing.abort()
	if committing.Status() != StatusAborted {
		t.Errorf("abort(committing) = %v", committing.Status())
	}

	committed := th.newTx(0, false)
	committed.status.Store(int32(StatusCommitted))
	committed.abort()
	if committed.Status() != StatusCommitted {
		t.Errorf("abort(committed) must not regress, got %v", committed.Status())
	}

	if committed.abortExternal() {
		t.Error("abortExternal on committed must fail")
	}
	parked := th.newTx(0, false)
	parked.status.Store(int32(StatusCommitting))
	if parked.abortExternal() {
		t.Error("abortExternal must not kill committing transactions (they are helped)")
	}
}

// TestContendedUpgradeStorm has every worker read all objects then upgrade
// one to a write — the read-to-write upgrade path under full contention.
func TestContendedUpgradeStorm(t *testing.T) {
	rt := counterRT()
	const nObjs, workers, per = 4, 4, 150
	objs := make([]*Object, nObjs)
	for i := range objs {
		objs[i] = NewObject(0)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := rt.Thread(id)
			for i := 0; i < per; i++ {
				target := (id + i) % nObjs
				if err := th.Run(func(tx *Tx) error {
					sum := 0
					for _, o := range objs {
						v, err := tx.Read(o)
						if err != nil {
							return err
						}
						sum += v.(int)
					}
					v, err := tx.Read(objs[target])
					if err != nil {
						return err
					}
					_ = sum
					return tx.Write(objs[target], v.(int)+1)
				}); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, o := range objs {
		total += mustReadInt(t, rt, o)
	}
	if total != workers*per {
		t.Errorf("total increments = %d, want %d", total, workers*per)
	}
}

// TestRunPropagatesNonAbortErrorsOnce ensures a failing body aborts cleanly
// without retrying.
func TestRunPropagatesNonAbortErrorsOnce(t *testing.T) {
	rt := counterRT()
	o := NewObject(0)
	th := rt.Thread(0)
	calls := 0
	boom := errors.New("boom")
	err := th.Run(func(tx *Tx) error {
		calls++
		if err := tx.Write(o, 1); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 1 {
		t.Errorf("body called %d times, want 1 (no retry on user error)", calls)
	}
	if s := th.Stats(); s.UserAborts != 1 {
		t.Errorf("UserAborts = %d, want 1", s.UserAborts)
	}
}
