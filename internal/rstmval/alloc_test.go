package rstmval

// Allocation budgets for the validating baseline: the Thread recycles its
// one Tx (logs and promoted index), the write set has the shared ≤8-entry
// linear-scan fast path, and numeric payloads ride the unboxed lane — the
// write-back stores the cell's atomic word and bumps the version word, so a
// small int-valued transaction allocates nothing in steady state.
//
// Values are written far outside the runtime's small-int interface cache
// (> 2⁴⁰) through the typed lane.

import (
	"testing"

	"repro/internal/val"
)

func allocBudget(t *testing.T, name string, budget float64, f func()) {
	t.Helper()
	f() // warm the recycled logs before AllocsPerRun's own warmup
	if got := testing.AllocsPerRun(200, f); got > budget {
		t.Errorf("%s: %.1f allocs/run, budget %.0f", name, got, budget)
	}
}

const big = int64(1) << 40

func TestAllocBudgetReadOnlySmall(t *testing.T) {
	s := New()
	a, b := NewObject(big+1), NewObject(big+2)
	th := s.Thread(0)
	fn := func(tx *Tx) error {
		if _, err := tx.ReadValue(a); err != nil {
			return err
		}
		_, err := tx.ReadValue(b)
		return err
	}
	allocBudget(t, "rstmval read-only 2 reads", 0, func() {
		if err := th.RunReadOnly(fn); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocBudgetUpdateSmall(t *testing.T) {
	s := New()
	a, b := NewObject(big), NewObject(big)
	th := s.Thread(0)
	bump := func(tx *Tx, o *Object) error {
		v, err := tx.ReadValue(o)
		if err != nil {
			return err
		}
		n, _ := v.AsInt64()
		return tx.WriteValue(o, val.OfInt(int(big+(n+1)%100)))
	}
	fn := func(tx *Tx) error {
		if err := bump(tx, a); err != nil {
			return err
		}
		return bump(tx, b)
	}
	allocBudget(t, "rstmval 2-write update", 0, func() {
		if err := th.Run(fn); err != nil {
			t.Fatal(err)
		}
	})
}
