// Package norec is a NOrec-style software transactional memory (Dalessandro,
// Spear, Scott, PPoPP 2010): the "minimal metadata" counterpoint to the
// timestamp-ordered engines in this repository. Where LSA and TL2 attach a
// version to every object, NOrec keeps no per-object metadata at all — the
// only shared state is one global sequence lock:
//
//   - the sequence lock is even when quiescent and odd while a writer is
//     committing; every committed update transaction bumps it by two;
//   - reads are logged with the value seen (a value log, not a version log);
//     whenever the transaction notices the sequence lock has moved it
//     re-validates the whole log by comparing current values — value-based
//     validation tolerates silent re-writes of the same value;
//   - commit acquires the sequence lock with one compare-and-swap, writes
//     back the buffered write set, and releases the lock.
//
// Within the paper's taxonomy NOrec is the extreme single-counter design:
// its time base is the sequence lock itself, so commits serialize on one
// cache line just like a shared-counter STM — but reads never touch shared
// metadata until the counter moves, which keeps read-dominated workloads
// cheap at low thread counts.
//
// Cells store immutable value snapshots behind an atomic pointer, so the
// value log records the observed snapshot pointer: pointer equality proves
// the value is unchanged, and when pointers differ the values themselves are
// compared (for comparable types), which preserves NOrec's tolerance of
// silently restored values.
package norec

import (
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
)

// ErrAborted signals that the transaction attempt failed and was retried.
var ErrAborted = errors.New("norec: transaction aborted")

// ErrReadOnly is returned by Write inside a read-only transaction.
var ErrReadOnly = errors.New("norec: write inside read-only transaction")

// STM is a NOrec universe: the global sequence lock shared by all
// transactions against it.
type STM struct {
	_   [64]byte
	seq atomic.Int64 // even = quiescent, odd = a writer holds the lock
	_   [64]byte
}

// New creates a universe with the sequence lock at zero.
func New() *STM { return &STM{} }

// Sequence exposes the sequence-lock value, for tests.
func (s *STM) Sequence() int64 { return s.seq.Load() }

// waitQuiescent spins until the sequence lock is even and returns its value.
// Writers hold the lock only for the write-back, so the spin is short; after
// a few iterations it yields to the scheduler in case the writer's
// goroutine was preempted mid-commit.
func (s *STM) waitQuiescent() int64 {
	for i := 0; ; i++ {
		v := s.seq.Load()
		if v&1 == 0 {
			return v
		}
		if i > 32 {
			runtime.Gosched()
		}
	}
}

// Object is a transactional cell: just the current value snapshot. NOrec
// keeps no per-object metadata — that is the point.
type Object struct {
	val atomic.Pointer[any]
}

// NewObject creates an object holding initial.
func NewObject(initial any) *Object {
	o := &Object{}
	v := initial
	o.val.Store(&v)
	return o
}

// readEntry is one value-log record: the object and the value snapshot
// observed, identified by its pointer.
type readEntry struct {
	obj  *Object
	seen *any
}

type writeEntry struct {
	obj *Object
	val any
}

// smallWriteSet is the write-set size up to which lookup scans the entries
// slice instead of maintaining a map — the same ≤8-entry linear-scan fast
// path as the LSA core's access set (core.smallAccessSet): most transactions
// write a handful of objects, and for those a backward scan over a
// contiguous slice beats a map's hashing and per-attempt clearing cost.
const smallWriteSet = 8

// Tx is one NOrec transaction attempt. Attempts are recycled across retries
// by their Thread: unlike the LSA core — where helpers may validate a
// previous attempt's frozen access set — nothing a NOrec attempt builds
// ever escapes to another thread (the write-back publishes fresh value
// snapshots, never pointers into the logs), so the read/write sets and the
// promoted index are reused attempt after attempt and the steady-state
// retry costs zero allocations.
type Tx struct {
	stm      *STM
	snapshot int64 // sequence-lock value the read set is consistent at
	readOnly bool
	reads    []readEntry
	writes   []writeEntry
	windex   map[*Object]int // nil while the write set is small
	// spareIndex keeps the promoted map alive between attempts so a large
	// write set pays the map allocation once per thread, not per attempt.
	spareIndex map[*Object]int
}

// reset rearms the attempt for reuse. Truncating the logs keeps their
// backing arrays (and, harmlessly, stale pointers in the unused capacity
// until overwritten — bounded by the largest set this thread has seen).
func (tx *Tx) reset(stm *STM, readOnly bool) {
	tx.stm = stm
	tx.snapshot = stm.waitQuiescent()
	tx.readOnly = readOnly
	tx.reads = tx.reads[:0]
	tx.writes = tx.writes[:0]
	tx.windex = nil
}

// wlookup finds the write-set entry for o: a linear scan while the set is
// small, the map built by wadd beyond that. A miss returns index −1 (0 is a
// valid entry index).
func (tx *Tx) wlookup(o *Object) (int, bool) {
	if tx.windex != nil {
		if idx, ok := tx.windex[o]; ok {
			return idx, true
		}
		return -1, false
	}
	for i := len(tx.writes) - 1; i >= 0; i-- {
		if tx.writes[i].obj == o {
			return i, true
		}
	}
	return -1, false
}

// wadd appends a write-set entry; crossing smallWriteSet promotes the index
// to the attempt's reusable map (cleared, not reallocated, after the first
// promotion on this thread).
func (tx *Tx) wadd(o *Object, val any) {
	tx.writes = append(tx.writes, writeEntry{obj: o, val: val})
	if tx.windex != nil {
		tx.windex[o] = len(tx.writes) - 1
	} else if len(tx.writes) > smallWriteSet {
		if tx.spareIndex == nil {
			tx.spareIndex = make(map[*Object]int, 4*smallWriteSet)
		} else {
			clear(tx.spareIndex)
		}
		tx.windex = tx.spareIndex
		for i := range tx.writes {
			tx.windex[tx.writes[i].obj] = i
		}
	}
}

// Read returns o's value in the transaction's snapshot, extending the
// snapshot (by re-validating the value log) whenever the sequence lock has
// moved since the last validation.
func (tx *Tx) Read(o *Object) (any, error) {
	if idx, ok := tx.wlookup(o); ok {
		return tx.writes[idx].val, nil
	}
	for {
		vp := o.val.Load()
		if tx.stm.seq.Load() == tx.snapshot {
			// No commit since the snapshot: vp is consistent with every
			// previously logged value.
			tx.reads = append(tx.reads, readEntry{obj: o, seen: vp})
			return *vp, nil
		}
		// The clock bumped: re-validate the whole log, which also advances
		// the snapshot, then retry the read under the new snapshot.
		if err := tx.revalidate(); err != nil {
			return nil, err
		}
	}
}

// revalidate re-checks the entire value log against current memory and, on
// success, moves the snapshot up to a sequence-lock value the log is
// consistent at (NOrec's validate loop). Value-based: a log entry passes if
// the observed snapshot pointer is unchanged, or if the current value
// compares equal to the logged one.
func (tx *Tx) revalidate() error {
	for {
		s := tx.stm.waitQuiescent()
		for i := range tx.reads {
			r := &tx.reads[i]
			cur := r.obj.val.Load()
			if cur == r.seen {
				continue
			}
			if !valuesEqual(*cur, *r.seen) {
				return ErrAborted
			}
			// Same value behind a fresh pointer (a silent restore): adopt
			// the current pointer so future pointer checks stay fast.
			r.seen = cur
		}
		// The log only proves consistency at s if no writer committed while
		// we scanned it.
		if tx.stm.seq.Load() == s {
			tx.snapshot = s
			return nil
		}
	}
}

// valuesEqual is the value-based comparison of the validation step. Values
// of uncomparable types (slices, maps) cannot be checked cheaply and count
// as changed — for those the pointer fast path in revalidate is the only
// way to pass, which is safe, merely conservative. Type.Comparable is a
// static property, so a comparable-typed value can still hold an
// uncomparable dynamic value in an interface field; the recover turns that
// panic into "changed" as well.
func valuesEqual(a, b any) (eq bool) {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	ta := reflect.TypeOf(a)
	if ta != reflect.TypeOf(b) || !ta.Comparable() {
		return false
	}
	defer func() {
		if recover() != nil {
			eq = false
		}
	}()
	return a == b
}

// Write buffers the new value; it becomes visible at commit.
func (tx *Tx) Write(o *Object, val any) error {
	if tx.readOnly {
		return ErrReadOnly
	}
	if idx, ok := tx.wlookup(o); ok {
		tx.writes[idx].val = val
		return nil
	}
	tx.wadd(o, val)
	return nil
}

// commit runs the NOrec commit protocol: acquire the sequence lock at the
// snapshot (re-validating until the acquisition succeeds), write back, and
// release with the next even value.
func (tx *Tx) commit() error {
	if len(tx.writes) == 0 {
		// The value log was validated incrementally; the reads form a
		// consistent snapshot at tx.snapshot and nothing was written.
		return nil
	}
	for !tx.stm.seq.CompareAndSwap(tx.snapshot, tx.snapshot+1) {
		// Another transaction committed (or is committing) since our
		// snapshot: catch the snapshot up, then try again.
		if err := tx.revalidate(); err != nil {
			return err
		}
	}
	// Sequence lock held (odd): write back the buffered values.
	for i := range tx.writes {
		w := &tx.writes[i]
		v := w.val
		w.obj.val.Store(&v)
	}
	tx.stm.seq.Store(tx.snapshot + 2)
	return nil
}

// Thread is a worker context (API-compatible shape with the core engine's
// Thread so workloads translate directly). It owns the one Tx it recycles
// across attempts — a Thread must be used by a single goroutine.
type Thread struct {
	stm *STM
	tx  Tx
}

// Thread creates a worker context.
func (s *STM) Thread(id int) *Thread { return &Thread{stm: s} }

// Run executes fn transactionally, retrying on aborts.
func (t *Thread) Run(fn func(*Tx) error) error { return t.run(false, fn) }

// RunReadOnly executes fn as a read-only transaction. NOrec read-only
// transactions still keep the value log — incremental validation is what
// makes their snapshots consistent — but commit is empty.
func (t *Thread) RunReadOnly(fn func(*Tx) error) error { return t.run(true, fn) }

func (t *Thread) run(readOnly bool, fn func(*Tx) error) error {
	tx := &t.tx
	for {
		tx.reset(t.stm, readOnly)
		err := fn(tx)
		if err == nil {
			err = tx.commit()
		}
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrAborted) {
			return err
		}
	}
}
