package tl2

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/hwclock"
	"repro/internal/timebase"
)

func TestReadInitial(t *testing.T) {
	s := New()
	o := NewObject(42)
	th := s.Thread(0)
	if err := th.RunReadOnly(func(tx *Tx) error {
		v, err := tx.Read(o)
		if err != nil {
			return err
		}
		if v.(int) != 42 {
			t.Errorf("read %v, want 42", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCommitRead(t *testing.T) {
	s := New()
	o := NewObject(0)
	th := s.Thread(0)
	if err := th.Run(func(tx *Tx) error {
		return tx.Write(o, 7)
	}); err != nil {
		t.Fatal(err)
	}
	if got := readInt(t, s, o); got != 7 {
		t.Errorf("value = %d, want 7", got)
	}
	// The default universe runs on a shared counter starting at 1; one
	// update commit advances it once.
	if now := s.TimeBase().(*timebase.SharedCounter).Now(); now != 2 {
		t.Errorf("version clock = %d, want 2", now)
	}
}

func TestReadOwnWrite(t *testing.T) {
	s := New()
	o := NewObject(1)
	th := s.Thread(0)
	if err := th.Run(func(tx *Tx) error {
		if err := tx.Write(o, 5); err != nil {
			return err
		}
		v, err := tx.Read(o)
		if err != nil {
			return err
		}
		if v.(int) != 5 {
			t.Errorf("read-own-write = %v, want 5", v)
		}
		return tx.Write(o, 6)
	}); err != nil {
		t.Fatal(err)
	}
	if got := readInt(t, s, o); got != 6 {
		t.Errorf("value = %d, want 6", got)
	}
}

func TestReadOnlyRejectsWrite(t *testing.T) {
	s := New()
	o := NewObject(1)
	err := s.Thread(0).RunReadOnly(func(tx *Tx) error { return tx.Write(o, 2) })
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("got %v, want ErrReadOnly", err)
	}
}

func TestUserErrorRollsBack(t *testing.T) {
	s := New()
	o := NewObject(3)
	boom := errors.New("boom")
	err := s.Thread(0).Run(func(tx *Tx) error {
		if err := tx.Write(o, 9); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	if got := readInt(t, s, o); got != 3 {
		t.Errorf("value = %d, want 3", got)
	}
}

func TestConcurrentIncrements(t *testing.T) {
	s := New()
	o := NewObject(0)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := s.Thread(id)
			for i := 0; i < per; i++ {
				if err := th.Run(func(tx *Tx) error {
					v, err := tx.Read(o)
					if err != nil {
						return err
					}
					return tx.Write(o, v.(int)+1)
				}); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := readInt(t, s, o); got != workers*per {
		t.Errorf("counter = %d, want %d (lost updates)", got, workers*per)
	}
}

func TestSnapshotConsistencyPair(t *testing.T) {
	s := New()
	a, b := NewObject(0), NewObject(0)
	stop := make(chan struct{})
	var writer, readers sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		th := s.Thread(0)
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := th.Run(func(tx *Tx) error {
				if err := tx.Write(a, i); err != nil {
					return err
				}
				return tx.Write(b, -i)
			}); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(id int) {
			defer readers.Done()
			th := s.Thread(id + 1)
			for i := 0; i < 300; i++ {
				if err := th.RunReadOnly(func(tx *Tx) error {
					av, err := tx.Read(a)
					if err != nil {
						return err
					}
					bv, err := tx.Read(b)
					if err != nil {
						return err
					}
					if av.(int)+bv.(int) != 0 {
						t.Errorf("torn read: %d/%d", av, bv)
					}
					return nil
				}); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}(r)
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}

func TestBankConservation(t *testing.T) {
	s := New()
	const n, initial = 8, 100
	objs := make([]*Object, n)
	for i := range objs {
		objs[i] = NewObject(initial)
	}
	const workers, per = 4, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := s.Thread(id)
			for i := 0; i < per; i++ {
				from, to := (id+i)%n, (id+i+1)%n
				if err := th.Run(func(tx *Tx) error {
					fv, err := tx.Read(objs[from])
					if err != nil {
						return err
					}
					tv, err := tx.Read(objs[to])
					if err != nil {
						return err
					}
					if err := tx.Write(objs[from], fv.(int)-1); err != nil {
						return err
					}
					return tx.Write(objs[to], tv.(int)+1)
				}); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	sum := 0
	if err := s.Thread(99).RunReadOnly(func(tx *Tx) error {
		sum = 0
		for _, o := range objs {
			v, err := tx.Read(o)
			if err != nil {
				return err
			}
			sum += v.(int)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum != n*initial {
		t.Errorf("total = %d, want %d", sum, n*initial)
	}
}

func TestExactSuccessor(t *testing.T) {
	if !exactSuccessor(timebase.Exact(4), timebase.Exact(5)) {
		t.Error("4→5 exact must qualify for the validation short cut")
	}
	if exactSuccessor(timebase.Exact(4), timebase.Exact(6)) {
		t.Error("4→6 must not qualify")
	}
	imprecise := timebase.Timestamp{TS: 5, CID: 1, Dev: 10}
	if exactSuccessor(timebase.Exact(4), imprecise) || exactSuccessor(imprecise, timebase.Exact(6)) {
		t.Error("imprecise timestamps must never qualify for the short cut")
	}
}

// TestTL2CounterNoShortCut: the timestamp-sharing counter's GetNewTS may
// return a shared value equal to rv+1 even though another transaction
// committed in between, so a universe on it must not take the rv+1
// validation short cut — and must therefore survive concurrent increments
// without lost updates.
func TestTL2CounterNoShortCut(t *testing.T) {
	s := NewWithTimeBase(timebase.NewTL2Counter())
	if s.exclusive {
		t.Fatal("TL2Counter universe must not be marked exclusive: its shared timestamps break the rv+1 short cut")
	}
	o := NewObject(0)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := s.Thread(id)
			for i := 0; i < per; i++ {
				if err := th.Run(func(tx *Tx) error {
					v, err := tx.Read(o)
					if err != nil {
						return err
					}
					return tx.Write(o, v.(int)+1)
				}); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := readInt(t, s, o); got != workers*per {
		t.Errorf("counter = %d, want %d (lost updates)", got, workers*per)
	}
}

// TestExtSyncPairInvariant runs TL2 on the externally synchronized clock of
// §3.2: the deviation-masking comparisons must preserve snapshot consistency
// (a {n, −n} pair always sums to zero) even though versions are imprecise.
func TestExtSyncPairInvariant(t *testing.T) {
	const workers = 4
	dev := hwclock.New(hwclock.Config{TickHz: 1_000_000_000, Nodes: workers, Seed: 1})
	tb, err := timebase.NewExtSyncClockFrom(dev, 2000)
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithTimeBase(tb)
	a, b := NewObject(0), NewObject(0)
	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := s.Thread(id)
			for i := 1; i <= 200; i++ {
				var err error
				if id%2 == 0 {
					n := id*1000 + i
					err = th.Run(func(tx *Tx) error {
						if err := tx.Write(a, n); err != nil {
							return err
						}
						return tx.Write(b, -n)
					})
				} else {
					err = th.RunReadOnly(func(tx *Tx) error {
						av, err := tx.Read(a)
						if err != nil {
							return err
						}
						bv, err := tx.Read(b)
						if err != nil {
							return err
						}
						if av.(int)+bv.(int) != 0 {
							t.Errorf("torn pair: %v/%v", av, bv)
						}
						return nil
					})
				}
				if err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
}

// TestFailedLockRetryCommits locks an object by hand so a transaction's
// phase-1 try-lock aborts at least once, then releases it; the retry must
// commit and install a fresh, later, unlocked version word.
func TestFailedLockRetryCommits(t *testing.T) {
	s := New()
	o := NewObject(1)
	before := o.meta.Load()
	o.meta.Store(&verMeta{ver: before.ver, locked: true})
	done := make(chan error, 1)
	go func() {
		done <- s.Thread(0).Run(func(tx *Tx) error { return tx.Write(o, 2) })
	}()
	o.meta.Store(before)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	after := o.meta.Load()
	if after.locked {
		t.Error("object left locked after commit")
	}
	if after == before || !after.ver.LaterEq(before.ver) {
		t.Error("commit did not install a fresh, later version word")
	}
	if got := readInt(t, s, o); got != 2 {
		t.Errorf("value = %d, want 2", got)
	}
}

func readInt(t *testing.T, s *STM, o *Object) int {
	t.Helper()
	var out int
	if err := s.Thread(99).RunReadOnly(func(tx *Tx) error {
		v, err := tx.Read(o)
		if err != nil {
			return err
		}
		out = v.(int)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}
