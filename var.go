package tstm

import "repro/internal/core"

// Var is a typed transactional variable. Values are stored as immutable
// snapshots: Set replaces the value, so mutable types (slices, maps,
// pointers to mutated structs) must be copied by the caller before storing
// if they are modified afterwards.
//
// A Var may be used with any Runtime; the runtime only enters the picture
// through the transaction passed to Get and Set.
type Var[T any] struct {
	obj *core.Object
}

// NewVar creates a transactional variable holding an initial value.
func NewVar[T any](initial T) *Var[T] {
	return &Var[T]{obj: core.NewObject(initial)}
}

// Get reads the variable within the transaction, maintaining the
// transaction's consistent snapshot. On ErrAborted the closure must return
// promptly (the runner retries).
func (v *Var[T]) Get(tx *Tx) (T, error) {
	val, err := tx.Read(v.obj)
	if err != nil {
		var zero T
		return zero, err
	}
	return val.(T), nil
}

// Set writes the variable within the transaction. The write becomes visible
// to other transactions atomically at commit.
func (v *Var[T]) Set(tx *Tx, val T) error {
	return tx.Write(v.obj, val)
}

// Update applies f to the current value and stores the result — the common
// read-modify-write in one call.
func (v *Var[T]) Update(tx *Tx, f func(T) T) error {
	cur, err := v.Get(tx)
	if err != nil {
		return err
	}
	return v.Set(tx, f(cur))
}

// Object exposes the underlying engine object for benchmarks and tools
// inside this module.
func (v *Var[T]) Object() *core.Object { return v.obj }
