// Payload codec registration: the escape hatch that lets applications carry
// struct payloads through the WAL. The built-in value tags cover the numeric
// lane plus nil, bool, string, float64 and []byte; a registered codec extends
// that set with one named, self-describing encoding per Go type. On disk a
// codec value is
//
//	'u' | uvarint len(name) | name | uvarint len(body) | body
//
// so recovery (and a replication follower) can decode it by name without the
// writing process — provided the reader registered the same codec, which is
// the same deterministic-setup contract cell creation already imposes.
//
// Codecs suit self-contained payloads (slices, small structs). Cell-graph
// payloads — nodes holding engine.Cell handles, like the linked-list and
// skip-list workloads use — are NOT expressible: a cell handle is a
// process-local pointer, and rebinding one at decode time would need a
// second recovery phase that does not exist. Those payloads stay
// unsupported by design.
package durable

import (
	"fmt"
	"reflect"
	"sync"
)

type codec struct {
	name string
	enc  func(any) ([]byte, error)
	dec  func([]byte) (any, error)
}

var (
	codecMu     sync.RWMutex
	codecByName = map[string]codec{}
	codecByType = map[reflect.Type]codec{}
)

// RegisterCodec makes values of prototype's dynamic type WAL-serializable:
// enc turns such a value into a self-contained byte body, dec inverts it.
// The name travels in every encoded frame, so it must be stable across
// versions and registered identically on every process that reads the log
// (recovery and replication followers alike). Duplicate names or types
// panic — codecs register from init functions, so a collision is a
// programming error.
func RegisterCodec(name string, prototype any, enc func(any) ([]byte, error), dec func([]byte) (any, error)) {
	t := reflect.TypeOf(prototype)
	if name == "" || t == nil || enc == nil || dec == nil {
		panic("durable: RegisterCodec needs a name, a typed prototype, and both functions")
	}
	codecMu.Lock()
	defer codecMu.Unlock()
	if _, dup := codecByName[name]; dup {
		panic(fmt.Sprintf("durable: duplicate codec name %q", name))
	}
	if c, dup := codecByType[t]; dup {
		panic(fmt.Sprintf("durable: type %v already has codec %q", t, c.name))
	}
	c := codec{name: name, enc: enc, dec: dec}
	codecByName[name] = c
	codecByType[t] = c
}

// codecFor returns the codec registered for x's dynamic type.
func codecFor(x any) (codec, bool) {
	t := reflect.TypeOf(x)
	if t == nil {
		return codec{}, false
	}
	codecMu.RLock()
	c, ok := codecByType[t]
	codecMu.RUnlock()
	return c, ok
}

// codecNamed returns the codec registered under name (the decode side).
func codecNamed(name string) (codec, bool) {
	codecMu.RLock()
	c, ok := codecByName[name]
	codecMu.RUnlock()
	return c, ok
}
