package timebase

// TimeBase is a source of timestamps for a time-based transactional memory.
// Conceptually it is one global clock; each thread accesses it through a
// per-thread Clock handle ("each thread p has access to a local clock Cp",
// §3.1). For counter-based time bases every handle reads and bumps the same
// shared word — that shared word is precisely the scalability bottleneck the
// paper measures. For real-time bases each handle reads an uncontended
// (local) clock.
type TimeBase interface {
	// Clock returns the clock handle for thread id. Handles are not safe for
	// concurrent use by multiple goroutines; the id namespace is dense and
	// small (worker indices). Calling Clock repeatedly with the same id is
	// allowed and returns an equivalent handle.
	Clock(id int) Clock

	// Name identifies the time base in benchmark output.
	Name() string
}

// Clock is a thread's view of the time base.
//
// Timestamps returned to a single thread are monotonic: if the thread reads
// t1 and then t2, then t2 ⪰ t1. They need not be strictly increasing and need
// not be unique across threads (§1.1).
type Clock interface {
	// GetTime returns the current time (Algorithm 1 line 1).
	GetTime() Timestamp

	// GetNewTS returns a timestamp strictly greater than any timestamp this
	// thread has obtained so far and, crucially, greater than the time at
	// which the call was made (§2.4). Committing update transactions use it
	// to choose their commit time.
	GetNewTS() Timestamp
}

// Reconciler is an optional capability of Clock handles whose time base
// keeps a deliberately stale local view (ShardedCounter). Reconcile
// synchronizes the handle's view with the freshest global state — for the
// sharded counter, the max across all shards plus one tick. STM retry loops
// call it after an abort caused by a failed read-set validation: purely
// local reads stay uncontended on the fast path, and the cross-shard
// synchronization price is paid only when a conflict proves the local view
// too old. Clocks without a stale view simply do not implement it.
type Reconciler interface {
	// Reconcile refreshes the local view; it reports whether the view
	// advanced. Safe to call from the handle's owning thread at any point
	// between transactions.
	Reconcile() bool
}

// Exactness classifies how a time base's timestamps compare.
type Exactness int

const (
	// ExactBase timestamps have zero deviation: ⪰ is plain ≥.
	ExactBase Exactness = iota
	// ImpreciseBase timestamps carry a nonzero deviation that comparisons
	// must mask (Algorithm 5).
	ImpreciseBase
)
