package core

import "fmt"

// Stats are per-thread event counters. They are deliberately plain integers
// — each worker owns its own padded instance — so that statistics
// collection adds no shared-memory traffic to the hot path (a shared
// counter here would reintroduce exactly the bottleneck the paper's
// experiments isolate).
type Stats struct {
	// Commits counts successfully committed transactions.
	Commits uint64
	// Aborts counts aborted attempts (every retry is one abort).
	Aborts uint64
	// AbortSnapshot counts aborts because no consistent snapshot exists
	// (empty validity range or no suitable version).
	AbortSnapshot uint64
	// AbortValidation counts commit-time validation failures.
	AbortValidation uint64
	// AbortConflict counts aborts decreed against self by the contention
	// manager.
	AbortConflict uint64
	// AbortExternal counts aborts inflicted by other threads.
	AbortExternal uint64
	// UserAborts counts transactions abandoned by application error.
	UserAborts uint64
	// Extensions counts validity-range extension attempts.
	Extensions uint64
	// Helps counts completions of other transactions' commits.
	Helps uint64
	// EnemyAborts counts enemy transactions this thread aborted.
	EnemyAborts uint64
	// BoxedCommits counts commits that wrote at least one escape-hatch
	// (non-numeric) payload — the boxing-lane telemetry behind the bench
	// matrix's boxed% column.
	BoxedCommits uint64
}

func (s *Stats) add(o *Stats) {
	s.Commits += o.Commits
	s.Aborts += o.Aborts
	s.AbortSnapshot += o.AbortSnapshot
	s.AbortValidation += o.AbortValidation
	s.AbortConflict += o.AbortConflict
	s.AbortExternal += o.AbortExternal
	s.UserAborts += o.UserAborts
	s.Extensions += o.Extensions
	s.Helps += o.Helps
	s.EnemyAborts += o.EnemyAborts
	s.BoxedCommits += o.BoxedCommits
}

// AbortRate returns aborts per attempt: Aborts / (Commits + Aborts).
func (s Stats) AbortRate() float64 {
	total := s.Commits + s.Aborts
	if total == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(total)
}

// String renders the counters compactly.
func (s Stats) String() string {
	return fmt.Sprintf(
		"commits=%d aborts=%d (snapshot=%d validation=%d conflict=%d external=%d) ext=%d helps=%d",
		s.Commits, s.Aborts, s.AbortSnapshot, s.AbortValidation, s.AbortConflict, s.AbortExternal,
		s.Extensions, s.Helps)
}
