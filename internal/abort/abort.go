// Package abort defines the engine-family-wide abort-reason taxonomy. Every
// backend classifies each aborted attempt into one of a small fixed set of
// reasons, so the bench snapshot can report a uniform abort mix — which
// failure mode dominates under contention is the paper's actual subject —
// instead of per-engine ad-hoc counters.
//
// The taxonomy (deliberately coarser than the LSA core's internal causes,
// which map onto it 1:1):
//
//   - Snapshot: a read observed state inconsistent with the attempt's
//     snapshot and the snapshot could not be extended/revalidated — read-time
//     failures (NOrec revalidation from ReadValue, TL2 read-version checks,
//     wordstm validity-range extension failures).
//   - Validation: commit-time validation failed — the read set no longer
//     holds at the serialization point (NOrec commit revalidation, TL2 phase
//     1/3 version checks, rstmval/wordstm commit validation).
//   - Contention: the attempt gave up waiting for a lock, stripe, or slot
//     held by another thread (TL2 locked-orec aborts, stripe seqlock
//     bounded-wait exhaustion, wordstm lock-spin limits).
//   - Escalation: the abort happened on an adaptive engine's escalated
//     (global) protocol path — charged to the escalation machinery rather
//     than split across the above, so the cost of escalating is one number.
//
// Engines tag their abort errors by wrapping the package-level sentinel in an
// Err (the Is method keeps errors.Is(err, pkg.ErrAborted) working, so retry
// loops don't change), and count them per thread in a Counts array. User
// aborts — application errors carried out of the closure — are counted by the
// engine layer itself and are not a Reason here.
package abort

// Reason is one abort-cause class of the cross-engine taxonomy.
type Reason uint8

const (
	// Snapshot is a read-time consistency failure (snapshot extension or
	// read revalidation failed).
	Snapshot Reason = iota
	// Validation is a commit-time validation failure.
	Validation
	// Contention is a bounded wait on a lock/stripe/slot that ran out.
	Contention
	// Escalation is any abort suffered on an escalated protocol path.
	Escalation
	// NumReasons sizes Counts arrays.
	NumReasons
)

// String names the reason for tables and errors.
func (r Reason) String() string {
	switch r {
	case Snapshot:
		return "snapshot"
	case Validation:
		return "validation"
	case Contention:
		return "contention"
	case Escalation:
		return "escalation"
	}
	return "unknown"
}

// Counts tallies aborts by reason. Engines keep one per thread (written
// single-threaded in the retry loop) and expose a copy for aggregation.
type Counts [NumReasons]uint64

// Observe classifies err and increments the matching bucket. An untagged
// abort error (the bare sentinel, from an engine path that predates the
// taxonomy) counts as Validation — the historical meaning of every engine's
// generic abort. Call only with abort errors; user errors are the caller's
// to count.
func (c *Counts) Observe(err error) {
	if e, ok := err.(*Err); ok {
		c[e.Reason]++
		return
	}
	c[Validation]++
}

// Add accumulates o into c.
func (c *Counts) Add(o Counts) {
	for i := range o {
		c[i] += o[i]
	}
}

// Total returns the sum over all reasons.
func (c Counts) Total() uint64 {
	var n uint64
	for _, v := range c {
		n += v
	}
	return n
}

// Err is a reason-tagged abort error. Engines declare package-level instances
// (one per abort site class) wrapping their existing ErrAborted sentinel, so
// tagging costs nothing on the abort path and errors.Is against the sentinel
// is preserved via Is.
type Err struct {
	// Sentinel is the engine's ErrAborted value this error stands in for.
	Sentinel error
	// Reason classifies the abort.
	Reason Reason
	// Msg is the rendered error text.
	Msg string
}

// Error implements the error interface.
func (e *Err) Error() string { return e.Msg }

// Is reports true for the wrapped sentinel, so errors.Is(err, ErrAborted)
// matches tagged aborts exactly as it matched the bare sentinel.
func (e *Err) Is(target error) bool { return target == e.Sentinel }
