package engine

import (
	"flag"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestRegistryNames(t *testing.T) {
	names := Names()
	for _, want := range []string{
		"lsa/shared", "lsa/tl2ts", "lsa/sharded", "lsa/mmtimer", "lsa/ideal",
		"lsa/extsync", "tl2", "tl2/extsync", "tl2/sharded", "wordstm",
		"rstmval", "norec", "norec/striped", "norec/combined",
		"norec/adaptive", "glock",
	} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("backend %q not registered (have %v)", want, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted: %v", names)
		}
	}
}

// TestRegisteredEngineCount is the registration gate CI runs with -race
// -short: a backend whose init forgot to Register (or a registry refactor
// that drops one) fails the build here, not in a bench someone runs later.
func TestRegisteredEngineCount(t *testing.T) {
	const floor = 16
	if names := Names(); len(names) < floor {
		t.Fatalf("only %d engines registered, want ≥ %d: %v", len(names), floor, names)
	}
}

// TestRegisterDuplicatePanics: a second Register under an existing name must
// panic with a message naming the backend — silent overwrites would let two
// init functions fight over a name and benchmark the wrong engine.
func TestRegisterDuplicatePanics(t *testing.T) {
	const name = "test/dup-probe"
	factory := func(Options) (Engine, error) { return nil, nil }
	Register(name, Info{}, factory)
	defer func() {
		// Remove the probe so registry-iterating tests never see it.
		registryMu.Lock()
		delete(registry, name)
		registryMu.Unlock()
		r := recover()
		if r == nil {
			t.Fatal("duplicate Register must panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, name) {
			t.Errorf("panic message must name the duplicate backend, got %v", r)
		}
	}()
	Register(name, Info{}, factory)
}

// TestDescribe: every registered backend carries a registration-time Info
// whose Name matches its registry key, with a nonempty summary and tunables
// drawn from the BindFlags flag vocabulary.
func TestDescribe(t *testing.T) {
	knownTunables := map[string]bool{
		"nodes": true, "max-versions": true, "deviation": true,
		"shard-window": true, "words": true, "cm": true, "stripes": true,
		"escalate-stripes": true, "escalate-aborts": true,
	}
	for _, name := range Names() {
		info, ok := Describe(name)
		if !ok {
			t.Fatalf("Describe(%q) not found", name)
		}
		if info.Name != name {
			t.Errorf("Describe(%q).Name = %q", name, info.Name)
		}
		if info.Summary == "" {
			t.Errorf("Describe(%q): empty summary", name)
		}
		for _, tn := range info.Capabilities.Tunables {
			if !knownTunables[tn] {
				t.Errorf("Describe(%q): tunable %q is not a BindFlags flag name", name, tn)
			}
		}
	}
	if _, ok := Describe("no-such-stm"); ok {
		t.Error("Describe of an unknown backend must report !ok")
	}
	infos := Infos()
	if len(infos) != len(Names()) {
		t.Fatalf("Infos() returned %d entries, registry has %d", len(infos), len(Names()))
	}
	for i := 1; i < len(infos); i++ {
		if infos[i-1].Name >= infos[i].Name {
			t.Errorf("Infos() not sorted: %q before %q", infos[i-1].Name, infos[i].Name)
		}
	}
}

// TestCapabilityClaims cross-checks every backend's declared capabilities
// against what its threads and transactions actually implement — the
// conformance gate that keeps Describe's answers truthful, so callers like
// stmserve's /engines endpoint never need ad-hoc type assertions.
func TestCapabilityClaims(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			info, ok := Describe(name)
			if !ok {
				t.Fatalf("no Info for %q", name)
			}
			eng := MustNew(name, Options{Nodes: 1})
			th := eng.Thread(0)
			if _, has := th.(AttemptCounter); has != info.Capabilities.AttemptCounter {
				t.Errorf("AttemptCounter claim %v, implementation says %v",
					info.Capabilities.AttemptCounter, has)
			}
			c := eng.NewCell(1)
			if err := th.Run(func(tx Txn) error {
				if _, has := tx.(IntTxn); has != info.Capabilities.IntLane {
					t.Errorf("IntLane claim %v, transaction says %v", info.Capabilities.IntLane, has)
				}
				return Set(tx, c, 2)
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestOptionsValidate: engine.New must reject option values no backend can
// honor with an error naming the offending field, instead of panicking or
// silently clamping inside a backend.
func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
		want string // substring the error must contain
	}{
		{"negative nodes", Options{Nodes: -1}, "Nodes"},
		{"negative max versions", Options{MaxVersions: -2}, "MaxVersions"},
		{"negative deviation", Options{Deviation: -5}, "Deviation"},
		{"negative shard window", Options{ShardWindow: -1}, "ShardWindow"},
		{"shard window one", Options{ShardWindow: 1}, "ShardWindow"},
		{"negative words", Options{Words: -3}, "Words"},
		{"unknown cm", Options{ContentionManager: "bogus"}, "contention manager"},
		{"stripes not a power of two", Options{Stripes: 7}, "Stripes"},
		{"stripes too wide", Options{Stripes: 128}, "Stripes"},
		{"negative stripes", Options{Stripes: -8}, "Stripes"},
		{"negative escalate stripes", Options{EscalateStripes: -1}, "EscalateStripes"},
		{"negative escalate aborts", Options{EscalateAborts: -1}, "EscalateAborts"},
		{"unknown fsync policy", Options{Fsync: "sometimes"}, "fsync policy"},
		{"negative segment bytes", Options{SegmentBytes: -1}, "SegmentBytes"},
		{"negative group interval", Options{GroupInterval: -time.Millisecond}, "GroupInterval"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.opt.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate() = %v, want error mentioning %q", err, tc.want)
			}
			// The rejection must hold through New on every backend, relevant
			// tunable or not — a bad value is a caller bug either way.
			for _, eng := range []string{"norec", "lsa/shared"} {
				if _, err := New(eng, tc.opt); err == nil || !strings.Contains(err.Error(), tc.want) {
					t.Errorf("New(%q) = %v, want error mentioning %q", eng, err, tc.want)
				}
			}
		})
	}
	good := []Options{
		{}, {Nodes: 4}, {MaxVersions: 1}, {ShardWindow: 2}, {Stripes: 16},
		{ContentionManager: "karma"}, {EscalateStripes: 1, EscalateAborts: 1},
		{Fsync: "always"}, {Fsync: "group"}, {Fsync: "never"},
		{SnapshotBytes: -1}, {SnapshotBytes: 1 << 20},
		{SegmentBytes: 1 << 16}, {GroupInterval: time.Millisecond},
	}
	for _, opt := range good {
		if err := opt.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", opt, err)
		}
	}
}

// TestBindFlags: the shared flag surface parses into the Options fields
// under the documented names, so every cmd driver exposes identical backend
// tunables.
func TestBindFlags(t *testing.T) {
	var o Options
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o.BindFlags(fs)
	args := []string{
		"-nodes", "4", "-max-versions", "2", "-deviation", "500",
		"-shard-window", "64", "-words", "1024", "-cm", "karma",
		"-stripes", "8", "-escalate-stripes", "2", "-escalate-aborts", "5",
		"-wal", "/tmp/wal", "-fsync", "always", "-snapshot", "4096",
		"-segment", "65536", "-group-interval", "5ms",
	}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	want := Options{
		Nodes: 4, MaxVersions: 2, Deviation: 500, ShardWindow: 64,
		Words: 1024, ContentionManager: "karma", Stripes: 8,
		EscalateStripes: 2, EscalateAborts: 5,
		WALDir: "/tmp/wal", Fsync: "always", SnapshotBytes: 4096,
		SegmentBytes: 65536, GroupInterval: 5 * time.Millisecond,
	}
	if !reflect.DeepEqual(o, want) {
		t.Errorf("parsed options %+v, want %+v", o, want)
	}
	if err := o.Validate(); err != nil {
		t.Errorf("parsed options must validate: %v", err)
	}
}

func TestNewUnknownBackend(t *testing.T) {
	_, err := New("no-such-stm", Options{})
	if err == nil {
		t.Fatal("unknown backend must error")
	}
	if !strings.Contains(err.Error(), "tl2") {
		t.Errorf("error should list registered backends: %v", err)
	}
}

func TestEveryBackendRoundTrips(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			eng := MustNew(name, Options{Nodes: 2})
			if eng.Name() != name {
				t.Errorf("Name() = %q, want %q", eng.Name(), name)
			}
			c := eng.NewCell(41)
			th := eng.Thread(0)
			if err := th.Run(func(tx Txn) error {
				return Update(tx, c, func(v int) int { return v + 1 })
			}); err != nil {
				t.Fatal(err)
			}
			var got int
			if err := th.RunReadOnly(func(tx Txn) error {
				var err error
				got, err = Get[int](tx, c)
				return err
			}); err != nil {
				t.Fatal(err)
			}
			if got != 42 {
				t.Errorf("read back %d, want 42", got)
			}
			// Every backend implements the IntTxn capability; drive
			// UpdateInt directly (Get/Set cover ReadInt/WriteInt).
			if err := th.Run(func(tx Txn) error {
				it, ok := tx.(IntTxn)
				if !ok {
					return fmt.Errorf("backend %s lacks the IntTxn capability", name)
				}
				done, err := it.UpdateInt(c, func(v int64) int64 { return v * 2 })
				if err != nil {
					return err
				}
				if !done {
					return fmt.Errorf("UpdateInt refused an int-lane cell")
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if err := th.RunReadOnly(func(tx Txn) error {
				var err error
				got, err = Get[int](tx, c)
				return err
			}); err != nil {
				t.Fatal(err)
			}
			if got != 84 {
				t.Errorf("UpdateInt result = %d, want 84", got)
			}
			if s := eng.Stats(); s.Commits < 3 {
				t.Errorf("stats did not count commits: %+v", s)
			}
		})
	}
}

// TestIntLaneUnboxed ratchets the whole engine-layer stack: a typed
// Get/Set read-modify-write of values far outside the runtime's small-int
// cache, through Thread.Run, the cached adapter closure, the IntTxn
// dispatch in the accessors, and the backend's numeric lane. The budgets
// are end-to-end allocations per committed transaction.
func TestIntLaneUnboxed(t *testing.T) {
	const big = 1 << 40
	budgets := map[string]float64{
		"norec":          0,
		"norec/striped":  0,
		"norec/combined": 0,
		"norec/adaptive": 0,
		"glock":          0,
		"rstmval":        0,
		"tl2":            1, // the shared commit version word
		"lsa/shared":     2, // per-attempt Tx + lazy settle of the previous commit
		"wordstm":        6, // native word-Tx machinery (not tuned); the tagged lane still never boxes
	}
	for name, budget := range budgets {
		t.Run(name, func(t *testing.T) {
			eng := MustNew(name, Options{Nodes: 1})
			c := eng.NewCell(big)
			th := eng.Thread(0)
			fn := func(tx Txn) error {
				v, err := Get[int](tx, c)
				if err != nil {
					return err
				}
				return Set(tx, c, big+(v+1)%100)
			}
			step := func() {
				if err := th.Run(fn); err != nil {
					t.Fatal(err)
				}
			}
			step()
			if got := testing.AllocsPerRun(200, step); got > budget {
				t.Errorf("%s: %.1f allocs per engine-layer int transaction, budget %.0f", name, got, budget)
			}
		})
	}
}

func TestTypedAccessorMismatch(t *testing.T) {
	eng := MustNew("lsa/shared", Options{})
	c := eng.NewCell("a string")
	th := eng.Thread(0)
	err := th.Run(func(tx Txn) error {
		_, err := Get[int](tx, c)
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "holds string") {
		t.Errorf("type mismatch must surface, got %v", err)
	}
}

func TestReadOnlyRejectsWrites(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			eng := MustNew(name, Options{Nodes: 1})
			c := eng.NewCell(0)
			th := eng.Thread(0)
			if err := th.RunReadOnly(func(tx Txn) error {
				return tx.Write(c, 1)
			}); err == nil {
				t.Error("write inside read-only transaction must fail")
			}
		})
	}
}

func TestWordEncoding(t *testing.T) {
	e, err := newWord(Options{Words: 64}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	we := e.(*wordEngine)
	type pair struct{ a, b int }
	cases := []any{0, 1, -1, 12345, -12345, immediateMax - 1, -immediateMax + 1,
		immediateMax, -immediateMax, int(1) << 62, "hello", pair{3, 4}, []int{1, 2}}
	for _, v := range cases {
		w, _ := we.encode(v)
		got := we.decode(w)
		switch want := v.(type) {
		case []int:
			g, ok := got.([]int)
			if !ok || len(g) != len(want) {
				t.Errorf("encode/decode %v → %v", v, got)
			}
		default:
			if got != v {
				t.Errorf("encode/decode %v (%T) → %v (%T)", v, v, got, got)
			}
		}
	}
	// Small ints must stay immediate (no boxing).
	before := len(we.boxes)
	we.encode(7)
	we.encode(-7)
	if len(we.boxes) != before {
		t.Errorf("small ints were boxed: %d → %d boxes", before, len(we.boxes))
	}
	// Freed slots must be reused before the table grows.
	_, idx := we.encode("reusable")
	if idx < 0 {
		t.Fatal("string encode did not box")
	}
	grown := len(we.boxes)
	we.freeBoxes([]int64{idx})
	_, idx2 := we.encode("replacement")
	if idx2 != idx {
		t.Errorf("freed slot %d not reused (got %d)", idx, idx2)
	}
	if len(we.boxes) != grown {
		t.Errorf("table grew past a free slot: %d → %d", grown, len(we.boxes))
	}
}

func TestWordCellExhaustion(t *testing.T) {
	eng, err := newWord(Options{Words: 2}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	eng.NewCell(1)
	eng.NewCell(2)
	defer func() {
		if recover() == nil {
			t.Error("third cell must panic on exhaustion")
		}
	}()
	eng.NewCell(3)
}

func TestCrossEngineCellPanics(t *testing.T) {
	lsa := MustNew("lsa/shared", Options{})
	tl2e := MustNew("tl2", Options{})
	c := lsa.NewCell(0)
	th := tl2e.Thread(0)
	defer func() {
		if recover() == nil {
			t.Error("foreign cell must panic")
		}
	}()
	_ = th.Run(func(tx Txn) error {
		_, err := tx.Read(c)
		return err
	})
}

// TestNestedRunSameThread: a transaction body that starts another
// transaction on the same Thread must leave the outer retry loop's cached
// closure intact — regression test for the save/restore in the adapter
// threads. Only the engines whose native runtimes tolerate nesting are
// driven: the LSA core builds a fresh Tx per attempt and wordstm likewise,
// so the nested Run executes as a flat, independent transaction; the
// recycled-Tx engines (norec, tl2, glock, rstmval) share one native
// transaction per thread and do not support nesting at any layer.
func TestNestedRunSameThread(t *testing.T) {
	for _, name := range []string{"lsa/shared", "wordstm"} {
		t.Run(name, func(t *testing.T) {
			eng := MustNew(name, Options{Nodes: 1})
			a, b := eng.NewCell(0), eng.NewCell(0)
			th := eng.Thread(0)
			if err := th.Run(func(tx Txn) error {
				if err := Set(tx, a, 1); err != nil {
					return err
				}
				return th.Run(func(inner Txn) error { return Set(inner, b, 2) })
			}); err != nil {
				t.Fatal(err)
			}
			var av, bv int
			if err := th.RunReadOnly(func(tx Txn) error {
				var err error
				if av, err = Get[int](tx, a); err != nil {
					return err
				}
				bv, err = Get[int](tx, b)
				return err
			}); err != nil {
				t.Fatal(err)
			}
			if av != 1 || bv != 2 {
				t.Errorf("nested run results: a=%d b=%d, want 1/2", av, bv)
			}
		})
	}
}

// TestIntLaneWideValues: values past wordstm's 63-bit immediate range must
// still round-trip through the typed accessors on every backend — the word
// engine boxes them into its side table but serves them back through the
// numeric lane like everyone else.
func TestIntLaneWideValues(t *testing.T) {
	const wide = int64(1) << 62
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			eng := MustNew(name, Options{Nodes: 1})
			th := eng.Thread(0)
			c := eng.NewCell(0)
			if err := th.Run(func(tx Txn) error { return Set(tx, c, wide) }); err != nil {
				t.Fatal(err)
			}
			var got64 int64
			var gotInt int
			if err := th.RunReadOnly(func(tx Txn) error {
				var err error
				if got64, err = Get[int64](tx, c); err != nil {
					return err
				}
				gotInt, err = Get[int](tx, c)
				return err
			}); err != nil {
				t.Fatal(err)
			}
			if got64 != wide || gotInt != int(wide) {
				t.Errorf("wide round trip: int64=%d int=%d, want %d", got64, gotInt, wide)
			}
		})
	}
}
