package norec

import (
	"errors"
	"sync"
	"testing"
)

func TestAdaptiveRoundTrip(t *testing.T) {
	s, err := NewAdaptive(AdaptiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	o := NewObject(41)
	th := s.Thread(0)
	if err := th.Run(func(tx *ATx) error {
		v, err := tx.Read(o)
		if err != nil {
			return err
		}
		return tx.Write(o, v.(int)+1)
	}); err != nil {
		t.Fatal(err)
	}
	var got any
	if err := th.RunReadOnly(func(tx *ATx) error {
		v, err := tx.Read(o)
		got = v
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("read back %v, want 42", got)
	}
	if n := s.EscalatedCommits(); n != 0 {
		t.Errorf("narrow transactions escalated %d times", n)
	}
}

func TestAdaptiveReadOnlyRejectsWrites(t *testing.T) {
	s, _ := NewAdaptive(AdaptiveOptions{})
	o := NewObject(0)
	if err := s.Thread(0).RunReadOnly(func(tx *ATx) error {
		return tx.Write(o, 1)
	}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("err = %v, want ErrReadOnly", err)
	}
}

func TestAdaptiveOptionsValidation(t *testing.T) {
	for _, bad := range []AdaptiveOptions{
		{Stripes: 3},
		{Stripes: 65},
		{Stripes: 128},
		{Stripes: -4},
		{EscalateStripes: -1},
		{EscalateAborts: -1},
	} {
		if _, err := NewAdaptive(bad); err == nil {
			t.Errorf("NewAdaptive(%+v) accepted invalid options", bad)
		}
	}
	for _, good := range []AdaptiveOptions{
		{},
		{Stripes: 1},
		{Stripes: 16, EscalateStripes: 4, EscalateAborts: 1},
		{Stripes: 64, EscalateStripes: 64},
	} {
		if _, err := NewAdaptive(good); err != nil {
			t.Errorf("NewAdaptive(%+v): %v", good, err)
		}
	}
}

// TestAdaptiveEscalatesOnWidth: with the threshold at 1 stripe, a
// transaction that touches two stripes must escalate mid-attempt, keep its
// validated log, and commit on the global path.
func TestAdaptiveEscalatesOnWidth(t *testing.T) {
	s, err := NewAdaptive(AdaptiveOptions{EscalateStripes: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewObject(10), NewObject(20)
	if s.sindex(a) == s.sindex(b) {
		t.Fatal("test objects landed in one stripe; round-robin sid broken")
	}
	th := s.Thread(0)
	if err := th.Run(func(tx *ATx) error {
		av, err := tx.Read(a)
		if err != nil {
			return err
		}
		if tx.escalated {
			t.Error("single-stripe attempt escalated too early")
		}
		bv, err := tx.Read(b) // second stripe: crosses the threshold
		if err != nil {
			return err
		}
		if !tx.escalated {
			t.Error("two-stripe attempt did not escalate past threshold 1")
		}
		return tx.Write(a, av.(int)+bv.(int))
	}); err != nil {
		t.Fatal(err)
	}
	if n := s.EscalatedCommits(); n != 1 {
		t.Errorf("EscalatedCommits = %d, want 1", n)
	}
	var got any
	if err := th.RunReadOnly(func(tx *ATx) error {
		v, err := tx.Read(a)
		got = v
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got != 30 {
		t.Errorf("escalated commit result = %v, want 30", got)
	}
	// The escalated attempt deregistered: the window bracket must be off.
	if v := s.esc.Load(); v != 0 {
		t.Errorf("escalation count leaked: %d registered after completion", v)
	}
	if ws, wf := s.wstart.Load(), s.wfin.Load(); ws != wf {
		t.Errorf("write window left open: wstart=%d wfin=%d", ws, wf)
	}
}

// TestAdaptiveEscalatesOnAborts: with EscalateAborts = 1, an attempt that
// aborts once on the striped path must be retried escalated.
func TestAdaptiveEscalatesOnAborts(t *testing.T) {
	s, err := NewAdaptive(AdaptiveOptions{EscalateAborts: 1})
	if err != nil {
		t.Fatal(err)
	}
	o := NewObject(0)
	th, other := s.Thread(0), s.Thread(1)
	attempt := 0
	sawEscalated := false
	if err := th.Run(func(tx *ATx) error {
		attempt++
		if tx.escalated {
			sawEscalated = true
		}
		v, err := tx.Read(o)
		if err != nil {
			return err
		}
		if attempt == 1 {
			// A foreign commit invalidates the logged read: the striped
			// commit below must abort this attempt.
			if err := other.Run(func(tx2 *ATx) error {
				return tx2.Write(o, 99)
			}); err != nil {
				return err
			}
		}
		return tx.Write(o, v.(int)+1)
	}); err != nil {
		t.Fatal(err)
	}
	if attempt < 2 {
		t.Fatalf("conflicting attempt did not abort (attempts = %d)", attempt)
	}
	if !sawEscalated {
		t.Error("retry after EscalateAborts striped aborts did not start escalated")
	}
	if n := s.EscalatedCommits(); n != 1 {
		t.Errorf("EscalatedCommits = %d, want 1", n)
	}
	var got any
	if err := th.RunReadOnly(func(tx *ATx) error {
		v, err := tx.Read(o)
		got = v
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Errorf("final value = %v, want 100", got)
	}
}

// TestAdaptiveMixedWidthStress runs narrow striped transfers and wide
// escalating scans/rotations against the same universe: the conservation
// invariant (constant sum) must hold inside every wide snapshot and at the
// end, with both protocols committing concurrently.
func TestAdaptiveMixedWidthStress(t *testing.T) {
	s, err := NewAdaptive(AdaptiveOptions{EscalateStripes: 4})
	if err != nil {
		t.Fatal(err)
	}
	const ncells = 32
	const initial = 1000
	cells := make([]*Object, ncells)
	for i := range cells {
		cells[i] = NewObject(initial)
	}
	const workers = 4
	const iters = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := s.Thread(id)
			rng := uint64(id)*2654435761 + 1
			next := func() uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng
			}
			for i := 0; i < iters; i++ {
				var err error
				if i%8 == 0 {
					// Wide: read every cell (escalates past 4 stripes),
					// check conservation, rotate one unit around the ring.
					err = th.Run(func(tx *ATx) error {
						sum := 0
						var vals [ncells]int
						for j, c := range cells {
							v, err := tx.Read(c)
							if err != nil {
								return err
							}
							vals[j] = v.(int)
							sum += vals[j]
						}
						if sum != ncells*initial {
							t.Errorf("wide snapshot sum = %d, want %d", sum, ncells*initial)
						}
						for j, c := range cells {
							if err := tx.Write(c, vals[(j+1)%ncells]); err != nil {
								return err
							}
						}
						return nil
					})
				} else {
					// Narrow: move one unit between two cells (striped path).
					from := int(next() % ncells)
					to := int(next() % ncells)
					err = th.Run(func(tx *ATx) error {
						fv, err := tx.Read(cells[from])
						if err != nil {
							return err
						}
						tv, err := tx.Read(cells[to])
						if err != nil {
							return err
						}
						if from == to {
							return nil
						}
						if err := tx.Write(cells[from], fv.(int)-1); err != nil {
							return err
						}
						return tx.Write(cells[to], tv.(int)+1)
					})
				}
				if err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	sum := 0
	if err := s.Thread(workers).RunReadOnly(func(tx *ATx) error {
		sum = 0
		for _, c := range cells {
			v, err := tx.Read(c)
			if err != nil {
				return err
			}
			sum += v.(int)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum != ncells*initial {
		t.Errorf("final sum = %d, want %d (conservation violated)", sum, ncells*initial)
	}
	if s.EscalatedCommits() == 0 {
		t.Error("stress never exercised the escalated path")
	}
	if v := s.esc.Load(); v != 0 {
		t.Errorf("escalation count leaked: %d", v)
	}
	if ws, wf := s.wstart.Load(), s.wfin.Load(); ws != wf {
		t.Errorf("write window left open: wstart=%d wfin=%d", ws, wf)
	}
}

// FuzzAdaptiveEscalation is the satellite fuzz target for the escalation
// decision: the same single-threaded operation sequence runs on a universe
// that never escalates by width (threshold 64) and one that escalates on
// the second stripe (threshold 1). Protocol choice must be invisible —
// identical read traces and identical final states.
func FuzzAdaptiveEscalation(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x13, 0x99, 0x07, 0x00, 0xff, 0x3c})
	f.Add([]byte{0x20, 0x21, 0x22, 0x23, 0x24, 0x25, 0x26, 0x27, 0x28, 0x29})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		const ncells = 16
		run := func(opts AdaptiveOptions) (trace []int64, final [ncells]int64) {
			s, err := NewAdaptive(opts)
			if err != nil {
				t.Fatal(err)
			}
			cells := make([]*Object, ncells)
			for i := range cells {
				cells[i] = NewObject(int64(100 + i))
			}
			th := s.Thread(0)
			// Group ops in fours into one transaction each. Reads are
			// collected locally and appended to the trace only after the
			// commit, so a (hypothetical) retry cannot duplicate them.
			for pos := 0; pos < len(data); pos += 4 {
				ops := data[pos:min(pos+4, len(data))]
				var local []int64
				if err := th.Run(func(tx *ATx) error {
					local = local[:0]
					for i, b := range ops {
						c := cells[int(b>>2)%ncells]
						switch b & 3 {
						case 0, 1: // read
							v, err := tx.Read(c)
							if err != nil {
								return err
							}
							local = append(local, v.(int64))
						case 2: // overwrite
							if err := tx.Write(c, int64(b)*7+int64(i)); err != nil {
								return err
							}
						case 3: // read-modify-write
							v, err := tx.Read(c)
							if err != nil {
								return err
							}
							if err := tx.Write(c, v.(int64)+1); err != nil {
								return err
							}
							local = append(local, v.(int64))
						}
					}
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				trace = append(trace, local...)
			}
			if err := th.RunReadOnly(func(tx *ATx) error {
				for i, c := range cells {
					v, err := tx.Read(c)
					if err != nil {
						return err
					}
					final[i] = v.(int64)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			return trace, final
		}
		striped, stripedFinal := run(AdaptiveOptions{EscalateStripes: stripeCount})
		escalated, escalatedFinal := run(AdaptiveOptions{EscalateStripes: 1})
		if len(striped) != len(escalated) {
			t.Fatalf("trace lengths diverge: %d striped vs %d escalated", len(striped), len(escalated))
		}
		for i := range striped {
			if striped[i] != escalated[i] {
				t.Fatalf("read %d diverges: %d striped vs %d escalated", i, striped[i], escalated[i])
			}
		}
		if stripedFinal != escalatedFinal {
			t.Fatalf("final states diverge:\n  striped:   %v\n  escalated: %v", stripedFinal, escalatedFinal)
		}
	})
}
