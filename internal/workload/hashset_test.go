package workload

import (
	"sync"
	"testing"
)

func TestHashSetSequentialSemantics(t *testing.T) {
	eng := newEng(t)
	h := &HashSet{Buckets: 8, KeyRange: 100, Seed: 3}
	if err := h.Init(eng, 1); err != nil {
		t.Fatal(err)
	}
	th := eng.Thread(0)
	model := map[int]bool{}
	ops := []struct {
		op  string
		key int
	}{
		{"add", 5}, {"add", 13}, {"add", 5}, {"add", 21}, // 13 and 21 may share a bucket
		{"rm", 13}, {"rm", 13}, {"add", 99}, {"add", 0}, {"rm", 5},
	}
	for i, op := range ops {
		switch op.op {
		case "add":
			got, err := h.Add(th, op.key)
			if err != nil {
				t.Fatal(err)
			}
			if want := !model[op.key]; got != want {
				t.Errorf("op %d: add(%d) = %v, want %v", i, op.key, got, want)
			}
			model[op.key] = true
		case "rm":
			got, err := h.Remove(th, op.key)
			if err != nil {
				t.Fatal(err)
			}
			if want := model[op.key]; got != want {
				t.Errorf("op %d: remove(%d) = %v, want %v", i, op.key, got, want)
			}
			delete(model, op.key)
		}
		size, err := h.Size(th)
		if err != nil {
			t.Fatal(err)
		}
		if size != len(model) {
			t.Errorf("op %d: size = %d, want %d", i, size, len(model))
		}
		for k := range model {
			ok, err := h.Contains(th, k)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Errorf("op %d: contains(%d) = false, want true", i, k)
			}
		}
	}
}

func TestHashSetConcurrentSizeConsistent(t *testing.T) {
	// Paired add/remove keep the size parity meaningful: every worker adds
	// a key then removes it, so a consistent Size snapshot varies but the
	// final size is exactly the set of keys never removed.
	eng := newClockEng(t)
	h := &HashSet{Buckets: 16, KeyRange: 512, Seed: 7}
	const workers, per = 4, 150
	if err := h.Init(eng, workers); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := eng.Thread(id)
			for i := 0; i < per; i++ {
				key := id*1000 + i // disjoint key spaces
				if _, err := h.Add(th, key); err != nil {
					t.Errorf("add: %v", err)
					return
				}
				if i%2 == 0 {
					if _, err := h.Remove(th, key); err != nil {
						t.Errorf("remove: %v", err)
						return
					}
				}
				if i%25 == 0 {
					if _, err := h.Size(th); err != nil {
						t.Errorf("size: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	size, err := h.Size(eng.Thread(99))
	if err != nil {
		t.Fatal(err)
	}
	// Each worker leaves the odd-i keys in: per/2 keys each.
	if want := workers * per / 2; size != want {
		t.Errorf("final size = %d, want %d", size, want)
	}
}

func TestHashSetAsHarnessWorkload(t *testing.T) {
	eng := newEng(t)
	h := &HashSet{Buckets: 8, KeyRange: 64, UpdateRatio: 0.5, SizeRatio: 0.1, Seed: 9}
	if err := h.Init(eng, 2); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := eng.Thread(id)
			step := h.Step(eng, th, id)
			for i := 0; i < 300; i++ {
				if err := step(); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
}
