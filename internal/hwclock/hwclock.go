// Package hwclock simulates the hardware clock of the paper's testbed: the
// MMTimer of the SGI Altix 3700 (§4.1). The real device is a 20 MHz global
// clock with one register per node; reading it always takes 7–8 of its own
// ticks, which makes it strictly monotonic per reader and masks most of the
// (hardware-synchronized) per-node offset.
//
// The simulation derives ticks from Go's monotonic clock and lets tests and
// experiments inject the properties the paper studies:
//
//   - tick period (20 MHz → 50 ns by default),
//   - a read latency, modeled by spinning for the configured number of ticks
//     so that the *cost* of a clock read — the thing Figure 2 measures — is
//     physically present, not just accounted for;
//   - per-node constant offsets and per-read jitter, to model imperfectly
//     synchronized node registers for the clock-comparison experiment
//     (Figure 1) and the externally synchronized time base (§3.2).
//
// With zero offsets and zero jitter the device behaves as a perfectly
// synchronized clock: every node read is a linearizable read of one global
// clock (§3.1).
package hwclock

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// Config describes a simulated clock device.
type Config struct {
	// TickHz is the clock frequency. Must be positive.
	// The MMTimer runs at 20 MHz.
	TickHz int64

	// ReadLatencyTicks is how many device ticks a single read takes. The
	// MMTimer takes 7–8. Zero means reads are free (an idealized clock).
	ReadLatencyTicks int64

	// Nodes is the number of per-node clock registers. Must be positive.
	Nodes int

	// MaxOffsetTicks bounds the constant synchronization offset of each
	// node's register from true device time. Zero models perfect hardware
	// synchronization.
	MaxOffsetTicks int64

	// JitterTicks bounds the additional per-read, uniformly distributed
	// error (e.g. varying latency of the clock-distribution signal). Zero
	// disables jitter.
	JitterTicks int64

	// Seed seeds the offset/jitter generator so experiments are repeatable.
	Seed int64
}

// MMTimerConfig returns the configuration matching the paper's description
// of the Altix MMTimer with perfectly synchronized node registers: 20 MHz,
// 7-tick read latency, no offsets or jitter.
func MMTimerConfig(nodes int) Config {
	return Config{TickHz: 20_000_000, ReadLatencyTicks: 7, Nodes: nodes}
}

// IdealConfig returns an idealized free-to-read, nanosecond-granularity,
// perfectly synchronized clock. Useful for separating algorithmic costs from
// clock-access costs in ablations.
func IdealConfig(nodes int) Config {
	return Config{TickHz: 1_000_000_000, Nodes: nodes}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.TickHz <= 0 {
		return fmt.Errorf("hwclock: TickHz must be positive, got %d", c.TickHz)
	}
	if c.Nodes <= 0 {
		return fmt.Errorf("hwclock: Nodes must be positive, got %d", c.Nodes)
	}
	if c.ReadLatencyTicks < 0 || c.MaxOffsetTicks < 0 || c.JitterTicks < 0 {
		return fmt.Errorf("hwclock: negative latency/offset/jitter")
	}
	return nil
}

// MaxErrorTicks is the worst-case deviation of a node read from true device
// time: constant offset plus jitter plus one tick of read granularity. An
// externally synchronized time base built on this device must use at least
// this deviation bound.
func (c Config) MaxErrorTicks() int64 {
	return c.MaxOffsetTicks + c.JitterTicks + 1
}

// Device is a simulated global hardware clock with per-node registers.
// All methods are safe for concurrent use.
type Device struct {
	cfg        Config
	start      time.Time // monotonic epoch
	tickPeriod time.Duration
	nodes      []nodeRegister
}

type nodeRegister struct {
	_         [64]byte // keep each node's state on its own cache line
	offset    int64    // constant offset from true device time, in ticks
	jitterSrc atomic.Int64
	lastRead  atomic.Int64 // strict-monotonicity floor for this register
	_         [40]byte
}

// New creates a device. It panics on an invalid configuration; configs come
// from code, not user input.
func New(cfg Config) *Device {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := &Device{
		cfg:        cfg,
		start:      time.Now(),
		tickPeriod: time.Duration(int64(time.Second) / cfg.TickHz),
		nodes:      make([]nodeRegister, cfg.Nodes),
	}
	if d.tickPeriod <= 0 {
		d.tickPeriod = time.Nanosecond
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := range d.nodes {
		if cfg.MaxOffsetTicks > 0 {
			// Offsets uniform in [−MaxOffsetTicks, +MaxOffsetTicks].
			d.nodes[i].offset = rng.Int63n(2*cfg.MaxOffsetTicks+1) - cfg.MaxOffsetTicks
		}
		d.nodes[i].jitterSrc.Store(rng.Int63())
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Nodes returns the number of node registers.
func (d *Device) Nodes() int { return len(d.nodes) }

// TrueOffset returns node's constant offset in ticks. Experiments use it to
// compare an estimated offset with ground truth; the STM never calls it.
func (d *Device) TrueOffset(node int) int64 { return d.nodes[node].offset }

// Now returns the true device time in ticks, with no latency, offset or
// jitter. This is the omniscient observer's clock, used by experiment
// harnesses; real readers go through NodeRead.
func (d *Device) Now() int64 {
	return int64(time.Since(d.start) / d.tickPeriod)
}

// NodeRead reads node's clock register. It costs ReadLatencyTicks of device
// time (a spin, so the cost is physically real in benchmarks), includes the
// node's constant offset and per-read jitter, and is strictly monotonic per
// register, as the MMTimer is observed to be (§4.1: reading takes 7–8 ticks,
// so the effective granularity is coarser than the tick rate and every read
// returns a fresh value).
func (d *Device) NodeRead(node int) int64 {
	nr := &d.nodes[node]
	if d.cfg.ReadLatencyTicks > 0 {
		deadline := time.Duration(d.cfg.ReadLatencyTicks) * d.tickPeriod
		begin := time.Now()
		for time.Since(begin) < deadline {
			// Busy wait: the cost of the read is the point.
		}
	}
	v := d.Now() + nr.offset
	if d.cfg.JitterTicks > 0 {
		v += nr.nextJitter(d.cfg.JitterTicks)
	}
	// Enforce strict per-register monotonicity, as the real device provides.
	for {
		last := nr.lastRead.Load()
		if v <= last {
			v = last + 1
		}
		if nr.lastRead.CompareAndSwap(last, v) {
			return v
		}
	}
}

// nextJitter produces a uniform value in [−bound, +bound] from a per-node
// xorshift generator (avoiding a lock inside math/rand on the read path).
func (nr *nodeRegister) nextJitter(bound int64) int64 {
	for {
		old := nr.jitterSrc.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if nr.jitterSrc.CompareAndSwap(old, x) {
			if x < 0 {
				x = -x
			}
			return x%(2*bound+1) - bound
		}
	}
}

// TickPeriod returns the duration of one device tick.
func (d *Device) TickPeriod() time.Duration { return d.tickPeriod }
