package latency

import (
	"encoding/json"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{1023, 9}, {1024, 10}, {time.Microsecond, 9}, {time.Millisecond, 19},
		{time.Second, 29}, {time.Duration(1)<<62 + 1, 62},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestGoldenPercentiles drives known distributions through the histogram and
// checks the extracted percentiles against hand-computed bucket bounds.
func TestGoldenPercentiles(t *testing.T) {
	t.Run("uniform-single-bucket", func(t *testing.T) {
		// 1000 observations of 100 ns, all in bucket 6 ([64,128)): every
		// percentile is that bucket's upper bound, 127 ns.
		var h Histogram
		for i := 0; i < 1000; i++ {
			h.Record(100)
		}
		b := h.Load()
		for _, q := range []float64{0.5, 0.99, 0.999, 1} {
			if got := b.Quantile(q); got != 127 {
				t.Errorf("q=%v: got %d, want 127", q, got)
			}
		}
	})
	t.Run("bimodal", func(t *testing.T) {
		// 990 fast observations at 100 ns (bucket 6, upper 127) and 10 slow
		// at 10 µs (bucket 13 [8192,16384), upper 16383). p50 and p99 land in
		// the fast mode (ranks 500 and 991 ≤ 990... rank 991 > 990 → slow).
		// Precisely: total=1000; p50 rank 500 → fast; p99 rank 990 → fast
		// (cumulative 990 ≥ 990); p999 rank 999 → slow.
		var h Histogram
		h.RecordN(100, 990)
		h.RecordN(10*time.Microsecond, 10)
		b := h.Load()
		if got := b.Quantile(0.50); got != 127 {
			t.Errorf("p50 = %d, want 127", got)
		}
		if got := b.Quantile(0.99); got != 127 {
			t.Errorf("p99 = %d, want 127", got)
		}
		if got := b.Quantile(0.999); got != 16383 {
			t.Errorf("p999 = %d, want 16383", got)
		}
	})
	t.Run("one-per-bucket", func(t *testing.T) {
		// One observation in each of buckets 0..9 (values 1,2,4,...,512):
		// total 10, p50 rank 5 → bucket 4 (upper 31), p99/p999 rank 10 →
		// bucket 9 (upper 1023).
		var h Histogram
		for i := 0; i < 10; i++ {
			h.Record(time.Duration(int64(1) << i))
		}
		b := h.Load()
		if got := b.Quantile(0.50); got != 31 {
			t.Errorf("p50 = %d, want 31", got)
		}
		if got := b.Quantile(0.999); got != 1023 {
			t.Errorf("p999 = %d, want 1023", got)
		}
	})
	t.Run("empty", func(t *testing.T) {
		var h Histogram
		b := h.Load()
		if got := b.Quantile(0.5); got != 0 {
			t.Errorf("empty quantile = %d, want 0", got)
		}
		if s := b.Summary(); s != nil {
			t.Errorf("empty summary = %+v, want nil", s)
		}
	})
}

// TestMergeCommutative is the property test: for random histogram pairs,
// A merged into B and B merged into A must produce identical buckets, and
// the merged count must be the sum of the parts.
func TestMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var a, b Histogram
		na, nb := rng.Intn(200), rng.Intn(200)
		for i := 0; i < na; i++ {
			a.Record(time.Duration(rng.Int63n(int64(10 * time.Millisecond))))
		}
		for i := 0; i < nb; i++ {
			b.Record(time.Duration(rng.Int63n(int64(10 * time.Millisecond))))
		}
		var ab, ba Histogram
		ab.Merge(&a)
		ab.Merge(&b)
		ba.Merge(&b)
		ba.Merge(&a)
		if ab.Load() != ba.Load() {
			t.Fatalf("trial %d: merge not commutative", trial)
		}
		if got, want := ab.Load().Count(), uint64(na+nb); got != want {
			t.Fatalf("trial %d: merged count %d, want %d", trial, got, want)
		}
		// The value-typed Accumulate must agree with Histogram.Merge.
		av, bv := a.Load(), b.Load()
		av.Accumulate(bv)
		if av != ab.Load() {
			t.Fatalf("trial %d: Accumulate disagrees with Merge", trial)
		}
	}
}

// TestConcurrentRecord hammers one histogram from many goroutines; run with
// -race this is the data-race gate, and the final count must be exact (no
// lost updates).
func TestConcurrentRecord(t *testing.T) {
	const workers = 8
	perWorker := 10000
	if testing.Short() {
		perWorker = 2000
	}
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				h.Record(time.Duration(rng.Int63n(int64(time.Millisecond))))
			}
		}(int64(w))
	}
	wg.Wait()
	if got, want := h.Load().Count(), uint64(workers*perWorker); got != want {
		t.Errorf("count = %d, want %d (lost updates)", got, want)
	}
}

func TestSubDelta(t *testing.T) {
	var h Histogram
	h.RecordN(100, 5)
	before := h.Load()
	h.RecordN(100, 3)
	h.Record(time.Second)
	delta := h.Load().Sub(before)
	if got := delta.Count(); got != 4 {
		t.Errorf("delta count = %d, want 4", got)
	}
	if delta[6] != 3 || delta[29] != 1 {
		t.Errorf("delta buckets wrong: %v", delta[:32])
	}
}

func TestSummaryValidate(t *testing.T) {
	var h Histogram
	h.RecordN(100, 990)
	h.RecordN(10*time.Microsecond, 10)
	s := h.Load().Summary()
	if err := s.Validate(); err != nil {
		t.Fatalf("healthy summary rejected: %v", err)
	}
	// Round-trip through JSON (what benchcheck actually sees).
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var rt Summary
	if err := json.Unmarshal(data, &rt); err != nil {
		t.Fatal(err)
	}
	if err := rt.Validate(); err != nil {
		t.Fatalf("round-tripped summary rejected: %v", err)
	}

	bad := *s
	bad.Count++
	if err := bad.Validate(); err == nil {
		t.Error("count/bucket mismatch must be rejected")
	}
	bad = *s
	bad.P99 = bad.P999 + 1
	if err := bad.Validate(); err == nil {
		t.Error("tampered percentile must be rejected")
	}
	bad = *s
	bad.Buckets = make([]uint64, NumBuckets+1)
	if err := bad.Validate(); err == nil {
		t.Error("oversized bucket array must be rejected")
	}
	var nilSum *Summary
	if err := nilSum.Validate(); err == nil {
		t.Error("nil summary must be rejected")
	}
	if nilSum.String() != "-" {
		t.Error("nil summary String should render as -")
	}
	var empty Summary
	if err := empty.Validate(); err == nil {
		t.Error("zero-observation summary must be rejected")
	}
}

// TestAllocBudget ratchets Record at 0 allocs/op: the histogram sits on the
// per-transaction hot path of every harness run, and the PR-4/5 work got the
// value-based engines to literal zero allocations per commit — the
// measurement layer must not hand that back.
func TestAllocBudget(t *testing.T) {
	var h Histogram
	d := 100 * time.Nanosecond
	if got := testing.AllocsPerRun(1000, func() {
		h.Record(d)
		h.RecordN(d, 3)
	}); got != 0 {
		t.Errorf("Record allocates %.1f allocs/op, budget is 0", got)
	}
}
