package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/harness"
)

func TestParseInts(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		ok   bool
	}{
		{"", nil, true},
		{"1", []int{1}, true},
		{"1,2,16", []int{1, 2, 16}, true},
		{" 1 , 2 ", []int{1, 2}, true},
		{"1,x", nil, false},
		{",", nil, false},
	}
	for _, c := range cases {
		got, err := parseInts(c.in)
		if (err == nil) != c.ok {
			t.Errorf("parseInts(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseInts(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSelectedEngines(t *testing.T) {
	// The default matrix is every registered engine, durable wrappers
	// included (the built-in []int codec made hashset journal-able; the
	// cell-graph workloads skip per engine inside runBench instead).
	def := engine.Names()
	if got := selectedEngines(""); !reflect.DeepEqual(got, def) {
		t.Errorf("empty spec = %v, want full registry %v", got, def)
	}
	if got := selectedEngines("all"); !reflect.DeepEqual(got, def) {
		t.Errorf("all spec = %v, want full registry %v", got, def)
	}
	if got := selectedEngines(" tl2 , durable/norec "); !reflect.DeepEqual(got, []string{"tl2", "durable/norec"}) {
		t.Errorf("explicit spec = %v", got)
	}
}

func TestRunBenchDurableSkipsCellGraphWorkloads(t *testing.T) {
	// A durable/<base> run must complete: workloads whose payloads no codec
	// can carry (the linked-list and skip-list node structs embed cell
	// handles) are skipped with a notice, everything else — including the
	// codec-backed hashset — is measured.
	results, err := runBench([]string{"durable/norec"}, engine.Options{WALDir: t.TempDir()},
		2, 20*time.Millisecond, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 || len(results) >= len(benchWorkloads()) {
		t.Fatalf("got %d results, want a nonempty strict subset of the %d workloads",
			len(results), len(benchWorkloads()))
	}
	ranHashset := false
	for _, r := range results {
		for _, structural := range []string{"intset", "skiplist"} {
			if strings.HasPrefix(r.Workload, structural) {
				t.Errorf("cell-graph workload %s ran on %s", r.Workload, r.Engine)
			}
		}
		if strings.HasPrefix(r.Workload, "hashset") {
			ranHashset = true
		}
		if r.Txs == 0 {
			t.Errorf("%s on %s committed nothing", r.Workload, r.Engine)
		}
	}
	if !ranHashset {
		t.Error("hashset did not run on durable/norec — the []int codec lift regressed")
	}
}

func TestRunBenchOneEngineAndJSON(t *testing.T) {
	results, err := runBench([]string{"tl2"}, engine.Options{}, 2, 20*time.Millisecond, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(benchWorkloads()); len(results) != want {
		t.Fatalf("results = %d, want %d", len(results), want)
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := writeJSON(path, results); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := harness.ParseSnapshot(data)
	if err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if snap.Host == nil || snap.Host.NumCPU < 1 || snap.Host.GOMAXPROCS < 1 {
		t.Errorf("written snapshot lacks a usable host header: %+v", snap.Host)
	}
	back := snap.Results
	if len(back) != len(results) || back[0].Engine != "tl2" || back[0].Txs == 0 {
		t.Errorf("bad records: %+v", back)
	}
	if benchTable(results).String() == "" {
		t.Error("empty bench table")
	}
}
