package experiments

import (
	"fmt"

	"repro/internal/simmachine"
	"repro/internal/stats"
)

// Fig2SimConfig parameterizes the simulated-multiprocessor version of
// Figure 2. The real-STM Fig2 exercises the actual engine but can only show
// scalability on real parallel hardware; this variant regenerates the
// paper's curves on any host by replaying the workload's time-base access
// pattern through the calibrated coherence cost model (see
// internal/simmachine).
type Fig2SimConfig struct {
	// Sizes are the transaction sizes (default 10, 50, 100).
	Sizes []int
	// Threads is the simulated CPU sweep (default 1,2,4,6,8,12,16).
	Threads []int
	// TimeBases are the simulated bases (default counter and hardware
	// clock).
	TimeBases []simmachine.TimeBaseKind
	// DurationNs is the simulated horizon per point (default 50 ms).
	DurationNs int64
	// Costs overrides the cost model (zero → calibrated defaults).
	Costs simmachine.CostModel
}

// Fig2SimPoint is one simulated point.
type Fig2SimPoint struct {
	Size     int
	TimeBase string
	Threads  int
	MTxPerS  float64
	Result   simmachine.Result
}

// Fig2SimResult groups all points with a rendered table.
type Fig2SimResult struct {
	Points []Fig2SimPoint
	Table  *stats.Table
}

// Fig2Sim runs the simulated Figure 2.
func Fig2Sim(cfg Fig2SimConfig) (*Fig2SimResult, error) {
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = DefaultSizes
	}
	if len(cfg.Threads) == 0 {
		cfg.Threads = DefaultThreads
	}
	if len(cfg.TimeBases) == 0 {
		cfg.TimeBases = []simmachine.TimeBaseKind{simmachine.Counter, simmachine.HWClock}
	}
	if cfg.DurationNs == 0 {
		cfg.DurationNs = 50_000_000
	}
	res := &Fig2SimResult{
		Table: stats.NewTable("accesses", "timebase", "cpus", "Mtx/s", "counter transfers"),
	}
	for _, size := range cfg.Sizes {
		for _, tb := range cfg.TimeBases {
			for _, cpus := range cfg.Threads {
				r, err := simmachine.Run(simmachine.Config{
					CPUs:     cpus,
					TimeBase: tb,
					Accesses: size,
					Duration: cfg.DurationNs,
					Costs:    cfg.Costs,
				})
				if err != nil {
					return nil, err
				}
				p := Fig2SimPoint{
					Size:     size,
					TimeBase: tb.String(),
					Threads:  cpus,
					MTxPerS:  r.TxPerSec / 1e6,
					Result:   r,
				}
				res.Points = append(res.Points, p)
				res.Table.AddRowf(size, p.TimeBase, cpus,
					fmt.Sprintf("%.4f", p.MTxPerS), r.CounterTransfers)
			}
		}
	}
	return res, nil
}
