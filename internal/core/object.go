package core

import (
	"sync/atomic"

	"repro/internal/timebase"
	"repro/internal/val"
)

// Object is a transactional memory object: a cell traversing a sequence of
// immutable versions as update transactions commit (§1.1). Reads are
// invisible (readers leave no trace on the object); writes are visible (a
// writer registers itself in the object's locator, as in DSTM).
//
// The zero value is not usable; create objects with NewObject.
type Object struct {
	loc atomic.Pointer[locator]
}

// locator is the atomically swapped per-object descriptor (the DSTM trick
// the paper relies on in §2.3: "setting the transaction's state atomically
// commits — or discards in case of an abort — all object versions written by
// the transaction"). The object's logical head version is a function of the
// writer's status:
//
//	writer == nil              → cur is the latest committed version
//	writer active/committing   → cur is latest committed, tent is pending
//	writer committed           → tent is logically committed at writer.CT
//	writer aborted             → tent is logically discarded
//
// The two terminal states are settled lazily (by any thread that encounters
// them) into a writer-free locator, so no commit-time pass over the write
// set is needed.
type locator struct {
	writer *Tx
	tent   *version
	cur    *version
}

// version is one committed (or tentative) value of an object. Versions form
// a newest-first chain through prev; the chain is truncated to the runtime's
// MaxVersions on settle.
type version struct {
	// value is the payload: the typed representation with an unboxed
	// numeric lane (val.Value), so int-valued writes never box. It is
	// written only by the owning transaction while active, and read by
	// others only after the owner's status CAS (release) has been observed
	// (acquire), so access is race-free.
	value val.Value

	// validFrom is ⌊v.R⌋: the commit time of the writing transaction. The
	// genesis version uses timebase.NegInf. Tentative versions have it zero
	// until settle stamps them.
	validFrom timebase.Timestamp

	// fixedUB is ⌈v.R⌉ once the version has been superseded: the successor's
	// commit time minus one. It is nil while the version is the most recent
	// one (⌈v.R⌉ = ∞), and is set exactly once, before the superseding
	// locator becomes visible, so a reader that still sees this version as
	// head also sees an unset fixedUB only if the version is truly current.
	fixedUB atomic.Pointer[timebase.Timestamp]

	// prev links to the next older committed version. Atomic because settle
	// truncates the history concurrently with readers walking it.
	prev atomic.Pointer[version]

	// predUB is the inline buffer behind the *superseded predecessor's*
	// fixedUB pointer: the settler that builds this version computes the
	// predecessor's final bound (CT−1) here, so a supersession allocates no
	// separate Timestamp. Written once, by this version's builder, before
	// either CAS in settled can publish it.
	predUB timebase.Timestamp

	// selfLoc is the writer-free locator that publishes this version as the
	// object's head, embedded so settling a committed writer allocates the
	// version node and nothing else. Filled by the builder before the
	// locator CAS; never mutated afterwards.
	selfLoc locator
}

// NewObject creates a transactional object holding an initial value. The
// genesis version is valid since the beginning of time, so transactions on
// any time base can read it regardless of their clock's current value.
func NewObject(initial any) *Object {
	o := &Object{}
	v := &version{value: val.OfAny(initial), validFrom: timebase.NegInf}
	v.selfLoc.cur = v
	o.loc.Store(&v.selfLoc)
	return o
}

// settled returns the object's locator after resolving any terminal writer.
// The returned locator's writer is nil, active, or committing — never
// committed or aborted. Settling is idempotent and safe to race: the new
// head version node is freshly built by each settler and only one CAS wins.
func (o *Object) settled(maxVersions int) *locator {
	for {
		loc := o.loc.Load()
		w := loc.writer
		if w == nil {
			return loc
		}
		switch w.Status() {
		case StatusCommitted:
			ct := w.CT()
			head := &version{value: loc.tent.value, validFrom: ct}
			head.prev.Store(loc.cur)
			// Fix the superseded version's upper bound *before* publishing
			// the new head: a reader must never observe the new locator and
			// then find the old head still claiming to be current. The
			// bound lives in the candidate head's predUB buffer — racing
			// settlers compute the identical value (ct is fixed), and each
			// writes only its own freshly built head, so whichever pointer
			// wins the CAS the published bound is CT−1. (A head that loses
			// the locator CAS but wins this one stays reachable through the
			// fixedUB pointer alone — one stale node per supersession at
			// worst, the price of not allocating a Timestamp per settle.)
			head.predUB = ct.Pred()
			loc.cur.fixedUB.CompareAndSwap(nil, &head.predUB)
			trim(head, maxVersions)
			head.selfLoc.cur = head
			o.loc.CompareAndSwap(loc, &head.selfLoc)
		case StatusAborted:
			o.loc.CompareAndSwap(loc, &locator{cur: loc.cur})
		default:
			return loc
		}
	}
}

// trim cuts the version chain after maxVersions entries. maxVersions is at
// least 1 (the head itself).
func trim(head *version, maxVersions int) {
	v := head
	for i := 1; i < maxVersions; i++ {
		next := v.prev.Load()
		if next == nil {
			return
		}
		v = next
	}
	v.prev.Store(nil)
}

// upperBound returns ⌈v.R⌉ as stored: the fixed bound if the version has
// been superseded, ∞ otherwise.
func (v *version) upperBound() timebase.Timestamp {
	if ub := v.fixedUB.Load(); ub != nil {
		return *ub
	}
	return timebase.Inf
}

// prelimUB computes a conservative estimate of ⌈v.R⌉ according to the
// calling thread's time reference (getPrelimUB, Algorithm 3 lines 19–35).
//
//   - A superseded version's bound is exact and final.
//   - If the object is owned by a writer that has entered the commit phase
//     and fixed its commit time, the current version cannot remain valid
//     past that commit: the bound is CT−1 — except for asTx's own tentative
//     writes, which are deliberately overestimated to CT so the commit-time
//     overlap check passes for self-superseded objects (§2.3).
//   - Otherwise the version is valid at least until t, where t must be a
//     timestamp obtained (from this thread's clock) before the object state
//     was loaded.
//
// A committing writer whose commit time is still unset gets one assigned
// here (with the calling thread's clock). The paper's pseudocode returns t
// in that window, but its §2.4 correctness argument requires that a thread
// never reasons about a committing transaction whose commit time could
// still be chosen in the past — under preemption between the writer's clock
// read and its CT store, returning t would claim validity the superseding
// commit retroactively falsifies. Helping the CT into place first (the
// paper's own helper mechanism) guarantees any later supersession time
// exceeds t.
func prelimUB(o *Object, v *version, t timebase.Timestamp, asTx *Tx, clock timebase.Clock) timebase.Timestamp {
	if ub := v.fixedUB.Load(); ub != nil {
		return *ub
	}
	loc := o.loc.Load()
	if w := loc.writer; w != nil {
		st := w.Status()
		if st == StatusCommitting || st == StatusCommitted {
			if st == StatusCommitting {
				ensureCT(w, clock)
			}
			if ct := w.CT(); !ct.IsZero() {
				if w == asTx {
					return ct
				}
				return ct.Pred()
			}
		}
	}
	return t
}
