package tstm

import (
	"errors"
	"sync"
	"testing"
)

func allRuntimes(t *testing.T) map[string]*Runtime {
	t.Helper()
	return map[string]*Runtime{
		"counter":  MustNew(WithSharedCounter()),
		"tl2":      MustNew(WithTL2Counter()),
		"sharded":  MustNew(WithShardedCounter(8, 0)),
		"ideal":    MustNew(WithIdealClock(8)),
		"extsync":  MustNew(WithExtSyncClocks(8, 1000)),
		"mmtimer":  MustNew(WithMMTimer(8)),
		"1version": MustNew(WithSharedCounter(), WithMaxVersions(1)),
		"noextend": MustNew(WithSharedCounter(), WithoutExtension()),
	}
}

func TestVarGetSet(t *testing.T) {
	for name, rt := range allRuntimes(t) {
		t.Run(name, func(t *testing.T) {
			v := NewVar("hello")
			th := rt.Thread(0)
			if err := th.Atomic(func(tx *Tx) error {
				s, err := v.Get(tx)
				if err != nil {
					return err
				}
				return v.Set(tx, s+" world")
			}); err != nil {
				t.Fatal(err)
			}
			var got string
			if err := th.AtomicReadOnly(func(tx *Tx) error {
				s, err := v.Get(tx)
				got = s
				return err
			}); err != nil {
				t.Fatal(err)
			}
			if got != "hello world" {
				t.Errorf("got %q", got)
			}
		})
	}
}

func TestVarUpdate(t *testing.T) {
	rt := MustNew()
	v := NewVar(10)
	th := rt.Thread(0)
	if err := th.Atomic(func(tx *Tx) error {
		return v.Update(tx, func(x int) int { return x * 3 })
	}); err != nil {
		t.Fatal(err)
	}
	var got int
	if err := th.AtomicReadOnly(func(tx *Tx) error {
		x, err := v.Get(tx)
		got = x
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got != 30 {
		t.Errorf("Update result = %d, want 30", got)
	}
}

func TestTypedStructVar(t *testing.T) {
	type point struct{ X, Y int }
	rt := MustNew(WithIdealClock(2))
	v := NewVar(point{1, 2})
	th := rt.Thread(0)
	if err := th.Atomic(func(tx *Tx) error {
		p, err := v.Get(tx)
		if err != nil {
			return err
		}
		p.X += 10
		return v.Set(tx, p)
	}); err != nil {
		t.Fatal(err)
	}
	if err := th.AtomicReadOnly(func(tx *Tx) error {
		p, err := v.Get(tx)
		if err != nil {
			return err
		}
		if p != (point{11, 2}) {
			t.Errorf("point = %+v", p)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentTransfersAllBases(t *testing.T) {
	for name, rt := range allRuntimes(t) {
		t.Run(name, func(t *testing.T) {
			const accounts, initial, workers, per = 8, 100, 4, 80
			vars := make([]*Var[int], accounts)
			for i := range vars {
				vars[i] = NewVar(initial)
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					th := rt.Thread(id)
					for i := 0; i < per; i++ {
						from := (id*31 + i) % accounts
						to := (from + 1 + i%3) % accounts
						if from == to {
							continue
						}
						if err := th.Atomic(func(tx *Tx) error {
							fb, err := vars[from].Get(tx)
							if err != nil {
								return err
							}
							tb, err := vars[to].Get(tx)
							if err != nil {
								return err
							}
							if err := vars[from].Set(tx, fb-5); err != nil {
								return err
							}
							return vars[to].Set(tx, tb+5)
						}); err != nil {
							t.Errorf("worker %d: %v", id, err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			th := rt.Thread(50)
			sum := 0
			if err := th.AtomicReadOnly(func(tx *Tx) error {
				sum = 0
				for _, v := range vars {
					x, err := v.Get(tx)
					if err != nil {
						return err
					}
					sum += x
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if sum != accounts*initial {
				t.Errorf("total = %d, want %d", sum, accounts*initial)
			}
		})
	}
}

func TestSetInReadOnlyFails(t *testing.T) {
	rt := MustNew()
	v := NewVar(1)
	err := rt.Thread(0).AtomicReadOnly(func(tx *Tx) error {
		return v.Set(tx, 2)
	})
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("got %v, want ErrReadOnly", err)
	}
}

func TestUserErrorPropagates(t *testing.T) {
	rt := MustNew()
	v := NewVar(1)
	boom := errors.New("boom")
	err := rt.Thread(0).Atomic(func(tx *Tx) error {
		if err := v.Set(tx, 99); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	var got int
	if err := rt.Thread(1).AtomicReadOnly(func(tx *Tx) error {
		x, err := v.Get(tx)
		got = x
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("value = %d, want rollback to 1", got)
	}
}

func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"bad manager", []Option{WithContentionManager("nope")}},
		{"zero nodes mmtimer", []Option{WithMMTimer(0)}},
		{"zero shards", []Option{WithShardedCounter(0, 0)}},
		{"zero nodes ideal", []Option{WithIdealClock(0)}},
		{"zero nodes extsync", []Option{WithExtSyncClocks(0, 10)}},
		{"negative offset", []Option{WithExtSyncClocks(2, -1)}},
		{"zero versions", []Option{WithMaxVersions(0)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.opts...); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestContentionManagerOptions(t *testing.T) {
	for _, name := range []string{"aggressive", "suicide", "polite", "karma", "timestamp"} {
		rt, err := New(WithSharedCounter(), WithContentionManager(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		v := NewVar(0)
		if err := rt.Thread(0).Atomic(func(tx *Tx) error { return v.Set(tx, 1) }); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestTimeBaseName(t *testing.T) {
	if got := MustNew(WithSharedCounter()).TimeBaseName(); got != "SharedCounter" {
		t.Errorf("name = %q", got)
	}
	if got := MustNew(WithMMTimer(4)).TimeBaseName(); got != "MMTimer" {
		t.Errorf("name = %q", got)
	}
}

func TestStatsAccumulate(t *testing.T) {
	rt := MustNew()
	v := NewVar(0)
	th := rt.Thread(0)
	for i := 0; i < 10; i++ {
		if err := th.Atomic(func(tx *Tx) error {
			return v.Update(tx, func(x int) int { return x + 1 })
		}); err != nil {
			t.Fatal(err)
		}
	}
	if s := rt.Stats(); s.Commits != 10 {
		t.Errorf("commits = %d, want 10", s.Commits)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad option must panic")
		}
	}()
	MustNew(WithMaxVersions(-3))
}

func TestSnapshotIsolationOption(t *testing.T) {
	rt := MustNew(WithSnapshotIsolation(), WithIdealClock(4))
	if !rt.Unwrap().SnapshotIsolation() {
		t.Fatal("option did not enable snapshot isolation")
	}
	// Read-heavy update transactions commit under concurrent writes.
	vars := make([]*Var[int], 32)
	for i := range vars {
		vars[i] = NewVar(0)
	}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := rt.Thread(id)
			for i := 0; i < 100; i++ {
				if err := th.Atomic(func(tx *Tx) error {
					for _, v := range vars {
						if _, err := v.Get(tx); err != nil {
							return err
						}
					}
					return vars[id].Update(tx, func(n int) int { return n + 1 })
				}); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for id := 0; id < 3; id++ {
		var got int
		if err := rt.Thread(9).AtomicReadOnly(func(tx *Tx) error {
			n, err := vars[id].Get(tx)
			got = n
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if got != 100 {
			t.Errorf("vars[%d] = %d, want 100", id, got)
		}
	}
}
