package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/hwclock"
	"repro/internal/stats"
	"repro/internal/timebase"
)

// SyncErrorsConfig parameterizes the §4.3 experiment: how the advertised
// clock deviation affects abort rates and throughput. The underlying device
// is kept (near-)perfect; only the advertised bound grows, which is exactly
// the effect of a poorly synchronized clock: validity ranges shrink by dev
// at each end and 2·dev gaps open between versions.
type SyncErrorsConfig struct {
	// Deviations are the advertised bounds in ticks (on a 1 GHz device,
	// ticks are nanoseconds). 0 means "use the perfect clock instead".
	Deviations []int64
	// Threads is the worker count (default 8).
	Threads int
	// MaxVersions compares history depths (default [1, 8]: single-version
	// STMs only lose the start of ranges; multi-version STMs lose both ends,
	// §4.3).
	MaxVersions []int
	// Duration per measured point.
	Duration time.Duration
	// Warmup before each measurement.
	Warmup time.Duration
}

// SyncErrorsPoint is one measured point.
type SyncErrorsPoint struct {
	Deviation   int64
	MaxVersions int
	Throughput  float64
	AbortRate   float64
	Snapshot    uint64 // snapshot aborts (the §4.3 failure mode)
	Result      harness.Result
}

// SyncErrorsResult groups all points with a rendered table.
type SyncErrorsResult struct {
	Points []SyncErrorsPoint
	Table  *stats.Table
}

// readWriteMix is a contended workload whose read-only transactions scan a
// window of shared objects while update transactions rewrite them — the
// configuration in which shrunken validity ranges actually bite.
type readWriteMix struct {
	objects int
	scan    int
	cells   []engine.Cell
}

func (m *readWriteMix) Name() string { return fmt.Sprintf("rwmix/%d", m.objects) }

func (m *readWriteMix) Init(eng engine.Engine, workers int) error {
	m.cells = make([]engine.Cell, m.objects)
	for i := range m.cells {
		m.cells[i] = eng.NewCell(0)
	}
	return nil
}

func (m *readWriteMix) Step(eng engine.Engine, th engine.Thread, id int) func() error {
	n := 0
	return func() error {
		n++
		if id%2 == 0 {
			// Updater: rewrite one object.
			c := m.cells[(id*7+n)%len(m.cells)]
			return th.Run(func(tx engine.Txn) error {
				return engine.Update(tx, c, func(v int) int { return v + 1 })
			})
		}
		// Reader: scan a window read-only.
		start := (id*13 + n) % len(m.cells)
		return th.RunReadOnly(func(tx engine.Txn) error {
			for i := 0; i < m.scan; i++ {
				if _, err := tx.Read(m.cells[(start+i)%len(m.cells)]); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

// SyncErrors runs the §4.3 experiment.
func SyncErrors(cfg SyncErrorsConfig) (*SyncErrorsResult, error) {
	if len(cfg.Deviations) == 0 {
		cfg.Deviations = []int64{0, 100, 1_000, 10_000, 100_000, 1_000_000}
	}
	if cfg.Threads == 0 {
		cfg.Threads = 8
	}
	if len(cfg.MaxVersions) == 0 {
		cfg.MaxVersions = []int{1, 8}
	}
	if cfg.Duration == 0 {
		cfg.Duration = 200 * time.Millisecond
	}
	res := &SyncErrorsResult{
		Table: stats.NewTable("dev (ticks)", "versions", "tx/s", "aborts/attempt", "snapshot aborts"),
	}
	for _, mv := range cfg.MaxVersions {
		for _, dev := range cfg.Deviations {
			var tb timebase.TimeBase
			if dev == 0 {
				tb = timebase.NewPerfectClock(hwclock.New(hwclock.IdealConfig(cfg.Threads)))
			} else {
				d := hwclock.New(hwclock.Config{TickHz: 1_000_000_000, Nodes: cfg.Threads, Seed: 1})
				etb, err := timebase.NewExtSyncClockFrom(d, dev)
				if err != nil {
					return nil, err
				}
				tb = etb
			}
			rt, err := core.NewRuntime(core.Config{TimeBase: tb, MaxVersions: mv})
			if err != nil {
				return nil, err
			}
			eng := engine.WrapLSA(tb.Name(), rt)
			w := &readWriteMix{objects: 64, scan: 16}
			r, err := harness.Run(eng, w, harness.Options{
				Workers:  cfg.Threads,
				Duration: cfg.Duration,
				Warmup:   cfg.Warmup,
			})
			if err != nil {
				return nil, err
			}
			p := SyncErrorsPoint{
				Deviation:   dev,
				MaxVersions: mv,
				Throughput:  r.Throughput,
				AbortRate:   r.Stats.AbortRate(),
				Snapshot:    r.Stats.AbortSnapshot,
				Result:      r,
			}
			res.Points = append(res.Points, p)
			res.Table.AddRowf(dev, mv,
				fmt.Sprintf("%.0f", p.Throughput),
				fmt.Sprintf("%.4f", p.AbortRate),
				p.Snapshot)
		}
	}
	return res, nil
}
