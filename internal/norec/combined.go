package norec

// The combined variant: NOrec with flat-combining commits. Plain NOrec
// serializes every update commit on the global sequence lock — one
// compare-and-swap, one write-back, one +2 bump per commit, all on the same
// cache line. CombinedSTM keeps the single lock but amortizes it: a
// committer publishes its validated logs into a padded per-thread slot and
// then either finds its outcome already decided, or wins the sequence lock
// and becomes the combiner — applying every pending commit in the slot
// array under ONE lock hold and ONE clock bump, and posting each batched
// committer's outcome into its slot.
//
// Exactness of batched validation: the combiner re-validates each request's
// whole value log against current memory immediately before applying its
// writes, in slot order. Memory only changes under the held lock by the
// combiner's own earlier write-backs, so a request whose read set was
// invalidated by an earlier member of the same batch fails this validation
// and is aborted — batching never silently applies a stale commit — while a
// request whose reads still match (including NOrec's silent-restore
// tolerance) commits exactly as if it had held the lock itself.
//
// Synchronization: the owner's plain log writes are published to the
// combiner by the slot's req pointer store (owner: logs, then req.Store;
// combiner: req.Load, then logs), and the combiner's outcome — plus any
// snapshot adoption stillValid performed inside the logs — travels back
// through the outcome store the owner spins on. The owner never touches its
// Tx between those two atomics, so recycling stays single-owner.
//
// Within the paper's taxonomy this is the batching pole of the
// scalable-time-base design space: the shared clock still exists, but its
// cost is paid once per batch instead of once per commit.

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/abort"
)

// Slot outcome states. The zero value is idle (no request ever armed); the
// owner arms the slot with slotPending before publishing the request, and
// only the combiner moves it to a decided state.
const (
	slotPending int32 = 1 + iota
	slotCommitted
	slotAborted
)

// cslot is one thread's combining slot, padded so spinning on one slot
// never bounces a neighbour's line.
type cslot struct {
	req     atomic.Pointer[CTx]
	outcome atomic.Int32
	_       [52]byte
}

// CombinedSTM is a NOrec universe with flat-combining commits. The embedded
// STM supplies the sequence lock and the execution-phase read protocol.
type CombinedSTM struct {
	STM
	// Batch telemetry: lock acquisitions that applied at least one commit,
	// and the commits they applied. BatchedCommits/Batches is the mean
	// combining factor — how many clock bumps the batching saved.
	batches        atomic.Uint64
	batchedCommits atomic.Uint64

	mu    sync.Mutex
	slots atomic.Pointer[[]*cslot]
}

// NewCombined creates a combined universe with the sequence lock at zero.
func NewCombined() *CombinedSTM { return &CombinedSTM{} }

// BatchStats returns the number of combining batches applied and the total
// commits they contained. Call while no transactions run.
func (s *CombinedSTM) BatchStats() (batches, commits uint64) {
	return s.batches.Load(), s.batchedCommits.Load()
}

// addSlot registers a new combining slot (copy-on-write so the combiner
// reads the slice without a lock). One allocation per Thread, none per
// transaction.
func (s *CombinedSTM) addSlot() *cslot {
	sl := &cslot{}
	s.mu.Lock()
	var next []*cslot
	if old := s.slots.Load(); old != nil {
		next = append(append(make([]*cslot, 0, len(*old)+1), *old...), sl)
	} else {
		next = []*cslot{sl}
	}
	s.slots.Store(&next)
	s.mu.Unlock()
	return sl
}

// CTx is one transaction attempt against a combined universe. The embedded
// Tx provides the whole execution phase — reads, incremental validation and
// the buffered write set run the plain NOrec protocol against the embedded
// STM's sequence lock — only commit is replaced by the combining protocol.
type CTx struct {
	Tx
	cstm *CombinedSTM
}

// commit publishes the attempt into slot and waits for a combiner (possibly
// this thread) to decide it.
func (tx *CTx) commit(slot *cslot) error {
	if len(tx.writes) == 0 {
		// Incremental validation already proved the read set consistent at
		// tx.snapshot and nothing was written.
		return nil
	}
	stm := tx.cstm
	slot.outcome.Store(slotPending)
	slot.req.Store(tx)
	for i := 0; ; i++ {
		if out := slot.outcome.Load(); out != slotPending {
			if out == slotCommitted {
				return nil
			}
			// The combiner's pre-apply validation failed: a commit-time
			// validation abort, same class as losing the plain CAS race.
			return errAbortValidation
		}
		// Not decided yet: try to become the combiner. A failed CAS means
		// another combiner holds the lock and will visit our slot if it
		// loaded the request in time — otherwise we get the lock next.
		if v := stm.seq.Load(); v&1 == 0 && stm.seq.CompareAndSwap(v, v+1) {
			stm.combine(v)
			if slot.outcome.Load() == slotCommitted {
				return nil
			}
			return errAbortValidation
		}
		if i > 32 {
			runtime.Gosched()
		}
	}
}

// combine runs with the sequence lock held (odd, acquired from even v): it
// scans every slot, validates and applies each pending request in slot
// order, posts outcomes, and releases the lock with a single +2 bump for
// the whole batch — or restores v exactly when every request failed
// validation, since no memory was written and concurrent value logs
// snapshotted at v must stay valid.
func (stm *CombinedSTM) combine(v int64) {
	slots := *stm.slots.Load()
	applied := uint64(0)
	for _, s := range slots {
		req := s.req.Load()
		if req == nil {
			continue
		}
		ok := true
		for i := range req.reads {
			// Current memory includes the write-backs of earlier batch
			// members: a request they invalidated fails here and aborts
			// instead of being silently applied.
			if !stillValid(&req.reads[i]) {
				ok = false
				break
			}
		}
		if ok {
			for i := range req.writes {
				w := &req.writes[i]
				w.obj.cell.Store(w.v)
			}
			applied++
		}
		// Clear the request before posting the outcome: the owner is free to
		// recycle the Tx the moment the outcome lands.
		s.req.Store(nil)
		if ok {
			s.outcome.Store(slotCommitted)
		} else {
			s.outcome.Store(slotAborted)
		}
	}
	if applied > 0 {
		stm.batches.Add(1)
		stm.batchedCommits.Add(applied)
		stm.seq.Store(v + 2)
	} else {
		stm.seq.Store(v)
	}
}

// CThread is a worker context for the combined universe. It owns its
// combining slot and the one CTx it recycles across attempts — single
// goroutine only.
type CThread struct {
	stm          *CombinedSTM
	slot         *cslot
	tx           CTx
	boxedCommits uint64
	aborts       abort.Counts
}

// Thread creates a worker context (and its combining slot).
func (s *CombinedSTM) Thread(id int) *CThread {
	t := &CThread{stm: s, slot: s.addSlot()}
	t.tx.cstm = s
	return t
}

// BoxedCommits returns how many of this thread's commits wrote at least one
// escape-hatch (boxed) payload.
func (t *CThread) BoxedCommits() uint64 { return t.boxedCommits }

// AbortCounts returns this thread's aborts classified by reason.
func (t *CThread) AbortCounts() abort.Counts { return t.aborts }

// Run executes fn transactionally, retrying on aborts.
func (t *CThread) Run(fn func(*CTx) error) error { return t.run(false, fn) }

// RunReadOnly executes fn as a read-only transaction (writes rejected).
func (t *CThread) RunReadOnly(fn func(*CTx) error) error { return t.run(true, fn) }

func (t *CThread) run(readOnly bool, fn func(*CTx) error) error {
	tx := &t.tx
	for {
		tx.Tx.reset(&t.stm.STM, readOnly)
		err := fn(tx)
		if err == nil {
			err = tx.commit(t.slot)
		}
		if err == nil {
			if tx.boxed {
				t.boxedCommits++
			}
			return nil
		}
		if !errors.Is(err, ErrAborted) {
			return err
		}
		t.aborts.Observe(err)
	}
}
