package durable

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/val"
)

// TestValueCodecRoundTrip: every WAL-serializable payload round-trips with
// its exact dynamic type; unsupported payloads are rejected at encode time.
func TestValueCodecRoundTrip(t *testing.T) {
	vals := []val.Value{
		val.OfInt(42), val.OfInt(-7), val.OfInt(0),
		val.OfInt64(1 << 40), val.OfInt64(-9),
		val.OfAny(nil), val.OfAny(true), val.OfAny(false),
		val.OfAny("hello"), val.OfAny(""),
		val.OfAny(3.25), val.OfAny([]byte{1, 2, 3}), val.OfAny([]byte{}),
	}
	var b []byte
	for _, v := range vals {
		var err error
		if b, err = appendValue(b, v); err != nil {
			t.Fatalf("appendValue(%v): %v", v.Load(), err)
		}
	}
	rest := b
	for _, want := range vals {
		var got val.Value
		var err error
		got, rest, err = decodeValue(rest)
		if err != nil {
			t.Fatalf("decodeValue: %v", err)
		}
		switch w := want.Load().(type) {
		case []byte:
			g, ok := got.Load().([]byte)
			if !ok || string(g) != string(w) {
				t.Errorf("round trip %v → %v", w, got.Load())
			}
		default:
			if got.Load() != want.Load() {
				t.Errorf("round trip %#v → %#v", want.Load(), got.Load())
			}
		}
	}
	if len(rest) != 0 {
		t.Errorf("%d trailing bytes after decode", len(rest))
	}

	type oddball struct{ n int }
	if _, err := appendValue(nil, val.OfAny(oddball{1})); !errors.Is(err, ErrUnsupportedPayload) {
		t.Errorf("struct payload: err = %v, want ErrUnsupportedPayload", err)
	}
	if EncodableValue(val.OfAny(oddball{1})) {
		t.Error("EncodableValue(struct) = true")
	}
	if !EncodableValue(val.OfInt(1)) || !EncodableValue(val.OfAny("s")) {
		t.Error("EncodableValue rejected a serializable payload")
	}
}

// newTestEngine wraps a fresh base engine over dir with fsync=always (the
// crisp policy for crash tests: acked ⇔ synced) and compaction disabled
// unless opt overrides.
func newTestEngine(t *testing.T, base, dir string, opt Options) *Engine {
	t.Helper()
	if opt.Fsync == "" {
		opt.Fsync = FsyncAlways
	}
	if opt.SnapshotBytes == 0 {
		opt.SnapshotBytes = -1
	}
	opt.Dir = dir
	e, err := Wrap(engine.MustNew(base, engine.Options{}), opt)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// bankCells creates the standard three-cell fixture: two 1000-unit accounts
// and a commit counter.
func bankCells(e *Engine) (a, b, c engine.Cell) {
	return e.NewCell(1000), e.NewCell(1000), e.NewCell(0)
}

// transfer runs one conserved-sum step: a−1, b+1, counter=i.
func transfer(th engine.Thread, a, b, c engine.Cell, i int) error {
	return th.Run(func(tx engine.Txn) error {
		if err := engine.Update(tx, a, func(n int) int { return n - 1 }); err != nil {
			return err
		}
		if err := engine.Update(tx, b, func(n int) int { return n + 1 }); err != nil {
			return err
		}
		return engine.Set(tx, c, i)
	})
}

// readState recovers (a, b, counter) from a WAL directory by scanning it
// directly — no engine involved.
func readState(t *testing.T, dir string) (a, b, c int, rec *recovery) {
	t.Helper()
	rec, err := recoverDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	get := func(id uint64) int {
		v, ok := rec.values[id]
		if !ok {
			t.Fatalf("cell %d missing from recovery", id)
		}
		n, ok := v.Load().(int)
		if !ok {
			t.Fatalf("cell %d holds %T, want int", id, v.Load())
		}
		return n
	}
	return get(0), get(1), get(2), rec
}

// TestTornFinalRecordEveryTruncationPoint drives the after-partial-record
// crashpoint through every possible cut of the final frame: recovery must
// truncate the torn tail (reporting its size) and restore exactly the
// acknowledged prefix, for every cut.
func TestTornFinalRecordEveryTruncationPoint(t *testing.T) {
	// Probe the frame length once: a cut far past the end clamps to len−1.
	frameLen := func() int {
		dir := t.TempDir()
		crash := &Crashpoints{AfterPartialRecord: true, PartialBytes: 1 << 20}
		e := newTestEngine(t, "norec", dir, Options{Crash: crash})
		th := e.Thread(0)
		a, b, c := bankCells(e)
		if err := transfer(th, a, b, c, 1); !errors.Is(err, ErrCrashed) {
			t.Fatalf("crashpoint transfer: err = %v, want ErrCrashed", err)
		}
		rec, err := recoverDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		return int(rec.tornBytes) + 1
	}()
	if frameLen < frameHeaderLen+3 {
		t.Fatalf("implausible probed frame length %d", frameLen)
	}

	cuts := make([]int, 0, frameLen)
	for cut := 0; cut < frameLen; cut++ {
		cuts = append(cuts, cut)
	}
	if testing.Short() {
		// Keep the boundary cuts (empty tail, torn header, torn payload,
		// one-byte-short) and thin the middle.
		cuts = []int{0, 1, frameHeaderLen - 1, frameHeaderLen, frameHeaderLen + 1, frameLen / 2, frameLen - 2, frameLen - 1}
	}
	for _, cut := range cuts {
		dir := t.TempDir()
		crash := &Crashpoints{}
		e := newTestEngine(t, "norec", dir, Options{Crash: crash})
		th := e.Thread(0)
		a, b, c := bankCells(e)
		for i := 1; i <= 2; i++ {
			if err := transfer(th, a, b, c, i); err != nil {
				t.Fatal(err)
			}
		}
		crash.mu.Lock()
		crash.AfterPartialRecord = true
		crash.PartialBytes = cut
		crash.mu.Unlock()
		if err := transfer(th, a, b, c, 3); !errors.Is(err, ErrCrashed) {
			t.Fatalf("cut %d: err = %v, want ErrCrashed", cut, err)
		}
		// The wedged engine refuses everything from here.
		if err := th.Run(func(tx engine.Txn) error { return nil }); !errors.Is(err, ErrCrashed) {
			t.Fatalf("cut %d: post-crash Run err = %v, want ErrCrashed", cut, err)
		}

		av, bv, cv, rec := readState(t, dir)
		if av+bv != 2000 {
			t.Errorf("cut %d: sum %d+%d, want 2000", cut, av, bv)
		}
		if cv != 2 || rec.commits != 2 || rec.lastSeq != 2 {
			t.Errorf("cut %d: recovered counter=%d commits=%d lastSeq=%d, want 2/2/2", cut, cv, rec.commits, rec.lastSeq)
		}
		if rec.tornBytes != int64(cut) {
			t.Errorf("cut %d: tornBytes = %d, want %d", cut, rec.tornBytes, cut)
		}
		// Recovery truncated the torn tail: a second recovery sees a clean
		// log with nothing more to truncate.
		if _, _, _, rec2 := readState(t, dir); rec2.tornBytes != 0 || rec2.commits != 2 {
			t.Errorf("cut %d: second recovery tornBytes=%d commits=%d, want 0/2", cut, rec2.tornBytes, rec2.commits)
		}
	}
}

// TestAfterRecordBeforeSync: the full record reached the OS before the
// crash, so in-process recovery sees it — recovering an unacknowledged
// commit is legal (more than acked, never less).
func TestAfterRecordBeforeSync(t *testing.T) {
	dir := t.TempDir()
	crash := &Crashpoints{}
	e := newTestEngine(t, "norec", dir, Options{Crash: crash})
	th := e.Thread(0)
	a, b, c := bankCells(e)
	for i := 1; i <= 2; i++ {
		if err := transfer(th, a, b, c, i); err != nil {
			t.Fatal(err)
		}
	}
	crash.mu.Lock()
	crash.AfterRecordBeforeSync = true
	crash.mu.Unlock()
	if err := transfer(th, a, b, c, 3); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	av, bv, cv, rec := readState(t, dir)
	if av+bv != 2000 {
		t.Errorf("sum %d+%d, want 2000", av, bv)
	}
	if cv != 3 || rec.commits != 3 || rec.tornBytes != 0 {
		t.Errorf("counter=%d commits=%d torn=%d, want 3/3/0", cv, rec.commits, rec.tornBytes)
	}
}

// TestCRCCorruptionMidLog: a corrupt frame in a non-final segment is hard
// corruption — recovery stops at the bad frame and reports it instead of
// guessing past it.
func TestCRCCorruptionMidLog(t *testing.T) {
	dir := t.TempDir()
	// SegmentBytes = 1: every commit rotates, so each record lands in its
	// own segment and a trailing empty segment is always active.
	e := newTestEngine(t, "norec", dir, Options{SegmentBytes: 1})
	th := e.Thread(0)
	a, b, c := bankCells(e)
	for i := 1; i <= 4; i++ {
		if err := transfer(th, a, b, c, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.WALClose(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("want ≥ 3 segments, got %d", len(segs))
	}
	// Flip one payload byte in the second segment (mid-log).
	corrupt(t, segs[1].path, int64(len(segmentMagic)+frameHeaderLen+2))
	_, err = recoverDir(dir)
	if err == nil || !strings.Contains(err.Error(), "mid-log") {
		t.Fatalf("recoverDir = %v, want mid-log corruption error", err)
	}
}

// TestCRCCorruptionFinalSegment: a corrupt frame in the final segment is
// treated as a torn tail — truncated and reported, never refused.
func TestCRCCorruptionFinalSegment(t *testing.T) {
	dir := t.TempDir()
	e := newTestEngine(t, "norec", dir, Options{})
	th := e.Thread(0)
	a, b, c := bankCells(e)
	for i := 1; i <= 4; i++ {
		if err := transfer(th, a, b, c, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.WALClose(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %d", len(segs))
	}
	st, err := os.Stat(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte inside the final frame's payload. Frames are equal
	// length here (identical shape), so the last frame starts at
	// size − (size − magic)/4.
	frameLen := (st.Size() - int64(len(segmentMagic))) / 4
	corrupt(t, segs[0].path, st.Size()-frameLen+frameHeaderLen+1)

	av, bv, cv, rec := readState(t, dir)
	if av+bv != 2000 || cv != 3 {
		t.Errorf("recovered a=%d b=%d counter=%d, want sum 2000 counter 3", av, bv, cv)
	}
	if rec.commits != 3 || rec.tornBytes != frameLen {
		t.Errorf("commits=%d tornBytes=%d, want 3/%d", rec.commits, rec.tornBytes, frameLen)
	}
}

func corrupt(t *testing.T, path string, offset int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var one [1]byte
	if _, err := f.ReadAt(one[:], offset); err != nil {
		t.Fatal(err)
	}
	one[0] ^= 0xff
	if _, err := f.WriteAt(one[:], offset); err != nil {
		t.Fatal(err)
	}
}

// TestEmptyLogBoot: an empty (or missing) directory recovers to the empty
// state and the engine is immediately usable.
func TestEmptyLogBoot(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "does", "not", "exist", "yet")
	e := newTestEngine(t, "norec", dir, Options{})
	if info := e.DurabilityInfo(); info.RecoveredCommits != 0 || info.RecoveredSeq != 0 || info.SnapshotSeq != 0 {
		t.Errorf("empty boot info = %+v, want zeroes", info)
	}
	th := e.Thread(0)
	a, b, c := bankCells(e)
	if err := transfer(th, a, b, c, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.WALClose(); err != nil {
		t.Fatal(err)
	}
	if _, _, cv, _ := readState(t, dir); cv != 1 {
		t.Errorf("counter = %d, want 1", cv)
	}
}

// TestSnapshotOnlyBoot: with every segment gone, boot restores the full
// state from the snapshot alone, reporting zero replayed commits, and the
// engine keeps committing from the watermark.
func TestSnapshotOnlyBoot(t *testing.T) {
	dir := t.TempDir()
	e := newTestEngine(t, "norec", dir, Options{})
	th := e.Thread(0)
	a, b, c := bankCells(e)
	for i := 1; i <= 5; i++ {
		if err := transfer(th, a, b, c, i); err != nil {
			t.Fatal(err)
		}
	}
	e.compact() // deterministic synchronous snapshot at watermark 5
	if err := e.WALClose(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if err := os.Remove(s.path); err != nil {
			t.Fatal(err)
		}
	}

	av, bv, cv, rec := readState(t, dir)
	if av != 995 || bv != 1005 || cv != 5 {
		t.Errorf("snapshot state = %d/%d/%d, want 995/1005/5", av, bv, cv)
	}
	if rec.commits != 0 || rec.snapSeq != 5 || rec.lastSeq != 5 {
		t.Errorf("commits=%d snapSeq=%d lastSeq=%d, want 0/5/5", rec.commits, rec.snapSeq, rec.lastSeq)
	}

	// And a real boot on top continues the sequence.
	e2 := newTestEngine(t, "norec", dir, Options{})
	if info := e2.DurabilityInfo(); info.SnapshotSeq != 5 || info.RecoveredCommits != 0 {
		t.Errorf("boot info = %+v, want snapshot_seq 5, 0 replayed", info)
	}
	th2 := e2.Thread(0)
	a2, b2, c2 := bankCells(e2)
	if err := transfer(th2, a2, b2, c2, 6); err != nil {
		t.Fatal(err)
	}
	if err := e2.WALClose(); err != nil {
		t.Fatal(err)
	}
	if _, _, cv, rec := readState(t, dir); cv != 6 || rec.lastSeq != 6 {
		t.Errorf("after continue: counter=%d lastSeq=%d, want 6/6", cv, rec.lastSeq)
	}
}

// TestSnapshotCompactionTruncatesSegments: compaction deletes every segment
// the watermark covers, and snapshot-then-tail recovery replays only the
// records above the watermark.
func TestSnapshotCompactionTruncatesSegments(t *testing.T) {
	dir := t.TempDir()
	e := newTestEngine(t, "norec", dir, Options{SegmentBytes: 1})
	th := e.Thread(0)
	a, b, c := bankCells(e)
	for i := 1; i <= 4; i++ {
		if err := transfer(th, a, b, c, i); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := listSegments(dir)
	e.compact()
	after, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(before) {
		t.Errorf("compaction kept %d of %d segments", len(after), len(before))
	}
	// Commits continue into the tail; recovery folds snapshot + tail.
	for i := 5; i <= 6; i++ {
		if err := transfer(th, a, b, c, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.WALClose(); err != nil {
		t.Fatal(err)
	}
	av, bv, cv, rec := readState(t, dir)
	if av+bv != 2000 || cv != 6 || rec.snapSeq != 4 || rec.lastSeq != 6 || rec.commits != 2 {
		t.Errorf("got a=%d b=%d c=%d snap=%d last=%d commits=%d, want sum 2000, c 6, snap 4, last 6, commits 2",
			av, bv, cv, rec.snapSeq, rec.lastSeq, rec.commits)
	}
}

// TestSnapshotRenameCrashpoints: a compaction interrupted before the rename
// leaves the old state intact (tmp ignored and cleaned); interrupted after
// the rename but before truncation leaves stale segments whose records
// recovery must skip, not re-apply.
func TestSnapshotRenameCrashpoints(t *testing.T) {
	for _, point := range []string{CrashMidSnapshotRename, CrashAfterSnapshotRename} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			crash := &Crashpoints{}
			e := newTestEngine(t, "norec", dir, Options{Crash: crash, SegmentBytes: 1})
			th := e.Thread(0)
			a, b, c := bankCells(e)
			for i := 1; i <= 4; i++ {
				if err := transfer(th, a, b, c, i); err != nil {
					t.Fatal(err)
				}
			}
			crash.mu.Lock()
			switch point {
			case CrashMidSnapshotRename:
				crash.MidSnapshotRename = true
			case CrashAfterSnapshotRename:
				crash.AfterSnapshotRename = true
			}
			crash.mu.Unlock()
			e.compact()
			if crash.Fired() != point {
				t.Fatalf("crashpoint %s did not fire", point)
			}
			if err := th.Run(func(tx engine.Txn) error { return nil }); !errors.Is(err, ErrCrashed) {
				t.Fatalf("post-crash Run err = %v, want ErrCrashed", err)
			}

			av, bv, cv, rec := readState(t, dir)
			if av+bv != 2000 || cv != 4 || rec.lastSeq != 4 {
				t.Errorf("recovered a=%d b=%d c=%d lastSeq=%d, want sum 2000, c 4, last 4", av, bv, cv, rec.lastSeq)
			}
			switch point {
			case CrashMidSnapshotRename:
				if rec.snapSeq != 0 || rec.commits != 4 {
					t.Errorf("snapSeq=%d commits=%d, want 0/4 (snapshot never installed)", rec.snapSeq, rec.commits)
				}
				if _, err := os.Stat(filepath.Join(dir, snapshotTmp)); !errors.Is(err, os.ErrNotExist) {
					t.Errorf("leftover snapshot.tmp not cleaned: %v", err)
				}
			case CrashAfterSnapshotRename:
				// Snapshot live, stale segments still on disk: their
				// records are ≤ the watermark and must be skipped, not
				// re-applied (re-applying absolute values would regress
				// nothing here, but double-counting commits would show).
				if rec.snapSeq != 4 || rec.commits != 0 {
					t.Errorf("snapSeq=%d commits=%d, want 4/0 (stale segments skipped)", rec.snapSeq, rec.commits)
				}
			}
		})
	}
}

// TestSequenceGapIsCorruption: a log whose dense seq prefix is broken (a
// record deleted mid-stream) must be refused.
func TestSequenceGapIsCorruption(t *testing.T) {
	dir := t.TempDir()
	e := newTestEngine(t, "norec", dir, Options{SegmentBytes: 1})
	th := e.Thread(0)
	a, b, c := bankCells(e)
	for i := 1; i <= 3; i++ {
		if err := transfer(th, a, b, c, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.WALClose(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Remove the middle record's segment entirely.
	if err := os.Remove(segs[1].path); err != nil {
		t.Fatal(err)
	}
	if _, err := recoverDir(dir); err == nil || !strings.Contains(err.Error(), "sequence gap") {
		t.Fatalf("recoverDir = %v, want sequence-gap error", err)
	}
}

// TestUnsupportedPayloadRejectedAtWrite: a non-serializable payload fails
// the write before anything commits; the transaction aborts cleanly and the
// engine (and its log) remain fully usable.
func TestUnsupportedPayloadRejectedAtWrite(t *testing.T) {
	dir := t.TempDir()
	e := newTestEngine(t, "norec", dir, Options{})
	th := e.Thread(0)
	a, b, c := bankCells(e)
	type blob struct{ x int }
	err := th.Run(func(tx engine.Txn) error {
		if err := engine.Set(tx, a, 5); err != nil {
			return err
		}
		return tx.Write(b, blob{9})
	})
	if !errors.Is(err, ErrUnsupportedPayload) {
		t.Fatalf("err = %v, want ErrUnsupportedPayload", err)
	}
	if err := transfer(th, a, b, c, 1); err != nil {
		t.Fatalf("engine unusable after rejected payload: %v", err)
	}
	if err := e.WALClose(); err != nil {
		t.Fatal(err)
	}
	av, _, _, rec := readState(t, dir)
	if av != 999 || rec.commits != 1 {
		t.Errorf("a=%d commits=%d, want 999/1 (aborted write never journaled)", av, rec.commits)
	}
}

// TestWALCloseSemantics: close is idempotent, updates fail afterwards,
// reads keep working.
func TestWALCloseSemantics(t *testing.T) {
	dir := t.TempDir()
	e := newTestEngine(t, "norec", dir, Options{})
	th := e.Thread(0)
	a, b, c := bankCells(e)
	if err := transfer(th, a, b, c, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.WALClose(); err != nil {
		t.Fatal(err)
	}
	if err := e.WALClose(); err != nil {
		t.Errorf("second WALClose: %v", err)
	}
	var got int
	if err := th.RunReadOnly(func(tx engine.Txn) error {
		var err error
		got, err = engine.Get[int](tx, a)
		return err
	}); err != nil || got != 999 {
		t.Errorf("post-close read = %d, %v; want 999, nil", got, err)
	}
	if err := transfer(th, a, b, c, 2); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close update err = %v, want ErrClosed", err)
	}
}
