// Clocksync: the paper's §3.2 pipeline end to end, against deliberately
// out-of-sync clocks:
//
//  1. simulate a multi-node clock device whose node registers are offset
//     from each other (no hardware synchronization),
//  2. measure the offsets over shared memory, with error bounds, as the
//     authors did for Figure 1,
//  3. correct the clocks in software and advertise the residual deviation,
//  4. run the STM on the corrected clocks and verify transactional
//     consistency under concurrency.
//
// This is the "externally synchronized clocks" configuration: the time
// base is imprecise, and the timestamp comparators mask the advertised
// deviation so transactions never trust an ordering the clocks cannot
// guarantee.
//
//	go run ./examples/clocksync
//	go run ./examples/clocksync -offset 100000     # worse clocks
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"

	"repro/internal/clocksync"
	"repro/internal/core"
	"repro/internal/hwclock"
	"repro/internal/timebase"
)

func main() {
	nodes := flag.Int("nodes", 8, "clock registers / workers")
	offset := flag.Int64("offset", 20000, "max injected per-node offset (ticks = ns)")
	rounds := flag.Int("rounds", 5, "synchronization rounds")
	flag.Parse()

	// 1. An unsynchronized device: every node's register is off by up to
	// ±offset ticks from true device time.
	dev := hwclock.New(hwclock.Config{
		TickHz:         1_000_000_000,
		Nodes:          *nodes,
		MaxOffsetTicks: *offset,
		Seed:           7,
	})

	// 2. Measure the offsets the way Figure 1 did.
	res, err := clocksync.Measure(clocksync.Config{
		Device: dev, Rounds: *rounds, SamplesPerNode: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured %d nodes against the reference:\n", len(res.Final))
	for _, est := range res.Final {
		truth := dev.TrueOffset(est.Node) - dev.TrueOffset(0)
		fmt.Printf("  node %d: estimated offset %7d ticks (true %7d) ± %d\n",
			est.Node, est.Offset, truth, est.Error)
	}

	// 3. Correct in software; the residual bound is what the STM must mask.
	cor, err := clocksync.NewCorrected(dev, res.Final)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("software-corrected clocks, residual deviation bound: %d ticks\n", cor.Bound())
	fmt.Printf("raw device disagreement was up to %d ticks\n\n", 2**offset)

	// 4. Run the STM on the corrected, imprecise clocks.
	tb, err := timebase.NewExtSyncClockFrom(cor, cor.Bound())
	if err != nil {
		log.Fatal(err)
	}
	rt := core.MustRuntime(core.Config{TimeBase: tb})

	const accounts, initial, per = 16, 1000, 3000
	objs := make([]*core.Object, accounts)
	for i := range objs {
		objs[i] = core.NewObject(initial)
	}
	var wg sync.WaitGroup
	for w := 0; w < *nodes; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := rt.Thread(id)
			for i := 0; i < per; i++ {
				from, to := (id+i)%accounts, (id*5+i*3+1)%accounts
				if from == to {
					to = (to + 1) % accounts
				}
				if err := th.Run(func(tx *core.Tx) error {
					fv, err := tx.Read(objs[from])
					if err != nil {
						return err
					}
					tv, err := tx.Read(objs[to])
					if err != nil {
						return err
					}
					if err := tx.Write(objs[from], fv.(int)-1); err != nil {
						return err
					}
					return tx.Write(objs[to], tv.(int)+1)
				}); err != nil {
					log.Fatalf("worker %d: %v", id, err)
				}
			}
		}(w)
	}
	wg.Wait()

	total := 0
	if err := rt.Thread(*nodes).RunReadOnly(func(tx *core.Tx) error {
		total = 0
		for _, o := range objs {
			v, err := tx.Read(o)
			if err != nil {
				return err
			}
			total += v.(int)
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	s := rt.Stats()
	fmt.Printf("STM on corrected clocks (%s):\n", tb.Name())
	fmt.Printf("  %d transfers committed, total %d (expected %d)\n",
		s.Commits, total, accounts*initial)
	fmt.Printf("  aborts/attempt %.4f (snapshot %d, validation %d)\n",
		s.AbortRate(), s.AbortSnapshot, s.AbortValidation)
	if total != accounts*initial {
		log.Fatal("INVARIANT VIOLATED")
	}
	fmt.Println("  invariant held ✓")
}
