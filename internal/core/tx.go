package core

import (
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/timebase"
	"repro/internal/val"
)

// Tx is one attempt of a transaction executing the Real-Time Lazy Snapshot
// Algorithm (LSA-RT, Algorithm 2). A Tx is bound to the Thread that created
// it and must only be used from that thread's goroutine; other threads
// interact with it exclusively through its atomic status, commit time, and —
// once it has left the active state — its frozen access set.
//
// The transaction incrementally constructs a consistent snapshot: the
// validity range [lower, upper] is the intersection of the validity ranges
// of all object versions accessed so far, and every access re-checks that
// the intersection is non-empty. Reads are invisible; writes register the
// transaction in the object's locator.
type Tx struct {
	th       *Thread
	rt       *Runtime
	id       uint64
	attempt  int
	readOnly bool

	// start is ⌊T.R⌋ at begin: the transaction cannot execute in the past.
	start timebase.Timestamp
	// lower, upper are the current bounds of T.R. Owner-only.
	lower, upper timebase.Timestamp
	// entries is T.O, the set of accessed (object, version) pairs. Appended
	// only while active; frozen (and readable by helpers) once the status
	// CAS to committing is observed.
	entries []entry
	// index maps objects to their entry once the access set outgrows the
	// linear-scan fast path (see lookup). nil for small transactions; when
	// non-nil it is the Thread's reusable map. Owner-only; never examined
	// by helpers.
	index map[*Object]int
	// update records whether the transaction wrote anything.
	update bool
	// boxed records whether any write took the escape hatch (a non-numeric
	// payload) — the per-commit boxing telemetry behind Stats.BoxedCommits.
	boxed bool
	// closed marks that extension is pointless: some version in the read
	// set has been superseded, so the upper bound can never grow again
	// (the paper's "closed" optimization, §2.2).
	closed bool
	// cause records why the owner aborted the transaction; external aborts
	// leave it CauseNone and are classified by the runner.
	cause AbortCause

	// ops counts opened objects; read by contention managers.
	ops atomic.Int32
	// status is the transaction state machine; all transitions are CAS.
	status atomic.Int32
	// ct is T.CT, the commit time. CASed from nil exactly once, by the
	// owner or by any helper (Algorithm 2 line 42).
	ct atomic.Pointer[timebase.Timestamp]

	// ctClaim elects the single thread allowed to publish ctBuf as the
	// commit time. The winner fills ctBuf and CASes its address into ct, so
	// the common (uncontended) commit fixes its timestamp without
	// allocating; losers fall back to the classic allocate-and-CAS, which
	// keeps ensureCT lock-free — nobody ever waits for the claim winner.
	ctClaim atomic.Bool
	// ctBuf is the inline commit-timestamp buffer behind ct. Written only
	// by the ctClaim winner, before the ct CAS publishes it.
	ctBuf timebase.Timestamp

	// inline is the initial backing array of entries: the access set of a
	// small transaction lives inside the Tx, so the whole attempt costs one
	// allocation. Safe precisely because the Tx is per-attempt — helpers
	// may validate this frozen array long after the owner moved on to a new
	// attempt (and a new Tx), which is why thread.go never recycles
	// attempts (see newTx).
	inline [smallAccessSet]entry
	// wnext/wslots are the inline tentative version + locator pairs handed
	// out by newWriteSlot: the first smallWriteSlots acquisitions of an
	// attempt publish locators that live inside the Tx instead of two heap
	// nodes per write. Like inline, this is sound only because the Tx is
	// never reused.
	wnext  int
	wslots [smallWriteSlots]wslot
}

type entry struct {
	obj     *Object
	ver     *version
	written bool
}

// wslot is one inline write acquisition: the tentative version and the
// locator that registers it. Grouped so overflow slots (and the Thread's
// recycled spare) stay a single allocation.
type wslot struct {
	ver version
	loc locator
}

// Status returns the transaction's current state.
func (tx *Tx) Status() Status { return Status(tx.status.Load()) }

// CT returns the commit time, or the zero timestamp if none has been fixed.
func (tx *Tx) CT() timebase.Timestamp {
	if p := tx.ct.Load(); p != nil {
		return *p
	}
	return timebase.Zero
}

// ID implements TxInfo.
func (tx *Tx) ID() uint64 { return tx.id }

// Start implements TxInfo.
func (tx *Tx) Start() timebase.Timestamp { return tx.start }

// Ops implements TxInfo.
func (tx *Tx) Ops() int { return int(tx.ops.Load()) }

// Attempt implements TxInfo.
func (tx *Tx) Attempt() int { return tx.attempt }

// ReadOnly reports whether the transaction was started with RunReadOnly.
func (tx *Tx) ReadOnly() bool { return tx.readOnly }

// begin initializes the attempt (Algorithm 2, Start).
func (tx *Tx) begin() {
	tx.entries = tx.inline[:0]
	tx.start = tx.th.clock.GetTime()
	tx.lower = tx.start
	tx.upper = timebase.Inf
}

// effLimit returns the timestamp passed as t into getPrelimUB: the current
// upper bound, clamped to "now" while it is still infinite. The clamp
// implements the §1.1 rule that accessing a most-recent version bounds the
// snapshot at the current time, not ∞ — without it, two sequential reads of
// head versions could miss a supersession in between.
func (tx *Tx) effLimit() timebase.Timestamp {
	if tx.upper.IsInf() {
		return tx.th.clock.GetTime()
	}
	return tx.upper
}

// errFromStatus translates a non-active status into the API error.
func (tx *Tx) errFromStatus() error {
	if tx.Status() == StatusAborted {
		return ErrAborted
	}
	return ErrNotActive
}

// selfAbort aborts the transaction from its own thread, recording the cause.
func (tx *Tx) selfAbort(cause AbortCause) {
	tx.cause = cause
	tx.abort()
}

// abort drives the transaction to the aborted state unless it has already
// committed (Algorithm 2 lines 53–59). Idempotent and callable by any
// thread.
func (tx *Tx) abort() {
	if !tx.status.CompareAndSwap(int32(StatusActive), int32(StatusAborted)) {
		tx.status.CompareAndSwap(int32(StatusCommitting), int32(StatusAborted))
	}
}

// abortExternal aborts an active enemy transaction on behalf of the
// contention manager. It only targets the active state: committing enemies
// are helped, not killed.
func (tx *Tx) abortExternal() bool {
	return tx.status.CompareAndSwap(int32(StatusActive), int32(StatusAborted))
}

// Read opens the object in read mode and returns the selected version's
// value as `any` — the generic escape-hatch view of ReadValue (numeric-lane
// payloads are boxed here; lane-aware callers use ReadValue or ReadInt).
func (tx *Tx) Read(o *Object) (any, error) {
	v, err := tx.ReadValue(o)
	if err != nil {
		return nil, err
	}
	return v.Load(), nil
}

// ReadInt opens the object in read mode through the unboxed numeric lane.
// ok reports whether the value currently lives in the lane; when false the
// caller falls back to Read.
func (tx *Tx) ReadInt(o *Object) (n int64, ok bool, err error) {
	v, err := tx.ReadValue(o)
	if err != nil {
		return 0, false, err
	}
	n, ok = v.AsInt64()
	return n, ok, nil
}

// ReadValue opens the object in read mode (Algorithm 2, Open with m = read)
// and returns the value of the version selected into the snapshot.
func (tx *Tx) ReadValue(o *Object) (val.Value, error) {
	if tx.Status() != StatusActive {
		return val.Value{}, tx.errFromStatus()
	}
	if idx, ok := tx.lookup(o); ok {
		return tx.entries[idx].ver.value, nil
	}
	v, ok := tx.getVersion(o)
	if !ok {
		tx.selfAbort(CauseSnapshot)
		tx.th.stats.AbortSnapshot++
		return val.Value{}, ErrAborted
	}
	// Lines 28–30: intersect T.R with the version's validity range and
	// abort if the snapshot became (possibly) inconsistent.
	tx.lower = timebase.Max(tx.lower, v.validFrom)
	limit := tx.effLimit()
	ub := prelimUB(o, v, limit, tx, tx.th.clock)
	tx.upper = timebase.Min(tx.upper, ub)
	if tx.lower.PossiblyLater(tx.upper) {
		tx.selfAbort(CauseSnapshot)
		tx.th.stats.AbortSnapshot++
		return val.Value{}, ErrAborted
	}
	tx.addEntry(o, v, false)
	return v.value, nil
}

// Write opens the object in write mode and installs v as the tentative new
// value — the generic escape-hatch view of WriteValue (dynamic int/int64
// payloads are canonicalized back into the numeric lane).
func (tx *Tx) Write(o *Object, v any) error {
	return tx.WriteValue(o, val.OfAny(v))
}

// WriteInt opens the object in write mode through the unboxed numeric lane:
// no part of the write boxes. Lane values have canonical dynamic type int.
func (tx *Tx) WriteInt(o *Object, n int64) error {
	return tx.WriteValue(o, val.OfInt(int(n)))
}

// WriteValue opens the object in write mode (Algorithm 2, Open with m =
// write) and installs v as the transaction's tentative new value.
func (tx *Tx) WriteValue(o *Object, v val.Value) error {
	if tx.Status() != StatusActive {
		return tx.errFromStatus()
	}
	if tx.readOnly {
		return ErrReadOnly
	}
	if v.Kind() == val.KindBoxed {
		tx.boxed = true
	}
	if idx, ok := tx.lookup(o); ok && tx.entries[idx].written {
		// Already own the object: update the tentative version in place.
		tx.entries[idx].ver.value = v
		return nil
	}
	// Acquisition loop (lines 11–21): become the object's registered writer,
	// resolving conflicts through helping and the contention manager. The
	// tentative version and its locator are built once (from an inline slot
	// while any remain) and reused across CAS failures — until the CAS
	// succeeds they are invisible to every other thread. If the loop exits
	// without publishing a heap-allocated slot, the slot goes back to the
	// Thread's recycler.
	var tent *version
	var nloc *locator
	var slot *wslot // non-nil iff tent/nloc came from a recyclable heap slot
	for n := 0; ; n++ {
		if tx.Status() != StatusActive {
			tx.th.stash(slot)
			return tx.errFromStatus()
		}
		loc := o.settled(tx.rt.maxVersions)
		if w := loc.writer; w != nil && w != tx {
			switch w.Status() {
			case StatusCommitting:
				tx.th.help(w)
			case StatusActive:
				switch tx.rt.cm.Resolve(tx, w, n) {
				case AbortEnemy:
					if w.abortExternal() {
						tx.th.stats.EnemyAborts++
					}
				case AbortSelf:
					tx.selfAbort(CauseConflict)
					tx.th.stats.AbortConflict++
					tx.th.stash(slot)
					return ErrAborted
				default:
					backoff(n)
				}
			default:
				// Terminal writer: the next settled() call resolves it.
			}
			continue
		}
		base := loc.cur
		if tent == nil {
			tent, nloc, slot = tx.newWriteSlot()
			tent.value = v
			nloc.writer, nloc.tent = tx, tent
		}
		nloc.cur = base
		if !o.loc.CompareAndSwap(loc, nloc) {
			continue
		}
		tx.update = true
		// Line 22: if the base version is possibly more recent than the
		// snapshot's upper bound, extending may still save the transaction.
		if base.validFrom.PossiblyLater(tx.upper) {
			tx.extend()
		}
		// Lines 28–30. The tentative version's preliminary upper bound is
		// the caller's limit (we are the registered, still-active writer).
		tx.lower = timebase.Max(tx.lower, base.validFrom)
		tx.upper = timebase.Min(tx.upper, tx.effLimit())
		if tx.lower.PossiblyLater(tx.upper) {
			tx.selfAbort(CauseSnapshot)
			tx.th.stats.AbortSnapshot++
			return ErrAborted
		}
		tx.addEntry(o, tent, true)
		return nil
	}
}

// smallAccessSet is the access-set size up to which lookup scans the
// entries slice instead of maintaining a map. Most transactions in the
// paper's workloads touch a handful of objects; for those, a backward
// linear scan over a contiguous slice beats a map's hashing and its
// per-attempt clearing cost. It is also the length of the inline entry
// array embedded in Tx, so small transactions never allocate a separate
// access-set backing array.
const smallAccessSet = 8

// smallWriteSlots is the number of inline tentative-version/locator pairs
// embedded in Tx. Writes beyond it fall back to one heap allocation per
// acquisition (recycled through the Thread when provably unpublished).
const smallWriteSlots = 4

// lookup finds the most recent entry for o (a write upgrade appends a
// second entry for the same object; the latest one carries the tentative
// value). Small access sets scan backwards; larger ones use the map built
// by addEntry. A miss returns index −1, so a caller that forgets to check
// ok faults loudly instead of silently aliasing entry 0.
func (tx *Tx) lookup(o *Object) (int, bool) {
	if tx.index != nil {
		if idx, ok := tx.index[o]; ok {
			return idx, true
		}
		return -1, false
	}
	for i := len(tx.entries) - 1; i >= 0; i-- {
		if tx.entries[i].obj == o {
			return i, true
		}
	}
	return -1, false
}

// newWriteSlot hands out the tentative version and locator for one write
// acquisition: an inline Tx slot while any remain, then the Thread's
// recycled spare, then a fresh heap slot. The returned slot pointer is
// non-nil only for the heap-backed cases, which are the only ones worth
// recycling — inline slots die with their Tx.
func (tx *Tx) newWriteSlot() (*version, *locator, *wslot) {
	if tx.wnext < smallWriteSlots {
		s := &tx.wslots[tx.wnext]
		tx.wnext++
		return &s.ver, &s.loc, nil
	}
	s := tx.th.spare
	if s != nil {
		tx.th.spare = nil
	} else {
		s = new(wslot)
	}
	return &s.ver, &s.loc, s
}

// addEntry appends (o, v) to T.O and indexes it. A write upgrade leaves the
// previously read entry in place so commit-time validation still checks the
// version the transaction actually read. Crossing smallAccessSet promotes
// the index to the Thread's reusable map (populated in entry order, so each
// object maps to its latest entry).
func (tx *Tx) addEntry(o *Object, v *version, written bool) {
	tx.entries = append(tx.entries, entry{obj: o, ver: v, written: written})
	if tx.index != nil {
		tx.index[o] = len(tx.entries) - 1
	} else if len(tx.entries) > smallAccessSet {
		if tx.th.index == nil {
			tx.th.index = make(map[*Object]int, 4*smallAccessSet)
		} else {
			clear(tx.th.index)
		}
		tx.index = tx.th.index
		for i := range tx.entries {
			tx.index[tx.entries[i].obj] = i
		}
	}
	tx.ops.Add(1)
}

// getVersion selects the version of o to read (Algorithm 3, getVersion).
// Update transactions must read the most recent committed version (an older
// one could never be extended to the commit time), so they extend the
// snapshot if the head is too recent. Read-only transactions instead walk
// back to an older version overlapping their snapshot — this is what makes
// them abort-free under concurrent updates as long as history suffices.
func (tx *Tx) getVersion(o *Object) (*version, bool) {
	for {
		loc := o.settled(tx.rt.maxVersions)
		if w := loc.writer; w != nil && w != tx && w.Status() == StatusCommitting {
			// Line 13: help the committing writer to completion so the
			// settled state (and its commit time) becomes definite.
			tx.th.help(w)
			continue
		}
		head := loc.cur
		if tx.upper.LaterEq(head.validFrom) {
			return head, true
		}
		// Head is possibly more recent than the snapshot. Serializable
		// update transactions must read the head (and so try to extend);
		// read-only transactions — and, under snapshot isolation, all
		// transactions — read at their snapshot from older versions.
		if !tx.readOnly && !tx.rt.si {
			if !tx.closed && !tx.rt.disableExt {
				tx.extend()
				if tx.upper.LaterEq(head.validFrom) {
					return head, true
				}
			}
			return nil, false
		}
		for v := head.prev.Load(); v != nil; v = v.prev.Load() {
			if !v.upperBound().LaterEq(tx.lower) {
				// This version ends before the snapshot starts; older ones
				// end even earlier.
				return nil, false
			}
			if tx.upper.LaterEq(v.validFrom) {
				return v, true
			}
		}
		return nil, false
	}
}

// extend tries to grow the snapshot's upper bound to the current time
// (Algorithm 3, Extend). It re-derives the bound of every read version; a
// superseded version closes the transaction (no future extension can help).
func (tx *Tx) extend() {
	// Snapshot-isolation transactions never move their snapshot forward:
	// reads stay at begin time and conflicting writes abort instead.
	if tx.closed || tx.rt.disableExt || tx.rt.si {
		return
	}
	t := tx.th.clock.GetTime()
	upper := t
	for i := range tx.entries {
		e := &tx.entries[i]
		if e.written {
			continue
		}
		ub := prelimUB(e.obj, e.ver, t, tx, tx.th.clock)
		upper = timebase.Min(upper, ub)
		if e.ver.fixedUB.Load() != nil {
			tx.closed = true
		}
	}
	tx.upper = upper
	tx.th.stats.Extensions++
}

// commit attempts to commit the transaction (Algorithm 2, Commit).
func (tx *Tx) commit() error {
	if !tx.update {
		// Read-only transactions built their snapshot incrementally and
		// consistently; no validation is necessary (line 37).
		if tx.status.CompareAndSwap(int32(StatusActive), int32(StatusCommitted)) {
			return nil
		}
		return ErrAborted
	}
	if !tx.status.CompareAndSwap(int32(StatusActive), int32(StatusCommitting)) {
		return ErrAborted
	}
	if tx.finishCommit(tx.th.clock) {
		return nil
	}
	if tx.cause == CauseNone {
		tx.cause = CauseValidation
		tx.th.stats.AbortValidation++
	}
	return ErrAborted
}

// finishCommit drives a committing transaction to a terminal state and
// reports whether it committed. It is invoked by the owner and by helping
// threads (with their own clocks) and is idempotent: every step is a CAS
// and validation reads only the frozen access set.
func (w *Tx) finishCommit(clock timebase.Clock) bool {
	ensureCT(w, clock)
	ct := w.CT()
	// Lines 43–48: the snapshot must extend to the commit time. Every
	// accessed version must still be (possibly) valid at ct; a version
	// superseded before ct kills the commit.
	//
	// Under snapshot isolation only the written objects matter, and those
	// are protected by ownership from acquisition to commit — read-write
	// conflicts are tolerated, so the read entries are skipped.
	for i := range w.entries {
		e := &w.entries[i]
		if w.rt.si && !e.written {
			continue
		}
		ub := prelimUB(e.obj, e.ver, ct, w, clock)
		if ct.PossiblyLater(ub) {
			w.abort()
			return w.Status() == StatusCommitted
		}
	}
	w.status.CompareAndSwap(int32(StatusCommitting), int32(StatusCommitted))
	return w.Status() == StatusCommitted
}

// ensureCT fixes the transaction's commit time if it is still unset, using
// the calling thread's clock (Algorithm 2 lines 41–42; any thread may win
// the CAS). LSA-RT's §2.4 argument requires that no thread reasons about a
// committing transaction whose commit time could still land in the past —
// setting it here, before drawing conclusions, closes that window.
//
// The first thread in claims the inline ctBuf: it is ctBuf's only writer
// ever, and the ct CAS publishes the buffer with release/acquire ordering,
// so the uncontended commit fixes its timestamp without allocating. A
// thread that loses the claim must not wait (the winner may be preempted
// between claim and publish — exactly the schedule helping exists for), so
// it falls back to allocating its own candidate and racing the CAS, which
// preserves lock-freedom.
func ensureCT(w *Tx, clock timebase.Clock) {
	if w.ct.Load() != nil {
		return
	}
	if w.ctClaim.CompareAndSwap(false, true) {
		w.ctBuf = clock.GetNewTS()
		w.ct.CompareAndSwap(nil, &w.ctBuf)
		return
	}
	t := clock.GetNewTS()
	w.ct.CompareAndSwap(nil, &t)
}

// backoff yields (briefly at first, then sleeping) between conflict
// resolution attempts.
func backoff(n int) {
	if n < 4 {
		runtime.Gosched()
		return
	}
	shift := n
	if shift > 14 {
		shift = 14
	}
	time.Sleep(time.Microsecond << uint(shift-4))
}
