package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
)

// HashSet is a fixed-bucket chained hash set over transactional cells:
// each bucket holds an immutable sorted slice of keys, replaced wholesale
// on update. Transactions are short (one bucket for point operations),
// giving a low-conflict, high-commit-rate workload between the disjoint
// array (zero conflict) and the linked list (long transactions); the Size
// operation reads every bucket and exercises large read-only snapshots.
type HashSet struct {
	// Buckets is the bucket count (default 64).
	Buckets int
	// KeyRange is the key universe (default 1024).
	KeyRange int
	// UpdateRatio is the fraction of add/remove operations (default 0.2).
	UpdateRatio float64
	// SizeRatio is the fraction of whole-set size scans (default 0.02).
	SizeRatio float64
	// Seed seeds the per-worker RNGs.
	Seed int64

	eng     engine.Engine
	buckets []engine.Cell
}

// Name implements harness.Workload.
func (h *HashSet) Name() string { return fmt.Sprintf("hashset/%d", h.bucketCount()) }

func (h *HashSet) bucketCount() int {
	if h.Buckets == 0 {
		return 64
	}
	return h.Buckets
}

func (h *HashSet) keyRange() int {
	if h.KeyRange == 0 {
		return 1024
	}
	return h.KeyRange
}

func (h *HashSet) updateRatio() float64 {
	if h.UpdateRatio == 0 {
		return 0.2
	}
	return h.UpdateRatio
}

func (h *HashSet) sizeRatio() float64 {
	if h.SizeRatio == 0 {
		return 0.02
	}
	return h.SizeRatio
}

// Init implements harness.Workload.
func (h *HashSet) Init(eng engine.Engine, workers int) error {
	if h.bucketCount() < 1 {
		return fmt.Errorf("workload: HashSet.Buckets must be ≥ 1, got %d", h.Buckets)
	}
	h.eng = eng
	h.buckets = make([]engine.Cell, h.bucketCount())
	for i := range h.buckets {
		h.buckets[i] = eng.NewCell([]int(nil))
	}
	return nil
}

func (h *HashSet) bucketFor(key int) engine.Cell {
	return h.buckets[uint(key*2654435761)%uint(len(h.buckets))]
}

// Contains reports membership via a read-only transaction.
func (h *HashSet) Contains(th engine.Thread, key int) (bool, error) {
	var found bool
	err := th.RunReadOnly(func(tx engine.Txn) error {
		keys, err := engine.Get[[]int](tx, h.bucketFor(key))
		if err != nil {
			return err
		}
		found = containsKey(keys, key)
		return nil
	})
	return found, err
}

// addIn is Add's transactional body.
func (h *HashSet) addIn(tx engine.Txn, key int) (bool, error) {
	b := h.bucketFor(key)
	keys, err := engine.Get[[]int](tx, b)
	if err != nil {
		return false, err
	}
	if containsKey(keys, key) {
		return false, nil
	}
	// Insert keeping the bucket sorted; the slice is immutable once
	// stored, so build a fresh one.
	out := make([]int, 0, len(keys)+1)
	i := 0
	for ; i < len(keys) && keys[i] < key; i++ {
		out = append(out, keys[i])
	}
	out = append(out, key)
	out = append(out, keys[i:]...)
	return true, tx.Write(b, out)
}

// Add inserts key, reporting whether the set changed.
func (h *HashSet) Add(th engine.Thread, key int) (bool, error) {
	var added bool
	err := th.Run(func(tx engine.Txn) error {
		var err error
		added, err = h.addIn(tx, key)
		return err
	})
	return added, err
}

// removeIn is Remove's transactional body.
func (h *HashSet) removeIn(tx engine.Txn, key int) (bool, error) {
	b := h.bucketFor(key)
	keys, err := engine.Get[[]int](tx, b)
	if err != nil {
		return false, err
	}
	if !containsKey(keys, key) {
		return false, nil
	}
	out := make([]int, 0, len(keys)-1)
	for _, k := range keys {
		if k != key {
			out = append(out, k)
		}
	}
	return true, tx.Write(b, out)
}

// Remove deletes key, reporting whether the set changed.
func (h *HashSet) Remove(th engine.Thread, key int) (bool, error) {
	var removed bool
	err := th.Run(func(tx engine.Txn) error {
		var err error
		removed, err = h.removeIn(tx, key)
		return err
	})
	return removed, err
}

// Size counts all elements in one consistent read-only snapshot.
func (h *HashSet) Size(th engine.Thread) (int, error) {
	var n int
	err := th.RunReadOnly(func(tx engine.Txn) error {
		n = 0
		for _, b := range h.buckets {
			keys, err := engine.Get[[]int](tx, b)
			if err != nil {
				return err
			}
			n += len(keys)
		}
		return nil
	})
	return n, err
}

// Step implements harness.Workload. The transaction closures are built once
// per worker and fed the key through a captured local.
func (h *HashSet) Step(eng engine.Engine, th engine.Thread, id int) func() error {
	rng := rand.New(rand.NewSource(h.Seed + int64(id)*31337 + 5))
	var key int
	add := func(tx engine.Txn) error {
		_, err := h.addIn(tx, key)
		return err
	}
	remove := func(tx engine.Txn) error {
		_, err := h.removeIn(tx, key)
		return err
	}
	contains := func(tx engine.Txn) error {
		_, err := engine.Get[[]int](tx, h.bucketFor(key))
		return err
	}
	return func() error {
		p := rng.Float64()
		key = rng.Intn(h.keyRange())
		switch {
		case p < h.sizeRatio():
			_, err := h.Size(th)
			return err
		case p < h.sizeRatio()+h.updateRatio()/2:
			return th.Run(add)
		case p < h.sizeRatio()+h.updateRatio():
			return th.Run(remove)
		default:
			return th.RunReadOnly(contains)
		}
	}
}

func containsKey(keys []int, key int) bool {
	for _, k := range keys {
		if k == key {
			return true
		}
		if k > key {
			return false
		}
	}
	return false
}
