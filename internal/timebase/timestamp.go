// Package timebase provides the timestamps and pluggable time bases used by
// the LSA-RT software transactional memory (Riegel, Fetzer, Felber — "Time-based
// Transactional Memory with Scalable Time Bases", SPAA 2007).
//
// A time base imposes a total order on transaction commits and object
// versions. The paper's key observation is that the time base does not have
// to be a shared integer counter: any clock whose reading error is bounded
// works, provided the comparison operators mask the uncertainty. This package
// implements the generic utility functions of Algorithm 1 and the concrete
// function sets for perfectly synchronized clocks (Algorithm 4) and
// externally synchronized clocks (Algorithm 5).
package timebase

import (
	"fmt"
	"math"
)

// CIDUndefined marks a timestamp whose origin clock is no longer known, e.g.
// the result of Max/Min over timestamps from different clocks (Algorithm 5
// lines 23/25). Comparisons against such a timestamp must always take the
// deviation into account, even against timestamps from the same clock the
// value originally came from.
const CIDUndefined int32 = -1

// CIDExact is the clock ID shared by all exact time bases (shared counters,
// perfectly synchronized clocks). Two exact timestamps always compare by
// value, which makes Algorithm 5 degenerate to Algorithm 4.
const CIDExact int32 = 0

// infTS is the sentinel tick value representing "still valid" (∞): the upper
// bound of the validity range of a version that has not been superseded.
const infTS int64 = math.MaxInt64

// negInfTS is the sentinel tick value representing "since forever" (−∞): the
// lower bound of the validity range of an object's genesis version, which was
// valid before any transaction ran.
const negInfTS int64 = math.MinInt64

// Timestamp is a point of the time base, possibly imprecise. For exact time
// bases (counters, perfectly synchronized clocks) Dev is zero and CID is
// CIDExact. For externally synchronized clocks a timestamp read at real time
// t carries the local clock value TS = ECp(t), the reader's clock ID, and the
// clock's maximum deviation from real time: |ECp(t) − t| ≤ Dev (§3.2).
type Timestamp struct {
	// TS is the clock value in ticks of the time base.
	TS int64
	// CID identifies the clock the value was read from, CIDExact for exact
	// bases, or CIDUndefined once the origin has been mixed away by Max/Min.
	CID int32
	// Dev is the maximum deviation, in ticks, between TS and real time.
	Dev int64
}

// Inf is the timestamp "infinitely far in the future". It bounds the validity
// range of a version that is still the most recent committed one.
var Inf = Timestamp{TS: infTS, CID: CIDExact}

// NegInf is the timestamp "infinitely far in the past". It is the validity
// lower bound of an object's genesis version, so a transaction on any time
// base — including one whose clock values are still small compared to its
// deviation — can read freshly created objects.
var NegInf = Timestamp{TS: negInfTS, CID: CIDExact}

// Zero is the unset timestamp. Transactions use it as the "commit time not
// yet chosen" sentinel (T.CT ← 0 in Algorithm 2), so all time bases issue
// timestamps with TS ≥ 1.
var Zero = Timestamp{}

// Exact wraps a raw tick count as an exact timestamp (no reading error).
func Exact(ts int64) Timestamp { return Timestamp{TS: ts, CID: CIDExact} }

// IsInf reports whether t is the infinite future sentinel.
func (t Timestamp) IsInf() bool { return t.TS == infTS }

// IsNegInf reports whether t is the infinite past sentinel.
func (t Timestamp) IsNegInf() bool { return t.TS == negInfTS }

// IsZero reports whether t is the unset sentinel.
func (t Timestamp) IsZero() bool { return t == Zero }

// LaterEq reports t1 ⪰ t2: t1 is guaranteed to have been read no earlier
// than t2 (the paper's "<" operator, Algorithm 1 line 3). For timestamps from
// the same known clock no deviation applies; across clocks (or when a clock
// ID has been erased by Max/Min) the deviations of both sides are masked
// (Algorithm 5 line 14).
func (t1 Timestamp) LaterEq(t2 Timestamp) bool {
	if t2.IsNegInf() || t1.IsInf() {
		return true
	}
	if t1.IsNegInf() || t2.IsInf() {
		return false
	}
	if t1.CID == t2.CID && t1.CID != CIDUndefined {
		return t1.TS >= t2.TS
	}
	return t1.TS-t1.Dev >= t2.TS+t2.Dev
}

// PossiblyLater reports t1 ≿ t2: t1 was possibly read at a later point than
// t2 (Algorithm 1 lines 4–6). It is the negation of t2 ⪰ t1.
func (t1 Timestamp) PossiblyLater(t2 Timestamp) bool {
	return !t2.LaterEq(t1)
}

// Max returns a timestamp m such that any t3 ⪰ m is guaranteed to be later
// than both t1 and t2 (Algorithm 5 lines 17–27). If neither side dominates,
// the result takes the larger upper bound TS+Dev and erases the clock ID so
// that future comparisons keep masking the uncertainty.
func Max(t1, t2 Timestamp) Timestamp {
	if t1.LaterEq(t2) {
		return t1
	}
	if t2.LaterEq(t1) {
		return t2
	}
	if t1.TS+t1.Dev > t2.TS+t2.Dev {
		return Timestamp{TS: t1.TS, CID: CIDUndefined, Dev: t1.Dev}
	}
	return Timestamp{TS: t2.TS, CID: CIDUndefined, Dev: t2.Dev}
}

// Min returns a timestamp m such that any t3 with m ⪰ t3 is guaranteed to be
// earlier than both t1 and t2 (Algorithm 5 lines 28–38). If neither side
// dominates, the result takes the smaller lower bound TS−Dev and erases the
// clock ID.
func Min(t1, t2 Timestamp) Timestamp {
	if t1.LaterEq(t2) {
		return t2
	}
	if t2.LaterEq(t1) {
		return t1
	}
	if t1.TS-t1.Dev < t2.TS-t2.Dev {
		return Timestamp{TS: t1.TS, CID: CIDUndefined, Dev: t1.Dev}
	}
	return Timestamp{TS: t2.TS, CID: CIDUndefined, Dev: t2.Dev}
}

// Pred returns the timestamp immediately preceding t in ticks. getPrelimUB
// uses it to bound a superseded version's validity at the writer's commit
// time minus one (Algorithm 3 line 29). Pred of the infinite or zero sentinel
// panics: those are never version bounds produced by a committing writer.
func (t Timestamp) Pred() Timestamp {
	if t.IsInf() || t.IsNegInf() || t.IsZero() {
		panic("timebase: Pred of sentinel timestamp " + t.String())
	}
	t.TS--
	return t
}

// Upper returns the latest real time at which t could have been read
// (TS+Dev). It is the pessimistic upper edge used when mixing clocks.
func (t Timestamp) Upper() int64 {
	if t.IsInf() {
		return infTS
	}
	return t.TS + t.Dev
}

// Lower returns the earliest real time at which t could have been read
// (TS−Dev).
func (t Timestamp) Lower() int64 {
	if t.IsInf() {
		return infTS
	}
	return t.TS - t.Dev
}

// String renders the timestamp for diagnostics.
func (t Timestamp) String() string {
	switch {
	case t.IsInf():
		return "∞"
	case t.IsNegInf():
		return "-∞"
	case t.IsZero():
		return "0"
	case t.Dev == 0 && t.CID == CIDExact:
		return fmt.Sprintf("%d", t.TS)
	default:
		return fmt.Sprintf("%d±%d@c%d", t.TS, t.Dev, t.CID)
	}
}
