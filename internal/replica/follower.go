package replica

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
)

// ErrPromoted reports an operation on a follower that already promoted.
var ErrPromoted = errors.New("replica: follower already promoted")

// FollowerOptions tune the replay side. The zero value is usable.
type FollowerOptions struct {
	// BackoffMin..BackoffMax bound the reconnect backoff: each failed dial
	// doubles the wait (capped at max) and adds up to 50% jitter; a healthy
	// stream resets it (defaults 50ms..2s).
	BackoffMin, BackoffMax time.Duration
	// StreamTimeout is the read deadline per frame; it must exceed the
	// primary's heartbeat interval or healthy idle streams flap (default
	// 2s).
	StreamTimeout time.Duration
	// Seed seeds the jitter source (0 = 1); fixed seeds keep fault-matrix
	// runs deterministic.
	Seed int64
}

func (o FollowerOptions) withDefaults() FollowerOptions {
	if o.BackoffMin <= 0 {
		o.BackoffMin = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.StreamTimeout <= 0 {
		o.StreamTimeout = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// FollowerStats is the follower's replication telemetry snapshot.
type FollowerStats struct {
	// AppliedSeq is the applied-seq watermark (the follower's own WAL
	// high-water mark: every applied record is re-journaled at its original
	// seq).
	AppliedSeq uint64
	// Connected reports a currently live stream to the primary.
	Connected bool
	// Reconnects counts dial attempts after the first connection was
	// established — the flap/backoff counter.
	Reconnects uint64
	// Snapshots counts snapshot installs (initial catch-up and primary
	// resyncs alike).
	Snapshots uint64
	// Promoted reports the follower was sealed and promoted to primary.
	Promoted bool
}

// Follower puts eng in standby and replays a primary's redo stream into it,
// reconnecting with capped exponential backoff + jitter whenever the stream
// dies. Promote seals the log and flips the engine back to serving primary.
type Follower struct {
	eng  *durable.Engine
	dial Dialer
	opt  FollowerOptions

	mu       sync.Mutex
	conn     net.Conn // live stream, for interrupting a blocked read
	promoted bool
	closed   bool

	stop     chan struct{} // closed on Close/Promote: cuts backoff sleeps short
	stopOnce sync.Once

	connected  atomic.Bool
	everDialed atomic.Bool
	reconnects atomic.Uint64
	snapshots  atomic.Uint64
	done       chan struct{} // run loop exited; applies quiesced
}

// NewFollower switches eng into standby (local update transactions refuse
// with durable.ErrStandby; reads serve normally) and starts the replication
// loop against dial.
func NewFollower(eng *durable.Engine, dial Dialer, opt FollowerOptions) *Follower {
	eng.SetStandby(true)
	f := &Follower{
		eng: eng, dial: dial, opt: opt.withDefaults(),
		stop: make(chan struct{}), done: make(chan struct{}),
	}
	go f.run()
	return f
}

// stopping reports Close or Promote was requested.
func (f *Follower) stopping() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed || f.promoted
}

// run is the reconnect loop: dial, stream until it dies, back off, repeat.
func (f *Follower) run() {
	defer close(f.done)
	rng := rand.New(rand.NewSource(f.opt.Seed))
	backoff := f.opt.BackoffMin
	for {
		if f.stopping() {
			return
		}
		conn, err := f.dial()
		if err == nil {
			if f.everDialed.Swap(true) {
				f.reconnects.Add(1)
			}
			err = f.stream(conn)
			conn.Close()
			if err == nil {
				// A healthy stream ended only because we are stopping.
				return
			}
			backoff = f.opt.BackoffMin // the dial worked: reset the ladder
		}
		if f.stopping() {
			return
		}
		// Capped exponential backoff with up to 50% additive jitter, so a
		// follower herd does not re-dial in lockstep.
		sleep := backoff + time.Duration(rng.Int63n(int64(backoff)/2+1))
		if backoff *= 2; backoff > f.opt.BackoffMax {
			backoff = f.opt.BackoffMax
		}
		select {
		case <-time.After(sleep):
		case <-f.stop:
			return
		}
	}
}

// stream runs one connection: hello with the applied watermark, then apply
// every commit and snapshot the primary sends, acking each. A nil return
// means the loop should stop; any error means reconnect.
func (f *Follower) stream(conn net.Conn) error {
	f.mu.Lock()
	if f.closed || f.promoted {
		f.mu.Unlock()
		return nil
	}
	f.conn = conn
	f.mu.Unlock()
	f.connected.Store(true)
	defer func() {
		f.connected.Store(false)
		f.mu.Lock()
		f.conn = nil
		f.mu.Unlock()
	}()

	if err := f.send(conn, helloFrame(f.eng.AppendedSeq())); err != nil {
		return err
	}
	for {
		if f.stopping() {
			return nil
		}
		_ = conn.SetReadDeadline(time.Now().Add(f.opt.StreamTimeout))
		payload, _, err := durable.ReadFrame(conn)
		if err != nil {
			return err // torn frame, deadline, or cut: the reconnect signal
		}
		if len(payload) == 0 {
			return errors.New("replica: empty message")
		}
		switch payload[0] {
		case msgCommit:
			seq, writes, err := durable.DecodeCommitPayload(payload)
			if err != nil {
				return err
			}
			if seq <= f.eng.AppendedSeq() {
				continue // already applied (snapshot/tail overlap)
			}
			if err := f.eng.ApplyReplicated(seq, writes); err != nil {
				// An out-of-order record (stream gap): reconnecting makes
				// the primary resync us from a snapshot. Anything else —
				// unknown cell, wedged log — also surfaces as a stream
				// death and retries, which is the best a replica can do.
				return err
			}
			if err := f.send(conn, seqFrame(msgAck, seq)); err != nil {
				return err
			}
		case msgSnapshot:
			seq, values, err := durable.DecodeSnapshotPayload(payload)
			if err != nil {
				return err
			}
			if seq > f.eng.AppendedSeq() {
				if err := f.eng.InstallReplicaSnapshot(seq, values); err != nil {
					return err
				}
			}
			f.snapshots.Add(1)
			if err := f.send(conn, seqFrame(msgAck, f.eng.AppendedSeq())); err != nil {
				return err
			}
		case msgHeartbeat:
			if _, err := parseSeqPayload(payload); err != nil {
				return err
			}
			// Echo the watermark so the primary's read deadline stays fed
			// and its lag view stays fresh.
			if err := f.send(conn, seqFrame(msgAck, f.eng.AppendedSeq())); err != nil {
				return err
			}
		default:
			return fmt.Errorf("replica: unexpected message %q from primary", payload[0])
		}
	}
}

func (f *Follower) send(conn net.Conn, b []byte) error {
	_ = conn.SetWriteDeadline(time.Now().Add(f.opt.StreamTimeout))
	_, err := conn.Write(b)
	return err
}

// Promote seals the follower and brings it up as a serving primary: the
// replication loop stops (in-flight applies quiesce), the log syncs to
// stable storage, and standby lifts so local update transactions are
// accepted — numbered densely after the last applied seq, since applies
// advanced the engine's ticket cell. Not reversible; a promoted node never
// rejoins as a follower (re-Wrap its WAL dir into a fresh engine for that).
func (f *Follower) Promote() error {
	f.mu.Lock()
	if f.promoted {
		f.mu.Unlock()
		return ErrPromoted
	}
	if f.closed {
		f.mu.Unlock()
		return errors.New("replica: follower closed")
	}
	f.promoted = true
	conn := f.conn
	f.mu.Unlock()
	f.stopOnce.Do(func() { close(f.stop) })
	if conn != nil {
		conn.Close() // interrupt a blocked read
	}
	<-f.done // applies quiesced: the loop runs them all on one goroutine
	if err := f.eng.WALSync(); err != nil {
		return fmt.Errorf("replica: sealing follower log: %w", err)
	}
	f.eng.SetStandby(false)
	return nil
}

// Close stops the replication loop, leaving the engine in standby. A closed
// follower cannot be promoted. Idempotent.
func (f *Follower) Close() {
	f.mu.Lock()
	if f.closed || f.promoted {
		f.mu.Unlock()
		return
	}
	f.closed = true
	conn := f.conn
	f.mu.Unlock()
	f.stopOnce.Do(func() { close(f.stop) })
	if conn != nil {
		conn.Close()
	}
	<-f.done
}

// Stats snapshots the follower's replication telemetry.
func (f *Follower) Stats() FollowerStats {
	f.mu.Lock()
	promoted := f.promoted
	f.mu.Unlock()
	return FollowerStats{
		AppliedSeq: f.eng.AppendedSeq(),
		Connected:  f.connected.Load(),
		Reconnects: f.reconnects.Load(),
		Snapshots:  f.snapshots.Load(),
		Promoted:   promoted,
	}
}
