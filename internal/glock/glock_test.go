package glock

import (
	"errors"
	"sync"
	"testing"
)

func TestReadWriteCommit(t *testing.T) {
	s := New()
	o := NewObject(41)
	th := s.Thread(0)
	if err := th.Run(func(tx *Tx) error {
		v, err := tx.Read(o)
		if err != nil {
			return err
		}
		return tx.Write(o, v.(int)+1)
	}); err != nil {
		t.Fatal(err)
	}
	if got := readInt(t, s, o); got != 42 {
		t.Errorf("value = %d, want 42", got)
	}
}

func TestReadOwnWrite(t *testing.T) {
	s := New()
	o := NewObject(1)
	if err := s.Thread(0).Run(func(tx *Tx) error {
		if err := tx.Write(o, 5); err != nil {
			return err
		}
		v, err := tx.Read(o)
		if err != nil {
			return err
		}
		if v.(int) != 5 {
			t.Errorf("read-own-write = %v, want 5", v)
		}
		return tx.Write(o, 6)
	}); err != nil {
		t.Fatal(err)
	}
	if got := readInt(t, s, o); got != 6 {
		t.Errorf("value = %d, want 6", got)
	}
}

func TestReadOnlyRejectsWrite(t *testing.T) {
	s := New()
	o := NewObject(1)
	err := s.Thread(0).RunReadOnly(func(tx *Tx) error { return tx.Write(o, 2) })
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("got %v, want ErrReadOnly", err)
	}
}

func TestUserErrorRollsBack(t *testing.T) {
	s := New()
	a, b := NewObject(1), NewObject(2)
	boom := errors.New("boom")
	err := s.Thread(0).Run(func(tx *Tx) error {
		if err := tx.Write(a, 100); err != nil {
			return err
		}
		if err := tx.Write(b, 200); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	if got := readInt(t, s, a); got != 1 {
		t.Errorf("a = %d, want 1 (write leaked)", got)
	}
	if got := readInt(t, s, b); got != 2 {
		t.Errorf("b = %d, want 2 (write leaked)", got)
	}
}

func TestConcurrentIncrements(t *testing.T) {
	s := New()
	o := NewObject(0)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := s.Thread(id)
			for i := 0; i < per; i++ {
				if err := th.Run(func(tx *Tx) error {
					v, err := tx.Read(o)
					if err != nil {
						return err
					}
					return tx.Write(o, v.(int)+1)
				}); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := readInt(t, s, o); got != workers*per {
		t.Errorf("counter = %d, want %d (lost updates)", got, workers*per)
	}
}

func TestPairInvariantUnderConcurrency(t *testing.T) {
	s := New()
	a, b := NewObject(0), NewObject(0)
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := s.Thread(id)
			for i := 1; i <= 300; i++ {
				var err error
				if id%2 == 0 {
					n := id*1000 + i
					err = th.Run(func(tx *Tx) error {
						if err := tx.Write(a, n); err != nil {
							return err
						}
						return tx.Write(b, -n)
					})
				} else {
					err = th.RunReadOnly(func(tx *Tx) error {
						av, err := tx.Read(a)
						if err != nil {
							return err
						}
						bv, err := tx.Read(b)
						if err != nil {
							return err
						}
						if av.(int)+bv.(int) != 0 {
							t.Errorf("torn pair: %v/%v", av, bv)
						}
						return nil
					})
				}
				if err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
}

func readInt(t *testing.T, s *STM, o *Object) int {
	t.Helper()
	var out int
	if err := s.Thread(99).RunReadOnly(func(tx *Tx) error {
		v, err := tx.Read(o)
		if err != nil {
			return err
		}
		out = v.(int)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}
