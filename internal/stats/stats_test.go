package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if s.Mean != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	// Sample std of this classic set is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("Std = %v, want %v", s.Std, want)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{42})
	if s.Mean != 42 || s.Std != 0 || s.Min != 42 || s.Max != 42 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestSummaryBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			// Skip NaN/Inf and magnitudes whose sum overflows float64.
			if math.IsNaN(x) || math.Abs(x) > 1e300 {
				return true
			}
		}
		s := Summarize(xs)
		if s.N == 0 {
			return true
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 50: 3, 100: 5, 25: 2}
	for p, want := range cases {
		if got := Percentile(xs, p); got != want {
			t.Errorf("P%v = %v, want %v", p, got, want)
		}
	}
	if got := Percentile(xs, 90); math.Abs(got-4.6) > 1e-12 {
		t.Errorf("P90 = %v, want 4.6", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("percentile of empty sample must be NaN")
	}
	// Input must not be modified.
	unsorted := []float64{3, 1, 2}
	Percentile(unsorted, 50)
	if unsorted[0] != 3 || unsorted[1] != 1 || unsorted[2] != 2 {
		t.Errorf("input mutated: %v", unsorted)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		n := 1 + rng.Intn(20)
		xs := make([]float64, n)
		for j := range xs {
			xs[j] = rng.Float64() * 100
		}
		p1, p2 := rng.Float64()*100, rng.Float64()*100
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		if Percentile(xs, p1) > Percentile(xs, p2)+1e-9 {
			t.Fatalf("percentile not monotone: P%.1f > P%.1f for %v", p1, p2, xs)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("threads", "tx/s")
	tb.AddRow("1", "100")
	tb.AddRowf(16, 123456.789)
	out := tb.String()
	if !strings.Contains(out, "threads") || !strings.Contains(out, "123456.789") {
		t.Errorf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("lines = %d, want 4 (header, rule, 2 rows)", len(lines))
	}
	// Aligned: all lines equally wide.
	for _, l := range lines[1:] {
		if len(l) != len(lines[0]) {
			t.Errorf("ragged table:\n%s", out)
			break
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("1", "2")
	want := "a,b\n1,2\n"
	if got := tb.CSV(); got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("x")
	tb.AddRow("1", "2", "3")
	tb.AddRow()
	out := tb.String()
	if !strings.Contains(out, "3") {
		t.Errorf("extra cells dropped:\n%s", out)
	}
}
