package contention

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/timebase"
)

// fakeInfo is a canned TxInfo for unit-testing decision logic.
type fakeInfo struct {
	id      uint64
	start   timebase.Timestamp
	ops     int
	attempt int
}

func (f fakeInfo) ID() uint64                { return f.id }
func (f fakeInfo) Start() timebase.Timestamp { return f.start }
func (f fakeInfo) Ops() int                  { return f.ops }
func (f fakeInfo) Attempt() int              { return f.attempt }

var _ core.TxInfo = fakeInfo{}

func TestAggressiveAlwaysKills(t *testing.T) {
	m := Aggressive{}
	for n := 0; n < 20; n++ {
		if d := m.Resolve(fakeInfo{}, fakeInfo{}, n); d != core.AbortEnemy {
			t.Fatalf("round %d: %v, want abort-enemy", n, d)
		}
	}
}

func TestSuicideAlwaysYields(t *testing.T) {
	m := Suicide{}
	for n := 0; n < 20; n++ {
		if d := m.Resolve(fakeInfo{}, fakeInfo{}, n); d != core.AbortSelf {
			t.Fatalf("round %d: %v, want abort-self", n, d)
		}
	}
}

func TestPoliteEscalates(t *testing.T) {
	m := Polite{Rounds: 3}
	for n := 0; n < 3; n++ {
		if d := m.Resolve(fakeInfo{}, fakeInfo{}, n); d != core.Wait {
			t.Fatalf("round %d: %v, want wait", n, d)
		}
	}
	if d := m.Resolve(fakeInfo{}, fakeInfo{}, 3); d != core.AbortEnemy {
		t.Fatalf("round 3: %v, want abort-enemy", d)
	}
	// Default rounds.
	def := Polite{}
	if d := def.Resolve(fakeInfo{}, fakeInfo{}, 7); d != core.Wait {
		t.Errorf("default round 7: %v, want wait", d)
	}
	if d := def.Resolve(fakeInfo{}, fakeInfo{}, 8); d != core.AbortEnemy {
		t.Errorf("default round 8: %v, want abort-enemy", d)
	}
}

func TestKarmaRichKillsPoorWaits(t *testing.T) {
	m := Karma{}
	rich := fakeInfo{ops: 50}
	poor := fakeInfo{ops: 2}
	if d := m.Resolve(rich, poor, 0); d != core.AbortEnemy {
		t.Errorf("rich vs poor: %v, want abort-enemy", d)
	}
	if d := m.Resolve(poor, rich, 0); d != core.Wait {
		t.Errorf("poor vs rich round 0: %v, want wait", d)
	}
	if d := m.Resolve(poor, rich, 49); d != core.AbortEnemy {
		t.Errorf("poor vs rich round 49 (deficit 48 overcome): %v, want abort-enemy", d)
	}
}

func TestTimestampOldestWins(t *testing.T) {
	m := Timestamp{}
	old := fakeInfo{start: timebase.Exact(5)}
	young := fakeInfo{start: timebase.Exact(50)}
	if d := m.Resolve(old, young, 0); d != core.AbortEnemy {
		t.Errorf("old vs young: %v, want abort-enemy", d)
	}
	if d := m.Resolve(young, old, 0); d != core.Wait {
		t.Errorf("young vs old round 0: %v, want wait", d)
	}
	if d := m.Resolve(young, old, 4); d != core.AbortSelf {
		t.Errorf("young vs old round 4: %v, want abort-self", d)
	}
}

func TestNames(t *testing.T) {
	for _, m := range []core.ContentionManager{Aggressive{}, Suicide{}, Polite{}, Karma{}, Timestamp{}} {
		if m.Name() == "" {
			t.Errorf("%T: empty name", m)
		}
	}
}

// TestManagersUnderRealContention runs every manager against a genuinely
// contended hot object and checks liveness and atomicity.
func TestManagersUnderRealContention(t *testing.T) {
	managers := []core.ContentionManager{Aggressive{}, Suicide{}, Polite{Rounds: 2}, Karma{}, Timestamp{}}
	for _, m := range managers {
		t.Run(m.Name(), func(t *testing.T) {
			rt := core.MustRuntime(core.Config{
				TimeBase: timebase.NewSharedCounter(),
				Manager:  m,
			})
			hot := core.NewObject(0)
			const workers, per = 4, 100
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					th := rt.Thread(id)
					for i := 0; i < per; i++ {
						if err := th.Run(func(tx *core.Tx) error {
							v, err := tx.Read(hot)
							if err != nil {
								return err
							}
							return tx.Write(hot, v.(int)+1)
						}); err != nil {
							t.Errorf("worker %d: %v", id, err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			th := rt.Thread(99)
			if err := th.RunReadOnly(func(tx *core.Tx) error {
				v, err := tx.Read(hot)
				if err != nil {
					return err
				}
				if v.(int) != workers*per {
					t.Errorf("hot = %v, want %d", v, workers*per)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
