// Command lsabench regenerates the paper's evaluation (§4) from the
// command line. Each experiment prints the same rows/series the paper
// reports:
//
//	lsabench -experiment fig1                 MMTimer synchronization errors (Figure 1)
//	lsabench -experiment fig2                 time-base overhead, real STM (Figure 2)
//	lsabench -experiment fig2sim              time-base overhead, simulated 16-CPU machine (Figure 2)
//	lsabench -experiment tl2opt               TL2 counter optimization comparison (§4.2)
//	lsabench -experiment errors               synchronization-error ablation (§4.3)
//	lsabench -experiment baselines            LSA-RT vs TL2 vs validating STM (§1.2)
//	lsabench -experiment all                  everything above
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig1|fig2|fig2word|fig2sim|tl2opt|errors|baselines|all")
		duration   = flag.Duration("duration", 300*time.Millisecond, "measured interval per point (real-STM experiments)")
		warmup     = flag.Duration("warmup", 0, "warmup before each measurement (default duration/5)")
		threads    = flag.String("threads", "", "comma-separated worker counts (default 1,2,4,6,8,12,16)")
		sizes      = flag.String("sizes", "", "comma-separated transaction sizes (default 10,50,100)")
		rounds     = flag.Int("rounds", 100, "clock-comparison rounds for fig1")
		simNs      = flag.Int64("sim-ns", 50_000_000, "simulated horizon per fig2sim point, ns")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	th, err := parseInts(*threads)
	if err != nil {
		fatal(err)
	}
	sz, err := parseInts(*sizes)
	if err != nil {
		fatal(err)
	}

	run := func(name string) {
		switch name {
		case "fig1":
			res, err := experiments.Fig1(experiments.Fig1Config{Rounds: *rounds})
			if err != nil {
				fatal(err)
			}
			header("Figure 1 — MMTimer synchronization errors and offsets")
			fmt.Printf("run max: |offset|=%d ticks, error=%d ticks\n\n",
				res.Measurement.MaxAbsOffset(), res.Measurement.MaxError())
			emit(res.Table, *csv)
		case "fig2":
			res, err := experiments.Fig2(experiments.Fig2Config{
				Sizes: sz, Threads: th, Duration: *duration, Warmup: *warmup,
			})
			if err != nil {
				fatal(err)
			}
			header("Figure 2 — time-base overhead for disjoint updates (real STM on this host)")
			emit(res.Table, *csv)
		case "fig2word":
			res, err := experiments.Fig2Word(experiments.Fig2Config{
				Sizes: sz, Threads: th, Duration: *duration, Warmup: *warmup,
			})
			if err != nil {
				fatal(err)
			}
			header("Figure 2 on the word-based LSA engine (time bases are representation-agnostic, §1.1)")
			emit(res.Table, *csv)
		case "fig2sim":
			res, err := experiments.Fig2Sim(experiments.Fig2SimConfig{
				Sizes: sz, Threads: th, DurationNs: *simNs,
			})
			if err != nil {
				fatal(err)
			}
			header("Figure 2 — time-base overhead on the simulated 16-CPU ccNUMA machine")
			emit(res.Table, *csv)
		case "tl2opt":
			res, err := experiments.TL2Opt(experiments.Fig2Config{
				Sizes: sz, Threads: th, Duration: *duration, Warmup: *warmup,
			})
			if err != nil {
				fatal(err)
			}
			header("§4.2 — shared counter vs TL2 commit-timestamp sharing")
			emit(res.Table, *csv)
		case "errors":
			res, err := experiments.SyncErrors(experiments.SyncErrorsConfig{
				Duration: *duration, Warmup: *warmup,
			})
			if err != nil {
				fatal(err)
			}
			header("§4.3 — synchronization error vs abort behaviour")
			emit(res.Table, *csv)
		case "baselines":
			res, err := experiments.Baselines(experiments.BaselinesConfig{
				Duration: *duration, Warmup: *warmup,
			})
			if err != nil {
				fatal(err)
			}
			header("§1.2 — read-only scans under disjoint updates: LSA-RT vs baselines")
			emit(res.Table, *csv)
		default:
			fatal(fmt.Errorf("unknown experiment %q", name))
		}
	}

	if *experiment == "all" {
		for _, name := range []string{"fig1", "fig2", "fig2word", "fig2sim", "tl2opt", "errors", "baselines"} {
			run(name)
		}
		return
	}
	run(*experiment)
}

func header(title string) {
	fmt.Printf("\n== %s ==\n\n", title)
}

func emit(t *stats.Table, csv bool) {
	if csv {
		fmt.Print(t.CSV())
		return
	}
	fmt.Print(t.String())
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("lsabench: bad integer list %q: %w", s, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lsabench:", err)
	os.Exit(1)
}
