// Package tstm is a time-based software transactional memory for Go with
// scalable time bases, reproducing Riegel, Fetzer and Felber, "Time-based
// Transactional Memory with Scalable Time Bases" (SPAA 2007).
//
// A time-based STM tags object versions with timestamps and maintains, for
// every transaction, a validity range — the intersection of the validity
// ranges of all versions it has read. As long as that range is non-empty the
// transaction's snapshot is consistent, without re-validating the whole read
// set on every access. The timestamps come from a pluggable time base:
//
//   - a shared integer counter (the classic LSA/TL2 time base — simple, but
//     a coherence bottleneck on large machines),
//   - the same counter with TL2's commit-timestamp sharing optimization,
//   - perfectly synchronized hardware clocks (modeled on the SGI Altix
//     MMTimer), whose reads are contention-free,
//   - externally synchronized clocks with a bounded deviation, whose
//     comparison operators mask the reading uncertainty.
//
// # Usage
//
// Create a Runtime, then one Thread per worker goroutine, and run atomic
// blocks on typed transactional variables:
//
//	rt, _ := tstm.New(tstm.WithSharedCounter())
//	acct := tstm.NewVar(100)
//	th := rt.Thread(0)
//	err := th.Atomic(func(tx *tstm.Tx) error {
//		bal, err := acct.Get(tx)
//		if err != nil {
//			return err
//		}
//		return acct.Set(tx, bal+1)
//	})
//
// The closure may run multiple times (aborted attempts are retried); it must
// not have side effects beyond Get/Set. Errors other than the internal
// abort signal cancel the transaction and are returned unchanged.
package tstm

import (
	"fmt"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/hwclock"
	"repro/internal/timebase"
)

// Tx is a transaction attempt. See the core engine for the protocol; user
// code only passes it to Var.Get and Var.Set.
type Tx = core.Tx

// Stats aggregates commit/abort/extension counters across threads.
type Stats = core.Stats

// ErrAborted is the internal retry signal. User closures should propagate
// it unchanged (returning it from an Atomic closure is always safe).
var ErrAborted = core.ErrAborted

// ErrReadOnly is returned by Var.Set inside AtomicReadOnly.
var ErrReadOnly = core.ErrReadOnly

// config collects the options for New.
type config struct {
	tb          timebase.TimeBase
	manager     core.ContentionManager
	maxVers     int
	noExtend    bool
	snapshotIso bool
}

// Option configures a Runtime.
type Option func(*config) error

// WithSharedCounter selects the shared integer counter time base (the
// default): exact, linearizable, and contended under frequent commits.
func WithSharedCounter() Option {
	return func(c *config) error {
		c.tb = timebase.NewSharedCounter()
		return nil
	}
}

// WithTL2Counter selects the shared counter with TL2-style commit-timestamp
// sharing on CAS failure.
func WithTL2Counter() Option {
	return func(c *config) error {
		c.tb = timebase.NewTL2Counter()
		return nil
	}
}

// WithShardedCounter selects the sharded software counter time base:
// per-shard cache-line-padded counters (thread ids map to shards modulo
// shards) lazily synchronized through a shared epoch base that commits touch
// only once per window/2 ticks. Scales commits like a hardware clock without
// needing one; timestamps carry a masked deviation of window/2 ticks, so
// freshly committed versions look "possibly concurrent" for one window.
// window < 2 selects the default window.
func WithShardedCounter(shards int, window int64) Option {
	return func(c *config) error {
		if shards <= 0 {
			return fmt.Errorf("tstm: WithShardedCounter shards must be positive, got %d", shards)
		}
		c.tb = timebase.NewShardedCounter(shards, window)
		return nil
	}
}

// WithMMTimer selects a simulated perfectly synchronized hardware clock
// with the MMTimer's parameters (20 MHz, 7-tick read latency) and one
// register per worker node.
func WithMMTimer(nodes int) Option {
	return func(c *config) error {
		if nodes <= 0 {
			return fmt.Errorf("tstm: WithMMTimer nodes must be positive, got %d", nodes)
		}
		c.tb = timebase.NewMMTimer(nodes)
		return nil
	}
}

// WithIdealClock selects a free-to-read, nanosecond-granularity perfectly
// synchronized clock — the upper bound on what a hardware time base could
// provide.
func WithIdealClock(nodes int) Option {
	return func(c *config) error {
		if nodes <= 0 {
			return fmt.Errorf("tstm: WithIdealClock nodes must be positive, got %d", nodes)
		}
		c.tb = timebase.NewPerfectClock(hwclock.New(hwclock.IdealConfig(nodes)))
		return nil
	}
}

// WithExtSyncClocks selects externally synchronized per-node clocks: each
// node's clock is offset from true time by at most maxOffsetTicks, and the
// STM masks a total advertised deviation derived from the device's worst
// case. The tick rate is 1 GHz.
func WithExtSyncClocks(nodes int, maxOffsetTicks int64) Option {
	return func(c *config) error {
		if nodes <= 0 {
			return fmt.Errorf("tstm: WithExtSyncClocks nodes must be positive, got %d", nodes)
		}
		if maxOffsetTicks < 0 {
			return fmt.Errorf("tstm: negative clock offset bound %d", maxOffsetTicks)
		}
		dev := hwclock.New(hwclock.Config{
			TickHz:         1_000_000_000,
			Nodes:          nodes,
			MaxOffsetTicks: maxOffsetTicks,
			Seed:           1,
		})
		ec, err := timebase.NewExtSyncClock(dev, dev.Config().MaxErrorTicks())
		if err != nil {
			return fmt.Errorf("tstm: %w", err)
		}
		c.tb = ec
		return nil
	}
}

// WithContentionManager selects the conflict arbitration policy by name:
// "aggressive", "suicide", "polite", "karma" or "timestamp".
func WithContentionManager(name string) Option {
	return func(c *config) error {
		switch name {
		case "aggressive":
			c.manager = contention.Aggressive{}
		case "suicide":
			c.manager = contention.Suicide{}
		case "polite":
			c.manager = contention.Polite{}
		case "karma":
			c.manager = contention.Karma{}
		case "timestamp":
			c.manager = contention.Timestamp{}
		default:
			return fmt.Errorf("tstm: unknown contention manager %q", name)
		}
		return nil
	}
}

// WithMaxVersions sets how many committed versions each object keeps.
// 1 yields a single-version STM; larger histories let read-only
// transactions dodge concurrent updates.
func WithMaxVersions(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("tstm: MaxVersions must be ≥ 1, got %d", n)
		}
		c.maxVers = n
		return nil
	}
}

// WithoutExtension disables validity-range extensions (TL2-like behaviour),
// an ablation knob: transactions must then fit entirely inside the validity
// range established by their reads.
func WithoutExtension() Option {
	return func(c *config) error {
		c.noExtend = true
		return nil
	}
}

// WithSnapshotIsolation weakens update transactions from linearizability to
// snapshot isolation: all reads come from the transaction's begin snapshot
// (older versions included) and only write-write conflicts abort. Long
// read-modify-write transactions abort far less, at the price of
// permitting write skew — the trade-off of the authors' companion work on
// snapshot isolation for STM (TRANSACT 2006).
func WithSnapshotIsolation() Option {
	return func(c *config) error {
		c.snapshotIso = true
		return nil
	}
}

// Runtime is an instantiated transactional memory.
type Runtime struct {
	rt *core.Runtime
}

// New builds a Runtime from the given options. With no options it uses the
// shared-counter time base, the default contention manager, and a
// four-version history.
func New(opts ...Option) (*Runtime, error) {
	c := &config{}
	for _, opt := range opts {
		if err := opt(c); err != nil {
			return nil, err
		}
	}
	if c.tb == nil {
		c.tb = timebase.NewSharedCounter()
	}
	rt, err := core.NewRuntime(core.Config{
		TimeBase:          c.tb,
		Manager:           c.manager,
		MaxVersions:       c.maxVers,
		DisableExtension:  c.noExtend,
		SnapshotIsolation: c.snapshotIso,
	})
	if err != nil {
		return nil, err
	}
	return &Runtime{rt: rt}, nil
}

// MustNew is New for static configurations; it panics on error.
func MustNew(opts ...Option) *Runtime {
	r, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return r
}

// TimeBaseName identifies the configured time base.
func (r *Runtime) TimeBaseName() string { return r.rt.TimeBase().Name() }

// Thread creates the execution context for one worker goroutine. id selects
// the worker's clock for per-node time bases; use dense indices 0..N−1.
// A Thread must not be shared between goroutines.
func (r *Runtime) Thread(id int) *Thread {
	return &Thread{th: r.rt.Thread(id)}
}

// Stats sums all threads' counters. Only call while no transactions run.
func (r *Runtime) Stats() Stats { return r.rt.Stats() }

// Unwrap exposes the underlying engine runtime for benchmarks and tools
// inside this module.
func (r *Runtime) Unwrap() *core.Runtime { return r.rt }

// Thread is a worker's transactional context.
type Thread struct {
	th *core.Thread
}

// Atomic runs fn as an update-capable transaction, retrying until commit.
func (t *Thread) Atomic(fn func(*Tx) error) error { return t.th.Run(fn) }

// AtomicReadOnly runs fn as a declared read-only transaction. Reads may be
// served from older object versions, so long analytics transactions do not
// abort (and never force) concurrent updates.
func (t *Thread) AtomicReadOnly(fn func(*Tx) error) error { return t.th.RunReadOnly(fn) }

// Stats returns this thread's counters.
func (t *Thread) Stats() Stats { return t.th.Stats() }

// Unwrap exposes the underlying engine thread.
func (t *Thread) Unwrap() *core.Thread { return t.th }
