// Package replica turns the durable WAL into a log-shipping replication
// layer: a Primary taps every journaled commit frame and streams it to N
// followers, each a Follower replaying the records into its own durable
// store and acknowledging an applied-seq watermark back.
//
// # Wire protocol
//
// Every message travels in the WAL's own frame format —
//
//	[u32 len][u32 crc32(payload)][payload]
//
// both fixed fields little-endian — so replicated commit and snapshot
// records are the exact on-disk frame bytes, shipped unmodified. The
// payload's first byte is the message type:
//
//	'h'  hello      follower → primary   'h' | uvarint proto | uvarint lastApplied
//	'a'  ack        follower → primary   'a' | uvarint appliedSeq
//	'b'  heartbeat  primary → follower   'b' | uvarint appendedSeq
//	'C'  commit     primary → follower   a WAL redo record (durable frame grammar)
//	'S'  snapshot   primary → follower   a WAL snapshot record (ditto)
//
// A stream opens with hello; the primary answers with a snapshot (when the
// follower is behind, or after a slow-follower buffer drop) and then the
// live commit tail, heartbeating when idle. The follower acks after each
// apply and echoes an ack for every heartbeat, so both directions carry
// traffic and both ends can run read deadlines. A torn frame, a CRC
// mismatch, or a silent deadline is the reconnect signal — streams carry no
// close handshake, exactly like the log they ship.
package replica

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
)

// protoVersion is the hello's protocol version; a primary refuses anything
// newer than it understands.
const protoVersion = 1

// Message type tags. MsgCommit and MsgSnapshot deliberately equal the WAL's
// record type bytes: those messages ARE the on-disk frames.
const (
	msgHello     = 'h'
	msgAck       = 'a'
	msgHeartbeat = 'b'
	msgCommit    = 'C'
	msgSnapshot  = 'S'
)

const frameHeaderLen = 8

// frame wraps payload in the WAL frame header.
func frame(payload []byte) []byte {
	b := make([]byte, frameHeaderLen+len(payload))
	copy(b[frameHeaderLen:], payload)
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:8], crc32.ChecksumIEEE(payload))
	return b
}

// helloFrame builds the follower's opening message.
func helloFrame(lastApplied uint64) []byte {
	p := []byte{msgHello}
	p = binary.AppendUvarint(p, protoVersion)
	p = binary.AppendUvarint(p, lastApplied)
	return frame(p)
}

// seqFrame builds a one-uvarint message (ack, heartbeat).
func seqFrame(tag byte, seq uint64) []byte {
	p := []byte{tag}
	p = binary.AppendUvarint(p, seq)
	return frame(p)
}

// parseSeqPayload decodes a tagged one-uvarint payload.
func parseSeqPayload(p []byte) (uint64, error) {
	if len(p) < 2 {
		return 0, fmt.Errorf("replica: truncated %q message", p)
	}
	seq, w := binary.Uvarint(p[1:])
	if w <= 0 || 1+w != len(p) {
		return 0, fmt.Errorf("replica: malformed %q message", p[0])
	}
	return seq, nil
}

// parseHello decodes the follower's opening payload.
func parseHello(p []byte) (lastApplied uint64, err error) {
	if len(p) == 0 || p[0] != msgHello {
		return 0, errors.New("replica: stream did not open with hello")
	}
	p = p[1:]
	ver, w := binary.Uvarint(p)
	if w <= 0 {
		return 0, errors.New("replica: malformed hello version")
	}
	if ver > protoVersion {
		return 0, fmt.Errorf("replica: hello speaks protocol %d, this primary speaks %d", ver, protoVersion)
	}
	last, w2 := binary.Uvarint(p[w:])
	if w2 <= 0 || w+w2 != len(p) {
		return 0, errors.New("replica: malformed hello watermark")
	}
	return last, nil
}

// Dialer opens a connection to a primary. net.Dial curried with an address
// is the production dialer; tests inject fault-carrying in-process pairs.
type Dialer func() (net.Conn, error)
