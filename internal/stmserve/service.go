// Package stmserve is the transport-independent service layer that exposes
// transactional operations over any registered STM engine — the repository's
// "STM as a service" front end. It follows the same architectural split the
// engine layer uses between interface and backends: the Service here holds
// the transactional logic and the in-memory keyspace, testable without a
// single socket; the wire codecs (wire.go), the line-protocol server
// (server.go), the HTTP/JSON handler (http.go) and the load generator
// (load.go) are thin layers over it; and the cmd/stmserve and cmd/stmload
// shells only parse flags and wire listeners. A future durable backend slots
// in behind the same Service surface.
//
// The keyspace is fixed at construction: Config.Keys integer-indexed cells,
// each holding an int64 balance (initially Config.Initial), plus a parallel
// membership lane for the set operations. Every operation is one
// transaction on the configured engine, and int64 payloads ride the
// engines' unboxed value lane end to end — a transfer on a zero-allocation
// backend stays zero-allocation through the service layer (transaction
// closures are prebuilt per thread, not per request).
//
// The interesting design problem is the connection→engine.Thread mapping —
// engine Threads are single-goroutine execution contexts and the engines'
// unit of reuse — so the Service supports two executors, selectable by
// Config.Mode and designed to be compared under load (cmd/stmload):
//
//   - ModeThread (goroutine-per-connection): every Session owns a freshly
//     created Thread; thousands of connections mean thousands of Threads.
//     No queueing, no cross-connection interference, but per-node time
//     bases share clock registers modulo Options.Nodes and per-thread
//     engine state multiplies.
//   - ModePool: a bounded set of workers, each owning one long-lived
//     Thread, multiplexes all sessions' requests over one queue. Thread
//     count (and engine-side state) stays fixed no matter how many
//     connections arrive, at the price of queueing delay — which the
//     per-op latency histograms make visible.
package stmserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/latency"
)

// Op identifies one service operation.
type Op uint8

// The service operations. OpPing, OpInfo, OpStats and OpPromote are control
// operations answered without a transaction; everything else runs as exactly
// one transaction on the backing engine.
const (
	OpInvalid Op = iota
	OpPing
	OpInfo
	OpStats
	OpPromote     // seal a standby's replication stream and start serving
	OpRead        // Key → Vals[0]
	OpWrite       // Key, Val
	OpTransfer    // Key (from), Key2 (to), Val (amount)
	OpSnapshot    // Keys → Vals (read-only consistent multi-read)
	OpBatchRead   // Keys → Vals (update-capable transaction)
	OpBatchWrite  // Keys, Vals (parallel arrays) written in one transaction
	OpCAS         // Key, Val (expected), Val2 (new) → Vals[0] = 1 if swapped
	OpSetAdd      // Key → Vals[0] = 1 if newly added
	OpSetRemove   // Key → Vals[0] = 1 if removed
	OpSetContains // Key → Vals[0] = 1 if member
	numOps
)

var opNames = [numOps]string{
	OpInvalid: "invalid", OpPing: "ping", OpInfo: "info", OpStats: "stats",
	OpPromote: "promote",
	OpRead:    "read", OpWrite: "write", OpTransfer: "transfer",
	OpSnapshot: "snapshot", OpBatchRead: "batch-read", OpBatchWrite: "batch-write",
	OpCAS: "cas", OpSetAdd: "set-add", OpSetRemove: "set-remove",
	OpSetContains: "set-contains",
}

// String returns the operation's canonical name (the JSON form).
func (o Op) String() string {
	if o < numOps {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// MarshalText implements encoding.TextMarshaler (the HTTP/JSON form).
func (o Op) MarshalText() ([]byte, error) { return []byte(o.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (o *Op) UnmarshalText(b []byte) error {
	s := string(b)
	for op := OpPing; op < numOps; op++ {
		if opNames[op] == s {
			*o = op
			return nil
		}
	}
	return fmt.Errorf("stmserve: unknown op %q", s)
}

// Request is one decoded operation. The slices are reused across requests by
// the transports (ParseRequest truncates rather than reallocates), so
// handlers must not retain them past the response.
type Request struct {
	Op   Op      `json:"op"`
	Key  int     `json:"key,omitempty"`
	Key2 int     `json:"key2,omitempty"`
	Val  int64   `json:"val,omitempty"`
	Val2 int64   `json:"val2,omitempty"`
	Keys []int   `json:"keys,omitempty"`
	Vals []int64 `json:"vals,omitempty"`
}

// Response is one operation's outcome. Err is the op-level failure channel
// (transport errors travel as Go errors instead); Vals carries numeric
// results — single reads in Vals[0], predicate ops as 0/1 — and Text the
// INFO engine name or the STATS JSON payload.
type Response struct {
	Err  string  `json:"err,omitempty"`
	Text string  `json:"text,omitempty"`
	Vals []int64 `json:"vals,omitempty"`
}

// Reset clears the response for reuse, keeping the Vals capacity.
func (r *Response) Reset() {
	r.Err, r.Text, r.Vals = "", "", r.Vals[:0]
}

// Bool reads a predicate result (CAS, set ops): true iff Vals[0] == 1.
func (r *Response) Bool() bool { return len(r.Vals) > 0 && r.Vals[0] == 1 }

// Executor modes for Config.Mode.
const (
	// ModeThread maps each Session to its own engine.Thread
	// (goroutine-per-connection).
	ModeThread = "thread"
	// ModePool multiplexes all Sessions over a bounded worker pool of
	// long-lived Threads.
	ModePool = "pool"
)

// Config parameterizes a Service. Zero values select the defaults.
type Config struct {
	// Keys is the keyspace size (cells created at construction). Default
	// 1024.
	Keys int `json:"keys"`
	// Initial is every key's starting balance. Transfers conserve the total
	// Keys×Initial, which the conformance suite audits through snapshots.
	// Default 1000.
	Initial int64 `json:"initial"`
	// Mode selects the connection→Thread mapping: ModeThread (default) or
	// ModePool.
	Mode string `json:"mode"`
	// PoolWorkers bounds the worker pool in ModePool. Default
	// runtime.GOMAXPROCS(0).
	PoolWorkers int `json:"pool_workers,omitempty"`
}

func (c Config) withDefaults() Config {
	if c.Keys == 0 {
		c.Keys = 1024
	}
	if c.Initial == 0 {
		c.Initial = 1000
	}
	if c.Mode == "" {
		c.Mode = ModeThread
	}
	if c.PoolWorkers <= 0 {
		c.PoolWorkers = runtime.GOMAXPROCS(0)
	}
	return c
}

// ErrClosed is returned by Session.Exec after the Service shut down.
var ErrClosed = errors.New("stmserve: service closed")

// opMetrics is one operation's service-side telemetry: a latency histogram
// (queueing included in ModePool — that is the point of the comparison) and
// completion counters. All fields are concurrency-safe.
type opMetrics struct {
	hist latency.Histogram
	ops  atomic.Uint64
	errs atomic.Uint64
}

// Service is the in-memory transactional service over one engine instance.
// Create Sessions (one per connection; each is single-goroutine like the
// Thread it may own) and Exec decoded Requests on them.
type Service struct {
	eng     engine.Engine
	cfg     Config
	vals    []engine.Cell // balances, initially cfg.Initial each
	members []engine.Cell // set-membership lane, initially 0
	exec    executor
	metrics [numOps]opMetrics
	nextID  atomic.Int64
	closed  atomic.Bool

	// Replication hooks, installed by the shell (cmd/stmserve) so this
	// package never imports internal/replica: promote seals a standby and
	// brings it up as serving primary (OpPromote), replStats feeds the STATS
	// replication block. Both are optional; a Service without them is simply
	// not part of a replication pair.
	promote   atomic.Pointer[func() error]
	replStats atomic.Pointer[func() *ReplStats]
}

// ReplStats is the replication block of a STATS snapshot — a role-tagged
// union of primary-side (followers, lag, resyncs, acks) and follower-side
// (applied watermark, reconnects, snapshot installs) telemetry. The shell
// that wires the replication layer installs a provider via SetReplStats.
type ReplStats struct {
	// Role is "primary" or "follower".
	Role string `json:"role"`
	// AppendedSeq is the local WAL high-water mark (both roles).
	AppendedSeq uint64 `json:"appended_seq"`

	// Primary-side fields.
	Followers   int    `json:"followers,omitempty"` // live streams
	MinAckedSeq uint64 `json:"min_acked_seq,omitempty"`
	LagSeqs     uint64 `json:"lag_seqs,omitempty"`  // appended − slowest ack
	LagBytes    int64  `json:"lag_bytes,omitempty"` // queued bytes, all streams
	Resyncs     uint64 `json:"resyncs,omitempty"`   // snapshot resyncs forced
	Accepts     uint64 `json:"accepts,omitempty"`   // follower streams accepted
	Disconnects uint64 `json:"disconnects,omitempty"`

	// Follower-side fields.
	Connected  bool   `json:"connected,omitempty"`
	Reconnects uint64 `json:"reconnects,omitempty"`
	Snapshots  uint64 `json:"snapshots,omitempty"` // snapshot installs
	Promoted   bool   `json:"promoted,omitempty"`
}

// SetPromote installs the hook OpPromote invokes (nil uninstalls). The shell
// that created a replication follower points this at its Promote method.
func (s *Service) SetPromote(fn func() error) {
	if fn == nil {
		s.promote.Store(nil)
		return
	}
	s.promote.Store(&fn)
}

// SetReplStats installs the provider for the STATS replication block (nil
// uninstalls).
func (s *Service) SetReplStats(fn func() *ReplStats) {
	if fn == nil {
		s.replStats.Store(nil)
		return
	}
	s.replStats.Store(&fn)
}

// New builds a Service over eng. The engine must be freshly constructed and
// unshared: the Service owns its threads and cells.
func New(eng engine.Engine, cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if cfg.Keys < 1 {
		return nil, fmt.Errorf("stmserve: Keys = %d, must be ≥ 1", cfg.Keys)
	}
	if cfg.Mode != ModeThread && cfg.Mode != ModePool {
		return nil, fmt.Errorf("stmserve: unknown mode %q (want %q or %q)", cfg.Mode, ModeThread, ModePool)
	}
	s := &Service{
		eng:     eng,
		cfg:     cfg,
		vals:    make([]engine.Cell, cfg.Keys),
		members: make([]engine.Cell, cfg.Keys),
	}
	for i := range s.vals {
		// int is the canonical unboxed-lane payload type (wordstm tags it
		// immediately); Get[int64] reads it back through the lane.
		s.vals[i] = eng.NewCell(int(cfg.Initial))
		s.members[i] = eng.NewCell(0)
	}
	switch cfg.Mode {
	case ModeThread:
		s.exec = &threadExecutor{svc: s}
	case ModePool:
		s.exec = newPoolExecutor(s, cfg.PoolWorkers)
	}
	return s, nil
}

// Engine returns the backing engine.
func (s *Service) Engine() engine.Engine { return s.eng }

// Keys returns the keyspace size.
func (s *Service) Keys() int { return s.cfg.Keys }

// Mode returns the connection→Thread mapping in effect.
func (s *Service) Mode() string { return s.cfg.Mode }

// Close shuts the service down: subsequent Exec calls (and pool requests in
// flight past their handoff) fail with ErrClosed. Close after every session
// is quiesced for a clean shutdown. When the engine is durable, the WAL is
// flushed and closed last — after the executor has stopped accepting work —
// so every acknowledged commit is on disk before Close returns.
func (s *Service) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.exec.close()
	if d, ok := s.eng.(engine.Durable); ok {
		return d.WALClose()
	}
	return nil
}

// nextThreadID hands out dense engine thread ids.
func (s *Service) nextThreadID() int { return int(s.nextID.Add(1) - 1) }

// Session is one connection's execution context. Like the engine Thread it
// may own, a Session must be driven by a single goroutine at a time.
type Session struct {
	svc  *Service
	sess execSession
}

// Session creates a connection context. In ModeThread it owns a fresh
// engine.Thread; in ModePool it is a lightweight handle onto the shared
// queue.
func (s *Service) Session() *Session {
	return &Session{svc: s, sess: s.exec.session()}
}

// Close releases the session's executor resources.
func (ss *Session) Close() { ss.sess.close() }

// Exec runs one request to completion, filling resp. Operation failures are
// reported both in resp.Err and as the returned error (they are the same
// failure; transports encode resp, programmatic callers branch on the
// error). Exec records the op's service-side latency and outcome counters.
func (ss *Session) Exec(req *Request, resp *Response) error {
	resp.Reset()
	svc := ss.svc
	if svc.closed.Load() {
		resp.Err = ErrClosed.Error()
		return ErrClosed
	}
	op := req.Op
	if op <= OpInvalid || op >= numOps {
		err := fmt.Errorf("stmserve: invalid op %d", op)
		resp.Err = err.Error()
		svc.metrics[OpInvalid].errs.Add(1)
		return err
	}
	start := time.Now()
	var err error
	switch op {
	case OpPing:
	case OpInfo:
		resp.Text = svc.eng.Name()
		resp.Vals = append(resp.Vals, int64(svc.cfg.Keys), svc.cfg.Initial)
	case OpStats:
		var data []byte
		if data, err = json.Marshal(svc.Stats()); err == nil {
			resp.Text = string(data)
		}
	case OpPromote:
		if fn := svc.promote.Load(); fn != nil {
			err = (*fn)()
		} else {
			err = errors.New("stmserve: not a standby (no promote hook installed)")
		}
	default:
		err = ss.sess.do(req, resp)
	}
	m := &svc.metrics[op]
	m.hist.Record(time.Since(start))
	if err != nil {
		m.errs.Add(1)
		resp.Err = err.Error()
		return err
	}
	m.ops.Add(1)
	return nil
}

// OpStat is one operation's service-side telemetry snapshot.
type OpStat struct {
	Op      string           `json:"op"`
	Ops     uint64           `json:"ops"`
	Errs    uint64           `json:"errs,omitempty"`
	Latency *latency.Summary `json:"latency_ns,omitempty"`
}

// Stats is the service's observability snapshot: per-op counters and
// latency percentiles plus the engine's own counters (abort taxonomy
// included).
type Stats struct {
	Engine      string                 `json:"engine"`
	Mode        string                 `json:"mode"`
	Keys        int                    `json:"keys"`
	Ops         uint64                 `json:"ops"`
	Errs        uint64                 `json:"errs,omitempty"`
	PerOp       []OpStat               `json:"per_op,omitempty"`
	EngineStats engine.Stats           `json:"engine_stats"`
	Durability  *engine.DurabilityInfo `json:"durability,omitempty"`
	Replication *ReplStats             `json:"replication,omitempty"`
}

// Stats snapshots the service telemetry. The per-op counters and histograms
// are atomic and always exact; the embedded engine counters are the
// backends' deliberately unsynchronized per-thread tallies, exact only
// while no transactions run (end of run, after Shutdown) and approximate
// when sampled live.
func (s *Service) Stats() Stats {
	st := Stats{
		Engine:      s.eng.Name(),
		Mode:        s.cfg.Mode,
		Keys:        s.cfg.Keys,
		EngineStats: s.eng.Stats(),
	}
	if d, ok := s.eng.(engine.Durable); ok {
		info := d.DurabilityInfo()
		st.Durability = &info
	}
	if fn := s.replStats.Load(); fn != nil {
		st.Replication = (*fn)()
	}
	for op := OpInvalid; op < numOps; op++ {
		m := &s.metrics[op]
		ops, errs := m.ops.Load(), m.errs.Load()
		sum := m.hist.Load().Summary()
		if ops == 0 && errs == 0 {
			continue
		}
		st.Ops += ops
		st.Errs += errs
		st.PerOp = append(st.PerOp, OpStat{
			Op: op.String(), Ops: ops, Errs: errs, Latency: sum,
		})
	}
	return st
}

// applier owns one engine.Thread plus transaction closures prebuilt against
// its request/response slots — the same hoisted-closure idiom the workloads
// use, so a steady-state operation allocates nothing in the service layer
// and the engines' zero-allocation fast paths survive end to end.
type applier struct {
	svc  *Service
	th   engine.Thread
	req  *Request
	resp *Response

	read, write, transfer, snapshot, batchRead, batchWrite,
	cas, setAdd, setRemove, setContains func(engine.Txn) error
}

func newApplier(svc *Service, th engine.Thread) *applier {
	a := &applier{svc: svc, th: th}
	vals, members := svc.vals, svc.members
	// Aborted attempts are retried, re-running the closure — so every closure
	// that produces results truncates resp.Vals at attempt start; a retry
	// replaces the aborted attempt's output instead of appending to it.
	a.read = func(tx engine.Txn) error {
		v, err := engine.Get[int64](tx, vals[a.req.Key])
		if err != nil {
			return err
		}
		a.resp.Vals = append(a.resp.Vals[:0], v)
		return nil
	}
	a.write = func(tx engine.Txn) error {
		return engine.Set(tx, vals[a.req.Key], a.req.Val)
	}
	a.transfer = func(tx engine.Txn) error {
		from, to, amt := vals[a.req.Key], vals[a.req.Key2], a.req.Val
		fv, err := engine.Get[int64](tx, from)
		if err != nil {
			return err
		}
		tv, err := engine.Get[int64](tx, to)
		if err != nil {
			return err
		}
		if err := engine.Set(tx, from, fv-amt); err != nil {
			return err
		}
		return engine.Set(tx, to, tv+amt)
	}
	readKeys := func(tx engine.Txn) error {
		a.resp.Vals = a.resp.Vals[:0]
		for _, k := range a.req.Keys {
			v, err := engine.Get[int64](tx, vals[k])
			if err != nil {
				return err
			}
			a.resp.Vals = append(a.resp.Vals, v)
		}
		return nil
	}
	a.snapshot = readKeys
	a.batchRead = readKeys
	a.batchWrite = func(tx engine.Txn) error {
		for i, k := range a.req.Keys {
			if err := engine.Set(tx, vals[k], a.req.Vals[i]); err != nil {
				return err
			}
		}
		return nil
	}
	a.cas = func(tx engine.Txn) error {
		c := vals[a.req.Key]
		v, err := engine.Get[int64](tx, c)
		if err != nil {
			return err
		}
		if v != a.req.Val {
			a.resp.Vals = append(a.resp.Vals[:0], 0)
			return nil
		}
		if err := engine.Set(tx, c, a.req.Val2); err != nil {
			return err
		}
		a.resp.Vals = append(a.resp.Vals[:0], 1)
		return nil
	}
	member := func(tx engine.Txn, want, set int64) error {
		c := members[a.req.Key]
		v, err := engine.Get[int64](tx, c)
		if err != nil {
			return err
		}
		if v != want {
			a.resp.Vals = append(a.resp.Vals[:0], 0)
			return nil
		}
		if err := engine.Set(tx, c, set); err != nil {
			return err
		}
		a.resp.Vals = append(a.resp.Vals[:0], 1)
		return nil
	}
	a.setAdd = func(tx engine.Txn) error { return member(tx, 0, 1) }
	a.setRemove = func(tx engine.Txn) error { return member(tx, 1, 0) }
	a.setContains = func(tx engine.Txn) error {
		v, err := engine.Get[int64](tx, members[a.req.Key])
		if err != nil {
			return err
		}
		if v != 0 {
			a.resp.Vals = append(a.resp.Vals[:0], 1)
		} else {
			a.resp.Vals = append(a.resp.Vals[:0], 0)
		}
		return nil
	}
	return a
}

// checkKey validates a single key index against the keyspace.
func (a *applier) checkKey(k int) error {
	if k < 0 || k >= len(a.svc.vals) {
		return fmt.Errorf("stmserve: key %d out of range [0, %d)", k, len(a.svc.vals))
	}
	return nil
}

func (a *applier) checkKeys(ks []int) error {
	if len(ks) == 0 {
		return errors.New("stmserve: batch op without keys")
	}
	for _, k := range ks {
		if err := a.checkKey(k); err != nil {
			return err
		}
	}
	return nil
}

// do validates and executes one transactional request on the applier's
// Thread. It is the single dispatch point both executors share.
func (a *applier) do(req *Request, resp *Response) error {
	a.req, a.resp = req, resp
	defer func() { a.req, a.resp = nil, nil }()
	switch req.Op {
	case OpRead:
		if err := a.checkKey(req.Key); err != nil {
			return err
		}
		return a.th.RunReadOnly(a.read)
	case OpWrite:
		if err := a.checkKey(req.Key); err != nil {
			return err
		}
		return a.th.Run(a.write)
	case OpTransfer:
		if err := a.checkKey(req.Key); err != nil {
			return err
		}
		if err := a.checkKey(req.Key2); err != nil {
			return err
		}
		if req.Key == req.Key2 {
			return fmt.Errorf("stmserve: transfer from key %d to itself", req.Key)
		}
		return a.th.Run(a.transfer)
	case OpSnapshot:
		if err := a.checkKeys(req.Keys); err != nil {
			return err
		}
		return a.th.RunReadOnly(a.snapshot)
	case OpBatchRead:
		if err := a.checkKeys(req.Keys); err != nil {
			return err
		}
		return a.th.Run(a.batchRead)
	case OpBatchWrite:
		if err := a.checkKeys(req.Keys); err != nil {
			return err
		}
		if len(req.Vals) != len(req.Keys) {
			return fmt.Errorf("stmserve: batch write with %d keys but %d values", len(req.Keys), len(req.Vals))
		}
		return a.th.Run(a.batchWrite)
	case OpCAS:
		if err := a.checkKey(req.Key); err != nil {
			return err
		}
		return a.th.Run(a.cas)
	case OpSetAdd:
		if err := a.checkKey(req.Key); err != nil {
			return err
		}
		return a.th.Run(a.setAdd)
	case OpSetRemove:
		if err := a.checkKey(req.Key); err != nil {
			return err
		}
		return a.th.Run(a.setRemove)
	case OpSetContains:
		if err := a.checkKey(req.Key); err != nil {
			return err
		}
		return a.th.RunReadOnly(a.setContains)
	default:
		return fmt.Errorf("stmserve: op %v is not transactional", req.Op)
	}
}
