package norec

// The striped variant: NOrec with a partitioned sequence lock. Plain NOrec
// serializes every update commit on one global sequence-lock cache line —
// the extreme single-counter design, and (per ROADMAP) the probe target for
// where value-based validation stops being the bottleneck. StripedSTM
// shards that lock: every cell belongs to one of stripeCount stripes (round
// robin at creation), each stripe carries its own sequence lock, and a
// transaction validates only the stripes it touched. Disjoint commits bump
// disjoint cache lines and proceed in parallel.
//
// Consistency protocol:
//
//   - Reads keep one snapshot per touched stripe. All per-stripe snapshots
//     are (re)established together — establish() waits for every touched
//     stripe to be quiescent, re-validates the whole value log, and
//     confirms no touched stripe moved during the scan — so the log is
//     always consistent at one common point, the latest establishment. A
//     read in a stripe whose sequence is unchanged since that point returns
//     a value that was current at it; a moved (or locked) stripe triggers
//     re-establishment, which is where "validate only touched stripes"
//     replaces NOrec's global revalidation.
//
//   - Commit locks the write stripes in ascending index order (no deadlock
//     among lockers), then validates the read log: held stripes are stable
//     by ownership, foreign stripes are checked under the quiescence
//     re-check loop, and a stripe that stays locked by someone else aborts
//     the commit after a bounded spin — waiting forever could deadlock with
//     a holder that is validating against one of *our* stripes. After
//     validation the buffered writes land in the cells and every held
//     stripe is released with +2; an aborted commit restores the exact
//     pre-lock sequence values (no writes happened, so readers that
//     snapshotted them stay valid).
//
// The cross-commit serializability argument is the TL2-shaped one: for two
// transactions to miss each other's writes, each would have to validate its
// reads before the other locked its write stripes, and each validation
// observes the other's write stripes unlocked and unchanged — which orders
// each validation before the other's lock acquisition, a cycle.

import (
	"errors"
	"math/bits"
	"runtime"
	"sync/atomic"

	"repro/internal/abort"
	"repro/internal/val"
)

// stripeCount is the number of sequence-lock stripes. A power of two; 64
// stripes × one cache line each keep a universe's lock table at 4 KiB while
// making same-stripe collisions rare for the bench workloads' cell counts.
const stripeCount = 64

const stripeMask = stripeCount - 1

// stripe is one padded sequence lock (even = quiescent, odd = locked).
type stripe struct {
	seq atomic.Int64
	_   [56]byte
}

// waitQuiescent spins until the stripe is even and returns its value.
func (s *stripe) waitQuiescent() int64 {
	for i := 0; ; i++ {
		v := s.seq.Load()
		if v&1 == 0 {
			return v
		}
		if i > 32 {
			runtime.Gosched()
		}
	}
}

// StripedSTM is a NOrec universe with a partitioned sequence lock.
type StripedSTM struct {
	stripes [stripeCount]stripe
}

// NewStriped creates a striped universe with all stripe locks at zero.
func NewStriped() *StripedSTM { return &StripedSTM{} }

// stripeIndex maps an object to its stripe.
func stripeIndex(o *Object) uint { return uint(o.sid) & stripeMask }

// STx is one transaction attempt against a striped universe. Like the plain
// Tx it is recycled by its thread: nothing an attempt builds escapes it.
type STx struct {
	stm      *StripedSTM
	readOnly bool
	boxed    bool
	reads    []readEntry
	writeSet
	// touched marks stripes with a valid snapshot; snaps[s] is the stripe's
	// sequence value at the latest establishment (one common consistency
	// point for all touched stripes).
	touched uint64
	snaps   [stripeCount]int64
	// lockVals[s] is the pre-lock (even) sequence value of each stripe held
	// during commit, for release or restore.
	lockVals [stripeCount]int64
}

func (tx *STx) reset(stm *StripedSTM, readOnly bool) {
	tx.stm = stm
	tx.readOnly = readOnly
	tx.boxed = false
	tx.reads = tx.reads[:0]
	tx.writeSet.reset()
	tx.touched = 0
}

// establish (re)snapshots every touched stripe plus newBits at one common
// quiescent point. The moved bitmap marks touched stripes whose sequence
// left our snapshot; when it is empty — the dominant case for a wide scan's
// first touch of each new stripe — the old snapshots extend to the new
// common point for free and the value log is never walked. When stripes did
// move, only entries whose stripe bit is set in moved are re-validated (an
// unchanged stripe's cells are untouched), which keeps a transaction that
// fans out over many stripes linear in its reads instead of quadratic.
// Called with no stripe locks held, so unbounded waiting cannot deadlock.
func (tx *STx) establish(newBits uint64) error {
	want := tx.touched | newBits
	for {
		var cur [stripeCount]int64
		var moved uint64
		for m := want; m != 0; m &= m - 1 {
			s := uint(bits.TrailingZeros64(m))
			cur[s] = tx.stm.stripes[s].waitQuiescent()
			if tx.touched&(uint64(1)<<s) != 0 && cur[s] != tx.snaps[s] {
				moved |= uint64(1) << s
			}
		}
		// Entries only exist in touched stripes, whose snaps are valid.
		if moved != 0 {
			for i := range tx.reads {
				r := &tx.reads[i]
				if moved&(uint64(1)<<stripeIndex(r.obj)) == 0 {
					continue
				}
				if !stillValid(r) {
					return errAbortSnapshot
				}
			}
		}
		// The stability re-check stays even when nothing moved: a committer
		// spanning two want stripes could land between their first-pass
		// reads, leaving cur a torn cross-stripe point.
		stable := true
		for m := want; m != 0; m &= m - 1 {
			s := uint(bits.TrailingZeros64(m))
			if tx.stm.stripes[s].seq.Load() != cur[s] {
				stable = false
				break
			}
		}
		if stable {
			for m := want; m != 0; m &= m - 1 {
				s := uint(bits.TrailingZeros64(m))
				tx.snaps[s] = cur[s]
			}
			tx.touched = want
			return nil
		}
	}
}

// Read returns o's value in the transaction's snapshot as `any`.
func (tx *STx) Read(o *Object) (any, error) {
	v, err := tx.ReadValue(o)
	if err != nil {
		return nil, err
	}
	return v.Load(), nil
}

// ReadValue returns o's value in the transaction's snapshot, re-establishing
// the per-stripe snapshots whenever o's stripe has moved.
func (tx *STx) ReadValue(o *Object) (val.Value, error) {
	if idx, ok := tx.lookup(o); ok {
		return tx.writes[idx].v, nil
	}
	s := stripeIndex(o)
	bit := uint64(1) << s
	for {
		if tx.touched&bit == 0 || tx.stm.stripes[s].seq.Load() != tx.snaps[s] {
			if err := tx.establish(bit); err != nil {
				return val.Value{}, err
			}
			continue
		}
		num, box := o.cell.Snapshot()
		if tx.stm.stripes[s].seq.Load() != tx.snaps[s] {
			continue // a commit landed between the loads; re-establish
		}
		tx.reads = append(tx.reads, readEntry{obj: o, num: num, box: box})
		return val.Decode(num, box), nil
	}
}

// Write buffers the new value; it becomes visible at commit.
func (tx *STx) Write(o *Object, v any) error {
	return tx.WriteValue(o, val.OfAny(v))
}

// WriteValue buffers the new typed value; numeric-lane values never box.
func (tx *STx) WriteValue(o *Object, v val.Value) error {
	if tx.readOnly {
		return ErrReadOnly
	}
	if v.Kind() == val.KindBoxed {
		tx.boxed = true
	}
	if idx, ok := tx.lookup(o); ok {
		tx.writes[idx].v = v
		return nil
	}
	tx.add(o, v)
	return nil
}

// commit locks the write stripes, validates the read log, writes back, and
// releases. Read-only (and write-free) transactions are already consistent
// at the latest establishment and commit without touching any lock.
func (tx *STx) commit() error {
	if len(tx.writes) == 0 {
		return nil
	}
	var wmask uint64
	for i := range tx.writes {
		wmask |= uint64(1) << stripeIndex(tx.writes[i].obj)
	}
	// Phase 1: lock write stripes in ascending index order. Spinning on a
	// foreign holder here cannot deadlock: holders only wait (boundedly) in
	// validation, never on lower-indexed locks.
	for m := wmask; m != 0; m &= m - 1 {
		s := uint(bits.TrailingZeros64(m))
		st := &tx.stm.stripes[s]
		for i := 0; ; i++ {
			v := st.seq.Load()
			if v&1 == 0 && st.seq.CompareAndSwap(v, v+1) {
				tx.lockVals[s] = v
				break
			}
			if i > 32 {
				runtime.Gosched()
			}
		}
	}
	// Phase 2: validate the read log. Entries in held stripes are stable by
	// ownership; foreign read stripes are re-checked for quiescence and
	// stability around the scan, with a bounded number of rounds — a stripe
	// held by a committer that is itself validating against one of our
	// stripes must resolve by one of us aborting.
	var rmask uint64
	for i := range tx.reads {
		rmask |= uint64(1) << stripeIndex(tx.reads[i].obj)
	}
	foreign := rmask &^ wmask
	var cur [stripeCount]int64
rounds:
	for round := 0; ; round++ {
		if round >= 64 {
			tx.release(wmask, false)
			return errAbortContention
		}
		for m := foreign; m != 0; m &= m - 1 {
			s := uint(bits.TrailingZeros64(m))
			v := tx.stm.stripes[s].seq.Load()
			if v&1 == 1 {
				runtime.Gosched()
				continue rounds
			}
			cur[s] = v
		}
		for i := range tx.reads {
			if !stillValid(&tx.reads[i]) {
				tx.release(wmask, false)
				return errAbortValidation
			}
		}
		for m := foreign; m != 0; m &= m - 1 {
			s := uint(bits.TrailingZeros64(m))
			if tx.stm.stripes[s].seq.Load() != cur[s] {
				continue rounds
			}
		}
		break
	}
	// Phase 3: write back (numeric payloads allocation-free), then release
	// each stripe with the next even value.
	for i := range tx.writes {
		w := &tx.writes[i]
		w.obj.cell.Store(w.v)
	}
	tx.release(wmask, true)
	return nil
}

// release unlocks every stripe in mask: committed stripes advance by two,
// aborted ones restore the exact pre-lock value (no writes happened, so
// concurrent logs snapshotted at it remain valid).
func (tx *STx) release(mask uint64, committed bool) {
	for m := mask; m != 0; m &= m - 1 {
		s := uint(bits.TrailingZeros64(m))
		v := tx.lockVals[s]
		if committed {
			v += 2
		}
		tx.stm.stripes[s].seq.Store(v)
	}
}

// SThread is a worker context for the striped universe. It owns the one STx
// it recycles across attempts — single goroutine only.
type SThread struct {
	stm          *StripedSTM
	tx           STx
	boxedCommits uint64
	aborts       abort.Counts
}

// Thread creates a worker context.
func (s *StripedSTM) Thread(id int) *SThread { return &SThread{stm: s} }

// BoxedCommits returns how many of this thread's commits wrote at least one
// escape-hatch (boxed) payload.
func (t *SThread) BoxedCommits() uint64 { return t.boxedCommits }

// AbortCounts returns this thread's aborts classified by reason.
func (t *SThread) AbortCounts() abort.Counts { return t.aborts }

// Run executes fn transactionally, retrying on aborts.
func (t *SThread) Run(fn func(*STx) error) error { return t.run(false, fn) }

// RunReadOnly executes fn as a read-only transaction (writes rejected).
func (t *SThread) RunReadOnly(fn func(*STx) error) error { return t.run(true, fn) }

func (t *SThread) run(readOnly bool, fn func(*STx) error) error {
	tx := &t.tx
	for attempt := 0; ; attempt++ {
		tx.reset(t.stm, readOnly)
		err := fn(tx)
		if err == nil {
			err = tx.commit()
		}
		if err == nil {
			if tx.boxed {
				t.boxedCommits++
			}
			return nil
		}
		if !errors.Is(err, ErrAborted) {
			return err
		}
		t.aborts.Observe(err)
		if attempt > 2 {
			runtime.Gosched()
		}
	}
}
