package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/hwclock"
	"repro/internal/timebase"
)

// testBases returns a fresh runtime constructor per time base so every
// engine test runs against counters, perfect clocks, and deviating clocks.
func testBases(t *testing.T) map[string]func(cfg Config) *Runtime {
	t.Helper()
	return map[string]func(cfg Config) *Runtime{
		"counter": func(cfg Config) *Runtime {
			cfg.TimeBase = timebase.NewSharedCounter()
			return MustRuntime(cfg)
		},
		"tl2counter": func(cfg Config) *Runtime {
			cfg.TimeBase = timebase.NewTL2Counter()
			return MustRuntime(cfg)
		},
		"perfect": func(cfg Config) *Runtime {
			cfg.TimeBase = timebase.NewPerfectClock(hwclock.New(hwclock.IdealConfig(8)))
			return MustRuntime(cfg)
		},
		"extsync": func(cfg Config) *Runtime {
			dev := hwclock.New(hwclock.Config{
				TickHz: 1_000_000_000, Nodes: 8, MaxOffsetTicks: 2000, JitterTicks: 100, Seed: 17,
			})
			ec, err := timebase.NewExtSyncClock(dev, dev.Config().MaxErrorTicks())
			if err != nil {
				t.Fatal(err)
			}
			cfg.TimeBase = ec
			return MustRuntime(cfg)
		},
	}
}

func forAllBases(t *testing.T, cfg Config, fn func(t *testing.T, rt *Runtime)) {
	for name, mk := range testBases(t) {
		t.Run(name, func(t *testing.T) {
			fn(t, mk(cfg))
		})
	}
}

func TestReadInitialValue(t *testing.T) {
	forAllBases(t, Config{}, func(t *testing.T, rt *Runtime) {
		o := NewObject(41)
		th := rt.Thread(0)
		err := th.Run(func(tx *Tx) error {
			v, err := tx.Read(o)
			if err != nil {
				return err
			}
			if v.(int) != 41 {
				t.Errorf("read %v, want 41", v)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestWriteThenReadBack(t *testing.T) {
	forAllBases(t, Config{}, func(t *testing.T, rt *Runtime) {
		o := NewObject(0)
		th := rt.Thread(0)
		err := th.Run(func(tx *Tx) error {
			if err := tx.Write(o, 7); err != nil {
				return err
			}
			v, err := tx.Read(o)
			if err != nil {
				return err
			}
			if v.(int) != 7 {
				t.Errorf("read-own-write = %v, want 7", v)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		// Committed value visible to a later transaction.
		err = th.Run(func(tx *Tx) error {
			v, err := tx.Read(o)
			if err != nil {
				return err
			}
			if v.(int) != 7 {
				t.Errorf("post-commit read = %v, want 7", v)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestReadThenWriteUpgrade(t *testing.T) {
	forAllBases(t, Config{}, func(t *testing.T, rt *Runtime) {
		o := NewObject(10)
		th := rt.Thread(0)
		err := th.Run(func(tx *Tx) error {
			v, err := tx.Read(o)
			if err != nil {
				return err
			}
			if err := tx.Write(o, v.(int)+1); err != nil {
				return err
			}
			v, err = tx.Read(o)
			if err != nil {
				return err
			}
			if v.(int) != 11 {
				t.Errorf("after upgrade read = %v, want 11", v)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestWriteTwiceLastWins(t *testing.T) {
	forAllBases(t, Config{}, func(t *testing.T, rt *Runtime) {
		o := NewObject(0)
		th := rt.Thread(0)
		if err := th.Run(func(tx *Tx) error {
			if err := tx.Write(o, 1); err != nil {
				return err
			}
			return tx.Write(o, 2)
		}); err != nil {
			t.Fatal(err)
		}
		if got := mustReadInt(t, rt, o); got != 2 {
			t.Errorf("value = %d, want 2", got)
		}
	})
}

func TestAbortDiscardsWrites(t *testing.T) {
	forAllBases(t, Config{}, func(t *testing.T, rt *Runtime) {
		o := NewObject(5)
		th := rt.Thread(0)
		sentinel := errors.New("rollback")
		err := th.Run(func(tx *Tx) error {
			if err := tx.Write(o, 99); err != nil {
				return err
			}
			return sentinel
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("Run = %v, want sentinel", err)
		}
		if got := mustReadInt(t, rt, o); got != 5 {
			t.Errorf("value after rollback = %d, want 5", got)
		}
	})
}

func TestReadOnlyRejectsWrites(t *testing.T) {
	forAllBases(t, Config{}, func(t *testing.T, rt *Runtime) {
		o := NewObject(1)
		th := rt.Thread(0)
		err := th.RunReadOnly(func(tx *Tx) error {
			return tx.Write(o, 2)
		})
		if !errors.Is(err, ErrReadOnly) {
			t.Fatalf("write in read-only tx = %v, want ErrReadOnly", err)
		}
		if got := mustReadInt(t, rt, o); got != 1 {
			t.Errorf("value = %d, want 1", got)
		}
	})
}

func TestSequentialCounterIncrements(t *testing.T) {
	forAllBases(t, Config{}, func(t *testing.T, rt *Runtime) {
		o := NewObject(0)
		th := rt.Thread(0)
		const n = 100
		for i := 0; i < n; i++ {
			if err := th.Run(func(tx *Tx) error {
				v, err := tx.Read(o)
				if err != nil {
					return err
				}
				return tx.Write(o, v.(int)+1)
			}); err != nil {
				t.Fatal(err)
			}
		}
		if got := mustReadInt(t, rt, o); got != n {
			t.Errorf("counter = %d, want %d", got, n)
		}
		if s := rt.Stats(); s.Commits != n+1 {
			t.Errorf("commits = %d, want %d", s.Commits, n+1)
		}
	})
}

func TestConcurrentIncrementsAreAtomic(t *testing.T) {
	forAllBases(t, Config{}, func(t *testing.T, rt *Runtime) {
		o := NewObject(0)
		const workers, per = 8, 200
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				th := rt.Thread(id)
				for i := 0; i < per; i++ {
					if err := th.Run(func(tx *Tx) error {
						v, err := tx.Read(o)
						if err != nil {
							return err
						}
						return tx.Write(o, v.(int)+1)
					}); err != nil {
						t.Errorf("worker %d: %v", id, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if got := mustReadInt(t, rt, o); got != workers*per {
			t.Errorf("counter = %d, want %d (lost updates!)", got, workers*per)
		}
	})
}

// TestBankConservation is the central consistency property: concurrent
// transfers must never let any transaction — update or read-only — observe
// a total that differs from the invariant.
func TestBankConservation(t *testing.T) {
	forAllBases(t, Config{}, func(t *testing.T, rt *Runtime) {
		const accounts, initial = 16, 1000
		const workers, per = 6, 150
		objs := make([]*Object, accounts)
		for i := range objs {
			objs[i] = NewObject(initial)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				th := rt.Thread(id)
				for i := 0; i < per; i++ {
					from, to := (id+i)%accounts, (id+i*7+1)%accounts
					if from == to {
						to = (to + 1) % accounts
					}
					if err := th.Run(func(tx *Tx) error {
						fv, err := tx.Read(objs[from])
						if err != nil {
							return err
						}
						tv, err := tx.Read(objs[to])
						if err != nil {
							return err
						}
						if err := tx.Write(objs[from], fv.(int)-1); err != nil {
							return err
						}
						return tx.Write(objs[to], tv.(int)+1)
					}); err != nil {
						t.Errorf("transfer: %v", err)
						return
					}
					// Interleave read-only audits that must always see the
					// conserved total.
					if i%10 == 0 {
						if err := th.RunReadOnly(func(tx *Tx) error {
							sum := 0
							for _, o := range objs {
								v, err := tx.Read(o)
								if err != nil {
									return err
								}
								sum += v.(int)
							}
							if sum != accounts*initial {
								t.Errorf("audit saw total %d, want %d", sum, accounts*initial)
							}
							return nil
						}); err != nil {
							t.Errorf("audit: %v", err)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		total := 0
		th := rt.Thread(100)
		if err := th.RunReadOnly(func(tx *Tx) error {
			total = 0
			for _, o := range objs {
				v, err := tx.Read(o)
				if err != nil {
					return err
				}
				total += v.(int)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if total != accounts*initial {
			t.Fatalf("final total = %d, want %d", total, accounts*initial)
		}
	})
}

// TestSnapshotNeverTearsPair verifies that two objects always updated
// together are never observed out of sync — even mid-flight, even by
// update transactions.
func TestSnapshotNeverTearsPair(t *testing.T) {
	forAllBases(t, Config{}, func(t *testing.T, rt *Runtime) {
		a, b := NewObject(0), NewObject(0)
		stop := make(chan struct{})
		var writer, readers sync.WaitGroup
		writer.Add(1)
		go func() {
			defer writer.Done()
			th := rt.Thread(0)
			for i := 1; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := th.Run(func(tx *Tx) error {
					if err := tx.Write(a, i); err != nil {
						return err
					}
					return tx.Write(b, -i)
				}); err != nil {
					t.Errorf("writer: %v", err)
					return
				}
			}
		}()
		for w := 1; w <= 3; w++ {
			readers.Add(1)
			go func(id int) {
				defer readers.Done()
				th := rt.Thread(id)
				for i := 0; i < 300; i++ {
					ro := i%2 == 0
					check := func(tx *Tx) error {
						av, err := tx.Read(a)
						if err != nil {
							return err
						}
						bv, err := tx.Read(b)
						if err != nil {
							return err
						}
						if av.(int)+bv.(int) != 0 {
							t.Errorf("torn snapshot: a=%d b=%d", av, bv)
						}
						return nil
					}
					var err error
					if ro {
						err = th.RunReadOnly(check)
					} else {
						err = th.Run(check)
					}
					if err != nil {
						t.Errorf("reader: %v", err)
						return
					}
				}
			}(w)
		}
		readers.Wait()
		close(stop)
		writer.Wait()
	})
}

func TestWriteWriteConflictResolved(t *testing.T) {
	forAllBases(t, Config{}, func(t *testing.T, rt *Runtime) {
		o := NewObject(0)
		const workers, per = 4, 100
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				th := rt.Thread(id)
				for i := 0; i < per; i++ {
					if err := th.Run(func(tx *Tx) error {
						return tx.Write(o, id*1000+i)
					}); err != nil {
						t.Errorf("worker %d: %v", id, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		s := rt.Stats()
		if s.Commits != workers*per {
			t.Errorf("commits = %d, want %d", s.Commits, workers*per)
		}
	})
}

func TestTxHandleAfterCompletion(t *testing.T) {
	forAllBases(t, Config{}, func(t *testing.T, rt *Runtime) {
		o := NewObject(0)
		th := rt.Thread(0)
		var leaked *Tx
		if err := th.Run(func(tx *Tx) error {
			leaked = tx
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := leaked.Read(o); !errors.Is(err, ErrNotActive) {
			t.Errorf("Read on committed tx = %v, want ErrNotActive", err)
		}
		if err := leaked.Write(o, 1); !errors.Is(err, ErrNotActive) {
			t.Errorf("Write on committed tx = %v, want ErrNotActive", err)
		}
	})
}

func TestStatusAndCauseStrings(t *testing.T) {
	for s, want := range map[Status]string{
		StatusActive: "active", StatusCommitting: "committing",
		StatusCommitted: "committed", StatusAborted: "aborted", Status(99): "invalid",
	} {
		if got := s.String(); got != want {
			t.Errorf("Status(%d).String() = %q, want %q", s, got, want)
		}
	}
	for c, want := range map[AbortCause]string{
		CauseNone: "none", CauseSnapshot: "snapshot", CauseValidation: "validation",
		CauseConflict: "conflict", CauseExternal: "external", AbortCause(99): "invalid",
	} {
		if got := c.String(); got != want {
			t.Errorf("AbortCause(%d).String() = %q, want %q", c, got, want)
		}
	}
	for d, want := range map[Decision]string{
		Wait: "wait", AbortEnemy: "abort-enemy", AbortSelf: "abort-self", Decision(99): "invalid",
	} {
		if got := d.String(); got != want {
			t.Errorf("Decision(%d).String() = %q, want %q", d, got, want)
		}
	}
}

func TestRuntimeConfigValidation(t *testing.T) {
	if _, err := NewRuntime(Config{}); err == nil {
		t.Error("missing time base must be rejected")
	}
	if _, err := NewRuntime(Config{TimeBase: timebase.NewSharedCounter(), MaxVersions: -1}); err == nil {
		t.Error("negative MaxVersions must be rejected")
	}
	rt, err := NewRuntime(Config{TimeBase: timebase.NewSharedCounter()})
	if err != nil {
		t.Fatal(err)
	}
	if rt.MaxVersions() != DefaultMaxVersions {
		t.Errorf("default MaxVersions = %d, want %d", rt.MaxVersions(), DefaultMaxVersions)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Commits: 3, Aborts: 1, AbortSnapshot: 1}
	if s.String() == "" {
		t.Error("empty stats string")
	}
	if got := s.AbortRate(); got != 0.25 {
		t.Errorf("AbortRate = %v, want 0.25", got)
	}
	if got := (Stats{}).AbortRate(); got != 0 {
		t.Errorf("zero AbortRate = %v, want 0", got)
	}
}

// mustReadInt reads an int out of o in a fresh read-only transaction.
func mustReadInt(t *testing.T, rt *Runtime, o *Object) int {
	t.Helper()
	th := rt.Thread(999)
	var out int
	if err := th.RunReadOnly(func(tx *Tx) error {
		v, err := tx.Read(o)
		if err != nil {
			return err
		}
		out = v.(int)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSingleVersionReadOnlyMayAbortButStaysConsistent pins down the §4.3
// configuration: with MaxVersions=1 read-only transactions lose their
// abort-freedom but never their consistency.
func TestSingleVersionStaysConsistent(t *testing.T) {
	forAllBases(t, Config{MaxVersions: 1}, func(t *testing.T, rt *Runtime) {
		a, b := NewObject(0), NewObject(0)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.Thread(0)
			for i := 1; i <= 400; i++ {
				if err := th.Run(func(tx *Tx) error {
					if err := tx.Write(a, i); err != nil {
						return err
					}
					return tx.Write(b, -i)
				}); err != nil {
					t.Errorf("writer: %v", err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.Thread(1)
			for i := 0; i < 400; i++ {
				if err := th.Run(func(tx *Tx) error {
					av, err := tx.Read(a)
					if err != nil {
						return err
					}
					bv, err := tx.Read(b)
					if err != nil {
						return err
					}
					if av.(int)+bv.(int) != 0 {
						t.Errorf("torn read under MaxVersions=1: %d/%d", av, bv)
					}
					return nil
				}); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}()
		wg.Wait()
	})
}

// TestDisableExtensionStillCorrect checks the TL2-style ablation commits
// correctly, just with more aborts.
func TestDisableExtensionStillCorrect(t *testing.T) {
	forAllBases(t, Config{DisableExtension: true}, func(t *testing.T, rt *Runtime) {
		o := NewObject(0)
		const workers, per = 4, 100
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				th := rt.Thread(id)
				for i := 0; i < per; i++ {
					if err := th.Run(func(tx *Tx) error {
						v, err := tx.Read(o)
						if err != nil {
							return err
						}
						return tx.Write(o, v.(int)+1)
					}); err != nil {
						t.Errorf("worker %d: %v", id, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if got := mustReadInt(t, rt, o); got != workers*per {
			t.Errorf("counter = %d, want %d", got, workers*per)
		}
	})
}

func TestManyObjectsDisjointWriters(t *testing.T) {
	// The Figure 2 workload in miniature: disjoint updates must all commit
	// with zero conflict aborts.
	forAllBases(t, Config{}, func(t *testing.T, rt *Runtime) {
		const workers, perWorker, objsEach = 4, 50, 10
		objs := make([][]*Object, workers)
		for w := range objs {
			objs[w] = make([]*Object, objsEach)
			for i := range objs[w] {
				objs[w][i] = NewObject(0)
			}
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				th := rt.Thread(id)
				for i := 0; i < perWorker; i++ {
					if err := th.Run(func(tx *Tx) error {
						for _, o := range objs[id] {
							v, err := tx.Read(o)
							if err != nil {
								return err
							}
							if err := tx.Write(o, v.(int)+1); err != nil {
								return err
							}
						}
						return nil
					}); err != nil {
						t.Errorf("worker %d: %v", id, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		s := rt.Stats()
		if s.AbortConflict != 0 || s.EnemyAborts != 0 {
			t.Errorf("disjoint workload saw conflicts: %s", s.String())
		}
		for w := range objs {
			for i, o := range objs[w] {
				if got := mustReadInt(t, rt, o); got != perWorker {
					t.Errorf("objs[%d][%d] = %d, want %d", w, i, got, perWorker)
				}
			}
		}
	})
}

func TestExample(t *testing.T) {
	// Smoke-test the documented usage pattern end to end.
	rt := MustRuntime(Config{TimeBase: timebase.NewSharedCounter()})
	th := rt.Thread(0)
	x, y := NewObject("left"), NewObject("right")
	if err := th.Run(func(tx *Tx) error {
		xv, err := tx.Read(x)
		if err != nil {
			return err
		}
		yv, err := tx.Read(y)
		if err != nil {
			return err
		}
		if err := tx.Write(x, yv); err != nil {
			return err
		}
		return tx.Write(y, xv)
	}); err != nil {
		t.Fatal(err)
	}
	want := map[*Object]string{x: "right", y: "left"}
	for o, w := range want {
		if err := th.RunReadOnly(func(tx *Tx) error {
			v, err := tx.Read(o)
			if err != nil {
				return err
			}
			if v.(string) != w {
				return fmt.Errorf("swap: got %v, want %v", v, w)
			}
			return nil
		}); err != nil {
			t.Error(err)
		}
	}
}
