package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// Bank is the classic STM bank: transfer transactions move money between
// two random accounts; audit transactions read every account and check the
// conserved total. Audits run read-only, exercising the multi-version
// snapshot path.
type Bank struct {
	// Accounts is the number of accounts (default 64).
	Accounts int
	// Initial is each account's starting balance (default 1000).
	Initial int
	// AuditRatio is the fraction of transactions that are read-only audits
	// (default 0.1).
	AuditRatio float64
	// Seed seeds the per-worker RNGs.
	Seed int64

	objs []*core.Object
}

// Name implements harness.Workload.
func (b *Bank) Name() string { return fmt.Sprintf("bank/%d", b.accounts()) }

func (b *Bank) accounts() int {
	if b.Accounts == 0 {
		return 64
	}
	return b.Accounts
}

func (b *Bank) initial() int {
	if b.Initial == 0 {
		return 1000
	}
	return b.Initial
}

func (b *Bank) auditRatio() float64 {
	if b.AuditRatio == 0 {
		return 0.1
	}
	return b.AuditRatio
}

// Init implements harness.Workload.
func (b *Bank) Init(rt *core.Runtime, workers int) error {
	if b.accounts() < 2 {
		return fmt.Errorf("workload: Bank needs ≥ 2 accounts, got %d", b.accounts())
	}
	b.objs = make([]*core.Object, b.accounts())
	for i := range b.objs {
		b.objs[i] = core.NewObject(b.initial())
	}
	return nil
}

// Step implements harness.Workload.
func (b *Bank) Step(rt *core.Runtime, th *core.Thread, id int) func() error {
	rng := rand.New(rand.NewSource(b.Seed + int64(id)*7919 + 1))
	expect := b.accounts() * b.initial()
	return func() error {
		if rng.Float64() < b.auditRatio() {
			return th.RunReadOnly(func(tx *core.Tx) error {
				sum := 0
				for _, o := range b.objs {
					v, err := tx.Read(o)
					if err != nil {
						return err
					}
					sum += v.(int)
				}
				if sum != expect {
					return fmt.Errorf("bank: audit saw %d, want %d", sum, expect)
				}
				return nil
			})
		}
		from := rng.Intn(len(b.objs))
		to := rng.Intn(len(b.objs) - 1)
		if to >= from {
			to++
		}
		amount := 1 + rng.Intn(10)
		return th.Run(func(tx *core.Tx) error {
			fv, err := tx.Read(b.objs[from])
			if err != nil {
				return err
			}
			tv, err := tx.Read(b.objs[to])
			if err != nil {
				return err
			}
			if err := tx.Write(b.objs[from], fv.(int)-amount); err != nil {
				return err
			}
			return tx.Write(b.objs[to], tv.(int)+amount)
		})
	}
}

// Total sums all balances in a read-only transaction.
func (b *Bank) Total(rt *core.Runtime) (int, error) {
	th := rt.Thread(1 << 20)
	total := 0
	err := th.RunReadOnly(func(tx *core.Tx) error {
		total = 0
		for _, o := range b.objs {
			v, err := tx.Read(o)
			if err != nil {
				return err
			}
			total += v.(int)
		}
		return nil
	})
	return total, err
}
