package stmserve

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// The recovery audit: the client-side half of the crash-recovery proof.
// Each audit connection owns a marker key and transfers value into it one
// acknowledged unit at a time, remembering exactly how many transfers were
// acked before the server died. After the server comes back (restarted over
// the same WAL), the audit asserts that every acknowledged commit survived —
// marker ≥ baseline + acked — and that the whole keyspace still conserves
// its sum. cmd/stmload's -recovery-audit flag is a shell over this; the CI
// crash-recovery job runs it across a real kill -9.

// AuditOptions parameterizes RunRecoveryAudit. Zero values select defaults.
type AuditOptions struct {
	// Conns is the number of audit connections (default 4). Each owns one
	// marker key (key i) and one sink key (key keys/2+i), so Conns must be
	// ≤ keys/2.
	Conns int
	// Window bounds the load phase: if the server has not gone down within
	// it, the audit fails (default 30s). The kill is external — the audit
	// only observes it.
	Window time.Duration
	// ReconnectTimeout bounds the wait for the restarted server (default 30s).
	ReconnectTimeout time.Duration
	// Keys and Initial describe the keyspace. 0 asks the server via INFO
	// before the load phase; the restarted server must agree (a durable
	// engine recovers cells by creation order, so a -keys mismatch across
	// the restart would silently misalign the keyspace).
	Keys    int
	Initial int64
	// ExpectRecovered additionally asserts that the restarted server's
	// durability stats report at least one recovered commit — the signal
	// that a WAL replay actually happened.
	ExpectRecovered bool
	// SkipSum skips the conserved-sum assertion. Set it when other clients
	// ran non-transfer traffic against the same keyspace.
	SkipSum bool
}

func (o AuditOptions) withDefaults() AuditOptions {
	if o.Conns <= 0 {
		o.Conns = 4
	}
	if o.Window <= 0 {
		o.Window = 30 * time.Second
	}
	if o.ReconnectTimeout <= 0 {
		o.ReconnectTimeout = 30 * time.Second
	}
	return o
}

// AuditReport is the audit's outcome. Err-free completion means every
// acknowledged transfer was found again after recovery.
type AuditReport struct {
	Conns            int           `json:"conns"`
	Keys             int           `json:"keys"`
	Acked            uint64        `json:"acked"`
	PerConn          []uint64      `json:"acked_per_conn"`
	DownAfter        time.Duration `json:"down_after_ns"`
	ReconnectAfter   time.Duration `json:"reconnect_after_ns"`
	Sum              int64         `json:"sum"`
	WantSum          int64         `json:"want_sum"`
	RecoveredCommits uint64        `json:"recovered_commits"`
	RecoveredSeq     uint64        `json:"recovered_seq"`
}

// infoCall issues INFO and returns (keys, initial).
func infoCall(c Caller) (int, int64, error) {
	var resp Response
	if err := c.Do(&Request{Op: OpInfo}, &resp); err != nil {
		return 0, 0, fmt.Errorf("stmserve: INFO: %w", err)
	}
	if resp.Err != "" || len(resp.Vals) < 2 {
		return 0, 0, fmt.Errorf("stmserve: INFO: %q (vals %v)", resp.Err, resp.Vals)
	}
	return int(resp.Vals[0]), resp.Vals[1], nil
}

// RunRecoveryAudit loads the server with acknowledged transfers until it
// goes down, waits for it to come back, and verifies that recovery kept
// every acked commit. It returns the report alongside any verification
// failure; a non-nil error means durability was NOT proven.
func RunRecoveryAudit(dial Dialer, opts AuditOptions) (*AuditReport, error) {
	opts = opts.withDefaults()
	rep := &AuditReport{Conns: opts.Conns}

	// Setup: one connection reads the keyspace shape and the per-conn
	// marker baselines (the WAL dir may hold state from earlier runs, so
	// markers need not start at Initial).
	c, err := dial()
	if err != nil {
		return rep, fmt.Errorf("stmserve: audit dial: %w", err)
	}
	keys, initial, err := infoCall(c)
	if err != nil {
		c.Close()
		return rep, err
	}
	if opts.Keys != 0 && opts.Keys != keys {
		c.Close()
		return rep, fmt.Errorf("stmserve: audit: server keyspace %d != expected %d", keys, opts.Keys)
	}
	if opts.Initial != 0 {
		initial = opts.Initial
	}
	rep.Keys = keys
	rep.WantSum = int64(keys) * initial
	if opts.Conns > keys/2 {
		c.Close()
		return rep, fmt.Errorf("stmserve: audit: %d conns need %d keys (marker+sink per conn), have %d", opts.Conns, 2*opts.Conns, keys)
	}
	baseline := make([]int64, opts.Conns)
	{
		req := Request{Op: OpBatchRead}
		for i := 0; i < opts.Conns; i++ {
			req.Keys = append(req.Keys, i)
		}
		var resp Response
		if err := c.Do(&req, &resp); err != nil || resp.Err != "" || len(resp.Vals) != opts.Conns {
			c.Close()
			return rep, fmt.Errorf("stmserve: audit baseline read: %v %q", err, resp.Err)
		}
		copy(baseline, resp.Vals)
	}
	c.Close()

	// Load phase: conn i transfers 1 from its sink key into its marker key,
	// counting only acknowledged commits, until the server dies (transport
	// or op-level error — ErrClosed on a graceful close counts too).
	rep.PerConn = make([]uint64, opts.Conns)
	start := time.Now()
	deadline := start.Add(opts.Window)
	var wg sync.WaitGroup
	died := make([]bool, opts.Conns)
	for i := 0; i < opts.Conns; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := dial()
			if err != nil {
				died[id] = true
				return
			}
			defer c.Close()
			req := Request{Op: OpTransfer, Key: keys/2 + id, Key2: id, Val: 1}
			var resp Response
			for time.Now().Before(deadline) {
				if err := c.Do(&req, &resp); err != nil || resp.Err != "" {
					died[id] = true
					return
				}
				rep.PerConn[id]++
			}
		}(i)
	}
	wg.Wait()
	rep.DownAfter = time.Since(start)
	for i, d := range died {
		rep.Acked += rep.PerConn[i]
		if !d {
			return rep, fmt.Errorf("stmserve: audit: server still up after %v window (conn %d never saw it die)", opts.Window, i)
		}
	}

	// Reconnect phase: poll until the restarted server answers a PING.
	reStart := time.Now()
	c = nil
	for {
		cand, err := dial()
		if err == nil {
			var resp Response
			if perr := cand.Do(&Request{Op: OpPing}, &resp); perr == nil && resp.Err == "" {
				c = cand
				break
			}
			cand.Close()
		}
		if time.Since(reStart) > opts.ReconnectTimeout {
			return rep, fmt.Errorf("stmserve: audit: server did not come back within %v", opts.ReconnectTimeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
	defer c.Close()
	rep.ReconnectAfter = time.Since(reStart)

	// Verification. The restarted server must present the same keyspace...
	keys2, _, err := infoCall(c)
	if err != nil {
		return rep, err
	}
	if keys2 != keys {
		return rep, fmt.Errorf("stmserve: audit: keyspace changed across restart: %d → %d", keys, keys2)
	}

	// ...reflect every acknowledged transfer (read-your-committed-writes:
	// marker i must hold at least baseline + acked; it may hold more when a
	// commit's ack was lost in flight as the server died)...
	{
		req := Request{Op: OpBatchRead}
		for i := 0; i < opts.Conns; i++ {
			req.Keys = append(req.Keys, i)
		}
		var resp Response
		if err := c.Do(&req, &resp); err != nil || resp.Err != "" || len(resp.Vals) != opts.Conns {
			return rep, fmt.Errorf("stmserve: audit marker read: %v %q", err, resp.Err)
		}
		for i, got := range resp.Vals {
			want := baseline[i] + int64(rep.PerConn[i])
			if got < want {
				return rep, fmt.Errorf("stmserve: audit: conn %d lost committed transfers: marker %d < baseline %d + acked %d",
					i, got, baseline[i], rep.PerConn[i])
			}
		}
	}

	// ...and conserve the keyspace sum (transfers move value, never mint it).
	if !opts.SkipSum {
		const batch = 256
		var resp Response
		req := Request{Op: OpSnapshot}
		for lo := 0; lo < keys; lo += batch {
			req.Keys = req.Keys[:0]
			for k := lo; k < keys && k < lo+batch; k++ {
				req.Keys = append(req.Keys, k)
			}
			if err := c.Do(&req, &resp); err != nil || resp.Err != "" || len(resp.Vals) != len(req.Keys) {
				return rep, fmt.Errorf("stmserve: audit snapshot [%d,%d): %v %q", lo, lo+len(req.Keys), err, resp.Err)
			}
			for _, v := range resp.Vals {
				rep.Sum += v
			}
		}
		if rep.Sum != rep.WantSum {
			return rep, fmt.Errorf("stmserve: audit: conserved sum violated: %d != %d (keys %d × initial %d)",
				rep.Sum, rep.WantSum, keys, initial)
		}
	}

	// Durability stats: did the restarted server actually replay a WAL?
	{
		var resp Response
		if err := c.Do(&Request{Op: OpStats}, &resp); err != nil || resp.Err != "" {
			return rep, fmt.Errorf("stmserve: audit stats: %v %q", err, resp.Err)
		}
		var st Stats
		if err := json.Unmarshal([]byte(resp.Text), &st); err != nil {
			return rep, fmt.Errorf("stmserve: audit stats decode: %w", err)
		}
		if st.Durability != nil {
			rep.RecoveredCommits = st.Durability.RecoveredCommits
			rep.RecoveredSeq = st.Durability.RecoveredSeq
		}
		if opts.ExpectRecovered {
			if st.Durability == nil {
				return rep, fmt.Errorf("stmserve: audit: restarted server reports no durability stats (engine %s not durable?)", st.Engine)
			}
			if st.Durability.RecoveredCommits == 0 {
				return rep, fmt.Errorf("stmserve: audit: restarted server recovered zero commits (acked %d before the crash)", rep.Acked)
			}
		}
	}
	return rep, nil
}
