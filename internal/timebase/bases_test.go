package timebase

import (
	"sync"
	"testing"

	"repro/internal/hwclock"
)

// allBases returns one instance of every time base for table-driven tests.
func allBases(t *testing.T) []TimeBase {
	t.Helper()
	ext, err := NewExtSyncClock(hwclock.New(hwclock.Config{
		TickHz: 1_000_000_000, Nodes: 4, MaxOffsetTicks: 50, JitterTicks: 10, Seed: 42,
	}), 200)
	if err != nil {
		t.Fatalf("NewExtSyncClock: %v", err)
	}
	return []TimeBase{
		NewSharedCounter(),
		NewTL2Counter(),
		NewShardedCounter(4, 16),
		NewPerfectClock(hwclock.New(hwclock.IdealConfig(4))),
		ext,
	}
}

func TestGetNewTSStrictlyLaterThanInvocation(t *testing.T) {
	for _, tb := range allBases(t) {
		t.Run(tb.Name(), func(t *testing.T) {
			c := tb.Clock(0)
			for i := 0; i < 200; i++ {
				before := c.GetTime()
				nts := c.GetNewTS()
				// §2.4: the new timestamp must not be guaranteed-earlier
				// than the invocation time. For exact bases it must be
				// strictly greater; for imprecise bases the masking makes
				// "possibly later" the strongest obtainable guarantee.
				if before.LaterEq(nts) && before != nts {
					t.Fatalf("iteration %d: GetNewTS %v guaranteed earlier than prior GetTime %v", i, nts, before)
				}
				if nts.CID == CIDExact && nts.TS <= before.TS {
					t.Fatalf("iteration %d: exact GetNewTS %v not strictly greater than %v", i, nts, before)
				}
			}
		})
	}
}

func TestPerThreadMonotonic(t *testing.T) {
	for _, tb := range allBases(t) {
		t.Run(tb.Name(), func(t *testing.T) {
			c := tb.Clock(1)
			prev := c.GetTime()
			for i := 0; i < 500; i++ {
				var cur Timestamp
				if i%3 == 0 {
					cur = c.GetNewTS()
				} else {
					cur = c.GetTime()
				}
				if cur.TS < prev.TS && cur.CID == prev.CID {
					t.Fatalf("iteration %d: timestamp went backwards %v → %v", i, prev, cur)
				}
				prev = cur
			}
		})
	}
}

func TestSharedCounterUniqueNewTS(t *testing.T) {
	// The shared counter's fetch-and-add makes concurrent GetNewTS values
	// unique — this is what serializes commits and also what contends.
	sc := NewSharedCounter()
	const workers, per = 8, 1000
	out := make([][]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := sc.Clock(w)
			vals := make([]int64, 0, per)
			for i := 0; i < per; i++ {
				vals = append(vals, c.GetNewTS().TS)
			}
			out[w] = vals
		}(w)
	}
	wg.Wait()
	seen := make(map[int64]bool, workers*per)
	for _, vals := range out {
		for _, v := range vals {
			if seen[v] {
				t.Fatalf("duplicate GetNewTS value %d from shared counter", v)
			}
			seen[v] = true
		}
	}
	if got := sc.Now(); got != int64(1+workers*per) {
		t.Errorf("counter = %d after %d increments from 1, want %d", got, workers*per, 1+workers*per)
	}
}

func TestTL2CounterSharesButStaysMonotonic(t *testing.T) {
	tc := NewTL2Counter()
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := tc.Clock(w)
			last := int64(0)
			for i := 0; i < per; i++ {
				v := c.GetNewTS().TS
				if v <= last {
					errs <- "GetNewTS not strictly monotonic per thread under sharing"
					return
				}
				last = v
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	// Sharing means the counter may advance by less than workers*per.
	if got := tc.Now(); got > int64(1+workers*per) {
		t.Errorf("TL2 counter overshot: %d > %d", got, 1+workers*per)
	}
}

func TestPerfectClockRejectsImpreciseDevice(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPerfectClock over a device with offsets must panic")
		}
	}()
	NewPerfectClock(hwclock.New(hwclock.Config{
		TickHz: 1_000_000_000, Nodes: 2, MaxOffsetTicks: 5,
	}))
}

func TestExtSyncClockRejectsTooSmallBound(t *testing.T) {
	dev := hwclock.New(hwclock.Config{
		TickHz: 1_000_000_000, Nodes: 2, MaxOffsetTicks: 100, JitterTicks: 20,
	})
	if _, err := NewExtSyncClock(dev, 50); err == nil {
		t.Fatal("deviation bound below device worst case must be rejected")
	}
	if _, err := NewExtSyncClock(dev, dev.Config().MaxErrorTicks()); err != nil {
		t.Fatalf("deviation bound at device worst case must be accepted: %v", err)
	}
}

func TestExtSyncTimestampsCarryDeviation(t *testing.T) {
	dev := hwclock.New(hwclock.Config{
		TickHz: 1_000_000_000, Nodes: 3, MaxOffsetTicks: 10, Seed: 7,
	})
	ec, err := NewExtSyncClock(dev, 64)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 6; id++ {
		ts := ec.Clock(id).GetTime()
		if ts.Dev != 64 {
			t.Errorf("clock %d: Dev = %d, want 64", id, ts.Dev)
		}
		wantCID := int32(1 + id%3)
		if ts.CID != wantCID {
			t.Errorf("clock %d: CID = %d, want %d", id, ts.CID, wantCID)
		}
	}
}

func TestExtSyncDeviationBoundHolds(t *testing.T) {
	// The advertised bound must cover the actual |local − true| error,
	// otherwise ⪰ masking would be unsound.
	dev := hwclock.New(hwclock.Config{
		TickHz: 1_000_000_000, Nodes: 8, MaxOffsetTicks: 200, JitterTicks: 50, Seed: 3,
	})
	bound := dev.Config().MaxErrorTicks()
	ec, err := NewExtSyncClock(dev, bound)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 8; id++ {
		c := ec.Clock(id)
		for i := 0; i < 100; i++ {
			before := dev.Now()
			ts := c.GetTime()
			after := dev.Now()
			if ts.TS+bound < before || ts.TS-bound > after {
				t.Fatalf("clock %d read %d outside [%d−%d, %d+%d]", id, ts.TS, before, bound, after, bound)
			}
		}
	}
}

func TestBaseNames(t *testing.T) {
	for _, tb := range allBases(t) {
		if tb.Name() == "" {
			t.Errorf("%T has empty name", tb)
		}
	}
}
