package main

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/latency"
)

func record(eng, wl string, commits uint64) harness.Result {
	return harness.Result{
		Workload:        wl,
		Engine:          eng,
		Workers:         4,
		Elapsed:         50 * time.Millisecond,
		Txs:             commits,
		Throughput:      float64(commits) / 0.05,
		AllocsPerCommit: 12.5,
		BytesPerCommit:  800,
		Stats:           engine.Stats{Commits: commits},
	}
}

func marshal(t *testing.T, rs []harness.Result) []byte {
	t.Helper()
	data, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestCheckAcceptsHealthySnapshot(t *testing.T) {
	rs := []harness.Result{
		record("tl2", "bank/64", 100), record("tl2", "intset/128", 90),
		record("lsa/shared", "bank/64", 80), record("lsa/shared", "intset/128", 70),
	}
	if errs := check(marshal(t, rs), []string{"tl2", "lsa/shared"}); len(errs) != 0 {
		t.Fatalf("healthy snapshot rejected: %v", errs)
	}
}

func TestCheckRejectsMalformedJSON(t *testing.T) {
	if errs := check([]byte("{not json"), nil); len(errs) != 1 {
		t.Fatalf("malformed JSON: got %v", errs)
	}
	if errs := check([]byte("[]"), nil); len(errs) != 1 || !strings.Contains(errs[0].Error(), "no records") {
		t.Fatalf("empty snapshot: got %v", errs)
	}
}

func TestCheckRejectsZeroCommits(t *testing.T) {
	rs := []harness.Result{record("tl2", "bank/64", 100), record("glock", "bank/64", 0)}
	errs := check(marshal(t, rs), []string{"tl2", "glock"})
	joined := errsString(errs)
	if !strings.Contains(joined, "zero commits") {
		t.Fatalf("wedged engine not reported: %v", errs)
	}
	// The zero-commit record is invalid, so glock must also count as missing.
	if !strings.Contains(joined, `engine "glock" missing`) {
		t.Fatalf("invalid record still satisfied the engine requirement: %v", errs)
	}
}

// TestCheckRejectsMissingAllocTelemetry pins the snapshot-format ratchet: a
// snapshot in which NO record carries the allocs/bytes-per-commit fields
// (e.g. regenerated with a pre-telemetry lsabench, or hand-stripped) must
// fail the gate, so the checked-in BENCH_engines.json can never silently
// lose its GC-pressure axis. Individual zero-allocation records are fine —
// the unboxed value lane produces them legitimately — so the check is
// snapshot-level: somewhere the LSA engines must show their per-attempt Tx.
func TestCheckRejectsMissingAllocTelemetry(t *testing.T) {
	r := record("tl2", "bank/64", 100)
	r.AllocsPerCommit = 0
	r.BytesPerCommit = 0
	errs := check(marshal(t, []harness.Result{r}), []string{"tl2"})
	if !strings.Contains(errsString(errs), "no record carries alloc telemetry") {
		t.Fatalf("alloc-less snapshot not reported: %v", errs)
	}
	// The same zero-allocation record next to a normally allocating one
	// passes: telemetry is present in the snapshot.
	rs := []harness.Result{r, record("tl2", "intset/128", 90)}
	if errs := check(marshal(t, rs), []string{"tl2"}); len(errs) != 0 {
		t.Fatalf("zero-allocation record rejected: %v", errs)
	}
}

func TestCheckRejectsMissingEngine(t *testing.T) {
	rs := []harness.Result{record("tl2", "bank/64", 10)}
	errs := check(marshal(t, rs), []string{"tl2", "norec"})
	if !strings.Contains(errsString(errs), `engine "norec" missing`) {
		t.Fatalf("missing engine not reported: %v", errs)
	}
}

func TestCheckRejectsUnevenWorkloadSets(t *testing.T) {
	rs := []harness.Result{
		record("tl2", "bank/64", 10), record("tl2", "intset/128", 10),
		record("glock", "bank/64", 10),
	}
	errs := check(marshal(t, rs), []string{"tl2", "glock"})
	if !strings.Contains(errsString(errs), "ran workloads") {
		t.Fatalf("uneven workload sets not reported: %v", errs)
	}
}

func TestCheckRejectsDuplicates(t *testing.T) {
	rs := []harness.Result{record("tl2", "bank/64", 10), record("tl2", "bank/64", 12)}
	errs := check(marshal(t, rs), []string{"tl2"})
	if !strings.Contains(errsString(errs), "duplicate") {
		t.Fatalf("duplicate record not reported: %v", errs)
	}
}

// TestCheckAgainstRealBenchRun drives the actual bench pipeline end to end
// on two engines with a tiny interval — the same path the CI bench-smoke
// job gates, minus the full registry sweep.
func TestCheckAgainstRealBenchRun(t *testing.T) {
	if testing.Short() {
		t.Skip("measured-interval run")
	}
	var results []harness.Result
	for _, name := range []string{"tl2", "lsa/sharded"} {
		for _, mk := range []func() harness.Workload{
			func() harness.Workload { return &benchBank{} },
		} {
			eng := engine.MustNew(name, engine.Options{Nodes: 2})
			r, err := harness.Run(eng, mk(), harness.Options{Workers: 2, Duration: 30 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, r)
		}
	}
	if errs := check(marshal(t, results), []string{"tl2", "lsa/sharded"}); len(errs) != 0 {
		t.Fatalf("real bench run rejected: %v", errs)
	}
}

// benchBank is a minimal in-test workload: one hot counter cell.
type benchBank struct{ c engine.Cell }

func (b *benchBank) Name() string { return "counter" }
func (b *benchBank) Init(eng engine.Engine, workers int) error {
	b.c = eng.NewCell(0)
	return nil
}
func (b *benchBank) Step(eng engine.Engine, th engine.Thread, id int) func() error {
	return func() error {
		return th.Run(func(tx engine.Txn) error {
			return engine.Update(tx, b.c, func(v int) int { return v + 1 })
		})
	}
}

func errsString(errs []error) string {
	var sb strings.Builder
	for _, e := range errs {
		sb.WriteString(e.Error())
		sb.WriteString("\n")
	}
	return sb.String()
}

// TestCheckSnapshotHostHeader pins the snapshot-header rules: the current
// object form must carry a valid host record (required going forward), the
// legacy bare-array form is tolerated without one, and an object-form
// snapshot with a missing or implausible host fails the gate.
func TestCheckSnapshotHostHeader(t *testing.T) {
	rs := []harness.Result{record("tl2", "bank/64", 100)}
	wrap := func(host *harness.HostInfo) []byte {
		t.Helper()
		data, err := json.Marshal(harness.Snapshot{Host: host, Results: rs})
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if errs := check(wrap(&harness.HostInfo{NumCPU: 8, GOMAXPROCS: 8}), []string{"tl2"}); len(errs) != 0 {
		t.Fatalf("headered snapshot rejected: %v", errs)
	}
	if errs := check(wrap(nil), []string{"tl2"}); len(errs) != 1 ||
		!strings.Contains(errs[0].Error(), "host") {
		t.Fatalf("hostless object snapshot not rejected: %v", errs)
	}
	if errs := check(wrap(&harness.HostInfo{NumCPU: 0, GOMAXPROCS: 4}), []string{"tl2"}); len(errs) != 1 ||
		!strings.Contains(errs[0].Error(), "CPUs") {
		t.Fatalf("implausible host record not rejected: %v", errs)
	}
	// Legacy form: the array marshal() emits, already exercised by every
	// other test — no host required.
	if errs := check(marshal(t, rs), []string{"tl2"}); len(errs) != 0 {
		t.Fatalf("legacy array snapshot rejected: %v", errs)
	}
}

// TestCheckAcceptsSnapshotWithoutBoxedCounters pins the compatibility rule
// for the boxed% telemetry: Stats.BoxedCommits is reported by the engines
// since the typed value lane, but a snapshot written before it (no
// boxed_commits field anywhere) must keep parsing and validating — the gate
// accepts the field without requiring it.
func TestCheckAcceptsSnapshotWithoutBoxedCounters(t *testing.T) {
	raw := []byte(`[{"workload":"bank/64","engine":"tl2","workers":4,` +
		`"elapsed_ns":50000000,"txs":100,"tx_per_s":2000,` +
		`"allocs_per_commit":12.5,"bytes_per_commit":800,` +
		`"stats":{"commits":100,"aborts":3}}]`)
	if errs := check(raw, []string{"tl2"}); len(errs) != 0 {
		t.Fatalf("pre-boxed-counter snapshot rejected: %v", errs)
	}
}

// latencyRecord is record() plus a consistent latency block: all commits in
// the 8192ns bucket (bucket 13), so count ties out against Txs.
func latencyRecord(eng, wl string, commits uint64) harness.Result {
	r := record(eng, wl, commits)
	buckets := make([]uint64, 14)
	buckets[13] = commits
	r.Latency = &latency.Summary{
		Count: commits, Buckets: buckets,
		P50: 16383, P99: 16383, P999: 16383,
	}
	return r
}

// TestCheckLatencyAllOrNone pins the latency-telemetry snapshot gate: every
// record carries a latency_ns block or none does. The harness attaches the
// block to everything it produces, so a mix means spliced or hand-edited
// records; an entirely latency-free snapshot is a tolerated legacy artifact.
func TestCheckLatencyAllOrNone(t *testing.T) {
	all := []harness.Result{
		latencyRecord("tl2", "bank/64", 100), latencyRecord("tl2", "intset/128", 90),
	}
	if errs := check(marshal(t, all), []string{"tl2"}); len(errs) != 0 {
		t.Fatalf("all-latency snapshot rejected: %v", errs)
	}
	none := []harness.Result{
		record("tl2", "bank/64", 100), record("tl2", "intset/128", 90),
	}
	if errs := check(marshal(t, none), []string{"tl2"}); len(errs) != 0 {
		t.Fatalf("legacy latency-free snapshot rejected: %v", errs)
	}
	mixed := []harness.Result{
		latencyRecord("tl2", "bank/64", 100), record("tl2", "intset/128", 90),
	}
	errs := check(marshal(t, mixed), []string{"tl2"})
	if !strings.Contains(errsString(errs), "all or none") {
		t.Fatalf("mixed latency telemetry not reported: %v", errs)
	}
}

// TestCheckWalTelemetry pins the durability-telemetry compatibility rule:
// a record measured on a durable engine carries a wal block with its fsync
// policy — accepted next to plain records (snapshots may mix durable and
// in-memory engines), never required, but rejected when the policy is
// outside the engine.Options -fsync domain (a stripped or hand-edited
// field).
func TestCheckWalTelemetry(t *testing.T) {
	walRecord := func(policy string) harness.Result {
		r := record("durable/norec", "bank/64", 50)
		r.Wal = &harness.WalInfo{Dir: "/tmp/wal", FsyncPolicy: policy}
		return r
	}
	for _, policy := range []string{"always", "group", "never"} {
		rs := []harness.Result{record("tl2", "bank/64", 100), walRecord(policy)}
		if errs := check(marshal(t, rs), []string{"tl2", "durable/norec"}); len(errs) != 0 {
			t.Fatalf("wal record with fsync=%s rejected: %v", policy, errs)
		}
	}
	rs := []harness.Result{walRecord("sometimes")}
	errs := check(marshal(t, rs), []string{"durable/norec"})
	if !strings.Contains(errsString(errs), "fsync policy") {
		t.Fatalf("malformed fsync policy not reported: %v", errs)
	}
	// A wal block with an empty policy is equally malformed — the harness
	// always copies the engine's resolved policy, never an empty string.
	raw := []byte(`[{"workload":"bank/64","engine":"durable/norec","workers":4,` +
		`"elapsed_ns":50000000,"txs":100,"tx_per_s":2000,` +
		`"allocs_per_commit":12.5,"bytes_per_commit":800,` +
		`"stats":{"commits":100},"wal":{"dir":"/tmp/wal"}}]`)
	errs = check(raw, []string{"durable/norec"})
	if !strings.Contains(errsString(errs), "fsync policy") {
		t.Fatalf("policy-less wal block not reported: %v", errs)
	}
}

// TestCheckReplTelemetry pins the replication-telemetry compatibility rule,
// the repl sibling of the wal rule: a record measured on a replicated node
// carries a repl block with its role — accepted next to plain records, never
// required, rejected when the role is outside the replication pair's two or
// a counter went negative.
func TestCheckReplTelemetry(t *testing.T) {
	replRecord := func(role string) harness.Result {
		r := record("durable/norec", "bank/64", 50)
		r.Repl = &harness.ReplInfo{Role: role, Followers: 1, LagSeqs: 2, LagBytes: 64}
		return r
	}
	for _, role := range []string{"primary", "follower"} {
		rs := []harness.Result{record("tl2", "bank/64", 100), replRecord(role)}
		if errs := check(marshal(t, rs), []string{"tl2", "durable/norec"}); len(errs) != 0 {
			t.Fatalf("repl record with role=%s rejected: %v", role, errs)
		}
	}
	rs := []harness.Result{replRecord("observer")}
	errs := check(marshal(t, rs), []string{"durable/norec"})
	if !strings.Contains(errsString(errs), "role") {
		t.Fatalf("malformed replication role not reported: %v", errs)
	}
	// A repl block with no role at all is equally malformed — the adapters
	// always stamp the node's role, never an empty string.
	raw := []byte(`[{"workload":"bank/64","engine":"durable/norec","workers":4,` +
		`"elapsed_ns":50000000,"txs":100,"tx_per_s":2000,` +
		`"allocs_per_commit":12.5,"bytes_per_commit":800,` +
		`"stats":{"commits":100},"repl":{"followers":1}}]`)
	errs = check(raw, []string{"durable/norec"})
	if !strings.Contains(errsString(errs), "role") {
		t.Fatalf("role-less repl block not reported: %v", errs)
	}
	// Negative counters are a stripped or hand-edited record.
	r := replRecord("primary")
	r.Repl.LagBytes = -64
	errs = check(marshal(t, []harness.Result{r}), []string{"durable/norec"})
	if !strings.Contains(errsString(errs), "negative") {
		t.Fatalf("negative repl counter not reported: %v", errs)
	}
}

// TestCheckRejectsInconsistentLatency: a latency block whose bucket counts
// do not sum to the record's committed transactions is a stripped or edited
// record (the harness derives Txs and the histogram from the same probes).
func TestCheckRejectsInconsistentLatency(t *testing.T) {
	r := latencyRecord("tl2", "bank/64", 100)
	r.Latency.Count = 99
	r.Latency.Buckets[13] = 99
	errs := check(marshal(t, []harness.Result{r}), []string{"tl2"})
	if !strings.Contains(errsString(errs), "latency count") {
		t.Fatalf("latency/txs mismatch not reported: %v", errs)
	}
	r = latencyRecord("tl2", "bank/64", 100)
	r.Latency.P99 = 1 // below the recomputed quantile
	errs = check(marshal(t, []harness.Result{r}), []string{"tl2"})
	if !strings.Contains(errsString(errs), "latency") {
		t.Fatalf("tampered percentile not reported: %v", errs)
	}
}
