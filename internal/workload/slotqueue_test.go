package workload

import (
	"sync"
	"testing"
)

func TestSlotQueueValidation(t *testing.T) {
	q := &SlotQueue{Groups: -1}
	if err := q.Init(newEng(t), 1); err == nil {
		t.Error("negative group count must be rejected")
	}
	q = &SlotQueue{SlotsPerGroup: -1}
	if err := q.Init(newEng(t), 1); err == nil {
		t.Error("negative slot count must be rejected")
	}
}

// TestSlotQueuePerGroupFIFO: with the hint pinned to one group, SlotQueue
// behaves exactly like the plain bounded FIFO — that is the per-group
// contract the relaxed global order is built from.
func TestSlotQueuePerGroupFIFO(t *testing.T) {
	eng := newEng(t)
	q := &SlotQueue{Groups: 1, SlotsPerGroup: 4}
	if err := q.Init(eng, 1); err != nil {
		t.Fatal(err)
	}
	th := eng.Thread(0)
	if _, ok, err := q.Pop(th, 0); err != nil || ok {
		t.Fatalf("pop on empty = (%v, %v), want miss", ok, err)
	}
	for i := 1; i <= 4; i++ {
		ok, err := q.Push(th, i*10, 0)
		if err != nil || !ok {
			t.Fatalf("push %d = (%v, %v)", i, ok, err)
		}
	}
	if ok, err := q.Push(th, 99, 0); err != nil || ok {
		t.Fatalf("push on full = (%v, %v), want reject", ok, err)
	}
	for i := 1; i <= 4; i++ {
		v, ok, err := q.Pop(th, 0)
		if err != nil || !ok {
			t.Fatalf("pop %d failed: (%v, %v)", i, ok, err)
		}
		if v != i*10 {
			t.Errorf("pop %d = %d, want %d (FIFO order within a group)", i, v, i*10)
		}
	}
	if n, err := q.Len(th); err != nil || n != 0 {
		t.Fatalf("len = (%d, %v), want 0", n, err)
	}
}

// TestSlotQueueSpillsAcrossGroups: a full group must not reject the push
// while another group has space — the probe walks on.
func TestSlotQueueSpillsAcrossGroups(t *testing.T) {
	eng := newEng(t)
	q := &SlotQueue{Groups: 3, SlotsPerGroup: 2}
	if err := q.Init(eng, 1); err != nil {
		t.Fatal(err)
	}
	th := eng.Thread(0)
	for i := 0; i < 6; i++ {
		ok, err := q.Push(th, i, 0) // same hint every time: fills group 0 first
		if err != nil || !ok {
			t.Fatalf("push %d = (%v, %v), capacity is 6", i, ok, err)
		}
	}
	if ok, err := q.Push(th, 99, 1); err != nil || ok {
		t.Fatalf("push on globally full = (%v, %v), want reject from any hint", ok, err)
	}
	if n, err := q.Len(th); err != nil || n != 6 {
		t.Fatalf("len = (%d, %v), want 6", n, err)
	}
	popped := map[int]bool{}
	for i := 0; i < 6; i++ {
		v, ok, err := q.Pop(th, i) // rotating hints drain all groups
		if err != nil || !ok {
			t.Fatalf("pop %d = (%v, %v)", i, ok, err)
		}
		if popped[v] {
			t.Fatalf("element %d popped twice", v)
		}
		popped[v] = true
	}
	if _, ok, err := q.Pop(th, 2); err != nil || ok {
		t.Fatalf("pop on drained queue = (%v, %v), want miss", ok, err)
	}
}

func TestSlotQueueConcurrentConservation(t *testing.T) {
	eng := newClockEng(t)
	q := &SlotQueue{Groups: 4, SlotsPerGroup: 4, Seed: 9}
	const producers, consumers, per = 2, 2, 300
	if err := q.Init(eng, producers+consumers); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	pushed, popped := 0, 0
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := eng.Thread(id)
			n := 0
			for i := 0; i < per; i++ {
				ok, err := q.Push(th, id*1000+i, id+i)
				if err != nil {
					t.Errorf("push: %v", err)
					return
				}
				if ok {
					n++
				}
			}
			mu.Lock()
			pushed += n
			mu.Unlock()
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := eng.Thread(producers + id)
			n := 0
			for i := 0; i < per; i++ {
				_, ok, err := q.Pop(th, id+i)
				if err != nil {
					t.Errorf("pop: %v", err)
					return
				}
				if ok {
					n++
				}
			}
			mu.Lock()
			popped += n
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	remaining, err := q.Len(eng.Thread(99))
	if err != nil {
		t.Fatal(err)
	}
	if pushed != popped+remaining {
		t.Errorf("conservation broken: pushed %d, popped %d, remaining %d", pushed, popped, remaining)
	}
	if remaining < 0 || remaining > 16 {
		t.Errorf("remaining %d outside [0,16]", remaining)
	}
}

func TestSlotQueueAsHarnessWorkload(t *testing.T) {
	eng := newEng(t)
	q := &SlotQueue{Groups: 2, SlotsPerGroup: 4, Seed: 3}
	if err := q.Init(eng, 2); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := eng.Thread(id)
			step := q.Step(eng, th, id)
			for i := 0; i < 200; i++ {
				if err := step(); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	if s := eng.Stats(); s.Commits == 0 {
		t.Error("no commits recorded")
	}
}
