package engine

import (
	"flag"
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"time"
)

// Options parameterize backend construction. Every field has a usable
// default; backends ignore fields that do not apply to them (each backend's
// registry Info lists the tunables it consumes, by the same names BindFlags
// registers). New rejects values no backend can honor — see Validate.
type Options struct {
	// Nodes sizes per-node time bases (one clock register per worker node).
	// Default 8. Thread ids are taken modulo Nodes, so a smaller value than
	// the worker count only shares clock registers, it never fails.
	Nodes int
	// MaxVersions is the LSA core's per-object history depth (0 = engine
	// default). 1 yields a single-version STM.
	MaxVersions int
	// Deviation is the advertised clock deviation bound in ticks for
	// "lsa/extsync" (1 GHz device, so ticks are nanoseconds). Default 2000.
	Deviation int64
	// ShardWindow is the epoch window (in ticks) a shard of the sharded
	// counter time base may run ahead of the shared epoch base, for the
	// "*/sharded" backends. 0 selects timebase.DefaultShardWindow; odd
	// windows are rounded up to even (the window halves into the masked
	// deviation). Larger windows write the shared epoch line less often but
	// widen the masked uncertainty gap (more aborts on freshly written hot
	// objects).
	ShardWindow int64
	// Words is the transactional memory size of the word-based backend.
	// Default 1<<20. Dynamic cell allocation (e.g. linked-list inserts)
	// consumes words permanently, so size generously for long runs.
	Words int
	// ContentionManager selects the LSA conflict arbitration policy by name
	// ("aggressive", "suicide", "polite", "karma", "timestamp"; "" = engine
	// default).
	ContentionManager string
	// Stripes is the sequence-lock stripe count for "norec/adaptive": a
	// power of two in [1, 64]. 0 selects the engine default (64).
	Stripes int
	// EscalateStripes is "norec/adaptive"'s touched-stripe threshold: an
	// attempt about to span more stripes than this escalates to the global
	// protocol. 0 selects the engine default (8).
	EscalateStripes int
	// EscalateAborts is how many striped attempts of one "norec/adaptive"
	// transaction may abort before attempts start escalated. 0 selects the
	// engine default (3).
	EscalateAborts int
	// WALDir is the write-ahead-log directory for the "durable/*" backends.
	// Empty selects an engine-managed temp directory (durability within the
	// process run only — benches and tests); recovery-on-boot needs a real
	// path that survives restarts.
	WALDir string
	// Fsync is the durable backends' sync policy: "always" (fsync before
	// every commit acknowledgment), "group" (acknowledgments wait for a
	// shared flush with a bounded interval — the default) or "never"
	// (buffered writes, no fsync; acknowledged commits can be lost).
	Fsync string
	// SnapshotBytes is the live-log size that triggers background snapshot
	// compaction in the durable backends. 0 selects the default (8 MiB);
	// negative disables automatic compaction.
	SnapshotBytes int64
	// SegmentBytes is the durable backends' WAL segment rotation size. 0
	// selects the default (4 MiB).
	SegmentBytes int64
	// GroupInterval bounds the durable backends' group-commit flush wait —
	// how long an acknowledgment may sit in the shared flush batch. 0
	// selects the default (2 ms).
	GroupInterval time.Duration
}

// fsyncPolicies are the recognized Options.Fsync values ("" selects the
// durable backends' default, group).
var fsyncPolicies = []string{"always", "group", "never"}

// contentionManagers are the recognized Options.ContentionManager names
// ("" selects the engine default). The lookup itself lives in the LSA
// adapter; this list keeps Validate and that switch honest together.
var contentionManagers = []string{"aggressive", "suicide", "polite", "karma", "timestamp"}

// Validate rejects option values no backend can honor, with an error naming
// the field and the constraint. Zero values always pass (they select
// defaults); New runs this before construction so a bad tunable surfaces as
// one descriptive error instead of a panic or a silent clamp deep inside a
// backend.
func (o Options) Validate() error {
	if o.Nodes < 0 {
		return fmt.Errorf("engine: Nodes = %d, must be ≥ 1 (or 0 for the default)", o.Nodes)
	}
	if o.MaxVersions < 0 {
		return fmt.Errorf("engine: MaxVersions = %d, must be ≥ 1 (or 0 for the engine default)", o.MaxVersions)
	}
	if o.Deviation < 0 {
		return fmt.Errorf("engine: Deviation = %d ticks, must be ≥ 0 (0 selects the default)", o.Deviation)
	}
	if o.ShardWindow < 0 || o.ShardWindow == 1 {
		return fmt.Errorf("engine: ShardWindow = %d ticks, must be ≥ 2 (or 0 for the default)", o.ShardWindow)
	}
	if o.Words < 0 {
		return fmt.Errorf("engine: Words = %d, must be ≥ 1 (or 0 for the default)", o.Words)
	}
	if o.ContentionManager != "" {
		known := false
		for _, n := range contentionManagers {
			if n == o.ContentionManager {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("engine: unknown contention manager %q (known: %s)",
				o.ContentionManager, strings.Join(contentionManagers, ", "))
		}
	}
	if o.Stripes != 0 && (o.Stripes < 1 || o.Stripes > 64 || bits.OnesCount(uint(o.Stripes)) != 1) {
		return fmt.Errorf("engine: Stripes = %d, must be a power of two in [1, 64] (or 0 for the default)", o.Stripes)
	}
	if o.EscalateStripes < 0 {
		return fmt.Errorf("engine: EscalateStripes = %d, must be ≥ 1 (or 0 for the default)", o.EscalateStripes)
	}
	if o.EscalateAborts < 0 {
		return fmt.Errorf("engine: EscalateAborts = %d, must be ≥ 1 (or 0 for the default)", o.EscalateAborts)
	}
	if o.Fsync != "" {
		known := false
		for _, n := range fsyncPolicies {
			if n == o.Fsync {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("engine: unknown fsync policy %q (known: %s)",
				o.Fsync, strings.Join(fsyncPolicies, ", "))
		}
	}
	if o.SegmentBytes < 0 {
		return fmt.Errorf("engine: SegmentBytes = %d, must be ≥ 1 (or 0 for the default)", o.SegmentBytes)
	}
	if o.GroupInterval < 0 {
		return fmt.Errorf("engine: GroupInterval = %v, must be ≥ 0 (0 selects the default)", o.GroupInterval)
	}
	return nil
}

func (o Options) withDefaults() Options {
	if o.Nodes <= 0 {
		o.Nodes = 8
	}
	if o.Deviation <= 0 {
		o.Deviation = 2000
	}
	if o.Words <= 0 {
		o.Words = 1 << 20
	}
	return o
}

// BindFlags registers every backend tunable on fs, parsing into o. Flag
// names match the Tunables lists in the registry's capability Infos, so
// `-engine X` plus Describe(X).Capabilities.Tunables tells a user exactly
// which of these flags matter. The four cmd drivers (lsabench, stmstress,
// stmserve, stmload) all bind the same surface, so a new Options field added
// here reaches every binary at once. Defaults are o's current field values;
// the conventional 0 means "engine default" (for Nodes: the worker count —
// drivers resolve that before calling New).
func (o *Options) BindFlags(fs *flag.FlagSet) {
	fs.IntVar(&o.Nodes, "nodes", o.Nodes, "per-node time-base clock registers (0 = match the worker count)")
	fs.IntVar(&o.MaxVersions, "max-versions", o.MaxVersions, "LSA per-object history depth (0 = engine default; 1 = single-version)")
	fs.Int64Var(&o.Deviation, "deviation", o.Deviation, "advertised ext-sync clock deviation bound, ticks (0 = default 2000)")
	fs.Int64Var(&o.ShardWindow, "shard-window", o.ShardWindow, "sharded-counter epoch window, ticks (0 = default)")
	fs.IntVar(&o.Words, "words", o.Words, "word-based backend memory size in words (0 = default 1<<20)")
	fs.StringVar(&o.ContentionManager, "cm", o.ContentionManager,
		"LSA contention manager: "+strings.Join(contentionManagers, "|")+" (empty = engine default)")
	fs.IntVar(&o.Stripes, "stripes", o.Stripes, "norec/adaptive stripe count, power of two in [1,64] (0 = default 64)")
	fs.IntVar(&o.EscalateStripes, "escalate-stripes", o.EscalateStripes, "norec/adaptive touched-stripe escalation threshold (0 = default)")
	fs.IntVar(&o.EscalateAborts, "escalate-aborts", o.EscalateAborts, "norec/adaptive striped aborts before attempts start escalated (0 = default)")
	fs.StringVar(&o.WALDir, "wal", o.WALDir, "durable/* write-ahead-log directory (empty = temp dir, no cross-restart recovery)")
	fs.StringVar(&o.Fsync, "fsync", o.Fsync, "durable/* sync policy: "+strings.Join(fsyncPolicies, "|")+" (empty = group)")
	fs.Int64Var(&o.SnapshotBytes, "snapshot", o.SnapshotBytes, "durable/* live-log bytes that trigger snapshot compaction (0 = default 8 MiB, < 0 disables)")
	fs.Int64Var(&o.SegmentBytes, "segment", o.SegmentBytes, "durable/* WAL segment rotation size in bytes (0 = default 4 MiB)")
	fs.DurationVar(&o.GroupInterval, "group-interval", o.GroupInterval, "durable/* group-commit flush interval bound (0 = default 2ms)")
}

// Capabilities declares, at registration time, what an engine's threads and
// transactions implement beyond the core Engine/Thread/Txn contract — the
// introspection surface behind Describe, `lsabench -list-engines`, and
// stmserve's /engines endpoint, replacing ad-hoc type assertions scattered
// through callers.
type Capabilities struct {
	// IntLane: the engine's transactions implement IntTxn (unboxed int64
	// payloads through the typed accessors).
	IntLane bool `json:"int_lane"`
	// AttemptCounter: the engine's threads implement AttemptCounter (the
	// harness's per-attempt retry-latency feed).
	AttemptCounter bool `json:"attempt_counter"`
	// MultiVersion: read-only transactions may be served from older
	// versions, so long scans do not abort concurrent updates.
	MultiVersion bool `json:"multi_version"`
	// Durable: the engine implements the Durable interface — committed
	// writes are journaled to a write-ahead log and the engine recovers
	// state from log + snapshot at construction. Durable engines only
	// accept WAL-serializable payloads (the int lane, nil, bool, string,
	// float64, []byte); arbitrary boxed structs fail the write.
	Durable bool `json:"durable,omitempty"`
	// Tunables are the Options fields the backend consumes, named as the
	// BindFlags flags ("nodes", "max-versions", "deviation", "shard-window",
	// "words", "cm", "stripes", "escalate-stripes", "escalate-aborts").
	Tunables []string `json:"tunables,omitempty"`
}

// Info describes one registered backend: its registry name, a one-line
// summary, and its declared capabilities. The capability claims are gated by
// the engine conformance suite (TestCapabilityClaims), so Describe's answers
// stay truthful as backends evolve.
type Info struct {
	Name         string       `json:"name"`
	Summary      string       `json:"summary,omitempty"`
	Capabilities Capabilities `json:"capabilities"`
}

// Factory builds an engine instance from options.
type Factory func(Options) (Engine, error)

type registration struct {
	info    Info
	factory Factory
}

var (
	registryMu sync.RWMutex
	registry   = map[string]registration{}
)

// Register adds a backend under name with its capability Info (info.Name is
// overwritten with name). It panics on duplicates — backends register from
// init functions, so a collision is a programming error.
func Register(name string, info Info, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("engine: duplicate backend %q", name))
	}
	info.Name = name
	registry[name] = registration{info: info, factory: f}
}

// Names returns the registered backend names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Describe returns the named backend's registration-time Info. ok is false
// for unknown names.
func Describe(name string) (info Info, ok bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	r, ok := registry[name]
	return r.info, ok
}

// Infos returns every registered backend's Info, sorted by name — the
// capability matrix behind `lsabench -list-engines` and stmserve's /engines.
func Infos() []Info {
	registryMu.RLock()
	defer registryMu.RUnlock()
	infos := make([]Info, 0, len(registry))
	for _, r := range registry {
		infos = append(infos, r.info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// New builds the named backend, validating opt first (see Options.Validate).
func New(name string, opt Options) (Engine, error) {
	registryMu.RLock()
	r, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown backend %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	if err := opt.Validate(); err != nil {
		return nil, fmt.Errorf("%w (backend %q)", err, name)
	}
	return r.factory(opt.withDefaults())
}

// MustNew is New for static configurations; it panics on error.
func MustNew(name string, opt Options) Engine {
	e, err := New(name, opt)
	if err != nil {
		panic(err)
	}
	return e
}
