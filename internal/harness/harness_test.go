package harness

import (
	"errors"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/workload"
)

func mkCounterEng() (engine.Engine, error) {
	return engine.New("lsa/shared", engine.Options{})
}

func TestRunValidation(t *testing.T) {
	eng, _ := mkCounterEng()
	w := &workload.Disjoint{Accesses: 2}
	if _, err := Run(eng, w, Options{Workers: 0, Duration: time.Millisecond}); err == nil {
		t.Error("zero workers must be rejected")
	}
	if _, err := Run(eng, w, Options{Workers: 1, Duration: 0}); err == nil {
		t.Error("zero duration must be rejected")
	}
}

func TestRunMeasuresThroughput(t *testing.T) {
	eng, _ := mkCounterEng()
	w := &workload.Disjoint{Accesses: 4}
	res, err := Run(eng, w, Options{Workers: 2, Duration: 50 * time.Millisecond, Warmup: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Txs == 0 {
		t.Error("no transactions measured")
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput = %v", res.Throughput)
	}
	if res.Workers != 2 || res.Workload != "disjoint/4" || res.Engine != "lsa/shared" {
		t.Errorf("metadata wrong: %+v", res)
	}
	if res.String() == "" {
		t.Error("empty Result string")
	}
	if res.AllocsPerCommit <= 0 || res.BytesPerCommit <= 0 {
		t.Errorf("alloc telemetry missing: allocs/commit=%f bytes/commit=%f",
			res.AllocsPerCommit, res.BytesPerCommit)
	}
	if err := res.Validate(); err != nil {
		t.Errorf("healthy run failed validation: %v", err)
	}
}

func TestValidateRejectsMissingAllocTelemetry(t *testing.T) {
	eng, _ := mkCounterEng()
	w := &workload.Disjoint{Accesses: 4}
	res, err := Run(eng, w, Options{Workers: 1, Duration: 20 * time.Millisecond, Warmup: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	res.AllocsPerCommit = 0
	if err := res.Validate(); err == nil {
		t.Error("zero allocs/commit must be rejected (snapshot predates telemetry)")
	}
	res.AllocsPerCommit, res.BytesPerCommit = 10, 0
	if err := res.Validate(); err == nil {
		t.Error("zero bytes/commit must be rejected")
	}
}

func TestRunPropagatesInitError(t *testing.T) {
	eng, _ := mkCounterEng()
	w := &workload.Disjoint{Accesses: -1}
	if _, err := Run(eng, w, Options{Workers: 1, Duration: time.Millisecond}); err == nil {
		t.Error("init error must propagate")
	}
}

// failingWorkload errors on the third step of worker 0.
type failingWorkload struct{ boom error }

func (f *failingWorkload) Name() string                              { return "failing" }
func (f *failingWorkload) Init(eng engine.Engine, workers int) error { return nil }
func (f *failingWorkload) Step(eng engine.Engine, th engine.Thread, id int) func() error {
	n := 0
	return func() error {
		if id == 0 {
			if n++; n == 3 {
				return f.boom
			}
		}
		return nil
	}
}

func TestRunPropagatesStepError(t *testing.T) {
	eng, _ := mkCounterEng()
	boom := errors.New("boom")
	_, err := Run(eng, &failingWorkload{boom: boom}, Options{Workers: 2, Duration: 30 * time.Millisecond, Warmup: time.Millisecond})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
}

func TestSweep(t *testing.T) {
	w := &workload.Disjoint{Accesses: 2}
	results, err := Sweep(mkCounterEng, w, []int{1, 2}, Options{Duration: 30 * time.Millisecond, Warmup: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	if results[0].Workers != 1 || results[1].Workers != 2 {
		t.Errorf("worker counts wrong: %d, %d", results[0].Workers, results[1].Workers)
	}
}

func TestRunAcross(t *testing.T) {
	engines := []string{"lsa/shared", "tl2", "rstmval", "wordstm"}
	mk := func() []Workload {
		return []Workload{&workload.Bank{Accounts: 8, Seed: 3}}
	}
	results, err := RunAcross(engines, mk, engine.Options{Nodes: 2},
		Options{Workers: 2, Duration: 20 * time.Millisecond, Warmup: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(engines) {
		t.Fatalf("results = %d, want %d", len(results), len(engines))
	}
	for i, r := range results {
		if r.Engine != engines[i] {
			t.Errorf("result %d engine = %q, want %q", i, r.Engine, engines[i])
		}
		if r.Txs == 0 {
			t.Errorf("%s: no transactions", r.Engine)
		}
		if r.Stats.Commits == 0 {
			t.Errorf("%s: no commits counted", r.Engine)
		}
	}
}

func TestRunAcrossUnknownEngine(t *testing.T) {
	mk := func() []Workload { return []Workload{&workload.Bank{Accounts: 4}} }
	if _, err := RunAcross([]string{"nope"}, mk, engine.Options{},
		Options{Workers: 1, Duration: time.Millisecond}); err == nil {
		t.Error("unknown engine must error")
	}
}
