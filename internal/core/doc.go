// Package core implements LSA-RT, the Real-Time Lazy Snapshot Algorithm of
// Riegel, Fetzer and Felber ("Time-based Transactional Memory with Scalable
// Time Bases", SPAA 2007): an object-based, multi-version software
// transactional memory whose notion of time is pluggable.
//
// # Protocol
//
// Every committed object version carries a validity range [⌊v.R⌋, ⌈v.R⌉]:
// it becomes valid at its writer's commit time and is superseded one tick
// before the next version's commit time. A transaction T incrementally
// maintains its own validity range T.R — the intersection of the ranges of
// every version it has accessed. While T.R is non-empty, the versions T has
// read are a consistent snapshot (they were all valid simultaneously), so
// the engine never re-validates the read set on ordinary accesses. The
// moving parts (paper Algorithms 2–3):
//
//   - Open (read): select the most recent committed version overlapping
//     T.R; intersect T.R with its range; abort if empty. Declared read-only
//     transactions may instead select an older version overlapping T.R —
//     that is what makes long scans abort-free while history suffices.
//   - Extend: recompute ⌈T.R⌉ against the current time when the snapshot
//     is too old for a version the transaction needs. A superseded version
//     in the read set closes the transaction (no extension can help).
//   - Open (write): register as the object's writer (visible writes,
//     DSTM-style), buffer a tentative version, and resolve conflicts with
//     registered writers through the pluggable ContentionManager.
//   - Commit (update transactions): CAS active→committing, fix the commit
//     time CT with a fresh timestamp, check every accessed version is still
//     valid at CT, then CAS committing→committed — which atomically
//     publishes all tentative versions. Any thread can complete a
//     committing transaction (helping); every step is an idempotent CAS.
//
// # Structure
//
// Object holds an atomically-swapped locator {writer, tentative version,
// committed head}; committed versions chain newest-first and are trimmed to
// the runtime's MaxVersions. Timestamp comparisons delegate to
// internal/timebase, which masks the reading error of imprecise
// (externally synchronized) clocks, so the same engine runs on shared
// counters, hardware clocks, and software-corrected clocks.
//
// # Deviations from the paper's pseudo-code
//
// Three deliberate, documented deviations (rationale at the definitions):
//
//   - getPrelimUB helps a committing writer fix its commit time before
//     reasoning about it (ensureCT): the pseudo-code returns the caller's
//     timestamp while CT is unset, which under preemption lets a commit
//     land in the reasoned-about past; the paper's §2.4 prose requires the
//     wait/help this implements.
//   - The snapshot's upper bound is clamped to "now" on first use instead
//     of staying ∞ (effLimit), implementing the §1.1 rule that reading a
//     most-recent version bounds the snapshot at the current time.
//   - Update transactions always read most-recent versions (extending as
//     needed): reading an older version would make their commit-time
//     extension impossible, so the flexibility is reserved for read-only
//     transactions, as in the authors' LSA-STM.
//
// Config.SnapshotIsolation additionally provides the weaker isolation level
// of the authors' companion work (reference [10] of the paper): reads stay
// at the begin snapshot and only write-write conflicts abort.
package core
