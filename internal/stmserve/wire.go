package stmserve

import (
	"errors"
	"fmt"
	"strconv"
)

// The line protocol: one request per line, one response per line, fields
// separated by single spaces — trivially debuggable with nc and cheap to
// parse (the tokenizer walks the byte slice in place; encode appends to a
// caller-reused buffer, so a steady-state connection allocates only what
// the response values force).
//
// Requests:
//
//	PING
//	INFO
//	STATS
//	PROMOTE                   seal a standby's stream; start serving
//	R <key>                   read
//	W <key> <val>             write
//	T <from> <to> <amount>    transfer
//	C <key> <old> <new>       compare-and-set
//	SNAP <key>...             consistent read-only snapshot
//	MR <key>...               batch read (update-capable transaction)
//	MW <key> <val> [<key> <val>]...  batch write
//	SADD <key> | SREM <key> | SHAS <key>   set add / remove / contains
//
// Responses:
//
//	OK [<text>] [<int>...]    Text (INFO engine name, STATS JSON — a single
//	                          space-free token) then the numeric results
//	ERR <message>             op-level failure
//
// A response's Text token is distinguishable from the numeric results
// because no Text the service emits parses as an integer.

// wireOps maps the line-protocol verb to the Op. (INFO/STATS/PING share the
// JSON names; the transactional verbs are terse because they are what load
// generators hammer.)
var wireOps = map[string]Op{
	"PING": OpPing, "INFO": OpInfo, "STATS": OpStats, "PROMOTE": OpPromote,
	"R": OpRead, "W": OpWrite, "T": OpTransfer, "C": OpCAS,
	"SNAP": OpSnapshot, "MR": OpBatchRead, "MW": OpBatchWrite,
	"SADD": OpSetAdd, "SREM": OpSetRemove, "SHAS": OpSetContains,
}

var wireVerbs = func() [numOps]string {
	var v [numOps]string
	for verb, op := range wireOps {
		v[op] = verb
	}
	return v
}()

// nextToken returns the first space-separated token of line and the rest.
// Empty tokens (runs of spaces) are skipped.
func nextToken(line []byte) (tok, rest []byte) {
	for len(line) > 0 && line[0] == ' ' {
		line = line[1:]
	}
	i := 0
	for i < len(line) && line[i] != ' ' {
		i++
	}
	return line[:i], line[i:]
}

// errBadInt is the static parse failure (callers add the token and verb);
// a static error keeps the warm parse path allocation-free, unlike
// strconv.ParseInt whose string argument escapes into its error.
var errBadInt = errors.New("not an integer")

func parseInt(tok []byte) (int64, error) {
	i, neg := 0, false
	if len(tok) > 0 && (tok[0] == '-' || tok[0] == '+') {
		neg = tok[0] == '-'
		i = 1
	}
	if i == len(tok) {
		return 0, errBadInt
	}
	var n uint64
	for ; i < len(tok); i++ {
		d := tok[i] - '0'
		if d > 9 {
			return 0, errBadInt
		}
		if n > (1<<63)/10 {
			return 0, errBadInt // would overflow int64 on the next digit
		}
		n = n*10 + uint64(d)
	}
	if neg {
		if n > 1<<63 {
			return 0, errBadInt
		}
		return -int64(n), nil
	}
	if n > 1<<63-1 {
		return 0, errBadInt
	}
	return int64(n), nil
}

// ParseRequest decodes one protocol line into req, reusing req's slices.
// The line must not contain the trailing newline.
func ParseRequest(line []byte, req *Request) error {
	*req = Request{Op: OpInvalid, Keys: req.Keys[:0], Vals: req.Vals[:0]}
	verb, rest := nextToken(line)
	if len(verb) == 0 {
		return fmt.Errorf("stmserve: empty request line")
	}
	op, ok := wireOps[string(verb)]
	if !ok {
		return fmt.Errorf("stmserve: unknown verb %q", verb)
	}
	req.Op = op

	// ints collects the line's remaining integer fields.
	var ints [3]int64
	need := 0
	switch op {
	case OpPing, OpInfo, OpStats, OpPromote:
	case OpRead, OpSetAdd, OpSetRemove, OpSetContains:
		need = 1
	case OpWrite:
		need = 2
	case OpTransfer, OpCAS:
		need = 3
	case OpSnapshot, OpBatchRead:
		for {
			tok, r := nextToken(rest)
			if len(tok) == 0 {
				break
			}
			n, err := parseInt(tok)
			if err != nil {
				return fmt.Errorf("stmserve: %s: bad key %q", verb, tok)
			}
			req.Keys = append(req.Keys, int(n))
			rest = r
		}
		if len(req.Keys) == 0 {
			return fmt.Errorf("stmserve: %s needs at least one key", verb)
		}
		return expectEnd(verb, rest)
	case OpBatchWrite:
		for {
			tok, r := nextToken(rest)
			if len(tok) == 0 {
				break
			}
			k, err := parseInt(tok)
			if err != nil {
				return fmt.Errorf("stmserve: MW: bad key %q", tok)
			}
			tok, r = nextToken(r)
			if len(tok) == 0 {
				return fmt.Errorf("stmserve: MW: key %d without a value", k)
			}
			v, err := parseInt(tok)
			if err != nil {
				return fmt.Errorf("stmserve: MW: bad value %q", tok)
			}
			req.Keys = append(req.Keys, int(k))
			req.Vals = append(req.Vals, v)
			rest = r
		}
		if len(req.Keys) == 0 {
			return fmt.Errorf("stmserve: MW needs at least one key-value pair")
		}
		return nil
	}
	for i := 0; i < need; i++ {
		tok, r := nextToken(rest)
		if len(tok) == 0 {
			return fmt.Errorf("stmserve: %s needs %d fields, got %d", verb, need, i)
		}
		n, err := parseInt(tok)
		if err != nil {
			return fmt.Errorf("stmserve: %s: bad field %q", verb, tok)
		}
		ints[i] = n
		rest = r
	}
	switch op {
	case OpRead, OpSetAdd, OpSetRemove, OpSetContains:
		req.Key = int(ints[0])
	case OpWrite:
		req.Key, req.Val = int(ints[0]), ints[1]
	case OpTransfer:
		req.Key, req.Key2, req.Val = int(ints[0]), int(ints[1]), ints[2]
	case OpCAS:
		req.Key, req.Val, req.Val2 = int(ints[0]), ints[1], ints[2]
	}
	return expectEnd(verb, rest)
}

func expectEnd(verb, rest []byte) error {
	if tok, _ := nextToken(rest); len(tok) != 0 {
		return fmt.Errorf("stmserve: %s: trailing field %q", verb, tok)
	}
	return nil
}

// AppendRequest encodes req as one protocol line (no newline) appended to
// dst.
func AppendRequest(dst []byte, req *Request) ([]byte, error) {
	if req.Op <= OpInvalid || req.Op >= numOps {
		return dst, fmt.Errorf("stmserve: cannot encode op %v", req.Op)
	}
	dst = append(dst, wireVerbs[req.Op]...)
	appendInt := func(n int64) {
		dst = append(dst, ' ')
		dst = strconv.AppendInt(dst, n, 10)
	}
	switch req.Op {
	case OpPing, OpInfo, OpStats, OpPromote:
	case OpRead, OpSetAdd, OpSetRemove, OpSetContains:
		appendInt(int64(req.Key))
	case OpWrite:
		appendInt(int64(req.Key))
		appendInt(req.Val)
	case OpTransfer:
		appendInt(int64(req.Key))
		appendInt(int64(req.Key2))
		appendInt(req.Val)
	case OpCAS:
		appendInt(int64(req.Key))
		appendInt(req.Val)
		appendInt(req.Val2)
	case OpSnapshot, OpBatchRead:
		for _, k := range req.Keys {
			appendInt(int64(k))
		}
	case OpBatchWrite:
		if len(req.Keys) != len(req.Vals) {
			return dst, fmt.Errorf("stmserve: cannot encode batch write with %d keys but %d values", len(req.Keys), len(req.Vals))
		}
		for i, k := range req.Keys {
			appendInt(int64(k))
			appendInt(req.Vals[i])
		}
	}
	return dst, nil
}

// AppendResponse encodes resp as one protocol line (no newline) appended to
// dst.
func AppendResponse(dst []byte, resp *Response) []byte {
	if resp.Err != "" {
		dst = append(dst, "ERR "...)
		return append(dst, resp.Err...)
	}
	dst = append(dst, "OK"...)
	if resp.Text != "" {
		dst = append(dst, ' ')
		dst = append(dst, resp.Text...)
	}
	for _, v := range resp.Vals {
		dst = append(dst, ' ')
		dst = strconv.AppendInt(dst, v, 10)
	}
	return dst
}

// ParseResponse decodes one response line into resp, reusing resp's Vals.
// An ERR line populates resp.Err and returns nil — op-level failures are
// data, not transport errors.
func ParseResponse(line []byte, resp *Response) error {
	resp.Reset()
	tok, rest := nextToken(line)
	switch string(tok) {
	case "OK":
		first := true
		for {
			tok, r := nextToken(rest)
			if len(tok) == 0 {
				return nil
			}
			n, err := parseInt(tok)
			if err != nil {
				if !first {
					return fmt.Errorf("stmserve: bad response value %q", tok)
				}
				// The single non-numeric leading token is the Text field.
				resp.Text = string(tok)
			} else {
				resp.Vals = append(resp.Vals, n)
			}
			first = false
			rest = r
		}
	case "ERR":
		for len(rest) > 0 && rest[0] == ' ' {
			rest = rest[1:]
		}
		if len(rest) == 0 {
			resp.Err = "unknown error"
		} else {
			resp.Err = string(rest)
		}
		return nil
	default:
		return fmt.Errorf("stmserve: malformed response line %q", line)
	}
}
