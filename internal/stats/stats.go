// Package stats provides the small summary-statistics and text-table
// helpers shared by the benchmark harness and the experiment CLIs.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample of measurements.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
}

// Summarize computes a Summary over xs. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation. xs need not be sorted; it is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Table renders aligned text tables for experiment output.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; missing cells render empty, extra cells widen the
// table.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of formatted cells: each argument is rendered with
// %v.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with right-aligned numeric-looking columns.
func (t *Table) String() string {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	cell := func(row []string, i int) string {
		if i < len(row) {
			return row[i]
		}
		return ""
	}
	for i := 0; i < cols; i++ {
		if i < len(t.headers) && len(t.headers[i]) > width[i] {
			width[i] = len(t.headers[i])
		}
		for _, r := range t.rows {
			if n := len(cell(r, i)); n > width[i] {
				width[i] = n
			}
		}
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", width[i], cell(row, i))
		}
		b.WriteByte('\n')
	}
	if len(t.headers) > 0 {
		writeRow(t.headers)
		for i := 0; i < cols; i++ {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat("-", width[i]))
		}
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no quoting; intended for
// numeric experiment output).
func (t *Table) CSV() string {
	var b strings.Builder
	if len(t.headers) > 0 {
		b.WriteString(strings.Join(t.headers, ","))
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
