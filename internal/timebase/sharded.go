package timebase

import (
	"fmt"
	"sync/atomic"
)

// DefaultShardWindow is the default epoch window of NewShardedCounter, in
// ticks. Larger windows touch the shared epoch base less often (better
// commit scaling) but widen the masked uncertainty gap 2·dev = window, which
// ages freshly committed versions more aggressively (more aborts on hot,
// recently written objects).
const DefaultShardWindow = 32

// ShardedCounter is the scalable counter time base the paper's §1.2 analysis
// asks for: instead of one integer whose cache line every commit invalidates
// system-wide, time is kept in N cache-line-padded per-shard counters.
// GetNewTS bumps only the caller's shard — an uncontended fetch-and-add for
// workers on distinct shards — and the shards are lazily synchronized
// through a shared epoch base that is written only once per window/2 commits
// of the leading shard, not once per commit.
//
// Soundness comes from mapping the construction onto the paper's externally
// synchronized clock framework (§3.2) with the epoch base playing the role
// of real time: every timestamp a shard issues lies within [base, base+window]
// at the moment of issue (GetNewTS lifts a stale shard above the base and
// pushes the base up when the shard runs more than a window ahead), and the
// base is monotone. Two issued values more than window apart are therefore
// strictly ordered by base history, so timestamps carry Dev = window/2 and
// the masked ⪰ operators of Algorithm 5 order them exactly like clocks with
// bounded deviation: same-shard comparisons are exact (CID = 1+shard),
// cross-shard comparisons mask ±window/2.
//
// The lazy part: GetTime reads the local shard plus the read-mostly epoch
// line (for the window clamp) and writes nothing shared, so a shard that
// has not committed recently serves deliberately stale snapshots. Consistency is unaffected (reads at an old snapshot are still
// consistent, and update transactions revalidate at a fresh commit
// timestamp), but a stale or conflict-stuck thread makes no progress against
// fresh versions; Reconcile is the repair hook: it takes the max across all
// shards, advances it by one tick, and installs it as the local view. STM
// retry loops call it after an abort caused by a failed read-set validation,
// which both refreshes the local view and — because reconciliation itself
// ticks the clock — guarantees that repeated validation failures eventually
// age any fixed version past the masked window ("mostly-local clock,
// globally reconciled on conflict").
type ShardedCounter struct {
	shards []shard
	window int64 // even; issued values stay within [base, base+window]
	dev    int64 // window/2: the advertised deviation of issued timestamps

	_    [64]byte
	base atomic.Int64 // shared epoch base; read on commit, written ~2/window per commit
	_    [64]byte
}

// shard is one padded counter. Padding on both sides keeps neighbouring
// shards (and the epoch base) off each other's cache lines, which is the
// whole point of sharding the time base.
type shard struct {
	_ [64]byte
	c atomic.Int64
	_ [64]byte
}

// NewShardedCounter returns a sharded time base with the given number of
// shards (thread ids are taken modulo shards) and epoch window in ticks.
// shards < 1 is clamped to 1 (degenerating to a plain, exact-per-shard
// counter); window < 2 selects DefaultShardWindow, and odd windows are
// rounded up so the advertised deviation window/2 stays conservative.
func NewShardedCounter(shards int, window int64) *ShardedCounter {
	if shards < 1 {
		shards = 1
	}
	if window < 2 {
		window = DefaultShardWindow
	}
	window += window & 1
	sc := &ShardedCounter{
		shards: make([]shard, shards),
		window: window,
		dev:    window / 2,
	}
	// Start above the window so every issued timestamp is ⪰ the Zero
	// sentinel even under full cross-shard masking.
	sc.base.Store(window + 1)
	for i := range sc.shards {
		sc.shards[i].c.Store(window + 1)
	}
	return sc
}

// Clock implements TimeBase. Handles for ids mapping to the same shard share
// that shard's counter word, exactly like threads sharing a node clock.
func (sc *ShardedCounter) Clock(id int) Clock {
	s := id % len(sc.shards)
	return &shardClock{sc: sc, sh: &sc.shards[s], cid: int32(1 + s)}
}

// Name implements TimeBase.
func (sc *ShardedCounter) Name() string {
	return fmt.Sprintf("Sharded(%d, w=%d)", len(sc.shards), sc.window)
}

// Shards returns the shard count.
func (sc *ShardedCounter) Shards() int { return len(sc.shards) }

// Window returns the epoch window in ticks.
func (sc *ShardedCounter) Window() int64 { return sc.window }

// Base exposes the shared epoch base for tests.
func (sc *ShardedCounter) Base() int64 { return sc.base.Load() }

// Now returns the maximum value across all shards (the freshest view any
// reconciled clock could obtain), for tests and diagnostics.
func (sc *ShardedCounter) Now() int64 {
	m := sc.base.Load()
	for i := range sc.shards {
		if v := sc.shards[i].c.Load(); v > m {
			m = v
		}
	}
	return m
}

type shardClock struct {
	sc  *ShardedCounter
	sh  *shard
	cid int32
}

// GetTime reads the local shard and clamps it to base+window. The clamp
// closes a soundness hole: a concurrent same-shard GetNewTS publishes its
// incremented counter value before it has raised the base, and several
// stacked increments can push the shard arbitrarily far past base+window —
// a reading from that gap would order, under masking, ahead of timestamps
// other shards issue later. Clamped readings always satisfy the window
// invariant at the moment of the read. The base load stays cheap: the line
// is written only once per window/2 commits of the leading shard, so it is
// read-mostly and cached everywhere — the contended word of SharedCounter
// was hot because of the per-commit writes, not the reads. Stale values
// (below base) are returned as-is; claiming an older reading is always
// conservative, and the Reconcile repair path bounds how stale a view gets.
func (c *shardClock) GetTime() Timestamp {
	v := c.sh.c.Load()
	if lim := c.sc.base.Load() + c.sc.window; v > lim {
		v = lim
	}
	return Timestamp{TS: v, CID: c.cid, Dev: c.sc.dev}
}

// GetNewTS bumps the local shard and maintains the epoch invariant: the
// issued value is strictly above the base observed during the call, and the
// base ends up within a window of the issued value. The base write happens
// only when the shard has run half a window ahead, so the shared line is
// written once per window/2 commits of the leading shard instead of once per
// commit — that ratio is the scalability headline of this time base.
func (c *shardClock) GetNewTS() Timestamp {
	sc := c.sc
	v := c.sh.c.Add(1)
	b := sc.base.Load()
	if v <= b {
		// Stale shard: jump past the epoch base so the new timestamp is
		// never ordered before values already issued elsewhere. Without
		// this lift the masked ⪰ comparison would be unsound.
		v = c.sh.lift(b + 1)
	}
	if v-b > sc.window {
		// Advance the base in half-window chunks: the invariant only needs
		// base ≥ v−window, but leaving slack means the next window/2
		// commits of this shard touch no shared line at all.
		atomicMax(&sc.base, v-sc.dev)
	}
	return Timestamp{TS: v, CID: c.cid, Dev: sc.dev}
}

// Reconcile implements Reconciler: it synchronizes the local shard with the
// freshest value across all shards and advances the clock by one tick, so a
// thread whose validations keep failing against its stale local view both
// catches up and ages the offending versions. Reports whether the local
// shard moved.
func (c *shardClock) Reconcile() bool {
	sc := c.sc
	m := sc.Now() + 1
	// Raise the base before publishing the lifted shard value, so the
	// window invariant (shard ≤ base+window) holds at every intermediate
	// point and concurrent GetTime readers never need their clamp here.
	atomicMax(&sc.base, m-sc.window)
	return atomicMax(&c.sh.c, m)
}

// lift raises the shard counter to at least target and returns a value not
// previously issued on this shard. Every return value is the result of an
// atomic read-modify-write that strictly increased the counter, so values
// issued on one shard are unique even when threads sharing the shard race.
func (s *shard) lift(target int64) int64 {
	for {
		cur := s.c.Load()
		if cur >= target {
			return s.c.Add(1)
		}
		if s.c.CompareAndSwap(cur, target) {
			return target
		}
	}
}

// atomicMax raises a to at least v, reporting whether it advanced.
func atomicMax(a *atomic.Int64, v int64) bool {
	for {
		cur := a.Load()
		if cur >= v {
			return false
		}
		if a.CompareAndSwap(cur, v) {
			return true
		}
	}
}
