// Package tl2 is a compact reimplementation of the Transactional Locking II
// algorithm (Dice, Shalev, Shavit, DISC 2006), the lean single-version
// time-based STM the paper discusses in §1.2. It serves as a baseline
// against LSA-RT:
//
//   - one version per object — readers that arrive "too late" abort instead
//     of falling back to an older version;
//   - no validity-range extensions — an object may only be read if its last
//     update precedes the transaction's start time, except for the implicit
//     revalidation during commit;
//   - commit locks the write set, increments the global version clock, and
//     validates the read set against the start time.
//
// The global version clock is the same shared-counter time base whose
// scalability the paper questions; the optional commit-timestamp sharing
// optimization lives in the counter itself (timebase.TL2Counter) and is
// benchmarked separately.
package tl2

import (
	"errors"
	"sync/atomic"
)

// ErrAborted signals that the transaction attempt failed and was retried.
var ErrAborted = errors.New("tl2: transaction aborted")

// ErrReadOnly is returned by Write inside a read-only transaction.
var ErrReadOnly = errors.New("tl2: write inside read-only transaction")

// STM is a TL2 universe: a global version clock shared by all objects
// created against it.
type STM struct {
	_     [64]byte
	clock atomic.Int64
	_     [64]byte
}

// New creates a TL2 universe with the clock at zero.
func New() *STM { return &STM{} }

// Clock exposes the current global version, for tests.
func (s *STM) Clock() int64 { return s.clock.Load() }

// Object is a single-version transactional cell: a versioned lock word and
// the current value. The lock word holds version<<1|locked.
type Object struct {
	meta atomic.Int64
	val  atomic.Pointer[any]
}

// NewObject creates an object at version 0 holding initial.
func NewObject(initial any) *Object {
	o := &Object{}
	v := initial
	o.val.Store(&v)
	return o
}

func locked(meta int64) bool   { return meta&1 == 1 }
func version(meta int64) int64 { return meta >> 1 }

// Tx is one TL2 transaction attempt.
type Tx struct {
	stm      *STM
	rv       int64 // read version: global clock at start
	readOnly bool
	reads    []readEntry
	writes   []writeEntry
	windex   map[*Object]int
}

type readEntry struct {
	obj *Object
}

type writeEntry struct {
	obj *Object
	val any
}

// Read returns the object's value if its version precedes the
// transaction's start time; otherwise the attempt aborts (TL2 has no
// extensions and no old versions).
func (tx *Tx) Read(o *Object) (any, error) {
	if idx, ok := tx.windex[o]; ok {
		return tx.writes[idx].val, nil
	}
	m1 := o.meta.Load()
	if locked(m1) {
		return nil, ErrAborted
	}
	vp := o.val.Load()
	m2 := o.meta.Load()
	if m1 != m2 || version(m2) > tx.rv {
		return nil, ErrAborted
	}
	if !tx.readOnly {
		tx.reads = append(tx.reads, readEntry{obj: o})
	}
	return *vp, nil
}

// Write buffers the new value; it becomes visible at commit.
func (tx *Tx) Write(o *Object, val any) error {
	if tx.readOnly {
		return ErrReadOnly
	}
	if idx, ok := tx.windex[o]; ok {
		tx.writes[idx].val = val
		return nil
	}
	tx.writes = append(tx.writes, writeEntry{obj: o, val: val})
	if tx.windex == nil {
		tx.windex = make(map[*Object]int, 8)
	}
	tx.windex[o] = len(tx.writes) - 1
	return nil
}

// commit runs the TL2 commit protocol.
func (tx *Tx) commit() error {
	if len(tx.writes) == 0 {
		// Reads were individually validated against rv; nothing to do.
		return nil
	}
	// Phase 1: lock the write set (try-lock; abort on any conflict).
	lockedUpTo := -1
	for i := range tx.writes {
		o := tx.writes[i].obj
		m := o.meta.Load()
		if locked(m) || version(m) > tx.rv {
			tx.unlock(lockedUpTo)
			return ErrAborted
		}
		if !o.meta.CompareAndSwap(m, m|1) {
			tx.unlock(lockedUpTo)
			return ErrAborted
		}
		lockedUpTo = i
	}
	// Phase 2: increment the global version clock.
	wv := tx.stm.clock.Add(1)
	// Phase 3: validate the read set — unless rv+1 == wv, in which case no
	// transaction can have committed in between (the TL2 short cut).
	if wv != tx.rv+1 {
		for _, r := range tx.reads {
			m := r.obj.meta.Load()
			if _, own := tx.windex[r.obj]; own {
				continue
			}
			if locked(m) || version(m) > tx.rv {
				tx.unlock(lockedUpTo)
				return ErrAborted
			}
		}
	}
	// Phase 4: install values and release locks with the new version.
	for i := range tx.writes {
		w := &tx.writes[i]
		v := w.val
		w.obj.val.Store(&v)
		w.obj.meta.Store(wv << 1)
	}
	return nil
}

// unlock releases write locks [0..upTo] after a failed commit, restoring
// the pre-lock version.
func (tx *Tx) unlock(upTo int) {
	for i := 0; i <= upTo; i++ {
		o := tx.writes[i].obj
		o.meta.Store(o.meta.Load() &^ 1)
	}
}

// Thread is a worker context (API-compatible shape with the core engine's
// Thread so workloads translate directly).
type Thread struct {
	stm *STM
}

// Thread creates a worker context.
func (s *STM) Thread(id int) *Thread { return &Thread{stm: s} }

// Run executes fn transactionally, retrying on aborts.
func (t *Thread) Run(fn func(*Tx) error) error { return t.run(false, fn) }

// RunReadOnly executes fn as a read-only transaction. TL2 read-only
// transactions keep no read set at all: each read is validated against the
// start time, and commit is empty.
func (t *Thread) RunReadOnly(fn func(*Tx) error) error { return t.run(true, fn) }

func (t *Thread) run(readOnly bool, fn func(*Tx) error) error {
	for {
		tx := &Tx{stm: t.stm, rv: t.stm.clock.Load(), readOnly: readOnly}
		err := fn(tx)
		if err == nil {
			err = tx.commit()
		}
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrAborted) {
			return err
		}
	}
}
