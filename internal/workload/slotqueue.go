package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
)

// SlotQueue is the queue variant with per-slot cursors: where Queue funnels
// every operation through one global head/tail cursor pair (two cells hotter
// than anything else in the transaction), SlotQueue splits the ring into
// slot groups, each with its own head and tail cursor and its own slots.
// Producers and consumers start probing from a per-worker rotating group
// hint, so concurrent operations mostly land on disjoint cursor pairs and
// the cursor contention drops by roughly the group count.
//
// The contract is the usual one of relaxed concurrent queues: FIFO holds
// within each slot group, elements are conserved globally, but the global
// inter-group order is unspecified. Push reports false only when every
// group is full, Pop only when every group is empty — both checked inside
// one transaction, so the answer is a consistent snapshot.
type SlotQueue struct {
	// Groups is the number of independent cursor pairs (default 8).
	Groups int
	// SlotsPerGroup is each group's ring capacity (default 16).
	SlotsPerGroup int
	// Seed seeds the per-worker RNGs.
	Seed int64

	groups []slotGroup
}

// slotGroup is one independently cursored ring.
type slotGroup struct {
	head  engine.Cell // index of the next element to pop in this group
	tail  engine.Cell // index of the next free slot in this group
	slots []engine.Cell
}

// Name implements harness.Workload.
func (q *SlotQueue) Name() string {
	return fmt.Sprintf("slotqueue/%dx%d", q.numGroups(), q.slotsPerGroup())
}

func (q *SlotQueue) numGroups() int {
	if q.Groups == 0 {
		return 8
	}
	return q.Groups
}

func (q *SlotQueue) slotsPerGroup() int {
	if q.SlotsPerGroup == 0 {
		return 16
	}
	return q.SlotsPerGroup
}

// Init implements harness.Workload.
func (q *SlotQueue) Init(eng engine.Engine, workers int) error {
	if q.numGroups() < 1 {
		return fmt.Errorf("workload: SlotQueue.Groups must be ≥ 1, got %d", q.Groups)
	}
	if q.slotsPerGroup() < 1 {
		return fmt.Errorf("workload: SlotQueue.SlotsPerGroup must be ≥ 1, got %d", q.SlotsPerGroup)
	}
	q.groups = make([]slotGroup, q.numGroups())
	for i := range q.groups {
		g := &q.groups[i]
		g.head = eng.NewCell(0)
		g.tail = eng.NewCell(0)
		g.slots = make([]engine.Cell, q.slotsPerGroup())
		for s := range g.slots {
			g.slots[s] = eng.NewCell(0)
		}
	}
	return nil
}

// pushIn is Push's transactional body.
func (q *SlotQueue) pushIn(tx engine.Txn, v, hint int) (bool, error) {
	for i := 0; i < len(q.groups); i++ {
		g := &q.groups[(hint+i)%len(q.groups)]
		hv, err := engine.Get[int](tx, g.head)
		if err != nil {
			return false, err
		}
		tv, err := engine.Get[int](tx, g.tail)
		if err != nil {
			return false, err
		}
		if tv-hv >= len(g.slots) {
			continue
		}
		if err := engine.Set(tx, g.slots[tv%len(g.slots)], v); err != nil {
			return false, err
		}
		if err := engine.Set(tx, g.tail, tv+1); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

// Push appends v to the first non-full group probed from hint; it reports
// false if every group was full.
func (q *SlotQueue) Push(th engine.Thread, v, hint int) (bool, error) {
	var ok bool
	err := th.Run(func(tx engine.Txn) error {
		var err error
		ok, err = q.pushIn(tx, v, hint)
		return err
	})
	return ok, err
}

// popIn is Pop's transactional body.
func (q *SlotQueue) popIn(tx engine.Txn, hint int) (int, bool, error) {
	for i := 0; i < len(q.groups); i++ {
		g := &q.groups[(hint+i)%len(q.groups)]
		hv, err := engine.Get[int](tx, g.head)
		if err != nil {
			return 0, false, err
		}
		tv, err := engine.Get[int](tx, g.tail)
		if err != nil {
			return 0, false, err
		}
		if hv == tv {
			continue
		}
		sv, err := engine.Get[int](tx, g.slots[hv%len(g.slots)])
		if err != nil {
			return 0, false, err
		}
		if err := engine.Set(tx, g.head, hv+1); err != nil {
			return 0, false, err
		}
		return sv, true, nil
	}
	return 0, false, nil
}

// Pop removes the oldest element of the first non-empty group probed from
// hint; it reports false if every group was empty.
func (q *SlotQueue) Pop(th engine.Thread, hint int) (int, bool, error) {
	var out int
	var ok bool
	err := th.Run(func(tx engine.Txn) error {
		var err error
		out, ok, err = q.popIn(tx, hint)
		return err
	})
	return out, ok, err
}

// Len returns the current total number of queued elements across all groups
// as one consistent snapshot.
func (q *SlotQueue) Len(th engine.Thread) (int, error) {
	var n int
	err := th.RunReadOnly(func(tx engine.Txn) error {
		n = 0
		for i := range q.groups {
			g := &q.groups[i]
			hv, err := engine.Get[int](tx, g.head)
			if err != nil {
				return err
			}
			tv, err := engine.Get[int](tx, g.tail)
			if err != nil {
				return err
			}
			n += tv - hv
		}
		return nil
	})
	return n, err
}

// Step implements harness.Workload: even workers produce, odd workers
// consume, each rotating its group hint so the load spreads over all cursor
// pairs instead of re-hammering one.
func (q *SlotQueue) Step(eng engine.Engine, th engine.Thread, id int) func() error {
	rng := rand.New(rand.NewSource(q.Seed + int64(id)*193 + 11))
	hint := id % q.numGroups()
	var v int
	push := func(tx engine.Txn) error {
		_, err := q.pushIn(tx, v, hint)
		return err
	}
	pop := func(tx engine.Txn) error {
		_, _, err := q.popIn(tx, hint)
		return err
	}
	return func() error {
		hint++
		if id%2 == 0 {
			v = rng.Int()
			return th.Run(push)
		}
		return th.Run(pop)
	}
}
