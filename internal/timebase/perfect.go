package timebase

import "repro/internal/hwclock"

// PerfectClock is the time base of §3.1: perfectly synchronized real-time
// clocks. Every thread reads its node's register of a global hardware clock;
// because the registers are perfectly synchronized, reading a local register
// is indistinguishable from reading one global clock, but — unlike the shared
// counter — reads of distinct registers never contend with each other.
//
// getNewTS must return a value strictly greater than the invocation time
// (§2.4). If the device's read latency is at least one tick (as with the
// MMTimer, where a read takes 7–8 ticks), the value read has necessarily
// advanced past the invocation time and the busy-wait loop of Algorithm 4
// never spins; otherwise GetNewTS re-reads until the clock has ticked.
type PerfectClock struct {
	dev *hwclock.Device
}

// NewPerfectClock builds the time base on top of a simulated hardware clock
// device. The device must have zero configured offset and jitter — otherwise
// it is not perfectly synchronized and ExtSyncClock must be used instead.
func NewPerfectClock(dev *hwclock.Device) *PerfectClock {
	cfg := dev.Config()
	if cfg.MaxOffsetTicks != 0 || cfg.JitterTicks != 0 {
		panic("timebase: PerfectClock over a device with offsets/jitter; use NewExtSyncClock")
	}
	return &PerfectClock{dev: dev}
}

// NewMMTimer is a convenience constructor for the paper's default hardware
// configuration: a 20 MHz perfectly synchronized clock with 7-tick read
// latency and one register per node.
func NewMMTimer(nodes int) *PerfectClock {
	return NewPerfectClock(hwclock.New(hwclock.MMTimerConfig(nodes)))
}

// Clock implements TimeBase.
func (pc *PerfectClock) Clock(id int) Clock {
	return &perfectClock{dev: pc.dev, node: id % pc.dev.Nodes()}
}

// Name implements TimeBase.
func (pc *PerfectClock) Name() string { return "MMTimer" }

// Device exposes the underlying simulated hardware for experiments.
func (pc *PerfectClock) Device() *hwclock.Device { return pc.dev }

type perfectClock struct {
	dev  *hwclock.Device
	node int
	last int64
}

// GetTime reads the local register (Algorithm 4 lines 1–4).
func (c *perfectClock) GetTime() Timestamp {
	v := c.dev.NodeRead(c.node)
	if v > c.last {
		c.last = v
	}
	return Exact(v)
}

// GetNewTS re-reads the local register until the value is strictly greater
// than the value at invocation time (Algorithm 4 lines 5–11). With the
// MMTimer's read latency the first re-read already qualifies.
func (c *perfectClock) GetNewTS() Timestamp {
	ts := c.dev.NodeRead(c.node)
	t := ts
	for t <= ts {
		t = c.dev.NodeRead(c.node)
	}
	if t > c.last {
		c.last = t
	}
	return Exact(t)
}
