package core

// Status is the lifecycle state of a transaction (§2.3). The two-phase
// commit of update transactions passes through StatusCommitting so that
// other threads can help the transaction complete (or force it to abort)
// instead of blocking behind it.
type Status int32

const (
	// StatusActive — the transaction is executing its body.
	StatusActive Status = iota
	// StatusCommitting — an update transaction has entered the first commit
	// phase: its read/write set is frozen, its commit time is being chosen
	// and validated. Any thread may complete the commit from here.
	StatusCommitting
	// StatusCommitted — terminal: all written versions became valid
	// atomically at the commit time.
	StatusCommitted
	// StatusAborted — terminal: all written versions were discarded.
	StatusAborted
)

// String renders the status for diagnostics.
func (s Status) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusCommitting:
		return "committing"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return "invalid"
	}
}

// Terminal reports whether the status is committed or aborted.
func (s Status) Terminal() bool {
	return s == StatusCommitted || s == StatusAborted
}

// AbortCause classifies why a transaction aborted, for the runtime's
// statistics. The breakdown matters when reproducing §4.3: synchronization
// errors show up as snapshot aborts (empty validity range), not conflicts.
type AbortCause int

const (
	// CauseNone — not aborted.
	CauseNone AbortCause = iota
	// CauseSnapshot — the validity range became empty: no version of some
	// object overlaps the transaction's snapshot (Algorithm 2 line 31,
	// Algorithm 3 line 11).
	CauseSnapshot
	// CauseValidation — commit-time extension failed: some read version was
	// superseded before the commit time (Algorithm 2 line 46).
	CauseValidation
	// CauseConflict — the contention manager resolved a write-write conflict
	// against this transaction.
	CauseConflict
	// CauseExternal — another thread aborted this transaction (it lost a
	// conflict it never saw, or a helper failed its validation).
	CauseExternal
)

// String renders the cause for diagnostics.
func (c AbortCause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseSnapshot:
		return "snapshot"
	case CauseValidation:
		return "validation"
	case CauseConflict:
		return "conflict"
	case CauseExternal:
		return "external"
	default:
		return "invalid"
	}
}
