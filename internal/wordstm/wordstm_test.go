package wordstm

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/hwclock"
	"repro/internal/timebase"
)

func newSTM(t *testing.T, words int) *STM {
	t.Helper()
	s, err := New(timebase.NewSharedCounter(), words)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newClockSTM(t *testing.T, words int) *STM {
	t.Helper()
	s, err := New(timebase.NewPerfectClock(hwclock.New(hwclock.IdealConfig(8))), words)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(timebase.NewSharedCounter(), 0); err == nil {
		t.Error("zero words must be rejected")
	}
	// Imprecise time bases are rejected: lock words cannot carry deviations.
	dev := hwclock.New(hwclock.Config{TickHz: 1_000_000_000, Nodes: 2, MaxOffsetTicks: 10, Seed: 1})
	ec, err := timebase.NewExtSyncClock(dev, dev.Config().MaxErrorTicks())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(ec, 64); err == nil {
		t.Error("externally synchronized base must be rejected by the word STM")
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	for _, mk := range []func(*testing.T, int) *STM{newSTM, newClockSTM} {
		s := mk(t, 16)
		th := s.Thread(0)
		if err := th.Run(func(tx *Tx) error {
			if err := tx.Store(3, 42); err != nil {
				return err
			}
			v, err := tx.Load(3)
			if err != nil {
				return err
			}
			if v != 42 {
				t.Errorf("read-own-write = %d, want 42", v)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		var got int64
		if err := th.RunReadOnly(func(tx *Tx) error {
			v, err := tx.Load(3)
			got = v
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if got != 42 {
			t.Errorf("committed value = %d, want 42", got)
		}
	}
}

func TestOutOfRange(t *testing.T) {
	s := newSTM(t, 4)
	th := s.Thread(0)
	err := th.Run(func(tx *Tx) error {
		_, err := tx.Load(100)
		return err
	})
	if !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Load(100) = %v, want ErrOutOfRange", err)
	}
	err = th.Run(func(tx *Tx) error { return tx.Store(100, 1) })
	if !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Store(100) = %v, want ErrOutOfRange", err)
	}
	if err := s.SetInitial(100, 1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("SetInitial(100) = %v, want ErrOutOfRange", err)
	}
}

func TestReadOnlyRejectsStore(t *testing.T) {
	s := newSTM(t, 4)
	err := s.Thread(0).RunReadOnly(func(tx *Tx) error { return tx.Store(0, 1) })
	if !errors.Is(err, ErrReadOnly) {
		t.Errorf("got %v, want ErrReadOnly", err)
	}
}

func TestUserErrorReleasesLocks(t *testing.T) {
	s := newSTM(t, 8)
	th := s.Thread(0)
	boom := errors.New("boom")
	if err := th.Run(func(tx *Tx) error {
		if err := tx.Store(1, 5); err != nil {
			return err
		}
		return boom
	}); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	// The stripe must be unlocked and the value unchanged.
	if err := th.Run(func(tx *Tx) error {
		v, err := tx.Load(1)
		if err != nil {
			return err
		}
		if v != 0 {
			t.Errorf("value = %d, want rollback to 0", v)
		}
		return tx.Store(1, 7)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSetInitial(t *testing.T) {
	s := newSTM(t, 8)
	if err := s.SetInitial(2, 77); err != nil {
		t.Fatal(err)
	}
	th := s.Thread(0)
	var got int64
	if err := th.RunReadOnly(func(tx *Tx) error {
		v, err := tx.Load(2)
		got = v
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got != 77 {
		t.Errorf("value = %d, want 77", got)
	}
}

func TestConcurrentIncrements(t *testing.T) {
	for _, mk := range []func(*testing.T, int) *STM{newSTM, newClockSTM} {
		s := mk(t, 4)
		const workers, per = 8, 200
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				th := s.Thread(id)
				for i := 0; i < per; i++ {
					if err := th.Run(func(tx *Tx) error {
						v, err := tx.Load(0)
						if err != nil {
							return err
						}
						return tx.Store(0, v+1)
					}); err != nil {
						t.Errorf("worker %d: %v", id, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		var got int64
		if err := s.Thread(99).RunReadOnly(func(tx *Tx) error {
			v, err := tx.Load(0)
			got = v
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if got != workers*per {
			t.Errorf("counter = %d, want %d (lost updates)", got, workers*per)
		}
	}
}

func TestTornPairNeverObserved(t *testing.T) {
	s := newSTM(t, 64) // distinct stripes likely for 2 addresses
	const a, b = Addr(0), Addr(33)
	stop := make(chan struct{})
	var writer, readers sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		th := s.Thread(0)
		for i := int64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := th.Run(func(tx *Tx) error {
				if err := tx.Store(a, i); err != nil {
					return err
				}
				return tx.Store(b, -i)
			}); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()
	for r := 1; r <= 3; r++ {
		readers.Add(1)
		go func(id int) {
			defer readers.Done()
			th := s.Thread(id)
			for i := 0; i < 300; i++ {
				if err := th.RunReadOnly(func(tx *Tx) error {
					av, err := tx.Load(a)
					if err != nil {
						return err
					}
					bv, err := tx.Load(b)
					if err != nil {
						return err
					}
					if av+bv != 0 {
						t.Errorf("torn pair: %d/%d", av, bv)
					}
					return nil
				}); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}(r)
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}

func TestBankConservation(t *testing.T) {
	s := newSTM(t, 16)
	const accounts, initial = 16, 1000
	for i := 0; i < accounts; i++ {
		if err := s.SetInitial(Addr(i), initial); err != nil {
			t.Fatal(err)
		}
	}
	const workers, per = 4, 150
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := s.Thread(id)
			for i := 0; i < per; i++ {
				from := Addr((id + i) % accounts)
				to := Addr((id*3 + i*7 + 1) % accounts)
				if from == to {
					to = Addr((int(to) + 1) % accounts)
				}
				if err := th.Run(func(tx *Tx) error {
					fv, err := tx.Load(from)
					if err != nil {
						return err
					}
					tv, err := tx.Load(to)
					if err != nil {
						return err
					}
					if err := tx.Store(from, fv-1); err != nil {
						return err
					}
					return tx.Store(to, tv+1)
				}); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var sum int64
	if err := s.Thread(99).RunReadOnly(func(tx *Tx) error {
		sum = 0
		for i := 0; i < accounts; i++ {
			v, err := tx.Load(Addr(i))
			if err != nil {
				return err
			}
			sum += v
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum != accounts*initial {
		t.Errorf("total = %d, want %d", sum, accounts*initial)
	}
}

func TestSameStripeWrites(t *testing.T) {
	// Force two addresses into one stripe table entry by using a tiny
	// memory: writes to both must coexist in one transaction.
	s := newSTM(t, 2)
	th := s.Thread(0)
	if err := th.Run(func(tx *Tx) error {
		if err := tx.Store(0, 10); err != nil {
			return err
		}
		if err := tx.Store(1, 20); err != nil {
			return err
		}
		v0, err := tx.Load(0)
		if err != nil {
			return err
		}
		v1, err := tx.Load(1)
		if err != nil {
			return err
		}
		if v0 != 10 || v1 != 20 {
			t.Errorf("same-stripe rw = %d/%d, want 10/20", v0, v1)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestExtensionAllowsLateRead(t *testing.T) {
	// A transaction that started before a concurrent commit must still be
	// able to read the updated word by extending its snapshot (no
	// intervening conflicting reads).
	s := newSTM(t, 8)
	th1 := s.Thread(0)
	th2 := s.Thread(1)
	attempts := 0
	if err := th1.Run(func(tx *Tx) error {
		attempts++
		if attempts == 1 {
			if err := th2.Run(func(tx2 *Tx) error { return tx2.Store(5, 123) }); err != nil {
				t.Fatal(err)
			}
		}
		v, err := tx.Load(5)
		if err != nil {
			return err
		}
		if v != 123 {
			t.Errorf("read %d, want 123 via extension", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if attempts != 1 {
		t.Errorf("extension should have saved the first attempt, took %d", attempts)
	}
}

func TestWordsAndTimeBaseAccessors(t *testing.T) {
	s := newSTM(t, 32)
	if s.Words() != 32 {
		t.Errorf("Words = %d", s.Words())
	}
	if s.TimeBase().Name() != "SharedCounter" {
		t.Errorf("TimeBase = %s", s.TimeBase().Name())
	}
}
