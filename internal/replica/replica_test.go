// The replication fault matrix: every scenario runs primary and follower in
// one process over fault-injectable Link pairs, so partition, slow-follower,
// torn-stream and promote-during-catchup are deterministic and race-clean.
package replica

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/engine"
)

// node is one replica-set member: a durable engine over norec with nCells
// int cells created in the deterministic order the replication contract
// requires of both sides.
type node struct {
	eng   *durable.Engine
	cells []engine.Cell
}

func newNode(t *testing.T, nCells int) *node {
	t.Helper()
	e, err := durable.Wrap(engine.MustNew("norec", engine.Options{}), durable.Options{
		Dir:           t.TempDir(),
		Fsync:         durable.FsyncNever,
		SnapshotBytes: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := &node{eng: e}
	for i := 0; i < nCells; i++ {
		n.cells = append(n.cells, e.NewCell(0))
	}
	t.Cleanup(func() { e.WALClose() })
	return n
}

// read returns cell i's value through a read-only transaction.
func (n *node) read(t *testing.T, i int) int {
	t.Helper()
	var got int
	if err := n.eng.Thread(99).RunReadOnly(func(tx engine.Txn) error {
		v, err := engine.Get[int](tx, n.cells[i])
		got = v
		return err
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

// bump increments cell i on the primary; the returned error is the client
// acknowledgment (gated in quorum mode).
func (n *node) bump(i int) error {
	return n.eng.Thread(0).Run(func(tx engine.Txn) error {
		return engine.Update(tx, n.cells[i], func(v int) int { return v + 1 })
	})
}

// cluster wires a primary to one follower over fresh fault Links per dial,
// with a partition switch that also fails new dials.
type cluster struct {
	t    *testing.T
	pn   *node
	prim *Primary

	mu          sync.Mutex
	partitioned bool
	link        *Link // most recent link
}

func newCluster(t *testing.T, nCells int, popt PrimaryOptions) *cluster {
	t.Helper()
	c := &cluster{t: t, pn: newNode(t, nCells)}
	c.prim = NewPrimary(c.pn.eng, popt)
	t.Cleanup(c.prim.Close)
	return c
}

// dial is the follower's Dialer: a fresh Link whose B end feeds the
// primary, unless partitioned.
func (c *cluster) dial() (net.Conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.partitioned {
		return nil, errors.New("network unreachable")
	}
	l := NewLink()
	c.link = l
	go c.prim.HandleConn(l.B())
	return l.A(), nil
}

func (c *cluster) partition() {
	c.mu.Lock()
	c.partitioned = true
	if c.link != nil {
		c.link.Partition()
	}
	c.mu.Unlock()
}

func (c *cluster) heal() {
	c.mu.Lock()
	c.partitioned = false
	if c.link != nil {
		c.link.Heal()
	}
	c.mu.Unlock()
}

// fastFollower are stream options tuned for test time, not production.
func fastFollower() FollowerOptions {
	return FollowerOptions{
		BackoffMin:    5 * time.Millisecond,
		BackoffMax:    50 * time.Millisecond,
		StreamTimeout: 300 * time.Millisecond,
		Seed:          7,
	}
}

func fastPrimary() PrimaryOptions {
	return PrimaryOptions{
		Heartbeat:     30 * time.Millisecond,
		StreamTimeout: 300 * time.Millisecond,
	}
}

// waitFor polls cond every millisecond until it holds or the deadline
// passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func (c *cluster) waitCaughtUp(fn *node, d time.Duration) {
	c.t.Helper()
	waitFor(c.t, d, "follower catch-up", func() bool {
		return fn.eng.AppendedSeq() == c.pn.eng.AppendedSeq()
	})
}

func TestLiveTailReplication(t *testing.T) {
	c := newCluster(t, 4, fastPrimary())
	fn := newNode(t, 4)
	fol := NewFollower(fn.eng, c.dial, fastFollower())
	defer fol.Close()

	for i := 0; i < 50; i++ {
		if err := c.pn.bump(i % 4); err != nil {
			t.Fatal(err)
		}
	}
	c.waitCaughtUp(fn, 5*time.Second)
	for i := 0; i < 4; i++ {
		if got, want := fn.read(t, i), c.pn.read(t, i); got != want {
			t.Errorf("cell %d: follower %d, primary %d", i, got, want)
		}
	}
	// Standby refuses local updates but serves reads (exercised above).
	if err := fn.bump(0); !errors.Is(err, durable.ErrStandby) {
		t.Errorf("standby update: err = %v, want ErrStandby", err)
	}
	st := c.prim.Stats()
	if st.Followers != 1 || st.Accepts == 0 {
		t.Errorf("primary stats: %+v, want 1 live follower", st)
	}
}

func TestSnapshotCatchUp(t *testing.T) {
	c := newCluster(t, 2, fastPrimary())
	for i := 0; i < 30; i++ {
		if err := c.pn.bump(i % 2); err != nil {
			t.Fatal(err)
		}
	}
	fn := newNode(t, 2)
	fol := NewFollower(fn.eng, c.dial, fastFollower())
	defer fol.Close()
	c.waitCaughtUp(fn, 5*time.Second)
	if got := fn.read(t, 0) + fn.read(t, 1); got != 30 {
		t.Errorf("follower total %d, want 30", got)
	}
	if s := fol.Stats(); s.Snapshots == 0 {
		t.Errorf("stats %+v: catch-up from behind must install a snapshot", s)
	}
}

func TestQuorumGate(t *testing.T) {
	popt := fastPrimary()
	popt.Quorum = 1
	popt.AckTimeout = 150 * time.Millisecond
	c := newCluster(t, 1, popt)

	// No follower: the commit journals but the ack times out.
	if err := c.pn.bump(0); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("no-follower commit: err = %v, want ErrNoQuorum", err)
	}
	// The unacked commit is still durable locally and still counts in the
	// value — the gate withholds acknowledgment, not the commit.
	if got := c.pn.read(t, 0); got != 1 {
		t.Fatalf("cell after unacked commit = %d, want 1", got)
	}

	fn := newNode(t, 1)
	fol := NewFollower(fn.eng, c.dial, fastFollower())
	defer fol.Close()
	waitFor(t, 5*time.Second, "follower connect", func() bool { return fol.Stats().Connected })
	c.waitCaughtUp(fn, 5*time.Second)
	if err := c.pn.bump(0); err != nil {
		t.Fatalf("quorum commit with live follower: %v", err)
	}
	// A quorum-acked commit is already applied on the follower, by
	// definition: that is the zero-acked-loss invariant failover relies on.
	if got := fn.read(t, 0); got != 2 {
		t.Errorf("follower cell after acked commit = %d, want 2", got)
	}
}

func TestPartitionAndReconnect(t *testing.T) {
	popt := fastPrimary()
	popt.Quorum = 1
	popt.AckTimeout = 200 * time.Millisecond
	c := newCluster(t, 1, popt)
	fn := newNode(t, 1)
	fol := NewFollower(fn.eng, c.dial, fastFollower())
	defer fol.Close()
	waitFor(t, 5*time.Second, "follower connect", func() bool { return fol.Stats().Connected })

	acked := 0
	for i := 0; i < 10; i++ {
		if err := c.pn.bump(0); err != nil {
			t.Fatal(err)
		}
		acked++
	}

	c.partition()
	// Commits during the partition journal locally but fail the quorum ack.
	for i := 0; i < 3; i++ {
		if err := c.pn.bump(0); !errors.Is(err, ErrNoQuorum) {
			t.Fatalf("partitioned commit %d: err = %v, want ErrNoQuorum", i, err)
		}
	}

	c.heal()
	waitFor(t, 10*time.Second, "reconnect", func() bool { return fol.Stats().Connected })
	c.waitCaughtUp(fn, 5*time.Second)
	if err := c.pn.bump(0); err != nil {
		t.Fatalf("post-heal commit: %v", err)
	}
	acked++

	// Zero acked loss: the follower holds at least every acked commit (it
	// also holds the journaled-but-unacked ones after catch-up — acceptable
	// in the safe direction).
	if got := fn.read(t, 0); got < acked {
		t.Errorf("follower cell = %d, want ≥ %d acked commits", got, acked)
	}
	if s := fol.Stats(); s.Reconnects == 0 {
		t.Errorf("stats %+v: partition must force a reconnect", s)
	}
}

func TestSlowFollowerResyncNeverBlocksCommits(t *testing.T) {
	popt := fastPrimary()
	popt.SendBuffer = 512 // a handful of frames
	c := newCluster(t, 2, popt)
	fn := newNode(t, 2)
	fol := NewFollower(fn.eng, c.dial, fastFollower())
	defer fol.Close()
	waitFor(t, 5*time.Second, "follower connect", func() bool { return fol.Stats().Connected })
	c.mu.Lock()
	c.link.DelayWrites(3 * time.Millisecond)
	c.mu.Unlock()

	// Burst far past the send buffer. Async mode: every commit must return
	// promptly no matter how slow the stream is.
	start := time.Now()
	for i := 0; i < 300; i++ {
		if err := c.pn.bump(i % 2); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("300 commits took %v: slow follower is blocking the primary", elapsed)
	}
	waitFor(t, 10*time.Second, "resync", func() bool { return c.prim.Stats().Resyncs > 0 })

	c.mu.Lock()
	c.link.DelayWrites(0)
	c.mu.Unlock()
	c.waitCaughtUp(fn, 20*time.Second)
	if got := fn.read(t, 0) + fn.read(t, 1); got != 300 {
		t.Errorf("follower total %d, want 300", got)
	}
}

func TestTornStreamReconnects(t *testing.T) {
	c := newCluster(t, 1, fastPrimary())
	fn := newNode(t, 1)
	fol := NewFollower(fn.eng, c.dial, fastFollower())
	defer fol.Close()
	waitFor(t, 5*time.Second, "follower connect", func() bool { return fol.Stats().Connected })
	for i := 0; i < 5; i++ {
		if err := c.pn.bump(0); err != nil {
			t.Fatal(err)
		}
	}
	c.waitCaughtUp(fn, 5*time.Second)

	// Tear the stream mid-frame: the next primary write delivers 3 bytes of
	// frame header and dies.
	c.mu.Lock()
	c.link.CutAfterWrites(3)
	c.mu.Unlock()
	for i := 0; i < 20; i++ {
		if err := c.pn.bump(0); err != nil {
			t.Fatal(err)
		}
	}
	c.waitCaughtUp(fn, 10*time.Second)
	if got := fn.read(t, 0); got != 25 {
		t.Errorf("follower cell = %d, want 25", got)
	}
	if s := fol.Stats(); s.Reconnects == 0 {
		t.Errorf("stats %+v: torn stream must force a reconnect", s)
	}
}

func TestPromoteDuringCatchup(t *testing.T) {
	c := newCluster(t, 2, fastPrimary())
	for i := 0; i < 200; i++ {
		if err := c.pn.bump(i % 2); err != nil {
			t.Fatal(err)
		}
	}
	fn := newNode(t, 2)
	fol := NewFollower(fn.eng, c.dial, fastFollower())
	// Promote immediately: catch-up may be anywhere — unconnected, mid-
	// snapshot, mid-tail. Promote must quiesce cleanly from any of them.
	if err := fol.Promote(); err != nil {
		t.Fatal(err)
	}
	if err := fol.Promote(); !errors.Is(err, ErrPromoted) {
		t.Errorf("second promote: err = %v, want ErrPromoted", err)
	}

	// The promoted node serves update transactions, numbered densely after
	// whatever it applied.
	before := fn.eng.AppendedSeq()
	for i := 0; i < 10; i++ {
		if err := fn.bump(0); err != nil {
			t.Fatalf("post-promote commit %d: %v", i, err)
		}
	}
	if got := fn.eng.AppendedSeq(); got != before+10 {
		t.Errorf("promoted seq advanced %d → %d, want dense +10", before, got)
	}
	if !fol.Stats().Promoted {
		t.Error("stats must report promoted")
	}
}

// TestPromotedFollowerSurvivesRestart: the sealed log of a promoted
// follower recovers into a fresh engine with the same state — machine-death
// failover followed by a process restart.
func TestPromotedFollowerSurvivesRestart(t *testing.T) {
	c := newCluster(t, 2, fastPrimary())
	fdir := t.TempDir()
	feng, err := durable.Wrap(engine.MustNew("norec", engine.Options{}), durable.Options{
		Dir: fdir, Fsync: durable.FsyncNever, SnapshotBytes: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	fn := &node{eng: feng}
	for i := 0; i < 2; i++ {
		fn.cells = append(fn.cells, feng.NewCell(0))
	}
	fol := NewFollower(feng, c.dial, fastFollower())
	for i := 0; i < 40; i++ {
		if err := c.pn.bump(i % 2); err != nil {
			t.Fatal(err)
		}
	}
	c.waitCaughtUp(fn, 5*time.Second)
	if err := fol.Promote(); err != nil {
		t.Fatal(err)
	}
	if err := fn.bump(0); err != nil {
		t.Fatal(err)
	}
	wantSeq := feng.AppendedSeq()
	if err := feng.WALClose(); err != nil {
		t.Fatal(err)
	}

	e2, err := durable.Wrap(engine.MustNew("norec", engine.Options{}), durable.Options{
		Dir: fdir, Fsync: durable.FsyncNever, SnapshotBytes: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.WALClose()
	n2 := &node{eng: e2}
	for i := 0; i < 2; i++ {
		n2.cells = append(n2.cells, e2.NewCell(0))
	}
	if got := e2.DurabilityInfo().RecoveredSeq; got != wantSeq {
		t.Errorf("recovered seq %d, want %d", got, wantSeq)
	}
	if got := n2.read(t, 0) + n2.read(t, 1); got != 41 {
		t.Errorf("recovered total %d, want 41", got)
	}
}

// TestWireMalformed: hand-rolled malformed messages are rejected, not
// misparsed.
func TestWireMalformed(t *testing.T) {
	if _, err := parseHello([]byte{msgAck, 1, 1}); err == nil {
		t.Error("ack payload accepted as hello")
	}
	if _, err := parseHello([]byte{msgHello, 0x80}); err == nil {
		t.Error("truncated hello accepted")
	}
	if _, err := parseHello(helloPayload(99, 5)); err == nil {
		t.Error("future protocol version accepted")
	}
	if _, err := parseSeqPayload([]byte{msgAck}); err == nil {
		t.Error("bare ack accepted")
	}
	if _, err := parseSeqPayload([]byte{msgAck, 1, 2}); err == nil {
		t.Error("trailing ack bytes accepted")
	}
	// Round trips.
	last, err := parseHello(helloPayload(protoVersion, 42))
	if err != nil || last != 42 {
		t.Errorf("hello round trip: %d, %v", last, err)
	}
	seq, err := parseSeqPayload(payloadOf(seqFrame(msgAck, 7)))
	if err != nil || seq != 7 {
		t.Errorf("ack round trip: %d, %v", seq, err)
	}
}

// helloPayload builds a raw hello payload with an arbitrary version.
func helloPayload(ver, last uint64) []byte {
	p := []byte{msgHello}
	p = appendUvarint(p, ver)
	p = appendUvarint(p, last)
	return p
}

func payloadOf(frame []byte) []byte { return frame[frameHeaderLen:] }

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// TestFollowerAheadRefused: a follower whose watermark exceeds the
// primary's (divergent history) is dropped at hello, not fed records.
func TestFollowerAheadRefused(t *testing.T) {
	c := newCluster(t, 1, fastPrimary())
	if err := c.pn.bump(0); err != nil {
		t.Fatal(err)
	}
	l := NewLink()
	go c.prim.HandleConn(l.B())
	conn := l.A()
	defer conn.Close()
	if _, err := conn.Write(helloFrame(c.pn.eng.AppendedSeq() + 100)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, _, err := durable.ReadFrame(conn); err == nil {
		t.Error("ahead follower got a frame; want the stream dropped")
	}
	waitFor(t, 5*time.Second, "stream drop", func() bool { return c.prim.Stats().Followers == 0 })
}
