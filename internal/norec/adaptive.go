package norec

// The adaptive variant: striped NOrec that escalates wide transactions to a
// global-window protocol. The striped protocol (striped.go) wins when
// transactions stay narrow — disjoint commits bump disjoint stripe lines —
// but a transaction that fans out over many stripes pays O(touched stripes)
// at every first touch and at every validation. AdaptiveSTM runs the
// striped protocol by default, counts the stripes an attempt's read set
// touches, and escalates an attempt to the global path when it crosses a
// threshold (mid-attempt, keeping the validated log) or when striped
// attempts keep aborting (the retry loop starts the attempt escalated).
//
// The global path replaces per-stripe snapshots with one pair of shared
// write-window counters (wstart, wfin) — a multi-writer sequence lock:
// every writer bumps wstart when it enters its commit critical section
// (write stripes locked, before validation) and wfin when it leaves
// (after write-back or abort). A reader observes a stable point whenever
// wstart == wfin and wstart is unchanged across its read or validation
// scan: any write-back overlapping the scan implies a writer either active
// at its start (wstart > wfin) or arriving during it (wstart moved).
// Escalated reads therefore cost one shared load instead of a per-stripe
// establishment — the wide-scan tax is gone — at the price of reintroducing
// a shared cache line, which is exactly the trade the escalation threshold
// arbitrates.
//
// Coexistence protocol (who bumps the window):
//
//   - Escalated transactions register in esc for the whole attempt. While
//     esc != 0, striped committers bracket their critical section — from
//     after phase-1 locking through write-back/abort — with wstart/wfin.
//     With esc == 0 (no escalated transaction anywhere) striped commits
//     touch no shared line, preserving the striped scaling story.
//   - Registration race: a striped committer that loaded esc == 0 already
//     held all its write stripes when the escalated transaction registered
//     (the esc load sits after phase 1). So escalation drains once — waits
//     for every stripe to be momentarily quiescent — before taking its
//     first window snapshot: any unbracketed write-back still in flight
//     completes before the drain does, and every later committer observes
//     esc != 0 and brackets.
//   - Escalated commits still lock their write stripes (ascending, like
//     striped commits) so striped readers and validators observe their
//     write-backs through the stripe sequences, and bump the window so
//     escalated readers observe them too.
//
// Serializability of the mixed mode is the striped argument extended by
// the window: a striped transaction's validation orders against a foreign
// writer's stripe locks (quiescence check), an escalated transaction's
// validation orders against a foreign writer's window entry — which the
// writer performs at lock time, not write-back time, so "validated before
// the window opened" implies "validated before the locks were taken" and
// the two-transaction cycle collapses exactly as in the striped proof.

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync/atomic"

	"repro/internal/abort"
	"repro/internal/val"
)

// Adaptive protocol defaults.
const (
	// DefaultEscalateStripes is the touched-stripe count beyond which an
	// attempt escalates mid-flight.
	DefaultEscalateStripes = 8
	// DefaultEscalateAborts is the number of aborted striped attempts after
	// which the retry loop starts attempts escalated.
	DefaultEscalateAborts = 3
)

// AdaptiveOptions parameterize an adaptive universe. Zero values select the
// defaults.
type AdaptiveOptions struct {
	// Stripes is the number of sequence-lock stripes: a power of two in
	// [1, 64] (the touched-stripe tracking is a uint64 bitmap). Default 64.
	Stripes int
	// EscalateStripes is the touched-stripe threshold: an attempt whose
	// read set is about to span more stripes than this escalates to the
	// global path. Values ≥ Stripes never escalate by width. Default 8.
	EscalateStripes int
	// EscalateAborts is how many striped attempts of one transaction may
	// abort before the retry loop starts attempts escalated. Default 3.
	EscalateAborts int
}

// AdaptiveSTM is a NOrec universe running the striped protocol with
// per-attempt escalation to a global write-window protocol.
type AdaptiveSTM struct {
	stripes  [stripeCount]stripe
	nstripes int
	mask     uint32
	// escStripes/escAborts are the escalation thresholds (see
	// AdaptiveOptions).
	escStripes int
	escAborts  int

	_ [64]byte
	// esc counts registered escalated attempts; striped committers bracket
	// their critical sections with the window only while it is nonzero.
	esc atomic.Int64
	_   [56]byte
	// wstart/wfin are the global write-window counters: wstart is bumped by
	// a writer entering its critical section (stripes locked), wfin by the
	// writer leaving it. wstart == wfin means no writer is mid-flight.
	wstart atomic.Int64
	_      [56]byte
	wfin   atomic.Int64
	_      [56]byte
	// escCommits counts commits whose attempt ran escalated — the
	// escalation-rate telemetry.
	escCommits atomic.Uint64
}

// NewAdaptive creates an adaptive universe.
func NewAdaptive(o AdaptiveOptions) (*AdaptiveSTM, error) {
	if o.Stripes == 0 {
		o.Stripes = stripeCount
	}
	if o.Stripes < 1 || o.Stripes > stripeCount || o.Stripes&(o.Stripes-1) != 0 {
		return nil, fmt.Errorf("norec: adaptive stripe count %d not a power of two in [1, %d]", o.Stripes, stripeCount)
	}
	if o.EscalateStripes == 0 {
		o.EscalateStripes = DefaultEscalateStripes
	}
	if o.EscalateStripes < 1 {
		return nil, fmt.Errorf("norec: adaptive escalation threshold %d < 1", o.EscalateStripes)
	}
	if o.EscalateAborts == 0 {
		o.EscalateAborts = DefaultEscalateAborts
	}
	if o.EscalateAborts < 1 {
		return nil, fmt.Errorf("norec: adaptive abort-escalation threshold %d < 1", o.EscalateAborts)
	}
	return &AdaptiveSTM{
		nstripes:   o.Stripes,
		mask:       uint32(o.Stripes - 1),
		escStripes: o.EscalateStripes,
		escAborts:  o.EscalateAborts,
	}, nil
}

// EscalatedCommits returns how many commits ran escalated. Call while no
// transactions run.
func (s *AdaptiveSTM) EscalatedCommits() uint64 { return s.escCommits.Load() }

// sindex maps an object to its stripe under this universe's stripe count.
func (s *AdaptiveSTM) sindex(o *Object) uint { return uint(o.sid & s.mask) }

// ATx is one transaction attempt against an adaptive universe. Recycled by
// its thread like STx; the escalated flag selects the protocol the rest of
// the attempt runs.
type ATx struct {
	stm       *AdaptiveSTM
	readOnly  bool
	boxed     bool
	escalated bool
	reads     []readEntry
	writeSet
	// Striped-mode state (see STx).
	touched  uint64
	snaps    [stripeCount]int64
	lockVals [stripeCount]int64
	// gsnap is the escalated-mode snapshot: the wstart value the value log
	// is consistent at (taken with wstart == wfin).
	gsnap int64
}

// reset rearms the attempt; escalated attempts register before their first
// read. With an empty log the registration's revalidation cannot abort.
func (tx *ATx) reset(stm *AdaptiveSTM, readOnly, escalated bool) {
	tx.stm = stm
	tx.readOnly = readOnly
	tx.boxed = false
	tx.escalated = false
	tx.reads = tx.reads[:0]
	tx.writeSet.reset()
	tx.touched = 0
	if escalated {
		// Cannot fail: the value log is empty.
		_ = tx.escalate()
	}
}

// escalate switches the attempt to the global protocol: register (so
// striped committers start bracketing their write-backs), drain the
// stripes once (committers that pre-date the registration and never
// bracket finish before the drain does), then move the already-validated
// value log to a stable window point. The log stays exact across the
// switch — on revalidation failure the attempt aborts and the next one
// starts escalated.
func (tx *ATx) escalate() error {
	stm := tx.stm
	stm.esc.Add(1)
	tx.escalated = true
	for s := 0; s < stm.nstripes; s++ {
		stm.stripes[s].waitQuiescent()
	}
	return tx.grevalidate()
}

// grevalidate re-checks the whole value log at a stable window point and
// adopts it as the escalated snapshot — the global-path revalidate loop.
func (tx *ATx) grevalidate() error {
	stm := tx.stm
	for i := 0; ; i++ {
		s := stm.wstart.Load()
		if stm.wfin.Load() != s {
			// A writer is mid-flight; its write-back may be half-visible.
			if i > 32 {
				runtime.Gosched()
			}
			continue
		}
		for j := range tx.reads {
			if !stillValid(&tx.reads[j]) {
				return errAbortSnapshot
			}
		}
		// The scan only proves consistency at s if no writer entered the
		// window while it ran.
		if stm.wstart.Load() == s {
			tx.gsnap = s
			return nil
		}
	}
}

// Read returns o's value in the transaction's snapshot as `any`.
func (tx *ATx) Read(o *Object) (any, error) {
	v, err := tx.ReadValue(o)
	if err != nil {
		return nil, err
	}
	return v.Load(), nil
}

// ReadValue returns o's value in the transaction's snapshot. Striped mode
// mirrors STx.ReadValue; crossing the touched-stripe threshold escalates
// the attempt in place; escalated mode validates against the write window
// only.
func (tx *ATx) ReadValue(o *Object) (val.Value, error) {
	if idx, ok := tx.lookup(o); ok {
		return tx.writes[idx].v, nil
	}
	if tx.escalated {
		return tx.readGlobal(o)
	}
	stm := tx.stm
	s := stm.sindex(o)
	bit := uint64(1) << s
	if tx.touched&bit == 0 && bits.OnesCount64(tx.touched|bit) > stm.escStripes {
		if err := tx.escalate(); err != nil {
			return val.Value{}, err
		}
		return tx.readGlobal(o)
	}
	for {
		if tx.touched&bit == 0 || stm.stripes[s].seq.Load() != tx.snaps[s] {
			if err := tx.establish(bit); err != nil {
				return val.Value{}, err
			}
			continue
		}
		num, box := o.cell.Snapshot()
		if stm.stripes[s].seq.Load() != tx.snaps[s] {
			continue // a commit landed between the loads; re-establish
		}
		tx.reads = append(tx.reads, readEntry{obj: o, num: num, box: box})
		return val.Decode(num, box), nil
	}
}

// readGlobal is the escalated read path: one shared load validates the
// snapshot, the write window detects concurrent write-backs.
func (tx *ATx) readGlobal(o *Object) (val.Value, error) {
	stm := tx.stm
	for {
		num, box := o.cell.Snapshot()
		if stm.wstart.Load() == tx.gsnap {
			// No writer entered the window since the snapshot point, so no
			// memory changed: the pair is consistent with the logged values.
			tx.reads = append(tx.reads, readEntry{obj: o, num: num, box: box})
			return val.Decode(num, box), nil
		}
		if err := tx.grevalidate(); err != nil {
			return val.Value{}, err
		}
	}
}

// establish mirrors STx.establish over the adaptive universe's stripes,
// including the moved-bitmap fast path: a first touch with no moved stripe
// extends the common point without walking the value log.
func (tx *ATx) establish(newBits uint64) error {
	stm := tx.stm
	want := tx.touched | newBits
	for {
		var cur [stripeCount]int64
		var moved uint64
		for m := want; m != 0; m &= m - 1 {
			s := uint(bits.TrailingZeros64(m))
			cur[s] = stm.stripes[s].waitQuiescent()
			if tx.touched&(uint64(1)<<s) != 0 && cur[s] != tx.snaps[s] {
				moved |= uint64(1) << s
			}
		}
		if moved != 0 {
			for i := range tx.reads {
				r := &tx.reads[i]
				if moved&(uint64(1)<<stm.sindex(r.obj)) == 0 {
					continue
				}
				if !stillValid(r) {
					return errAbortSnapshot
				}
			}
		}
		stable := true
		for m := want; m != 0; m &= m - 1 {
			s := uint(bits.TrailingZeros64(m))
			if stm.stripes[s].seq.Load() != cur[s] {
				stable = false
				break
			}
		}
		if stable {
			for m := want; m != 0; m &= m - 1 {
				s := uint(bits.TrailingZeros64(m))
				tx.snaps[s] = cur[s]
			}
			tx.touched = want
			return nil
		}
	}
}

// Write buffers the new value; it becomes visible at commit.
func (tx *ATx) Write(o *Object, v any) error {
	return tx.WriteValue(o, val.OfAny(v))
}

// WriteValue buffers the new typed value; numeric-lane values never box.
func (tx *ATx) WriteValue(o *Object, v val.Value) error {
	if tx.readOnly {
		return ErrReadOnly
	}
	if v.Kind() == val.KindBoxed {
		tx.boxed = true
	}
	if idx, ok := tx.lookup(o); ok {
		tx.writes[idx].v = v
		return nil
	}
	tx.add(o, v)
	return nil
}

// lockWriteStripes runs phase 1 of both commit modes: lock every write
// stripe in ascending index order (no deadlock among lockers) and record
// the pre-lock values for release or restore.
func (tx *ATx) lockWriteStripes() (wmask uint64) {
	stm := tx.stm
	for i := range tx.writes {
		wmask |= uint64(1) << stm.sindex(tx.writes[i].obj)
	}
	for m := wmask; m != 0; m &= m - 1 {
		s := uint(bits.TrailingZeros64(m))
		st := &stm.stripes[s]
		for i := 0; ; i++ {
			v := st.seq.Load()
			if v&1 == 0 && st.seq.CompareAndSwap(v, v+1) {
				tx.lockVals[s] = v
				break
			}
			if i > 32 {
				runtime.Gosched()
			}
		}
	}
	return wmask
}

// release unlocks every stripe in mask: committed stripes advance by two,
// aborted ones restore the exact pre-lock value.
func (tx *ATx) release(mask uint64, committed bool) {
	for m := mask; m != 0; m &= m - 1 {
		s := uint(bits.TrailingZeros64(m))
		v := tx.lockVals[s]
		if committed {
			v += 2
		}
		tx.stm.stripes[s].seq.Store(v)
	}
}

// commit dispatches on the attempt's protocol. Write-free transactions are
// consistent at their latest establishment (or window point) and commit
// without touching any lock.
func (tx *ATx) commit() error {
	if len(tx.writes) == 0 {
		return nil
	}
	if tx.escalated {
		return tx.commitGlobal()
	}
	return tx.commitStriped()
}

// commitStriped is STx.commit plus the escalation window: while any
// escalated attempt is registered, the whole critical section — validation
// through write-back — is bracketed by wstart/wfin so escalated readers
// order against it. The esc load sits after phase 1, which is what the
// escalation drain relies on.
func (tx *ATx) commitStriped() error {
	stm := tx.stm
	wmask := tx.lockWriteStripes()
	inWindow := stm.esc.Load() != 0
	if inWindow {
		stm.wstart.Add(1)
	}
	// Phase 2: validate the read log. Held stripes are stable by ownership;
	// foreign stripes are checked under the bounded quiescence re-check loop
	// (a holder validating against one of our stripes must resolve by one of
	// us aborting).
	var rmask uint64
	for i := range tx.reads {
		rmask |= uint64(1) << stm.sindex(tx.reads[i].obj)
	}
	foreign := rmask &^ wmask
	var cur [stripeCount]int64
rounds:
	for round := 0; ; round++ {
		if round >= 64 {
			tx.release(wmask, false)
			if inWindow {
				stm.wfin.Add(1)
			}
			return errAbortContention
		}
		for m := foreign; m != 0; m &= m - 1 {
			s := uint(bits.TrailingZeros64(m))
			v := stm.stripes[s].seq.Load()
			if v&1 == 1 {
				runtime.Gosched()
				continue rounds
			}
			cur[s] = v
		}
		for i := range tx.reads {
			if !stillValid(&tx.reads[i]) {
				tx.release(wmask, false)
				if inWindow {
					stm.wfin.Add(1)
				}
				return errAbortValidation
			}
		}
		for m := foreign; m != 0; m &= m - 1 {
			s := uint(bits.TrailingZeros64(m))
			if stm.stripes[s].seq.Load() != cur[s] {
				continue rounds
			}
		}
		break
	}
	// Phase 3: write back, release every held stripe with the next even
	// value, close the window.
	for i := range tx.writes {
		w := &tx.writes[i]
		w.obj.cell.Store(w.v)
	}
	tx.release(wmask, true)
	if inWindow {
		stm.wfin.Add(1)
	}
	return nil
}

// commitGlobal is the escalated commit: lock the write stripes (striped
// transactions order against us through them), enter the window, validate
// the whole value log at a point where no other writer is mid-flight, write
// back, and leave. The only-writer check (wfin == wstart−1: our own entry
// is the one outstanding) is bounded — a peer stuck in its own validation
// against our stripes aborts within its bounded loop, so waiting resolves.
func (tx *ATx) commitGlobal() error {
	stm := tx.stm
	wmask := tx.lockWriteStripes()
	stm.wstart.Add(1)
	for round := 0; ; round++ {
		if round >= 64 {
			tx.release(wmask, false)
			stm.wfin.Add(1)
			return errAbortContention
		}
		s := stm.wstart.Load()
		if stm.wfin.Load() != s-1 {
			runtime.Gosched()
			continue
		}
		valid := true
		for i := range tx.reads {
			if !stillValid(&tx.reads[i]) {
				valid = false
				break
			}
		}
		if !valid {
			tx.release(wmask, false)
			stm.wfin.Add(1)
			return errAbortValidation
		}
		if stm.wstart.Load() == s {
			break
		}
	}
	for i := range tx.writes {
		w := &tx.writes[i]
		w.obj.cell.Store(w.v)
	}
	tx.release(wmask, true)
	stm.wfin.Add(1)
	return nil
}

// AThread is a worker context for the adaptive universe. It owns the one
// ATx it recycles across attempts — single goroutine only.
type AThread struct {
	stm          *AdaptiveSTM
	tx           ATx
	boxedCommits uint64
	aborts       abort.Counts
}

// Thread creates a worker context.
func (s *AdaptiveSTM) Thread(id int) *AThread { return &AThread{stm: s} }

// BoxedCommits returns how many of this thread's commits wrote at least one
// escape-hatch (boxed) payload.
func (t *AThread) BoxedCommits() uint64 { return t.boxedCommits }

// AbortCounts returns this thread's aborts classified by reason. Every abort
// of an escalated attempt — whatever its site — is charged to Escalation, so
// the cost of running (or being forced onto) the global path is one number.
func (t *AThread) AbortCounts() abort.Counts { return t.aborts }

// Run executes fn transactionally, retrying on aborts.
func (t *AThread) Run(fn func(*ATx) error) error { return t.run(false, fn) }

// RunReadOnly executes fn as a read-only transaction (writes rejected).
func (t *AThread) RunReadOnly(fn func(*ATx) error) error { return t.run(true, fn) }

func (t *AThread) run(readOnly bool, fn func(*ATx) error) error {
	tx := &t.tx
	stm := t.stm
	for attempt := 0; ; attempt++ {
		// Repeated striped aborts escalate the whole attempt from the start.
		tx.reset(stm, readOnly, attempt >= stm.escAborts)
		err := fn(tx)
		if err == nil {
			err = tx.commit()
		}
		if tx.escalated {
			stm.esc.Add(-1)
		}
		if err == nil {
			if tx.escalated {
				stm.escCommits.Add(1)
			}
			if tx.boxed {
				t.boxedCommits++
			}
			return nil
		}
		if !errors.Is(err, ErrAborted) {
			return err
		}
		if tx.escalated {
			t.aborts[abort.Escalation]++
		} else {
			t.aborts.Observe(err)
		}
		if attempt > 2 {
			runtime.Gosched()
		}
	}
}
