package stmserve

import (
	"encoding/json"
	"net/http"
	"sync"

	"repro/internal/engine"
)

// NewHTTPHandler exposes svc over HTTP/JSON — the debuggable, curl-able
// face of the service (the line protocol is the fast one):
//
//	POST /op       body Request (JSON) → Response (JSON)
//	GET  /engines  → []engine.Info: every registered backend with its
//	               capability flags, from the registry's introspection API
//	GET  /stats    → Stats for this service instance
//	GET  /healthz  → 200 "ok"
//
// Handler state is a pool of Sessions: HTTP has no connection affinity
// worth preserving, so sessions are borrowed per request. In ModeThread the
// pool's high-water mark tracks the peak concurrent request count.
func NewHTTPHandler(svc *Service) http.Handler {
	sessions := sync.Pool{New: func() any { return svc.Session() }}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /op", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		sess := sessions.Get().(*Session)
		var resp Response
		sess.Exec(&req, &resp) // failure is already in resp.Err
		sessions.Put(sess)
		writeJSON(w, &resp)
	})
	mux.HandleFunc("GET /engines", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, engine.Infos())
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, svc.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}
