package stmserve

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/engine"
)

// pipeClient runs ServeConn over one end of a net.Pipe and returns a Client
// on the other — the full wire stack with no sockets.
func pipeClient(t *testing.T, srv *Server) *Client {
	t.Helper()
	serverEnd, clientEnd := net.Pipe()
	go srv.ServeConn(serverEnd)
	c := NewClient(clientEnd)
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServeConn(t *testing.T) {
	svc := newTestService(t, Config{Keys: 16, Initial: 5})
	srv := NewServer(svc)
	c := pipeClient(t, srv)

	var resp Response
	do := func(req Request) *Response {
		t.Helper()
		if err := c.Do(&req, &resp); err != nil {
			t.Fatalf("Do(%v): %v", req.Op, err)
		}
		return &resp
	}
	if r := do(Request{Op: OpPing}); r.Err != "" {
		t.Fatalf("PING: %s", r.Err)
	}
	if r := do(Request{Op: OpInfo}); r.Text != "norec" || r.Vals[0] != 16 {
		t.Fatalf("INFO = %q %v", r.Text, r.Vals)
	}
	do(Request{Op: OpTransfer, Key: 1, Key2: 2, Val: 3})
	if r := do(Request{Op: OpSnapshot, Keys: []int{1, 2}}); r.Vals[0] != 2 || r.Vals[1] != 8 {
		t.Fatalf("snapshot over the wire = %v, want [2 8]", r.Vals)
	}
	// Op-level failure arrives as resp.Err, not a transport error.
	if r := do(Request{Op: OpRead, Key: 99}); !strings.Contains(r.Err, "out of range") {
		t.Fatalf("bad key error = %q", r.Err)
	}
	// STATS over the wire parses back into Stats.
	r := do(Request{Op: OpStats})
	var st Stats
	if err := json.Unmarshal([]byte(r.Text), &st); err != nil {
		t.Fatalf("STATS JSON: %v (%q)", err, r.Text)
	}
	if st.Engine != "norec" {
		t.Fatalf("STATS engine = %q", st.Engine)
	}
}

// TestServeConnMalformed drives raw protocol lines, including garbage, and
// asserts the connection survives with ERR responses.
func TestServeConnMalformed(t *testing.T) {
	svc := newTestService(t, Config{Keys: 4})
	srv := NewServer(svc)
	serverEnd, clientEnd := net.Pipe()
	go srv.ServeConn(serverEnd)
	defer clientEnd.Close()

	send := func(line string) string {
		t.Helper()
		if _, err := clientEnd.Write([]byte(line + "\n")); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 4096)
		n, err := clientEnd.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimSuffix(string(buf[:n]), "\n")
	}
	if got := send("NOPE"); !strings.HasPrefix(got, "ERR ") {
		t.Fatalf("garbage verb → %q", got)
	}
	if got := send("R zzz"); !strings.HasPrefix(got, "ERR ") {
		t.Fatalf("garbage key → %q", got)
	}
	if got := send("R 1"); got != "OK 1000" {
		t.Fatalf("valid request after garbage → %q, want OK 1000", got)
	}
}

func TestServerServeShutdown(t *testing.T) {
	for _, mode := range []string{ModeThread, ModePool} {
		t.Run(mode, func(t *testing.T) {
			eng := engine.MustNew("norec", engine.Options{})
			svc, err := New(eng, Config{Keys: 8, Mode: mode, PoolWorkers: 2})
			if err != nil {
				t.Fatal(err)
			}
			srv := NewServer(svc)
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			serveDone := make(chan error, 1)
			go func() { serveDone <- srv.Serve(l) }()

			c, err := Dial(l.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			var resp Response
			if err := c.Do(&Request{Op: OpWrite, Key: 3, Val: 7}, &resp); err != nil || resp.Err != "" {
				t.Fatalf("write over TCP: %v %q", err, resp.Err)
			}
			if err := c.Do(&Request{Op: OpRead, Key: 3}, &resp); err != nil || resp.Vals[0] != 7 {
				t.Fatalf("read over TCP = %v %v", err, resp.Vals)
			}

			srv.Shutdown()
			if err := <-serveDone; err != ErrServerClosed {
				t.Fatalf("Serve returned %v, want ErrServerClosed", err)
			}
			svc.Close()
		})
	}
}

func TestHTTPHandler(t *testing.T) {
	svc := newTestService(t, Config{Keys: 8, Initial: 10})
	ts := httptest.NewServer(NewHTTPHandler(svc))
	defer ts.Close()

	post := func(req Request) Response {
		t.Helper()
		body, _ := json.Marshal(req)
		r, err := http.Post(ts.URL+"/op", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var resp Response
		if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	if resp := post(Request{Op: OpTransfer, Key: 0, Key2: 1, Val: 4}); resp.Err != "" {
		t.Fatalf("transfer: %s", resp.Err)
	}
	if resp := post(Request{Op: OpRead, Key: 1}); len(resp.Vals) != 1 || resp.Vals[0] != 14 {
		t.Fatalf("read = %+v, want Vals [14]", resp)
	}
	if resp := post(Request{Op: OpRead, Key: 99}); !strings.Contains(resp.Err, "out of range") {
		t.Fatalf("bad key = %+v", resp)
	}

	// /engines serves the registry's introspection, capabilities included.
	r, err := http.Get(ts.URL + "/engines")
	if err != nil {
		t.Fatal(err)
	}
	var infos []engine.Info
	if err := json.NewDecoder(r.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(infos) != len(engine.Names()) {
		t.Fatalf("/engines lists %d backends, registry has %d", len(infos), len(engine.Names()))
	}
	found := false
	for _, info := range infos {
		if info.Name == "lsa/shared" {
			found = info.Capabilities.MultiVersion && info.Capabilities.IntLane
		}
	}
	if !found {
		t.Fatal("/engines does not report lsa/shared with its capabilities")
	}

	// /stats serves this instance's counters.
	r, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if st.Engine != "norec" || st.Ops == 0 {
		t.Fatalf("/stats = %+v", st)
	}

	// /healthz answers.
	r, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d", r.StatusCode)
	}
}
