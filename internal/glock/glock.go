// Package glock is the coarse-global-lock reference engine: every update
// transaction runs under one global mutex, read-only transactions share a
// read lock. It is deliberately the simplest possible implementation of the
// transactional interface — no versions, no validation, no aborts — and
// therefore trivially opaque: transactions are literally serialized (update
// against everything; read-only only against updates).
//
// Its role in the comparison matrix is honesty: at one or two threads a
// well-implemented global lock beats every STM, and any speedup an STM
// claims must be measured against this baseline, not against itself at one
// thread. Where the STMs pay per-access bookkeeping, glock pays one lock
// acquisition per transaction — so its throughput curve is flat-to-falling
// in the thread count, crossing below the scalable engines exactly where
// transactional concurrency starts to pay.
package glock

import (
	"errors"
	"sync"
)

// ErrReadOnly is returned by Write inside a read-only transaction. glock
// transactions never abort — it is the only error the package produces.
var ErrReadOnly = errors.New("glock: write inside read-only transaction")

// STM is a coarse-lock universe: one reader/writer mutex serializing all
// transactions against it.
type STM struct {
	mu sync.RWMutex
}

// New creates a universe.
func New() *STM { return &STM{} }

// Object is a transactional cell: a bare value slot, protected entirely by
// the universe's global lock.
type Object struct {
	val any
}

// NewObject creates an object holding initial. An object is private until a
// committed write publishes a reference to it, so creation needs no lock.
func NewObject(initial any) *Object { return &Object{val: initial} }

type writeEntry struct {
	obj *Object
	val any
}

// Tx is one glock transaction. Writes are buffered and applied only when
// the closure succeeds, so a user error leaves memory untouched (the
// all-or-nothing half of atomicity; isolation comes from the lock).
type Tx struct {
	readOnly bool
	writes   []writeEntry
}

// Read returns the object's current value (the write buffer shadows
// committed state within the transaction).
func (tx *Tx) Read(o *Object) (any, error) {
	for i := len(tx.writes) - 1; i >= 0; i-- {
		if tx.writes[i].obj == o {
			return tx.writes[i].val, nil
		}
	}
	return o.val, nil
}

// Write buffers the new value; it is applied if the transaction closure
// returns nil.
func (tx *Tx) Write(o *Object, val any) error {
	if tx.readOnly {
		return ErrReadOnly
	}
	for i := len(tx.writes) - 1; i >= 0; i-- {
		if tx.writes[i].obj == o {
			tx.writes[i].val = val
			return nil
		}
	}
	tx.writes = append(tx.writes, writeEntry{obj: o, val: val})
	return nil
}

// Thread is a worker context (API-compatible shape with the core engine's
// Thread so workloads translate directly).
type Thread struct {
	stm *STM
}

// Thread creates a worker context.
func (s *STM) Thread(id int) *Thread { return &Thread{stm: s} }

// Run executes fn under the global write lock. There are no retries: the
// first execution is the only one, and it cannot abort.
func (t *Thread) Run(fn func(*Tx) error) error {
	t.stm.mu.Lock()
	defer t.stm.mu.Unlock()
	tx := &Tx{}
	if err := fn(tx); err != nil {
		return err
	}
	for i := range tx.writes {
		tx.writes[i].obj.val = tx.writes[i].val
	}
	return nil
}

// RunReadOnly executes fn under the shared read lock; concurrent read-only
// transactions proceed in parallel, writers are excluded.
func (t *Thread) RunReadOnly(fn func(*Tx) error) error {
	t.stm.mu.RLock()
	defer t.stm.mu.RUnlock()
	return fn(&Tx{readOnly: true})
}
