package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/rstmval"
	"repro/internal/stats"
	"repro/internal/timebase"
	"repro/internal/tl2"
	"repro/internal/wordstm"
)

// BaselinesConfig parameterizes the §1.2 comparison: read-only scans of
// growing size under concurrent disjoint updates, on LSA-RT (with a counter
// and with a clock), TL2, and the validating STM with the commit-counter
// heuristic. Time-based STMs keep read costs O(1) per access; validation
// costs grow with the read set; and single-version STMs may abort readers
// that multi-version LSA-RT serves from history.
type BaselinesConfig struct {
	// ScanSizes are the numbers of objects each read-only scan touches.
	ScanSizes []int
	// Readers and Updaters are the worker split (defaults 4 and 4).
	Readers  int
	Updaters int
	// Objects is the shared table size (default: max scan size).
	Objects int
	// Duration per measured point.
	Duration time.Duration
	// Warmup before each measurement.
	Warmup time.Duration
}

// BaselinesPoint is one measured point.
type BaselinesPoint struct {
	STM       string
	Scan      int
	ScansPerS float64
	UpdPerS   float64
}

// BaselinesResult groups all points with a rendered table.
type BaselinesResult struct {
	Points []BaselinesPoint
	Table  *stats.Table
}

// stmDriver abstracts the three STMs behind the minimal surface the
// experiment needs: build the table, run one scan, run one update.
type stmDriver struct {
	name   string
	setup  func(objects, workers int)
	scan   func(id, scan int) error
	update func(id int) error
}

func lsaDriver(name string, tb func(nodes int) timebase.TimeBase, workers int) *stmDriver {
	var rt *core.Runtime
	var objs []*core.Object
	var threads []*core.Thread
	return &stmDriver{
		name: name,
		setup: func(objects, w int) {
			rt = core.MustRuntime(core.Config{TimeBase: tb(w)})
			objs = make([]*core.Object, objects)
			for i := range objs {
				objs[i] = core.NewObject(0)
			}
			threads = make([]*core.Thread, w)
			for i := range threads {
				threads[i] = rt.Thread(i)
			}
		},
		scan: func(id, scan int) error {
			th := threads[id]
			return th.RunReadOnly(func(tx *core.Tx) error {
				for i := 0; i < scan; i++ {
					if _, err := tx.Read(objs[i]); err != nil {
						return err
					}
				}
				return nil
			})
		},
		update: func(id int) error {
			th := threads[id]
			o := objs[id%len(objs)]
			return th.Run(func(tx *core.Tx) error {
				v, err := tx.Read(o)
				if err != nil {
					return err
				}
				return tx.Write(o, v.(int)+1)
			})
		},
	}
}

func tl2Driver() *stmDriver {
	var s *tl2.STM
	var objs []*tl2.Object
	var threads []*tl2.Thread
	return &stmDriver{
		name: "TL2",
		setup: func(objects, w int) {
			s = tl2.New()
			objs = make([]*tl2.Object, objects)
			for i := range objs {
				objs[i] = tl2.NewObject(0)
			}
			threads = make([]*tl2.Thread, w)
			for i := range threads {
				threads[i] = s.Thread(i)
			}
		},
		scan: func(id, scan int) error {
			return threads[id].RunReadOnly(func(tx *tl2.Tx) error {
				for i := 0; i < scan; i++ {
					if _, err := tx.Read(objs[i]); err != nil {
						return err
					}
				}
				return nil
			})
		},
		update: func(id int) error {
			o := objs[id%len(objs)]
			return threads[id].Run(func(tx *tl2.Tx) error {
				v, err := tx.Read(o)
				if err != nil {
					return err
				}
				return tx.Write(o, v.(int)+1)
			})
		},
	}
}

func wordDriver() *stmDriver {
	var s *wordstm.STM
	var threads []*wordstm.Thread
	return &stmDriver{
		name: "LSA-word",
		setup: func(objects, w int) {
			var err error
			s, err = wordstm.New(timebase.NewSharedCounter(), objects)
			if err != nil {
				panic(err)
			}
			threads = make([]*wordstm.Thread, w)
			for i := range threads {
				threads[i] = s.Thread(i)
			}
		},
		scan: func(id, scan int) error {
			return threads[id].RunReadOnly(func(tx *wordstm.Tx) error {
				for i := 0; i < scan; i++ {
					if _, err := tx.Load(wordstm.Addr(i)); err != nil {
						return err
					}
				}
				return nil
			})
		},
		update: func(id int) error {
			a := wordstm.Addr(id % s.Words())
			return threads[id].Run(func(tx *wordstm.Tx) error {
				v, err := tx.Load(a)
				if err != nil {
					return err
				}
				return tx.Store(a, v+1)
			})
		},
	}
}

func rstmDriver() *stmDriver {
	var s *rstmval.STM
	var objs []*rstmval.Object
	var threads []*rstmval.Thread
	return &stmDriver{
		name: "RSTM-val",
		setup: func(objects, w int) {
			s = rstmval.New()
			objs = make([]*rstmval.Object, objects)
			for i := range objs {
				objs[i] = rstmval.NewObject(0)
			}
			threads = make([]*rstmval.Thread, w)
			for i := range threads {
				threads[i] = s.Thread(i)
			}
		},
		scan: func(id, scan int) error {
			return threads[id].RunReadOnly(func(tx *rstmval.Tx) error {
				for i := 0; i < scan; i++ {
					if _, err := tx.Read(objs[i]); err != nil {
						return err
					}
				}
				return nil
			})
		},
		update: func(id int) error {
			o := objs[id%len(objs)]
			return threads[id].Run(func(tx *rstmval.Tx) error {
				v, err := tx.Read(o)
				if err != nil {
					return err
				}
				return tx.Write(o, v.(int)+1)
			})
		},
	}
}

// Baselines runs the comparison.
func Baselines(cfg BaselinesConfig) (*BaselinesResult, error) {
	if len(cfg.ScanSizes) == 0 {
		cfg.ScanSizes = []int{16, 64, 256}
	}
	if cfg.Readers == 0 {
		cfg.Readers = 4
	}
	if cfg.Updaters == 0 {
		cfg.Updaters = 4
	}
	if cfg.Objects == 0 {
		for _, s := range cfg.ScanSizes {
			if s > cfg.Objects {
				cfg.Objects = s
			}
		}
	}
	for _, s := range cfg.ScanSizes {
		if s > cfg.Objects {
			return nil, fmt.Errorf("experiments: scan size %d exceeds table size %d", s, cfg.Objects)
		}
	}
	if cfg.Duration == 0 {
		cfg.Duration = 150 * time.Millisecond
	}
	workers := cfg.Readers + cfg.Updaters
	drivers := []*stmDriver{
		lsaDriver("LSA-RT/counter", func(n int) timebase.TimeBase { return timebase.NewSharedCounter() }, workers),
		lsaDriver("LSA-RT/clock", func(n int) timebase.TimeBase { return timebase.NewMMTimer(n) }, workers),
		wordDriver(),
		tl2Driver(),
		rstmDriver(),
	}
	res := &BaselinesResult{
		Table: stats.NewTable("stm", "scan size", "scans/s", "updates/s"),
	}
	for _, drv := range drivers {
		for _, scan := range cfg.ScanSizes {
			p, err := runBaselinePoint(drv, scan, cfg)
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, p)
			res.Table.AddRowf(p.STM, p.Scan,
				fmt.Sprintf("%.0f", p.ScansPerS),
				fmt.Sprintf("%.0f", p.UpdPerS))
		}
	}
	return res, nil
}

// padCount is a per-worker counter padded to its own cache line.
type padCount struct {
	n atomic.Uint64
	_ [56]byte
}

func runBaselinePoint(drv *stmDriver, scan int, cfg BaselinesConfig) (BaselinesPoint, error) {
	workers := cfg.Readers + cfg.Updaters
	drv.setup(cfg.Objects, workers)
	counts := make([]padCount, workers)
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			reader := id < cfg.Readers
			for i := 0; !stop.Load(); i++ {
				var err error
				if reader {
					err = drv.scan(id, scan)
				} else {
					err = drv.update(id)
					if i%4096 == 4095 {
						// Updaters yield periodically so they cannot
						// monopolize a host with fewer cores than workers
						// and starve the readers entirely; on real parallel
						// hardware this is a no-op.
						runtime.Gosched()
					}
				}
				if err != nil {
					errs <- fmt.Errorf("%s worker %d: %w", drv.name, id, err)
					return
				}
				counts[id].n.Add(1)
			}
		}(id)
	}
	warmup := cfg.Warmup
	if warmup == 0 {
		warmup = cfg.Duration / 5
	}
	time.Sleep(warmup)
	beforeR, beforeU := split(counts, cfg.Readers)
	t0 := time.Now()
	time.Sleep(cfg.Duration)
	afterR, afterU := split(counts, cfg.Readers)
	el := time.Since(t0).Seconds()
	stop.Store(true)
	wg.Wait()
	close(errs)
	if err, ok := <-errs; ok {
		return BaselinesPoint{}, err
	}
	return BaselinesPoint{
		STM:       drv.name,
		Scan:      scan,
		ScansPerS: float64(afterR-beforeR) / el,
		UpdPerS:   float64(afterU-beforeU) / el,
	}, nil
}

func split(counts []padCount, readers int) (r, u uint64) {
	for i := range counts {
		if i < readers {
			r += counts[i].n.Load()
		} else {
			u += counts[i].n.Load()
		}
	}
	return r, u
}
