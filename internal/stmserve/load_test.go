package stmserve

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
)

func TestParseMix(t *testing.T) {
	m, err := ParseMix("transfer=40,read=20,set=6")
	if err != nil {
		t.Fatal(err)
	}
	if m.Transfer != 40 || m.Read != 20 || m.SetOps != 6 || m.CAS != 0 {
		t.Fatalf("ParseMix = %+v", m)
	}
	for _, bad := range []string{"", "transfer", "transfer=x", "transfer=-1", "warp=3", "read=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

func TestMixTable(t *testing.T) {
	entries, total, err := Mix{Transfer: 3, SetOps: 2}.table()
	if err != nil {
		t.Fatal(err)
	}
	if total != 3+3*2 {
		t.Fatalf("total = %d, want 9", total)
	}
	if len(entries) != 4 { // transfer + the three set verbs
		t.Fatalf("entries = %+v", entries)
	}
	if _, _, err := (Mix{}).table(); err == nil {
		t.Fatal("empty mix accepted")
	}
}

// TestRunLoadInProc drives the whole load generator against an in-process
// service — no sockets — and checks the report adds up.
func TestRunLoadInProc(t *testing.T) {
	svc := newTestService(t, Config{Keys: 64})
	// Keys is pinned so the INFO discovery probe is skipped and the
	// service-side op count matches the report exactly.
	rep, err := RunLoad(ServiceDialer(svc), LoadOptions{
		Conns:    4,
		Keys:     64,
		Duration: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops == 0 {
		t.Fatal("load run completed zero operations")
	}
	if rep.Errs != 0 {
		t.Fatalf("load run hit %d op errors", rep.Errs)
	}
	if rep.Throughput <= 0 {
		t.Fatalf("throughput = %v", rep.Throughput)
	}
	var perOpSum uint64
	for _, op := range rep.PerOp {
		perOpSum += op.Ops
		if op.Latency == nil {
			t.Fatalf("op %s without latency summary", op.Op)
		}
		if err := op.Latency.Validate(); err != nil {
			t.Fatalf("op %s latency: %v", op.Op, err)
		}
	}
	if perOpSum != rep.Ops {
		t.Fatalf("per-op ops sum to %d, total says %d", perOpSum, rep.Ops)
	}
	// The default mix is transfer-dominated and PerOp is sorted by volume.
	if rep.PerOp[0].Op != "transfer" {
		t.Fatalf("busiest op = %s, want transfer", rep.PerOp[0].Op)
	}
	// The rendered table carries every op row.
	table := rep.Table()
	for _, op := range rep.PerOp {
		if !strings.Contains(table, op.Op) {
			t.Fatalf("table misses op %s:\n%s", op.Op, table)
		}
	}
	// The service observed the same committed volume.
	if got := svc.Stats().Ops; got != rep.Ops {
		t.Fatalf("service saw %d ops, report says %d", got, rep.Ops)
	}
}

// TestRunLoadOverTCP is the end-to-end smoke: server on loopback, load over
// real sockets, both connection-mapping modes.
func TestRunLoadOverTCP(t *testing.T) {
	for _, mode := range []string{ModeThread, ModePool} {
		t.Run(mode, func(t *testing.T) {
			eng := engine.MustNew("norec", engine.Options{})
			svc, err := New(eng, Config{Keys: 64, Mode: mode, PoolWorkers: 2})
			if err != nil {
				t.Fatal(err)
			}
			srv := NewServer(svc)
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go srv.Serve(l)

			rep, err := RunLoad(NetDialer(l.Addr().String()), LoadOptions{
				Conns:    8,
				Duration: 100 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Ops == 0 {
				t.Fatal("zero ops over TCP")
			}
			if rep.Keys != 64 {
				t.Fatalf("keyspace discovered via INFO = %d, want 64", rep.Keys)
			}
			srv.Shutdown()
			svc.Close()
		})
	}
}

func TestRunLoadRejects(t *testing.T) {
	svc := newTestService(t, Config{Keys: 8})
	if _, err := RunLoad(ServiceDialer(svc), LoadOptions{ZipfS: 0.5, Duration: time.Millisecond}); err == nil {
		t.Fatal("zipf s ≤ 1 accepted")
	}
	if _, err := RunLoad(ServiceDialer(svc), LoadOptions{Keys: 1, Duration: time.Millisecond}); err == nil {
		t.Fatal("single-key keyspace accepted")
	}
	bad := func() (Caller, error) { return nil, net.ErrClosed }
	if _, err := RunLoad(Dialer(bad), LoadOptions{Conns: 2, Keys: 8, Duration: time.Millisecond}); err == nil {
		t.Fatal("all-connections-failed run reported success")
	}
}
