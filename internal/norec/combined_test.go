package norec

import (
	"errors"
	"sync"
	"testing"
)

func TestCombinedRoundTrip(t *testing.T) {
	s := NewCombined()
	o := NewObject(41)
	th := s.Thread(0)
	if err := th.Run(func(tx *CTx) error {
		v, err := tx.Read(o)
		if err != nil {
			return err
		}
		return tx.Write(o, v.(int)+1)
	}); err != nil {
		t.Fatal(err)
	}
	var got any
	if err := th.RunReadOnly(func(tx *CTx) error {
		v, err := tx.Read(o)
		got = v
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("read back %v, want 42", got)
	}
	if batches, commits := s.BatchStats(); batches != 1 || commits != 1 {
		t.Errorf("BatchStats = %d batches / %d commits, want 1/1", batches, commits)
	}
}

func TestCombinedReadOnlyRejectsWrites(t *testing.T) {
	s := NewCombined()
	o := NewObject(0)
	if err := s.Thread(0).RunReadOnly(func(tx *CTx) error {
		return tx.Write(o, 1)
	}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("err = %v, want ErrReadOnly", err)
	}
}

// TestCombinedIntraBatchInvalidation drives one combining batch by hand:
// two requests read the same cell's old value and both write it. The
// combiner must apply the first (slot order) and abort the second — its
// logged read was invalidated by the first's write-back inside the very
// same batch — with a single +2 clock bump for the batch.
func TestCombinedIntraBatchInvalidation(t *testing.T) {
	stm := NewCombined()
	o := NewObject(0)
	t1, t2 := stm.Thread(0), stm.Thread(1)
	tx1, tx2 := &t1.tx, &t2.tx
	for _, tx := range []*CTx{tx1, tx2} {
		tx.Tx.reset(&stm.STM, false)
		if _, err := tx.Read(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx1.Write(o, 1); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Write(o, 2); err != nil {
		t.Fatal(err)
	}
	// Publish both requests, then run one combining pass with the lock held.
	t1.slot.outcome.Store(slotPending)
	t1.slot.req.Store(tx1)
	t2.slot.outcome.Store(slotPending)
	t2.slot.req.Store(tx2)
	v := stm.seq.Load()
	if v&1 != 0 || !stm.seq.CompareAndSwap(v, v+1) {
		t.Fatalf("could not take the sequence lock at %d", v)
	}
	stm.combine(v)
	if out := t1.slot.outcome.Load(); out != slotCommitted {
		t.Errorf("first slot outcome = %d, want committed", out)
	}
	if out := t2.slot.outcome.Load(); out != slotAborted {
		t.Errorf("second slot outcome = %d, want aborted (read invalidated in batch)", out)
	}
	if got := stm.seq.Load(); got != v+2 {
		t.Errorf("sequence lock = %d after batch, want %d", got, v+2)
	}
	var got any
	if err := stm.Thread(2).RunReadOnly(func(tx *CTx) error {
		r, err := tx.Read(o)
		got = r
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("cell = %v after batch, want only the first request's write (1)", got)
	}
	if batches, commits := stm.BatchStats(); batches != 1 || commits != 1 {
		t.Errorf("BatchStats = %d/%d, want 1 batch with 1 commit", batches, commits)
	}
}

// TestCombinedAllAbortedBatchRestoresClock: a batch in which every request
// fails validation writes nothing, so the combiner must restore the
// sequence lock to its exact pre-acquisition value.
func TestCombinedAllAbortedBatchRestoresClock(t *testing.T) {
	stm := NewCombined()
	o := NewObject(0)
	t1 := stm.Thread(0)
	tx1 := &t1.tx
	tx1.Tx.reset(&stm.STM, false)
	if _, err := tx1.Read(o); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Write(o, 1); err != nil {
		t.Fatal(err)
	}
	// A foreign commit invalidates the logged read before the batch runs.
	if err := stm.Thread(1).Run(func(tx *CTx) error { return tx.Write(o, 7) }); err != nil {
		t.Fatal(err)
	}
	t1.slot.outcome.Store(slotPending)
	t1.slot.req.Store(tx1)
	v := stm.seq.Load()
	if v&1 != 0 || !stm.seq.CompareAndSwap(v, v+1) {
		t.Fatalf("could not take the sequence lock at %d", v)
	}
	stm.combine(v)
	if out := t1.slot.outcome.Load(); out != slotAborted {
		t.Errorf("outcome = %d, want aborted", out)
	}
	if got := stm.seq.Load(); got != v {
		t.Errorf("all-aborted batch moved the clock: %d → %d", v, got)
	}
}

// TestCombinedBatchInterleaving is the satellite stress test: K committers
// with overlapping read/write sets hammer one universe, so batches form
// with intra-batch conflicts (every transaction reads and writes the shared
// counter). No update may be lost — the counter must land exactly on the
// number of committed increments — and the batch telemetry must account for
// every update commit exactly once.
func TestCombinedBatchInterleaving(t *testing.T) {
	stm := NewCombined()
	const workers = 6
	const perWorker = 400
	counter := NewObject(0)
	side := [3]*Object{NewObject(0), NewObject(0), NewObject(0)}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := stm.Thread(id)
			for i := 0; i < perWorker; i++ {
				if err := th.Run(func(tx *CTx) error {
					// Overlap the read sets beyond the counter itself so a
					// batch member can be invalidated by a side-cell write.
					v, err := tx.Read(counter)
					if err != nil {
						return err
					}
					sv, err := tx.Read(side[i%len(side)])
					if err != nil {
						return err
					}
					if err := tx.Write(side[(i+id)%len(side)], sv.(int)+1); err != nil {
						return err
					}
					return tx.Write(counter, v.(int)+1)
				}); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var got int
	if err := stm.Thread(workers).RunReadOnly(func(tx *CTx) error {
		v, err := tx.Read(counter)
		if err != nil {
			return err
		}
		got = v.(int)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if want := workers * perWorker; got != want {
		t.Errorf("counter = %d, want %d (lost updates)", got, want)
	}
	batches, commits := stm.BatchStats()
	if commits != uint64(workers*perWorker) {
		t.Errorf("batched commits = %d, want %d (every update commit exactly once)",
			commits, workers*perWorker)
	}
	if batches == 0 || batches > commits {
		t.Errorf("implausible batch count %d for %d commits", batches, commits)
	}
}
