// Deterministic fault injection for replication streams: Link is an
// in-process conn pair (net.Pipe under the hood, so deadlines work) whose
// ends can drop traffic silently (partition — peers discover it only
// through deadlines), delay writes (slow follower — backpressure into the
// primary's send buffer), cut hard (process death), or break mid-frame
// after a byte budget (torn stream). The fault matrix tests and the
// stmserve failover tests drive these instead of real sockets, so every
// scenario runs single-process and race-clean.
package replica

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrLinkCut is the write error after a Link fault severs the stream.
var ErrLinkCut = errors.New("replica: fault link cut")

// Link is a connected in-process conn pair with fault controls. A returns
// the dialing side's end (the follower, by convention), B the accepting
// side's (the primary).
type Link struct {
	a, b *faultEnd
}

// NewLink returns a fresh healthy pair.
func NewLink() *Link {
	c1, c2 := net.Pipe()
	l := &Link{a: &faultEnd{conn: c1, limit: -1}, b: &faultEnd{conn: c2, limit: -1}}
	l.a.peer, l.b.peer = l.b, l.a
	return l
}

// A is the dialer-side end, B the acceptor-side end.
func (l *Link) A() net.Conn { return l.a }
func (l *Link) B() net.Conn { return l.b }

// Partition silently drops all traffic in both directions: writes claim
// success, nothing arrives, and both ends discover the break only when
// their read deadlines fire — the classic network partition.
func (l *Link) Partition() {
	l.a.setDrop(true)
	l.b.setDrop(true)
}

// Heal ends a Partition. Frames swallowed while partitioned stay lost (the
// stream is torn from each end's perspective and must reconnect).
func (l *Link) Heal() {
	l.a.setDrop(false)
	l.b.setDrop(false)
}

// Cut severs the link hard: both ends' I/O fails immediately, like a peer
// process dying.
func (l *Link) Cut() {
	l.a.conn.Close()
	l.b.conn.Close()
}

// CutAfterWrites severs the link after the B (primary) end writes n more
// bytes: the nth write delivers a partial payload and then the link dies,
// tearing a frame mid-stream.
func (l *Link) CutAfterWrites(n int64) { l.b.setLimit(n) }

// DelayWrites makes every B (primary) end write sleep d first — a slow
// follower's backpressure without touching the follower itself.
func (l *Link) DelayWrites(d time.Duration) { l.b.setDelay(d) }

// faultEnd wraps one pipe end with the fault switchboard.
type faultEnd struct {
	conn net.Conn
	peer *faultEnd

	mu    sync.Mutex
	drop  bool
	delay time.Duration
	limit int64 // bytes this end may still write; -1 = unlimited
}

func (e *faultEnd) setDrop(on bool) {
	e.mu.Lock()
	e.drop = on
	e.mu.Unlock()
}

func (e *faultEnd) setDelay(d time.Duration) {
	e.mu.Lock()
	e.delay = d
	e.mu.Unlock()
}

func (e *faultEnd) setLimit(n int64) {
	e.mu.Lock()
	e.limit = n
	e.mu.Unlock()
}

func (e *faultEnd) Write(b []byte) (int, error) {
	e.mu.Lock()
	drop, delay, limit := e.drop, e.delay, e.limit
	e.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if drop {
		return len(b), nil // swallowed: the partition eats it
	}
	if limit >= 0 {
		if int64(len(b)) >= limit {
			// Deliver the allowed prefix, then kill the pipe: the reader
			// sees a torn frame, not a clean close.
			if limit > 0 {
				_, _ = e.conn.Write(b[:limit])
			}
			e.conn.Close()
			e.peer.conn.Close()
			return int(limit), ErrLinkCut
		}
		e.mu.Lock()
		e.limit -= int64(len(b))
		e.mu.Unlock()
	}
	return e.conn.Write(b)
}

func (e *faultEnd) Read(b []byte) (int, error) {
	return e.conn.Read(b)
}

func (e *faultEnd) Close() error                       { return e.conn.Close() }
func (e *faultEnd) LocalAddr() net.Addr                { return e.conn.LocalAddr() }
func (e *faultEnd) RemoteAddr() net.Addr               { return e.conn.RemoteAddr() }
func (e *faultEnd) SetDeadline(t time.Time) error      { return e.conn.SetDeadline(t) }
func (e *faultEnd) SetReadDeadline(t time.Time) error  { return e.conn.SetReadDeadline(t) }
func (e *faultEnd) SetWriteDeadline(t time.Time) error { return e.conn.SetWriteDeadline(t) }
