package stmserve

import (
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/engine"
	"repro/internal/replica"
)

// newDurableService builds a Service over a fresh durable/norec engine in its
// own WAL dir, returning both so the replication layer can be wired to the
// engine directly. The caller closes the Service (which closes the WAL).
func newDurableService(t *testing.T, cfg Config) (*Service, *durable.Engine) {
	t.Helper()
	eng, err := durable.Wrap(engine.MustNew("norec", engine.Options{}), durable.Options{
		Dir:           t.TempDir(),
		Fsync:         durable.FsyncNever,
		SnapshotBytes: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc, eng
}

// pipeDialer returns a Dialer that runs ServeConn over one end of a fresh
// net.Pipe per dial — the full wire stack, no sockets.
func pipeDialer(srv *Server) Dialer {
	return func() (Caller, error) {
		serverEnd, clientEnd := net.Pipe()
		go srv.ServeConn(serverEnd)
		return NewClient(clientEnd), nil
	}
}

// TestFailoverAuditEndToEnd is the in-process failover proof: a primary and a
// hot standby — each a full Service over its own durable engine — joined by
// the replication layer over a fault Link, quorum acks gating client acks.
// The audit loads the primary until it is killed mid-load, promotes the
// standby over the wire with PROMOTE, and asserts zero acked-commit loss and
// a conserved bank sum on the survivor. The CI replication-smoke job runs the
// same audit across real processes and kill -9.
func TestFailoverAuditEndToEnd(t *testing.T) {
	cfg := Config{Keys: 32, Initial: 100}
	svcP, engP := newDurableService(t, cfg)
	svcS, engS := newDurableService(t, cfg)
	t.Cleanup(func() { svcS.Close() })
	t.Cleanup(func() { svcP.Close() })

	prim := replica.NewPrimary(engP, replica.PrimaryOptions{
		Quorum:        1,
		AckTimeout:    5 * time.Second,
		Heartbeat:     30 * time.Millisecond,
		StreamTimeout: 500 * time.Millisecond,
	})
	t.Cleanup(prim.Close)
	foll := replica.NewFollower(engS, func() (net.Conn, error) {
		l := replica.NewLink()
		go prim.HandleConn(l.B())
		return l.A(), nil
	}, replica.FollowerOptions{
		BackoffMin:    5 * time.Millisecond,
		BackoffMax:    50 * time.Millisecond,
		StreamTimeout: 500 * time.Millisecond,
		Seed:          7,
	})
	t.Cleanup(foll.Close)

	// The shell wiring cmd/stmserve does: promote and stats hooks onto the
	// services, replica telemetry adapted into the STATS replication block.
	svcP.SetReplStats(func() *ReplStats {
		st := prim.Stats()
		return &ReplStats{
			Role: "primary", AppendedSeq: st.AppendedSeq,
			Followers: st.Followers, MinAckedSeq: st.MinAckedSeq,
			LagSeqs: st.LagSeqs, LagBytes: st.LagBytes, Resyncs: st.Resyncs,
			Accepts: st.Accepts, Disconnects: st.Disconnects,
		}
	})
	svcS.SetPromote(foll.Promote)
	svcS.SetReplStats(func() *ReplStats {
		st := foll.Stats()
		return &ReplStats{
			Role: "follower", AppendedSeq: st.AppliedSeq,
			Connected: st.Connected, Reconnects: st.Reconnects,
			Snapshots: st.Snapshots, Promoted: st.Promoted,
		}
	})

	primaryDial := pipeDialer(NewServer(svcP))
	standbyDial := pipeDialer(NewServer(svcS))

	// A standby refuses update transactions while it still follows.
	{
		c, _ := standbyDial()
		var resp Response
		if err := c.Do(&Request{Op: OpWrite, Key: 0, Val: 1}, &resp); err != nil ||
			!strings.Contains(resp.Err, "standby") {
			t.Fatalf("standby write = %v %q, want standby refusal", err, resp.Err)
		}
		c.Close()
	}

	// The killer: once enough commits are acked mid-load, the primary
	// service dies (Close fails every in-flight and future op — the
	// in-process stand-in for kill -9, which CI does for real).
	killBase := engP.AppendedSeq()
	var killed atomic.Bool
	go func() {
		for engP.AppendedSeq() < killBase+50 {
			time.Sleep(5 * time.Millisecond)
		}
		killed.Store(true)
		svcP.Close()
	}()

	rep, err := RunFailoverAudit(primaryDial, standbyDial, FailoverAuditOptions{
		Conns:          2,
		Window:         20 * time.Second,
		ReplWait:       10 * time.Second,
		PromoteTimeout: 10 * time.Second,
		Keys:           cfg.Keys,
		Initial:        cfg.Initial,
	})
	if err != nil {
		t.Fatalf("failover audit: %v (report %+v)", err, rep)
	}
	if !killed.Load() {
		t.Fatalf("audit passed but the primary was never killed (report %+v)", rep)
	}
	if rep.Acked == 0 {
		t.Fatal("audit acked zero transfers before the kill")
	}
	if rep.AppliedSeq == 0 {
		t.Fatal("promoted standby reports a zero replication watermark")
	}
	if rep.Followers < 1 {
		t.Fatalf("audit observed %d followers before loading", rep.Followers)
	}

	// The promoted standby serves update transactions: failover is complete.
	{
		c, _ := standbyDial()
		defer c.Close()
		var resp Response
		if err := c.Do(&Request{Op: OpTransfer, Key: 1, Key2: 2, Val: 3}, &resp); err != nil || resp.Err != "" {
			t.Fatalf("transfer on promoted standby: %v %q", err, resp.Err)
		}
		// A second PROMOTE reports the terminal state as an op error.
		if err := c.Do(&Request{Op: OpPromote}, &resp); err != nil || !strings.Contains(resp.Err, "already promoted") {
			t.Fatalf("second PROMOTE = %v %q, want already-promoted", err, resp.Err)
		}
	}
}

// TestPromoteWithoutHook asserts OpPromote on a plain (non-replica) service
// is an op-level error, over the wire and programmatically.
func TestPromoteWithoutHook(t *testing.T) {
	svc := newTestService(t, Config{Keys: 4})
	sess := svc.Session()
	defer sess.Close()
	var resp Response
	if err := sess.Exec(&Request{Op: OpPromote}, &resp); err == nil ||
		!strings.Contains(resp.Err, "not a standby") {
		t.Fatalf("PROMOTE without hook = %v %q", err, resp.Err)
	}
}
