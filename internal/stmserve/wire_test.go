package stmserve

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseRequest(t *testing.T) {
	cases := []struct {
		line string
		want Request
	}{
		{"PING", Request{Op: OpPing}},
		{"INFO", Request{Op: OpInfo}},
		{"STATS", Request{Op: OpStats}},
		{"R 7", Request{Op: OpRead, Key: 7}},
		{"W 7 42", Request{Op: OpWrite, Key: 7, Val: 42}},
		{"T 1 2 50", Request{Op: OpTransfer, Key: 1, Key2: 2, Val: 50}},
		{"C 3 10 20", Request{Op: OpCAS, Key: 3, Val: 10, Val2: 20}},
		{"SNAP 1 2 3", Request{Op: OpSnapshot, Keys: []int{1, 2, 3}}},
		{"MR 4 5", Request{Op: OpBatchRead, Keys: []int{4, 5}}},
		{"MW 1 10 2 20", Request{Op: OpBatchWrite, Keys: []int{1, 2}, Vals: []int64{10, 20}}},
		{"SADD 9", Request{Op: OpSetAdd, Key: 9}},
		{"SREM 9", Request{Op: OpSetRemove, Key: 9}},
		{"SHAS 9", Request{Op: OpSetContains, Key: 9}},
		{"W 7 -42", Request{Op: OpWrite, Key: 7, Val: -42}},
		{"  R   7  ", Request{Op: OpRead, Key: 7}}, // tolerant of extra spaces
	}
	var req Request
	for _, tc := range cases {
		if err := ParseRequest([]byte(tc.line), &req); err != nil {
			t.Errorf("ParseRequest(%q): %v", tc.line, err)
			continue
		}
		// Normalize empty slices for comparison.
		got := req
		if len(got.Keys) == 0 {
			got.Keys = nil
		}
		if len(got.Vals) == 0 {
			got.Vals = nil
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseRequest(%q) = %+v, want %+v", tc.line, got, tc.want)
		}
	}
}

func TestParseRequestErrors(t *testing.T) {
	cases := []struct {
		line string
		want string
	}{
		{"", "empty"},
		{"   ", "empty"},
		{"FLY 1", "unknown verb"},
		{"R", "needs 1 fields"},
		{"R x", "bad field"},
		{"R 1 2", "trailing"},
		{"W 1", "needs 2 fields"},
		{"T 1 2", "needs 3 fields"},
		{"SNAP", "at least one key"},
		{"SNAP x", "bad key"},
		{"MW", "at least one key-value pair"},
		{"MW 1", "without a value"},
		{"MW 1 x", "bad value"},
	}
	var req Request
	for _, tc := range cases {
		err := ParseRequest([]byte(tc.line), &req)
		if err == nil {
			t.Errorf("ParseRequest(%q) accepted", tc.line)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseRequest(%q) error %q does not mention %q", tc.line, err, tc.want)
		}
	}
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpPing},
		{Op: OpInfo},
		{Op: OpStats},
		{Op: OpRead, Key: 12},
		{Op: OpWrite, Key: 3, Val: -7},
		{Op: OpTransfer, Key: 0, Key2: 1023, Val: 99},
		{Op: OpCAS, Key: 5, Val: 1, Val2: 2},
		{Op: OpSnapshot, Keys: []int{0, 1, 2, 3}},
		{Op: OpBatchRead, Keys: []int{9}},
		{Op: OpBatchWrite, Keys: []int{1, 2, 3}, Vals: []int64{-1, 0, 1}},
		{Op: OpSetAdd, Key: 1},
		{Op: OpSetRemove, Key: 2},
		{Op: OpSetContains, Key: 3},
	}
	var back Request
	for _, req := range reqs {
		line, err := AppendRequest(nil, &req)
		if err != nil {
			t.Fatalf("AppendRequest(%+v): %v", req, err)
		}
		if err := ParseRequest(line, &back); err != nil {
			t.Fatalf("ParseRequest(%q): %v", line, err)
		}
		got := back
		if len(got.Keys) == 0 {
			got.Keys = nil
		}
		if len(got.Vals) == 0 {
			got.Vals = nil
		}
		if !reflect.DeepEqual(got, req) {
			t.Fatalf("round trip %+v → %q → %+v", req, line, got)
		}
	}
	if _, err := AppendRequest(nil, &Request{Op: OpInvalid}); err == nil {
		t.Fatal("AppendRequest encoded the invalid op")
	}
	if _, err := AppendRequest(nil, &Request{Op: OpBatchWrite, Keys: []int{1}, Vals: nil}); err == nil {
		t.Fatal("AppendRequest encoded a ragged batch write")
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{},
		{Vals: []int64{42}},
		{Vals: []int64{-1, 0, 7}},
		{Text: "norec", Vals: []int64{1024}},
		{Text: `{"engine":"norec"}`},
		{Err: "key 9 out of range"},
	}
	var back Response
	for _, resp := range resps {
		line := AppendResponse(nil, &resp)
		if err := ParseResponse(line, &back); err != nil {
			t.Fatalf("ParseResponse(%q): %v", line, err)
		}
		got := back
		if len(got.Vals) == 0 {
			got.Vals = nil
		}
		if !reflect.DeepEqual(got, resp) {
			t.Fatalf("round trip %+v → %q → %+v", resp, line, got)
		}
	}
	if err := ParseResponse([]byte("WAT 1"), &back); err == nil {
		t.Fatal("ParseResponse accepted a malformed line")
	}
	if err := ParseResponse([]byte("OK foo bar"), &back); err == nil {
		t.Fatal("ParseResponse accepted two text tokens")
	}
}

// TestParseRequestReusesSlices pins the zero-steady-state-allocation
// property the server loop depends on: parsing into a warm Request must not
// grow its slices again.
func TestParseRequestReusesSlices(t *testing.T) {
	var req Request
	if err := ParseRequest([]byte("MW 1 10 2 20 3 30"), &req); err != nil {
		t.Fatal(err)
	}
	keys, vals := &req.Keys[0], &req.Vals[0]
	if err := ParseRequest([]byte("MW 4 40 5 50"), &req); err != nil {
		t.Fatal(err)
	}
	if &req.Keys[0] != keys || &req.Vals[0] != vals {
		t.Fatal("ParseRequest reallocated the request slices")
	}
	line := []byte("T 1 2 50")
	allocs := testing.AllocsPerRun(100, func() {
		if err := ParseRequest(line, &req); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("ParseRequest allocates %.1f/op on a warm request, want 0", allocs)
	}
}
