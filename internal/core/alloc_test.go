package core

// Allocation budgets for the small-transaction fast paths. These are the
// ratchet behind the -benchmem trend in the repo-root BenchmarkSmallTxAllocs:
// a regression that reintroduces per-attempt allocations (entry-slice growth,
// per-write version/locator nodes, the commit-timestamp box, per-supersession
// Timestamp boxes) fails here deterministically instead of drifting in a
// bench snapshot.
//
// Budget accounting on the current fast path:
//
//   - read-only, ≤smallAccessSet reads: 1 — the per-attempt Tx itself, which
//     embeds the inline entry array. The Tx cannot be reused across attempts
//     (helpers may validate a frozen access set), so 1 is the floor for the
//     current design.
//   - update, 2 read-modify-writes: 3 — the Tx, plus the two committed-head
//     version nodes built when the *next* attempt settles the previous
//     commit's locators (settling is lazy, so in a steady-state loop each
//     run pays the previous run's supersessions; each costs exactly one
//     node: the locator and the predecessor's fixed upper bound are embedded
//     in it).
//
// Values written stay in [0,255] so the runtime's small-int interface cache
// keeps payload boxing out of the count — the budgets measure the engine,
// not the workload's boxing discipline.

import (
	"testing"
)

// allocBudget asserts the steady-state allocations per run. It reports the
// measured value so a failure shows the regression size immediately.
func allocBudget(t *testing.T, name string, budget float64, f func()) {
	t.Helper()
	// One untimed warm round builds thread-local state (clocks, spare maps)
	// before AllocsPerRun's own warmup run.
	f()
	if got := testing.AllocsPerRun(200, f); got > budget {
		t.Errorf("%s: %.1f allocs/run, budget %.0f", name, got, budget)
	}
}

func TestAllocBudgetReadOnlySmall(t *testing.T) {
	rt := counterRT()
	a, b := NewObject(1), NewObject(2)
	th := rt.Thread(0)
	fn := func(tx *Tx) error {
		if _, err := tx.Read(a); err != nil {
			return err
		}
		_, err := tx.Read(b)
		return err
	}
	allocBudget(t, "core read-only 2 reads", 1, func() {
		if err := th.RunReadOnly(fn); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocBudgetUpdateSmall(t *testing.T) {
	rt := counterRT()
	a, b := NewObject(0), NewObject(0)
	th := rt.Thread(0)
	bump := func(tx *Tx, o *Object) error {
		v, err := tx.Read(o)
		if err != nil {
			return err
		}
		return tx.Write(o, (v.(int)+1)%100)
	}
	fn := func(tx *Tx) error {
		if err := bump(tx, a); err != nil {
			return err
		}
		return bump(tx, b)
	}
	allocBudget(t, "core 2-write update", 3, func() {
		if err := th.Run(fn); err != nil {
			t.Fatal(err)
		}
	})
}
