// Quickstart: concurrent bank transfers on the tstm public API.
//
// Eight goroutines shuffle money between accounts while auditors verify,
// in read-only transactions, that the total never changes. Run it twice
// with different time bases to see the same program on a shared counter
// and on (simulated) synchronized hardware clocks:
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -timebase mmtimer
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"

	tstm "repro"
)

func main() {
	timebase := flag.String("timebase", "counter", "counter|tl2|mmtimer|ideal")
	flag.Parse()

	var opt tstm.Option
	switch *timebase {
	case "counter":
		opt = tstm.WithSharedCounter()
	case "tl2":
		opt = tstm.WithTL2Counter()
	case "mmtimer":
		opt = tstm.WithMMTimer(8)
	case "ideal":
		opt = tstm.WithIdealClock(8)
	default:
		log.Fatalf("unknown time base %q", *timebase)
	}
	rt, err := tstm.New(opt)
	if err != nil {
		log.Fatal(err)
	}

	const accounts, initial = 16, 1000
	const workers, transfersEach = 8, 5000
	vars := make([]*tstm.Var[int], accounts)
	for i := range vars {
		vars[i] = tstm.NewVar(initial)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := rt.Thread(id)
			for i := 0; i < transfersEach; i++ {
				from := (id*31 + i) % accounts
				to := (from + 1 + i%5) % accounts
				if from == to {
					continue
				}
				// One atomic transfer: both balances move or neither does.
				err := th.Atomic(func(tx *tstm.Tx) error {
					fb, err := vars[from].Get(tx)
					if err != nil {
						return err
					}
					tb, err := vars[to].Get(tx)
					if err != nil {
						return err
					}
					if err := vars[from].Set(tx, fb-1); err != nil {
						return err
					}
					return vars[to].Set(tx, tb+1)
				})
				if err != nil {
					log.Fatalf("worker %d: %v", id, err)
				}
				// Periodic read-only audit: a consistent snapshot of all
				// accounts, served from object history without blocking the
				// transfers.
				if i%500 == 0 {
					err := th.AtomicReadOnly(func(tx *tstm.Tx) error {
						sum := 0
						for _, v := range vars {
							b, err := v.Get(tx)
							if err != nil {
								return err
							}
							sum += b
						}
						if sum != accounts*initial {
							return fmt.Errorf("audit saw %d, want %d", sum, accounts*initial)
						}
						return nil
					})
					if err != nil {
						log.Fatalf("worker %d audit: %v", id, err)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	total := 0
	th := rt.Thread(workers)
	if err := th.AtomicReadOnly(func(tx *tstm.Tx) error {
		total = 0
		for _, v := range vars {
			b, err := v.Get(tx)
			if err != nil {
				return err
			}
			total += b
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	s := rt.Stats()
	fmt.Printf("time base        %s\n", rt.TimeBaseName())
	fmt.Printf("final total      %d (expected %d)\n", total, accounts*initial)
	fmt.Printf("commits          %d\n", s.Commits)
	fmt.Printf("aborts/attempt   %.4f\n", s.AbortRate())
	if total != accounts*initial {
		log.Fatal("INVARIANT VIOLATED")
	}
	fmt.Println("invariant held ✓")
}
