package stmserve

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"
)

// The failover audit: the client-side half of the replication proof, the
// log-shipping sibling of audit.go's crash-recovery audit. It drives
// acknowledged transfers at a replicated primary until the primary dies (the
// kill is external — kill -9 in CI, Service.Close in tests), promotes the
// hot standby with the PROMOTE op, and then asserts on the promoted node
// that every transfer the dead primary acknowledged survived the failover
// and that the keyspace still conserves its sum. The zero-acked-loss claim
// is only as strong as the ack mode: run the primary with -repl-ack quorum
// so client acks waited for follower acks, otherwise the tail of
// acknowledged commits may legitimately die with the primary.

// FailoverAuditOptions parameterizes RunFailoverAudit. Zero values select
// defaults.
type FailoverAuditOptions struct {
	// Conns is the number of audit connections (default 4), each owning a
	// marker key (key i) and a sink key (key keys/2+i).
	Conns int
	// Window bounds the load phase: the primary must die within it (default
	// 30s).
	Window time.Duration
	// ReplWait bounds the pre-phase wait for the primary to report at least
	// MinFollowers live followers (default 30s). Loading before the standby
	// is attached would make the audit vacuous.
	ReplWait time.Duration
	// MinFollowers is the follower count the pre-phase waits for (default 1).
	MinFollowers int
	// PromoteTimeout bounds the promote phase: dialing the standby and
	// getting its PROMOTE accepted (default 30s).
	PromoteTimeout time.Duration
	// Keys and Initial describe the keyspace. 0 asks the primary via INFO;
	// the standby must agree.
	Keys    int
	Initial int64
	// SkipSum skips the conserved-sum assertion (set when other clients ran
	// non-transfer traffic against the keyspace).
	SkipSum bool
}

func (o FailoverAuditOptions) withDefaults() FailoverAuditOptions {
	if o.Conns <= 0 {
		o.Conns = 4
	}
	if o.Window <= 0 {
		o.Window = 30 * time.Second
	}
	if o.ReplWait <= 0 {
		o.ReplWait = 30 * time.Second
	}
	if o.MinFollowers <= 0 {
		o.MinFollowers = 1
	}
	if o.PromoteTimeout <= 0 {
		o.PromoteTimeout = 30 * time.Second
	}
	return o
}

// FailoverReport is the audit's outcome. Err-free completion means every
// transfer the dead primary acknowledged was found on the promoted standby.
type FailoverReport struct {
	Conns        int           `json:"conns"`
	Keys         int           `json:"keys"`
	Followers    int           `json:"followers"` // primary's view before load
	Acked        uint64        `json:"acked"`
	PerConn      []uint64      `json:"acked_per_conn"`
	DownAfter    time.Duration `json:"down_after_ns"`
	PromoteAfter time.Duration `json:"promote_after_ns"`
	Sum          int64         `json:"sum"`
	WantSum      int64         `json:"want_sum"`
	// AppliedSeq is the promoted node's replication watermark — the nonzero
	// proof that commits actually flowed over the wire.
	AppliedSeq uint64 `json:"applied_seq"`
}

// statsCall issues STATS and decodes the JSON payload.
func statsCall(c Caller) (*Stats, error) {
	var resp Response
	if err := c.Do(&Request{Op: OpStats}, &resp); err != nil {
		return nil, fmt.Errorf("stmserve: STATS: %w", err)
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("stmserve: STATS: %s", resp.Err)
	}
	var st Stats
	if err := json.Unmarshal([]byte(resp.Text), &st); err != nil {
		return nil, fmt.Errorf("stmserve: STATS decode: %w", err)
	}
	return &st, nil
}

// RunFailoverAudit loads a replicated primary with acknowledged transfers
// until it dies, promotes the standby behind standbyDial, and verifies that
// failover kept every acked commit. A non-nil error means zero-acked-loss
// was NOT proven.
func RunFailoverAudit(primaryDial, standbyDial Dialer, opts FailoverAuditOptions) (*FailoverReport, error) {
	opts = opts.withDefaults()
	rep := &FailoverReport{Conns: opts.Conns}

	// Setup on the primary: keyspace shape, replication pre-check, marker
	// baselines.
	c, err := primaryDial()
	if err != nil {
		return rep, fmt.Errorf("stmserve: failover audit dial primary: %w", err)
	}
	keys, initial, err := infoCall(c)
	if err != nil {
		c.Close()
		return rep, err
	}
	if opts.Keys != 0 && opts.Keys != keys {
		c.Close()
		return rep, fmt.Errorf("stmserve: failover audit: primary keyspace %d != expected %d", keys, opts.Keys)
	}
	if opts.Initial != 0 {
		initial = opts.Initial
	}
	rep.Keys = keys
	rep.WantSum = int64(keys) * initial
	if opts.Conns > keys/2 {
		c.Close()
		return rep, fmt.Errorf("stmserve: failover audit: %d conns need %d keys (marker+sink per conn), have %d", opts.Conns, 2*opts.Conns, keys)
	}

	// Wait for replication to be live: the primary must report at least
	// MinFollowers attached followers before the load starts, or the acked
	// transfers would have nowhere to survive to.
	waitStart := time.Now()
	for {
		st, err := statsCall(c)
		if err != nil {
			c.Close()
			return rep, err
		}
		if st.Replication == nil {
			c.Close()
			return rep, fmt.Errorf("stmserve: failover audit: primary reports no replication block (started without -repl-listen?)")
		}
		if st.Replication.Followers >= opts.MinFollowers {
			rep.Followers = st.Replication.Followers
			break
		}
		if time.Since(waitStart) > opts.ReplWait {
			c.Close()
			return rep, fmt.Errorf("stmserve: failover audit: primary has %d followers after %v, want ≥ %d",
				st.Replication.Followers, opts.ReplWait, opts.MinFollowers)
		}
		time.Sleep(50 * time.Millisecond)
	}

	baseline := make([]int64, opts.Conns)
	{
		req := Request{Op: OpBatchRead}
		for i := 0; i < opts.Conns; i++ {
			req.Keys = append(req.Keys, i)
		}
		var resp Response
		if err := c.Do(&req, &resp); err != nil || resp.Err != "" || len(resp.Vals) != opts.Conns {
			c.Close()
			return rep, fmt.Errorf("stmserve: failover audit baseline read: %v %q", err, resp.Err)
		}
		copy(baseline, resp.Vals)
	}
	c.Close()

	// Load phase: identical to the recovery audit's — conn i transfers 1
	// from its sink into its marker, counting acknowledged commits only,
	// until the primary dies. With -repl-ack quorum every count here was
	// follower-acked before the client saw OK.
	rep.PerConn = make([]uint64, opts.Conns)
	start := time.Now()
	deadline := start.Add(opts.Window)
	var wg sync.WaitGroup
	died := make([]bool, opts.Conns)
	for i := 0; i < opts.Conns; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := primaryDial()
			if err != nil {
				died[id] = true
				return
			}
			defer c.Close()
			req := Request{Op: OpTransfer, Key: keys/2 + id, Key2: id, Val: 1}
			var resp Response
			for time.Now().Before(deadline) {
				if err := c.Do(&req, &resp); err != nil || resp.Err != "" {
					died[id] = true
					return
				}
				rep.PerConn[id]++
			}
		}(i)
	}
	wg.Wait()
	rep.DownAfter = time.Since(start)
	for i, d := range died {
		rep.Acked += rep.PerConn[i]
		if !d {
			return rep, fmt.Errorf("stmserve: failover audit: primary still up after %v window (conn %d never saw it die)", opts.Window, i)
		}
	}

	// Promote phase: tell the standby to seal its stream and start serving.
	// Retries cover a standby that is briefly unreachable; a PROMOTE racing
	// an earlier success reports "already promoted", which is success here.
	promoteStart := time.Now()
	c = nil
	for {
		cand, err := standbyDial()
		if err == nil {
			var resp Response
			perr := cand.Do(&Request{Op: OpPromote}, &resp)
			if perr == nil && (resp.Err == "" || strings.Contains(resp.Err, "already promoted")) {
				c = cand
				break
			}
			cand.Close()
			if perr == nil && resp.Err != "" && !strings.Contains(resp.Err, "already promoted") {
				return rep, fmt.Errorf("stmserve: failover audit: standby refused PROMOTE: %s", resp.Err)
			}
		}
		if time.Since(promoteStart) > opts.PromoteTimeout {
			return rep, fmt.Errorf("stmserve: failover audit: standby not promoted within %v", opts.PromoteTimeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
	defer c.Close()
	rep.PromoteAfter = time.Since(promoteStart)

	// Verification on the promoted node: same keyspace...
	keys2, _, err := infoCall(c)
	if err != nil {
		return rep, err
	}
	if keys2 != keys {
		return rep, fmt.Errorf("stmserve: failover audit: keyspace differs across failover: %d → %d", keys, keys2)
	}

	// ...every acked transfer present (marker may exceed the bound when an
	// ack was lost in flight as the primary died)...
	{
		req := Request{Op: OpBatchRead}
		for i := 0; i < opts.Conns; i++ {
			req.Keys = append(req.Keys, i)
		}
		var resp Response
		if err := c.Do(&req, &resp); err != nil || resp.Err != "" || len(resp.Vals) != opts.Conns {
			return rep, fmt.Errorf("stmserve: failover audit marker read: %v %q", err, resp.Err)
		}
		for i, got := range resp.Vals {
			want := baseline[i] + int64(rep.PerConn[i])
			if got < want {
				return rep, fmt.Errorf("stmserve: failover audit: conn %d lost acked transfers across failover: marker %d < baseline %d + acked %d",
					i, got, baseline[i], rep.PerConn[i])
			}
		}
	}

	// ...a conserved sum...
	if !opts.SkipSum {
		const batch = 256
		var resp Response
		req := Request{Op: OpSnapshot}
		for lo := 0; lo < keys; lo += batch {
			req.Keys = req.Keys[:0]
			for k := lo; k < keys && k < lo+batch; k++ {
				req.Keys = append(req.Keys, k)
			}
			if err := c.Do(&req, &resp); err != nil || resp.Err != "" || len(resp.Vals) != len(req.Keys) {
				return rep, fmt.Errorf("stmserve: failover audit snapshot [%d,%d): %v %q", lo, lo+len(req.Keys), err, resp.Err)
			}
			for _, v := range resp.Vals {
				rep.Sum += v
			}
		}
		if rep.Sum != rep.WantSum {
			return rep, fmt.Errorf("stmserve: failover audit: conserved sum violated: %d != %d (keys %d × initial %d)",
				rep.Sum, rep.WantSum, keys, initial)
		}
	}

	// ...and replication telemetry proving commits actually shipped: the
	// promoted node must report itself promoted with a nonzero applied-seq
	// watermark.
	{
		st, err := statsCall(c)
		if err != nil {
			return rep, err
		}
		if st.Replication == nil {
			return rep, fmt.Errorf("stmserve: failover audit: promoted node reports no replication block")
		}
		if !st.Replication.Promoted {
			return rep, fmt.Errorf("stmserve: failover audit: promoted node's stats do not report promotion")
		}
		rep.AppliedSeq = st.Replication.AppendedSeq
		if rep.AppliedSeq == 0 {
			return rep, fmt.Errorf("stmserve: failover audit: promoted node replicated zero commits (acked %d before the kill)", rep.Acked)
		}
	}
	return rep, nil
}
