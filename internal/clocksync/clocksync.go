// Package clocksync measures the synchronization quality of a multi-node
// clock device by comparing node clocks over shared memory — the experiment
// behind the paper's Figure 1 (§4.1).
//
// The authors had no documentation on whether the Altix MMTimer was
// synchronized, so they measured it: threads on different CPUs read the
// clock and compared their values against a reference value published by a
// thread on another CPU, in rounds, for four hours. Per round they recorded
// the largest estimated offset, the largest possible estimation error, and
// their sum. The result — no drift, errors always larger than offsets,
// error bounded by ~90 ticks — is what justified treating the MMTimer as a
// (perfectly) synchronized clock whose residual error is masked by its own
// 7–8-tick read latency.
//
// This package runs the same protocol against the simulated hwclock.Device.
// The remote clock reading uses Cristian-style round-trip bracketing over
// shared memory: the measuring node reads its clock (t1), requests a
// reference reading, the reference node replies with its clock value r, and
// the measuring node reads its clock again (t2). Then
//
//	offset ≈ (t1+t2)/2 − r,   |error| ≤ (t2−t1)/2 + 1 tick granularity
//
// and the communication latency — cache-line ping-pong, exactly as on the
// Altix — dominates the error, so measured errors exceed true offsets even
// for a perfectly synchronized device.
package clocksync

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/hwclock"
)

// Config parameterizes a measurement run.
type Config struct {
	// Device is the clock under test. Node 0 acts as the reference.
	Device *hwclock.Device

	// Rounds is the number of comparison rounds. Each round compares every
	// non-reference node against node 0.
	Rounds int

	// Interval is the pause between rounds (the paper used 0.1 s over four
	// hours; tests compress this to zero).
	Interval time.Duration

	// SamplesPerNode is how many round-trips per node are taken each round;
	// the sample with the smallest round-trip (smallest error) wins, as in
	// probabilistic clock synchronization. Zero means 3.
	SamplesPerNode int
}

// RoundResult is one round's aggregate over all measured nodes — one point
// of each Figure 1 series.
type RoundResult struct {
	// Round is the round index, starting at 0.
	Round int
	// MaxAbsOffset is max over nodes of |estimated offset| in ticks.
	MaxAbsOffset int64
	// MaxError is max over nodes of the reading-error bound in ticks.
	MaxError int64
	// MaxErrorPlusOffset is max over nodes of (|offset| + error) — the
	// worst-case disagreement bound the paper plots as its third series.
	MaxErrorPlusOffset int64
}

// NodeEstimate is the per-node outcome of a measurement, reusable as input
// to software clock correction.
type NodeEstimate struct {
	// Node is the node index.
	Node int
	// Offset is the estimated offset of this node's clock relative to the
	// reference node, in ticks (positive = this node runs ahead).
	Offset int64
	// Error bounds the estimation error in ticks.
	Error int64
}

// Result is a complete measurement.
type Result struct {
	// Rounds holds one aggregate per round, in order.
	Rounds []RoundResult
	// Final holds the last round's per-node estimates.
	Final []NodeEstimate
}

// MaxError returns the largest per-round error bound across the run — the
// paper's headline "90 ticks seems to be a reasonable estimate".
func (r *Result) MaxError() int64 {
	var m int64
	for _, rr := range r.Rounds {
		if rr.MaxError > m {
			m = rr.MaxError
		}
	}
	return m
}

// MaxAbsOffset returns the largest per-round |offset| across the run.
func (r *Result) MaxAbsOffset() int64 {
	var m int64
	for _, rr := range r.Rounds {
		if rr.MaxAbsOffset > m {
			m = rr.MaxAbsOffset
		}
	}
	return m
}

// refServer is the shared-memory mailbox between the reference thread and
// the measuring threads: a sequence-numbered request/response pair of cache
// lines.
type refServer struct {
	_    [64]byte
	req  atomic.Int64
	_    [56]byte
	resp atomic.Int64
	val  atomic.Int64
	_    [48]byte
	stop atomic.Bool
}

// serve runs on the reference node: answer each new request sequence with a
// fresh reference clock reading. The idle path yields so a starved
// scheduler (e.g. under the race detector) still makes progress; the
// request-to-response path stays a tight spin, since its latency is part of
// what the experiment measures.
func (s *refServer) serve(dev *hwclock.Device) {
	served := int64(0)
	idle := 0
	for !s.stop.Load() {
		r := s.req.Load()
		if r == served {
			if idle++; idle > 64 {
				runtime.Gosched()
				idle = 0
			}
			continue
		}
		idle = 0
		s.val.Store(dev.NodeRead(0))
		s.resp.Store(r)
		served = r
	}
}

// Measure runs the clock-comparison experiment and returns the per-round
// series.
func Measure(cfg Config) (*Result, error) {
	if cfg.Device == nil {
		return nil, fmt.Errorf("clocksync: Device is required")
	}
	if cfg.Device.Nodes() < 2 {
		return nil, fmt.Errorf("clocksync: need at least 2 nodes, have %d", cfg.Device.Nodes())
	}
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("clocksync: Rounds must be positive, got %d", cfg.Rounds)
	}
	samples := cfg.SamplesPerNode
	if samples <= 0 {
		samples = 3
	}
	dev := cfg.Device
	srv := &refServer{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.serve(dev)
	}()
	defer func() {
		srv.stop.Store(true)
		<-done
	}()

	res := &Result{Rounds: make([]RoundResult, 0, cfg.Rounds)}
	seq := int64(0)
	for round := 0; round < cfg.Rounds; round++ {
		rr := RoundResult{Round: round}
		final := make([]NodeEstimate, 0, dev.Nodes()-1)
		for node := 1; node < dev.Nodes(); node++ {
			best := NodeEstimate{Node: node, Error: 1<<62 - 1}
			for s := 0; s < samples; s++ {
				seq++
				t1 := dev.NodeRead(node)
				srv.req.Store(seq)
				for spins := 0; srv.resp.Load() != seq; spins++ {
					if spins > 1<<16 {
						// The server goroutine is starved; yield so it can
						// respond. The inflated round trip only inflates the
						// reported error bound, never breaks it.
						runtime.Gosched()
					}
				}
				r := srv.val.Load()
				t2 := dev.NodeRead(node)
				est := NodeEstimate{
					Node:   node,
					Offset: (t1+t2)/2 - r,
					// Half round trip plus one tick of read granularity on
					// each side.
					Error: (t2-t1)/2 + 2,
				}
				if est.Error < best.Error {
					best = est
				}
			}
			abs := best.Offset
			if abs < 0 {
				abs = -abs
			}
			if abs > rr.MaxAbsOffset {
				rr.MaxAbsOffset = abs
			}
			if best.Error > rr.MaxError {
				rr.MaxError = best.Error
			}
			if abs+best.Error > rr.MaxErrorPlusOffset {
				rr.MaxErrorPlusOffset = abs + best.Error
			}
			final = append(final, best)
		}
		res.Rounds = append(res.Rounds, rr)
		if round == cfg.Rounds-1 {
			res.Final = final
		}
		if cfg.Interval > 0 {
			time.Sleep(cfg.Interval)
		}
	}
	return res, nil
}
