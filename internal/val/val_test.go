package val

import (
	"testing"
)

func TestRoundTrips(t *testing.T) {
	type pair struct{ a, b int }
	cases := []any{0, 1, -1, 300, -300, int(1) << 40, int64(7), int64(-1 << 50),
		"hello", pair{3, 4}, nil, 3.5, true}
	for _, c := range cases {
		v := OfAny(c)
		if got := v.Load(); got != c {
			t.Errorf("OfAny(%v (%T)).Load() = %v (%T)", c, c, got, got)
		}
	}
	if v := OfInt(12345); v.Load() != int(12345) {
		t.Errorf("OfInt round trip: %v", v.Load())
	}
	if v := OfInt64(12345); v.Load() != int64(12345) {
		t.Errorf("OfInt64 round trip: %v", v.Load())
	}
}

func TestCanonicalization(t *testing.T) {
	if OfAny(300).Kind() != KindInt {
		t.Error("OfAny(int) must take the numeric lane")
	}
	if OfAny(int64(300)).Kind() != KindInt64 {
		t.Error("OfAny(int64) must take the numeric lane")
	}
	if OfAny("x").Kind() != KindBoxed {
		t.Error("OfAny(string) must box")
	}
	if n, ok := OfAny(300).AsInt64(); !ok || n != 300 {
		t.Errorf("AsInt64 = %d, %v", n, ok)
	}
	if _, ok := OfAny("x").AsInt64(); ok {
		t.Error("AsInt64 must refuse boxed payloads")
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{OfInt(5), OfInt(5), true},
		{OfInt(5), OfInt(6), false},
		{OfInt(5), OfInt64(5), false}, // distinct dynamic types
		{OfAny(5), OfInt(5), true},
		{OfAny("a"), OfAny("a"), true},
		{OfAny("a"), OfAny("b"), false},
		{OfAny(nil), OfAny(nil), true},
		{OfAny(nil), OfAny("a"), false},
		{OfAny([]int{1}), OfAny([]int{1}), false}, // uncomparable: conservative
		{OfAny(5), OfAny("5"), false},
	}
	for i, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("case %d: Equal = %v, want %v", i, got, c.want)
		}
	}
}

func TestBoxedEqualUncomparableDynamic(t *testing.T) {
	// An interface-typed comparable struct holding an uncomparable dynamic
	// value must count as changed, not panic.
	type box struct{ v any }
	a, b := box{v: []int{1}}, box{v: []int{1}}
	if BoxedEqual(a, b) {
		t.Error("uncomparable dynamic values must compare unequal")
	}
}

func TestAtomicCellLanes(t *testing.T) {
	var c AtomicCell
	c.Store(OfInt(41))
	num, box := c.Snapshot()
	if k, tag := TagKind(box); !tag || k != KindInt || num != 41 {
		t.Fatalf("int store: num=%d tag=%v kind=%v", num, tag, k)
	}
	if got := Decode(num, box).Load(); got != int(41) {
		t.Fatalf("decode = %v", got)
	}

	c.Store(OfInt64(99))
	num, box = c.Snapshot()
	if got := Decode(num, box).Load(); got != int64(99) {
		t.Fatalf("int64 decode = %v", got)
	}

	c.Store(OfAny("payload"))
	num, box = c.Snapshot()
	if _, tag := TagKind(box); tag {
		t.Fatal("boxed store left a lane tag")
	}
	if got := Decode(num, box).Load(); got != "payload" {
		t.Fatalf("boxed decode = %v", got)
	}

	// Back to the lane: the stale boxed pointer must be replaced.
	c.Store(OfInt(7))
	num, box = c.Snapshot()
	if got := Decode(num, box).Load(); got != int(7) {
		t.Fatalf("lane after box = %v", got)
	}
}

func TestAtomicCellIntStoreAllocs(t *testing.T) {
	var c AtomicCell
	c.Store(OfInt(1))
	n := testing.AllocsPerRun(100, func() {
		c.Store(OfInt(1 << 40)) // far outside the runtime's small-int cache
	})
	if n != 0 {
		t.Errorf("numeric-lane Store allocates %.1f per run, want 0", n)
	}
}

func TestDecodeNilBox(t *testing.T) {
	if got := Decode(0, nil).Load(); got != nil {
		t.Errorf("Decode(0, nil).Load() = %v, want nil", got)
	}
}
