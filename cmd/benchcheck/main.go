// Command benchcheck is the CI bench-smoke gate: it validates a JSON bench
// snapshot produced by `lsabench -experiment bench -json`. The conformance
// suite proves every engine correct under bounded iteration counts; what it
// never exercises is the measured-interval path of the full matrix, where a
// backend can wedge silently — workers spinning without a single commit —
// and still exit zero. benchcheck fails loudly instead:
//
//	go run ./cmd/lsabench -experiment bench -duration 60ms -json /tmp/smoke.json
//	go run ./cmd/benchcheck /tmp/smoke.json
//
// Checks, in order: the file parses as harness.Result records; every record
// is well-formed and shows nonzero commits (harness.Result.Validate); every
// registered engine appears (so a backend dropped from the matrix — or an
// init that forgot Register on the bench binary's import graph — fails here
// too); and every engine ran the same workload set. -require-engines can
// relax the registry comparison to an explicit list.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"maps"
	"os"
	"slices"
	"strings"

	"repro/internal/engine"
	"repro/internal/harness"
)

func main() {
	requireEngines := flag.String("require-engines", "", "comma-separated engine names that must appear (default: every registered engine)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchcheck [-require-engines a,b] <bench.json>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	required := engine.Names()
	if *requireEngines != "" {
		required = nil
		for _, n := range strings.Split(*requireEngines, ",") {
			if n = strings.TrimSpace(n); n != "" {
				required = append(required, n)
			}
		}
	}
	if errs := check(data, required); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "benchcheck:", e)
		}
		fmt.Fprintf(os.Stderr, "benchcheck: %s: %d problem(s)\n", flag.Arg(0), len(errs))
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %s ok (%d engines)\n", flag.Arg(0), len(required))
}

// check validates the snapshot bytes against the required engine set and
// returns every problem found (not just the first: a wedged engine and a
// missing one should both show up in the same CI run).
func check(data []byte, requiredEngines []string) []error {
	var results []harness.Result
	if err := json.Unmarshal(data, &results); err != nil {
		return []error{fmt.Errorf("malformed snapshot: %w", err)}
	}
	if len(results) == 0 {
		return []error{fmt.Errorf("snapshot holds no records")}
	}
	var errs []error
	workloadsByEngine := map[string]map[string]bool{}
	for i, r := range results {
		if err := r.Validate(); err != nil {
			errs = append(errs, fmt.Errorf("record %d: %w", i, err))
			continue
		}
		wl := workloadsByEngine[r.Engine]
		if wl == nil {
			wl = map[string]bool{}
			workloadsByEngine[r.Engine] = wl
		}
		if wl[r.Workload] {
			errs = append(errs, fmt.Errorf("record %d: duplicate %s/%s", i, r.Workload, r.Engine))
		}
		wl[r.Workload] = true
	}
	for _, name := range requiredEngines {
		if len(workloadsByEngine[name]) == 0 {
			errs = append(errs, fmt.Errorf("engine %q missing from the snapshot", name))
		}
	}
	// Every engine must have run the same scenario set: a per-engine init
	// failure that silently skips workloads would otherwise pass.
	var ref string
	var refSet map[string]bool
	for _, name := range slices.Sorted(maps.Keys(workloadsByEngine)) {
		wl := workloadsByEngine[name]
		if refSet == nil {
			ref, refSet = name, wl
			continue
		}
		if !maps.Equal(wl, refSet) {
			errs = append(errs, fmt.Errorf("engine %q ran workloads %v, but %q ran %v",
				name, slices.Sorted(maps.Keys(wl)), ref, slices.Sorted(maps.Keys(refSet))))
		}
	}
	return errs
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}
