package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
)

// Queue is a transactional bounded FIFO ring buffer: producers and
// consumers contend on the head/tail cursors while the slots themselves are
// mostly disjoint — a classic mixed-contention STM workload (two hot
// objects, many cold ones).
type Queue struct {
	// Capacity is the ring size (default 64).
	Capacity int
	// Seed seeds the per-worker RNGs.
	Seed int64

	head  engine.Cell // index of the next element to pop
	tail  engine.Cell // index of the next free slot
	slots []engine.Cell
}

// Name implements harness.Workload.
func (q *Queue) Name() string { return fmt.Sprintf("queue/%d", q.capacity()) }

func (q *Queue) capacity() int {
	if q.Capacity == 0 {
		return 64
	}
	return q.Capacity
}

// Init implements harness.Workload.
func (q *Queue) Init(eng engine.Engine, workers int) error {
	if q.capacity() < 1 {
		return fmt.Errorf("workload: Queue.Capacity must be ≥ 1, got %d", q.Capacity)
	}
	q.head = eng.NewCell(0)
	q.tail = eng.NewCell(0)
	q.slots = make([]engine.Cell, q.capacity())
	for i := range q.slots {
		q.slots[i] = eng.NewCell(0)
	}
	return nil
}

// pushIn is Push's transactional body.
func (q *Queue) pushIn(tx engine.Txn, v int) (bool, error) {
	hv, err := engine.Get[int](tx, q.head)
	if err != nil {
		return false, err
	}
	tv, err := engine.Get[int](tx, q.tail)
	if err != nil {
		return false, err
	}
	if tv-hv >= q.capacity() {
		return false, nil
	}
	if err := engine.Set(tx, q.slots[tv%q.capacity()], v); err != nil {
		return false, err
	}
	if err := engine.Set(tx, q.tail, tv+1); err != nil {
		return false, err
	}
	return true, nil
}

// Push appends v; it reports false if the queue was full.
func (q *Queue) Push(th engine.Thread, v int) (bool, error) {
	var ok bool
	err := th.Run(func(tx engine.Txn) error {
		var err error
		ok, err = q.pushIn(tx, v)
		return err
	})
	return ok, err
}

// popIn is Pop's transactional body.
func (q *Queue) popIn(tx engine.Txn) (int, bool, error) {
	hv, err := engine.Get[int](tx, q.head)
	if err != nil {
		return 0, false, err
	}
	tv, err := engine.Get[int](tx, q.tail)
	if err != nil {
		return 0, false, err
	}
	if hv == tv {
		return 0, false, nil
	}
	sv, err := engine.Get[int](tx, q.slots[hv%q.capacity()])
	if err != nil {
		return 0, false, err
	}
	if err := engine.Set(tx, q.head, hv+1); err != nil {
		return 0, false, err
	}
	return sv, true, nil
}

// Pop removes the oldest element; it reports false if the queue was empty.
func (q *Queue) Pop(th engine.Thread) (int, bool, error) {
	var out int
	var ok bool
	err := th.Run(func(tx engine.Txn) error {
		var err error
		out, ok, err = q.popIn(tx)
		return err
	})
	return out, ok, err
}

// Len returns the current number of queued elements.
func (q *Queue) Len(th engine.Thread) (int, error) {
	var n int
	err := th.RunReadOnly(func(tx engine.Txn) error {
		hv, err := engine.Get[int](tx, q.head)
		if err != nil {
			return err
		}
		tv, err := engine.Get[int](tx, q.tail)
		if err != nil {
			return err
		}
		n = tv - hv
		return nil
	})
	return n, err
}

// Step implements harness.Workload: even workers produce, odd workers
// consume. The transaction closures are built once per worker.
func (q *Queue) Step(eng engine.Engine, th engine.Thread, id int) func() error {
	rng := rand.New(rand.NewSource(q.Seed + int64(id)*131 + 7))
	var v int
	push := func(tx engine.Txn) error {
		_, err := q.pushIn(tx, v)
		return err
	}
	pop := func(tx engine.Txn) error {
		_, _, err := q.popIn(tx)
		return err
	}
	return func() error {
		if id%2 == 0 {
			v = rng.Int()
			return th.Run(push)
		}
		return th.Run(pop)
	}
}

// ReadMostly is an array of cells scanned by everyone and occasionally
// updated: the workload where invisible reads and cheap per-access
// consistency pay off most.
type ReadMostly struct {
	// Objects is the table size (default 128).
	Objects int
	// WriteRatio is the fraction of update transactions (default 0.05).
	WriteRatio float64
	// ScanLen is how many objects a reader scans (default 32).
	ScanLen int
	// Seed seeds the per-worker RNGs.
	Seed int64

	cells []engine.Cell
}

// Name implements harness.Workload.
func (r *ReadMostly) Name() string { return fmt.Sprintf("readmostly/%d", r.objects()) }

func (r *ReadMostly) objects() int {
	if r.Objects == 0 {
		return 128
	}
	return r.Objects
}

func (r *ReadMostly) writeRatio() float64 {
	if r.WriteRatio == 0 {
		return 0.05
	}
	return r.WriteRatio
}

func (r *ReadMostly) scanLen() int {
	if r.ScanLen == 0 {
		return 32
	}
	return r.ScanLen
}

// Init implements harness.Workload.
func (r *ReadMostly) Init(eng engine.Engine, workers int) error {
	if r.scanLen() > r.objects() {
		return fmt.Errorf("workload: scan %d exceeds table %d", r.scanLen(), r.objects())
	}
	r.cells = make([]engine.Cell, r.objects())
	for i := range r.cells {
		r.cells[i] = eng.NewCell(0)
	}
	return nil
}

// Step implements harness.Workload. The transaction closures are built once
// per worker; the counter updates ride the unboxed int lane.
func (r *ReadMostly) Step(eng engine.Engine, th engine.Thread, id int) func() error {
	rng := rand.New(rand.NewSource(r.Seed + int64(id)*977 + 13))
	var c engine.Cell
	var start int
	update := func(tx engine.Txn) error {
		return engine.Update(tx, c, func(v int) int { return v + 1 })
	}
	scan := func(tx engine.Txn) error {
		for i := 0; i < r.scanLen(); i++ {
			if _, err := engine.Get[int](tx, r.cells[(start+i)%len(r.cells)]); err != nil {
				return err
			}
		}
		return nil
	}
	return func() error {
		if rng.Float64() < r.writeRatio() {
			c = r.cells[rng.Intn(len(r.cells))]
			return th.Run(update)
		}
		start = rng.Intn(len(r.cells))
		return th.RunReadOnly(scan)
	}
}
