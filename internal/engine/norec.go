package engine

import (
	"fmt"

	"repro/internal/norec"
	"repro/internal/val"
)

// The "norec" backend: value-based validation over a single global sequence
// lock — no per-object metadata at all. Its time base is the sequence lock
// itself: commits serialize on one cache line like a shared-counter STM,
// but reads touch no shared state until the lock moves, so read-dominated
// workloads stay cheap at low thread counts. The minimal-metadata
// counterpoint to every timestamp-ordered engine in the registry.
//
// The "norec/striped" backend partitions that one sequence lock by cell:
// 64 padded stripe locks, per-stripe snapshots re-established together, and
// commits that lock (in ascending order) and validate only the stripes they
// touched — the ROADMAP probe for where value-based validation stops being
// the bottleneck once commits no longer serialize on one cache line.
//
// The "norec/combined" backend keeps the single sequence lock but amortizes
// it with flat-combining commits: committers publish validated logs into
// padded per-thread slots, one thread wins the lock and applies the whole
// pending batch under a single hold and a single clock bump — the batching
// pole of the scalable-time-base design space.
//
// The "norec/adaptive" backend is the hybrid pole: it runs the striped
// protocol while transactions stay narrow, and escalates an attempt that
// fans out past Options.EscalateStripes stripes (or keeps aborting striped)
// to a global write-window protocol whose reads validate with one shared
// load.
func init() {
	norecInfo := func(summary string, tunables ...string) Info {
		return Info{
			Summary: summary,
			Capabilities: Capabilities{
				IntLane:        true,
				AttemptCounter: true,
				Tunables:       tunables,
			},
		}
	}
	Register("norec", norecInfo("value-validating NOrec over one global sequence lock"),
		func(o Options) (Engine, error) {
			return &norecEngine{stm: norec.New()}, nil
		})
	Register("norec/striped", norecInfo("NOrec over 64 partitioned per-cell sequence locks"),
		func(o Options) (Engine, error) {
			return &norecStripedEngine{stm: norec.NewStriped()}, nil
		})
	Register("norec/combined", norecInfo("NOrec with flat-combining batched commits"),
		func(o Options) (Engine, error) {
			return &norecCombinedEngine{stm: norec.NewCombined()}, nil
		})
	Register("norec/adaptive",
		norecInfo("striped NOrec escalating wide or aborting attempts to a global write window",
			"stripes", "escalate-stripes", "escalate-aborts"),
		func(o Options) (Engine, error) {
			stm, err := norec.NewAdaptive(norec.AdaptiveOptions{
				Stripes:         o.Stripes,
				EscalateStripes: o.EscalateStripes,
				EscalateAborts:  o.EscalateAborts,
			})
			if err != nil {
				return nil, err
			}
			return &norecAdaptiveEngine{stm: stm}, nil
		})
}

type norecEngine struct {
	stm *norec.STM
	counterSet
}

func (e *norecEngine) Name() string { return "norec" }

func (e *norecEngine) NewCell(initial any) Cell { return norec.NewObject(initial) }

// Thread builds the worker context (see adapterThread) with its retry
// closure and bound method values allocated once: per-transaction Run calls
// only swap the fn pointer, so the adapter layer adds zero allocations to
// the native engine's steady state.
func (e *norecEngine) Thread(id int) Thread {
	th := e.stm.Thread(id)
	t := &adapterThread[*norec.Tx]{
		id: id, counters: e.newCounters(),
		run: th.Run, runRO: th.RunReadOnly, boxed: th.BoxedCommits,
		reasons: th.AbortCounts,
	}
	t.step = func(tx *norec.Tx) error {
		t.attempts++
		return t.fn(norecTxn{tx})
	}
	return t
}

type norecTxn struct {
	tx *norec.Tx
}

func (t norecTxn) Read(c Cell) (any, error)  { return t.tx.Read(norecCell(c)) }
func (t norecTxn) Write(c Cell, v any) error { return t.tx.Write(norecCell(c), v) }

func (t norecTxn) ReadInt(c Cell) (int64, bool, error) {
	v, err := t.tx.ReadValue(norecCell(c))
	if err != nil {
		return 0, false, err
	}
	n, ok := v.AsInt64()
	return n, ok, nil
}

func (t norecTxn) WriteInt(c Cell, v int64) error {
	return t.tx.WriteValue(norecCell(c), val.OfInt(int(v)))
}

func (t norecTxn) UpdateInt(c Cell, f func(int64) int64) (bool, error) {
	return updateIntVia(t, c, f)
}

// The striped variant's adapter — same shape over norec.SThread/STx.

type norecStripedEngine struct {
	stm *norec.StripedSTM
	counterSet
}

func (e *norecStripedEngine) Name() string { return "norec/striped" }

func (e *norecStripedEngine) NewCell(initial any) Cell { return norec.NewObject(initial) }

func (e *norecStripedEngine) Thread(id int) Thread {
	th := e.stm.Thread(id)
	t := &adapterThread[*norec.STx]{
		id: id, counters: e.newCounters(),
		run: th.Run, runRO: th.RunReadOnly, boxed: th.BoxedCommits,
		reasons: th.AbortCounts,
	}
	t.step = func(tx *norec.STx) error {
		t.attempts++
		return t.fn(norecSTxn{tx})
	}
	return t
}

type norecSTxn struct {
	tx *norec.STx
}

func (t norecSTxn) Read(c Cell) (any, error)  { return t.tx.Read(norecCell(c)) }
func (t norecSTxn) Write(c Cell, v any) error { return t.tx.Write(norecCell(c), v) }

func (t norecSTxn) ReadInt(c Cell) (int64, bool, error) {
	v, err := t.tx.ReadValue(norecCell(c))
	if err != nil {
		return 0, false, err
	}
	n, ok := v.AsInt64()
	return n, ok, nil
}

func (t norecSTxn) WriteInt(c Cell, v int64) error {
	return t.tx.WriteValue(norecCell(c), val.OfInt(int(v)))
}

func (t norecSTxn) UpdateInt(c Cell, f func(int64) int64) (bool, error) {
	return updateIntVia(t, c, f)
}

// The combined variant's adapter — same shape over norec.CThread/CTx, plus
// batch telemetry lifted from the universe into Stats.

type norecCombinedEngine struct {
	stm *norec.CombinedSTM
	counterSet
}

func (e *norecCombinedEngine) Name() string { return "norec/combined" }

func (e *norecCombinedEngine) NewCell(initial any) Cell { return norec.NewObject(initial) }

func (e *norecCombinedEngine) Thread(id int) Thread {
	th := e.stm.Thread(id)
	t := &adapterThread[*norec.CTx]{
		id: id, counters: e.newCounters(),
		run: th.Run, runRO: th.RunReadOnly, boxed: th.BoxedCommits,
		reasons: th.AbortCounts,
	}
	t.step = func(tx *norec.CTx) error {
		t.attempts++
		return t.fn(norecCTxn{tx})
	}
	return t
}

// Stats adds the combining telemetry to the thread counters.
func (e *norecCombinedEngine) Stats() Stats {
	s := e.counterSet.Stats()
	s.CommitBatches, s.BatchedCommits = e.stm.BatchStats()
	return s
}

type norecCTxn struct {
	tx *norec.CTx
}

func (t norecCTxn) Read(c Cell) (any, error)  { return t.tx.Read(norecCell(c)) }
func (t norecCTxn) Write(c Cell, v any) error { return t.tx.Write(norecCell(c), v) }

func (t norecCTxn) ReadInt(c Cell) (int64, bool, error) {
	v, err := t.tx.ReadValue(norecCell(c))
	if err != nil {
		return 0, false, err
	}
	n, ok := v.AsInt64()
	return n, ok, nil
}

func (t norecCTxn) WriteInt(c Cell, v int64) error {
	return t.tx.WriteValue(norecCell(c), val.OfInt(int(v)))
}

func (t norecCTxn) UpdateInt(c Cell, f func(int64) int64) (bool, error) {
	return updateIntVia(t, c, f)
}

// The adaptive variant's adapter — same shape over norec.AThread/ATx, plus
// escalation telemetry lifted from the universe into Stats.

type norecAdaptiveEngine struct {
	stm *norec.AdaptiveSTM
	counterSet
}

func (e *norecAdaptiveEngine) Name() string { return "norec/adaptive" }

func (e *norecAdaptiveEngine) NewCell(initial any) Cell { return norec.NewObject(initial) }

func (e *norecAdaptiveEngine) Thread(id int) Thread {
	th := e.stm.Thread(id)
	t := &adapterThread[*norec.ATx]{
		id: id, counters: e.newCounters(),
		run: th.Run, runRO: th.RunReadOnly, boxed: th.BoxedCommits,
		reasons: th.AbortCounts,
	}
	t.step = func(tx *norec.ATx) error {
		t.attempts++
		return t.fn(norecATxn{tx})
	}
	return t
}

// Stats adds the escalation telemetry to the thread counters.
func (e *norecAdaptiveEngine) Stats() Stats {
	s := e.counterSet.Stats()
	s.EscalatedCommits = e.stm.EscalatedCommits()
	return s
}

type norecATxn struct {
	tx *norec.ATx
}

func (t norecATxn) Read(c Cell) (any, error)  { return t.tx.Read(norecCell(c)) }
func (t norecATxn) Write(c Cell, v any) error { return t.tx.Write(norecCell(c), v) }

func (t norecATxn) ReadInt(c Cell) (int64, bool, error) {
	v, err := t.tx.ReadValue(norecCell(c))
	if err != nil {
		return 0, false, err
	}
	n, ok := v.AsInt64()
	return n, ok, nil
}

func (t norecATxn) WriteInt(c Cell, v int64) error {
	return t.tx.WriteValue(norecCell(c), val.OfInt(int(v)))
}

func (t norecATxn) UpdateInt(c Cell, f func(int64) int64) (bool, error) {
	return updateIntVia(t, c, f)
}

func norecCell(c Cell) *norec.Object {
	o, ok := c.(*norec.Object)
	if !ok {
		panic(fmt.Sprintf("engine: cell of type %T used with the norec backend", c))
	}
	return o
}
