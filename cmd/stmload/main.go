// Command stmload drives zipfian transactional load against an stmserve
// server — or an in-process service — from many concurrent connections,
// and reports throughput plus per-op p50/p99/p999 client-side latency. It
// is the measurement half of the connection-mapping experiment: run the
// same load against -conn-mode thread and -conn-mode pool and compare the
// latency tables.
//
//	stmload -addr localhost:7070 -conns 1000 -duration 10s
//	stmload -addr localhost:7070 -mix transfer=80,snapshot=20 -zipf-s 1.5
//	stmload -engine norec -conn-mode pool -conns 256      in-process (no server, no sockets)
//	stmload -addr localhost:7070 -recovery-audit -expect-recovered
//	stmload -addr localhost:7070 -failover-audit -failover-addr localhost:7170
//
// -recovery-audit switches stmload from throughput measurement to the
// crash-recovery proof: it records the last acknowledged transfer on every
// connection before the server dies (kill -9 it mid-run), waits for the
// restart over the same WAL, and exits non-zero unless the server reflects
// every acked commit and conserves the bank sum (-duration bounds how long
// it waits for the crash).
//
// -failover-audit is the replication sibling: load the primary at -addr
// (started with -repl-ack quorum) until it dies, promote the hot standby at
// -failover-addr with the PROMOTE op, and exit non-zero unless the promoted
// standby reflects every acked transfer, conserves the bank sum, and reports
// a nonzero replication watermark.
//
// After the run, stmload fetches the server's STATS and prints the engine's
// abort-reason mix next to the client-side latency, so one invocation shows
// both sides of the story. Exits non-zero if the run completed zero
// successful operations — the CI server-smoke job's assertion.
//
// Runtime diagnostics match the other cmds: -cpuprofile/-memprofile/-trace
// write the standard Go profiles, -http serves expvar and pprof.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/diag"
	"repro/internal/engine"
	"repro/internal/stmserve"

	// Register the durable/* wrappers for in-process mode.
	_ "repro/internal/durable"
)

func main() {
	var (
		addr        = flag.String("addr", "", "stmserve line-protocol address (empty = in-process against -engine)")
		conns       = flag.Int("conns", 64, "concurrent connections")
		duration    = flag.Duration("duration", 5*time.Second, "measured run length")
		keys        = flag.Int("keys", 0, "keyspace size (0 = ask the server; sizes the in-process service)")
		batchKeys   = flag.Int("batch-keys", 8, "keys per snapshot/batch request")
		zipfS       = flag.Float64("zipf-s", 1.2, "zipf exponent (> 1; larger = more skew)")
		zipfV       = flag.Float64("zipf-v", 1, "zipf offset (≥ 1)")
		mixSpec     = flag.String("mix", "", "operation mix, e.g. transfer=40,read=20,snapshot=10,cas=10,set=5 (default: built-in bank blend)")
		seed        = flag.Int64("seed", 1, "base RNG seed (per-connection seeds derive from it)")
		jsonOut     = flag.Bool("json", false, "emit the report as JSON instead of a table")
		audit       = flag.Bool("recovery-audit", false, "crash-recovery audit: load acked transfers until the server dies, reconnect, verify nothing acked was lost (requires -addr)")
		failover    = flag.Bool("failover-audit", false, "failover audit: load the replicated primary at -addr until it dies, promote the standby at -failover-addr, verify nothing acked was lost")
		failAddr    = flag.String("failover-addr", "", "failover audit: the hot standby's line-protocol address")
		reconnectTO = flag.Duration("reconnect-timeout", 30*time.Second, "recovery audit: how long to wait for the restarted server")
		expectRec   = flag.Bool("expect-recovered", false, "recovery audit: also require the restarted server to report ≥ 1 recovered WAL commit")
		skipSum     = flag.Bool("skip-sum", false, "recovery audit: skip the conserved-sum check (other clients ran non-transfer traffic)")
		engName     = flag.String("engine", "norec", "in-process engine backend when -addr is empty")
		connMode    = flag.String("conn-mode", stmserve.ModeThread, "in-process connection mapping: thread|pool")
		poolWorkers = flag.Int("pool-workers", runtime.GOMAXPROCS(0), "in-process engine threads in pool mode")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		tracePath   = flag.String("trace", "", "write an execution trace to this file")
		httpAddr    = flag.String("http", "", "serve expvar and pprof on this address (e.g. localhost:6060)")
	)
	var opt engine.Options
	opt.BindFlags(flag.CommandLine)
	flag.Parse()

	stopDiag, err := diag.Start(diag.Flags{
		CPUProfile: *cpuProfile, MemProfile: *memProfile, Trace: *tracePath, HTTP: *httpAddr,
	})
	if err != nil {
		fatal(err)
	}

	mix := stmserve.DefaultMix
	if *mixSpec != "" {
		if mix, err = stmserve.ParseMix(*mixSpec); err != nil {
			fatal(err)
		}
	}
	opts := stmserve.LoadOptions{
		Conns: *conns, Duration: *duration, Keys: *keys, BatchKeys: *batchKeys,
		ZipfS: *zipfS, ZipfV: *zipfV, Mix: mix, Seed: *seed,
	}

	var dial stmserve.Dialer
	var svc *stmserve.Service // set in in-process mode
	if *addr != "" {
		dial = stmserve.NetDialer(*addr)
	} else {
		if opt.Nodes == 0 {
			opt.Nodes = *poolWorkers
		}
		eng, err := engine.New(*engName, opt)
		if err != nil {
			fatal(err)
		}
		kv := *keys
		if kv == 0 {
			kv = 1024
		}
		svc, err = stmserve.New(eng, stmserve.Config{
			Keys: kv, Mode: *connMode, PoolWorkers: *poolWorkers,
		})
		if err != nil {
			fatal(err)
		}
		defer svc.Close()
		dial = stmserve.ServiceDialer(svc)
		fmt.Printf("stmload: in-process engine=%s keys=%d mode=%s\n", eng.Name(), kv, svc.Mode())
	}

	if *failover {
		if *addr == "" || *failAddr == "" {
			fatal(fmt.Errorf("-failover-audit requires -addr (the primary) and -failover-addr (the standby)"))
		}
		rep, aerr := stmserve.RunFailoverAudit(dial, stmserve.NetDialer(*failAddr), stmserve.FailoverAuditOptions{
			Conns: *conns, Window: *duration, PromoteTimeout: *reconnectTO,
			Keys: *keys, SkipSum: *skipSum,
		})
		if *jsonOut {
			if data, jerr := json.MarshalIndent(rep, "", "  "); jerr == nil {
				fmt.Println(string(data))
			}
		} else {
			fmt.Printf("stmload: failover audit: %d conns acked %d transfers to %d follower(s), primary down after %v, standby promoted after %v, sum %d/%d, watermark seq %d\n",
				rep.Conns, rep.Acked, rep.Followers, rep.DownAfter.Round(time.Millisecond), rep.PromoteAfter.Round(time.Millisecond),
				rep.Sum, rep.WantSum, rep.AppliedSeq)
		}
		if aerr != nil {
			fatal(aerr)
		}
		fmt.Println("stmload: failover audit passed: every acked commit survived the failover")
		if err := stopDiag(); err != nil {
			fatal(err)
		}
		return
	}

	if *audit {
		if *addr == "" {
			fatal(fmt.Errorf("-recovery-audit requires -addr: the audit observes a real server crash and restart"))
		}
		rep, aerr := stmserve.RunRecoveryAudit(dial, stmserve.AuditOptions{
			Conns: *conns, Window: *duration, ReconnectTimeout: *reconnectTO,
			Keys: *keys, ExpectRecovered: *expectRec, SkipSum: *skipSum,
		})
		if *jsonOut {
			if data, jerr := json.MarshalIndent(rep, "", "  "); jerr == nil {
				fmt.Println(string(data))
			}
		} else {
			fmt.Printf("stmload: recovery audit: %d conns acked %d transfers, down after %v, back after %v, sum %d/%d, recovered %d commits (seq %d)\n",
				rep.Conns, rep.Acked, rep.DownAfter.Round(time.Millisecond), rep.ReconnectAfter.Round(time.Millisecond),
				rep.Sum, rep.WantSum, rep.RecoveredCommits, rep.RecoveredSeq)
		}
		if aerr != nil {
			fatal(aerr)
		}
		fmt.Println("stmload: recovery audit passed: every acked commit survived the crash")
		if err := stopDiag(); err != nil {
			fatal(err)
		}
		return
	}

	rep, err := stmserve.RunLoad(dial, opts)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
	} else {
		fmt.Printf("stmload: %d conns, %v: %d ops (%.0f ops/s), %d errs, %d dial errs\n",
			rep.Conns, rep.Duration, rep.Ops, rep.Throughput, rep.Errs, rep.DialErrs)
		fmt.Print(rep.Table())
	}
	printServerStats(*addr, svc)

	if err := stopDiag(); err != nil {
		fatal(err)
	}
	if rep.Ops == 0 {
		fatal(fmt.Errorf("zero successful operations"))
	}
}

// printServerStats shows the service-side view — most importantly the
// engine's abort-reason mix, which the client-side report cannot see.
func printServerStats(addr string, svc *stmserve.Service) {
	var st stmserve.Stats
	switch {
	case svc != nil:
		st = svc.Stats()
	case addr != "":
		c, err := stmserve.Dial(addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stmload: stats:", err)
			return
		}
		defer c.Close()
		var resp stmserve.Response
		if err := c.Do(&stmserve.Request{Op: stmserve.OpStats}, &resp); err != nil || resp.Err != "" {
			fmt.Fprintf(os.Stderr, "stmload: stats: %v %s\n", err, resp.Err)
			return
		}
		if err := json.Unmarshal([]byte(resp.Text), &st); err != nil {
			fmt.Fprintln(os.Stderr, "stmload: stats:", err)
			return
		}
	default:
		return
	}
	es := st.EngineStats
	fmt.Printf("server: engine=%s mode=%s commits=%d aborts=%d (rate=%.4f) mix=%s\n",
		st.Engine, st.Mode, es.Commits, es.Aborts, es.AbortRate(), es.AbortMix())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stmload:", err)
	os.Exit(1)
}
