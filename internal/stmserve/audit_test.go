package stmserve

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"

	_ "repro/internal/durable"
)

// TestRecoveryAuditInProcess runs the full audit protocol against an
// in-process durable service: load, "crash" (close the service and discard
// it), restart over the same WAL dir, verify. The real-process variant —
// kill -9 of cmd/stmserve — lives in cmd/stmserve's tests and the CI
// crash-recovery job; this one proves the protocol logic race-clean.
func TestRecoveryAuditInProcess(t *testing.T) {
	dir := t.TempDir()
	newSvc := func() *Service {
		t.Helper()
		eng, err := engine.New("durable/norec", engine.Options{WALDir: dir, Fsync: "always"})
		if err != nil {
			t.Fatal(err)
		}
		svc, err := New(eng, Config{Keys: 64})
		if err != nil {
			t.Fatal(err)
		}
		return svc
	}

	var cur atomic.Pointer[Service] // nil while the "server" is down
	cur.Store(newSvc())
	dial := func() (Caller, error) {
		p := cur.Load()
		if p == nil {
			return nil, errors.New("server down")
		}
		return &sessionCaller{sess: p.Session()}, nil
	}

	// Crash after a moment of load, stay down briefly, then restart over the
	// same WAL. Closing the service flushes the WAL, but the audit does not
	// rely on that: fsync=always makes every acked transfer durable anyway.
	go func() {
		time.Sleep(100 * time.Millisecond)
		old := cur.Swap(nil)
		old.Close()
		time.Sleep(100 * time.Millisecond)
		cur.Store(newSvc())
	}()

	rep, err := RunRecoveryAudit(dial, AuditOptions{
		Conns:            4,
		Window:           30 * time.Second,
		ReconnectTimeout: 30 * time.Second,
		ExpectRecovered:  true,
	})
	if err != nil {
		t.Fatalf("audit failed: %v (report %+v)", err, rep)
	}
	if rep.Acked == 0 {
		t.Fatal("audit acked zero transfers before the crash")
	}
	if rep.RecoveredCommits == 0 {
		t.Fatal("restarted server reported zero recovered commits")
	}
	if rep.Sum != rep.WantSum {
		t.Fatalf("sum %d != want %d", rep.Sum, rep.WantSum)
	}
	cur.Load().Close()
}

// TestRecoveryAuditServerNeverDies pins the failure mode where the kill
// never happens: the audit must fail loudly instead of reporting success.
func TestRecoveryAuditServerNeverDies(t *testing.T) {
	svc := newTestService(t, Config{Keys: 64})
	dial := ServiceDialer(svc)
	_, err := RunRecoveryAudit(dial, AuditOptions{
		Conns:  2,
		Window: 100 * time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "still up") {
		t.Fatalf("want 'still up' failure, got %v", err)
	}
}

// TestRecoveryAuditConnsVsKeys pins the marker/sink keyspace precondition.
func TestRecoveryAuditConnsVsKeys(t *testing.T) {
	svc := newTestService(t, Config{Keys: 8})
	defer svc.Close()
	_, err := RunRecoveryAudit(ServiceDialer(svc), AuditOptions{Conns: 5, Window: time.Second})
	if err == nil || !strings.Contains(err.Error(), "marker+sink") {
		t.Fatalf("want conns-vs-keys failure, got %v", err)
	}
}
