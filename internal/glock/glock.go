// Package glock is the coarse-global-lock reference engine: every update
// transaction runs under one global mutex, read-only transactions share a
// read lock. It is deliberately the simplest possible implementation of the
// transactional interface — no versions, no validation, no aborts — and
// therefore trivially opaque: transactions are literally serialized (update
// against everything; read-only only against updates).
//
// Its role in the comparison matrix is honesty: at one or two threads a
// well-implemented global lock beats every STM, and any speedup an STM
// claims must be measured against this baseline, not against itself at one
// thread. Where the STMs pay per-access bookkeeping, glock pays one lock
// acquisition per transaction — so its throughput curve is flat-to-falling
// in the thread count, crossing below the scalable engines exactly where
// transactional concurrency starts to pay.
//
// Values are typed (val.Value): the global lock already serializes all cell
// access, so cells are plain Value slots and an int-valued transaction
// allocates nothing at all — the honesty baseline stays honest about GC
// pressure too.
package glock

import (
	"errors"
	"sync"

	"repro/internal/val"
)

// ErrReadOnly is returned by Write inside a read-only transaction. glock
// transactions never abort — it is the only error the package produces.
var ErrReadOnly = errors.New("glock: write inside read-only transaction")

// STM is a coarse-lock universe: one reader/writer mutex serializing all
// transactions against it.
type STM struct {
	mu sync.RWMutex
}

// New creates a universe.
func New() *STM { return &STM{} }

// Object is a transactional cell: a bare typed value slot, protected
// entirely by the universe's global lock.
type Object struct {
	v val.Value
}

// NewObject creates an object holding initial. An object is private until a
// committed write publishes a reference to it, so creation needs no lock.
func NewObject(initial any) *Object { return &Object{v: val.OfAny(initial)} }

type writeEntry struct {
	obj *Object
	v   val.Value
}

// Tx is one glock transaction. Writes are buffered and applied only when
// the closure succeeds, so a user error leaves memory untouched (the
// all-or-nothing half of atomicity; isolation comes from the lock). The
// owning Thread recycles one Tx across transactions, so the steady state
// allocates nothing.
type Tx struct {
	readOnly bool
	boxed    bool
	writes   []writeEntry
}

func (tx *Tx) reset(readOnly bool) {
	tx.readOnly = readOnly
	tx.boxed = false
	tx.writes = tx.writes[:0]
}

// Read returns the object's current value as `any` (the write buffer
// shadows committed state within the transaction).
func (tx *Tx) Read(o *Object) (any, error) {
	v, err := tx.ReadValue(o)
	if err != nil {
		return nil, err
	}
	return v.Load(), nil
}

// ReadValue returns the object's current typed value.
func (tx *Tx) ReadValue(o *Object) (val.Value, error) {
	for i := len(tx.writes) - 1; i >= 0; i-- {
		if tx.writes[i].obj == o {
			return tx.writes[i].v, nil
		}
	}
	return o.v, nil
}

// Write buffers the new value; it is applied if the transaction closure
// returns nil.
func (tx *Tx) Write(o *Object, v any) error {
	return tx.WriteValue(o, val.OfAny(v))
}

// WriteValue buffers the new typed value; numeric-lane values never box.
func (tx *Tx) WriteValue(o *Object, v val.Value) error {
	if tx.readOnly {
		return ErrReadOnly
	}
	if v.Kind() == val.KindBoxed {
		tx.boxed = true
	}
	for i := len(tx.writes) - 1; i >= 0; i-- {
		if tx.writes[i].obj == o {
			tx.writes[i].v = v
			return nil
		}
	}
	tx.writes = append(tx.writes, writeEntry{obj: o, v: v})
	return nil
}

// Thread is a worker context (API-compatible shape with the core engine's
// Thread so workloads translate directly). It owns the one Tx it recycles —
// a Thread must be used by a single goroutine.
type Thread struct {
	stm          *STM
	tx           Tx
	boxedCommits uint64
}

// Thread creates a worker context.
func (s *STM) Thread(id int) *Thread { return &Thread{stm: s} }

// BoxedCommits returns how many of this thread's commits wrote at least one
// escape-hatch (boxed) payload.
func (t *Thread) BoxedCommits() uint64 { return t.boxedCommits }

// Run executes fn under the global write lock. There are no retries: the
// first execution is the only one, and it cannot abort.
func (t *Thread) Run(fn func(*Tx) error) error {
	t.stm.mu.Lock()
	defer t.stm.mu.Unlock()
	tx := &t.tx
	tx.reset(false)
	if err := fn(tx); err != nil {
		return err
	}
	for i := range tx.writes {
		tx.writes[i].obj.v = tx.writes[i].v
	}
	if tx.boxed {
		t.boxedCommits++
	}
	return nil
}

// RunReadOnly executes fn under the shared read lock; concurrent read-only
// transactions proceed in parallel, writers are excluded.
func (t *Thread) RunReadOnly(fn func(*Tx) error) error {
	t.stm.mu.RLock()
	defer t.stm.mu.RUnlock()
	tx := &t.tx
	tx.reset(true)
	return fn(tx)
}
