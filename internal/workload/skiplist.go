package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/engine"
)

// skipMaxLevel is the tower height ceiling. 2^12 expected elements per
// bench run is far below the geometric distribution's reach at 12 levels.
const skipMaxLevel = 12

// skipNode is one element of the transactional skiplist. Like the linked
// list's nodes, the value stored in a cell is immutable: splicing a level
// replaces the whole node value. next[l] is nil above the node's height and
// in the tail sentinel.
type skipNode struct {
	key  int
	next [skipMaxLevel]engine.Cell
}

// skipHeight derives a node's tower height from its key, deterministically:
// a re-inserted key always rebuilds the same tower, so the structure of the
// index levels is a pure function of the current key set, independent of
// insertion order or RNG state. The hash's trailing zeros give the usual
// geometric distribution (p = 1/2).
func skipHeight(key int) int {
	h := uint64(key) * 0x9e3779b97f4a7c15
	h ^= h >> 29
	lvl := 1
	for lvl < skipMaxLevel && h&1 == 1 {
		lvl++
		h >>= 1
	}
	return lvl
}

// SkipList is an ordered integer set backed by a transactional skiplist —
// the deep-pointer-structure workload. Operations descend the tower from the
// top level, so every transaction reads a logarithmic chain of cells whose
// upper levels are shared by almost all operations: unlike the linked list
// (one long chain, conflicts anywhere) or the hash set (short transactions,
// conflicts almost nowhere), the skiplist concentrates read-sharing on a few
// hot index nodes while spreading writes across the bottom level.
type SkipList struct {
	// KeyRange is the key universe [0, KeyRange) (default 512).
	KeyRange int
	// UpdateRatio is the fraction of add/remove operations, split evenly
	// (default 0.2; the rest are contains).
	UpdateRatio float64
	// InitialFill is the fraction of the key range pre-inserted (default
	// 0.5).
	InitialFill float64
	// Seed seeds the per-worker RNGs.
	Seed int64

	eng  engine.Engine
	head engine.Cell
}

// Name implements harness.Workload.
func (s *SkipList) Name() string { return fmt.Sprintf("skiplist/%d", s.keyRange()) }

func (s *SkipList) keyRange() int {
	if s.KeyRange == 0 {
		return 512
	}
	return s.KeyRange
}

func (s *SkipList) updateRatio() float64 {
	if s.UpdateRatio == 0 {
		return 0.2
	}
	return s.UpdateRatio
}

func (s *SkipList) initialFill() float64 {
	if s.InitialFill == 0 {
		return 0.5
	}
	return s.InitialFill
}

// Init implements harness.Workload: build head/tail sentinels (the head
// tower spans every level) and pre-fill deterministically.
func (s *SkipList) Init(eng engine.Engine, workers int) error {
	if s.keyRange() < 1 {
		return fmt.Errorf("workload: SkipList.KeyRange must be ≥ 1, got %d", s.KeyRange)
	}
	s.eng = eng
	tail := eng.NewCell(skipNode{key: math.MaxInt})
	head := skipNode{key: math.MinInt}
	for l := 0; l < skipMaxLevel; l++ {
		head.next[l] = tail
	}
	s.head = eng.NewCell(head)
	th := eng.Thread(1 << 19)
	rng := rand.New(rand.NewSource(s.Seed + 7))
	for k := 0; k < s.keyRange(); k++ {
		if rng.Float64() >= s.initialFill() {
			continue
		}
		if _, err := s.Add(th, k); err != nil {
			return err
		}
	}
	return nil
}

// Step implements harness.Workload. The transaction closures are built once
// per worker and fed the key through a captured local.
func (s *SkipList) Step(eng engine.Engine, th engine.Thread, id int) func() error {
	rng := rand.New(rand.NewSource(s.Seed + int64(id)*15485863 + 11))
	var key int
	add := func(tx engine.Txn) error {
		_, err := s.addIn(tx, key)
		return err
	}
	remove := func(tx engine.Txn) error {
		_, err := s.removeIn(tx, key)
		return err
	}
	contains := func(tx engine.Txn) error {
		_, _, err := s.find(tx, key)
		return err
	}
	return func() error {
		key = rng.Intn(s.keyRange())
		p := rng.Float64()
		switch {
		case p < s.updateRatio()/2:
			return th.Run(add)
		case p < s.updateRatio():
			return th.Run(remove)
		default:
			return th.RunReadOnly(contains)
		}
	}
}

// find descends the tower inside tx: preds[l] is the cell of the rightmost
// node at level l whose key is < key, cur is the bottom-level node at or
// after key.
func (s *SkipList) find(tx engine.Txn, key int) (preds [skipMaxLevel]engine.Cell, cur skipNode, err error) {
	cell := s.head
	node, err := engine.Get[skipNode](tx, cell)
	if err != nil {
		return preds, skipNode{}, err
	}
	for l := skipMaxLevel - 1; l >= 0; l-- {
		for {
			nextCell := node.next[l]
			next, err := engine.Get[skipNode](tx, nextCell)
			if err != nil {
				return preds, skipNode{}, err
			}
			if next.key >= key {
				cur = next
				break
			}
			cell, node = nextCell, next
		}
		preds[l] = cell
	}
	return preds, cur, nil
}

// Contains reports whether key is in the set (read-only transaction).
func (s *SkipList) Contains(th engine.Thread, key int) (bool, error) {
	var found bool
	err := th.RunReadOnly(func(tx engine.Txn) error {
		_, cur, err := s.find(tx, key)
		if err != nil {
			return err
		}
		found = cur.key == key
		return nil
	})
	return found, err
}

// addIn is Add's transactional body.
func (s *SkipList) addIn(tx engine.Txn, key int) (bool, error) {
	preds, cur, err := s.find(tx, key)
	if err != nil {
		return false, err
	}
	if cur.key == key {
		return false, nil
	}
	height := skipHeight(key)
	node := skipNode{key: key}
	// Link the new tower level by level. Adjacent levels often share the
	// predecessor cell; re-reading the predecessor through tx each time
	// picks up this transaction's own earlier splice.
	for l := 0; l < height; l++ {
		pn, err := engine.Get[skipNode](tx, preds[l])
		if err != nil {
			return false, err
		}
		node.next[l] = pn.next[l]
	}
	cell := s.eng.NewCell(node)
	for l := 0; l < height; l++ {
		pn, err := engine.Get[skipNode](tx, preds[l])
		if err != nil {
			return false, err
		}
		pn.next[l] = cell
		if err := tx.Write(preds[l], pn); err != nil {
			return false, err
		}
	}
	return true, nil
}

// Add inserts key; it reports whether the set changed.
func (s *SkipList) Add(th engine.Thread, key int) (bool, error) {
	var added bool
	err := th.Run(func(tx engine.Txn) error {
		var err error
		added, err = s.addIn(tx, key)
		return err
	})
	return added, err
}

// removeIn is Remove's transactional body.
func (s *SkipList) removeIn(tx engine.Txn, key int) (bool, error) {
	preds, cur, err := s.find(tx, key)
	if err != nil {
		return false, err
	}
	if cur.key != key {
		return false, nil
	}
	// The victim's cell is the bottom-level successor of preds[0]; its
	// tower height is a function of the key, so exactly levels
	// [0, height) point at it.
	p0, err := engine.Get[skipNode](tx, preds[0])
	if err != nil {
		return false, err
	}
	victimCell := p0.next[0]
	for l := 0; l < skipHeight(key); l++ {
		pn, err := engine.Get[skipNode](tx, preds[l])
		if err != nil {
			return false, err
		}
		if pn.next[l] != victimCell {
			return false, fmt.Errorf("workload: skiplist tower for key %d broken at level %d", key, l)
		}
		pn.next[l] = cur.next[l]
		if err := tx.Write(preds[l], pn); err != nil {
			return false, err
		}
	}
	return true, nil
}

// Remove deletes key; it reports whether the set changed.
func (s *SkipList) Remove(th engine.Thread, key int) (bool, error) {
	var removed bool
	err := th.Run(func(tx engine.Txn) error {
		var err error
		removed, err = s.removeIn(tx, key)
		return err
	})
	return removed, err
}

// Snapshot returns the keys currently in the set, in order, via one
// read-only transaction over the bottom level.
func (s *SkipList) Snapshot(th engine.Thread) ([]int, error) {
	var keys []int
	err := th.RunReadOnly(func(tx engine.Txn) error {
		keys = keys[:0]
		node, err := engine.Get[skipNode](tx, s.head)
		if err != nil {
			return err
		}
		for node.next[0] != nil {
			node, err = engine.Get[skipNode](tx, node.next[0])
			if err != nil {
				return err
			}
			if node.next[0] != nil { // skip the tail sentinel
				keys = append(keys, node.key)
			}
		}
		return nil
	})
	return keys, err
}
