package timebase

import "testing"

// FuzzShardedCounterOrdering drives a ShardedCounter with an arbitrary
// sequential interleaving of GetNewTS/GetTime/Reconcile calls across several
// handles and checks the ordering contract the STM relies on: a GetNewTS
// value issued earlier is never guaranteed-later (⪰) than one issued
// afterwards — neither within a shard (exact comparison) nor across shards
// (masked comparison) — and values stay unique as (shard, epoch) pairs.
func FuzzShardedCounterOrdering(f *testing.F) {
	f.Add(uint8(2), uint8(4), []byte{0, 1, 2, 3, 0, 0, 1, 2})
	f.Add(uint8(4), uint8(16), []byte{3, 3, 3, 0, 7, 7, 7, 1, 11, 11, 2})
	f.Add(uint8(1), uint8(0), []byte{0, 4, 8, 0, 4, 8})
	f.Fuzz(func(t *testing.T, nshards, window uint8, ops []byte) {
		shards := int(nshards%8) + 1
		sc := NewShardedCounter(shards, int64(window))
		clocks := make([]Clock, 2*shards) // two handles per shard
		for i := range clocks {
			clocks[i] = sc.Clock(i)
		}
		type issued struct {
			ts Timestamp
			op int
		}
		var news []issued
		if len(ops) > 512 {
			ops = ops[:512]
		}
		for i, b := range ops {
			c := clocks[int(b>>2)%len(clocks)]
			switch b & 3 {
			case 0, 1:
				news = append(news, issued{c.GetNewTS(), i})
			case 2:
				ts := c.GetTime()
				if !ts.LaterEq(Zero) {
					t.Fatalf("op %d: GetTime %v not ⪰ Zero", i, ts)
				}
			case 3:
				c.(Reconciler).Reconcile()
			}
		}
		seen := make(map[Timestamp]int, len(news))
		for i, n := range news {
			if j, dup := seen[n.ts]; dup {
				t.Fatalf("ops %d and %d issued the same (shard, epoch) pair %v",
					news[j].op, n.op, n.ts)
			}
			seen[n.ts] = i
			// No earlier GetNewTS may be guaranteed-later than a later one:
			// that would let a commit time order before an older commit.
			for _, earlier := range news[:i] {
				if earlier.ts.LaterEq(n.ts) {
					t.Fatalf("op %d issued %v ⪰ later op %d's %v",
						earlier.op, earlier.ts, n.op, n.ts)
				}
			}
		}
	})
}

// FuzzComparatorInvariants drives the ⪰/≿/Max/Min operators with arbitrary
// timestamp pairs and checks the invariants that hold at the operator level
// regardless of hidden real times. Deviations are normalized per clock ID
// (a clock advertises one bound), matching how time bases issue timestamps.
func FuzzComparatorInvariants(f *testing.F) {
	f.Add(int64(5), int32(0), int64(7), int32(0))
	f.Add(int64(10), int32(1), int64(12), int32(2))
	f.Add(int64(100), int32(-1), int64(100), int32(-1))
	f.Add(int64(1), int32(3), int64(1<<40), int32(3))
	f.Fuzz(func(t *testing.T, ts1 int64, cid1 int32, ts2 int64, cid2 int32) {
		norm := func(ts int64, cid int32) Timestamp {
			if ts < 0 {
				ts = -ts
			}
			ts = ts%1_000_000 + 1
			switch {
			case cid == CIDExact:
				return Exact(ts)
			case cid < 0:
				return Timestamp{TS: ts, CID: CIDUndefined, Dev: 7}
			default:
				cid = cid%8 + 1
				return Timestamp{TS: ts, CID: cid, Dev: int64(3 * cid)}
			}
		}
		a, b := norm(ts1, cid1), norm(ts2, cid2)

		// ⪰ and ≿ are complementary in the required direction (§2.1):
		// b ⪰ a ⟹ ¬(a ≿ b), and a ≿ b ⟹ ¬(b ⪰ a).
		if b.LaterEq(a) && a.PossiblyLater(b) {
			t.Fatalf("%v ⪰ %v and %v ≿ %v simultaneously", b, a, a, b)
		}
		// At least one direction of "possibly later" always holds.
		if !a.PossiblyLater(b) && !b.PossiblyLater(a) && !a.LaterEq(b) && !b.LaterEq(a) {
			t.Fatalf("no relation at all between %v and %v", a, b)
		}
		// Max dominates in the pessimistic upper bound; Min in the lower.
		m, n := Max(a, b), Min(a, b)
		if m.Upper() < a.Upper() && m.Upper() < b.Upper() {
			t.Fatalf("Max(%v,%v) = %v has smaller upper bound than both", a, b, m)
		}
		if n.Lower() > a.Lower() && n.Lower() > b.Lower() {
			t.Fatalf("Min(%v,%v) = %v has larger lower bound than both", a, b, n)
		}
		// Max/Min never return sentinels unless an argument was one.
		if m.IsInf() || m.IsNegInf() || n.IsInf() || n.IsNegInf() {
			t.Fatalf("sentinel from Max/Min of %v, %v", a, b)
		}
		// Exact timestamps must degenerate to plain comparisons.
		if a.CID == CIDExact && b.CID == CIDExact {
			if a.LaterEq(b) != (a.TS >= b.TS) {
				t.Fatalf("exact ⪰ disagrees with ≥ for %v, %v", a, b)
			}
		}
	})
}
