package timebase

import (
	"sync"
	"testing"
)

// TestShardedNewTSUniquePairs: GetNewTS values are unique as (shard, epoch)
// pairs — per shard by the strictly increasing counter RMWs, across shards
// by the distinct clock IDs — even with several threads per shard racing.
func TestShardedNewTSUniquePairs(t *testing.T) {
	sc := NewShardedCounter(4, 32)
	const workers, per = 8, 2000 // 2 threads per shard
	out := make([][]Timestamp, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := sc.Clock(w)
			vals := make([]Timestamp, 0, per)
			for i := 0; i < per; i++ {
				vals = append(vals, c.GetNewTS())
			}
			out[w] = vals
		}(w)
	}
	wg.Wait()
	type pair struct {
		cid int32
		ts  int64
	}
	seen := make(map[pair]bool, workers*per)
	for w, vals := range out {
		for _, v := range vals {
			p := pair{v.CID, v.TS}
			if seen[p] {
				t.Fatalf("worker %d: duplicate (shard, epoch) pair %v", w, v)
			}
			seen[p] = true
			if v.Dev != sc.Window()/2 {
				t.Fatalf("timestamp %v carries Dev %d, want window/2 = %d", v, v.Dev, sc.Window()/2)
			}
		}
	}
}

// TestShardedMonotonicPerThread: within one handle, GetNewTS is strictly
// increasing and GetTime never goes backwards, including across Reconcile.
func TestShardedMonotonicPerThread(t *testing.T) {
	sc := NewShardedCounter(3, 16)
	c := sc.Clock(1).(*shardClock)
	last := c.GetTime()
	for i := 0; i < 1000; i++ {
		var cur Timestamp
		switch i % 4 {
		case 0:
			cur = c.GetNewTS()
			if cur.TS <= last.TS {
				t.Fatalf("iteration %d: GetNewTS %v not strictly greater than %v", i, cur, last)
			}
		case 3:
			c.Reconcile()
			cur = c.GetTime()
		default:
			cur = c.GetTime()
		}
		if cur.TS < last.TS {
			t.Fatalf("iteration %d: timestamp went backwards %v → %v", i, last, cur)
		}
		if cur.CID != last.CID {
			t.Fatalf("iteration %d: clock ID changed %v → %v", i, last, cur)
		}
		last = cur
	}
}

// TestShardedCrossShardOrderingAfterReconcile reproduces the lazy-sync
// round trip: shard 0 runs far ahead, shard 1's stale local view cannot be
// ordered against it, and one Reconcile makes shard 1's next timestamps
// guaranteed-later than everything shard 0 issued more than a window ago.
func TestShardedCrossShardOrderingAfterReconcile(t *testing.T) {
	sc := NewShardedCounter(2, 16)
	a, b := sc.Clock(0), sc.Clock(1)

	early := a.GetNewTS()
	var lastA Timestamp
	for i := int64(0); i < 3*sc.Window(); i++ {
		lastA = a.GetNewTS()
	}

	// Stale local view: b has issued nothing, so its time sits at the
	// initial value — possibly earlier than everything a issued.
	stale := b.GetTime()
	if stale.LaterEq(lastA) {
		t.Fatalf("stale view %v claims to be later than fresh %v", stale, lastA)
	}

	if !b.(Reconciler).Reconcile() {
		t.Fatal("Reconcile of a stale shard must advance it")
	}
	fresh := b.GetTime()
	if fresh.TS <= stale.TS {
		t.Fatalf("Reconcile did not advance the local view: %v → %v", stale, fresh)
	}
	// After reconciliation the view is guaranteed-later than values issued
	// more than a window before the leader's current time.
	if !fresh.LaterEq(early) {
		t.Fatalf("reconciled view %v not ⪰ early timestamp %v", fresh, early)
	}
	// And the leader's aged timestamps order correctly against b's new ones.
	if !b.GetNewTS().LaterEq(early) {
		t.Fatalf("post-reconcile GetNewTS not ⪰ %v", early)
	}
}

// TestShardedReconcileTicksTheClock: reconciliation must advance global time
// even when nothing commits — this is what lets a lone reader age a fresh
// version past the masked window instead of livelocking.
func TestShardedReconcileTicksTheClock(t *testing.T) {
	sc := NewShardedCounter(2, 8)
	w := sc.Clock(0)
	r := sc.Clock(1).(*shardClock)

	ct := w.GetNewTS() // one commit, then the writer goes idle
	for i := int64(0); i < 2*sc.Window(); i++ {
		r.Reconcile()
	}
	if now := r.GetTime(); !now.LaterEq(ct) {
		t.Fatalf("after 2·window reconciles, %v still not ⪰ commit time %v", now, ct)
	}
}

// TestShardedWindowInvariant: single-threaded, the distance between any
// shard and the epoch base never exceeds the window — the invariant the
// masked ⪰ soundness argument rests on.
func TestShardedWindowInvariant(t *testing.T) {
	sc := NewShardedCounter(4, 32)
	clocks := make([]Clock, 4)
	for i := range clocks {
		clocks[i] = sc.Clock(i)
	}
	check := func(step int) {
		base := sc.Base()
		for s := 0; s < sc.Shards(); s++ {
			v := sc.shards[s].c.Load()
			if v-base > sc.Window() {
				t.Fatalf("step %d: shard %d at %d runs %d ahead of base %d (window %d)",
					step, s, v, v-base, base, sc.Window())
			}
		}
	}
	for i := 0; i < 5000; i++ {
		c := clocks[(i*7)%4]
		switch i % 5 {
		case 0, 1, 2:
			c.GetNewTS()
		case 3:
			c.GetTime()
		case 4:
			c.(*shardClock).Reconcile()
		}
		check(i)
	}
}

// TestShardedIssueBoundUnderContention hammers GetTime/GetNewTS/Reconcile
// from several threads per shard and checks the soundness invariant on
// every issued timestamp: its value never exceeds base+window, where base
// is read after the issuing call returns. Since the base is monotone, a
// violation proves the timestamp was above base+window at issue time —
// exactly the mid-flight gap (shard incremented, base not yet raised)
// that GetTime's clamp exists to close; an unclamped read from that gap
// would order, under masking, ahead of timestamps other shards issue
// later, letting a transaction accept a version committed after it began.
func TestShardedIssueBoundUnderContention(t *testing.T) {
	sc := NewShardedCounter(2, 4) // tiny window: the gap is one Add away
	const workers, per = 8, 5000  // 4 threads per shard stack increments
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := sc.Clock(w)
			for i := 0; i < per; i++ {
				var ts Timestamp
				switch i % 4 {
				case 0:
					ts = c.GetNewTS()
				case 3:
					c.(Reconciler).Reconcile()
					continue
				default:
					ts = c.GetTime()
				}
				if lim := sc.Base() + sc.Window(); ts.TS > lim {
					t.Errorf("worker %d: issued %v above base+window = %d at issue time", w, ts, lim)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestShardedTimestampsDominateZero: every issued timestamp must be ⪰ the
// Zero sentinel even under full cross-clock masking, so "commit time not
// yet chosen" never aliases a real time.
func TestShardedTimestampsDominateZero(t *testing.T) {
	sc := NewShardedCounter(2, 64)
	for id := 0; id < 2; id++ {
		c := sc.Clock(id)
		for _, ts := range []Timestamp{c.GetTime(), c.GetNewTS()} {
			if !ts.LaterEq(Zero) {
				t.Fatalf("clock %d issued %v not ⪰ Zero", id, ts)
			}
			if ts.IsZero() {
				t.Fatalf("clock %d issued the Zero sentinel", id)
			}
		}
	}
}

// TestShardedSingleShardDegeneratesToCounter: with one shard every handle
// aliases the same word, values strictly increase under concurrency, and
// same-CID comparisons are exact — the SharedCounter behaviour with Dev
// masking that same-shard comparison never consults.
func TestShardedSingleShardDegeneratesToCounter(t *testing.T) {
	sc := NewShardedCounter(1, 8)
	const workers, per = 4, 1000
	var wg sync.WaitGroup
	seen := make([][]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := sc.Clock(w)
			for i := 0; i < per; i++ {
				seen[w] = append(seen[w], c.GetNewTS().TS)
			}
		}(w)
	}
	wg.Wait()
	all := make(map[int64]bool, workers*per)
	for _, vals := range seen {
		for _, v := range vals {
			if all[v] {
				t.Fatalf("duplicate value %d on a single shard", v)
			}
			all[v] = true
		}
	}
}

// TestShardedConstructorNormalization: degenerate parameters are clamped,
// and odd windows round up to keep Dev = window/2 conservative.
func TestShardedConstructorNormalization(t *testing.T) {
	if sc := NewShardedCounter(0, 0); sc.Shards() != 1 || sc.Window() != DefaultShardWindow {
		t.Errorf("NewShardedCounter(0,0) = %d shards, window %d", sc.Shards(), sc.Window())
	}
	if sc := NewShardedCounter(3, 7); sc.Window() != 8 {
		t.Errorf("odd window not rounded up: %d", sc.Window())
	}
	if sc := NewShardedCounter(2, 16); sc.Name() == "" {
		t.Error("empty name")
	}
}
