package norec

// Allocation budgets for the NOrec fast paths — the ratchet behind the
// repo-root BenchmarkSmallTxAllocs trend. The Thread recycles its one Tx
// (read/write logs, promoted index) across attempts, and nothing an attempt
// builds escapes it, so the steady-state costs are:
//
//   - read-only, small read set: 0 — the value log appends into the
//     recycled backing array.
//   - update, 2 writes: 2 — the commit write-back publishes one fresh value
//     snapshot (*any) per written object; those escape to readers by design
//     and are the floor for the value-snapshot representation.
//
// Values written stay in [0,255] so the runtime's small-int interface cache
// keeps payload boxing out of the count.

import (
	"testing"
)

func allocBudget(t *testing.T, name string, budget float64, f func()) {
	t.Helper()
	f() // warm the recycled logs before AllocsPerRun's own warmup
	if got := testing.AllocsPerRun(200, f); got > budget {
		t.Errorf("%s: %.1f allocs/run, budget %.0f", name, got, budget)
	}
}

func TestAllocBudgetReadOnlySmall(t *testing.T) {
	s := New()
	a, b := NewObject(1), NewObject(2)
	th := s.Thread(0)
	fn := func(tx *Tx) error {
		if _, err := tx.Read(a); err != nil {
			return err
		}
		_, err := tx.Read(b)
		return err
	}
	allocBudget(t, "norec read-only 2 reads", 0, func() {
		if err := th.RunReadOnly(fn); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocBudgetUpdateSmall(t *testing.T) {
	s := New()
	a, b := NewObject(0), NewObject(0)
	th := s.Thread(0)
	bump := func(tx *Tx, o *Object) error {
		v, err := tx.Read(o)
		if err != nil {
			return err
		}
		return tx.Write(o, (v.(int)+1)%100)
	}
	fn := func(tx *Tx) error {
		if err := bump(tx, a); err != nil {
			return err
		}
		return bump(tx, b)
	}
	allocBudget(t, "norec 2-write update", 2, func() {
		if err := th.Run(fn); err != nil {
			t.Fatal(err)
		}
	})
}
