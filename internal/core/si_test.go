package core

import (
	"sync"
	"testing"

	"repro/internal/timebase"
)

// runWriteSkew orchestrates the canonical write-skew anomaly: two
// transactions each read both accounts and, if the guard a+b ≥ 10 holds,
// debit their *own* account by 10 — disjoint write sets, intersecting read
// sets. Serializable commits must keep a+b ≥ 0; snapshot isolation permits
// both to commit from the initial snapshot, driving the sum to −10.
// It returns the final sum.
func runWriteSkew(t *testing.T, si bool) int {
	t.Helper()
	rt := MustRuntime(Config{
		TimeBase:          timebase.NewSharedCounter(),
		SnapshotIsolation: si,
	})
	a, b := NewObject(5), NewObject(5)

	readDone := make(chan struct{})
	t2Done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := rt.Thread(0)
		attempt := 0
		if err := th.Run(func(tx *Tx) error {
			attempt++
			av, err := tx.Read(a)
			if err != nil {
				return err
			}
			bv, err := tx.Read(b)
			if err != nil {
				return err
			}
			if attempt == 1 {
				close(readDone)
				<-t2Done // T2 commits while our snapshot is held
			}
			if av.(int)+bv.(int) >= 10 {
				return tx.Write(a, av.(int)-10)
			}
			return nil
		}); err != nil {
			t.Errorf("T1: %v", err)
		}
	}()

	<-readDone
	th2 := rt.Thread(1)
	if err := th2.Run(func(tx *Tx) error {
		av, err := tx.Read(a)
		if err != nil {
			return err
		}
		bv, err := tx.Read(b)
		if err != nil {
			return err
		}
		if av.(int)+bv.(int) >= 10 {
			return tx.Write(b, bv.(int)-10)
		}
		return nil
	}); err != nil {
		t.Fatalf("T2: %v", err)
	}
	close(t2Done)
	wg.Wait()

	sum := 0
	if err := rt.Thread(2).RunReadOnly(func(tx *Tx) error {
		av, err := tx.Read(a)
		if err != nil {
			return err
		}
		bv, err := tx.Read(b)
		if err != nil {
			return err
		}
		sum = av.(int) + bv.(int)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return sum
}

func TestSerializableForbidsWriteSkew(t *testing.T) {
	if sum := runWriteSkew(t, false); sum < 0 {
		t.Errorf("serializable mode allowed write skew: final sum %d", sum)
	}
}

func TestSnapshotIsolationPermitsWriteSkew(t *testing.T) {
	if sum := runWriteSkew(t, true); sum != -10 {
		t.Errorf("SI should let both guarded debits commit: final sum %d, want -10", sum)
	}
}

func TestSIFirstUpdaterWins(t *testing.T) {
	// Two transactions writing the SAME object from the same snapshot:
	// under SI exactly one version chain survives and no update is lost.
	rt := MustRuntime(Config{
		TimeBase:          timebase.NewSharedCounter(),
		SnapshotIsolation: true,
	})
	o := NewObject(0)
	const workers, per = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := rt.Thread(id)
			for i := 0; i < per; i++ {
				if err := th.Run(func(tx *Tx) error {
					v, err := tx.Read(o)
					if err != nil {
						return err
					}
					return tx.Write(o, v.(int)+1)
				}); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := mustReadInt(t, rt, o); got != workers*per {
		t.Errorf("counter = %d, want %d — SI must not lose read-modify-write updates on one object", got, workers*per)
	}
}

func TestSIBankConservationWithWriteConflicts(t *testing.T) {
	// Transfers write both accounts, so every dangerous interleaving is a
	// write-write conflict: conservation holds even under SI.
	rt := MustRuntime(Config{
		TimeBase:          timebase.NewSharedCounter(),
		SnapshotIsolation: true,
	})
	const accounts, initial, workers, per = 8, 100, 4, 100
	objs := make([]*Object, accounts)
	for i := range objs {
		objs[i] = NewObject(initial)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := rt.Thread(id)
			for i := 0; i < per; i++ {
				from, to := (id+i)%accounts, (id*5+i*3+1)%accounts
				if from == to {
					to = (to + 1) % accounts
				}
				if err := th.Run(func(tx *Tx) error {
					fv, err := tx.Read(objs[from])
					if err != nil {
						return err
					}
					tv, err := tx.Read(objs[to])
					if err != nil {
						return err
					}
					if err := tx.Write(objs[from], fv.(int)-1); err != nil {
						return err
					}
					return tx.Write(objs[to], tv.(int)+1)
				}); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	sum := 0
	if err := rt.Thread(99).RunReadOnly(func(tx *Tx) error {
		sum = 0
		for _, o := range objs {
			v, err := tx.Read(o)
			if err != nil {
				return err
			}
			sum += v.(int)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum != accounts*initial {
		t.Errorf("total = %d, want %d", sum, accounts*initial)
	}
}

func TestSIReadsStayAtSnapshot(t *testing.T) {
	// An SI update transaction's second read must come from the same
	// snapshot as its first, even after a concurrent commit in between —
	// served from an older version rather than by extension.
	rt := MustRuntime(Config{
		TimeBase:          timebase.NewSharedCounter(),
		SnapshotIsolation: true,
		MaxVersions:       8,
	})
	a, b := NewObject(1), NewObject(1)
	sink := NewObject(0)
	th1 := rt.Thread(0)
	th2 := rt.Thread(1)
	attempt := 0
	if err := th1.Run(func(tx *Tx) error {
		attempt++
		av, err := tx.Read(a)
		if err != nil {
			return err
		}
		if attempt == 1 {
			// Concurrent commit rewriting both a and b.
			if err := th2.Run(func(tx2 *Tx) error {
				if err := tx2.Write(a, 100); err != nil {
					return err
				}
				return tx2.Write(b, 100)
			}); err != nil {
				t.Fatal(err)
			}
		}
		bv, err := tx.Read(b)
		if err != nil {
			return err
		}
		if av.(int) != bv.(int) {
			t.Errorf("snapshot mixed generations: a=%d b=%d", av, bv)
		}
		return tx.Write(sink, av.(int)+bv.(int))
	}); err != nil {
		t.Fatal(err)
	}
	if attempt != 1 {
		t.Errorf("SI transaction retried %d times; old versions should have served the snapshot", attempt)
	}
}
