package core

import "errors"

// ErrAborted is returned by transactional operations once the transaction is
// doomed — its snapshot cannot be kept consistent, it lost a conflict, or a
// helper/contention manager aborted it. It plays the role of the paper's
// AbortedException (Algorithm 2 line 58): the transaction body must stop and
// the runner retries it. Callers inside a transaction should propagate it
// unchanged; swallowing it is safe for consistency (Commit re-checks the
// status) but wastes work.
var ErrAborted = errors.New("stm: transaction aborted")

// ErrReadOnly is returned by Write on a transaction that was started with
// RunReadOnly. Read-only transactions may read old object versions, which
// would make any update unserializable.
var ErrReadOnly = errors.New("stm: write inside read-only transaction")

// ErrNotActive is returned when a transactional operation is invoked on a
// transaction that has already committed or aborted — typically a Tx handle
// leaked outside its Run function.
var ErrNotActive = errors.New("stm: transaction is not active")
