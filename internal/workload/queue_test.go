package workload

import (
	"sync"
	"testing"
)

func TestQueueSequentialFIFO(t *testing.T) {
	eng := newEng(t)
	q := &Queue{Capacity: 4}
	if err := q.Init(eng, 1); err != nil {
		t.Fatal(err)
	}
	th := eng.Thread(0)

	if _, ok, err := q.Pop(th); err != nil || ok {
		t.Fatalf("pop on empty = (%v, %v), want miss", ok, err)
	}
	for i := 1; i <= 4; i++ {
		ok, err := q.Push(th, i*10)
		if err != nil || !ok {
			t.Fatalf("push %d = (%v, %v)", i, ok, err)
		}
	}
	if ok, err := q.Push(th, 99); err != nil || ok {
		t.Fatalf("push on full = (%v, %v), want reject", ok, err)
	}
	for i := 1; i <= 4; i++ {
		v, ok, err := q.Pop(th)
		if err != nil || !ok {
			t.Fatalf("pop %d failed: (%v, %v)", i, ok, err)
		}
		if v != i*10 {
			t.Errorf("pop %d = %d, want %d (FIFO order)", i, v, i*10)
		}
	}
	if n, err := q.Len(th); err != nil || n != 0 {
		t.Fatalf("len = (%d, %v), want 0", n, err)
	}
}

func TestQueueWrapsAround(t *testing.T) {
	eng := newEng(t)
	q := &Queue{Capacity: 3}
	if err := q.Init(eng, 1); err != nil {
		t.Fatal(err)
	}
	th := eng.Thread(0)
	for round := 0; round < 10; round++ {
		if ok, err := q.Push(th, round); err != nil || !ok {
			t.Fatalf("round %d push: (%v, %v)", round, ok, err)
		}
		v, ok, err := q.Pop(th)
		if err != nil || !ok || v != round {
			t.Fatalf("round %d pop = (%d, %v, %v)", round, v, ok, err)
		}
	}
}

func TestQueueConcurrentConservation(t *testing.T) {
	eng := newClockEng(t)
	q := &Queue{Capacity: 16}
	const producers, consumers, per = 2, 2, 300
	if err := q.Init(eng, producers+consumers); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	pushed, popped := 0, 0
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := eng.Thread(id)
			n := 0
			for i := 0; i < per; i++ {
				ok, err := q.Push(th, id*1000+i)
				if err != nil {
					t.Errorf("push: %v", err)
					return
				}
				if ok {
					n++
				}
			}
			mu.Lock()
			pushed += n
			mu.Unlock()
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := eng.Thread(producers + id)
			n := 0
			for i := 0; i < per; i++ {
				_, ok, err := q.Pop(th)
				if err != nil {
					t.Errorf("pop: %v", err)
					return
				}
				if ok {
					n++
				}
			}
			mu.Lock()
			popped += n
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	remaining, err := q.Len(eng.Thread(99))
	if err != nil {
		t.Fatal(err)
	}
	if pushed != popped+remaining {
		t.Errorf("conservation broken: pushed %d, popped %d, remaining %d", pushed, popped, remaining)
	}
	if remaining < 0 || remaining > 16 {
		t.Errorf("remaining %d outside [0,16]", remaining)
	}
}

func TestQueueAsHarnessWorkload(t *testing.T) {
	eng := newEng(t)
	q := &Queue{Capacity: 8}
	if err := q.Init(eng, 2); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := eng.Thread(id)
			step := q.Step(eng, th, id)
			for i := 0; i < 200; i++ {
				if err := step(); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
}

func TestReadMostlyValidation(t *testing.T) {
	r := &ReadMostly{Objects: 8, ScanLen: 100}
	if err := r.Init(newEng(t), 1); err == nil {
		t.Error("scan longer than table must be rejected")
	}
}

func TestReadMostlyRuns(t *testing.T) {
	eng := newClockEng(t)
	r := &ReadMostly{Objects: 32, ScanLen: 8, WriteRatio: 0.3, Seed: 5}
	if err := r.Init(eng, 3); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for id := 0; id < 3; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := eng.Thread(id)
			step := r.Step(eng, th, id)
			for i := 0; i < 200; i++ {
				if err := step(); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	if s := eng.Stats(); s.Commits == 0 {
		t.Error("no commits recorded")
	}
}
