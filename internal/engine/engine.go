// Package engine defines the backend-neutral transactional-memory interface
// that every STM variant in this repository implements, plus a name-keyed
// registry of backends.
//
// The paper's claims are comparative — LSA-RT against the shared-counter,
// TL2-style, and hardware-clock time bases, and against single-version and
// validating STM designs — so the repository carries several engines:
//
//   - the multi-version object-based LSA core (internal/core), under every
//     pluggable time base ("lsa/shared", "lsa/tl2ts", "lsa/mmtimer",
//     "lsa/ideal", "lsa/extsync"),
//   - the word-based LSA variant ("wordstm"),
//   - a TL2 reimplementation ("tl2"), also composed with the externally
//     synchronized time base ("tl2/extsync") to isolate what
//     multi-versioning buys under clock deviation,
//   - a validating STM with the RSTM commit-counter heuristic ("rstmval"),
//   - a NOrec-style value-validating STM over a single global sequence lock
//     ("norec") — the minimal-metadata counterpoint,
//   - a coarse-global-lock reference engine ("glock") — the honesty
//     baseline for low thread counts.
//
// This package makes them interchangeable: workloads, the throughput
// harness, the stress tool, and the benchmarks are written once against
// Engine/Thread/Txn and run on any registered backend by name.
//
// A Cell is an engine-specific handle for one transactional variable; it
// must only be used with transactions of the engine that created it. Values
// are stored as immutable snapshots (callers copy mutable values before
// storing). The typed accessors Get, Set and Update recover static typing on
// top of the any-valued Txn interface.
package engine

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/abort"
)

// Cell is an opaque handle to one transactional variable. Cells are created
// by Engine.NewCell and are only valid with transactions of that engine.
type Cell interface{}

// Txn is one transaction attempt. The closure passed to Thread.Run receives
// a Txn and must confine its side effects to Read and Write; on error it
// must return promptly (the engine retries aborted attempts).
type Txn interface {
	// Read returns the cell's value in the transaction's snapshot.
	Read(c Cell) (any, error)
	// Write installs val as the cell's tentative new value; it becomes
	// visible atomically at commit.
	Write(c Cell, val any) error
}

// IntTxn is the optional unboxed numeric lane: a Txn that additionally
// implements it moves int-typed payloads as plain int64 words, with no
// interface boxing anywhere on the path. Every backend in this repository
// implements it; the typed accessors Get, Set and Update detect it with one
// type assertion and use it automatically, so int-valued workloads ride the
// lane with no code changes.
//
// Lane semantics: values written through WriteInt have canonical dynamic
// type int (a raw Txn.Read returns int), and ReadInt serves any numeric
// payload (int or int64) regardless of which API wrote it — the lane erases
// the int/int64 width distinction for typed accessors, while the generic
// Read/Write pair preserves exact dynamic types end to end.
type IntTxn interface {
	// ReadInt returns the cell's value through the numeric lane. ok reports
	// whether the cell currently holds a numeric payload; when false the
	// caller falls back to Read (the escape hatch).
	ReadInt(c Cell) (v int64, ok bool, err error)
	// WriteInt installs v through the numeric lane without boxing.
	WriteInt(c Cell, v int64) error
	// UpdateInt applies f as a read-modify-write through the numeric lane.
	// ok is false (and nothing is written) when the cell holds a boxed
	// payload.
	UpdateInt(c Cell, f func(int64) int64) (ok bool, err error)
}

// updateIntVia implements IntTxn.UpdateInt in terms of ReadInt/WriteInt —
// shared by every adapter wrapper (each is a one-pointer struct, so the
// interface conversion here does not allocate).
func updateIntVia(t IntTxn, c Cell, f func(int64) int64) (bool, error) {
	n, ok, err := t.ReadInt(c)
	if !ok || err != nil {
		return ok, err
	}
	return true, t.WriteInt(c, f(n))
}

// Thread is one worker's execution context. A Thread must be used by a
// single goroutine; create one per worker with Engine.Thread.
type Thread interface {
	// ID returns the worker id the thread was created with.
	ID() int
	// Run executes fn as an update-capable transaction, retrying on aborts
	// until it commits. A non-abort error from fn cancels the transaction
	// and is returned unchanged.
	Run(fn func(Txn) error) error
	// RunReadOnly executes fn as a declared read-only transaction: writes
	// are rejected, and multi-version engines may serve reads from older
	// versions so long scans do not abort concurrent updates.
	RunReadOnly(fn func(Txn) error) error
}

// Engine is an instantiated transactional memory backend.
type Engine interface {
	// Name identifies the backend (usually its registry name).
	Name() string
	// NewCell allocates a transactional variable holding initial. Safe to
	// call concurrently, including from inside transaction closures (a cell
	// is private until a committed write publishes a reference to it).
	NewCell(initial any) Cell
	// Thread creates the execution context for one worker goroutine. id
	// selects the worker's clock for per-node time bases; use dense indices
	// 0..N−1.
	Thread(id int) Thread
	// Stats sums all threads' counters. Only call while no transactions
	// run; engines keep per-thread counters unsynchronized so statistics
	// cannot perturb the scalability under measurement.
	Stats() Stats
}

// Stats aggregates commit/abort counters across an engine's threads.
//
// The Abort* fields are the cross-engine abort-reason taxonomy (see
// internal/abort): every registered backend classifies each abort into
// exactly one of them — AbortSnapshot, AbortValidation, AbortConflict,
// AbortExternal, AbortContention, AbortEscalation — so their sum equals
// Aborts on every engine (asserted by the conformance suite via
// UnclassifiedAborts). The first four mirror the LSA core's native causes;
// AbortContention and AbortEscalation come from the value-based engines'
// bounded lock waits and the adaptive engine's escalated path.
type Stats struct {
	// Commits counts successfully committed transactions.
	Commits uint64 `json:"commits"`
	// Aborts counts aborted attempts (every retry is one abort).
	Aborts uint64 `json:"aborts"`
	// AbortSnapshot counts aborts for lack of a consistent snapshot.
	AbortSnapshot uint64 `json:"abort_snapshot,omitempty"`
	// AbortValidation counts commit-time validation failures.
	AbortValidation uint64 `json:"abort_validation,omitempty"`
	// AbortConflict counts aborts decreed against self by the contention
	// manager.
	AbortConflict uint64 `json:"abort_conflict,omitempty"`
	// AbortExternal counts aborts inflicted by other threads.
	AbortExternal uint64 `json:"abort_external,omitempty"`
	// AbortContention counts aborts from bounded waits on locks, stripes or
	// combining slots that ran out while another thread held them.
	AbortContention uint64 `json:"abort_contention,omitempty"`
	// AbortEscalation counts aborts suffered on an adaptive engine's
	// escalated (global) protocol path, whatever their site.
	AbortEscalation uint64 `json:"abort_escalation,omitempty"`
	// UserAborts counts transactions abandoned by application error.
	UserAborts uint64 `json:"user_aborts,omitempty"`
	// Extensions counts validity-range extension attempts.
	Extensions uint64 `json:"extensions,omitempty"`
	// Helps counts completions of other transactions' commits.
	Helps uint64 `json:"helps,omitempty"`
	// EnemyAborts counts enemy transactions aborted by this engine's
	// threads.
	EnemyAborts uint64 `json:"enemy_aborts,omitempty"`
	// BoxedCommits counts commits that wrote at least one escape-hatch
	// (boxed, non-numeric) payload — the complement of the unboxed int
	// lane. Omitted when zero, so snapshots from engines (or eras) without
	// the counter parse unchanged.
	BoxedCommits uint64 `json:"boxed_commits,omitempty"`
	// CommitBatches counts combining batches (lock acquisitions that applied
	// at least one commit) for flat-combining engines; zero elsewhere.
	CommitBatches uint64 `json:"commit_batches,omitempty"`
	// BatchedCommits counts commits applied inside combining batches;
	// BatchedCommits/CommitBatches is the mean combining factor.
	BatchedCommits uint64 `json:"batched_commits,omitempty"`
	// EscalatedCommits counts commits whose attempt ran on an escalated
	// (global) protocol path for adaptive engines; zero elsewhere.
	EscalatedCommits uint64 `json:"escalated_commits,omitempty"`
}

// BoxedShare returns the fraction of commits that took the boxing escape
// hatch (0 when nothing committed).
func (s Stats) BoxedShare() float64 {
	if s.Commits == 0 {
		return 0
	}
	return float64(s.BoxedCommits) / float64(s.Commits)
}

// ClassifiedAborts returns the sum of the abort-taxonomy buckets.
func (s Stats) ClassifiedAborts() uint64 {
	return s.AbortSnapshot + s.AbortValidation + s.AbortConflict +
		s.AbortExternal + s.AbortContention + s.AbortEscalation
}

// UnclassifiedAborts returns how many aborts no taxonomy bucket accounts
// for. Every registered backend classifies all of its aborts, so this is 0
// on freshly produced stats (the conformance suite asserts it); legacy
// snapshot records may carry a nonzero value. Classified counts exceeding
// Aborts (impossible by construction) also report 0 rather than wrapping.
func (s Stats) UnclassifiedAborts() uint64 {
	c := s.ClassifiedAborts()
	if c >= s.Aborts {
		return 0
	}
	return s.Aborts - c
}

// AbortMix renders the abort-reason composition compactly for tables:
// percentage shares of Aborts as "snap12+val80+lock8" (reasons with a zero
// share omitted, "esc" for escalation, "cm"/"ext" for the LSA core's
// contention-manager and externally-inflicted causes, "unk" for any
// unclassified remainder). "-" when nothing aborted.
func (s Stats) AbortMix() string {
	if s.Aborts == 0 {
		return "-"
	}
	parts := make([]string, 0, 7)
	add := func(label string, n uint64) {
		if n == 0 {
			return
		}
		parts = append(parts, fmt.Sprintf("%s%.0f", label, 100*float64(n)/float64(s.Aborts)))
	}
	add("snap", s.AbortSnapshot)
	add("val", s.AbortValidation)
	add("cm", s.AbortConflict)
	add("ext", s.AbortExternal)
	add("lock", s.AbortContention)
	add("esc", s.AbortEscalation)
	add("unk", s.UnclassifiedAborts())
	return strings.Join(parts, "+")
}

// AbortRate returns aborts per attempt: Aborts / (Commits + Aborts).
func (s Stats) AbortRate() float64 {
	total := s.Commits + s.Aborts
	if total == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(total)
}

// String renders the counters compactly.
func (s Stats) String() string {
	return fmt.Sprintf("commits=%d aborts=%d (rate=%.4f)", s.Commits, s.Aborts, s.AbortRate())
}

// Get reads the cell and asserts its value to T. For T = int or int64 on a
// lane-capable transaction the read goes through IntTxn.ReadInt and never
// boxes; the pointer-typed switch on &zero compiles to a static dispatch
// with no interface allocation (pointers are direct interface values, and
// the interface does not escape).
func Get[T any](tx Txn, c Cell) (T, error) {
	var zero T
	switch p := any(&zero).(type) {
	case *int:
		if it, ok := tx.(IntTxn); ok {
			n, isNum, err := it.ReadInt(c)
			if err != nil {
				return zero, err
			}
			if isNum {
				*p = int(n)
				return zero, nil
			}
		}
	case *int64:
		if it, ok := tx.(IntTxn); ok {
			n, isNum, err := it.ReadInt(c)
			if err != nil {
				return zero, err
			}
			if isNum {
				*p = n
				return zero, nil
			}
		}
	}
	v, err := tx.Read(c)
	if err != nil {
		return zero, err
	}
	t, ok := v.(T)
	if !ok {
		return zero, fmt.Errorf("engine: cell holds %T, not %T", v, zero)
	}
	return t, nil
}

// Set writes a typed value to the cell. For T = int or int64 on a
// lane-capable transaction the write goes through IntTxn.WriteInt and never
// boxes.
func Set[T any](tx Txn, c Cell, v T) error {
	switch p := any(&v).(type) {
	case *int:
		if it, ok := tx.(IntTxn); ok {
			return it.WriteInt(c, int64(*p))
		}
	case *int64:
		if it, ok := tx.(IntTxn); ok {
			return it.WriteInt(c, *p)
		}
	}
	return tx.Write(c, v)
}

// Update applies f to the cell's current value and stores the result — the
// common read-modify-write in one call. Composed from Get and Set, it
// inherits their unboxed int lane.
func Update[T any](tx Txn, c Cell, f func(T) T) error {
	cur, err := Get[T](tx, c)
	if err != nil {
		return err
	}
	return Set(tx, c, f(cur))
}

// txnCounters are the per-thread commit/abort tallies shared by the adapter
// backends whose native runtimes keep no statistics. The attempt count of a
// retry loop (how many times the closure ran) fully determines them: the
// last attempt either committed or carried the user error out, every
// earlier one was an abort. The trailing padding keeps each worker's
// counters off its neighbours' cache lines.
type txnCounters struct {
	commits      uint64
	aborts       uint64
	userAborts   uint64
	boxedCommits uint64
	abortReasons abort.Counts
	_            [32]byte
}

func (c *txnCounters) record(attempts uint64, err error) {
	if attempts == 0 {
		return
	}
	c.aborts += attempts - 1
	if err == nil {
		c.commits++
	} else {
		c.userAborts++
	}
}

// counterSet is the per-engine registry of thread counters embedded by the
// adapter backends: Thread() allocates one entry per worker, Stats() sums
// them.
type counterSet struct {
	mu       sync.Mutex
	counters []*txnCounters
}

func (s *counterSet) newCounters() *txnCounters {
	c := &txnCounters{}
	s.mu.Lock()
	s.counters = append(s.counters, c)
	s.mu.Unlock()
	return c
}

func (s *counterSet) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total Stats
	for _, c := range s.counters {
		total.Commits += c.commits
		total.Aborts += c.aborts
		total.UserAborts += c.userAborts
		total.BoxedCommits += c.boxedCommits
		total.AbortSnapshot += c.abortReasons[abort.Snapshot]
		total.AbortValidation += c.abortReasons[abort.Validation]
		total.AbortContention += c.abortReasons[abort.Contention]
		total.AbortEscalation += c.abortReasons[abort.Escalation]
	}
	return total
}

// AttemptCounter is the optional per-thread attempt telemetry: a Thread that
// implements it reports the cumulative number of transaction attempts it has
// run (commits + aborted attempts + user-aborted finals). The harness uses
// the per-step deltas to feed the per-attempt retry-latency histogram; every
// backend in this repository implements it.
type AttemptCounter interface {
	// Attempts returns the cumulative attempt count. Single-goroutine, like
	// the Thread itself.
	Attempts() uint64
}

// Durable is the optional persistence capability: an Engine that implements
// it journals every committed write to a write-ahead log and recovers its
// state from that log (plus a compacting snapshot) on construction. The
// internal/durable wrappers are the in-tree implementation; callers that
// hold only an Engine (the service layer, the harness) reach durability
// controls through this interface instead of concrete types, mirroring how
// IntTxn and AttemptCounter are detected.
type Durable interface {
	// DurabilityInfo reports the persistence configuration and the
	// recovery-on-boot outcome. Cheap; callable at any time.
	DurabilityInfo() DurabilityInfo
	// WALSync flushes buffered redo records and forces them to stable
	// storage regardless of the configured fsync policy.
	WALSync() error
	// WALClose flushes, syncs and closes the persistence layer. The engine
	// stays readable in memory, but subsequent update transactions fail.
	// Call it as the last step of an orderly shutdown, after every session
	// has drained. Safe to call more than once.
	WALClose() error
}

// DurabilityInfo describes a durable engine's persistence configuration and
// what recovery-on-boot found. It is embedded in service stats and in the
// bench snapshot's accepted-but-not-required wal telemetry block.
type DurabilityInfo struct {
	// WALDir is the log directory (empty for an engine-managed temp dir).
	WALDir string `json:"wal_dir,omitempty"`
	// FsyncPolicy is the configured policy: "always", "group" or "never".
	FsyncPolicy string `json:"fsync_policy"`
	// RecoveredCommits counts the redo records replayed at boot (snapshot
	// state excluded — a snapshot-only boot reports 0 here).
	RecoveredCommits uint64 `json:"recovered_commits"`
	// RecoveredSeq is the last commit sequence number restored (snapshot
	// watermark included); new commits continue from RecoveredSeq+1.
	RecoveredSeq uint64 `json:"recovered_seq"`
	// SnapshotSeq is the watermark of the snapshot recovery started from
	// (0 when boot replayed the log alone).
	SnapshotSeq uint64 `json:"snapshot_seq,omitempty"`
	// TornTailBytes is how many bytes of torn final record recovery
	// truncated from the log tail (0 for a clean log).
	TornTailBytes int64 `json:"torn_tail_bytes,omitempty"`
}
