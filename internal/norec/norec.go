// Package norec is a NOrec-style software transactional memory (Dalessandro,
// Spear, Scott, PPoPP 2010): the "minimal metadata" counterpoint to the
// timestamp-ordered engines in this repository. Where LSA and TL2 attach a
// version to every object, NOrec keeps no per-object metadata at all — the
// only shared state is one global sequence lock:
//
//   - the sequence lock is even when quiescent and odd while a writer is
//     committing; every committed update transaction bumps it by two;
//   - reads are logged with the value seen (a value log, not a version log);
//     whenever the transaction notices the sequence lock has moved it
//     re-validates the whole log by comparing current values — value-based
//     validation tolerates silent re-writes of the same value;
//   - commit acquires the sequence lock with one compare-and-swap, writes
//     back the buffered write set, and releases the lock.
//
// Within the paper's taxonomy NOrec is the extreme single-counter design:
// its time base is the sequence lock itself, so commits serialize on one
// cache line just like a shared-counter STM — but reads never touch shared
// metadata until the counter moves, which keeps read-dominated workloads
// cheap at low thread counts. The StripedSTM variant in striped.go
// partitions that one lock by cell and is the probe for where value-based
// validation stops being the bottleneck.
//
// Cells are typed two-word slots (val.AtomicCell): numeric payloads live
// unboxed in an atomic machine word, so an int-valued commit writes back
// without allocating; boxed payloads publish a fresh snapshot pointer, and
// the value log records the raw (num, box) snapshot — pointer equality
// proves a boxed value unchanged, and when pointers differ the values
// themselves are compared, which preserves NOrec's tolerance of silently
// restored values.
package norec

import (
	"errors"
	"runtime"
	"sync/atomic"

	"repro/internal/abort"
	"repro/internal/val"
)

// ErrAborted signals that the transaction attempt failed and was retried.
var ErrAborted = errors.New("norec: transaction aborted")

// ErrReadOnly is returned by Write inside a read-only transaction.
var ErrReadOnly = errors.New("norec: write inside read-only transaction")

// Reason-tagged abort instances (see internal/abort): one per abort-site
// class, allocated once so tagging is free on the abort path. All satisfy
// errors.Is(err, ErrAborted).
var (
	// errAbortSnapshot: a read-time revalidation (snapshot extension) failed.
	errAbortSnapshot = &abort.Err{Sentinel: ErrAborted, Reason: abort.Snapshot,
		Msg: "norec: transaction aborted: snapshot extension failed"}
	// errAbortValidation: commit-time revalidation failed while acquiring the
	// sequence lock.
	errAbortValidation = &abort.Err{Sentinel: ErrAborted, Reason: abort.Validation,
		Msg: "norec: transaction aborted: commit-time validation failed"}
	// errAbortContention: a bounded wait on a stripe seqlock ran out
	// (striped/adaptive variants).
	errAbortContention = &abort.Err{Sentinel: ErrAborted, Reason: abort.Contention,
		Msg: "norec: transaction aborted: stripe contention"}
)

// STM is a NOrec universe: the global sequence lock shared by all
// transactions against it.
type STM struct {
	_   [64]byte
	seq atomic.Int64 // even = quiescent, odd = a writer holds the lock
	_   [64]byte
}

// New creates a universe with the sequence lock at zero.
func New() *STM { return &STM{} }

// Sequence exposes the sequence-lock value, for tests.
func (s *STM) Sequence() int64 { return s.seq.Load() }

// waitQuiescent spins until the sequence lock is even and returns its value.
// Writers hold the lock only for the write-back, so the spin is short; after
// a few iterations it yields to the scheduler in case the writer's
// goroutine was preempted mid-commit.
func (s *STM) waitQuiescent() int64 {
	for i := 0; ; i++ {
		v := s.seq.Load()
		if v&1 == 0 {
			return v
		}
		if i > 32 {
			runtime.Gosched()
		}
	}
}

// sidCounter assigns stripe ids to objects at creation, round-robin, so the
// striped variant spreads adjacent cells evenly with no pointer hashing.
var sidCounter atomic.Uint32

// Object is a transactional cell: just the current typed value slot. NOrec
// keeps no per-object consistency metadata — that is the point; sid only
// names the stripe the cell validates against under the striped variant.
type Object struct {
	cell val.AtomicCell
	sid  uint32
}

// NewObject creates an object holding initial.
func NewObject(initial any) *Object {
	o := &Object{sid: sidCounter.Add(1) - 1}
	o.cell.Store(val.OfAny(initial))
	return o
}

// readEntry is one value-log record: the object and the raw (num, box)
// snapshot observed.
type readEntry struct {
	obj *Object
	num int64
	box *any
}

// stillValid re-checks one value-log entry against current memory: the
// pointer fast path first (a lane tag additionally compares the numeric
// word), then the value comparison. On a value match behind a fresh pointer
// (a silent restore) the entry adopts the current snapshot so future
// pointer checks stay fast. Callers guarantee stability externally (the
// sequence lock re-check around the scan).
func stillValid(r *readEntry) bool {
	num, box := r.obj.cell.Snapshot()
	if box == r.box {
		if _, tag := val.TagKind(box); tag {
			return num == r.num
		}
		return true
	}
	if !val.Decode(num, box).Equal(val.Decode(r.num, r.box)) {
		return false
	}
	r.num, r.box = num, box
	return true
}

type writeEntry struct {
	obj *Object
	v   val.Value
}

// smallWriteSet is the write-set size up to which lookup scans the entries
// slice instead of maintaining a map — the same ≤8-entry linear-scan fast
// path as the LSA core's access set (core.smallAccessSet): most transactions
// write a handful of objects, and for those a backward scan over a
// contiguous slice beats a map's hashing and per-attempt clearing cost.
const smallWriteSet = 8

// writeSet is the buffered write log shared by the plain and striped
// transaction types: entries, the promoted index beyond smallWriteSet, and
// the spare map that survives attempts so a large write set pays the map
// allocation once per thread.
type writeSet struct {
	writes     []writeEntry
	windex     map[*Object]int // nil while the write set is small
	spareIndex map[*Object]int
}

// reset rearms the log for reuse. Truncating keeps the backing array (and,
// harmlessly, stale pointers in the unused capacity until overwritten —
// bounded by the largest set this thread has seen).
func (ws *writeSet) reset() {
	ws.writes = ws.writes[:0]
	ws.windex = nil
}

// lookup finds the write-set entry for o: a linear scan while the set is
// small, the map built by add beyond that. A miss returns index −1 (0 is a
// valid entry index).
func (ws *writeSet) lookup(o *Object) (int, bool) {
	if ws.windex != nil {
		if idx, ok := ws.windex[o]; ok {
			return idx, true
		}
		return -1, false
	}
	for i := len(ws.writes) - 1; i >= 0; i-- {
		if ws.writes[i].obj == o {
			return i, true
		}
	}
	return -1, false
}

// add appends a write-set entry; crossing smallWriteSet promotes the index
// to the reusable map (cleared, not reallocated, after the first promotion
// on this thread).
func (ws *writeSet) add(o *Object, v val.Value) {
	ws.writes = append(ws.writes, writeEntry{obj: o, v: v})
	if ws.windex != nil {
		ws.windex[o] = len(ws.writes) - 1
	} else if len(ws.writes) > smallWriteSet {
		if ws.spareIndex == nil {
			ws.spareIndex = make(map[*Object]int, 4*smallWriteSet)
		} else {
			clear(ws.spareIndex)
		}
		ws.windex = ws.spareIndex
		for i := range ws.writes {
			ws.windex[ws.writes[i].obj] = i
		}
	}
}

// Tx is one NOrec transaction attempt. Attempts are recycled across retries
// by their Thread: unlike the LSA core — where helpers may validate a
// previous attempt's frozen access set — nothing a NOrec attempt builds
// ever escapes to another thread (the write-back publishes fresh value
// snapshots, never pointers into the logs), so the read/write sets and the
// promoted index are reused attempt after attempt and the steady-state
// retry costs zero allocations.
type Tx struct {
	stm      *STM
	snapshot int64 // sequence-lock value the read set is consistent at
	readOnly bool
	boxed    bool // some write took the escape hatch
	reads    []readEntry
	writeSet
}

// reset rearms the attempt for reuse.
func (tx *Tx) reset(stm *STM, readOnly bool) {
	tx.stm = stm
	tx.snapshot = stm.waitQuiescent()
	tx.readOnly = readOnly
	tx.boxed = false
	tx.reads = tx.reads[:0]
	tx.writeSet.reset()
}

// Read returns o's value in the transaction's snapshot as `any` — the
// generic escape-hatch view of ReadValue.
func (tx *Tx) Read(o *Object) (any, error) {
	v, err := tx.ReadValue(o)
	if err != nil {
		return nil, err
	}
	return v.Load(), nil
}

// ReadValue returns o's value in the transaction's snapshot, extending the
// snapshot (by re-validating the value log) whenever the sequence lock has
// moved since the last validation.
func (tx *Tx) ReadValue(o *Object) (val.Value, error) {
	if idx, ok := tx.lookup(o); ok {
		return tx.writes[idx].v, nil
	}
	for {
		num, box := o.cell.Snapshot()
		if tx.stm.seq.Load() == tx.snapshot {
			// No commit since the snapshot: the pair is consistent with
			// every previously logged value.
			tx.reads = append(tx.reads, readEntry{obj: o, num: num, box: box})
			return val.Decode(num, box), nil
		}
		// The clock bumped: re-validate the whole log, which also advances
		// the snapshot, then retry the read under the new snapshot.
		if err := tx.revalidate(); err != nil {
			return val.Value{}, err
		}
	}
}

// revalidate re-checks the entire value log against current memory and, on
// success, moves the snapshot up to a sequence-lock value the log is
// consistent at (NOrec's validate loop).
func (tx *Tx) revalidate() error {
	for {
		s := tx.stm.waitQuiescent()
		for i := range tx.reads {
			if !stillValid(&tx.reads[i]) {
				return errAbortSnapshot
			}
		}
		// The log only proves consistency at s if no writer committed while
		// we scanned it.
		if tx.stm.seq.Load() == s {
			tx.snapshot = s
			return nil
		}
	}
}

// Write buffers the new value; it becomes visible at commit — the generic
// escape-hatch view of WriteValue.
func (tx *Tx) Write(o *Object, v any) error {
	return tx.WriteValue(o, val.OfAny(v))
}

// WriteValue buffers the new typed value; numeric-lane values never box.
func (tx *Tx) WriteValue(o *Object, v val.Value) error {
	if tx.readOnly {
		return ErrReadOnly
	}
	if v.Kind() == val.KindBoxed {
		tx.boxed = true
	}
	if idx, ok := tx.lookup(o); ok {
		tx.writes[idx].v = v
		return nil
	}
	tx.add(o, v)
	return nil
}

// commit runs the NOrec commit protocol: acquire the sequence lock at the
// snapshot (re-validating until the acquisition succeeds), write back, and
// release with the next even value.
func (tx *Tx) commit() error {
	if len(tx.writes) == 0 {
		// The value log was validated incrementally; the reads form a
		// consistent snapshot at tx.snapshot and nothing was written.
		return nil
	}
	for !tx.stm.seq.CompareAndSwap(tx.snapshot, tx.snapshot+1) {
		// Another transaction committed (or is committing) since our
		// snapshot: catch the snapshot up, then try again. A failure here is
		// a commit-time validation abort, not a read-time one.
		if tx.revalidate() != nil {
			return errAbortValidation
		}
	}
	// Sequence lock held (odd): write back the buffered values. Numeric
	// payloads land in the cells' atomic words — no allocation.
	for i := range tx.writes {
		w := &tx.writes[i]
		w.obj.cell.Store(w.v)
	}
	tx.stm.seq.Store(tx.snapshot + 2)
	return nil
}

// Thread is a worker context (API-compatible shape with the core engine's
// Thread so workloads translate directly). It owns the one Tx it recycles
// across attempts — a Thread must be used by a single goroutine.
type Thread struct {
	stm          *STM
	tx           Tx
	boxedCommits uint64
	aborts       abort.Counts
}

// Thread creates a worker context.
func (s *STM) Thread(id int) *Thread { return &Thread{stm: s} }

// BoxedCommits returns how many of this thread's commits wrote at least one
// escape-hatch (boxed) payload.
func (t *Thread) BoxedCommits() uint64 { return t.boxedCommits }

// AbortCounts returns this thread's aborts classified by reason.
func (t *Thread) AbortCounts() abort.Counts { return t.aborts }

// Run executes fn transactionally, retrying on aborts.
func (t *Thread) Run(fn func(*Tx) error) error { return t.run(false, fn) }

// RunReadOnly executes fn as a read-only transaction. NOrec read-only
// transactions still keep the value log — incremental validation is what
// makes their snapshots consistent — but commit is empty.
func (t *Thread) RunReadOnly(fn func(*Tx) error) error { return t.run(true, fn) }

func (t *Thread) run(readOnly bool, fn func(*Tx) error) error {
	tx := &t.tx
	for {
		tx.reset(t.stm, readOnly)
		err := fn(tx)
		if err == nil {
			err = tx.commit()
		}
		if err == nil {
			if tx.boxed {
				t.boxedCommits++
			}
			return nil
		}
		if !errors.Is(err, ErrAborted) {
			return err
		}
		t.aborts.Observe(err)
	}
}
