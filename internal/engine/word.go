package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/timebase"
	"repro/internal/wordstm"
)

// The "wordstm" backend: the word-based LSA variant over the shared-counter
// time base. The native memory is flat int64 words, so the adapter maps
// each cell to one word and encodes values into it:
//
//   - small ints are stored immediately, tagged in the low bit (the common
//     case for the counter workloads — no indirection, no allocation); the
//     tagged lane doubles as the backend's IntTxn implementation;
//   - everything else is boxed into a side table and the word holds the box
//     index. The word remains the single transactional authority; a side
//     table slot is immutable while referenced, so reads stay consistent.
//
// Side-table reclamation: a box created by a transactional Write whose
// attempt aborts (or whose transaction fails with a user error) was never
// referenced by any committed word, so its slot is returned to a free list
// and reused by later encodes — long stress sessions with struct values no
// longer grow the table per retry. Boxes that become garbage because a
// committed word was later overwritten are still leaked (reclaiming those
// needs a transactional read-before-write or epoch scheme; see ROADMAP).
//
// Cells consume words permanently (Options.Words sizes the memory), and the
// backend inherits the word engine's restriction to exact time bases.
func init() {
	Register("wordstm", Info{
		Summary: "word-based LSA over striped versioned locks and flat memory",
		Capabilities: Capabilities{
			IntLane:        true,
			AttemptCounter: true,
			Tunables:       []string{"words"},
		},
	}, func(o Options) (Engine, error) {
		return newWord(o)
	})
}

func newWord(o Options) (Engine, error) {
	stm, err := wordstm.New(timebase.NewSharedCounter(), o.Words)
	if err != nil {
		return nil, err
	}
	return &wordEngine{stm: stm}, nil
}

type wordEngine struct {
	stm  *wordstm.STM
	next atomic.Int64 // next free word

	boxMu sync.RWMutex
	boxes []any
	free  []int64 // reusable side-table slots

	counterSet
}

// wordCell is a cell handle: the index of the cell's word.
type wordCell wordstm.Addr

func (e *wordEngine) Name() string { return "wordstm" }

func (e *wordEngine) NewCell(initial any) Cell {
	a := e.next.Add(1) - 1
	if a >= int64(e.stm.Words()) {
		panic(fmt.Sprintf("engine: wordstm backend out of cells (%d words; raise Options.Words)", e.stm.Words()))
	}
	// The word is unpublished until a committed write makes the cell
	// reachable, so a direct store is safe even mid-run.
	w, _ := e.encode(initial)
	if err := e.stm.SetInitial(wordstm.Addr(a), w); err != nil {
		panic(fmt.Sprintf("engine: wordstm init: %v", err))
	}
	return wordCell(a)
}

// immediateMax bounds the ints stored directly in a word: the tag shift
// costs one bit, so 63 signed bits remain — every n with |n| < 2⁶² fits.
const immediateMax = 1 << 62

// encode returns the word for v and, when v was boxed, the side-table slot
// index (−1 for immediates). Boxed slots come from the free list when one
// is available.
func (e *wordEngine) encode(v any) (word, boxIdx int64) {
	if n, ok := v.(int); ok && n > -immediateMax && n < immediateMax {
		return int64(n)<<1 | 1, -1
	}
	e.boxMu.Lock()
	var idx int64
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
		e.boxes[idx] = v
	} else {
		e.boxes = append(e.boxes, v)
		idx = int64(len(e.boxes) - 1)
	}
	e.boxMu.Unlock()
	return idx << 1, idx
}

// freeBoxes returns side-table slots to the free list. Only call with slots
// that no committed word can reference (boxes encoded by attempts that
// never committed).
func (e *wordEngine) freeBoxes(idxs []int64) {
	if len(idxs) == 0 {
		return
	}
	e.boxMu.Lock()
	for _, idx := range idxs {
		e.boxes[idx] = nil
		e.free = append(e.free, idx)
	}
	e.boxMu.Unlock()
}

func (e *wordEngine) decode(w int64) any {
	if w&1 == 1 {
		return int(w >> 1)
	}
	e.boxMu.RLock()
	v := e.boxes[w>>1]
	e.boxMu.RUnlock()
	return v
}

// Thread builds the worker context with its retry closure allocated once.
// The current native Tx lives in the thread (not the Txn wrapper), so the
// wrapper stays a single pointer and converts to the Txn interface without
// allocating.
func (e *wordEngine) Thread(id int) Thread {
	t := &wordThread{id: id, eng: e, th: e.stm.Thread(id), counters: e.newCounters()}
	t.step = func(tx *wordstm.Tx) error {
		t.attempts++
		// A previous attempt of this transaction aborted: its boxes were
		// never published and can be reused.
		if len(t.pending) > 0 {
			t.eng.freeBoxes(t.pending)
			t.pending = t.pending[:0]
		}
		t.attemptBoxed = false
		t.cur = tx
		return t.fn(wordTxn{t})
	}
	return t
}

type wordThread struct {
	id       int
	eng      *wordEngine
	th       *wordstm.Thread
	counters *txnCounters
	fn       func(Txn) error
	attempts uint64
	step     func(*wordstm.Tx) error
	cur      *wordstm.Tx
	// pending holds the side-table slots boxed by the current attempt; they
	// are freed when the attempt provably never committed.
	pending      []int64
	attemptBoxed bool
}

func (t *wordThread) ID() int { return t.id }

// Attempts implements AttemptCounter: cumulative attempts across the
// thread's life (commits + aborted attempts + user-aborted finals).
func (t *wordThread) Attempts() uint64 {
	c := t.counters
	return c.commits + c.aborts + c.userAborts
}

func (t *wordThread) Run(fn func(Txn) error) error         { return t.run(false, fn) }
func (t *wordThread) RunReadOnly(fn func(Txn) error) error { return t.run(true, fn) }

// run saves and restores the per-transaction slots, so a nested Run on the
// same Thread cannot leave the outer retry loop with a nil closure. (A
// nested transaction's box tracking starts fresh; the outer attempt's
// pending boxes are dropped untracked — they leak rather than dangle, the
// safe direction.)
func (t *wordThread) run(readOnly bool, fn func(Txn) error) error {
	prevFn, prevAttempts, prevCur := t.fn, t.attempts, t.cur
	t.fn, t.attempts = fn, 0
	t.pending = t.pending[:0]
	t.attemptBoxed = false
	var err error
	if readOnly {
		err = t.th.RunReadOnly(t.step)
	} else {
		err = t.th.Run(t.step)
	}
	t.counters.record(t.attempts, err)
	t.counters.abortReasons = t.th.AbortCounts()
	if err == nil {
		if t.attemptBoxed {
			t.counters.boxedCommits++
		}
		t.pending = t.pending[:0] // committed: the boxes are live
	} else if len(t.pending) > 0 {
		// User error: the final attempt never committed either.
		t.eng.freeBoxes(t.pending)
		t.pending = t.pending[:0]
	}
	t.fn, t.attempts, t.cur = prevFn, prevAttempts, prevCur
	return err
}

type wordTxn struct {
	th *wordThread
}

func (t wordTxn) Read(c Cell) (any, error) {
	w, err := t.th.cur.Load(wordstm.Addr(wordCellOf(c)))
	if err != nil {
		return nil, err
	}
	return t.th.eng.decode(w), nil
}

func (t wordTxn) Write(c Cell, v any) error {
	w, boxIdx := t.th.eng.encode(v)
	if boxIdx >= 0 {
		t.th.pending = append(t.th.pending, boxIdx)
		t.th.attemptBoxed = true
	}
	return t.th.cur.Store(wordstm.Addr(wordCellOf(c)), w)
}

func (t wordTxn) ReadInt(c Cell) (int64, bool, error) {
	w, err := t.th.cur.Load(wordstm.Addr(wordCellOf(c)))
	if err != nil {
		return 0, false, err
	}
	if w&1 == 1 {
		return w >> 1, true, nil
	}
	// Ints whose magnitude exceeds the 63-bit immediate range live in the
	// side table; the numeric lane still serves them, so Get[int] and
	// Get[int64] round-trip the full 64-bit range like every other backend.
	switch n := t.th.eng.decode(w).(type) {
	case int:
		return int64(n), true, nil
	case int64:
		return n, true, nil
	}
	return 0, false, nil
}

func (t wordTxn) WriteInt(c Cell, v int64) error {
	if n := int(v); n > -immediateMax && n < immediateMax {
		return t.th.cur.Store(wordstm.Addr(wordCellOf(c)), int64(n)<<1|1)
	}
	return t.Write(c, int(v)) // |v| ≥ 2⁶²: the word cannot hold it tagged
}

func (t wordTxn) UpdateInt(c Cell, f func(int64) int64) (bool, error) {
	return updateIntVia(t, c, f)
}

func wordCellOf(c Cell) wordCell {
	a, ok := c.(wordCell)
	if !ok {
		panic(fmt.Sprintf("engine: cell of type %T used with the wordstm backend", c))
	}
	return a
}
