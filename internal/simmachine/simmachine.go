// Package simmachine is a discrete-event simulation of a cache-coherent
// multiprocessor running the paper's disjoint-update workload (§4.2). It
// exists because reproducing Figure 2's *scalability* shape requires real
// parallel hardware: on this reproduction's single-CPU host, goroutines
// interleave on one core, so neither the coherence contention on a shared
// counter nor linear clock-based speedup can physically appear. The
// simulator substitutes a mechanism-level model of the 16-CPU Altix:
//
//   - Every simulated CPU executes the LSA-RT disjoint-update loop: one
//     time-base read at transaction start, per-object open bookkeeping, one
//     new-timestamp acquisition at commit, per-object commit validation.
//   - The shared-counter time base is one cache line: a read costs a local
//     hit unless another CPU has written the line since this CPU's last
//     access (then it is a remote miss); the commit's fetch-and-add both
//     pays the transfer and *serializes* on the line's availability — the
//     bottleneck the paper measures.
//   - The hardware-clock time base is a per-CPU register read with fixed
//     latency (the MMTimer's 7–8 ticks ≈ 375 ns) and no shared state.
//
// The same STM bookkeeping costs apply to both time bases, so the simulated
// curves differ only in time-base behaviour — exactly the isolation the
// workload was designed for. Absolute numbers depend on the calibrated cost
// model; the reproduced claims are the shapes: flat/degrading counter
// throughput for short transactions, linear clock scaling, narrowing gap as
// transactions grow, and the clock's visible single-thread overhead for
// very short transactions.
package simmachine

import (
	"container/heap"
	"fmt"
)

// TimeBaseKind selects the simulated time base.
type TimeBaseKind int

const (
	// Counter is the shared integer counter.
	Counter TimeBaseKind = iota
	// TL2Counter is the shared counter with commit-timestamp sharing: a
	// failed C&S piggybacks on the concurrent increment instead of
	// retrying. The line transfer still happens; only the serialization
	// per committer is capped at one attempt.
	TL2Counter
	// HWClock is a local hardware clock register (MMTimer-like).
	HWClock
)

// String renders the kind for reports.
func (k TimeBaseKind) String() string {
	switch k {
	case Counter:
		return "SimCounter"
	case TL2Counter:
		return "SimTL2Counter"
	case HWClock:
		return "SimMMTimer"
	default:
		return "invalid"
	}
}

// CostModel holds the calibrated costs, in nanoseconds of simulated time.
type CostModel struct {
	// LocalHit is a shared-line access that hits in the local cache.
	LocalHit int64
	// RemoteMiss is a coherence transfer of the counter's cache line
	// between CPUs (ccNUMA remote access).
	RemoteMiss int64
	// ClockRead is one hardware clock register read (the MMTimer takes 7–8
	// of its own 50 ns ticks).
	ClockRead int64
	// StmAccess is the STM bookkeeping per opened object (clone, bounds,
	// write-set append — everything except time-base traffic).
	StmAccess int64
	// StmFixed is the per-transaction fixed overhead (start, commit
	// bookkeeping, status CASes).
	StmFixed int64
	// StmValidate is the per-object commit-time validation cost.
	StmValidate int64
}

// DefaultCosts is calibrated so single-thread throughput and the
// counter-vs-clock crossover land in the same regime as the paper's Altix
// numbers (~1 µs for a 10-access update transaction; remote misses a few
// hundred ns; MMTimer reads ~375 ns).
func DefaultCosts() CostModel {
	return CostModel{
		LocalHit:    4,
		RemoteMiss:  800,
		ClockRead:   375,
		StmAccess:   70,
		StmFixed:    150,
		StmValidate: 10,
	}
}

// Config describes one simulation run.
type Config struct {
	// CPUs is the simulated processor count.
	CPUs int
	// TimeBase selects the time base.
	TimeBase TimeBaseKind
	// Accesses is the number of objects each transaction updates.
	Accesses int
	// Duration is the simulated time horizon in nanoseconds.
	Duration int64
	// Costs is the cost model (zero value → DefaultCosts).
	Costs CostModel
}

// Result is the outcome of a run.
type Result struct {
	// Config echoes the run parameters.
	Config Config
	// Txs is the number of transactions committed within the horizon.
	Txs int64
	// TxPerSec is the simulated throughput.
	TxPerSec float64
	// CounterTransfers counts coherence transfers of the counter line.
	CounterTransfers int64
}

// cpuState is one simulated processor.
type cpuState struct {
	id int
	// now is the CPU's local simulated time.
	now int64
	// lastCounterAccess is when this CPU last touched the counter line.
	lastCounterAccess int64
}

// cpuHeap orders CPUs by local time so transactions interleave globally in
// simulated-time order.
type cpuHeap []*cpuState

func (h cpuHeap) Len() int           { return len(h) }
func (h cpuHeap) Less(i, j int) bool { return h[i].now < h[j].now }
func (h cpuHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *cpuHeap) Push(x any)        { *h = append(*h, x.(*cpuState)) }
func (h *cpuHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// machine is the shared state of the simulated multiprocessor.
type machine struct {
	cfg Config
	// counterAvail is when the counter line is next available for an
	// exclusive (write) access — fetch-and-add serializes here.
	counterAvail int64
	// counterLastWrite is the time of the last write to the counter line;
	// a CPU whose copy is older pays a miss to read it.
	counterLastWrite int64
	// counterOwner is the CPU holding the line exclusively.
	counterOwner int
	transfers    int64
}

// readCounter models a load of the shared counter at local time t.
func (m *machine) readCounter(c *cpuState, t int64) int64 {
	if m.counterLastWrite > c.lastCounterAccess && m.counterOwner != c.id {
		// Invalidated since our last access: fetch a shared copy.
		m.transfers++
		t += m.cfg.Costs.RemoteMiss
	} else {
		t += m.cfg.Costs.LocalHit
	}
	c.lastCounterAccess = t
	return t
}

// bumpCounter models a fetch-and-add (or C&S) at local time t: wait for the
// line, take it exclusively, pay the transfer if it moved.
func (m *machine) bumpCounter(c *cpuState, t int64) int64 {
	if t < m.counterAvail {
		t = m.counterAvail
	}
	if m.counterOwner != c.id {
		m.transfers++
		t += m.cfg.Costs.RemoteMiss
	} else {
		t += m.cfg.Costs.LocalHit
	}
	m.counterOwner = c.id
	m.counterLastWrite = t
	m.counterAvail = t
	c.lastCounterAccess = t
	return t
}

// getTime models the transaction-start time-base read.
func (m *machine) getTime(c *cpuState, t int64) int64 {
	if m.cfg.TimeBase == HWClock {
		return t + m.cfg.Costs.ClockRead
	}
	return m.readCounter(c, t)
}

// getNewTS models the commit-time new-timestamp acquisition.
func (m *machine) getNewTS(c *cpuState, t int64) int64 {
	switch m.cfg.TimeBase {
	case HWClock:
		// Strictly-greater is free: the read latency exceeds a tick.
		return t + m.cfg.Costs.ClockRead
	case TL2Counter:
		// A C&S needs a prior load of the expected value, and on failure
		// the shared fresh value still has to be fetched from the line that
		// just moved — either way the committer pays the same coherence
		// transfer a fetch-and-add pays. Sharing only saves software retry
		// loops, which hardware fetch-and-add never had. This is why the
		// paper found the optimization "showed no advantages" (§4.2).
		t = m.readCounter(c, t)
		return m.bumpCounter(c, t)
	default:
		return m.bumpCounter(c, t)
	}
}

// Run executes the simulation.
func Run(cfg Config) (Result, error) {
	if cfg.CPUs <= 0 {
		return Result{}, fmt.Errorf("simmachine: CPUs must be positive, got %d", cfg.CPUs)
	}
	if cfg.Accesses <= 0 {
		return Result{}, fmt.Errorf("simmachine: Accesses must be positive, got %d", cfg.Accesses)
	}
	if cfg.Duration <= 0 {
		return Result{}, fmt.Errorf("simmachine: Duration must be positive, got %d", cfg.Duration)
	}
	if cfg.Costs == (CostModel{}) {
		cfg.Costs = DefaultCosts()
	}
	m := &machine{cfg: cfg, counterOwner: -1}
	h := make(cpuHeap, cfg.CPUs)
	for i := range h {
		// Stagger starts by a few ns so CPUs do not tick in lockstep.
		h[i] = &cpuState{id: i, now: int64(i) % 7}
	}
	heap.Init(&h)
	var txs int64
	for {
		c := h[0]
		if c.now >= cfg.Duration {
			break
		}
		t := c.now + cfg.Costs.StmFixed
		// Start: read the current time (Algorithm 2 line 3).
		t = m.getTime(c, t)
		// Open k objects in write mode: bookkeeping only — the objects are
		// private, so no coherence traffic and no conflicts.
		t += int64(cfg.Accesses) * cfg.Costs.StmAccess
		// Commit: acquire the commit timestamp, then validate the k
		// entries (Algorithm 2 lines 41–48).
		t = m.getNewTS(c, t)
		t += int64(cfg.Accesses) * cfg.Costs.StmValidate
		c.now = t
		if t <= cfg.Duration {
			txs++
		}
		heap.Fix(&h, 0)
	}
	return Result{
		Config:           cfg,
		Txs:              txs,
		TxPerSec:         float64(txs) / (float64(cfg.Duration) / 1e9),
		CounterTransfers: m.transfers,
	}, nil
}
