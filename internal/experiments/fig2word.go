package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
	"repro/internal/wordstm"
)

// Fig2Word runs the Figure 2 workload on the word-based LSA engine: §1.1
// states the time-based approach applies to word-based STMs unchanged, and
// this experiment demonstrates it — the same disjoint-update sweep, the
// same pluggable time bases, a different memory representation. Only exact
// bases are eligible (lock words cannot carry deviations).
func Fig2Word(cfg Fig2Config) (*Fig2Result, error) {
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = DefaultSizes
	}
	if len(cfg.Threads) == 0 {
		cfg.Threads = DefaultThreads
	}
	if len(cfg.TimeBases) == 0 {
		cfg.TimeBases = []string{"counter", "mmtimer"}
	}
	if cfg.Duration == 0 {
		cfg.Duration = 300 * time.Millisecond
	}
	res := &Fig2Result{
		Table: stats.NewTable("accesses", "timebase", "threads", "tx/s", "Mtx/s"),
	}
	for _, size := range cfg.Sizes {
		for _, tbName := range cfg.TimeBases {
			for _, threads := range cfg.Threads {
				p, err := runFig2WordPoint(tbName, size, threads, cfg)
				if err != nil {
					return nil, err
				}
				res.Points = append(res.Points, p)
				res.Table.AddRowf(size, p.TimeBase, threads,
					fmt.Sprintf("%.0f", p.MTxPerS*1e6),
					fmt.Sprintf("%.4f", p.MTxPerS))
			}
		}
	}
	return res, nil
}

func runFig2WordPoint(tbName string, size, threads int, cfg Fig2Config) (Fig2Point, error) {
	tb, err := NewTimeBase(tbName, threads)
	if err != nil {
		return Fig2Point{}, err
	}
	// Per-worker private regions, twice the transaction size, as in the
	// object-based workload.
	region := 2 * size
	s, err := wordstm.New(tb, threads*region)
	if err != nil {
		return Fig2Point{}, err
	}
	var stop atomic.Bool
	counts := make([]padCount, threads)
	var wg sync.WaitGroup
	errs := make(chan error, threads)
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := s.Thread(id)
			base := id * region
			offset := 0
			for !stop.Load() {
				start := offset
				offset = (offset + size) % region
				err := th.Run(func(tx *wordstm.Tx) error {
					for i := 0; i < size; i++ {
						a := wordstm.Addr(base + (start+i)%region)
						v, err := tx.Load(a)
						if err != nil {
							return err
						}
						if err := tx.Store(a, v+1); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					errs <- fmt.Errorf("fig2word worker %d: %w", id, err)
					return
				}
				counts[id].n.Add(1)
			}
		}(id)
	}
	warmup := cfg.Warmup
	if warmup == 0 {
		warmup = cfg.Duration / 5
	}
	time.Sleep(warmup)
	before := uint64(0)
	for i := range counts {
		before += counts[i].n.Load()
	}
	t0 := time.Now()
	time.Sleep(cfg.Duration)
	after := uint64(0)
	for i := range counts {
		after += counts[i].n.Load()
	}
	el := time.Since(t0).Seconds()
	stop.Store(true)
	wg.Wait()
	close(errs)
	if err, ok := <-errs; ok {
		return Fig2Point{}, err
	}
	tput := float64(after-before) / el
	return Fig2Point{
		Size:     size,
		TimeBase: tb.Name() + "/word",
		Threads:  threads,
		MTxPerS:  tput / 1e6,
	}, nil
}
