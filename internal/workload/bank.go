package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
)

// Bank is the classic STM bank: transfer transactions move money between
// two random accounts; audit transactions read every account and check the
// conserved total. Audits run read-only, exercising the multi-version
// snapshot path on engines that have one.
type Bank struct {
	// Accounts is the number of accounts (default 64).
	Accounts int
	// Initial is each account's starting balance (default 1000).
	Initial int
	// AuditRatio is the fraction of transactions that are read-only audits
	// (default 0.1).
	AuditRatio float64
	// Seed seeds the per-worker RNGs.
	Seed int64

	eng   engine.Engine
	cells []engine.Cell
}

// Name implements harness.Workload.
func (b *Bank) Name() string { return fmt.Sprintf("bank/%d", b.accounts()) }

func (b *Bank) accounts() int {
	if b.Accounts == 0 {
		return 64
	}
	return b.Accounts
}

func (b *Bank) initial() int {
	if b.Initial == 0 {
		return 1000
	}
	return b.Initial
}

func (b *Bank) auditRatio() float64 {
	if b.AuditRatio == 0 {
		return 0.1
	}
	return b.AuditRatio
}

// Init implements harness.Workload.
func (b *Bank) Init(eng engine.Engine, workers int) error {
	if b.accounts() < 2 {
		return fmt.Errorf("workload: Bank needs ≥ 2 accounts, got %d", b.accounts())
	}
	b.eng = eng
	b.cells = make([]engine.Cell, b.accounts())
	for i := range b.cells {
		b.cells[i] = eng.NewCell(b.initial())
	}
	return nil
}

// Step implements harness.Workload. The transaction closures are built once
// per worker and parameterized through captured locals, and balances move
// through the typed accessors' unboxed int lane — a steady-state transfer
// allocates nothing in the workload layer.
func (b *Bank) Step(eng engine.Engine, th engine.Thread, id int) func() error {
	rng := rand.New(rand.NewSource(b.Seed + int64(id)*7919 + 1))
	expect := b.accounts() * b.initial()
	var from, to, amount int
	audit := func(tx engine.Txn) error {
		sum := 0
		for _, c := range b.cells {
			v, err := engine.Get[int](tx, c)
			if err != nil {
				return err
			}
			sum += v
		}
		if sum != expect {
			return fmt.Errorf("bank: audit saw %d, want %d", sum, expect)
		}
		return nil
	}
	transfer := func(tx engine.Txn) error {
		fv, err := engine.Get[int](tx, b.cells[from])
		if err != nil {
			return err
		}
		tv, err := engine.Get[int](tx, b.cells[to])
		if err != nil {
			return err
		}
		if err := engine.Set(tx, b.cells[from], fv-amount); err != nil {
			return err
		}
		return engine.Set(tx, b.cells[to], tv+amount)
	}
	return func() error {
		if rng.Float64() < b.auditRatio() {
			return th.RunReadOnly(audit)
		}
		from = rng.Intn(len(b.cells))
		to = rng.Intn(len(b.cells) - 1)
		if to >= from {
			to++
		}
		amount = 1 + rng.Intn(10)
		return th.Run(transfer)
	}
}

// Total sums all balances in a read-only transaction.
func (b *Bank) Total() (int, error) {
	th := b.eng.Thread(1 << 20)
	total := 0
	err := th.RunReadOnly(func(tx engine.Txn) error {
		total = 0
		for _, c := range b.cells {
			v, err := engine.Get[int](tx, c)
			if err != nil {
				return err
			}
			total += v
		}
		return nil
	})
	return total, err
}
