// Package durable wraps any registered STM engine into a recoverable store:
// a write-ahead log of redo records plus a compacting snapshot, replayed at
// construction, turn a crash back into the last acknowledged state.
//
// # Design
//
// The wrapper is engine-agnostic — it never sees a backend's internals, only
// the Engine/Thread/Txn surface — so the commit order it journals must come
// from the inner engine itself. It does this with a ticket cell: a hidden
// transactional cell holding the last assigned commit sequence number. The
// first write of every transaction read-increments the ticket inside the
// same transaction, so the inner engine's own serializability totally orders
// tickets consistently with every data write; an aborted attempt discards
// its ticket write, so sequence numbers stay dense. After the inner commit
// returns, the thread hands its redo record to the log's sequencer, which
// admits appends strictly in ticket order — the on-disk log is therefore
// always a seq-dense prefix of the commit order, and recovery treats a gap
// as corruption. The ticket makes every pair of update transactions
// conflict; that contention is the engine-agnostic durability tax, and
// read-only transactions never pay it.
//
// Recovery runs inside Wrap, before the application creates any cell: the
// snapshot (if present) and every segment above its watermark are folded
// into a cellID → value map, a torn final record is truncated (never
// refused), and NewCell substitutes the recovered value for the caller's
// initial. The contract is that the application creates its cells in a
// deterministic order across restarts — cmd/stmserve creates its whole
// keyspace at boot, in key order, before serving.
//
// Redo records carry typed val.Value payloads, so only WAL-serializable
// values may be written through a durable engine: the numeric lane plus
// boxed nil, bool, string, float64 and []byte. Writes of anything else fail
// at Write time with ErrUnsupportedPayload, before a commit can happen.
package durable

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/val"
)

// ErrStandby reports an update transaction refused because the engine is a
// replication standby: a follower applies the primary's redo stream and
// nothing else, so local updates are rejected until Promote ends standby.
// Read-only transactions are always served.
var ErrStandby = errors.New("durable: standby replica refuses update transactions")

// defaultSnapshotBytes triggers compaction after 8 MiB of appended redo
// records.
const defaultSnapshotBytes = 8 << 20

// snapThreadID is the inner-engine worker id of the snapshot capture
// thread, far above any real worker's dense 0..N−1 ids. applyThreadID is
// the replication-apply thread's id, equally far out of the dense range.
const (
	snapThreadID  = 1 << 16
	applyThreadID = 1<<16 + 1
)

// Options parameterize Wrap. The zero value is usable: a temp WAL
// directory, group-commit fsync, 8 MiB compaction threshold.
type Options struct {
	// Dir is the WAL directory. Empty creates a fresh temp directory —
	// durability within the process run only (benches, conformance); real
	// recovery needs a path that survives restarts.
	Dir string
	// Fsync is FsyncAlways, FsyncGroup or FsyncNever ("" = group).
	Fsync string
	// SnapshotBytes of appended redo records trigger a background snapshot
	// compaction. 0 selects the 8 MiB default; negative disables
	// compaction.
	SnapshotBytes int64
	// SegmentBytes rotates log segments (0 = 4 MiB default).
	SegmentBytes int64
	// GroupInterval bounds the group-commit flush wait (0 = 2 ms default).
	GroupInterval time.Duration
	// Crash arms the deterministic fault-injection seam (nil = no faults).
	Crash *Crashpoints
}

// Engine wraps an inner engine with the WAL. It implements engine.Engine
// and engine.Durable.
type Engine struct {
	inner engine.Engine
	name  string
	log   *Log
	opt   Options
	info  engine.DurabilityInfo

	mu        sync.Mutex
	cells     []engine.Cell
	recovered map[uint64]val.Value // never mutated after Wrap

	seqCell engine.Cell // the ticket cell, on the inner engine

	bytesSince atomic.Int64
	compacting atomic.Bool
	compactWG  sync.WaitGroup
	snapMu     sync.Mutex // snapThread is an engine Thread: single-goroutine
	snapOnce   sync.Once
	snapThread engine.Thread

	// Replication state. standby refuses local update transactions (the
	// follower role); gate, when set, is consulted after every journaled
	// commit (the primary's sync-replication ack gate); the apply thread
	// replays the primary's redo records on a follower.
	standby     atomic.Bool
	gate        atomic.Pointer[func(seq uint64) error]
	applyMu     sync.Mutex // applyThread is single-goroutine too
	applyOnce   sync.Once
	applyThread engine.Thread
}

// Wrap recovers the WAL directory's state and returns a durable engine over
// inner. Recovery happens here — before the first NewCell — so the caller
// must not have created any cell on inner yet, and must create its cells in
// the same order as the run that produced the log.
func Wrap(inner engine.Engine, opt Options) (*Engine, error) {
	dir := opt.Dir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "durable-wal-"); err != nil {
			return nil, err
		}
	}
	rec, err := recoverDir(dir)
	if err != nil {
		return nil, err
	}
	if opt.SnapshotBytes == 0 {
		opt.SnapshotBytes = defaultSnapshotBytes
	}
	e := &Engine{
		inner:     inner,
		name:      "durable/" + inner.Name(),
		opt:       opt,
		recovered: rec.values,
	}
	// The ticket cell is created before any application cell and resumes
	// from the recovered sequence, so commit numbering continues densely
	// across restarts.
	e.seqCell = inner.NewCell(int64(rec.lastSeq))
	l, err := openLog(logConfig{
		dir:           dir,
		policy:        opt.Fsync,
		segmentBytes:  opt.SegmentBytes,
		groupInterval: opt.GroupInterval,
		startSeq:      rec.lastSeq + 1,
		crash:         opt.Crash,
	})
	if err != nil {
		return nil, err
	}
	e.log = l
	e.info = engine.DurabilityInfo{
		WALDir:           dir,
		FsyncPolicy:      l.cfg.policy,
		RecoveredCommits: rec.commits,
		RecoveredSeq:     rec.lastSeq,
		SnapshotSeq:      rec.snapSeq,
		TornTailBytes:    rec.tornBytes,
	}
	return e, nil
}

// dcell pairs the wrapper's stable cell id (the WAL's key) with the inner
// engine's handle.
type dcell struct {
	id    uint64
	inner engine.Cell
}

// Name returns "durable/<inner name>".
func (e *Engine) Name() string { return e.name }

// NewCell allocates the next cell id and substitutes the recovered value
// for initial when the log knows one. Ids are assigned in creation order —
// the deterministic-creation-order contract recovery depends on.
func (e *Engine) NewCell(initial any) engine.Cell {
	e.mu.Lock()
	id := uint64(len(e.cells))
	if v, ok := e.recovered[id]; ok {
		initial = v.Load()
	}
	c := e.inner.NewCell(initial)
	e.cells = append(e.cells, c)
	e.mu.Unlock()
	return &dcell{id: id, inner: c}
}

// Thread wraps an inner thread with the journaling transaction runner.
func (e *Engine) Thread(id int) engine.Thread {
	return &dthread{e: e, inner: e.inner.Thread(id)}
}

// Stats delegates to the inner engine (snapshot-capture transactions are
// counted like any other read-only commit).
func (e *Engine) Stats() engine.Stats { return e.inner.Stats() }

// DurabilityInfo reports the persistence configuration and what recovery
// found at boot.
func (e *Engine) DurabilityInfo() engine.DurabilityInfo { return e.info }

// WALSync forces buffered records to stable storage regardless of policy.
func (e *Engine) WALSync() error { return e.log.Sync() }

// WALClose flushes, syncs and closes the log after waiting out any
// in-flight compaction. The engine stays readable; update transactions fail
// from here on. Idempotent.
func (e *Engine) WALClose() error {
	e.compactWG.Wait()
	return e.log.Close()
}

// Crashed returns the sticky crash error, or nil. After a crashpoint or
// I/O error the in-memory engine may be ahead of the disk image, so every
// transaction is refused; discard the engine and Wrap a fresh one over the
// same directory.
func (e *Engine) Crashed() error { return e.log.Err() }

// maybeCompact starts a background snapshot when enough redo bytes
// accumulated since the last one (single-flight).
func (e *Engine) maybeCompact() {
	if e.opt.SnapshotBytes < 0 || e.bytesSince.Load() < e.opt.SnapshotBytes {
		return
	}
	if !e.compacting.CompareAndSwap(false, true) {
		return
	}
	e.compactWG.Add(1)
	go func() {
		defer e.compactWG.Done()
		defer e.compacting.Store(false)
		e.compact()
	}()
}

// compact captures a consistent snapshot and installs it. The capture is
// one read-only inner transaction over the ticket cell and every data cell:
// serializability makes the ticket value s the exact watermark of the
// captured state (every commit ≤ s is in it, nothing above s is). Cells can
// be created concurrently, so after the capture returns the cell count is
// re-checked: if it grew, a commit ≤ s could have written a cell the
// capture missed (its NewCell, which appends under mu, happened before that
// commit, which happened before the capture returned — so the growth is
// visible here), and the capture retries over the larger set. Compaction is
// an optimization, so after bounded retries it simply gives up until the
// next trigger.
func (e *Engine) compact() {
	if e.log.Err() != nil {
		return
	}
	watermark, entries, err := e.CaptureSnapshot()
	if err != nil {
		// Compaction is an optimization: an unencodable cell or exhausted
		// retries just defers it until the next trigger.
		return
	}
	if e.log.WriteSnapshot(watermark, entries) == nil {
		e.bytesSince.Store(0)
	}
}

// CaptureSnapshot returns a consistent full-state snapshot: the commit
// watermark and every cell's value at exactly that watermark. The capture is
// one read-only inner transaction over the ticket cell and every data cell:
// serializability makes the ticket value s the exact watermark of the
// captured state (every commit ≤ s is in it, nothing above s is). Cells can
// be created concurrently, so after the capture returns the cell count is
// re-checked: if it grew, a commit ≤ s could have written a cell the
// capture missed (its NewCell, which appends under mu, happened before that
// commit, which happened before the capture returned — so the growth is
// visible here), and the capture retries over the larger set. Compaction
// and the replication primary's snapshot-then-tail catch-up both feed off
// this.
func (e *Engine) CaptureSnapshot() (uint64, []Entry, error) {
	e.snapOnce.Do(func() { e.snapThread = e.inner.Thread(snapThreadID) })
	e.snapMu.Lock() // the capture thread is single-goroutine
	defer e.snapMu.Unlock()
	for try := 0; try < 8; try++ {
		e.mu.Lock()
		n := len(e.cells)
		cells := make([]engine.Cell, n)
		copy(cells, e.cells)
		e.mu.Unlock()

		var watermark int64
		vals := make([]val.Value, n)
		err := e.snapThread.RunReadOnly(func(tx engine.Txn) error {
			s, err := engine.Get[int64](tx, e.seqCell)
			if err != nil {
				return err
			}
			watermark = s
			for i, c := range cells {
				v, err := tx.Read(c)
				if err != nil {
					return err
				}
				vals[i] = val.OfAny(v)
			}
			return nil
		})
		if err != nil {
			return 0, nil, err
		}
		e.mu.Lock()
		grown := len(e.cells) > n
		e.mu.Unlock()
		if grown {
			continue
		}

		entries := make([]Entry, 0, n)
		for i, v := range vals {
			if !EncodableValue(v) {
				// A cell was created with a non-serializable initial and
				// never overwritten; it cannot be snapshotted.
				return 0, nil, fmt.Errorf("%w: cell %d", ErrUnsupportedPayload, i)
			}
			entries = append(entries, Entry{ID: uint64(i), V: v})
		}
		// Recovered cells the application has not re-created yet still
		// belong to the durable state: fold them in so a snapshot never
		// drops them.
		for id, v := range e.recovered {
			if id >= uint64(n) {
				entries = append(entries, Entry{ID: id, V: v})
			}
		}
		return uint64(watermark), entries, nil
	}
	return 0, nil, errors.New("durable: snapshot capture kept losing races with cell creation")
}

// SnapshotFrame captures a consistent snapshot (see CaptureSnapshot) and
// returns its watermark plus a complete framed 'S' record — the bytes a
// replication primary ships for follower catch-up and slow-follower resync,
// identical in format to an on-disk snapshot frame.
func (e *Engine) SnapshotFrame() (uint64, []byte, error) {
	seq, entries, err := e.CaptureSnapshot()
	if err != nil {
		return 0, nil, err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
	b := make([]byte, frameHeaderLen, frameHeaderLen+64+16*len(entries))
	b, err = appendSnapshotPayload(b, seq, entries)
	if err != nil {
		return 0, nil, err
	}
	return seq, frameAround(b), nil
}

// AppendedSeq returns the highest commit sequence appended to the log — the
// primary's replication high-water mark, and on a follower the applied-seq
// watermark (the apply path journals each replicated commit at its original
// seq).
func (e *Engine) AppendedSeq() uint64 { return e.log.AppendedSeq() }

// TapCommits installs tap as the log's append observer: it sees every
// journaled commit frame in seq order, called under the log mutex with
// frame bytes valid only during the call. The replication primary feeds its
// follower send buffers from here; the tap must copy and never block.
func (e *Engine) TapCommits(tap func(seq uint64, frame []byte)) { e.log.setTap(tap) }

// SetCommitGate installs gate (nil clears): after a transaction's redo
// record is journaled, its thread calls gate(seq) and returns the gate's
// error as the transaction error. The commit itself is already durable and
// journaled — the gate only withholds the acknowledgment, which is exactly
// the sync-replication semantic: "committed locally but not yet confirmed
// replicated" surfaces as an error without blocking the log.
func (e *Engine) SetCommitGate(gate func(seq uint64) error) {
	if gate == nil {
		e.gate.Store(nil)
		return
	}
	e.gate.Store(&gate)
}

// SetStandby switches the follower role on or off. In standby, update
// transactions are refused with ErrStandby before the inner engine can
// commit anything; reads are served normally. Promote is SetStandby(false)
// after sealing the log.
func (e *Engine) SetStandby(on bool) { e.standby.Store(on) }

// Standby reports whether the engine is in follower standby.
func (e *Engine) Standby() bool { return e.standby.Load() }

// applyCells resolves redo-entry cell ids to inner-engine cells. Unknown
// ids are a keyspace mismatch between primary and follower (the
// deterministic-creation-order contract extends across the replica set:
// both sides must create the same cells in the same order).
func (e *Engine) applyCells(writes []Entry) ([]engine.Cell, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cells := make([]engine.Cell, len(writes))
	for i, w := range writes {
		if w.ID >= uint64(len(e.cells)) {
			return nil, fmt.Errorf("durable: replicated write to unknown cell %d (have %d; keyspace mismatch with primary?)", w.ID, len(e.cells))
		}
		cells[i] = e.cells[w.ID]
	}
	return cells, nil
}

// ApplyReplicated replays one primary commit on a follower: it applies the
// record's writes (and advances the ticket cell to seq) in one inner
// transaction, then journals the record to the follower's own log at the
// same seq — so the follower's WAL is byte-compatible with the primary's
// history and commit numbering continues seamlessly across a promotion.
// Records must arrive in dense seq order; a gap is a stream error the
// caller handles by resyncing from a snapshot.
func (e *Engine) ApplyReplicated(seq uint64, writes []Entry) error {
	if err := e.log.usable(); err != nil {
		return err
	}
	e.applyOnce.Do(func() { e.applyThread = e.inner.Thread(applyThreadID) })
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	if want := e.log.AppendedSeq() + 1; seq != want {
		return fmt.Errorf("durable: replicated record out of order: got seq %d, want %d", seq, want)
	}
	cells, err := e.applyCells(writes)
	if err != nil {
		return err
	}
	err = e.applyThread.Run(func(tx engine.Txn) error {
		if err := engine.Set(tx, e.seqCell, int64(seq)); err != nil {
			return err
		}
		for i, w := range writes {
			if err := tx.Write(cells[i], w.V.Load()); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	// The inner commit succeeded; the record must reach the follower's log
	// (same invariant as the primary-side Run path).
	b := append(make([]byte, 0, frameHeaderLen+16+16*len(writes)), framePad[:]...)
	b, encErr := appendCommitPayload(b, seq, writes)
	if encErr != nil {
		e.log.mu.Lock()
		e.log.fail(fmt.Errorf("durable: replicated payload became unencodable: %w", encErr))
		e.log.mu.Unlock()
		return encErr
	}
	n, err := e.log.Commit(seq, b)
	if err != nil {
		return err
	}
	e.bytesSince.Add(n)
	e.maybeCompact()
	return nil
}

// InstallReplicaSnapshot replaces the follower's state wholesale with a
// primary snapshot at watermark seq: the snapshot is written to the
// follower's own WAL first (so a crash mid-install recovers to either the
// old state or the new snapshot, never between), the log sequencer jumps to
// seq+1 on a fresh segment, and then one inner transaction overwrites every
// cell and the ticket. Serving reads interleave safely — they see the old
// state or the new one atomically. Refuses to regress behind already-applied
// records.
func (e *Engine) InstallReplicaSnapshot(seq uint64, values map[uint64]val.Value) error {
	if err := e.log.usable(); err != nil {
		return err
	}
	e.applyOnce.Do(func() { e.applyThread = e.inner.Thread(applyThreadID) })
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	if cur := e.log.AppendedSeq(); seq < cur {
		return fmt.Errorf("durable: replica snapshot at %d would regress applied seq %d", seq, cur)
	}
	entries := make([]Entry, 0, len(values))
	for id, v := range values {
		entries = append(entries, Entry{ID: id, V: v})
	}
	// Sort before resolving cells: WriteSnapshot sorts entries in place, and
	// cells[i] must keep matching entries[i] through the apply below.
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
	cells, err := e.applyCells(entries)
	if err != nil {
		return err
	}
	if err := e.log.WriteSnapshot(seq, entries); err != nil {
		return err
	}
	if err := e.log.skipTo(seq + 1); err != nil {
		return err
	}
	err = e.applyThread.Run(func(tx engine.Txn) error {
		if err := engine.Set(tx, e.seqCell, int64(seq)); err != nil {
			return err
		}
		for i, en := range entries {
			if err := tx.Write(cells[i], en.V.Load()); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		// The on-disk image already moved to the snapshot; memory failing to
		// follow leaves the two divergent, so wedge rather than limp on.
		e.log.mu.Lock()
		e.log.fail(fmt.Errorf("durable: replica snapshot apply failed after install: %w", err))
		e.log.mu.Unlock()
		return err
	}
	e.bytesSince.Store(0)
	return nil
}

// dthread is the journaling thread wrapper: it runs the caller's closure
// over a journaling transaction, and after the inner commit hands the redo
// record to the log sequencer.
type dthread struct {
	e       *Engine
	inner   engine.Thread
	tx      dtxn
	scratch []byte
}

func (t *dthread) ID() int { return t.inner.ID() }

// Attempts implements engine.AttemptCounter by delegation.
func (t *dthread) Attempts() uint64 {
	if ac, ok := t.inner.(engine.AttemptCounter); ok {
		return ac.Attempts()
	}
	return 0
}

var framePad [frameHeaderLen]byte

func (t *dthread) Run(fn func(engine.Txn) error) error {
	if err := t.e.log.Err(); err != nil {
		return err
	}
	tx := &t.tx
	err := t.inner.Run(func(itx engine.Txn) error {
		tx.reset(t.e, itx)
		return fn(tx)
	})
	if err != nil {
		return err
	}
	if tx.seq == 0 {
		return nil // no writes: nothing to journal
	}
	// The inner commit succeeded; the record MUST reach the sequencer, or
	// every later ticket waits forever. Encoding cannot fail here (Write
	// screened every payload), so an error is an internal invariant break:
	// wedge the log so waiters wake instead of hanging.
	b := append(t.scratch[:0], framePad[:]...)
	b, encErr := appendCommitPayload(b, tx.seq, tx.writes)
	t.scratch = b[:0]
	if encErr != nil {
		t.e.log.mu.Lock()
		t.e.log.fail(fmt.Errorf("durable: committed payload became unencodable: %w", encErr))
		t.e.log.mu.Unlock()
		return encErr
	}
	n, err := t.e.log.Commit(tx.seq, b)
	if err != nil {
		return err
	}
	t.e.bytesSince.Add(n)
	t.e.maybeCompact()
	if g := t.e.gate.Load(); g != nil {
		// Sync replication: the commit is durable and journaled, but the
		// client ack waits on the replication gate. A gate error means
		// "committed locally, not confirmed replicated" — the safe direction,
		// since callers then do not count it as acknowledged.
		if err := (*g)(tx.seq); err != nil {
			return err
		}
	}
	return nil
}

func (t *dthread) RunReadOnly(fn func(engine.Txn) error) error {
	if err := t.e.log.Err(); err != nil {
		return err
	}
	tx := &t.tx
	return t.inner.RunReadOnly(func(itx engine.Txn) error {
		tx.reset(t.e, itx)
		return fn(tx)
	})
}

// dtxn is the journaling transaction: reads pass through; writes screen the
// payload for WAL-serializability, take the commit ticket on first use, and
// buffer the redo entry.
type dtxn struct {
	e      *Engine
	itx    engine.Txn
	iint   engine.IntTxn // itx's lane, nil if absent
	seq    uint64
	writes []Entry
}

func (t *dtxn) reset(e *Engine, itx engine.Txn) {
	t.e = e
	t.itx = itx
	t.iint, _ = itx.(engine.IntTxn)
	t.seq = 0
	t.writes = t.writes[:0]
}

// ticket read-increments the sequence cell inside the transaction — the
// serialization-order ticket (see the package comment).
func (t *dtxn) ticket() error {
	if t.seq != 0 {
		return nil
	}
	// Refuse before the inner engine can commit: after a crash the memory
	// image is untrustworthy, and after an orderly close an update would
	// commit in memory with no journal entry.
	if err := t.e.log.usable(); err != nil {
		return err
	}
	if t.e.standby.Load() {
		return ErrStandby
	}
	s, err := engine.Get[int64](t.itx, t.e.seqCell)
	if err != nil {
		return err
	}
	if err := engine.Set(t.itx, t.e.seqCell, s+1); err != nil {
		return err
	}
	t.seq = uint64(s) + 1
	return nil
}

func (t *dtxn) Read(c engine.Cell) (any, error) {
	return t.itx.Read(c.(*dcell).inner)
}

func (t *dtxn) Write(c engine.Cell, v any) error {
	dc := c.(*dcell)
	w := val.OfAny(v)
	if !EncodableValue(w) {
		return fmt.Errorf("%w: %T", ErrUnsupportedPayload, v)
	}
	if err := t.ticket(); err != nil {
		return err
	}
	if err := t.itx.Write(dc.inner, v); err != nil {
		return err
	}
	t.writes = append(t.writes, Entry{ID: dc.id, V: w})
	return nil
}

func (t *dtxn) ReadInt(c engine.Cell) (int64, bool, error) {
	if t.iint == nil {
		return 0, false, nil
	}
	return t.iint.ReadInt(c.(*dcell).inner)
}

func (t *dtxn) WriteInt(c engine.Cell, v int64) error {
	dc := c.(*dcell)
	if err := t.ticket(); err != nil {
		return err
	}
	if t.iint == nil {
		// Lane writes have canonical dynamic type int; mirror that through
		// the boxed fallback.
		if err := t.itx.Write(dc.inner, int(v)); err != nil {
			return err
		}
	} else if err := t.iint.WriteInt(dc.inner, v); err != nil {
		return err
	}
	t.writes = append(t.writes, Entry{ID: dc.id, V: val.OfInt(int(v))})
	return nil
}

func (t *dtxn) UpdateInt(c engine.Cell, f func(int64) int64) (bool, error) {
	n, ok, err := t.ReadInt(c)
	if !ok || err != nil {
		return ok, err
	}
	return true, t.WriteInt(c, f(n))
}

// Wrapped lists the inner backends registered as "durable/<name>" wrappers.
var Wrapped = []string{"glock", "lsa/shared", "norec"}

func init() {
	for _, base := range Wrapped {
		base := base
		info, ok := engine.Describe(base)
		if !ok {
			panic(fmt.Sprintf("durable: base engine %q not registered", base))
		}
		caps := info.Capabilities
		caps.Durable = true
		caps.Tunables = append(append([]string{}, caps.Tunables...), "wal", "fsync", "snapshot", "segment", "group-interval")
		engine.Register("durable/"+base, engine.Info{
			Summary:      "recoverable " + base + ": redo WAL + compacting snapshot, crash recovery on boot",
			Capabilities: caps,
		}, func(o engine.Options) (engine.Engine, error) {
			inner, err := engine.New(base, o)
			if err != nil {
				return nil, err
			}
			return Wrap(inner, Options{
				Dir:           o.WALDir,
				Fsync:         o.Fsync,
				SnapshotBytes: o.SnapshotBytes,
				SegmentBytes:  o.SegmentBytes,
				GroupInterval: o.GroupInterval,
			})
		})
	}
}
