// Package harness drives throughput experiments over any registered STM
// backend: it spins up worker goroutines, runs a workload for a fixed
// duration with warmup, and reports committed transactions per second — the
// measurement protocol behind the paper's Figure 2, generalized so the same
// scenario runs on every engine from one entry point.
package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
)

// Workload is a benchmarkable transaction mix, written against the
// backend-neutral engine interface.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Init allocates the shared cells for a run with the given worker
	// count. It is called once per Run, before any worker starts.
	Init(eng engine.Engine, workers int) error
	// Step returns the function executed repeatedly by worker id. Each call
	// must run exactly one (retried-until-committed) transaction. The
	// returned closure may keep per-worker state; it is called from a
	// single goroutine.
	Step(eng engine.Engine, th engine.Thread, id int) func() error
}

// Options configure a measurement run.
type Options struct {
	// Workers is the number of concurrent worker goroutines. Must be ≥ 1.
	Workers int
	// Duration is the measured interval. Must be > 0.
	Duration time.Duration
	// Warmup runs the workload before measurement starts (default: 20% of
	// Duration).
	Warmup time.Duration
}

// Result is the outcome of one run.
type Result struct {
	// Workload and Engine identify the configuration.
	Workload string `json:"workload"`
	Engine   string `json:"engine"`
	// Workers is the worker count.
	Workers int `json:"workers"`
	// Elapsed is the measured wall-clock interval.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Txs is the number of transactions committed inside the interval.
	Txs uint64 `json:"txs"`
	// Throughput is Txs per second.
	Throughput float64 `json:"tx_per_s"`
	// AllocsPerCommit and BytesPerCommit are the process-wide heap
	// allocation count and byte deltas (runtime.ReadMemStats Mallocs /
	// TotalAlloc) across the measured interval, divided by Txs — the GC
	// pressure axis of the snapshot. Methodology caveats: the deltas count
	// everything the process allocates during the interval (workload
	// closures, value boxing, the engine, and a few harness timer
	// allocations), so treat them as per-committed-transaction cost of the
	// whole engine+workload stack, not of the STM algorithm alone; aborted
	// attempts' allocations are charged to the commits that survive, which
	// is deliberate — wasted work is real GC pressure.
	AllocsPerCommit float64 `json:"allocs_per_commit"`
	BytesPerCommit  float64 `json:"bytes_per_commit"`
	// Stats are the engine counters accumulated over the whole run
	// (including warmup).
	Stats engine.Stats `json:"stats"`
}

// String renders the result on one line.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s workers=%d tx/s=%.0f (aborts/attempt=%.3f, allocs/commit=%.1f)",
		r.Workload, r.Engine, r.Workers, r.Throughput, r.Stats.AbortRate(), r.AllocsPerCommit)
}

// Validate reports whether the result is a well-formed record of a run that
// actually made progress. It is the record-level half of the bench-smoke
// gate (cmd/benchcheck): an engine that silently wedges under the full
// matrix — workers spinning without committing, or a run so broken the
// fields never got filled in — produces a record this rejects, which `go
// test` never notices because the conformance suite drives every engine
// with bounded iteration counts instead of a measured interval.
func (r Result) Validate() error {
	switch {
	case r.Engine == "":
		return fmt.Errorf("harness: result without engine name: %+v", r)
	case r.Workload == "":
		return fmt.Errorf("harness: result without workload name: %+v", r)
	case r.Workers < 1:
		return fmt.Errorf("harness: %s/%s: workers = %d", r.Workload, r.Engine, r.Workers)
	case r.Elapsed <= 0:
		return fmt.Errorf("harness: %s/%s: non-positive measured interval %v", r.Workload, r.Engine, r.Elapsed)
	case r.Stats.Commits == 0:
		return fmt.Errorf("harness: %s/%s: zero commits over the whole run (engine wedged?)", r.Workload, r.Engine)
	case r.Txs == 0:
		return fmt.Errorf("harness: %s/%s: zero transactions inside the measured interval", r.Workload, r.Engine)
	case r.Throughput <= 0:
		return fmt.Errorf("harness: %s/%s: non-positive throughput %f with %d txs", r.Workload, r.Engine, r.Throughput, r.Txs)
	case r.AllocsPerCommit < 0 || r.BytesPerCommit < 0:
		return fmt.Errorf("harness: %s/%s: negative alloc telemetry (allocs/commit=%f, bytes/commit=%f)",
			r.Workload, r.Engine, r.AllocsPerCommit, r.BytesPerCommit)
	case (r.AllocsPerCommit == 0) != (r.BytesPerCommit == 0):
		// Telemetry is taken from one ReadMemStats delta: allocations and
		// bytes are zero together or positive together. A mismatch means a
		// stripped or hand-edited field.
		return fmt.Errorf("harness: %s/%s: inconsistent alloc telemetry (allocs/commit=%f, bytes/commit=%f)",
			r.Workload, r.Engine, r.AllocsPerCommit, r.BytesPerCommit)
	}
	// Both-zero alloc telemetry is legitimate since the typed value lane:
	// engines like glock and norec commit int-valued workloads with zero
	// process-wide allocations over a whole measured interval. Detecting a
	// snapshot that predates the telemetry entirely is therefore a
	// snapshot-level check (cmd/benchcheck: at least one record must carry
	// nonzero telemetry). Stats.BoxedCommits (the boxed% column) is
	// likewise accepted but never required.
	return nil
}

// padCounter is a per-worker committed-transaction counter on its own cache
// line, so counting does not perturb the contention under study.
type padCounter struct {
	n atomic.Uint64
	_ [56]byte
}

// Run executes the workload and measures steady-state throughput.
func Run(eng engine.Engine, w Workload, opt Options) (Result, error) {
	if opt.Workers < 1 {
		return Result{}, fmt.Errorf("harness: Workers must be ≥ 1, got %d", opt.Workers)
	}
	if opt.Duration <= 0 {
		return Result{}, fmt.Errorf("harness: Duration must be positive, got %v", opt.Duration)
	}
	warmup := opt.Warmup
	if warmup == 0 {
		warmup = opt.Duration / 5
	}
	if err := w.Init(eng, opt.Workers); err != nil {
		return Result{}, fmt.Errorf("harness: init %s on %s: %w", w.Name(), eng.Name(), err)
	}

	counters := make([]padCounter, opt.Workers)
	var stop atomic.Bool
	var start sync.WaitGroup
	var done sync.WaitGroup
	errs := make(chan error, opt.Workers)
	start.Add(1)
	for id := 0; id < opt.Workers; id++ {
		done.Add(1)
		go func(id int) {
			defer done.Done()
			th := eng.Thread(id)
			step := w.Step(eng, th, id)
			start.Wait()
			for !stop.Load() {
				if err := step(); err != nil {
					errs <- fmt.Errorf("worker %d: %w", id, err)
					return
				}
				counters[id].n.Add(1)
			}
		}(id)
	}

	start.Done()
	time.Sleep(warmup)
	// Allocation telemetry: ReadMemStats deltas bracketing the measured
	// interval. Each call stops the world briefly, which is why they sit at
	// the interval edges (outside the throughput measurement t0..elapsed)
	// and never inside it. The microseconds between the commit-counter
	// snapshots and the memstats reads — while workers keep running — are
	// noise proportional to gap/interval, negligible at the default 300 ms
	// and acceptable at CI's 60 ms smoke interval.
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	before := snapshot(counters)
	t0 := time.Now()
	time.Sleep(opt.Duration)
	after := snapshot(counters)
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)
	stop.Store(true)
	done.Wait()
	close(errs)
	if err, ok := <-errs; ok {
		return Result{}, err
	}

	txs := after - before
	r := Result{
		Workload:   w.Name(),
		Engine:     eng.Name(),
		Workers:    opt.Workers,
		Elapsed:    elapsed,
		Txs:        txs,
		Throughput: float64(txs) / elapsed.Seconds(),
		Stats:      eng.Stats(),
	}
	if txs > 0 {
		r.AllocsPerCommit = float64(m1.Mallocs-m0.Mallocs) / float64(txs)
		r.BytesPerCommit = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(txs)
	}
	return r, nil
}

func snapshot(cs []padCounter) uint64 {
	var total uint64
	for i := range cs {
		total += cs[i].n.Load()
	}
	return total
}

// Sweep runs the workload at each worker count with a fresh engine built
// by mkEngine, returning one Result per point. This is the Figure 2 inner
// loop: same workload, growing thread count, fixed backend.
func Sweep(mkEngine func() (engine.Engine, error), w Workload, workerCounts []int, opt Options) ([]Result, error) {
	results := make([]Result, 0, len(workerCounts))
	for _, n := range workerCounts {
		eng, err := mkEngine()
		if err != nil {
			return nil, err
		}
		o := opt
		o.Workers = n
		r, err := Run(eng, w, o)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
	}
	return results, nil
}

// RunAcross runs a fresh instance of each workload on each named backend
// from the engine registry — the cross-engine comparison loop. mkWorkloads
// builds fresh workload values per engine (workloads keep engine-bound
// state after Init, so they cannot be shared between runs).
func RunAcross(engineNames []string, mkWorkloads func() []Workload, engOpt engine.Options, opt Options) ([]Result, error) {
	var results []Result
	for _, name := range engineNames {
		for _, w := range mkWorkloads() {
			eng, err := engine.New(name, engOpt)
			if err != nil {
				return nil, err
			}
			r, err := Run(eng, w, opt)
			if err != nil {
				return nil, fmt.Errorf("harness: %s on %s: %w", w.Name(), name, err)
			}
			results = append(results, r)
		}
	}
	return results, nil
}
