package workload

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/engine"
)

func newEng(t *testing.T) engine.Engine {
	t.Helper()
	return engine.MustNew("lsa/shared", engine.Options{})
}

func newClockEng(t *testing.T) engine.Engine {
	t.Helper()
	return engine.MustNew("lsa/ideal", engine.Options{Nodes: 8})
}

func TestDisjointValidation(t *testing.T) {
	d := &Disjoint{Accesses: 0}
	if err := d.Init(newEng(t), 1); err == nil {
		t.Error("zero accesses must be rejected")
	}
	d = &Disjoint{Accesses: 10, ObjectsPerWorker: 5}
	if err := d.Init(newEng(t), 1); err == nil {
		t.Error("partition smaller than accesses must be rejected")
	}
}

func TestDisjointCountsUpdates(t *testing.T) {
	for _, mk := range []func(*testing.T) engine.Engine{newEng, newClockEng} {
		eng := mk(t)
		d := &Disjoint{Accesses: 10}
		const workers, steps = 4, 25
		if err := d.Init(eng, workers); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				th := eng.Thread(id)
				step := d.Step(eng, th, id)
				for i := 0; i < steps; i++ {
					if err := step(); err != nil {
						t.Errorf("worker %d: %v", id, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		total, err := d.Total()
		if err != nil {
			t.Fatal(err)
		}
		if want := workers * steps * 10; total != want {
			t.Errorf("total increments = %d, want %d", total, want)
		}
		if s := eng.Stats(); s.AbortConflict != 0 || s.EnemyAborts != 0 {
			t.Errorf("disjoint workload must see no conflicts: %s", s)
		}
	}
}

func TestBankConservesMoney(t *testing.T) {
	eng := newEng(t)
	b := &Bank{Accounts: 10, Initial: 500, AuditRatio: 0.3, Seed: 5}
	const workers, steps = 4, 100
	if err := b.Init(eng, workers); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := eng.Thread(id)
			step := b.Step(eng, th, id)
			for i := 0; i < steps; i++ {
				if err := step(); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	total, err := b.Total()
	if err != nil {
		t.Fatal(err)
	}
	if want := 10 * 500; total != want {
		t.Errorf("total = %d, want %d", total, want)
	}
}

func TestBankValidation(t *testing.T) {
	b := &Bank{Accounts: 1}
	if err := b.Init(newEng(t), 1); err == nil {
		t.Error("single-account bank must be rejected")
	}
}

func TestIntSetSequentialSemantics(t *testing.T) {
	eng := newEng(t)
	s := &IntSet{KeyRange: 64, InitialFill: -1}
	// InitialFill < 0 disables pre-fill entirely (Float64 ≥ 0 > fill).
	if err := s.Init(eng, 1); err != nil {
		t.Fatal(err)
	}
	th := eng.Thread(0)
	model := map[int]bool{}
	ops := []struct {
		op  string
		key int
	}{
		{"add", 5}, {"add", 3}, {"add", 9}, {"add", 5},
		{"rm", 3}, {"rm", 3}, {"add", 1}, {"rm", 9}, {"add", 7},
	}
	for i, op := range ops {
		switch op.op {
		case "add":
			got, err := s.Add(th, op.key)
			if err != nil {
				t.Fatal(err)
			}
			if want := !model[op.key]; got != want {
				t.Errorf("op %d add(%d) = %v, want %v", i, op.key, got, want)
			}
			model[op.key] = true
		case "rm":
			got, err := s.Remove(th, op.key)
			if err != nil {
				t.Fatal(err)
			}
			if want := model[op.key]; got != want {
				t.Errorf("op %d remove(%d) = %v, want %v", i, op.key, got, want)
			}
			delete(model, op.key)
		}
		for k := 0; k < 10; k++ {
			got, err := s.Contains(th, k)
			if err != nil {
				t.Fatal(err)
			}
			if got != model[k] {
				t.Errorf("op %d: contains(%d) = %v, want %v", i, k, got, model[k])
			}
		}
	}
	keys, err := s.Snapshot(th)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(keys) {
		t.Errorf("snapshot not sorted: %v", keys)
	}
	if len(keys) != len(model) {
		t.Errorf("snapshot size %d, want %d", len(keys), len(model))
	}
}

func TestIntSetConcurrent(t *testing.T) {
	for _, mk := range []func(*testing.T) engine.Engine{newEng, newClockEng} {
		eng := mk(t)
		s := &IntSet{KeyRange: 32, UpdateRatio: 0.6, Seed: 11}
		const workers, steps = 4, 150
		if err := s.Init(eng, workers); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				th := eng.Thread(id)
				step := s.Step(eng, th, id)
				for i := 0; i < steps; i++ {
					if err := step(); err != nil {
						t.Errorf("worker %d: %v", id, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		keys, err := s.Snapshot(eng.Thread(50))
		if err != nil {
			t.Fatal(err)
		}
		if !sort.IntsAreSorted(keys) {
			t.Errorf("list not sorted after concurrency: %v", keys)
		}
		seen := map[int]bool{}
		for _, k := range keys {
			if seen[k] {
				t.Errorf("duplicate key %d in list", k)
			}
			seen[k] = true
			if k < 0 || k >= 32 {
				t.Errorf("key %d outside range", k)
			}
		}
	}
}
