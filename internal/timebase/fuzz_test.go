package timebase

import "testing"

// FuzzComparatorInvariants drives the ⪰/≿/Max/Min operators with arbitrary
// timestamp pairs and checks the invariants that hold at the operator level
// regardless of hidden real times. Deviations are normalized per clock ID
// (a clock advertises one bound), matching how time bases issue timestamps.
func FuzzComparatorInvariants(f *testing.F) {
	f.Add(int64(5), int32(0), int64(7), int32(0))
	f.Add(int64(10), int32(1), int64(12), int32(2))
	f.Add(int64(100), int32(-1), int64(100), int32(-1))
	f.Add(int64(1), int32(3), int64(1<<40), int32(3))
	f.Fuzz(func(t *testing.T, ts1 int64, cid1 int32, ts2 int64, cid2 int32) {
		norm := func(ts int64, cid int32) Timestamp {
			if ts < 0 {
				ts = -ts
			}
			ts = ts%1_000_000 + 1
			switch {
			case cid == CIDExact:
				return Exact(ts)
			case cid < 0:
				return Timestamp{TS: ts, CID: CIDUndefined, Dev: 7}
			default:
				cid = cid%8 + 1
				return Timestamp{TS: ts, CID: cid, Dev: int64(3 * cid)}
			}
		}
		a, b := norm(ts1, cid1), norm(ts2, cid2)

		// ⪰ and ≿ are complementary in the required direction (§2.1):
		// b ⪰ a ⟹ ¬(a ≿ b), and a ≿ b ⟹ ¬(b ⪰ a).
		if b.LaterEq(a) && a.PossiblyLater(b) {
			t.Fatalf("%v ⪰ %v and %v ≿ %v simultaneously", b, a, a, b)
		}
		// At least one direction of "possibly later" always holds.
		if !a.PossiblyLater(b) && !b.PossiblyLater(a) && !a.LaterEq(b) && !b.LaterEq(a) {
			t.Fatalf("no relation at all between %v and %v", a, b)
		}
		// Max dominates in the pessimistic upper bound; Min in the lower.
		m, n := Max(a, b), Min(a, b)
		if m.Upper() < a.Upper() && m.Upper() < b.Upper() {
			t.Fatalf("Max(%v,%v) = %v has smaller upper bound than both", a, b, m)
		}
		if n.Lower() > a.Lower() && n.Lower() > b.Lower() {
			t.Fatalf("Min(%v,%v) = %v has larger lower bound than both", a, b, n)
		}
		// Max/Min never return sentinels unless an argument was one.
		if m.IsInf() || m.IsNegInf() || n.IsInf() || n.IsNegInf() {
			t.Fatalf("sentinel from Max/Min of %v, %v", a, b)
		}
		// Exact timestamps must degenerate to plain comparisons.
		if a.CID == CIDExact && b.CID == CIDExact {
			if a.LaterEq(b) != (a.TS >= b.TS) {
				t.Fatalf("exact ⪰ disagrees with ≥ for %v, %v", a, b)
			}
		}
	})
}
