package core

import (
	"errors"
	"testing"

	"repro/internal/timebase"
)

// FuzzEngineAgainstModel interprets the fuzz input as a program over four
// objects — reads, writes, transaction boundaries, user aborts — executed
// against the real engine and a plain in-memory model simultaneously. Any
// divergence (wrong read, lost/phantom write, failed rollback) fails.
func FuzzEngineAgainstModel(f *testing.F) {
	f.Add([]byte{0x00, 0x11, 0x22, 0x33, 0xFF})
	f.Add([]byte{0x01, 0x41, 0x81, 0xC1, 0x02, 0x42})
	f.Add([]byte{0xF0, 0x0F, 0xAA, 0x55})
	f.Fuzz(func(t *testing.T, program []byte) {
		if len(program) > 512 {
			program = program[:512]
		}
		for _, si := range []bool{false, true} {
			rt := MustRuntime(Config{
				TimeBase:          timebase.NewSharedCounter(),
				SnapshotIsolation: si,
			})
			const nObjs = 4
			objs := make([]*Object, nObjs)
			model := make([]int, nObjs)
			for i := range objs {
				objs[i] = NewObject(0)
			}
			th := rt.Thread(0)
			boom := errors.New("rollback")

			pc := 0
			for pc < len(program) {
				// One transaction consumes bytes until a terminator byte
				// (≥ 0xF0 → user abort, ≥ 0xE0 → commit) or input ends.
				scratch := append([]int(nil), model...)
				abort := false
				start := pc
				err := th.Run(func(tx *Tx) error {
					copy(scratch, model)
					abort = false
					for pc = start; pc < len(program); pc++ {
						b := program[pc]
						if b >= 0xF0 {
							pc++
							abort = true
							return boom
						}
						if b >= 0xE0 {
							pc++
							return nil
						}
						obj := int(b) % nObjs
						if b&0x10 != 0 {
							scratch[obj] += int(b>>5) + 1
							if err := tx.Write(objs[obj], scratch[obj]); err != nil {
								return err
							}
						} else {
							v, err := tx.Read(objs[obj])
							if err != nil {
								return err
							}
							if v.(int) != scratch[obj] {
								t.Fatalf("si=%v pc=%d: read objs[%d] = %v, model %d", si, pc, obj, v, scratch[obj])
							}
						}
					}
					return nil
				})
				switch {
				case abort && errors.Is(err, boom):
					// Rolled back; model unchanged.
				case !abort && err == nil:
					model = scratch
				default:
					t.Fatalf("si=%v: unexpected result err=%v abort=%v", si, err, abort)
				}
			}
			for i, o := range objs {
				if got := mustReadIntFuzz(t, rt, o); got != model[i] {
					t.Fatalf("si=%v: final objs[%d] = %d, model %d", si, i, got, model[i])
				}
			}
		}
	})
}

func mustReadIntFuzz(t *testing.T, rt *Runtime, o *Object) int {
	t.Helper()
	var out int
	if err := rt.Thread(7).RunReadOnly(func(tx *Tx) error {
		v, err := tx.Read(o)
		if err != nil {
			return err
		}
		out = v.(int)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}
