// Package workload provides the transaction mixes used by the experiments:
// the paper's disjoint-update microbenchmark (§4.2), a bank with transfers
// and audits, and a sorted-linked-list integer set.
package workload

import (
	"fmt"

	"repro/internal/core"
)

// Disjoint is the §4.2 workload: every transaction updates k objects that
// are guaranteed (by partitioning) to be disjoint from every other thread's
// objects — but the STM does not know that and pays its full synchronization
// cost. The workload therefore isolates the overhead of the time base: no
// conflicts, no contention management, just Start/Open/Commit traffic.
type Disjoint struct {
	// Accesses is k, the number of objects each transaction updates
	// (Figure 2 uses 10, 50, 100).
	Accesses int
	// ObjectsPerWorker is the size of each worker's private partition
	// (default 2×Accesses, so successive transactions rotate through
	// different objects).
	ObjectsPerWorker int

	objs [][]*core.Object
}

// Name implements harness.Workload.
func (d *Disjoint) Name() string { return fmt.Sprintf("disjoint/%d", d.Accesses) }

// Init implements harness.Workload.
func (d *Disjoint) Init(rt *core.Runtime, workers int) error {
	if d.Accesses <= 0 {
		return fmt.Errorf("workload: Disjoint.Accesses must be positive, got %d", d.Accesses)
	}
	per := d.ObjectsPerWorker
	if per == 0 {
		per = 2 * d.Accesses
	}
	if per < d.Accesses {
		return fmt.Errorf("workload: partition %d smaller than %d accesses", per, d.Accesses)
	}
	d.objs = make([][]*core.Object, workers)
	for w := range d.objs {
		d.objs[w] = make([]*core.Object, per)
		for i := range d.objs[w] {
			d.objs[w][i] = core.NewObject(0)
		}
	}
	return nil
}

// Step implements harness.Workload: one transaction incrementing k objects
// of the worker's partition, rotating the starting offset.
func (d *Disjoint) Step(rt *core.Runtime, th *core.Thread, id int) func() error {
	part := d.objs[id]
	offset := 0
	return func() error {
		start := offset
		offset = (offset + d.Accesses) % len(part)
		return th.Run(func(tx *core.Tx) error {
			for i := 0; i < d.Accesses; i++ {
				o := part[(start+i)%len(part)]
				v, err := tx.Read(o)
				if err != nil {
					return err
				}
				if err := tx.Write(o, v.(int)+1); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

// Total sums all object values — used by tests to check no update was lost.
func (d *Disjoint) Total(rt *core.Runtime) (int, error) {
	th := rt.Thread(1 << 20)
	total := 0
	err := th.RunReadOnly(func(tx *core.Tx) error {
		total = 0
		for _, part := range d.objs {
			for _, o := range part {
				v, err := tx.Read(o)
				if err != nil {
					return err
				}
				total += v.(int)
			}
		}
		return nil
	})
	return total, err
}
