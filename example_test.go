package tstm_test

import (
	"fmt"

	tstm "repro"
)

// The basic pattern: a runtime, one thread per goroutine, typed variables,
// atomic blocks.
func Example() {
	rt := tstm.MustNew(tstm.WithSharedCounter())
	balance := tstm.NewVar(100)

	th := rt.Thread(0)
	err := th.Atomic(func(tx *tstm.Tx) error {
		b, err := balance.Get(tx)
		if err != nil {
			return err
		}
		return balance.Set(tx, b+42)
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	_ = th.AtomicReadOnly(func(tx *tstm.Tx) error {
		b, err := balance.Get(tx)
		if err != nil {
			return err
		}
		fmt.Println("balance:", b)
		return nil
	})
	// Output: balance: 142
}

// Update is the read-modify-write shorthand.
func ExampleVar_Update() {
	rt := tstm.MustNew()
	counter := tstm.NewVar(0)
	th := rt.Thread(0)
	for i := 0; i < 3; i++ {
		_ = th.Atomic(func(tx *tstm.Tx) error {
			return counter.Update(tx, func(n int) int { return n + 10 })
		})
	}
	_ = th.AtomicReadOnly(func(tx *tstm.Tx) error {
		n, err := counter.Get(tx)
		fmt.Println("counter:", n)
		return err
	})
	// Output: counter: 30
}

// Multi-variable transactions are atomic: both sides of the swap move
// together or not at all.
func ExampleThread_Atomic() {
	rt := tstm.MustNew(tstm.WithMMTimer(2))
	left, right := tstm.NewVar("L"), tstm.NewVar("R")
	th := rt.Thread(0)
	_ = th.Atomic(func(tx *tstm.Tx) error {
		l, err := left.Get(tx)
		if err != nil {
			return err
		}
		r, err := right.Get(tx)
		if err != nil {
			return err
		}
		if err := left.Set(tx, r); err != nil {
			return err
		}
		return right.Set(tx, l)
	})
	_ = th.AtomicReadOnly(func(tx *tstm.Tx) error {
		l, err := left.Get(tx)
		if err != nil {
			return err
		}
		r, err := right.Get(tx)
		if err != nil {
			return err
		}
		fmt.Println(l, r)
		return nil
	})
	// Output: R L
}
