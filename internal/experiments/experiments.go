// Package experiments implements the paper's evaluation (§4) as reusable,
// parameterized experiment functions. Each function regenerates one figure
// or claim:
//
//   - Fig1: MMTimer synchronization errors and offsets (Figure 1)
//   - Fig2: time-base overhead for disjoint update transactions (Figure 2)
//   - TL2Opt: the TL2 commit-timestamp-sharing comparison (§4.2)
//   - SyncErrors: abort behaviour vs clock deviation (§4.3)
//   - Baselines: LSA-RT vs validating/TL2 baselines on read-dominated scans
//     (§1.2)
//
// The CLI (cmd/lsabench) and the root benchmark suite both drive these.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/clocksync"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/hwclock"
	"repro/internal/stats"
	"repro/internal/timebase"
	"repro/internal/workload"
)

// DefaultThreads is the paper's Figure 2 thread sweep.
var DefaultThreads = []int{1, 2, 4, 6, 8, 12, 16}

// DefaultSizes is the paper's Figure 2 transaction sizes (accesses per
// update transaction).
var DefaultSizes = []int{10, 50, 100}

// NewTimeBase constructs a time base by name: "counter", "tl2counter",
// "mmtimer", "ideal", or "extsync:<devTicks>".
func NewTimeBase(name string, nodes int) (timebase.TimeBase, error) {
	switch name {
	case "counter":
		return timebase.NewSharedCounter(), nil
	case "tl2counter":
		return timebase.NewTL2Counter(), nil
	case "mmtimer":
		return timebase.NewMMTimer(nodes), nil
	case "ideal":
		return timebase.NewPerfectClock(hwclock.New(hwclock.IdealConfig(nodes))), nil
	default:
		var dev int64
		if _, err := fmt.Sscanf(name, "extsync:%d", &dev); err == nil {
			d := hwclock.New(hwclock.Config{TickHz: 1_000_000_000, Nodes: nodes, Seed: 1})
			return timebase.NewExtSyncClockFrom(d, dev)
		}
		return nil, fmt.Errorf("experiments: unknown time base %q", name)
	}
}

// Fig1Config parameterizes the clock-synchronization measurement.
type Fig1Config struct {
	// Nodes is the number of CPUs/clock registers (paper: 16).
	Nodes int
	// Rounds is the number of comparison rounds (the paper ran 4 hours at
	// 0.1 s; we default to 100 back-to-back rounds).
	Rounds int
	// Interval between rounds.
	Interval time.Duration
	// OffsetTicks injects per-node clock offsets; 0 reproduces the paper's
	// (synchronized) MMTimer.
	OffsetTicks int64
}

// Fig1Result carries the measurement and its rendered table.
type Fig1Result struct {
	Measurement *clocksync.Result
	Table       *stats.Table
}

// Fig1 runs the Figure 1 experiment.
func Fig1(cfg Fig1Config) (*Fig1Result, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 16
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 100
	}
	dev := hwclock.New(hwclock.Config{
		TickHz:           20_000_000,
		ReadLatencyTicks: 7,
		Nodes:            cfg.Nodes,
		MaxOffsetTicks:   cfg.OffsetTicks,
		Seed:             1,
	})
	res, err := clocksync.Measure(clocksync.Config{
		Device:   dev,
		Rounds:   cfg.Rounds,
		Interval: cfg.Interval,
	})
	if err != nil {
		return nil, err
	}
	tbl := stats.NewTable("round", "max|offset| (ticks)", "max error (ticks)", "max err+|off| (ticks)")
	for _, rr := range res.Rounds {
		tbl.AddRowf(rr.Round, rr.MaxAbsOffset, rr.MaxError, rr.MaxErrorPlusOffset)
	}
	return &Fig1Result{Measurement: res, Table: tbl}, nil
}

// Fig2Config parameterizes the time-base overhead experiment.
type Fig2Config struct {
	// Sizes are the transaction sizes (objects updated per transaction).
	Sizes []int
	// Threads is the worker sweep.
	Threads []int
	// TimeBases are the bases to compare (default counter and mmtimer).
	TimeBases []string
	// Duration is the measured interval per point.
	Duration time.Duration
	// Warmup before each measurement.
	Warmup time.Duration
}

// Fig2Point is one measured point of a Figure 2 series.
type Fig2Point struct {
	Size     int
	TimeBase string
	Threads  int
	MTxPerS  float64 // 10⁶ transactions per second, the paper's unit
	Result   harness.Result
}

// Fig2Result groups all points and the rendered table.
type Fig2Result struct {
	Points []Fig2Point
	Table  *stats.Table
}

// Fig2 runs the Figure 2 experiment: disjoint update transactions of each
// size, on each time base, across the thread sweep.
func Fig2(cfg Fig2Config) (*Fig2Result, error) {
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = DefaultSizes
	}
	if len(cfg.Threads) == 0 {
		cfg.Threads = DefaultThreads
	}
	if len(cfg.TimeBases) == 0 {
		cfg.TimeBases = []string{"counter", "mmtimer"}
	}
	if cfg.Duration == 0 {
		cfg.Duration = 300 * time.Millisecond
	}
	res := &Fig2Result{
		Table: stats.NewTable("accesses", "timebase", "threads", "tx/s", "Mtx/s", "aborts/attempt"),
	}
	for _, size := range cfg.Sizes {
		for _, tbName := range cfg.TimeBases {
			for _, threads := range cfg.Threads {
				tb, err := NewTimeBase(tbName, threads)
				if err != nil {
					return nil, err
				}
				rt, err := core.NewRuntime(core.Config{TimeBase: tb})
				if err != nil {
					return nil, err
				}
				eng := engine.WrapLSA(tb.Name(), rt)
				w := &workload.Disjoint{Accesses: size}
				r, err := harness.Run(eng, w, harness.Options{
					Workers:  threads,
					Duration: cfg.Duration,
					Warmup:   cfg.Warmup,
				})
				if err != nil {
					return nil, err
				}
				p := Fig2Point{
					Size:     size,
					TimeBase: r.Engine,
					Threads:  threads,
					MTxPerS:  r.Throughput / 1e6,
					Result:   r,
				}
				res.Points = append(res.Points, p)
				res.Table.AddRowf(size, r.Engine, threads,
					fmt.Sprintf("%.0f", r.Throughput),
					fmt.Sprintf("%.4f", p.MTxPerS),
					fmt.Sprintf("%.4f", r.Stats.AbortRate()))
			}
		}
	}
	return res, nil
}

// TL2Opt runs the §4.2 counter-optimization comparison: the Figure 2
// workload on the plain shared counter versus the TL2-style sharing
// counter.
func TL2Opt(cfg Fig2Config) (*Fig2Result, error) {
	cfg.TimeBases = []string{"counter", "tl2counter"}
	return Fig2(cfg)
}
