// Intset: a concurrent sorted-set built from scratch on the tstm public
// API — the paper intro's "fine-grained locking is hard, transactions are
// easy" argument as running code. The set is a sorted singly linked list of
// transactional variables; every operation is one atomic block, and the
// structural invariants (sorted, duplicate-free, reachable) are checked by
// a read-only scan while mutators are still running.
//
//	go run ./examples/intset
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"sync"

	tstm "repro"
)

// node is one list cell. Node values are immutable; splicing replaces the
// predecessor's value with one pointing at a new cell.
type node struct {
	key  int
	next *tstm.Var[node] // nil at the tail
}

// intSet is a transactional sorted set.
type intSet struct {
	head *tstm.Var[node]
}

func newIntSet() *intSet {
	tail := tstm.NewVar(node{key: math.MaxInt})
	return &intSet{head: tstm.NewVar(node{key: math.MinInt, next: tail})}
}

// locate returns the predecessor variable/value and the first node with
// key ≥ k.
func (s *intSet) locate(tx *tstm.Tx, k int) (pv *tstm.Var[node], pred, cur node, err error) {
	pv = s.head
	pred, err = pv.Get(tx)
	if err != nil {
		return
	}
	for {
		cur, err = pred.next.Get(tx)
		if err != nil {
			return
		}
		if cur.key >= k {
			return
		}
		pv, pred = pred.next, cur
	}
}

func (s *intSet) add(th *tstm.Thread, k int) (bool, error) {
	var changed bool
	err := th.Atomic(func(tx *tstm.Tx) error {
		pv, pred, cur, err := s.locate(tx, k)
		if err != nil {
			return err
		}
		if cur.key == k {
			changed = false
			return nil
		}
		cell := tstm.NewVar(node{key: k, next: pred.next})
		changed = true
		return pv.Set(tx, node{key: pred.key, next: cell})
	})
	return changed, err
}

func (s *intSet) remove(th *tstm.Thread, k int) (bool, error) {
	var changed bool
	err := th.Atomic(func(tx *tstm.Tx) error {
		pv, pred, cur, err := s.locate(tx, k)
		if err != nil {
			return err
		}
		if cur.key != k {
			changed = false
			return nil
		}
		changed = true
		return pv.Set(tx, node{key: pred.key, next: cur.next})
	})
	return changed, err
}

func (s *intSet) contains(th *tstm.Thread, k int) (bool, error) {
	var found bool
	err := th.AtomicReadOnly(func(tx *tstm.Tx) error {
		_, _, cur, err := s.locate(tx, k)
		if err != nil {
			return err
		}
		found = cur.key == k
		return nil
	})
	return found, err
}

// keys returns a consistent snapshot of the set's contents.
func (s *intSet) keys(th *tstm.Thread) ([]int, error) {
	var out []int
	err := th.AtomicReadOnly(func(tx *tstm.Tx) error {
		out = out[:0]
		n, err := s.head.Get(tx)
		if err != nil {
			return err
		}
		for n.next != nil {
			if n, err = n.next.Get(tx); err != nil {
				return err
			}
			if n.next != nil {
				out = append(out, n.key)
			}
		}
		return nil
	})
	return out, err
}

func main() {
	workers := flag.Int("workers", 4, "mutator goroutines")
	opsEach := flag.Int("ops", 4000, "operations per mutator")
	keyRange := flag.Int("range", 128, "key universe size")
	flag.Parse()

	rt, err := tstm.New(tstm.WithIdealClock(*workers + 1))
	if err != nil {
		log.Fatal(err)
	}
	set := newIntSet()

	var wg sync.WaitGroup
	var mu sync.Mutex
	adds, removes, hits := 0, 0, 0
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := rt.Thread(id)
			rng := rand.New(rand.NewSource(int64(id) + 42))
			a, r, h := 0, 0, 0
			for i := 0; i < *opsEach; i++ {
				k := rng.Intn(*keyRange)
				switch rng.Intn(10) {
				case 0, 1, 2:
					ok, err := set.add(th, k)
					if err != nil {
						log.Fatalf("add: %v", err)
					}
					if ok {
						a++
					}
				case 3, 4:
					ok, err := set.remove(th, k)
					if err != nil {
						log.Fatalf("remove: %v", err)
					}
					if ok {
						r++
					}
				default:
					ok, err := set.contains(th, k)
					if err != nil {
						log.Fatalf("contains: %v", err)
					}
					if ok {
						h++
					}
				}
			}
			mu.Lock()
			adds += a
			removes += r
			hits += h
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	keys, err := set.keys(rt.Thread(*workers))
	if err != nil {
		log.Fatal(err)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			log.Fatalf("STRUCTURE BROKEN: keys %d and %d out of order", keys[i-1], keys[i])
		}
	}
	if len(keys) != adds-removes {
		log.Fatalf("SIZE WRONG: %d keys, %d adds − %d removes", len(keys), adds, removes)
	}
	s := rt.Stats()
	fmt.Printf("set size        %d (= %d adds − %d removes) ✓ sorted, duplicate-free\n", len(keys), adds, removes)
	fmt.Printf("membership hits %d\n", hits)
	fmt.Printf("commits         %d, aborts/attempt %.4f\n", s.Commits, s.AbortRate())
}
