// Package harness drives throughput experiments over any registered STM
// backend: it spins up worker goroutines, runs a workload for a fixed
// duration with warmup, and reports committed transactions per second — the
// measurement protocol behind the paper's Figure 2, generalized so the same
// scenario runs on every engine from one entry point.
package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/latency"
)

// Workload is a benchmarkable transaction mix, written against the
// backend-neutral engine interface.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Init allocates the shared cells for a run with the given worker
	// count. It is called once per Run, before any worker starts.
	Init(eng engine.Engine, workers int) error
	// Step returns the function executed repeatedly by worker id. Each call
	// must run exactly one (retried-until-committed) transaction. The
	// returned closure may keep per-worker state; it is called from a
	// single goroutine.
	Step(eng engine.Engine, th engine.Thread, id int) func() error
}

// Options configure a measurement run.
type Options struct {
	// Workers is the number of concurrent worker goroutines. Must be ≥ 1.
	Workers int
	// Duration is the measured interval. Must be > 0.
	Duration time.Duration
	// Warmup runs the workload before measurement starts (default: 20% of
	// Duration).
	Warmup time.Duration
}

// Result is the outcome of one run.
type Result struct {
	// Workload and Engine identify the configuration.
	Workload string `json:"workload"`
	Engine   string `json:"engine"`
	// Workers is the worker count.
	Workers int `json:"workers"`
	// Elapsed is the measured wall-clock interval.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Txs is the number of transactions committed inside the interval.
	Txs uint64 `json:"txs"`
	// Throughput is Txs per second.
	Throughput float64 `json:"tx_per_s"`
	// AllocsPerCommit and BytesPerCommit are the process-wide heap
	// allocation count and byte deltas (runtime.ReadMemStats Mallocs /
	// TotalAlloc) across the measured interval, divided by Txs — the GC
	// pressure axis of the snapshot. Methodology caveats: the deltas count
	// everything the process allocates during the interval (workload
	// closures, value boxing, the engine, and a few harness timer
	// allocations), so treat them as per-committed-transaction cost of the
	// whole engine+workload stack, not of the STM algorithm alone; aborted
	// attempts' allocations are charged to the commits that survive, which
	// is deliberate — wasted work is real GC pressure.
	AllocsPerCommit float64 `json:"allocs_per_commit"`
	BytesPerCommit  float64 `json:"bytes_per_commit"`
	// Stats are the engine counters accumulated over the whole run
	// (including warmup).
	Stats engine.Stats `json:"stats"`
	// Latency is the per-transaction commit-latency distribution inside the
	// measured interval: the time from one commit to the next on the same
	// worker, which includes every aborted attempt in between (retries are
	// part of the latency a caller observes). Its Count equals Txs exactly —
	// both are the same histogram delta.
	Latency *latency.Summary `json:"latency_ns,omitempty"`
	// Retry is the per-attempt latency distribution: each inter-commit gap
	// divided evenly over the attempts it took (from the thread's
	// engine.AttemptCounter). Comparing Retry's count to Latency's shows the
	// retry amplification; comparing their percentiles shows whether retries
	// are cheap re-runs or expensive stalls.
	Retry *latency.Summary `json:"retry_ns,omitempty"`
	// Scaling, when the record came from a worker-count sweep, holds the
	// whole throughput/latency curve; the top-level fields describe the
	// highest worker count measured.
	Scaling []ScalingPoint `json:"scaling,omitempty"`
	// Wal, when the run was measured on a durable engine (engine.Durable),
	// records which fsync policy was paying the commit-latency tax. Absent
	// for in-memory engines; snapshots may mix durable and plain records.
	Wal *WalInfo `json:"wal,omitempty"`
	// Repl, when the run was measured on a node in a replication pair
	// (internal/replica), records its role and stream counters — replication
	// lag is a throughput tax the same way fsync policy is. Accepted, never
	// required: the stock bench matrix runs unreplicated.
	Repl *ReplInfo `json:"repl,omitempty"`
}

// WalInfo is the durability telemetry of a measured run.
type WalInfo struct {
	// Dir is the WAL directory (often a temp dir in benchmarks; informational).
	Dir string `json:"dir,omitempty"`
	// FsyncPolicy is the engine's sync policy: "always", "group" or "never".
	FsyncPolicy string `json:"fsync_policy"`
}

// ReplInfo is the replication telemetry of a run measured on a replicated
// node.
type ReplInfo struct {
	// Role is "primary" or "follower".
	Role string `json:"role"`
	// Followers is the primary's live stream count at snapshot time.
	Followers int `json:"followers,omitempty"`
	// LagSeqs and LagBytes measure the slowest follower's distance behind
	// the primary's WAL high-water mark.
	LagSeqs  int64 `json:"lag_seqs,omitempty"`
	LagBytes int64 `json:"lag_bytes,omitempty"`
	// Resyncs counts snapshot resyncs forced by slow followers; Reconnects
	// counts stream re-establishments.
	Resyncs    int64 `json:"resyncs,omitempty"`
	Reconnects int64 `json:"reconnects,omitempty"`
}

// ScalingPoint is one worker count of a scaling curve.
type ScalingPoint struct {
	Workers    int     `json:"workers"`
	Throughput float64 `json:"tx_per_s"`
	AbortRate  float64 `json:"aborts_per_attempt"`
	P50        int64   `json:"p50_ns,omitempty"`
	P99        int64   `json:"p99_ns,omitempty"`
	P999       int64   `json:"p999_ns,omitempty"`
}

// String renders the result on one line.
func (r Result) String() string {
	s := fmt.Sprintf("%s/%s workers=%d tx/s=%.0f (aborts/attempt=%.3f, allocs/commit=%.1f)",
		r.Workload, r.Engine, r.Workers, r.Throughput, r.Stats.AbortRate(), r.AllocsPerCommit)
	if r.Latency != nil {
		s += fmt.Sprintf(" p50=%v p99=%v p999=%v",
			time.Duration(r.Latency.P50), time.Duration(r.Latency.P99), time.Duration(r.Latency.P999))
	}
	return s
}

// Validate reports whether the result is a well-formed record of a run that
// actually made progress. It is the record-level half of the bench-smoke
// gate (cmd/benchcheck): an engine that silently wedges under the full
// matrix — workers spinning without committing, or a run so broken the
// fields never got filled in — produces a record this rejects, which `go
// test` never notices because the conformance suite drives every engine
// with bounded iteration counts instead of a measured interval.
func (r Result) Validate() error {
	switch {
	case r.Engine == "":
		return fmt.Errorf("harness: result without engine name: %+v", r)
	case r.Workload == "":
		return fmt.Errorf("harness: result without workload name: %+v", r)
	case r.Workers < 1:
		return fmt.Errorf("harness: %s/%s: workers = %d", r.Workload, r.Engine, r.Workers)
	case r.Elapsed <= 0:
		return fmt.Errorf("harness: %s/%s: non-positive measured interval %v", r.Workload, r.Engine, r.Elapsed)
	case r.Stats.Commits == 0:
		return fmt.Errorf("harness: %s/%s: zero commits over the whole run (engine wedged?)", r.Workload, r.Engine)
	case r.Txs == 0:
		return fmt.Errorf("harness: %s/%s: zero transactions inside the measured interval", r.Workload, r.Engine)
	case r.Throughput <= 0:
		return fmt.Errorf("harness: %s/%s: non-positive throughput %f with %d txs", r.Workload, r.Engine, r.Throughput, r.Txs)
	case r.AllocsPerCommit < 0 || r.BytesPerCommit < 0:
		return fmt.Errorf("harness: %s/%s: negative alloc telemetry (allocs/commit=%f, bytes/commit=%f)",
			r.Workload, r.Engine, r.AllocsPerCommit, r.BytesPerCommit)
	case (r.AllocsPerCommit == 0) != (r.BytesPerCommit == 0):
		// Telemetry is taken from one ReadMemStats delta: allocations and
		// bytes are zero together or positive together. A mismatch means a
		// stripped or hand-edited field.
		return fmt.Errorf("harness: %s/%s: inconsistent alloc telemetry (allocs/commit=%f, bytes/commit=%f)",
			r.Workload, r.Engine, r.AllocsPerCommit, r.BytesPerCommit)
	}
	// Both-zero alloc telemetry is legitimate since the typed value lane:
	// engines like glock and norec commit int-valued workloads with zero
	// process-wide allocations over a whole measured interval. Detecting a
	// snapshot that predates the telemetry entirely is therefore a
	// snapshot-level check (cmd/benchcheck: at least one record must carry
	// nonzero telemetry). Stats.BoxedCommits (the boxed% column) is
	// likewise accepted but never required. Latency follows the same split:
	// optional per record (legacy snapshots predate it), but when present it
	// must be internally consistent, and cmd/benchcheck requires all records
	// of a snapshot to carry it together.
	if r.Latency != nil {
		if err := r.Latency.Validate(); err != nil {
			return fmt.Errorf("harness: %s/%s: latency: %w", r.Workload, r.Engine, err)
		}
		if r.Latency.Count != r.Txs {
			// Txs and the commit histogram are deltas of the same per-worker
			// probes over the same boundary snapshots, so they must tie out
			// exactly; a mismatch means a stripped or hand-edited record.
			return fmt.Errorf("harness: %s/%s: latency count %d != txs %d",
				r.Workload, r.Engine, r.Latency.Count, r.Txs)
		}
	}
	if r.Retry != nil {
		if err := r.Retry.Validate(); err != nil {
			return fmt.Errorf("harness: %s/%s: retry latency: %w", r.Workload, r.Engine, err)
		}
		// No cross-check against Latency: the commit and retry probes are
		// snapshotted back-to-back while workers keep running, so their
		// counts may skew by in-flight steps.
	}
	if r.Wal != nil {
		switch r.Wal.FsyncPolicy {
		// Mirrors the engine.Options -fsync domain; a record claiming WAL
		// telemetry with a policy outside it is stripped or hand-edited.
		case "always", "group", "never":
		default:
			return fmt.Errorf("harness: %s/%s: wal telemetry with unknown fsync policy %q",
				r.Workload, r.Engine, r.Wal.FsyncPolicy)
		}
	}
	if r.Repl != nil {
		switch r.Repl.Role {
		// Mirrors the two replication roles (internal/replica); anything else
		// is a stripped or hand-edited record.
		case "primary", "follower":
		default:
			return fmt.Errorf("harness: %s/%s: repl telemetry with unknown role %q",
				r.Workload, r.Engine, r.Repl.Role)
		}
		if r.Repl.Followers < 0 || r.Repl.LagSeqs < 0 || r.Repl.LagBytes < 0 ||
			r.Repl.Resyncs < 0 || r.Repl.Reconnects < 0 {
			return fmt.Errorf("harness: %s/%s: repl telemetry with negative counters (%+v)",
				r.Workload, r.Engine, *r.Repl)
		}
	}
	prev := 0
	for _, p := range r.Scaling {
		if p.Workers <= prev {
			return fmt.Errorf("harness: %s/%s: scaling curve worker counts not strictly increasing (%d after %d)",
				r.Workload, r.Engine, p.Workers, prev)
		}
		prev = p.Workers
		if p.Throughput <= 0 {
			return fmt.Errorf("harness: %s/%s: scaling point workers=%d has non-positive throughput %f",
				r.Workload, r.Engine, p.Workers, p.Throughput)
		}
	}
	return nil
}

// workerProbe is the per-worker measurement state: the commit- and
// per-attempt-latency histograms. Each histogram is a cache-line multiple of
// atomic counters private to its worker (readers only Load), so recording
// does not perturb the contention under study; the committed-transaction
// count is the commit histogram's total, so throughput and latency can never
// disagree. One time.Now per step (tens of nanoseconds, vDSO) is the whole
// probing cost.
type workerProbe struct {
	commit latency.Histogram
	retry  latency.Histogram
}

// Run executes the workload and measures steady-state throughput.
func Run(eng engine.Engine, w Workload, opt Options) (Result, error) {
	if opt.Workers < 1 {
		return Result{}, fmt.Errorf("harness: Workers must be ≥ 1, got %d", opt.Workers)
	}
	if opt.Duration <= 0 {
		return Result{}, fmt.Errorf("harness: Duration must be positive, got %v", opt.Duration)
	}
	warmup := opt.Warmup
	if warmup == 0 {
		warmup = opt.Duration / 5
	}
	if err := w.Init(eng, opt.Workers); err != nil {
		return Result{}, fmt.Errorf("harness: init %s on %s: %w", w.Name(), eng.Name(), err)
	}

	probes := make([]workerProbe, opt.Workers)
	var stop atomic.Bool
	var start sync.WaitGroup
	var done sync.WaitGroup
	errs := make(chan error, opt.Workers)
	start.Add(1)
	for id := 0; id < opt.Workers; id++ {
		done.Add(1)
		go func(id int) {
			defer done.Done()
			th := eng.Thread(id)
			step := w.Step(eng, th, id)
			// Per-attempt latency needs the thread's attempt counter; every
			// backend in this module implements it, but a fallback (one
			// attempt per step) keeps external engines measurable.
			ac, _ := th.(engine.AttemptCounter)
			p := &probes[id]
			var lastAttempts uint64
			if ac != nil {
				lastAttempts = ac.Attempts()
			}
			start.Wait()
			prev := time.Now()
			for !stop.Load() {
				if err := step(); err != nil {
					errs <- fmt.Errorf("worker %d: %w", id, err)
					return
				}
				now := time.Now()
				d := now.Sub(prev)
				prev = now
				p.commit.Record(d)
				if ac != nil {
					a := ac.Attempts()
					k := a - lastAttempts
					lastAttempts = a
					if k == 0 {
						k = 1 // defensive: a step must have run ≥ 1 attempt
					}
					p.retry.RecordN(d/time.Duration(k), k)
				} else {
					p.retry.Record(d)
				}
			}
		}(id)
	}

	start.Done()
	time.Sleep(warmup)
	// Allocation telemetry: ReadMemStats deltas bracketing the measured
	// interval. Each call stops the world briefly, which is why they sit at
	// the interval edges (outside the throughput measurement t0..elapsed)
	// and never inside it. The microseconds between the commit-counter
	// snapshots and the memstats reads — while workers keep running — are
	// noise proportional to gap/interval, negligible at the default 300 ms
	// and acceptable at CI's 60 ms smoke interval.
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	commitBefore, retryBefore := snapshot(probes)
	t0 := time.Now()
	time.Sleep(opt.Duration)
	commitAfter, retryAfter := snapshot(probes)
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)
	stop.Store(true)
	done.Wait()
	close(errs)
	if err, ok := <-errs; ok {
		return Result{}, err
	}

	commitDelta := commitAfter.Sub(commitBefore)
	txs := commitDelta.Count()
	r := Result{
		Workload:   w.Name(),
		Engine:     eng.Name(),
		Workers:    opt.Workers,
		Elapsed:    elapsed,
		Txs:        txs,
		Throughput: float64(txs) / elapsed.Seconds(),
		Stats:      eng.Stats(),
		Latency:    commitDelta.Summary(),
		Retry:      retryAfter.Sub(retryBefore).Summary(),
	}
	if txs > 0 {
		r.AllocsPerCommit = float64(m1.Mallocs-m0.Mallocs) / float64(txs)
		r.BytesPerCommit = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(txs)
	}
	if d, ok := eng.(engine.Durable); ok {
		di := d.DurabilityInfo()
		r.Wal = &WalInfo{Dir: di.WALDir, FsyncPolicy: di.FsyncPolicy}
	}
	return r, nil
}

// snapshot merges the per-worker commit and retry histograms into two value
// snapshots. Workers keep running while it reads, so the two totals may skew
// by a few in-flight steps — delta pairs of the same histogram are exact.
func snapshot(ps []workerProbe) (commit, retry latency.Buckets) {
	for i := range ps {
		commit.Accumulate(ps[i].commit.Load())
		retry.Accumulate(ps[i].retry.Load())
	}
	return commit, retry
}

// Sweep runs the workload at each worker count with a fresh engine built
// by mkEngine, returning one Result per point. This is the Figure 2 inner
// loop: same workload, growing thread count, fixed backend.
func Sweep(mkEngine func() (engine.Engine, error), w Workload, workerCounts []int, opt Options) ([]Result, error) {
	results := make([]Result, 0, len(workerCounts))
	for _, n := range workerCounts {
		eng, err := mkEngine()
		if err != nil {
			return nil, err
		}
		o := opt
		o.Workers = n
		r, err := Run(eng, w, o)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
	}
	return results, nil
}

// DefaultWorkerCounts returns the standard scaling-curve worker counts:
// powers of two from 1 up to max, plus max itself when it is not a power of
// two — {1, 2, 4, ..., max}. max is usually runtime.GOMAXPROCS(0).
func DefaultWorkerCounts(max int) []int {
	if max < 1 {
		max = 1
	}
	var counts []int
	for n := 1; n < max; n *= 2 {
		counts = append(counts, n)
	}
	return append(counts, max)
}

// SweepCurve runs the workload at each worker count (ascending) with a fresh
// engine per point and folds the points into one Result: the record of the
// highest count, carrying the whole curve in Scaling. mkEngine receives the
// point's worker count so per-node state (engine.Options.Nodes) can match.
func SweepCurve(mkEngine func(workers int) (engine.Engine, error), w Workload, workerCounts []int, opt Options) (Result, error) {
	if len(workerCounts) == 0 {
		return Result{}, fmt.Errorf("harness: SweepCurve needs at least one worker count")
	}
	curve := make([]ScalingPoint, 0, len(workerCounts))
	var last Result
	for _, n := range workerCounts {
		eng, err := mkEngine(n)
		if err != nil {
			return Result{}, err
		}
		o := opt
		o.Workers = n
		r, err := Run(eng, w, o)
		if err != nil {
			return Result{}, err
		}
		p := ScalingPoint{Workers: n, Throughput: r.Throughput, AbortRate: r.Stats.AbortRate()}
		if r.Latency != nil {
			p.P50, p.P99, p.P999 = r.Latency.P50, r.Latency.P99, r.Latency.P999
		}
		curve = append(curve, p)
		last = r
	}
	last.Scaling = curve
	return last, nil
}

// SweepAcross runs a scaling curve for each workload on each named backend —
// the cross-engine Figure 2 outer loop. Each engine/workload pair yields one
// Result (see SweepCurve); engOpt.Nodes is overridden per point to match the
// worker count.
func SweepAcross(engineNames []string, mkWorkloads func() []Workload, workerCounts []int, engOpt engine.Options, opt Options) ([]Result, error) {
	var results []Result
	for _, name := range engineNames {
		for _, w := range mkWorkloads() {
			r, err := SweepCurve(func(n int) (engine.Engine, error) {
				o := engOpt
				o.Nodes = n
				return engine.New(name, o)
			}, w, workerCounts, opt)
			if err != nil {
				return nil, fmt.Errorf("harness: sweep %s on %s: %w", w.Name(), name, err)
			}
			results = append(results, r)
		}
	}
	return results, nil
}

// RunAcross runs a fresh instance of each workload on each named backend
// from the engine registry — the cross-engine comparison loop. mkWorkloads
// builds fresh workload values per engine (workloads keep engine-bound
// state after Init, so they cannot be shared between runs).
func RunAcross(engineNames []string, mkWorkloads func() []Workload, engOpt engine.Options, opt Options) ([]Result, error) {
	var results []Result
	for _, name := range engineNames {
		for _, w := range mkWorkloads() {
			eng, err := engine.New(name, engOpt)
			if err != nil {
				return nil, err
			}
			r, err := Run(eng, w, opt)
			if err != nil {
				return nil, fmt.Errorf("harness: %s on %s: %w", w.Name(), name, err)
			}
			results = append(results, r)
		}
	}
	return results, nil
}
