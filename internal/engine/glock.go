package engine

import (
	"fmt"

	"repro/internal/glock"
	"repro/internal/val"
)

// The "glock" backend: the coarse-global-lock honesty baseline. One
// reader/writer mutex serializes all transactions — no versions, no
// validation, no aborts — so it trivially satisfies opacity and anchors the
// low-thread-count end of every comparison: an STM only earns its keep where
// its curve crosses above this one.
func init() {
	Register("glock", Info{
		Summary: "coarse global RWMutex reference engine (no aborts, honesty baseline)",
		Capabilities: Capabilities{
			IntLane:        true,
			AttemptCounter: true,
		},
	}, func(o Options) (Engine, error) {
		return &glockEngine{stm: glock.New()}, nil
	})
}

type glockEngine struct {
	stm *glock.STM
	counterSet
}

func (e *glockEngine) Name() string { return "glock" }

func (e *glockEngine) NewCell(initial any) Cell { return glock.NewObject(initial) }

// Thread builds the worker context (see adapterThread) with its retry
// closure and bound method values allocated once: per-transaction Run calls
// only swap the fn pointer, so the adapter layer adds zero allocations to
// the native engine's steady state.
func (e *glockEngine) Thread(id int) Thread {
	th := e.stm.Thread(id)
	t := &adapterThread[*glock.Tx]{
		id: id, counters: e.newCounters(),
		run: th.Run, runRO: th.RunReadOnly, boxed: th.BoxedCommits,
	}
	t.step = func(tx *glock.Tx) error {
		t.attempts++
		return t.fn(glockTxn{tx})
	}
	return t
}

type glockTxn struct {
	tx *glock.Tx
}

func (t glockTxn) Read(c Cell) (any, error)  { return t.tx.Read(glockCell(c)) }
func (t glockTxn) Write(c Cell, v any) error { return t.tx.Write(glockCell(c), v) }

func (t glockTxn) ReadInt(c Cell) (int64, bool, error) {
	v, err := t.tx.ReadValue(glockCell(c))
	if err != nil {
		return 0, false, err
	}
	n, ok := v.AsInt64()
	return n, ok, nil
}

func (t glockTxn) WriteInt(c Cell, v int64) error {
	return t.tx.WriteValue(glockCell(c), val.OfInt(int(v)))
}

func (t glockTxn) UpdateInt(c Cell, f func(int64) int64) (bool, error) {
	return updateIntVia(t, c, f)
}

func glockCell(c Cell) *glock.Object {
	o, ok := c.(*glock.Object)
	if !ok {
		panic(fmt.Sprintf("engine: cell of type %T used with the glock backend", c))
	}
	return o
}
