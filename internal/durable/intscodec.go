// Built-in "ints" codec: []int payloads carried as uvarint count + varint
// deltas from the previous element. The hash-set workload stores each bucket
// as a sorted immutable []int, so this one registration makes that workload
// runnable on the durable engines (and replicable) where it would otherwise
// fail every write with ErrUnsupportedPayload; deltas over sorted keys stay
// small, so the encoding is compact. Unsorted slices still round-trip —
// deltas just go negative.
//
// Cell-graph payloads (the linked-list and skip-list workloads' nodes hold
// engine.Cell handles — process-local pointers) remain unsupported by
// design; see the package comment in codec.go.
package durable

import (
	"encoding/binary"
	"errors"
)

func init() {
	RegisterCodec("ints", []int(nil), encodeInts, decodeInts)
}

func encodeInts(x any) ([]byte, error) {
	keys := x.([]int)
	b := binary.AppendUvarint(nil, uint64(len(keys)))
	prev := 0
	for _, k := range keys {
		b = binary.AppendVarint(b, int64(k-prev))
		prev = k
	}
	return b, nil
}

func decodeInts(b []byte) (any, error) {
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, errors.New("durable: ints codec: bad count")
	}
	b = b[w:]
	keys := make([]int, 0, n)
	prev := 0
	for i := uint64(0); i < n; i++ {
		d, w := binary.Varint(b)
		if w <= 0 {
			return nil, errors.New("durable: ints codec: truncated delta")
		}
		b = b[w:]
		prev += int(d)
		keys = append(keys, prev)
	}
	if len(b) != 0 {
		return nil, errors.New("durable: ints codec: trailing bytes")
	}
	return keys, nil
}
