package norec

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/val"
)

func TestReadInitialAndCommit(t *testing.T) {
	s := New()
	o := NewObject(41)
	th := s.Thread(0)
	if err := th.Run(func(tx *Tx) error {
		v, err := tx.Read(o)
		if err != nil {
			return err
		}
		return tx.Write(o, v.(int)+1)
	}); err != nil {
		t.Fatal(err)
	}
	if got := readInt(t, s, o); got != 42 {
		t.Errorf("value = %d, want 42", got)
	}
	// One update commit bumps the sequence lock by exactly two.
	if seq := s.Sequence(); seq != 2 {
		t.Errorf("sequence lock = %d, want 2", seq)
	}
}

func TestReadOwnWrite(t *testing.T) {
	s := New()
	o := NewObject(1)
	if err := s.Thread(0).Run(func(tx *Tx) error {
		if err := tx.Write(o, 5); err != nil {
			return err
		}
		v, err := tx.Read(o)
		if err != nil {
			return err
		}
		if v.(int) != 5 {
			t.Errorf("read-own-write = %v, want 5", v)
		}
		return tx.Write(o, 6)
	}); err != nil {
		t.Fatal(err)
	}
	if got := readInt(t, s, o); got != 6 {
		t.Errorf("value = %d, want 6", got)
	}
}

func TestReadOnlyRejectsWrite(t *testing.T) {
	s := New()
	o := NewObject(1)
	err := s.Thread(0).RunReadOnly(func(tx *Tx) error { return tx.Write(o, 2) })
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("got %v, want ErrReadOnly", err)
	}
	// A read-only transaction must not move the sequence lock.
	if seq := s.Sequence(); seq != 0 {
		t.Errorf("sequence lock = %d, want 0", seq)
	}
}

func TestUserErrorRollsBack(t *testing.T) {
	s := New()
	o := NewObject(3)
	boom := errors.New("boom")
	err := s.Thread(0).Run(func(tx *Tx) error {
		if err := tx.Write(o, 9); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	if got := readInt(t, s, o); got != 3 {
		t.Errorf("value = %d, want 3", got)
	}
}

// TestWriteSetPromotion drives one transaction past the linear-scan
// threshold and checks read-own-write stays correct across the promotion to
// the map index.
func TestWriteSetPromotion(t *testing.T) {
	s := New()
	const n = 3 * smallWriteSet
	objs := make([]*Object, n)
	for i := range objs {
		objs[i] = NewObject(0)
	}
	if err := s.Thread(0).Run(func(tx *Tx) error {
		for i, o := range objs {
			if err := tx.Write(o, i); err != nil {
				return err
			}
		}
		// Overwrite every entry and read each back through the index.
		for i, o := range objs {
			if err := tx.Write(o, i*10); err != nil {
				return err
			}
			v, err := tx.Read(o)
			if err != nil {
				return err
			}
			if v.(int) != i*10 {
				t.Errorf("objs[%d] = %v, want %d", i, v, i*10)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, o := range objs {
		if got := readInt(t, s, o); got != i*10 {
			t.Errorf("committed objs[%d] = %d, want %d", i, got, i*10)
		}
	}
}

// TestValueBasedValidationToleratesSilentRestore: a concurrent commit that
// rewrites the same value must not abort a reader whose log holds that
// value — NOrec's value-based tolerance.
func TestValueBasedValidationTolerates(t *testing.T) {
	s := New()
	a, b := NewObject(10), NewObject(20)
	tx := &Tx{stm: s, snapshot: s.waitQuiescent()}
	if _, err := tx.Read(a); err != nil {
		t.Fatal(err)
	}
	// Another thread commits the same value into a (silent restore) and a
	// new value into b.
	if err := s.Thread(1).Run(func(tx *Tx) error {
		if err := tx.Write(a, 10); err != nil {
			return err
		}
		return tx.Write(b, 21)
	}); err != nil {
		t.Fatal(err)
	}
	// The reader's next read notices the bump and revalidates: the logged
	// value of a is unchanged, so the transaction survives and sees the new
	// b.
	v, err := tx.Read(b)
	if err != nil {
		t.Fatalf("silent restore must not abort the reader: %v", err)
	}
	if v.(int) != 21 {
		t.Errorf("b = %v, want 21", v)
	}
}

func TestConcurrentIncrements(t *testing.T) {
	s := New()
	o := NewObject(0)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := s.Thread(id)
			for i := 0; i < per; i++ {
				if err := th.Run(func(tx *Tx) error {
					v, err := tx.Read(o)
					if err != nil {
						return err
					}
					return tx.Write(o, v.(int)+1)
				}); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := readInt(t, s, o); got != workers*per {
		t.Errorf("counter = %d, want %d (lost updates)", got, workers*per)
	}
}

func TestSnapshotConsistencyPair(t *testing.T) {
	s := New()
	a, b := NewObject(0), NewObject(0)
	stop := make(chan struct{})
	var writer, readers sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		th := s.Thread(0)
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := th.Run(func(tx *Tx) error {
				if err := tx.Write(a, i); err != nil {
					return err
				}
				return tx.Write(b, -i)
			}); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(id int) {
			defer readers.Done()
			th := s.Thread(id + 1)
			for i := 0; i < 300; i++ {
				if err := th.RunReadOnly(func(tx *Tx) error {
					av, err := tx.Read(a)
					if err != nil {
						return err
					}
					bv, err := tx.Read(b)
					if err != nil {
						return err
					}
					if av.(int)+bv.(int) != 0 {
						t.Errorf("torn read: %d/%d", av, bv)
					}
					return nil
				}); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}(r)
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}

func TestValueEquality(t *testing.T) {
	cases := []struct {
		a, b any
		want bool
	}{
		{1, 1, true},
		{1, 2, false},
		{nil, nil, true},
		{1, nil, false},
		{"x", "x", true},
		{1, "1", false},
		{[]int{1}, []int{1}, false}, // uncomparable: conservatively unequal
		// Statically comparable struct holding an uncomparable dynamic
		// value: the == panics and must be absorbed as "changed".
		{struct{ v any }{[]int{1}}, struct{ v any }{[]int{1}}, false},
		{struct{ v any }{1}, struct{ v any }{1}, true},
	}
	for _, c := range cases {
		if got := val.OfAny(c.a).Equal(val.OfAny(c.b)); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func readInt(t *testing.T, s *STM, o *Object) int {
	t.Helper()
	var out int
	if err := s.Thread(99).RunReadOnly(func(tx *Tx) error {
		v, err := tx.Read(o)
		if err != nil {
			return err
		}
		out = v.(int)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}
