package harness

import (
	"errors"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/workload"
)

func mkCounterEng() (engine.Engine, error) {
	return engine.New("lsa/shared", engine.Options{})
}

func TestRunValidation(t *testing.T) {
	eng, _ := mkCounterEng()
	w := &workload.Disjoint{Accesses: 2}
	if _, err := Run(eng, w, Options{Workers: 0, Duration: time.Millisecond}); err == nil {
		t.Error("zero workers must be rejected")
	}
	if _, err := Run(eng, w, Options{Workers: 1, Duration: 0}); err == nil {
		t.Error("zero duration must be rejected")
	}
}

func TestRunMeasuresThroughput(t *testing.T) {
	eng, _ := mkCounterEng()
	w := &workload.Disjoint{Accesses: 4}
	res, err := Run(eng, w, Options{Workers: 2, Duration: 50 * time.Millisecond, Warmup: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Txs == 0 {
		t.Error("no transactions measured")
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput = %v", res.Throughput)
	}
	if res.Workers != 2 || res.Workload != "disjoint/4" || res.Engine != "lsa/shared" {
		t.Errorf("metadata wrong: %+v", res)
	}
	if res.String() == "" {
		t.Error("empty Result string")
	}
	if res.AllocsPerCommit <= 0 || res.BytesPerCommit <= 0 {
		t.Errorf("alloc telemetry missing: allocs/commit=%f bytes/commit=%f",
			res.AllocsPerCommit, res.BytesPerCommit)
	}
	if err := res.Validate(); err != nil {
		t.Errorf("healthy run failed validation: %v", err)
	}
}

func TestValidateAllocTelemetryConsistency(t *testing.T) {
	eng, _ := mkCounterEng()
	w := &workload.Disjoint{Accesses: 4}
	res, err := Run(eng, w, Options{Workers: 1, Duration: 20 * time.Millisecond, Warmup: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// One axis zeroed while the other is positive: a stripped field.
	res.AllocsPerCommit = 0
	if err := res.Validate(); err == nil {
		t.Error("allocs=0 with bytes>0 must be rejected (stripped field)")
	}
	res.AllocsPerCommit, res.BytesPerCommit = 10, 0
	if err := res.Validate(); err == nil {
		t.Error("bytes=0 with allocs>0 must be rejected")
	}
	res.AllocsPerCommit, res.BytesPerCommit = -1, -8
	if err := res.Validate(); err == nil {
		t.Error("negative telemetry must be rejected")
	}
	// Both zero is legitimate since the unboxed value lane: engines like
	// glock commit int-valued intervals with zero process-wide allocations.
	res.AllocsPerCommit, res.BytesPerCommit = 0, 0
	if err := res.Validate(); err != nil {
		t.Errorf("zero-allocation interval rejected: %v", err)
	}
}

func TestRunPropagatesInitError(t *testing.T) {
	eng, _ := mkCounterEng()
	w := &workload.Disjoint{Accesses: -1}
	if _, err := Run(eng, w, Options{Workers: 1, Duration: time.Millisecond}); err == nil {
		t.Error("init error must propagate")
	}
}

// failingWorkload errors on the third step of worker 0.
type failingWorkload struct{ boom error }

func (f *failingWorkload) Name() string                              { return "failing" }
func (f *failingWorkload) Init(eng engine.Engine, workers int) error { return nil }
func (f *failingWorkload) Step(eng engine.Engine, th engine.Thread, id int) func() error {
	n := 0
	return func() error {
		if id == 0 {
			if n++; n == 3 {
				return f.boom
			}
		}
		return nil
	}
}

func TestRunPropagatesStepError(t *testing.T) {
	eng, _ := mkCounterEng()
	boom := errors.New("boom")
	_, err := Run(eng, &failingWorkload{boom: boom}, Options{Workers: 2, Duration: 30 * time.Millisecond, Warmup: time.Millisecond})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
}

func TestSweep(t *testing.T) {
	w := &workload.Disjoint{Accesses: 2}
	results, err := Sweep(mkCounterEng, w, []int{1, 2}, Options{Duration: 30 * time.Millisecond, Warmup: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	if results[0].Workers != 1 || results[1].Workers != 2 {
		t.Errorf("worker counts wrong: %d, %d", results[0].Workers, results[1].Workers)
	}
}

func TestRunAcross(t *testing.T) {
	engines := []string{"lsa/shared", "tl2", "rstmval", "wordstm"}
	mk := func() []Workload {
		// AuditRatio < 0 disables the read-only audits: on a 1-core CI host
		// an 8-cell audit can starve against nonstop transfers for the whole
		// short measured interval on the single-version engines, and this
		// test checks RunAcross's plumbing, not STM fairness.
		return []Workload{&workload.Bank{Accounts: 8, Seed: 3, AuditRatio: -1}}
	}
	// 60 ms: on a loaded 1-core CI host a 20 ms measured interval can land
	// entirely inside one scheduling hiccup and see zero commits.
	results, err := RunAcross(engines, mk, engine.Options{Nodes: 2},
		Options{Workers: 2, Duration: 60 * time.Millisecond, Warmup: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(engines) {
		t.Fatalf("results = %d, want %d", len(results), len(engines))
	}
	for i, r := range results {
		if r.Engine != engines[i] {
			t.Errorf("result %d engine = %q, want %q", i, r.Engine, engines[i])
		}
		if r.Txs == 0 {
			t.Errorf("%s: no transactions", r.Engine)
		}
		if r.Stats.Commits == 0 {
			t.Errorf("%s: no commits counted", r.Engine)
		}
	}
}

func TestRunAcrossUnknownEngine(t *testing.T) {
	mk := func() []Workload { return []Workload{&workload.Bank{Accounts: 4}} }
	if _, err := RunAcross([]string{"nope"}, mk, engine.Options{},
		Options{Workers: 1, Duration: time.Millisecond}); err == nil {
		t.Error("unknown engine must error")
	}
}

// TestValidateDoesNotRequireBoxedCounters: the boxed% telemetry
// (Stats.BoxedCommits) is accepted but never required, so records from
// snapshots that predate the typed value lane — and records from runs whose
// commits all rode the unboxed lane — validate unchanged.
func TestValidateDoesNotRequireBoxedCounters(t *testing.T) {
	r := Result{
		Workload: "bank/64", Engine: "norec", Workers: 2,
		Elapsed: 50 * time.Millisecond, Txs: 10, Throughput: 200,
		AllocsPerCommit: 1, BytesPerCommit: 8,
		Stats: engine.Stats{Commits: 10},
	}
	if err := r.Validate(); err != nil {
		t.Errorf("record without boxed counters rejected: %v", err)
	}
	r.Stats.BoxedCommits = 4
	if err := r.Validate(); err != nil {
		t.Errorf("record with boxed counters rejected: %v", err)
	}
	if got := r.Stats.BoxedShare(); got != 0.4 {
		t.Errorf("BoxedShare = %v, want 0.4", got)
	}
}

// TestRunRecordsLatency: every run carries the commit- and retry-latency
// histograms, self-consistent with the transaction count.
func TestRunRecordsLatency(t *testing.T) {
	eng, _ := mkCounterEng()
	w := &workload.Disjoint{Accesses: 4}
	res, err := Run(eng, w, Options{Workers: 2, Duration: 50 * time.Millisecond, Warmup: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency == nil {
		t.Fatal("no commit-latency summary recorded")
	}
	if res.Latency.Count != res.Txs {
		t.Errorf("latency count %d != txs %d", res.Latency.Count, res.Txs)
	}
	if res.Latency.P50 <= 0 || res.Latency.P99 < res.Latency.P50 || res.Latency.P999 < res.Latency.P99 {
		t.Errorf("percentiles not monotone: p50=%d p99=%d p999=%d",
			res.Latency.P50, res.Latency.P99, res.Latency.P999)
	}
	if res.Retry == nil {
		t.Fatal("no retry-latency summary recorded")
	}
	if res.Retry.Count < res.Latency.Count/2 {
		// Each committed step records ≥ 1 attempt; halving absorbs the
		// snapshot skew between the two probes.
		t.Errorf("retry count %d implausibly low for %d commits", res.Retry.Count, res.Latency.Count)
	}
	if err := res.Validate(); err != nil {
		t.Errorf("latency-carrying run failed validation: %v", err)
	}
}

// TestValidateLatencyConsistency: when a record carries a latency block it
// must be internally consistent; records without one (legacy snapshots)
// still validate.
func TestValidateLatencyConsistency(t *testing.T) {
	eng, _ := mkCounterEng()
	w := &workload.Disjoint{Accesses: 4}
	res, err := Run(eng, w, Options{Workers: 1, Duration: 30 * time.Millisecond, Warmup: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	legacy := res
	legacy.Latency, legacy.Retry = nil, nil
	if err := legacy.Validate(); err != nil {
		t.Errorf("legacy record without latency rejected: %v", err)
	}
	tampered := res
	sum := *res.Latency
	sum.Count++
	tampered.Latency = &sum
	if err := tampered.Validate(); err == nil {
		t.Error("latency count != txs must be rejected")
	}
	tampered = res
	sum2 := *res.Latency
	sum2.P99 = sum2.P50 - 1
	tampered.Latency = &sum2
	if err := tampered.Validate(); err == nil {
		t.Error("tampered percentiles must be rejected")
	}
}

// TestValidateScalingCurve: curve points must be strictly increasing in
// workers with positive throughput.
func TestValidateScalingCurve(t *testing.T) {
	r := Result{
		Workload: "bank/64", Engine: "norec", Workers: 2,
		Elapsed: 50 * time.Millisecond, Txs: 10, Throughput: 200,
		Stats: engine.Stats{Commits: 10},
	}
	r.Scaling = []ScalingPoint{{Workers: 1, Throughput: 100}, {Workers: 2, Throughput: 200}}
	if err := r.Validate(); err != nil {
		t.Errorf("healthy curve rejected: %v", err)
	}
	r.Scaling = []ScalingPoint{{Workers: 2, Throughput: 100}, {Workers: 2, Throughput: 200}}
	if err := r.Validate(); err == nil {
		t.Error("non-increasing worker counts must be rejected")
	}
	r.Scaling = []ScalingPoint{{Workers: 1, Throughput: 100}, {Workers: 2}}
	if err := r.Validate(); err == nil {
		t.Error("zero-throughput point must be rejected")
	}
}

// TestValidateReplTelemetry pins the replication block's compatibility rule:
// accepted next to plain records, never required, rejected when the role is
// outside the two replication roles or a counter went negative (a stripped
// or hand-edited record).
func TestValidateReplTelemetry(t *testing.T) {
	base := Result{
		Workload: "bank/64", Engine: "durable/norec", Workers: 2,
		Elapsed: 50 * time.Millisecond, Txs: 10, Throughput: 200,
		Stats: engine.Stats{Commits: 10},
	}
	for _, role := range []string{"primary", "follower"} {
		r := base
		r.Repl = &ReplInfo{Role: role, Followers: 1, LagSeqs: 3, LagBytes: 96, Resyncs: 1, Reconnects: 2}
		if err := r.Validate(); err != nil {
			t.Errorf("repl block with role=%s rejected: %v", role, err)
		}
	}
	r := base
	r.Repl = &ReplInfo{Role: "observer"}
	if err := r.Validate(); err == nil {
		t.Error("unknown replication role must be rejected")
	}
	r.Repl = &ReplInfo{} // role stripped entirely
	if err := r.Validate(); err == nil {
		t.Error("role-less repl block must be rejected")
	}
	r.Repl = &ReplInfo{Role: "primary", LagSeqs: -1}
	if err := r.Validate(); err == nil {
		t.Error("negative lag must be rejected")
	}
	r.Repl = &ReplInfo{Role: "follower", Reconnects: -2}
	if err := r.Validate(); err == nil {
		t.Error("negative reconnect counter must be rejected")
	}
}

func TestDefaultWorkerCounts(t *testing.T) {
	cases := []struct {
		max  int
		want []int
	}{
		{1, []int{1}},
		{2, []int{1, 2}},
		{4, []int{1, 2, 4}},
		{6, []int{1, 2, 4, 6}},
		{8, []int{1, 2, 4, 8}},
		{0, []int{1}},
	}
	for _, c := range cases {
		got := DefaultWorkerCounts(c.max)
		if len(got) != len(c.want) {
			t.Errorf("DefaultWorkerCounts(%d) = %v, want %v", c.max, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("DefaultWorkerCounts(%d) = %v, want %v", c.max, got, c.want)
				break
			}
		}
	}
}

// TestSweepCurve folds a two-point sweep into one record carrying the curve.
func TestSweepCurve(t *testing.T) {
	w := &workload.Disjoint{Accesses: 2}
	mk := func(n int) (engine.Engine, error) {
		return engine.New("lsa/shared", engine.Options{Nodes: n})
	}
	r, err := SweepCurve(mk, w, []int{1, 2}, Options{Duration: 30 * time.Millisecond, Warmup: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if r.Workers != 2 {
		t.Errorf("primary record workers = %d, want the highest count 2", r.Workers)
	}
	if len(r.Scaling) != 2 || r.Scaling[0].Workers != 1 || r.Scaling[1].Workers != 2 {
		t.Fatalf("curve = %+v, want points at workers 1 and 2", r.Scaling)
	}
	for _, p := range r.Scaling {
		if p.Throughput <= 0 {
			t.Errorf("point workers=%d has throughput %f", p.Workers, p.Throughput)
		}
		if p.P50 <= 0 || p.P99 < p.P50 {
			t.Errorf("point workers=%d has bad percentiles %+v", p.Workers, p)
		}
	}
	if err := r.Validate(); err != nil {
		t.Errorf("sweep record failed validation: %v", err)
	}
	if _, err := SweepCurve(mk, w, nil, Options{Duration: time.Millisecond}); err == nil {
		t.Error("empty worker-count list must error")
	}
}
