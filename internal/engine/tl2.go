package engine

import (
	"fmt"

	"repro/internal/timebase"
	"repro/internal/tl2"
)

// The "tl2" backend: the lean single-version TL2 reimplementation on its
// classic shared-counter version clock. Read-only transactions keep no read
// set; readers that arrive too late abort instead of reading history.
//
// The "tl2/extsync" backend composes the same algorithm with the externally
// synchronized time base of §3.2 (the same device and deviation bound as
// "lsa/extsync"). The pairing isolates what multi-versioning buys under
// clock deviation: both engines pay the masked ⪰ comparisons, but where LSA
// serves an older version from history, single-version TL2 can only abort —
// the throughput gap between "tl2/extsync" and "lsa/extsync" is the Fig. 2
// question asked from the other side.
//
// The "tl2/sharded" backend runs the same algorithm on the sharded software
// counter (per-shard epochs, lazy cross-shard synchronization): commits bump
// an uncontended shard instead of the global version clock, at the price of
// a masked uncertainty window that — with no version history to fall back
// to — turns into aborts on freshly written objects.
func init() {
	Register("tl2", func(o Options) (Engine, error) {
		return &tl2Engine{name: "tl2", stm: tl2.New()}, nil
	})
	Register("tl2/extsync", func(o Options) (Engine, error) {
		tb, err := newExtSyncTimeBase(o)
		if err != nil {
			return nil, err
		}
		return &tl2Engine{name: "tl2/extsync", stm: tl2.NewWithTimeBase(tb)}, nil
	})
	Register("tl2/sharded", func(o Options) (Engine, error) {
		tb := timebase.NewShardedCounter(o.Nodes, o.ShardWindow)
		return &tl2Engine{name: "tl2/sharded", stm: tl2.NewWithTimeBase(tb)}, nil
	})
}

type tl2Engine struct {
	name string
	stm  *tl2.STM
	counterSet
}

func (e *tl2Engine) Name() string { return e.name }

func (e *tl2Engine) NewCell(initial any) Cell { return tl2.NewObject(initial) }

func (e *tl2Engine) Thread(id int) Thread {
	return &tl2Thread{id: id, th: e.stm.Thread(id), counters: e.newCounters()}
}

type tl2Thread struct {
	id       int
	th       *tl2.Thread
	counters *txnCounters
}

func (t *tl2Thread) ID() int { return t.id }

func (t *tl2Thread) Run(fn func(Txn) error) error {
	return runCounted(t.counters, t.th.Run, wrapTL2, fn)
}

func (t *tl2Thread) RunReadOnly(fn func(Txn) error) error {
	return runCounted(t.counters, t.th.RunReadOnly, wrapTL2, fn)
}

func wrapTL2(tx *tl2.Tx) Txn { return tl2Txn{tx} }

type tl2Txn struct {
	tx *tl2.Tx
}

func (t tl2Txn) Read(c Cell) (any, error)  { return t.tx.Read(tl2Cell(c)) }
func (t tl2Txn) Write(c Cell, v any) error { return t.tx.Write(tl2Cell(c), v) }

func tl2Cell(c Cell) *tl2.Object {
	o, ok := c.(*tl2.Object)
	if !ok {
		panic(fmt.Sprintf("engine: cell of type %T used with the tl2 backend", c))
	}
	return o
}
