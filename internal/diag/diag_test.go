package diag

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStartWritesProfiles: the stop function finishes the CPU profile,
// trace, and heap profile into the requested files.
func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	f := Flags{
		CPUProfile: filepath.Join(dir, "cpu.out"),
		MemProfile: filepath.Join(dir, "mem.out"),
		Trace:      filepath.Join(dir, "trace.out"),
	}
	stop, err := Start(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		_ = make([]byte, 1024)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{f.CPUProfile, f.MemProfile, f.Trace} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("%s: empty profile", p)
		}
	}
}

// TestStartNoFlags: all-off flags yield a working no-op stop.
func TestStartNoFlags(t *testing.T) {
	stop, err := Start(Flags{})
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

// TestStartRejectsBadPath: an uncreatable profile path errors up front.
func TestStartRejectsBadPath(t *testing.T) {
	if _, err := Start(Flags{CPUProfile: filepath.Join(t.TempDir(), "no", "such", "dir", "x")}); err == nil {
		t.Error("uncreatable cpu-profile path must error")
	}
}

// TestPublishIdempotent: re-registering a name neither panics nor errors.
func TestPublishIdempotent(t *testing.T) {
	Publish("diag_test_var", func() any { return 1 })
	Publish("diag_test_var", func() any { return 2 })
}
