package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/timebase"
	"repro/internal/wordstm"
)

// The "wordstm" backend: the word-based LSA variant over the shared-counter
// time base. The native memory is flat int64 words, so the adapter maps
// each cell to one word and encodes values into it:
//
//   - small ints are stored immediately, tagged in the low bit (the common
//     case for the counter workloads — no indirection, no allocation);
//   - everything else is boxed into an append-only side table and the word
//     holds the box index. The word remains the single transactional
//     authority; the side table is immutable once written, so reads stay
//     consistent. Boxes are never reclaimed — fine for benchmarks and
//     tests, which is what the comparison backends exist for.
//
// Cells consume words permanently (Options.Words sizes the memory), and the
// backend inherits the word engine's restriction to exact time bases.
func init() {
	Register("wordstm", func(o Options) (Engine, error) {
		return newWord(o)
	})
}

func newWord(o Options) (Engine, error) {
	stm, err := wordstm.New(timebase.NewSharedCounter(), o.Words)
	if err != nil {
		return nil, err
	}
	return &wordEngine{stm: stm}, nil
}

type wordEngine struct {
	stm  *wordstm.STM
	next atomic.Int64 // next free word

	boxMu sync.RWMutex
	boxes []any

	counterSet
}

// wordCell is a cell handle: the index of the cell's word.
type wordCell wordstm.Addr

func (e *wordEngine) Name() string { return "wordstm" }

func (e *wordEngine) NewCell(initial any) Cell {
	a := e.next.Add(1) - 1
	if a >= int64(e.stm.Words()) {
		panic(fmt.Sprintf("engine: wordstm backend out of cells (%d words; raise Options.Words)", e.stm.Words()))
	}
	// The word is unpublished until a committed write makes the cell
	// reachable, so a direct store is safe even mid-run.
	if err := e.stm.SetInitial(wordstm.Addr(a), e.encode(initial)); err != nil {
		panic(fmt.Sprintf("engine: wordstm init: %v", err))
	}
	return wordCell(a)
}

// immediateMax bounds the ints stored directly in a word: the tag shift
// costs one bit, so 63 signed bits remain — every n with |n| < 2⁶² fits.
const immediateMax = 1 << 62

func (e *wordEngine) encode(v any) int64 {
	if n, ok := v.(int); ok && n > -immediateMax && n < immediateMax {
		return int64(n)<<1 | 1
	}
	e.boxMu.Lock()
	e.boxes = append(e.boxes, v)
	idx := int64(len(e.boxes) - 1)
	e.boxMu.Unlock()
	return idx << 1
}

func (e *wordEngine) decode(w int64) any {
	if w&1 == 1 {
		return int(w >> 1)
	}
	e.boxMu.RLock()
	v := e.boxes[w>>1]
	e.boxMu.RUnlock()
	return v
}

func (e *wordEngine) Thread(id int) Thread {
	return &wordThread{id: id, eng: e, th: e.stm.Thread(id), counters: e.newCounters()}
}

type wordThread struct {
	id       int
	eng      *wordEngine
	th       *wordstm.Thread
	counters *txnCounters
}

func (t *wordThread) ID() int { return t.id }

func (t *wordThread) wrap(tx *wordstm.Tx) Txn { return wordTxn{eng: t.eng, tx: tx} }

func (t *wordThread) Run(fn func(Txn) error) error {
	return runCounted(t.counters, t.th.Run, t.wrap, fn)
}

func (t *wordThread) RunReadOnly(fn func(Txn) error) error {
	return runCounted(t.counters, t.th.RunReadOnly, t.wrap, fn)
}

type wordTxn struct {
	eng *wordEngine
	tx  *wordstm.Tx
}

func (t wordTxn) Read(c Cell) (any, error) {
	w, err := t.tx.Load(wordstm.Addr(wordCellOf(c)))
	if err != nil {
		return nil, err
	}
	return t.eng.decode(w), nil
}

func (t wordTxn) Write(c Cell, v any) error {
	// Encoding before the Store may box a value for an attempt that later
	// aborts; the orphaned box is just garbage in the side table.
	return t.tx.Store(wordstm.Addr(wordCellOf(c)), t.eng.encode(v))
}

func wordCellOf(c Cell) wordCell {
	a, ok := c.(wordCell)
	if !ok {
		panic(fmt.Sprintf("engine: cell of type %T used with the wordstm backend", c))
	}
	return a
}
