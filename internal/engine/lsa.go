package engine

import (
	"fmt"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/hwclock"
	"repro/internal/timebase"
)

// The LSA backends: the multi-version object-based core under each of the
// paper's time bases. "lsa/shared" is the classic shared-counter LSA,
// "lsa/tl2ts" adds TL2's commit-timestamp sharing to the counter,
// "lsa/sharded" runs on per-shard counters with lazy cross-shard
// synchronization (the scalable software counter), "lsa/mmtimer" and
// "lsa/ideal" are perfectly synchronized hardware clocks, and "lsa/extsync"
// is the externally synchronized clock with a bounded, masked deviation.
func init() {
	// lsaInfo is the capability profile every LSA-core backend shares; only
	// the summary and the time-base tunables differ per registration.
	lsaInfo := func(summary string, extraTunables ...string) Info {
		return Info{
			Summary: summary,
			Capabilities: Capabilities{
				IntLane:        true,
				AttemptCounter: true,
				MultiVersion:   true,
				Tunables:       append(extraTunables, "max-versions", "cm"),
			},
		}
	}
	Register("lsa/shared", lsaInfo("multi-version LSA on the shared-counter time base"),
		func(o Options) (Engine, error) {
			return newLSA("lsa/shared", timebase.NewSharedCounter(), o)
		})
	Register("lsa/tl2ts", lsaInfo("multi-version LSA with TL2 commit-timestamp sharing"),
		func(o Options) (Engine, error) {
			return newLSA("lsa/tl2ts", timebase.NewTL2Counter(), o)
		})
	Register("lsa/sharded", lsaInfo("multi-version LSA on the sharded software counter", "nodes", "shard-window"),
		func(o Options) (Engine, error) {
			return newLSA("lsa/sharded", timebase.NewShardedCounter(o.Nodes, o.ShardWindow), o)
		})
	Register("lsa/mmtimer", lsaInfo("multi-version LSA on the simulated MMTimer hardware clock", "nodes"),
		func(o Options) (Engine, error) {
			return newLSA("lsa/mmtimer", timebase.NewMMTimer(o.Nodes), o)
		})
	Register("lsa/ideal", lsaInfo("multi-version LSA on an ideal perfectly synchronized clock", "nodes"),
		func(o Options) (Engine, error) {
			return newLSA("lsa/ideal", timebase.NewPerfectClock(hwclock.New(hwclock.IdealConfig(o.Nodes))), o)
		})
	Register("lsa/extsync", lsaInfo("multi-version LSA on the externally synchronized ±dev clock", "nodes", "deviation"),
		func(o Options) (Engine, error) {
			tb, err := newExtSyncTimeBase(o)
			if err != nil {
				return nil, err
			}
			return newLSA("lsa/extsync", tb, o)
		})
}

// newExtSyncTimeBase builds the externally synchronized time base the
// "*/extsync" backends share: one simulated 1 GHz per-node clock device and
// the advertised deviation bound from Options. Both engines must run on
// identically configured clocks, or the lsa/extsync-vs-tl2/extsync
// comparison would measure device differences instead of the algorithms.
func newExtSyncTimeBase(o Options) (timebase.TimeBase, error) {
	dev := hwclock.New(hwclock.Config{TickHz: 1_000_000_000, Nodes: o.Nodes, Seed: 1})
	return timebase.NewExtSyncClockFrom(dev, o.Deviation)
}

func newLSA(name string, tb timebase.TimeBase, o Options) (Engine, error) {
	var cm core.ContentionManager
	switch o.ContentionManager {
	case "":
	case "aggressive":
		cm = contention.Aggressive{}
	case "suicide":
		cm = contention.Suicide{}
	case "polite":
		cm = contention.Polite{}
	case "karma":
		cm = contention.Karma{}
	case "timestamp":
		cm = contention.Timestamp{}
	default:
		return nil, fmt.Errorf("engine: unknown contention manager %q", o.ContentionManager)
	}
	rt, err := core.NewRuntime(core.Config{
		TimeBase:    tb,
		Manager:     cm,
		MaxVersions: o.MaxVersions,
	})
	if err != nil {
		return nil, err
	}
	return WrapLSA(name, rt), nil
}

// WrapLSA adapts an already-configured LSA core runtime to the Engine
// interface under the given display name. Experiments that need a custom
// time base or ablation knobs build the core.Runtime themselves and wrap it.
func WrapLSA(name string, rt *core.Runtime) Engine {
	return &lsaEngine{name: name, rt: rt}
}

type lsaEngine struct {
	name string
	rt   *core.Runtime
}

func (e *lsaEngine) Name() string { return e.name }

// Unwrap exposes the underlying core runtime for tools inside this module.
func (e *lsaEngine) Unwrap() *core.Runtime { return e.rt }

func (e *lsaEngine) NewCell(initial any) Cell { return core.NewObject(initial) }

func (e *lsaEngine) Thread(id int) Thread { return newLSAThread(e.rt.Thread(id)) }

func (e *lsaEngine) Stats() Stats {
	s := e.rt.Stats()
	return Stats{
		Commits:         s.Commits,
		Aborts:          s.Aborts,
		AbortSnapshot:   s.AbortSnapshot,
		AbortValidation: s.AbortValidation,
		AbortConflict:   s.AbortConflict,
		AbortExternal:   s.AbortExternal,
		UserAborts:      s.UserAborts,
		Extensions:      s.Extensions,
		Helps:           s.Helps,
		EnemyAborts:     s.EnemyAborts,
		BoxedCommits:    s.BoxedCommits,
	}
}

// lsaThread caches its retry closure: per-transaction Run calls only swap
// the fn pointer, so the adapter layer adds zero allocations on top of the
// core's one-Tx-per-attempt contract.
type lsaThread struct {
	th   *core.Thread
	fn   func(Txn) error
	step func(*core.Tx) error
}

func newLSAThread(th *core.Thread) *lsaThread {
	t := &lsaThread{th: th}
	t.step = func(tx *core.Tx) error { return t.fn(lsaTxn{tx}) }
	return t
}

func (t *lsaThread) ID() int { return t.th.ID() }

// Attempts implements AttemptCounter via the core thread's own counters.
func (t *lsaThread) Attempts() uint64 {
	s := t.th.Stats()
	return s.Commits + s.Aborts + s.UserAborts
}

// Run saves and restores the fn slot, so a nested transaction on the same
// Thread (the core runs it as a flat, independent transaction) leaves the
// outer retry loop's closure intact.
func (t *lsaThread) Run(fn func(Txn) error) error {
	prev := t.fn
	t.fn = fn
	err := t.th.Run(t.step)
	t.fn = prev
	return err
}

func (t *lsaThread) RunReadOnly(fn func(Txn) error) error {
	prev := t.fn
	t.fn = fn
	err := t.th.RunReadOnly(t.step)
	t.fn = prev
	return err
}

type lsaTxn struct {
	tx *core.Tx
}

func (t lsaTxn) Read(c Cell) (any, error)  { return t.tx.Read(lsaCell(c)) }
func (t lsaTxn) Write(c Cell, v any) error { return t.tx.Write(lsaCell(c), v) }

func (t lsaTxn) ReadInt(c Cell) (int64, bool, error) { return t.tx.ReadInt(lsaCell(c)) }
func (t lsaTxn) WriteInt(c Cell, v int64) error      { return t.tx.WriteInt(lsaCell(c), v) }

func (t lsaTxn) UpdateInt(c Cell, f func(int64) int64) (bool, error) {
	return updateIntVia(t, c, f)
}

func lsaCell(c Cell) *core.Object {
	o, ok := c.(*core.Object)
	if !ok {
		panic(fmt.Sprintf("engine: cell of type %T used with an LSA backend", c))
	}
	return o
}
