package engine

import (
	"fmt"

	"repro/internal/norec"
)

// The "norec" backend: value-based validation over a single global sequence
// lock — no per-object metadata at all. Its time base is the sequence lock
// itself: commits serialize on one cache line like a shared-counter STM,
// but reads touch no shared state until the lock moves, so read-dominated
// workloads stay cheap at low thread counts. The minimal-metadata
// counterpoint to every timestamp-ordered engine in the registry.
func init() {
	Register("norec", func(o Options) (Engine, error) {
		return &norecEngine{stm: norec.New()}, nil
	})
}

type norecEngine struct {
	stm *norec.STM
	counterSet
}

func (e *norecEngine) Name() string { return "norec" }

func (e *norecEngine) NewCell(initial any) Cell { return norec.NewObject(initial) }

func (e *norecEngine) Thread(id int) Thread {
	return &norecThread{id: id, th: e.stm.Thread(id), counters: e.newCounters()}
}

type norecThread struct {
	id       int
	th       *norec.Thread
	counters *txnCounters
}

func (t *norecThread) ID() int { return t.id }

func (t *norecThread) Run(fn func(Txn) error) error {
	return runCounted(t.counters, t.th.Run, wrapNorec, fn)
}

func (t *norecThread) RunReadOnly(fn func(Txn) error) error {
	return runCounted(t.counters, t.th.RunReadOnly, wrapNorec, fn)
}

func wrapNorec(tx *norec.Tx) Txn { return norecTxn{tx} }

type norecTxn struct {
	tx *norec.Tx
}

func (t norecTxn) Read(c Cell) (any, error)  { return t.tx.Read(norecCell(c)) }
func (t norecTxn) Write(c Cell, v any) error { return t.tx.Write(norecCell(c), v) }

func norecCell(c Cell) *norec.Object {
	o, ok := c.(*norec.Object)
	if !ok {
		panic(fmt.Sprintf("engine: cell of type %T used with the norec backend", c))
	}
	return o
}
