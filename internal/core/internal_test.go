package core

// White-box tests for the engine's internal mechanisms: locator settling,
// version-chain trimming, preliminary upper bounds, commit helping, and the
// "closed transaction" optimization. These pin down behaviours the
// black-box tests only exercise probabilistically.

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/timebase"
)

func counterRT(opts ...func(*Config)) *Runtime {
	cfg := Config{TimeBase: timebase.NewSharedCounter()}
	for _, o := range opts {
		o(&cfg)
	}
	return MustRuntime(cfg)
}

func TestSettleCommittedWriter(t *testing.T) {
	rt := counterRT()
	o := NewObject(1)
	th := rt.Thread(0)
	if err := th.Run(func(tx *Tx) error { return tx.Write(o, 2) }); err != nil {
		t.Fatal(err)
	}
	loc := o.settled(rt.maxVersions)
	if loc.writer != nil {
		t.Fatalf("settled locator still has writer %v", loc.writer.Status())
	}
	if loc.cur.value.Load().(int) != 2 {
		t.Errorf("head value = %v, want 2", loc.cur.value)
	}
	if loc.cur.validFrom.IsZero() || loc.cur.validFrom.IsInf() {
		t.Errorf("head validFrom = %v, want a real commit time", loc.cur.validFrom)
	}
	// The superseded genesis version must carry a fixed upper bound one
	// tick below the new version's start.
	old := loc.cur.prev.Load()
	if old == nil {
		t.Fatal("history lost on settle")
	}
	ub := old.fixedUB.Load()
	if ub == nil {
		t.Fatal("superseded version has no fixed upper bound")
	}
	if want := loc.cur.validFrom.Pred(); *ub != want {
		t.Errorf("old version UB = %v, want %v", *ub, want)
	}
}

func TestSettleAbortedWriterKeepsValue(t *testing.T) {
	rt := counterRT()
	o := NewObject(7)
	th := rt.Thread(0)
	boom := errors.New("boom")
	if err := th.Run(func(tx *Tx) error {
		if err := tx.Write(o, 99); err != nil {
			return err
		}
		return boom
	}); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	loc := o.settled(rt.maxVersions)
	if loc.writer != nil {
		t.Fatal("aborted writer not cleaned")
	}
	if loc.cur.value.Load().(int) != 7 {
		t.Errorf("value = %v, want original 7", loc.cur.value)
	}
	if loc.cur.fixedUB.Load() != nil {
		t.Error("current version got an upper bound from an aborted commit")
	}
}

func TestTrimBoundsHistory(t *testing.T) {
	const maxV = 3
	rt := counterRT(func(c *Config) { c.MaxVersions = maxV })
	o := NewObject(0)
	th := rt.Thread(0)
	for i := 1; i <= 10; i++ {
		if err := th.Run(func(tx *Tx) error { return tx.Write(o, i) }); err != nil {
			t.Fatal(err)
		}
	}
	loc := o.settled(maxV)
	depth := 0
	for v := loc.cur; v != nil; v = v.prev.Load() {
		depth++
		if depth > maxV+1 {
			t.Fatalf("history deeper than MaxVersions=%d", maxV)
		}
	}
	if depth > maxV {
		t.Errorf("history depth %d, want ≤ %d", depth, maxV)
	}
	if loc.cur.value.Load().(int) != 10 {
		t.Errorf("head = %v, want 10", loc.cur.value)
	}
}

func TestHistoryOrderedNewestFirst(t *testing.T) {
	rt := counterRT(func(c *Config) { c.MaxVersions = 8 })
	o := NewObject(0)
	th := rt.Thread(0)
	for i := 1; i <= 6; i++ {
		if err := th.Run(func(tx *Tx) error { return tx.Write(o, i) }); err != nil {
			t.Fatal(err)
		}
	}
	loc := o.settled(8)
	prevFrom := timebase.Inf
	want := 6
	for v := loc.cur; v != nil; v = v.prev.Load() {
		if !prevFrom.LaterEq(v.validFrom) {
			t.Fatalf("chain out of order: %v then %v", prevFrom, v.validFrom)
		}
		if !v.validFrom.IsNegInf() && v.value.Load().(int) != want {
			t.Fatalf("version value %v, want %d", v.value, want)
		}
		want--
		prevFrom = v.validFrom
	}
}

func TestPrelimUBSupersededIsFinal(t *testing.T) {
	rt := counterRT()
	o := NewObject(0)
	th := rt.Thread(0)
	if err := th.Run(func(tx *Tx) error { return tx.Write(o, 1) }); err != nil {
		t.Fatal(err)
	}
	loc := o.settled(rt.maxVersions)
	old := loc.cur.prev.Load()
	clock := rt.TimeBase().Clock(9)
	// The fixed bound must win regardless of the caller's timestamp.
	far := timebase.Exact(1 << 40)
	got := prelimUB(o, old, far, nil, clock)
	if got != *old.fixedUB.Load() {
		t.Errorf("prelimUB(superseded) = %v, want fixed bound %v", got, *old.fixedUB.Load())
	}
}

func TestPrelimUBOpenVersionReturnsCallerTime(t *testing.T) {
	rt := counterRT()
	o := NewObject(0)
	clock := rt.TimeBase().Clock(0)
	loc := o.settled(rt.maxVersions)
	ts := timebase.Exact(12345)
	if got := prelimUB(o, loc.cur, ts, nil, clock); got != ts {
		t.Errorf("prelimUB(open, no writer) = %v, want caller's %v", got, ts)
	}
}

func TestPrelimUBCommittingWriterBoundsByCT(t *testing.T) {
	rt := counterRT()
	o := NewObject(0)
	th := rt.Thread(0)

	// Drive a transaction manually into the committing state.
	w := th.newTx(0, false)
	if err := w.Write(o, 42); err != nil {
		t.Fatal(err)
	}
	if !w.status.CompareAndSwap(int32(StatusActive), int32(StatusCommitting)) {
		t.Fatal("could not enter committing")
	}
	clock := rt.TimeBase().Clock(1)
	loc := o.loc.Load()
	if loc.writer != w {
		t.Fatal("writer not registered")
	}
	// A foreign observer: the bound must be the writer's CT − 1, and CT
	// must have been helped into place.
	ts := timebase.Exact(1 << 40)
	got := prelimUB(o, loc.cur, ts, nil, clock)
	ct := w.CT()
	if ct.IsZero() {
		t.Fatal("prelimUB did not ensure the committing writer's CT")
	}
	if got != ct.Pred() {
		t.Errorf("foreign bound = %v, want CT−1 = %v", got, ct.Pred())
	}
	// The writer itself sees CT (the deliberate off-by-one).
	if got := prelimUB(o, loc.tent, ts, w, clock); got != ct {
		t.Errorf("own bound = %v, want CT = %v", got, ct)
	}
	// Finish the commit so the object is usable again.
	if !w.finishCommit(clock) {
		t.Fatal("helped commit failed")
	}
	if got := mustReadInt(t, rt, o); got != 42 {
		t.Errorf("value = %d, want 42", got)
	}
}

func TestHelpCompletesStalledCommit(t *testing.T) {
	// A transaction parked in committing (owner "preempted") must be
	// finished by the first reader that needs the object.
	rt := counterRT()
	o := NewObject(0)
	th := rt.Thread(0)
	w := th.newTx(0, false)
	if err := w.Write(o, 5); err != nil {
		t.Fatal(err)
	}
	if !w.status.CompareAndSwap(int32(StatusActive), int32(StatusCommitting)) {
		t.Fatal("could not enter committing")
	}
	// A reader on another thread: getVersion must help w to completion and
	// return the new version.
	th2 := rt.Thread(1)
	var got int
	if err := th2.Run(func(tx *Tx) error {
		v, err := tx.Read(o)
		if err != nil {
			return err
		}
		got = v.(int)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("read %d, want helped-commit value 5", got)
	}
	if w.Status() != StatusCommitted {
		t.Errorf("stalled writer status = %v, want committed", w.Status())
	}
	if th2.Stats().Helps == 0 {
		t.Error("reader did not record a help")
	}
}

func TestClosedTransactionSkipsExtension(t *testing.T) {
	rt := counterRT()
	a, b := NewObject(0), NewObject(0)
	th := rt.Thread(0)
	th2 := rt.Thread(1)
	attempt := 0
	if err := th.Run(func(tx *Tx) error {
		attempt++
		if _, err := tx.Read(a); err != nil {
			return err
		}
		if attempt == 1 {
			// Supersede a: the transaction becomes closed on its next
			// extension attempt.
			if err := th2.Run(func(tx2 *Tx) error { return tx2.Write(a, 1) }); err != nil {
				t.Fatal(err)
			}
			// Also advance b so reading it forces an extension attempt.
			if err := th2.Run(func(tx2 *Tx) error { return tx2.Write(b, 1) }); err != nil {
				t.Fatal(err)
			}
		}
		_, err := tx.Read(b)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if attempt < 2 {
		t.Fatalf("expected at least one snapshot abort, got %d attempts", attempt)
	}
}

func TestEnsureCTIdempotent(t *testing.T) {
	rt := counterRT()
	th := rt.Thread(0)
	w := th.newTx(0, false)
	w.update = true
	if !w.status.CompareAndSwap(int32(StatusActive), int32(StatusCommitting)) {
		t.Fatal("could not enter committing")
	}
	clockA := rt.TimeBase().Clock(1)
	clockB := rt.TimeBase().Clock(2)
	ensureCT(w, clockA)
	first := w.CT()
	if first.IsZero() {
		t.Fatal("CT not set")
	}
	ensureCT(w, clockB)
	if w.CT() != first {
		t.Errorf("second ensureCT changed CT: %v → %v", first, w.CT())
	}
}

func TestConcurrentEnsureCTSingleWinner(t *testing.T) {
	rt := counterRT()
	for round := 0; round < 50; round++ {
		th := rt.Thread(0)
		w := th.newTx(0, false)
		w.update = true
		w.status.Store(int32(StatusCommitting))
		var wg sync.WaitGroup
		cts := make([]timebase.Timestamp, 4)
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ensureCT(w, rt.TimeBase().Clock(i))
				cts[i] = w.CT()
			}(i)
		}
		wg.Wait()
		for i := 1; i < 4; i++ {
			if cts[i] != cts[0] {
				t.Fatalf("round %d: helpers observed different CTs: %v vs %v", round, cts[0], cts[i])
			}
		}
	}
}

// TestSequentialFuzzAgainstModel drives random single-threaded operation
// sequences and cross-checks every read against a plain map model. It
// catches bookkeeping bugs (read-own-write, upgrade, double write, rollback)
// that structured tests might miss.
func TestSequentialFuzzAgainstModel(t *testing.T) {
	for _, si := range []bool{false, true} {
		rt := counterRT(func(c *Config) { c.SnapshotIsolation = si })
		const nObjs = 8
		objs := make([]*Object, nObjs)
		model := make([]int, nObjs)
		for i := range objs {
			objs[i] = NewObject(i * 100)
			model[i] = i * 100
		}
		th := rt.Thread(0)
		rng := rand.New(rand.NewSource(99))
		boom := errors.New("rollback")
		for step := 0; step < 2000; step++ {
			scratch := append([]int(nil), model...)
			willAbort := rng.Intn(5) == 0
			nops := 1 + rng.Intn(6)
			err := th.Run(func(tx *Tx) error {
				for k := 0; k < nops; k++ {
					i := rng.Intn(nObjs)
					if rng.Intn(2) == 0 {
						v, err := tx.Read(objs[i])
						if err != nil {
							return err
						}
						if v.(int) != scratch[i] {
							t.Fatalf("step %d (si=%v): read objs[%d] = %v, model %d", step, si, i, v, scratch[i])
						}
					} else {
						scratch[i] += 1 + rng.Intn(9)
						if err := tx.Write(objs[i], scratch[i]); err != nil {
							return err
						}
					}
				}
				if willAbort {
					return boom
				}
				return nil
			})
			switch {
			case willAbort && errors.Is(err, boom):
				// Rolled back: model unchanged.
			case !willAbort && err == nil:
				model = scratch
			default:
				t.Fatalf("step %d (si=%v): err = %v, willAbort = %v", step, si, err, willAbort)
			}
		}
		// Final state check.
		for i, o := range objs {
			if got := mustReadInt(t, rt, o); got != model[i] {
				t.Errorf("si=%v: objs[%d] = %d, model %d", si, i, got, model[i])
			}
		}
	}
}
