package harness

import (
	"errors"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/workload"
)

func mkCounterEng() (engine.Engine, error) {
	return engine.New("lsa/shared", engine.Options{})
}

func TestRunValidation(t *testing.T) {
	eng, _ := mkCounterEng()
	w := &workload.Disjoint{Accesses: 2}
	if _, err := Run(eng, w, Options{Workers: 0, Duration: time.Millisecond}); err == nil {
		t.Error("zero workers must be rejected")
	}
	if _, err := Run(eng, w, Options{Workers: 1, Duration: 0}); err == nil {
		t.Error("zero duration must be rejected")
	}
}

func TestRunMeasuresThroughput(t *testing.T) {
	eng, _ := mkCounterEng()
	w := &workload.Disjoint{Accesses: 4}
	res, err := Run(eng, w, Options{Workers: 2, Duration: 50 * time.Millisecond, Warmup: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Txs == 0 {
		t.Error("no transactions measured")
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput = %v", res.Throughput)
	}
	if res.Workers != 2 || res.Workload != "disjoint/4" || res.Engine != "lsa/shared" {
		t.Errorf("metadata wrong: %+v", res)
	}
	if res.String() == "" {
		t.Error("empty Result string")
	}
	if res.AllocsPerCommit <= 0 || res.BytesPerCommit <= 0 {
		t.Errorf("alloc telemetry missing: allocs/commit=%f bytes/commit=%f",
			res.AllocsPerCommit, res.BytesPerCommit)
	}
	if err := res.Validate(); err != nil {
		t.Errorf("healthy run failed validation: %v", err)
	}
}

func TestValidateAllocTelemetryConsistency(t *testing.T) {
	eng, _ := mkCounterEng()
	w := &workload.Disjoint{Accesses: 4}
	res, err := Run(eng, w, Options{Workers: 1, Duration: 20 * time.Millisecond, Warmup: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// One axis zeroed while the other is positive: a stripped field.
	res.AllocsPerCommit = 0
	if err := res.Validate(); err == nil {
		t.Error("allocs=0 with bytes>0 must be rejected (stripped field)")
	}
	res.AllocsPerCommit, res.BytesPerCommit = 10, 0
	if err := res.Validate(); err == nil {
		t.Error("bytes=0 with allocs>0 must be rejected")
	}
	res.AllocsPerCommit, res.BytesPerCommit = -1, -8
	if err := res.Validate(); err == nil {
		t.Error("negative telemetry must be rejected")
	}
	// Both zero is legitimate since the unboxed value lane: engines like
	// glock commit int-valued intervals with zero process-wide allocations.
	res.AllocsPerCommit, res.BytesPerCommit = 0, 0
	if err := res.Validate(); err != nil {
		t.Errorf("zero-allocation interval rejected: %v", err)
	}
}

func TestRunPropagatesInitError(t *testing.T) {
	eng, _ := mkCounterEng()
	w := &workload.Disjoint{Accesses: -1}
	if _, err := Run(eng, w, Options{Workers: 1, Duration: time.Millisecond}); err == nil {
		t.Error("init error must propagate")
	}
}

// failingWorkload errors on the third step of worker 0.
type failingWorkload struct{ boom error }

func (f *failingWorkload) Name() string                              { return "failing" }
func (f *failingWorkload) Init(eng engine.Engine, workers int) error { return nil }
func (f *failingWorkload) Step(eng engine.Engine, th engine.Thread, id int) func() error {
	n := 0
	return func() error {
		if id == 0 {
			if n++; n == 3 {
				return f.boom
			}
		}
		return nil
	}
}

func TestRunPropagatesStepError(t *testing.T) {
	eng, _ := mkCounterEng()
	boom := errors.New("boom")
	_, err := Run(eng, &failingWorkload{boom: boom}, Options{Workers: 2, Duration: 30 * time.Millisecond, Warmup: time.Millisecond})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
}

func TestSweep(t *testing.T) {
	w := &workload.Disjoint{Accesses: 2}
	results, err := Sweep(mkCounterEng, w, []int{1, 2}, Options{Duration: 30 * time.Millisecond, Warmup: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	if results[0].Workers != 1 || results[1].Workers != 2 {
		t.Errorf("worker counts wrong: %d, %d", results[0].Workers, results[1].Workers)
	}
}

func TestRunAcross(t *testing.T) {
	engines := []string{"lsa/shared", "tl2", "rstmval", "wordstm"}
	mk := func() []Workload {
		// AuditRatio < 0 disables the read-only audits: on a 1-core CI host
		// an 8-cell audit can starve against nonstop transfers for the whole
		// short measured interval on the single-version engines, and this
		// test checks RunAcross's plumbing, not STM fairness.
		return []Workload{&workload.Bank{Accounts: 8, Seed: 3, AuditRatio: -1}}
	}
	// 60 ms: on a loaded 1-core CI host a 20 ms measured interval can land
	// entirely inside one scheduling hiccup and see zero commits.
	results, err := RunAcross(engines, mk, engine.Options{Nodes: 2},
		Options{Workers: 2, Duration: 60 * time.Millisecond, Warmup: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(engines) {
		t.Fatalf("results = %d, want %d", len(results), len(engines))
	}
	for i, r := range results {
		if r.Engine != engines[i] {
			t.Errorf("result %d engine = %q, want %q", i, r.Engine, engines[i])
		}
		if r.Txs == 0 {
			t.Errorf("%s: no transactions", r.Engine)
		}
		if r.Stats.Commits == 0 {
			t.Errorf("%s: no commits counted", r.Engine)
		}
	}
}

func TestRunAcrossUnknownEngine(t *testing.T) {
	mk := func() []Workload { return []Workload{&workload.Bank{Accounts: 4}} }
	if _, err := RunAcross([]string{"nope"}, mk, engine.Options{},
		Options{Workers: 1, Duration: time.Millisecond}); err == nil {
		t.Error("unknown engine must error")
	}
}

// TestValidateDoesNotRequireBoxedCounters: the boxed% telemetry
// (Stats.BoxedCommits) is accepted but never required, so records from
// snapshots that predate the typed value lane — and records from runs whose
// commits all rode the unboxed lane — validate unchanged.
func TestValidateDoesNotRequireBoxedCounters(t *testing.T) {
	r := Result{
		Workload: "bank/64", Engine: "norec", Workers: 2,
		Elapsed: 50 * time.Millisecond, Txs: 10, Throughput: 200,
		AllocsPerCommit: 1, BytesPerCommit: 8,
		Stats: engine.Stats{Commits: 10},
	}
	if err := r.Validate(); err != nil {
		t.Errorf("record without boxed counters rejected: %v", err)
	}
	r.Stats.BoxedCommits = 4
	if err := r.Validate(); err != nil {
		t.Errorf("record with boxed counters rejected: %v", err)
	}
	if got := r.Stats.BoxedShare(); got != 0.4 {
		t.Errorf("BoxedShare = %v, want 0.4", got)
	}
}
