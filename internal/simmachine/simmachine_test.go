package simmachine

import "testing"

const ms = int64(1_000_000) // simulated nanoseconds per millisecond

func run(t *testing.T, cpus int, tb TimeBaseKind, accesses int) Result {
	t.Helper()
	r, err := Run(Config{CPUs: cpus, TimeBase: tb, Accesses: accesses, Duration: 20 * ms})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestValidation(t *testing.T) {
	if _, err := Run(Config{CPUs: 0, Accesses: 1, Duration: ms}); err == nil {
		t.Error("zero CPUs must be rejected")
	}
	if _, err := Run(Config{CPUs: 1, Accesses: 0, Duration: ms}); err == nil {
		t.Error("zero accesses must be rejected")
	}
	if _, err := Run(Config{CPUs: 1, Accesses: 1, Duration: 0}); err == nil {
		t.Error("zero duration must be rejected")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[TimeBaseKind]string{
		Counter: "SimCounter", TL2Counter: "SimTL2Counter", HWClock: "SimMMTimer",
		TimeBaseKind(9): "invalid",
	} {
		if got := k.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", k, got, want)
		}
	}
}

func TestClockScalesLinearly(t *testing.T) {
	// Figure 2's right-hand behaviour: with the hardware clock, throughput
	// grows nearly linearly in the CPU count (disjoint work, no shared
	// state).
	base := run(t, 1, HWClock, 10)
	sixteen := run(t, 16, HWClock, 10)
	speedup := sixteen.TxPerSec / base.TxPerSec
	if speedup < 14 || speedup > 16.5 {
		t.Errorf("16-CPU clock speedup = %.2f, want ≈16", speedup)
	}
	if sixteen.CounterTransfers != 0 {
		t.Errorf("clock run produced %d counter transfers", sixteen.CounterTransfers)
	}
}

func TestCounterSaturates(t *testing.T) {
	// Figure 2's left-hand behaviour: the shared counter caps total commit
	// throughput; beyond a few CPUs, adding more does not help.
	eight := run(t, 8, Counter, 10)
	sixteen := run(t, 16, Counter, 10)
	if gain := sixteen.TxPerSec / eight.TxPerSec; gain > 1.3 {
		t.Errorf("counter gained %.2fx from 8→16 CPUs; should be saturated", gain)
	}
	// And the clock beats the counter by a wide margin at 16 CPUs.
	clock := run(t, 16, HWClock, 10)
	if clock.TxPerSec < 2*sixteen.TxPerSec {
		t.Errorf("at 16 CPUs clock (%.0f tx/s) should dominate counter (%.0f tx/s)",
			clock.TxPerSec, sixteen.TxPerSec)
	}
}

func TestSingleThreadClockOverhead(t *testing.T) {
	// §4.2: "For very short transactions, MMTimer's overhead decreases
	// throughput in the single-threaded case."
	counter := run(t, 1, Counter, 10)
	clock := run(t, 1, HWClock, 10)
	if clock.TxPerSec >= counter.TxPerSec {
		t.Errorf("single-thread: clock (%.0f) should be slower than counter (%.0f) at 10 accesses",
			clock.TxPerSec, counter.TxPerSec)
	}
}

func TestGapNarrowsWithTransactionSize(t *testing.T) {
	// §4.2: "the influence of the shared counter decreases when
	// transactions get larger."
	ratioAt := func(accesses int) float64 {
		clock := run(t, 16, HWClock, accesses)
		counter := run(t, 16, Counter, accesses)
		return clock.TxPerSec / counter.TxPerSec
	}
	r10, r100 := ratioAt(10), ratioAt(100)
	if r100 >= r10 {
		t.Errorf("clock/counter ratio should shrink with size: 10 accesses %.2f, 100 accesses %.2f", r10, r100)
	}
}

func TestTL2CounterNoAdvantage(t *testing.T) {
	// §4.2: the TL2 optimization "showed no advantages on our hardware" —
	// the line transfer, not the retry serialization, is the bottleneck.
	plain := run(t, 16, Counter, 10)
	tl2 := run(t, 16, TL2Counter, 10)
	ratio := tl2.TxPerSec / plain.TxPerSec
	if ratio < 0.8 || ratio > 1.6 {
		t.Errorf("TL2 counter ratio = %.2f; expected no dramatic advantage", ratio)
	}
}

func TestMoreCPUsNeverNegative(t *testing.T) {
	for _, tb := range []TimeBaseKind{Counter, TL2Counter, HWClock} {
		for _, cpus := range []int{1, 2, 4, 6, 8, 12, 16} {
			r := run(t, cpus, tb, 50)
			if r.Txs <= 0 {
				t.Errorf("%v cpus=%d: no transactions", tb, cpus)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, 8, Counter, 10)
	b := run(t, 8, Counter, 10)
	if a.Txs != b.Txs || a.CounterTransfers != b.CounterTransfers {
		t.Errorf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

func TestDefaultCostsApplied(t *testing.T) {
	r, err := Run(Config{CPUs: 1, TimeBase: HWClock, Accesses: 1, Duration: ms})
	if err != nil {
		t.Fatal(err)
	}
	if r.Config.Costs != DefaultCosts() {
		t.Errorf("zero cost model not defaulted: %+v", r.Config.Costs)
	}
}
