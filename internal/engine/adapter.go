package engine

import "repro/internal/abort"

// adapterThread is the shared worker context of the counter-set backends
// (norec, norec/striped, tl2, glock, rstmval): it owns the per-thread retry
// closure and the bound Run/RunReadOnly/BoxedCommits method values, all
// created once in Engine.Thread, so a steady-state transaction allocates
// nothing in the adapter layer. T is the backend's concrete transaction
// pointer type; the backend-specific Thread constructor fills step with the
// closure that lifts it to Txn.
//
// Run and RunReadOnly save and restore the fn/attempts slots so the
// adapter is exactly as reentrant as the engine it wraps — which, for
// every backend served by this type, is not at all: their native Threads
// recycle one transaction, so a nested Run on the same Thread corrupts the
// outer attempt's logs regardless of any adapter bookkeeping (see
// TestNestedRunSameThread for the engines that do support flat nesting).
// The save/restore only guarantees the adapter never turns that misuse
// into a nil-closure panic of its own.
type adapterThread[T any] struct {
	id       int
	counters *txnCounters
	fn       func(Txn) error
	attempts uint64
	step     func(T) error
	run      func(func(T) error) error
	runRO    func(func(T) error) error
	boxed    func() uint64
	// reasons reads the native thread's cumulative per-reason abort counts
	// (nil for backends that never abort, e.g. glock).
	reasons func() abort.Counts
}

func (t *adapterThread[T]) ID() int { return t.id }

// Attempts implements AttemptCounter: cumulative attempts across the
// thread's life (commits + aborted attempts + user-aborted finals).
func (t *adapterThread[T]) Attempts() uint64 {
	c := t.counters
	return c.commits + c.aborts + c.userAborts
}

func (t *adapterThread[T]) Run(fn func(Txn) error) error         { return t.do(t.run, fn) }
func (t *adapterThread[T]) RunReadOnly(fn func(Txn) error) error { return t.do(t.runRO, fn) }

func (t *adapterThread[T]) do(run func(func(T) error) error, fn func(Txn) error) error {
	prevFn, prevAttempts := t.fn, t.attempts
	t.fn, t.attempts = fn, 0
	err := run(t.step)
	t.counters.record(t.attempts, err)
	t.counters.boxedCommits = t.boxed()
	if t.reasons != nil {
		t.counters.abortReasons = t.reasons()
	}
	t.fn, t.attempts = prevFn, prevAttempts
	return err
}
