// Package rstmval is a validating STM baseline in the style the paper
// attributes to RSTM (§1.2): single-version objects, invisible reads, and
// consistency maintained by validation — re-checking that every previously
// read object is unchanged — on each access.
//
// Naive per-access validation costs O(reads so far), so the total read
// overhead grows quadratically with transaction size. RSTM's heuristic
// bounds this: a global "commit counter" counts attempted commits of update
// transactions; a transaction revalidates only when the counter has moved
// since its last check. The price is exactly what §1.2 points out: the
// counter must be read on every object access, so even fully disjoint
// updates drag a shared cache line through every reader — the
// reproduction's baselines experiment measures that effect against LSA-RT.
//
// Values are typed (val.Value): the versioned lock word sandwiches the
// two-word cell snapshot, so numeric payloads stay unboxed end to end and
// the write-back of an int-valued commit allocates nothing. The Thread
// recycles one Tx (logs and promoted index) across attempts, with the same
// ≤8-entry linear-scan write-set fast path as the other engines.
package rstmval

import (
	"errors"
	"sync/atomic"

	"repro/internal/abort"
	"repro/internal/val"
)

// ErrAborted signals that the transaction attempt failed and was retried.
var ErrAborted = errors.New("rstmval: transaction aborted")

// ErrReadOnly is returned by Write inside a read-only transaction.
var ErrReadOnly = errors.New("rstmval: write inside read-only transaction")

// Reason-tagged abort instances (see internal/abort): one per abort-site
// class, allocated once. All satisfy errors.Is(err, ErrAborted).
var (
	// errAbortSnapshot: a read-time revalidation failed or the version word
	// moved under the value load — the snapshot cannot be kept consistent.
	errAbortSnapshot = &abort.Err{Sentinel: ErrAborted, Reason: abort.Snapshot,
		Msg: "rstmval: transaction aborted: read-time revalidation failed"}
	// errAbortValidation: the commit-time (or write-free final) validation
	// failed.
	errAbortValidation = &abort.Err{Sentinel: ErrAborted, Reason: abort.Validation,
		Msg: "rstmval: transaction aborted: commit-time validation failed"}
	// errAbortContention: a versioned lock was held (or won) by a concurrent
	// committer.
	errAbortContention = &abort.Err{Sentinel: ErrAborted, Reason: abort.Contention,
		Msg: "rstmval: transaction aborted: versioned lock held by another commit"}
)

// STM is a validating-STM universe with its global commit counter.
type STM struct {
	_  [64]byte
	cc atomic.Int64 // attempted update commits
	_  [64]byte
}

// New creates a universe.
func New() *STM { return &STM{} }

// CommitCounter exposes the heuristic counter, for tests.
func (s *STM) CommitCounter() int64 { return s.cc.Load() }

// Object is a single-version cell: a versioned lock word (version<<1|locked)
// and the typed value slot.
type Object struct {
	meta atomic.Int64
	cell val.AtomicCell
}

// NewObject creates an object at version 0 holding initial.
func NewObject(initial any) *Object {
	o := &Object{}
	o.cell.Store(val.OfAny(initial))
	return o
}

func locked(meta int64) bool { return meta&1 == 1 }

// smallWriteSet is the write-set size up to which wlookup scans the writes
// slice instead of maintaining a map — the shared ≤8-entry linear-scan fast
// path (see core.smallAccessSet).
const smallWriteSet = 8

// Tx is one transaction attempt, recycled across attempts by its Thread:
// nothing an attempt builds escapes it (write-back publishes fresh cell
// snapshots, never log pointers), so the steady-state retry allocates
// nothing.
type Tx struct {
	stm      *STM
	readOnly bool
	boxed    bool
	lastCC   int64
	reads    []readEntry
	writes   []writeEntry
	windex   map[*Object]int // nil while the write set is small
	// spareIndex keeps the promoted map alive between attempts so a large
	// write set pays the map allocation once per thread, not per attempt.
	spareIndex map[*Object]int
}

func (tx *Tx) reset(stm *STM, readOnly bool) {
	tx.stm = stm
	tx.readOnly = readOnly
	tx.boxed = false
	tx.lastCC = stm.cc.Load()
	tx.reads = tx.reads[:0]
	tx.writes = tx.writes[:0]
	tx.windex = nil
}

type readEntry struct {
	obj  *Object
	meta int64 // version word observed at first read
}

type writeEntry struct {
	obj *Object
	v   val.Value
}

// wlookup finds the write-set entry for o: a linear scan while the set is
// small, the map built by wadd beyond that. A miss returns index −1.
func (tx *Tx) wlookup(o *Object) (int, bool) {
	if tx.windex != nil {
		if idx, ok := tx.windex[o]; ok {
			return idx, true
		}
		return -1, false
	}
	for i := len(tx.writes) - 1; i >= 0; i-- {
		if tx.writes[i].obj == o {
			return i, true
		}
	}
	return -1, false
}

// wadd appends a write-set entry; crossing smallWriteSet promotes the index
// to the attempt's reusable map.
func (tx *Tx) wadd(o *Object, v val.Value) {
	tx.writes = append(tx.writes, writeEntry{obj: o, v: v})
	if tx.windex != nil {
		tx.windex[o] = len(tx.writes) - 1
	} else if len(tx.writes) > smallWriteSet {
		if tx.spareIndex == nil {
			tx.spareIndex = make(map[*Object]int, 4*smallWriteSet)
		} else {
			clear(tx.spareIndex)
		}
		tx.windex = tx.spareIndex
		for i := range tx.writes {
			tx.windex[tx.writes[i].obj] = i
		}
	}
}

// Read opens the object as `any` — the generic escape-hatch view of
// ReadValue.
func (tx *Tx) Read(o *Object) (any, error) {
	v, err := tx.ReadValue(o)
	if err != nil {
		return nil, err
	}
	return v.Load(), nil
}

// ReadValue opens the object, revalidating the read set first if the commit
// counter indicates system progress since the last check. The version-word
// sandwich around the two-word cell snapshot discards any torn pair.
func (tx *Tx) ReadValue(o *Object) (val.Value, error) {
	if idx, ok := tx.wlookup(o); ok {
		return tx.writes[idx].v, nil
	}
	// The heuristic: read the global counter on *every* access; skip
	// validation while it is unchanged.
	if cc := tx.stm.cc.Load(); cc != tx.lastCC {
		if !tx.validate() {
			return val.Value{}, errAbortSnapshot
		}
		tx.lastCC = cc
	}
	m1 := o.meta.Load()
	if locked(m1) {
		return val.Value{}, errAbortContention
	}
	num, box := o.cell.Snapshot()
	if o.meta.Load() != m1 {
		return val.Value{}, errAbortSnapshot
	}
	tx.reads = append(tx.reads, readEntry{obj: o, meta: m1})
	return val.Decode(num, box), nil
}

// validate checks that every read object is unchanged (and unlocked).
func (tx *Tx) validate() bool {
	for _, r := range tx.reads {
		m := r.obj.meta.Load()
		if m != r.meta {
			if _, own := tx.wlookup(r.obj); own && m == r.meta|1 {
				continue // locked by ourselves during commit
			}
			return false
		}
	}
	return true
}

// Write buffers the new value; it becomes visible at commit — the generic
// escape-hatch view of WriteValue.
func (tx *Tx) Write(o *Object, v any) error {
	return tx.WriteValue(o, val.OfAny(v))
}

// WriteValue buffers the new typed value; numeric-lane values never box.
func (tx *Tx) WriteValue(o *Object, v val.Value) error {
	if tx.readOnly {
		return ErrReadOnly
	}
	if v.Kind() == val.KindBoxed {
		tx.boxed = true
	}
	if idx, ok := tx.wlookup(o); ok {
		tx.writes[idx].v = v
		return nil
	}
	tx.wadd(o, v)
	return nil
}

// commit locks the write set, signals progress on the commit counter,
// validates the read set, and installs the new values.
func (tx *Tx) commit() error {
	if len(tx.writes) == 0 {
		// Read-only (or write-free) transactions validated incrementally;
		// one final check makes the snapshot current at commit.
		if !tx.validate() {
			return errAbortValidation
		}
		return nil
	}
	lockedUpTo := -1
	for i := range tx.writes {
		o := tx.writes[i].obj
		m := o.meta.Load()
		if locked(m) || !o.meta.CompareAndSwap(m, m|1) {
			tx.unlock(lockedUpTo)
			return errAbortContention
		}
		lockedUpTo = i
	}
	// Announce the attempted commit: this is what other transactions'
	// heuristics poll.
	tx.stm.cc.Add(1)
	if !tx.validate() {
		tx.unlock(lockedUpTo)
		return errAbortValidation
	}
	for i := range tx.writes {
		w := &tx.writes[i]
		w.obj.cell.Store(w.v)
		w.obj.meta.Store((w.obj.meta.Load() >> 1 << 1) + 2) // version+1, unlocked
	}
	return nil
}

// unlock releases write locks [0..upTo] after a failed commit.
func (tx *Tx) unlock(upTo int) {
	for i := 0; i <= upTo; i++ {
		o := tx.writes[i].obj
		o.meta.Store(o.meta.Load() &^ 1)
	}
}

// Thread is a worker context (API-compatible shape with the core engine).
// It owns the one Tx it recycles — single goroutine only.
type Thread struct {
	stm          *STM
	tx           Tx
	boxedCommits uint64
	aborts       abort.Counts
}

// Thread creates a worker context.
func (s *STM) Thread(id int) *Thread { return &Thread{stm: s} }

// BoxedCommits returns how many of this thread's commits wrote at least one
// escape-hatch (boxed) payload.
func (t *Thread) BoxedCommits() uint64 { return t.boxedCommits }

// AbortCounts returns this thread's aborts classified by reason.
func (t *Thread) AbortCounts() abort.Counts { return t.aborts }

// Run executes fn transactionally, retrying on aborts.
func (t *Thread) Run(fn func(*Tx) error) error { return t.run(false, fn) }

// RunReadOnly executes fn as a read-only transaction (writes rejected).
func (t *Thread) RunReadOnly(fn func(*Tx) error) error { return t.run(true, fn) }

func (t *Thread) run(readOnly bool, fn func(*Tx) error) error {
	tx := &t.tx
	for {
		tx.reset(t.stm, readOnly)
		err := fn(tx)
		if err == nil {
			err = tx.commit()
		}
		if err == nil {
			if tx.boxed {
				t.boxedCommits++
			}
			return nil
		}
		if !errors.Is(err, ErrAborted) {
			return err
		}
		t.aborts.Observe(err)
	}
}
