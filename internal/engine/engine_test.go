package engine

import (
	"strings"
	"testing"
)

func TestRegistryNames(t *testing.T) {
	names := Names()
	for _, want := range []string{
		"lsa/shared", "lsa/tl2ts", "lsa/sharded", "lsa/mmtimer", "lsa/ideal",
		"lsa/extsync", "tl2", "tl2/extsync", "tl2/sharded", "wordstm",
		"rstmval", "norec", "glock",
	} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("backend %q not registered (have %v)", want, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted: %v", names)
		}
	}
}

// TestRegisteredEngineCount is the registration gate CI runs with -race
// -short: a backend whose init forgot to Register (or a registry refactor
// that drops one) fails the build here, not in a bench someone runs later.
func TestRegisteredEngineCount(t *testing.T) {
	const floor = 13
	if names := Names(); len(names) < floor {
		t.Fatalf("only %d engines registered, want ≥ %d: %v", len(names), floor, names)
	}
}

// TestRegisterDuplicatePanics: a second Register under an existing name must
// panic with a message naming the backend — silent overwrites would let two
// init functions fight over a name and benchmark the wrong engine.
func TestRegisterDuplicatePanics(t *testing.T) {
	const name = "test/dup-probe"
	factory := func(Options) (Engine, error) { return nil, nil }
	Register(name, factory)
	defer func() {
		// Remove the probe so registry-iterating tests never see it.
		registryMu.Lock()
		delete(registry, name)
		registryMu.Unlock()
		r := recover()
		if r == nil {
			t.Fatal("duplicate Register must panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, name) {
			t.Errorf("panic message must name the duplicate backend, got %v", r)
		}
	}()
	Register(name, factory)
}

func TestNewUnknownBackend(t *testing.T) {
	_, err := New("no-such-stm", Options{})
	if err == nil {
		t.Fatal("unknown backend must error")
	}
	if !strings.Contains(err.Error(), "tl2") {
		t.Errorf("error should list registered backends: %v", err)
	}
}

func TestEveryBackendRoundTrips(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			eng := MustNew(name, Options{Nodes: 2})
			if eng.Name() != name {
				t.Errorf("Name() = %q, want %q", eng.Name(), name)
			}
			c := eng.NewCell(41)
			th := eng.Thread(0)
			if err := th.Run(func(tx Txn) error {
				return Update(tx, c, func(v int) int { return v + 1 })
			}); err != nil {
				t.Fatal(err)
			}
			var got int
			if err := th.RunReadOnly(func(tx Txn) error {
				var err error
				got, err = Get[int](tx, c)
				return err
			}); err != nil {
				t.Fatal(err)
			}
			if got != 42 {
				t.Errorf("read back %d, want 42", got)
			}
			if s := eng.Stats(); s.Commits < 2 {
				t.Errorf("stats did not count commits: %+v", s)
			}
		})
	}
}

func TestTypedAccessorMismatch(t *testing.T) {
	eng := MustNew("lsa/shared", Options{})
	c := eng.NewCell("a string")
	th := eng.Thread(0)
	err := th.Run(func(tx Txn) error {
		_, err := Get[int](tx, c)
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "holds string") {
		t.Errorf("type mismatch must surface, got %v", err)
	}
}

func TestReadOnlyRejectsWrites(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			eng := MustNew(name, Options{Nodes: 1})
			c := eng.NewCell(0)
			th := eng.Thread(0)
			if err := th.RunReadOnly(func(tx Txn) error {
				return tx.Write(c, 1)
			}); err == nil {
				t.Error("write inside read-only transaction must fail")
			}
		})
	}
}

func TestWordEncoding(t *testing.T) {
	e, err := newWord(Options{Words: 64}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	we := e.(*wordEngine)
	type pair struct{ a, b int }
	cases := []any{0, 1, -1, 12345, -12345, immediateMax - 1, -immediateMax + 1,
		immediateMax, -immediateMax, int(1) << 62, "hello", pair{3, 4}, []int{1, 2}}
	for _, v := range cases {
		w := we.encode(v)
		got := we.decode(w)
		switch want := v.(type) {
		case []int:
			g, ok := got.([]int)
			if !ok || len(g) != len(want) {
				t.Errorf("encode/decode %v → %v", v, got)
			}
		default:
			if got != v {
				t.Errorf("encode/decode %v (%T) → %v (%T)", v, v, got, got)
			}
		}
	}
	// Small ints must stay immediate (no boxing).
	before := len(we.boxes)
	we.encode(7)
	we.encode(-7)
	if len(we.boxes) != before {
		t.Errorf("small ints were boxed: %d → %d boxes", before, len(we.boxes))
	}
}

func TestWordCellExhaustion(t *testing.T) {
	eng, err := newWord(Options{Words: 2}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	eng.NewCell(1)
	eng.NewCell(2)
	defer func() {
		if recover() == nil {
			t.Error("third cell must panic on exhaustion")
		}
	}()
	eng.NewCell(3)
}

func TestCrossEngineCellPanics(t *testing.T) {
	lsa := MustNew("lsa/shared", Options{})
	tl2e := MustNew("tl2", Options{})
	c := lsa.NewCell(0)
	th := tl2e.Thread(0)
	defer func() {
		if recover() == nil {
			t.Error("foreign cell must panic")
		}
	}()
	_ = th.Run(func(tx Txn) error {
		_, err := tx.Read(c)
		return err
	})
}
