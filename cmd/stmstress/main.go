// Command stmstress hammers STM consistency invariants under real
// concurrency, across every registered engine, and exits non-zero on any
// violation. It is the long-running companion to the unit tests: run it for
// minutes or hours to gain confidence in the engines on a particular
// machine.
//
//	stmstress -duration 10s
//	stmstress -duration 1m -workers 8 -engine lsa/extsync
//	stmstress -engine tl2,wordstm,rstmval
//	stmstress -engine norec,glock,tl2/extsync   the value-based backend family
//	stmstress -timebase extsync:5000            LSA core on a custom time base
//
// The workload mixes bank transfers with read-only audits of the conserved
// total, plus a writer/checker pair whose two cells must always sum to
// zero — torn reads, lost updates, and inconsistent snapshots all surface
// as counted violations.
//
// Runtime diagnostics match cmd/lsabench: -cpuprofile/-memprofile/-trace
// write the standard Go profiles, -http serves expvar and pprof while the
// stress runs — useful for watching a multi-hour session without stopping it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/engine"
	"repro/internal/experiments"
)

func main() {
	var (
		duration   = flag.Duration("duration", 5*time.Second, "stress duration per engine")
		workers    = flag.Int("workers", 8, "concurrent workers")
		engFlag    = flag.String("engine", "", "comma-separated engines to stress (default: all registered)")
		tbFlag     = flag.String("timebase", "", "stress the LSA core on this time base instead (counter|tl2counter|mmtimer|ideal|extsync:<dev>)")
		accounts   = flag.Int("accounts", 32, "bank accounts")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		tracePath  = flag.String("trace", "", "write an execution trace to this file")
		httpAddr   = flag.String("http", "", "serve expvar and pprof on this address (e.g. localhost:6060)")
	)
	var opt engine.Options
	opt.BindFlags(flag.CommandLine)
	flag.Parse()
	if opt.Nodes == 0 {
		opt.Nodes = *workers // the flag's 0 default means "match the worker count"
	}

	stopDiag, err := diag.Start(diag.Flags{
		CPUProfile: *cpuProfile, MemProfile: *memProfile, Trace: *tracePath, HTTP: *httpAddr,
	})
	if err != nil {
		fatal(err)
	}

	type target struct {
		name string
		eng  engine.Engine
	}
	var targets []target
	switch {
	case *tbFlag != "" && *engFlag != "":
		fatal(fmt.Errorf("-timebase and -engine are mutually exclusive"))
	case *tbFlag != "":
		tb, err := experiments.NewTimeBase(*tbFlag, *workers)
		if err != nil {
			fatal(err)
		}
		rt, err := core.NewRuntime(core.Config{TimeBase: tb, MaxVersions: opt.MaxVersions})
		if err != nil {
			fatal(err)
		}
		targets = append(targets, target{"lsa(" + *tbFlag + ")", engine.WrapLSA(tb.Name(), rt)})
	default:
		names := engine.Names()
		if *engFlag != "" {
			names = names[:0]
			for _, n := range strings.Split(*engFlag, ",") {
				if n = strings.TrimSpace(n); n != "" {
					names = append(names, n)
				}
			}
		}
		for _, n := range names {
			eng, err := engine.New(n, opt)
			if err != nil {
				fatal(err)
			}
			targets = append(targets, target{n, eng})
		}
	}

	failed := false
	for _, t := range targets {
		if err := stress(t.eng, t.name, *workers, *accounts, *duration); err != nil {
			fmt.Fprintf(os.Stderr, "stmstress: %s: %v\n", t.name, err)
			failed = true
		}
	}
	// Explicit rather than deferred: os.Exit on the failure path would skip
	// a defer, losing the profiles of exactly the runs worth profiling.
	if err := stopDiag(); err != nil {
		fmt.Fprintln(os.Stderr, "stmstress:", err)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// stress runs transfers, audits, and pair-writers concurrently and checks
// every invariant transactionally.
func stress(eng engine.Engine, name string, workers, accounts int, d time.Duration) error {
	const initial = 1000
	cells := make([]engine.Cell, accounts)
	for i := range cells {
		cells[i] = eng.NewCell(initial)
	}
	pairA, pairB := eng.NewCell(0), eng.NewCell(0)

	var stop atomic.Bool
	var violations atomic.Int64
	var txs atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := eng.Thread(id)
			n := 0
			for !stop.Load() {
				n++
				var err error
				switch n % 4 {
				case 0: // transfer
					from, to := (id+n)%accounts, (id*3+n*7+1)%accounts
					if from == to {
						to = (to + 1) % accounts
					}
					err = th.Run(func(tx engine.Txn) error {
						fv, err := engine.Get[int](tx, cells[from])
						if err != nil {
							return err
						}
						tv, err := engine.Get[int](tx, cells[to])
						if err != nil {
							return err
						}
						if err := tx.Write(cells[from], fv-1); err != nil {
							return err
						}
						return tx.Write(cells[to], tv+1)
					})
				case 1: // audit
					err = th.RunReadOnly(func(tx engine.Txn) error {
						sum := 0
						for _, c := range cells {
							v, err := engine.Get[int](tx, c)
							if err != nil {
								return err
							}
							sum += v
						}
						if sum != accounts*initial {
							violations.Add(1)
							return fmt.Errorf("audit: total %d, want %d", sum, accounts*initial)
						}
						return nil
					})
				case 2: // pair writer
					err = th.Run(func(tx engine.Txn) error {
						if err := tx.Write(pairA, n); err != nil {
							return err
						}
						return tx.Write(pairB, -n)
					})
				default: // pair checker
					err = th.Run(func(tx engine.Txn) error {
						av, err := engine.Get[int](tx, pairA)
						if err != nil {
							return err
						}
						bv, err := engine.Get[int](tx, pairB)
						if err != nil {
							return err
						}
						if av+bv != 0 {
							violations.Add(1)
							return fmt.Errorf("torn pair: %d/%d", av, bv)
						}
						return nil
					})
				}
				if err != nil {
					errs <- err
					return
				}
				txs.Add(1)
			}
		}(id)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	close(errs)
	if err, ok := <-errs; ok {
		return err
	}
	if v := violations.Load(); v > 0 {
		return fmt.Errorf("%d invariant violations", v)
	}
	s := eng.Stats()
	fmt.Printf("%-16s ok: %d txs in %v (%.0f tx/s), aborts/attempt=%.4f, helps=%d, extensions=%d\n",
		name, txs.Load(), d, float64(txs.Load())/d.Seconds(), s.AbortRate(), s.Helps, s.Extensions)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stmstress:", err)
	os.Exit(1)
}
