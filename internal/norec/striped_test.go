package norec

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/val"
)

func TestStripedRoundTrip(t *testing.T) {
	s := NewStriped()
	o := NewObject(41)
	th := s.Thread(0)
	if err := th.Run(func(tx *STx) error {
		v, err := tx.Read(o)
		if err != nil {
			return err
		}
		return tx.Write(o, v.(int)+1)
	}); err != nil {
		t.Fatal(err)
	}
	var got any
	if err := th.RunReadOnly(func(tx *STx) error {
		v, err := tx.Read(o)
		got = v
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("read back %v, want 42", got)
	}
}

func TestStripedReadOnlyRejectsWrites(t *testing.T) {
	s := NewStriped()
	o := NewObject(0)
	if err := s.Thread(0).RunReadOnly(func(tx *STx) error {
		return tx.Write(o, 1)
	}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("err = %v, want ErrReadOnly", err)
	}
}

// TestStripedCrossStripeSnapshots hammers the establishment protocol: a
// writer commits {n, −n} into two cells that land in different stripes;
// readers touching the second stripe only after reading the first must
// never observe a sum other than zero — exactly the staleness a per-stripe
// snapshot without cross-stripe re-establishment would admit.
func TestStripedCrossStripeSnapshots(t *testing.T) {
	s := NewStriped()
	a, b := NewObject(0), NewObject(0)
	if stripeIndex(a) == stripeIndex(b) {
		t.Fatal("test objects landed in one stripe; round-robin sid broken")
	}
	var violations atomic.Int64
	var readers, writer sync.WaitGroup
	stop := make(chan struct{})
	writer.Add(1)
	go func() {
		defer writer.Done()
		th := s.Thread(0)
		for n := 1; ; n++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := th.Run(func(tx *STx) error {
				if err := tx.Write(a, n); err != nil {
					return err
				}
				return tx.Write(b, -n)
			}); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(id int) {
			defer readers.Done()
			th := s.Thread(1 + id)
			for i := 0; i < 2000; i++ {
				var av, bv int
				run := th.Run
				if i%2 == 0 {
					run = th.RunReadOnly
				}
				if err := run(func(tx *STx) error {
					v, err := tx.Read(a)
					if err != nil {
						return err
					}
					av = v.(int)
					w, err := tx.Read(b)
					if err != nil {
						return err
					}
					bv = w.(int)
					return nil
				}); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if av+bv != 0 {
					violations.Add(1)
				}
			}
		}(r)
	}
	readers.Wait()
	close(stop)
	writer.Wait()
	if v := violations.Load(); v > 0 {
		t.Fatalf("%d torn cross-stripe snapshots", v)
	}
}

// TestStripedCommitValidationAborts drives one STx by hand: a value its
// read logged changes under it before commit, so the commit must abort —
// and the write stripe's sequence lock must be restored to its exact
// pre-lock value (no writes were published).
func TestStripedCommitValidationAborts(t *testing.T) {
	s := NewStriped()
	o := NewObject(10)
	sink := NewObject(0)
	tx := &STx{}
	tx.reset(s, false)
	if _, err := tx.Read(o); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(sink, 1); err != nil {
		t.Fatal(err)
	}
	// A foreign commit changes o after the read.
	if err := s.Thread(1).Run(func(tx *STx) error { return tx.Write(o, 11) }); err != nil {
		t.Fatal(err)
	}
	before := s.stripes[stripeIndex(sink)].seq.Load()
	if err := tx.commit(); !errors.Is(err, ErrAborted) {
		t.Fatalf("commit = %v, want ErrAborted", err)
	}
	after := s.stripes[stripeIndex(sink)].seq.Load()
	if before != after {
		t.Errorf("aborted commit moved the write stripe: %d → %d", before, after)
	}
	var got any
	if err := s.Thread(2).RunReadOnly(func(tx *STx) error {
		v, err := tx.Read(sink)
		got = v
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("aborted write became visible: sink = %v", got)
	}
}

// TestStripedSilentRestoreCommits: value-based validation must tolerate a
// value that changed and changed back between read and commit.
func TestStripedSilentRestoreCommits(t *testing.T) {
	s := NewStriped()
	o := NewObject(5)
	sink := NewObject(0)
	tx := &STx{}
	tx.reset(s, false)
	if _, err := tx.Read(o); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(sink, 1); err != nil {
		t.Fatal(err)
	}
	th := s.Thread(1)
	if err := th.Run(func(tx *STx) error { return tx.Write(o, 6) }); err != nil {
		t.Fatal(err)
	}
	if err := th.Run(func(tx *STx) error { return tx.Write(o, 5) }); err != nil {
		t.Fatal(err)
	}
	if err := tx.commit(); err != nil {
		t.Fatalf("silently restored value must commit, got %v", err)
	}
}

// TestStripedDisjointCommitsDontShareStripes is the point of the variant:
// commits into different stripes bump different sequence locks.
func TestStripedDisjointCommitsDontShareStripes(t *testing.T) {
	s := NewStriped()
	a, b := NewObject(0), NewObject(0)
	sa, sb := stripeIndex(a), stripeIndex(b)
	if sa == sb {
		t.Fatal("round-robin sids put adjacent objects in one stripe")
	}
	th := s.Thread(0)
	if err := th.Run(func(tx *STx) error { return tx.Write(a, 1) }); err != nil {
		t.Fatal(err)
	}
	if got := s.stripes[sb].seq.Load(); got != 0 {
		t.Errorf("commit into stripe %d moved stripe %d to %d", sa, sb, got)
	}
	if got := s.stripes[sa].seq.Load(); got != 2 {
		t.Errorf("stripe %d sequence = %d, want 2", sa, got)
	}
}

func TestStripedIntLaneWriteBackAllocs(t *testing.T) {
	s := NewStriped()
	o := NewObject(1 << 40)
	th := s.Thread(0)
	step := func() {
		if err := th.Run(func(tx *STx) error {
			v, _, err := readLane(tx, o)
			if err != nil {
				return err
			}
			return tx.WriteValue(o, val.OfInt(int(v)+1))
		}); err != nil {
			t.Fatal(err)
		}
	}
	step()
	if got := testing.AllocsPerRun(200, step); got > 0 {
		t.Errorf("striped int update: %.1f allocs/run, want 0", got)
	}
}

// readLane is a test helper: ReadValue through the numeric lane.
func readLane(tx *STx, o *Object) (int64, bool, error) {
	v, err := tx.ReadValue(o)
	if err != nil {
		return 0, false, err
	}
	n, ok := v.AsInt64()
	return n, ok, nil
}
