package core

import (
	"fmt"
	"sync"

	"repro/internal/timebase"
)

// DefaultMaxVersions is the number of committed versions kept per object
// when the configuration does not specify one. A short history is enough
// for read-only transactions to dodge most concurrent updates without
// holding the whole past alive.
const DefaultMaxVersions = 4

// Config parameterizes a Runtime.
type Config struct {
	// TimeBase supplies timestamps. Required.
	TimeBase timebase.TimeBase

	// Manager arbitrates write-write conflicts. Defaults to an escalating
	// manager that waits a few rounds and then aborts the enemy.
	Manager ContentionManager

	// MaxVersions is the number of committed versions kept per object
	// (≥ 1). 1 yields a single-version STM in which read-only transactions
	// lose their abort-freedom — the §4.3 discussion's configuration.
	MaxVersions int

	// DisableExtension turns off validity-range extension except for the
	// implicit one at commit (TL2's behaviour, §1.2) — an ablation knob.
	DisableExtension bool

	// SnapshotIsolation weakens update transactions from linearizability to
	// snapshot isolation, following the authors' companion work the paper
	// cites as [10] (Riegel, Fetzer, Felber, "Snapshot isolation for
	// software transactional memory", TRANSACT 2006): commits no longer
	// extend the read snapshot to the commit time, so read-write conflicts
	// are tolerated (write skew becomes possible) while write-write
	// conflicts are still prevented by object ownership. Transactions read
	// a consistent snapshot either way.
	SnapshotIsolation bool
}

// Runtime is an instantiated transactional memory: a time base, a conflict
// policy, and version-management settings shared by a set of worker
// threads. Create per-worker Threads with Thread; aggregate statistics with
// Stats after the workers have quiesced.
type Runtime struct {
	tb          timebase.TimeBase
	cm          ContentionManager
	maxVersions int
	disableExt  bool
	si          bool

	mu      sync.Mutex
	threads []*Thread
}

// NewRuntime validates the configuration and builds a runtime.
func NewRuntime(cfg Config) (*Runtime, error) {
	if cfg.TimeBase == nil {
		return nil, fmt.Errorf("core: Config.TimeBase is required")
	}
	if cfg.MaxVersions < 0 {
		return nil, fmt.Errorf("core: MaxVersions must be ≥ 1 (or 0 for default), got %d", cfg.MaxVersions)
	}
	if cfg.MaxVersions == 0 {
		cfg.MaxVersions = DefaultMaxVersions
	}
	if cfg.Manager == nil {
		cfg.Manager = defaultManager{}
	}
	return &Runtime{
		tb:          cfg.TimeBase,
		cm:          cfg.Manager,
		maxVersions: cfg.MaxVersions,
		disableExt:  cfg.DisableExtension,
		si:          cfg.SnapshotIsolation,
	}, nil
}

// MustRuntime is NewRuntime for static configurations; it panics on error.
func MustRuntime(cfg Config) *Runtime {
	rt, err := NewRuntime(cfg)
	if err != nil {
		panic(err)
	}
	return rt
}

// TimeBase returns the runtime's time base.
func (rt *Runtime) TimeBase() timebase.TimeBase { return rt.tb }

// MaxVersions returns the per-object history depth.
func (rt *Runtime) MaxVersions() int { return rt.maxVersions }

// SnapshotIsolation reports whether update transactions commit under
// snapshot isolation instead of linearizability.
func (rt *Runtime) SnapshotIsolation() bool { return rt.si }

// Thread creates the execution context for one worker. id selects the
// worker's clock (for per-node time bases); ids should be dense indices
// 0..N−1. Threads are not safe for concurrent use; create one per
// goroutine.
func (rt *Runtime) Thread(id int) *Thread {
	th := &Thread{rt: rt, id: id, clock: rt.tb.Clock(id)}
	rt.mu.Lock()
	rt.threads = append(rt.threads, th)
	rt.mu.Unlock()
	return th
}

// Stats sums the per-thread counters. Call it only while no thread is
// executing transactions (the per-thread counters are intentionally
// unsynchronized so that collecting statistics cannot perturb the
// scalability the benchmarks measure).
func (rt *Runtime) Stats() Stats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var total Stats
	for _, th := range rt.threads {
		total.add(&th.stats)
	}
	return total
}

// defaultManager waits a few rounds for the enemy to finish, then aborts it.
type defaultManager struct{}

func (defaultManager) Name() string { return "Default" }

func (defaultManager) Resolve(us, enemy TxInfo, n int) Decision {
	if n < 3 {
		return Wait
	}
	return AbortEnemy
}
