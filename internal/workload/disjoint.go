// Package workload provides the transaction mixes used by the experiments
// and benchmarks: the paper's disjoint-update microbenchmark (§4.2), a bank
// with transfers and audits, a sorted-linked-list integer set, a chained
// hash set, a bounded queue, and a read-mostly table. Every workload is
// written against the backend-neutral engine interface, so the same mix
// runs unchanged on any registered STM backend.
package workload

import (
	"fmt"

	"repro/internal/engine"
)

// Disjoint is the §4.2 workload: every transaction updates k objects that
// are guaranteed (by partitioning) to be disjoint from every other thread's
// objects — but the STM does not know that and pays its full synchronization
// cost. The workload therefore isolates the overhead of the time base: no
// conflicts, no contention management, just Start/Open/Commit traffic.
type Disjoint struct {
	// Accesses is k, the number of objects each transaction updates
	// (Figure 2 uses 10, 50, 100).
	Accesses int
	// ObjectsPerWorker is the size of each worker's private partition
	// (default 2×Accesses, so successive transactions rotate through
	// different objects).
	ObjectsPerWorker int

	eng   engine.Engine
	cells [][]engine.Cell
}

// Name implements harness.Workload.
func (d *Disjoint) Name() string { return fmt.Sprintf("disjoint/%d", d.Accesses) }

// Init implements harness.Workload.
func (d *Disjoint) Init(eng engine.Engine, workers int) error {
	if d.Accesses <= 0 {
		return fmt.Errorf("workload: Disjoint.Accesses must be positive, got %d", d.Accesses)
	}
	per := d.ObjectsPerWorker
	if per == 0 {
		per = 2 * d.Accesses
	}
	if per < d.Accesses {
		return fmt.Errorf("workload: partition %d smaller than %d accesses", per, d.Accesses)
	}
	d.eng = eng
	d.cells = make([][]engine.Cell, workers)
	for w := range d.cells {
		d.cells[w] = make([]engine.Cell, per)
		for i := range d.cells[w] {
			d.cells[w][i] = eng.NewCell(0)
		}
	}
	return nil
}

// Step implements harness.Workload: one transaction incrementing k objects
// of the worker's partition, rotating the starting offset. The closure is
// built once per worker and the counters ride the unboxed int lane.
func (d *Disjoint) Step(eng engine.Engine, th engine.Thread, id int) func() error {
	part := d.cells[id]
	offset := 0
	start := 0
	body := func(tx engine.Txn) error {
		for i := 0; i < d.Accesses; i++ {
			c := part[(start+i)%len(part)]
			v, err := engine.Get[int](tx, c)
			if err != nil {
				return err
			}
			if err := engine.Set(tx, c, v+1); err != nil {
				return err
			}
		}
		return nil
	}
	return func() error {
		start = offset
		offset = (offset + d.Accesses) % len(part)
		return th.Run(body)
	}
}

// Total sums all object values — used by tests to check no update was lost.
func (d *Disjoint) Total() (int, error) {
	th := d.eng.Thread(1 << 20)
	total := 0
	err := th.RunReadOnly(func(tx engine.Txn) error {
		total = 0
		for _, part := range d.cells {
			for _, c := range part {
				v, err := engine.Get[int](tx, c)
				if err != nil {
					return err
				}
				total += v
			}
		}
		return nil
	})
	return total, err
}
