// Package val is the typed payload representation shared by every
// value-carrying STM backend in this repository: a small Value struct with
// an unboxed int64 lane plus an `any` escape hatch, and an AtomicCell that
// stores one race-free two-word snapshot of a Value.
//
// Motivation: the engines buffer written payloads in logs and publish them
// in version nodes or cells. With a raw `any` payload every non-small-int
// write costs one boxing allocation per attempt — on the hottest path the
// bench matrix measures, in every backend. Value keeps int-typed payloads
// (the dominant case for the counter workloads) in a plain machine word:
// writes through the int lane allocate nothing, and only genuinely
// non-numeric payloads take the escape hatch.
//
// Canonicalization: OfAny diverts dynamic int and int64 values into the
// numeric lane, so a Value round-trips the exact dynamic type through Load
// regardless of which constructor produced it, and numeric equality checks
// (value-based validation in norec) never touch reflection.
package val

import (
	"reflect"
	"sync/atomic"
)

// Kind discriminates the payload representation of a Value.
type Kind uint8

const (
	// KindBoxed marks an escape-hatch payload carried in the any field
	// (including a nil payload).
	KindBoxed Kind = iota
	// KindInt marks a Go int carried in the numeric lane.
	KindInt
	// KindInt64 marks an int64 carried in the numeric lane.
	KindInt64
)

// Value is one immutable transactional payload: a kind tag, the numeric
// lane, and the boxed escape hatch. The zero Value is a boxed nil.
type Value struct {
	kind Kind
	num  int64
	box  any
}

// OfInt builds a numeric-lane Value holding a Go int. No allocation.
func OfInt(n int) Value { return Value{kind: KindInt, num: int64(n)} }

// OfInt64 builds a numeric-lane Value holding an int64. No allocation.
func OfInt64(n int64) Value { return Value{kind: KindInt64, num: n} }

// OfAny builds a Value from an already-boxed payload, canonicalizing
// dynamic int/int64 values into the numeric lane (the boxing cost was paid
// by the caller; canonicalizing keeps the stored representation uniform so
// lane reads and value comparisons stay cheap).
func OfAny(v any) Value {
	switch n := v.(type) {
	case int:
		return Value{kind: KindInt, num: int64(n)}
	case int64:
		return Value{kind: KindInt64, num: n}
	}
	return Value{kind: KindBoxed, box: v}
}

// Kind returns the payload representation.
func (v Value) Kind() Kind { return v.kind }

// IsNum reports whether the payload lives in the numeric lane.
func (v Value) IsNum() bool { return v.kind != KindBoxed }

// AsInt64 returns the numeric lane widened to int64; ok is false for boxed
// payloads.
func (v Value) AsInt64() (n int64, ok bool) { return v.num, v.kind != KindBoxed }

// Load reconstructs the dynamic value. Numeric-lane payloads are boxed here
// (this is the escape hatch for the generic any-typed Read path); callers
// that can consume the lane directly use AsInt64 instead and never box.
func (v Value) Load() any {
	switch v.kind {
	case KindInt:
		return int(v.num)
	case KindInt64:
		return v.num
	}
	return v.box
}

// Equal is the value-based comparison used by validating engines: numeric
// payloads compare by kind and word, boxed payloads through BoxedEqual.
// Distinct kinds never compare equal (int(5) and int64(5) are different
// dynamic values, exactly as under the pre-typed `any` representation).
func (v Value) Equal(w Value) bool {
	if v.kind != w.kind {
		return false
	}
	if v.kind != KindBoxed {
		return v.num == w.num
	}
	return BoxedEqual(v.box, w.box)
}

// BoxedEqual compares two escape-hatch payloads by value. Values of
// uncomparable types (slices, maps) cannot be checked cheaply and count as
// changed — safe, merely conservative for value-based validation.
// Type.Comparable is a static property, so a comparable-typed value can
// still hold an uncomparable dynamic value in an interface field; the
// recover turns that panic into "changed" as well.
func BoxedEqual(a, b any) (eq bool) {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	ta := reflect.TypeOf(a)
	if ta != reflect.TypeOf(b) || !ta.Comparable() {
		return false
	}
	defer func() {
		if recover() != nil {
			eq = false
		}
	}()
	return a == b
}

// The lane tag sentinels: an AtomicCell's box pointer either points at a
// real boxed payload or is one of these two static markers, in which case
// the payload is the numeric word. Static, so storing a numeric value never
// allocates.
var (
	intTagVal   any = "val: int lane"
	int64TagVal any = "val: int64 lane"
	intTag          = &intTagVal
	int64Tag        = &int64TagVal
)

// TagKind reports whether box is a numeric-lane tag, and which kind.
func TagKind(box *any) (Kind, bool) {
	switch box {
	case intTag:
		return KindInt, true
	case int64Tag:
		return KindInt64, true
	}
	return KindBoxed, false
}

// Decode reconstructs the Value behind a (num, box) snapshot taken from an
// AtomicCell.
func Decode(num int64, box *any) Value {
	switch box {
	case intTag:
		return Value{kind: KindInt, num: num}
	case int64Tag:
		return Value{kind: KindInt64, num: num}
	}
	if box == nil {
		return Value{}
	}
	return Value{kind: KindBoxed, box: *box}
}

// AtomicCell is the shared two-word cell of the value-logging engines: an
// atomic numeric word plus an atomic boxed-payload pointer. Storing a
// numeric Value touches only the two atomics (zero allocations); storing a
// boxed Value publishes one fresh heap snapshot, as the untyped
// representation always did.
//
// The two words are not read or written as one atomic unit. Writers must be
// serialized per cell by the engine's commit protocol (a sequence lock, a
// version-word lock); readers must sandwich Snapshot between loads of the
// engine's consistency word (sequence lock value, version-word pointer) and
// discard the snapshot when it moved — exactly the protocols norec, tl2 and
// rstmval already run for their single value pointer. A torn (num, box)
// pair can therefore be observed, but never survives validation; every
// access is atomic, so the race detector stays quiet.
type AtomicCell struct {
	num atomic.Int64
	box atomic.Pointer[any]
}

// Store publishes v. Only the cell's current exclusive writer may call it.
func (c *AtomicCell) Store(v Value) {
	switch v.kind {
	case KindInt:
		c.num.Store(v.num)
		if c.box.Load() != intTag {
			c.box.Store(intTag)
		}
	case KindInt64:
		c.num.Store(v.num)
		if c.box.Load() != int64Tag {
			c.box.Store(int64Tag)
		}
	default:
		p := new(any)
		*p = v.box
		c.box.Store(p)
	}
}

// Snapshot returns the raw (num, box) pair for logging and later
// validation. Decode turns it back into a Value.
func (c *AtomicCell) Snapshot() (num int64, box *any) {
	return c.num.Load(), c.box.Load()
}
