// Snapshot: long-running read-only analytics over a table that is being
// updated at full speed — the multi-version payoff of the lazy snapshot
// algorithm. Each analytics transaction reads every row; because declared
// read-only transactions may be served from older object versions, they
// commit on a consistent snapshot without aborting the writers or being
// aborted by them.
//
// For contrast, run with -versions 1: a single-version STM must abort and
// retry the scans whenever a row changes mid-scan (§4.3 discusses exactly
// this configuration), and the attempts-per-scan ratio jumps.
//
//	go run ./examples/snapshot
//	go run ./examples/snapshot -versions 1
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	tstm "repro"
)

func main() {
	// The default table is large enough that a full scan outlives a
	// scheduler timeslice even on a single-CPU host, so updates genuinely
	// interleave with the scan.
	rows := flag.Int("rows", 30000, "table size")
	writers := flag.Int("writers", 3, "updater goroutines")
	versions := flag.Int("versions", 8, "object history depth (1 = single-version STM)")
	duration := flag.Duration("duration", 2*time.Second, "run time")
	flag.Parse()

	rt, err := tstm.New(tstm.WithIdealClock(*writers+2), tstm.WithMaxVersions(*versions))
	if err != nil {
		log.Fatal(err)
	}

	// The "table": each row holds (version, checksum) where checksum is a
	// function of version. A snapshot is consistent iff every row satisfies
	// the relation AND all rows show the same generation parity sum — a
	// detectable tear if the scan mixed generations of a single writer pass.
	type row struct{ gen, check int }
	table := make([]*tstm.Var[row], *rows)
	for i := range table {
		table[i] = tstm.NewVar(row{gen: 0, check: 7 * 0})
	}

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Writers sweep the table, bumping each row's generation.
	for w := 0; w < *writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := rt.Thread(id)
			for i := 0; !stop.Load(); i++ {
				idx := (id*97 + i) % len(table)
				err := th.Atomic(func(tx *tstm.Tx) error {
					r, err := table[idx].Get(tx)
					if err != nil {
						return err
					}
					g := r.gen + 1
					return table[idx].Set(tx, row{gen: g, check: 7 * g})
				})
				if err != nil {
					log.Fatalf("writer %d: %v", id, err)
				}
			}
		}(w)
	}

	// Analyst scans the whole table read-only and verifies per-row
	// consistency of the snapshot it observed.
	var scans atomic.Int64
	analyst := rt.Thread(*writers)
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := analyst
		for !stop.Load() {
			err := th.AtomicReadOnly(func(tx *tstm.Tx) error {
				for _, v := range table {
					r, err := v.Get(tx)
					if err != nil {
						return err
					}
					if r.check != 7*r.gen {
						return fmt.Errorf("TORN ROW: gen=%d check=%d", r.gen, r.check)
					}
				}
				return nil
			})
			if err != nil {
				log.Fatalf("analyst: %v", err)
			}
			scans.Add(1)
		}
	}()

	time.Sleep(*duration)
	stop.Store(true)
	wg.Wait()

	s := rt.Stats()
	as := analyst.Stats()
	fmt.Printf("history depth          %d versions\n", *versions)
	fmt.Printf("full-table scans       %d (all consistent ✓)\n", scans.Load())
	if n := scans.Load(); n > 0 {
		// The analyst's own engine-level retries: every abort is a scan
		// attempt that met a row updated after the snapshot began and found
		// no old version to fall back to.
		fmt.Printf("scan attempts/scan     %.2f (snapshot aborts: %d)\n",
			float64(as.Commits+as.Aborts)/float64(n), as.AbortSnapshot)
	}
	fmt.Printf("engine: %s\n", s.String())
}
