package core

import (
	"runtime"

	"repro/internal/timebase"
)

// Thread is one worker's execution context: its clock handle, its
// statistics, and the retry loop driving transaction attempts. A Thread
// must be used by a single goroutine.
type Thread struct {
	rt    *Runtime
	id    int
	clock timebase.Clock
	seq   uint64
	// index is the reusable object→entry map lent to transactions whose
	// access set outgrows the linear-scan fast path. Lazily allocated.
	index map[*Object]int
	// spare is the recycler for heap-allocated write slots (tentative
	// version + locator) whose acquisition loop exited without ever
	// publishing them: such a slot is provably unreachable from any other
	// thread, so the next overflowing write reuses it instead of
	// allocating. One slot suffices — at most one unpublished slot is in
	// flight per thread.
	spare *wslot
	stats Stats
	_     [64]byte // keep each worker's stats off its neighbours' cache lines
}

// stash returns an unpublished heap write slot to the recycler. Callers
// must only pass slots whose locator never won the object's CAS: a
// published slot is reachable from the object (and from helpers) and must
// die with its Tx instead. Fields need no scrubbing — every acquisition
// overwrites them before the slot can be published again.
func (th *Thread) stash(s *wslot) {
	if s != nil {
		th.spare = s
	}
}

// ID returns the worker id the thread was created with.
func (th *Thread) ID() int { return th.id }

// Clock exposes the thread's clock handle (useful for workloads that want
// timestamps consistent with the STM's time base).
func (th *Thread) Clock() timebase.Clock { return th.clock }

// Stats returns a copy of this thread's counters.
func (th *Thread) Stats() Stats { return th.stats }

// Run executes fn as an update-capable transaction, retrying on aborts
// until it commits. fn may be invoked many times and must confine its side
// effects to transactional reads and writes. A non-ErrAborted error from fn
// aborts the transaction and is returned unchanged.
func (th *Thread) Run(fn func(*Tx) error) error {
	return th.run(false, fn)
}

// RunReadOnly executes fn as a declared read-only transaction: writes are
// rejected, and reads may be served from older object versions, which lets
// the transaction commit without any validation (§2.2: a read-only
// transaction can commit iff it has used a consistent snapshot).
func (th *Thread) RunReadOnly(fn func(*Tx) error) error {
	return th.run(true, fn)
}

func (th *Thread) run(readOnly bool, fn func(*Tx) error) error {
	for attempt := 0; ; attempt++ {
		tx := th.newTx(attempt, readOnly)
		err := fn(tx)
		switch {
		case err == nil:
			if err = tx.commit(); err == nil {
				th.stats.Commits++
				if tx.boxed {
					th.stats.BoxedCommits++
				}
				return nil
			}
		case err != ErrAborted:
			// Application-level failure: roll back and propagate.
			tx.abort()
			th.stats.UserAborts++
			return err
		default:
			tx.abort() // release any owned objects before retrying
		}
		th.stats.Aborts++
		if tx.cause == CauseNone {
			th.stats.AbortExternal++
		}
		// Lazy time-base synchronization: a snapshot or validation abort
		// means some version compared as possibly-too-recent for this
		// thread's view of the clock. On time bases with a stale local view
		// (timebase.ShardedCounter), reconcile before retrying — the retry
		// then starts from the freshest cross-shard time, and the
		// reconciliation tick ages the conflicting version.
		if tx.cause == CauseSnapshot || tx.cause == CauseValidation {
			if r, ok := th.clock.(timebase.Reconciler); ok {
				r.Reconcile()
			}
		}
		if attempt > 2 {
			runtime.Gosched()
		}
	}
}

// newTx builds a fresh attempt. The attempt starts with no entry index —
// small access sets are served by a linear scan, and only a transaction
// that outgrows smallAccessSet promotes to the Thread's reusable map
// (helpers never touch it). The Tx — and with it the inline entry array
// and inline write slots — is never reused across attempts, because a
// helper may still be validating a previous attempt's frozen access set
// (or reading its published tentative versions); embedding the per-attempt
// state in the per-attempt Tx is what makes the fast path one allocation
// without reintroducing that hazard.
func (th *Thread) newTx(attempt int, readOnly bool) *Tx {
	th.seq++
	tx := &Tx{
		th:       th,
		rt:       th.rt,
		id:       th.seq<<16 | uint64(th.id&0xffff),
		attempt:  attempt,
		readOnly: readOnly,
	}
	tx.begin()
	return tx
}

// help completes another transaction's two-phase commit with this thread's
// clock (Algorithm 3 line 13).
func (th *Thread) help(w *Tx) {
	th.stats.Helps++
	w.finishCommit(th.clock)
}
