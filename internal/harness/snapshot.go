package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
)

// HostInfo records the machine shape a bench snapshot was taken on. The
// ROADMAP carries a standing caveat that checked-in numbers come from a
// 1-core host where concurrency effects collapse; embedding the core count
// in the snapshot makes that caveat machine-checkable instead of tribal
// knowledge.
type HostInfo struct {
	// NumCPU is runtime.NumCPU() at snapshot time — the usable logical CPUs.
	NumCPU int `json:"num_cpu"`
	// GOMAXPROCS is the scheduler's parallelism limit during the runs.
	GOMAXPROCS int `json:"gomaxprocs"`
}

// Validate rejects host records no real machine produces.
func (h HostInfo) Validate() error {
	if h.NumCPU < 1 {
		return fmt.Errorf("harness: host record with %d CPUs", h.NumCPU)
	}
	if h.GOMAXPROCS < 1 {
		return fmt.Errorf("harness: host record with GOMAXPROCS %d", h.GOMAXPROCS)
	}
	return nil
}

// CurrentHost describes the running process's machine.
func CurrentHost() HostInfo {
	return HostInfo{NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
}

// Snapshot is the on-disk bench snapshot format: a host header plus the
// result records. Snapshots written before the header existed are bare
// Result arrays; ParseSnapshot still accepts those (with a nil Host), while
// everything written going forward carries the header.
type Snapshot struct {
	Host    *HostInfo `json:"host,omitempty"`
	Results []Result  `json:"results"`
}

// ParseSnapshot decodes a bench snapshot in either format: the current
// object form ({"host": ..., "results": [...]}), whose host header is
// required and validated, or the legacy bare-array form ([...]), which
// predates host records and yields Host == nil.
func ParseSnapshot(data []byte) (Snapshot, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var results []Result
		if err := json.Unmarshal(data, &results); err != nil {
			return Snapshot{}, fmt.Errorf("harness: malformed legacy snapshot: %w", err)
		}
		return Snapshot{Results: results}, nil
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("harness: malformed snapshot: %w", err)
	}
	if s.Host == nil {
		return Snapshot{}, fmt.Errorf("harness: snapshot header lacks the host record (rewrite with a current lsabench)")
	}
	if err := s.Host.Validate(); err != nil {
		return Snapshot{}, err
	}
	return s, nil
}
