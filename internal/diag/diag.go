// Package diag wires the standard Go runtime diagnostics into the repo's
// command-line tools: CPU/heap profiles and execution traces behind flags,
// and an optional debug HTTP endpoint serving expvar and net/http/pprof.
// Both cmd/lsabench and cmd/stmstress use it, so a slow or allocation-heavy
// engine can be profiled with the same invocation on either driver.
package diag

import (
	"expvar"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the default mux
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags carries the diagnostics flag values a command collected.
type Flags struct {
	// CPUProfile, MemProfile and Trace are output file paths; empty means
	// the corresponding collector stays off.
	CPUProfile string
	MemProfile string
	Trace      string
	// HTTP is a listen address (e.g. "localhost:6060") for the debug
	// endpoint serving expvar (/debug/vars) and pprof (/debug/pprof/);
	// empty means no server.
	HTTP string
}

// Start begins the requested collectors and returns a stop function that
// must run before the process exits (it finishes the profiles and writes
// the heap profile). The debug HTTP server, if any, runs until exit.
func Start(f Flags) (stop func() error, err error) {
	var cpuFile, traceFile *os.File
	cleanup := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
	}
	if f.CPUProfile != "" {
		cpuFile, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("diag: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			cpuFile = nil
			cleanup()
			return nil, fmt.Errorf("diag: cpu profile: %w", err)
		}
	}
	if f.Trace != "" {
		traceFile, err = os.Create(f.Trace)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("diag: trace: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			traceFile = nil
			cleanup()
			return nil, fmt.Errorf("diag: trace: %w", err)
		}
	}
	if f.HTTP != "" {
		// expvar and net/http/pprof register on http.DefaultServeMux at
		// import time; serving the default mux exposes both.
		go func() {
			if err := http.ListenAndServe(f.HTTP, nil); err != nil {
				fmt.Fprintf(os.Stderr, "diag: http endpoint: %v\n", err)
			}
		}()
	}
	return func() error {
		cleanup()
		if f.MemProfile == "" {
			return nil
		}
		mf, err := os.Create(f.MemProfile)
		if err != nil {
			return fmt.Errorf("diag: mem profile: %w", err)
		}
		defer mf.Close()
		runtime.GC() // settle the heap so the profile reflects live objects
		if err := pprof.WriteHeapProfile(mf); err != nil {
			return fmt.Errorf("diag: mem profile: %w", err)
		}
		return nil
	}, nil
}

// Publish registers fn under name on the expvar endpoint (/debug/vars).
// expvar panics on duplicate registration, so a name that is already taken
// is left alone — callers register once per process. Safe to call whether
// or not an HTTP endpoint was requested.
func Publish(name string, fn func() any) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(fn))
}
