package core

import "repro/internal/timebase"

// Decision is a contention manager's verdict on a write-write conflict.
type Decision int

const (
	// Wait — back off and retry the acquisition; the enemy may finish.
	Wait Decision = iota
	// AbortEnemy — abort the transaction currently owning the object.
	AbortEnemy
	// AbortSelf — abort the acquiring transaction.
	AbortSelf
)

// String renders the decision for diagnostics.
func (d Decision) String() string {
	switch d {
	case Wait:
		return "wait"
	case AbortEnemy:
		return "abort-enemy"
	case AbortSelf:
		return "abort-self"
	default:
		return "invalid"
	}
}

// TxInfo is the read-only view of a transaction a contention manager may
// inspect. All methods are safe to call on a transaction owned by another
// thread.
type TxInfo interface {
	// ID is a unique, monotonically assigned transaction identifier. Lower
	// IDs started earlier (system-wide order of transaction creation).
	ID() uint64
	// Start is the timestamp at which the transaction began (⌊T.R⌋ at
	// start).
	Start() timebase.Timestamp
	// Ops is the number of objects the transaction has opened so far — a
	// proxy for invested work, used by Karma-style managers.
	Ops() int
	// Attempt is how many times this transaction has been retried.
	Attempt() int
}

// ContentionManager arbitrates conflicts between an acquiring transaction
// and the active transaction that owns the object (§2.3: "a configurable
// module whose role is to determine which transaction is allowed to progress
// upon conflict"). The engine only consults it for enemies in the active
// state; committing enemies are helped to completion instead.
//
// Resolve may be called many times for one conflict; n counts the attempts
// so far (starting at 0), letting managers escalate from waiting to
// aborting. Implementations must be safe for concurrent use by multiple
// threads.
type ContentionManager interface {
	Resolve(us, enemy TxInfo, n int) Decision
	Name() string
}
