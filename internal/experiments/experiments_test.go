package experiments

import (
	"strings"
	"testing"
	"time"
)

// Experiment tests use tiny durations: they verify plumbing and shape, not
// absolute performance (the bench suite does the real measurements).

func TestNewTimeBase(t *testing.T) {
	for _, name := range []string{"counter", "tl2counter", "mmtimer", "ideal", "extsync:500"} {
		tb, err := NewTimeBase(name, 4)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if tb.Name() == "" {
			t.Errorf("%s: empty time base name", name)
		}
	}
	if _, err := NewTimeBase("bogus", 4); err == nil {
		t.Error("unknown time base must be rejected")
	}
}

func TestFig1SmallRun(t *testing.T) {
	res, err := Fig1(Fig1Config{Nodes: 4, Rounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Measurement.Rounds) != 5 {
		t.Fatalf("rounds = %d, want 5", len(res.Measurement.Rounds))
	}
	out := res.Table.String()
	if !strings.Contains(out, "max error") {
		t.Errorf("table missing header:\n%s", out)
	}
	// Perfectly synchronized device: offsets within errors.
	for _, rr := range res.Measurement.Rounds {
		if rr.MaxAbsOffset > rr.MaxError {
			t.Errorf("round %d: offset %d > error %d on synchronized device",
				rr.Round, rr.MaxAbsOffset, rr.MaxError)
		}
	}
}

func TestFig2SmallRun(t *testing.T) {
	res, err := Fig2(Fig2Config{
		Sizes:    []int{4},
		Threads:  []int{1, 2},
		Duration: 40 * time.Millisecond,
		Warmup:   10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1 size × 2 bases × 2 thread counts.
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Result.Txs == 0 {
			t.Errorf("%s@%d threads: no transactions", p.TimeBase, p.Threads)
		}
		if p.Result.Stats.AbortConflict != 0 {
			t.Errorf("%s@%d threads: conflicts in disjoint workload", p.TimeBase, p.Threads)
		}
	}
	if !strings.Contains(res.Table.String(), "SharedCounter") {
		t.Error("table missing counter series")
	}
	if !strings.Contains(res.Table.String(), "MMTimer") {
		t.Error("table missing MMTimer series")
	}
}

func TestTL2OptSmallRun(t *testing.T) {
	res, err := TL2Opt(Fig2Config{
		Sizes:    []int{4},
		Threads:  []int{2},
		Duration: 30 * time.Millisecond,
		Warmup:   5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
	names := map[string]bool{}
	for _, p := range res.Points {
		names[p.TimeBase] = true
	}
	if !names["SharedCounter"] || !names["TL2Counter"] {
		t.Errorf("wrong bases measured: %v", names)
	}
}

func TestSyncErrorsSmallRun(t *testing.T) {
	res, err := SyncErrors(SyncErrorsConfig{
		Deviations:  []int64{0, 1000},
		Threads:     4,
		MaxVersions: []int{1, 4},
		Duration:    40 * time.Millisecond,
		Warmup:      10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Throughput <= 0 {
			t.Errorf("dev=%d mv=%d: zero throughput", p.Deviation, p.MaxVersions)
		}
	}
}

func TestBaselinesSmallRun(t *testing.T) {
	// Generous window: on a single-CPU host, short windows can miss a
	// worker's timeslice entirely.
	res, err := Baselines(BaselinesConfig{
		ScanSizes: []int{8},
		Readers:   2,
		Updaters:  2,
		Duration:  250 * time.Millisecond,
		Warmup:    50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 { // 5 drivers × 1 scan size
		t.Fatalf("points = %d, want 5", len(res.Points))
	}
	seen := map[string]bool{}
	for _, p := range res.Points {
		seen[p.STM] = true
		if p.ScansPerS <= 0 {
			t.Errorf("%s: no scans measured", p.STM)
		}
		if p.UpdPerS <= 0 {
			t.Errorf("%s: no updates measured", p.STM)
		}
	}
	for _, want := range []string{"LSA-RT/counter", "LSA-RT/clock", "LSA-word", "TL2", "RSTM-val"} {
		if !seen[want] {
			t.Errorf("missing driver %s", want)
		}
	}
}

func TestBaselinesValidation(t *testing.T) {
	_, err := Baselines(BaselinesConfig{ScanSizes: []int{100}, Objects: 10})
	if err == nil {
		t.Error("scan larger than table must be rejected")
	}
}

func TestFig2SimShapes(t *testing.T) {
	res, err := Fig2Sim(Fig2SimConfig{
		Sizes:      []int{10, 100},
		Threads:    []int{1, 16},
		DurationNs: 20_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 sizes × 2 bases × 2 cpu counts.
	if len(res.Points) != 8 {
		t.Fatalf("points = %d, want 8", len(res.Points))
	}
	get := func(size int, tb string, cpus int) Fig2SimPoint {
		for _, p := range res.Points {
			if p.Size == size && p.TimeBase == tb && p.Threads == cpus {
				return p
			}
		}
		t.Fatalf("missing point %d/%s/%d", size, tb, cpus)
		return Fig2SimPoint{}
	}
	// Paper shapes at 16 CPUs, 10 accesses: clock dominates counter.
	if c, k := get(10, "SimCounter", 16), get(10, "SimMMTimer", 16); k.MTxPerS < 2*c.MTxPerS {
		t.Errorf("10 accesses @16: clock %.3f vs counter %.3f — clock must dominate", k.MTxPerS, c.MTxPerS)
	}
	// Single-thread short transactions: counter faster than clock.
	if c, k := get(10, "SimCounter", 1), get(10, "SimMMTimer", 1); k.MTxPerS >= c.MTxPerS {
		t.Errorf("10 accesses @1: clock %.3f should trail counter %.3f", k.MTxPerS, c.MTxPerS)
	}
}

func TestFig2WordSmallRun(t *testing.T) {
	res, err := Fig2Word(Fig2Config{
		Sizes:    []int{4},
		Threads:  []int{1, 2},
		Duration: 50 * time.Millisecond,
		Warmup:   10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(res.Points))
	}
	for _, p := range res.Points {
		if p.MTxPerS <= 0 {
			t.Errorf("%s@%d: no throughput", p.TimeBase, p.Threads)
		}
	}
	if !strings.Contains(res.Table.String(), "/word") {
		t.Error("table missing word-engine marker")
	}
}

func TestFig1DetectsInjectedOffsets(t *testing.T) {
	// With deliberately unsynchronized node clocks, the measured offsets
	// must be visibly nonzero (the experiment can tell a synchronized
	// device from an unsynchronized one).
	res, err := Fig1(Fig1Config{Nodes: 4, Rounds: 5, OffsetTicks: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Measurement.MaxAbsOffset(); got < 100 {
		t.Errorf("max |offset| = %d ticks; injected ±5000-tick offsets should be visible", got)
	}
}
