package engine

import (
	"fmt"

	"repro/internal/rstmval"
	"repro/internal/val"
)

// The "rstmval" backend: the validating STM with the RSTM commit-counter
// heuristic — consistency by read-set revalidation, gated by a global
// counter of attempted commits.
func init() {
	Register("rstmval", Info{
		Summary: "validating STM with the RSTM commit-counter revalidation heuristic",
		Capabilities: Capabilities{
			IntLane:        true,
			AttemptCounter: true,
		},
	}, func(o Options) (Engine, error) {
		return &rstmEngine{stm: rstmval.New()}, nil
	})
}

type rstmEngine struct {
	stm *rstmval.STM
	counterSet
}

func (e *rstmEngine) Name() string { return "rstmval" }

func (e *rstmEngine) NewCell(initial any) Cell { return rstmval.NewObject(initial) }

// Thread builds the worker context (see adapterThread) with its retry
// closure and bound method values allocated once: per-transaction Run calls
// only swap the fn pointer, so the adapter layer adds zero allocations to
// the native engine's steady state.
func (e *rstmEngine) Thread(id int) Thread {
	th := e.stm.Thread(id)
	t := &adapterThread[*rstmval.Tx]{
		id: id, counters: e.newCounters(),
		run: th.Run, runRO: th.RunReadOnly, boxed: th.BoxedCommits,
		reasons: th.AbortCounts,
	}
	t.step = func(tx *rstmval.Tx) error {
		t.attempts++
		return t.fn(rstmTxn{tx})
	}
	return t
}

type rstmTxn struct {
	tx *rstmval.Tx
}

func (t rstmTxn) Read(c Cell) (any, error)  { return t.tx.Read(rstmCell(c)) }
func (t rstmTxn) Write(c Cell, v any) error { return t.tx.Write(rstmCell(c), v) }

func (t rstmTxn) ReadInt(c Cell) (int64, bool, error) {
	v, err := t.tx.ReadValue(rstmCell(c))
	if err != nil {
		return 0, false, err
	}
	n, ok := v.AsInt64()
	return n, ok, nil
}

func (t rstmTxn) WriteInt(c Cell, v int64) error {
	return t.tx.WriteValue(rstmCell(c), val.OfInt(int(v)))
}

func (t rstmTxn) UpdateInt(c Cell, f func(int64) int64) (bool, error) {
	return updateIntVia(t, c, f)
}

func rstmCell(c Cell) *rstmval.Object {
	o, ok := c.(*rstmval.Object)
	if !ok {
		panic(fmt.Sprintf("engine: cell of type %T used with the rstmval backend", c))
	}
	return o
}
