package timebase

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genTS produces a random timestamp mixing exact, imprecise, and undefined
// clock IDs in a small value range so comparisons of all flavours occur.
// Each clock ID always carries the same deviation — a clock advertises one
// bound — which is what makes ⪰ transitive at the operator level; timestamps
// with an erased clock ID may carry any deviation.
func genTS(r *rand.Rand) Timestamp {
	switch r.Intn(5) {
	case 0:
		return Exact(r.Int63n(100) + 1)
	case 1:
		return Timestamp{TS: r.Int63n(100) + 1, CID: CIDUndefined, Dev: r.Int63n(10)}
	default:
		cid := int32(1 + r.Intn(4))
		return Timestamp{TS: r.Int63n(100) + 1, CID: cid, Dev: int64(2 + 3*cid)}
	}
}

// quickCfg makes testing/quick generate Timestamps via genTS.
var quickCfg = &quick.Config{
	MaxCount: 5000,
	Values: func(args []reflect.Value, r *rand.Rand) {
		for i := range args {
			args[i] = reflect.ValueOf(genTS(r))
		}
	},
}

func TestExactOrdering(t *testing.T) {
	a, b := Exact(5), Exact(7)
	if !b.LaterEq(a) {
		t.Errorf("7 ⪰ 5 must hold for exact timestamps")
	}
	if a.LaterEq(b) {
		t.Errorf("5 ⪰ 7 must not hold")
	}
	if !a.LaterEq(a) {
		t.Errorf("⪰ must be reflexive for exact timestamps")
	}
	if a.PossiblyLater(b) {
		t.Errorf("5 ≿ 7 must not hold: 7 is guaranteed later")
	}
	if !b.PossiblyLater(a) {
		t.Errorf("7 ≿ 5 must hold")
	}
}

func TestInfinitySentinel(t *testing.T) {
	if !Inf.IsInf() {
		t.Fatal("Inf must report IsInf")
	}
	for _, ts := range []Timestamp{Exact(1), Exact(1 << 40), {TS: 3, CID: 2, Dev: 100}} {
		if !Inf.LaterEq(ts) {
			t.Errorf("∞ ⪰ %v must hold", ts)
		}
		if ts.LaterEq(Inf) {
			t.Errorf("%v ⪰ ∞ must not hold", ts)
		}
		if !ts.PossiblyLater(Zero) {
			t.Errorf("%v ≿ 0 must hold", ts)
		}
	}
	if !Inf.LaterEq(Inf) {
		t.Error("∞ ⪰ ∞ must hold")
	}
}

func TestDeviationMasking(t *testing.T) {
	// Two timestamps from different clocks with deviation 5 each: guaranteed
	// order requires a gap larger than the combined deviations.
	a := Timestamp{TS: 10, CID: 1, Dev: 5}
	b := Timestamp{TS: 19, CID: 2, Dev: 5}
	if b.LaterEq(a) {
		t.Errorf("19±5 ⪰ 10±5 must not hold: 19−5 < 10+5")
	}
	if !b.PossiblyLater(a) {
		t.Errorf("19±5 ≿ 10±5 must hold")
	}
	c := Timestamp{TS: 20, CID: 2, Dev: 5}
	if !c.LaterEq(a) {
		t.Errorf("20±5 ⪰ 10±5 must hold: 20−5 ≥ 10+5")
	}
	// Same clock: no deviation applies (Algorithm 5 line 12).
	d := Timestamp{TS: 11, CID: 1, Dev: 5}
	if !d.LaterEq(a) {
		t.Errorf("same-clock 11 ⪰ 10 must hold regardless of deviation")
	}
	// Undefined clock ID: deviation always applies, even to itself.
	u := Timestamp{TS: 10, CID: CIDUndefined, Dev: 5}
	if u.LaterEq(u) {
		t.Errorf("10±5@undefined ⪰ itself must NOT hold: origin unknown")
	}
}

func TestLaterEqExcludesPossiblyLater(t *testing.T) {
	// t2 ⪰ t1 ⟹ ¬(t1 ≿ t2) and t2 ≿ t1 ⟹ ¬(t1 ⪰ t2) (§2.1).
	f := func(t1, t2 Timestamp) bool {
		if t2.LaterEq(t1) && t1.PossiblyLater(t2) {
			return false
		}
		if t2.PossiblyLater(t1) && t1.LaterEq(t2) {
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestLaterEqTransitive(t *testing.T) {
	// ⪰ must be transitive: the STM chains guarantees across versions.
	f := func(a, b, c Timestamp) bool {
		if a.LaterEq(b) && b.LaterEq(c) {
			return a.LaterEq(c)
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// stamped is a timestamp together with the hidden real time at which it was
// read. The ⪰/Max/Min guarantees of §2.1 are statements about these hidden
// real times; the operators themselves are sound but deliberately incomplete
// (they may fail to detect an ordering that same-clock reasoning would give).
type stamped struct {
	ts   Timestamp
	real int64
}

// genStamped models clocks as monotone functions of real time with a
// constant per-clock offset bounded by the advertised deviation, then reads
// one timestamp at a random real time. Exact clocks (CIDExact) have zero
// offset and deviation.
func genStamped(r *rand.Rand, offsets map[int32]int64, devs map[int32]int64) stamped {
	real := r.Int63n(200) + 1
	if r.Intn(4) == 0 {
		return stamped{ts: Exact(real), real: real}
	}
	cid := int32(1 + r.Intn(3))
	dev, ok := devs[cid]
	if !ok {
		dev = r.Int63n(15) + 1
		devs[cid] = dev
		offsets[cid] = r.Int63n(2*dev+1) - dev
	}
	return stamped{ts: Timestamp{TS: real + offsets[cid], CID: cid, Dev: dev}, real: real}
}

func TestLaterEqSoundAgainstHiddenTruth(t *testing.T) {
	// a ⪰ b must imply real(a) ≥ real(b): the operator may miss orderings,
	// but must never invent one.
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		offsets, devs := map[int32]int64{}, map[int32]int64{}
		a := genStamped(r, offsets, devs)
		b := genStamped(r, offsets, devs)
		if a.ts.LaterEq(b.ts) && a.real < b.real {
			t.Fatalf("unsound ⪰: %v (real %d) claimed ⪰ %v (real %d)", a.ts, a.real, b.ts, b.real)
		}
	}
}

func TestMaxSemantics(t *testing.T) {
	// §2.1: if t3 ⪰ max(t1,t2) then t3 is guaranteed later than both t1 and
	// t2 — a statement about hidden real read times, which is weaker than
	// operator-level closure (same-clock comparisons carry information the
	// cross-clock value test cannot reconstruct).
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		offsets, devs := map[int32]int64{}, map[int32]int64{}
		t1 := genStamped(r, offsets, devs)
		t2 := genStamped(r, offsets, devs)
		t3 := genStamped(r, offsets, devs)
		m := Max(t1.ts, t2.ts)
		if t3.ts.LaterEq(m) && (t3.real < t1.real || t3.real < t2.real) {
			t.Fatalf("Max unsound: t3=%v (real %d) ⪰ Max(%v real %d, %v real %d) = %v",
				t3.ts, t3.real, t1.ts, t1.real, t2.ts, t2.real, m)
		}
	}
}

func TestMinSemantics(t *testing.T) {
	// §2.1: if min(t1,t2) ⪰ t3 then t3 is guaranteed earlier than both.
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		offsets, devs := map[int32]int64{}, map[int32]int64{}
		t1 := genStamped(r, offsets, devs)
		t2 := genStamped(r, offsets, devs)
		t3 := genStamped(r, offsets, devs)
		m := Min(t1.ts, t2.ts)
		if m.LaterEq(t3.ts) && (t3.real > t1.real || t3.real > t2.real) {
			t.Fatalf("Min unsound: Min(%v real %d, %v real %d) = %v ⪰ t3=%v (real %d)",
				t1.ts, t1.real, t2.ts, t2.real, m, t3.ts, t3.real)
		}
	}
}

func TestMaxMinExactDegenerate(t *testing.T) {
	// For exact timestamps Max/Min are plain max/min (Algorithm 4).
	if got := Max(Exact(3), Exact(9)); got != Exact(9) {
		t.Errorf("Max(3,9) = %v, want 9", got)
	}
	if got := Min(Exact(3), Exact(9)); got != Exact(3) {
		t.Errorf("Min(3,9) = %v, want 3", got)
	}
	if got := Max(Exact(4), Inf); got != Inf {
		t.Errorf("Max(4,∞) = %v, want ∞", got)
	}
	if got := Min(Exact(4), Inf); got != Exact(4) {
		t.Errorf("Min(4,∞) = %v, want 4", got)
	}
}

func TestMaxMixedClocksErasesCID(t *testing.T) {
	a := Timestamp{TS: 10, CID: 1, Dev: 3}
	b := Timestamp{TS: 11, CID: 2, Dev: 3}
	m := Max(a, b)
	if m.CID != CIDUndefined {
		t.Errorf("Max of overlapping cross-clock timestamps must erase CID, got %v", m)
	}
	if m.Upper() != 14 {
		t.Errorf("Max must keep the larger upper bound 14, got %d", m.Upper())
	}
	n := Min(a, b)
	if n.CID != CIDUndefined {
		t.Errorf("Min of overlapping cross-clock timestamps must erase CID, got %v", n)
	}
	if n.Lower() != 7 {
		t.Errorf("Min must keep the smaller lower bound 7, got %d", n.Lower())
	}
}

func TestPred(t *testing.T) {
	p := Exact(5).Pred()
	if p != Exact(4) {
		t.Errorf("Pred(5) = %v, want 4", p)
	}
	it := Timestamp{TS: 9, CID: 2, Dev: 4}
	if got := it.Pred(); got.TS != 8 || got.CID != 2 || got.Dev != 4 {
		t.Errorf("Pred must only decrement TS, got %v", got)
	}
	for _, bad := range []Timestamp{Inf, Zero} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Pred(%v) must panic", bad)
				}
			}()
			bad.Pred()
		}()
	}
}

func TestStringForms(t *testing.T) {
	cases := map[string]Timestamp{
		"∞":       Inf,
		"0":       Zero,
		"42":      Exact(42),
		"7±2@c3":  {TS: 7, CID: 3, Dev: 2},
		"7±2@c-1": {TS: 7, CID: CIDUndefined, Dev: 2},
	}
	for want, ts := range cases {
		if got := ts.String(); got != want {
			t.Errorf("String(%#v) = %q, want %q", ts, got, want)
		}
	}
}

func TestZeroIsEarliest(t *testing.T) {
	f := func(ts Timestamp) bool {
		// All issued timestamps have TS ≥ 1, so with dev < 1 they are
		// possibly later than Zero; exact ones are guaranteed later.
		if ts.CID == CIDExact && ts.Dev == 0 {
			return ts.LaterEq(Zero)
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestNegInfSentinel(t *testing.T) {
	if !NegInf.IsNegInf() {
		t.Fatal("NegInf must report IsNegInf")
	}
	for _, ts := range []Timestamp{Exact(1), Zero, Inf, {TS: 3, CID: 2, Dev: 100}} {
		if !ts.LaterEq(NegInf) {
			t.Errorf("%v ⪰ -∞ must hold", ts)
		}
		if ts != NegInf && NegInf.LaterEq(ts) {
			t.Errorf("-∞ ⪰ %v must not hold", ts)
		}
	}
	if !NegInf.LaterEq(NegInf) {
		t.Error("-∞ ⪰ -∞ must hold")
	}
	if Inf.String() != "∞" || NegInf.String() != "-∞" {
		t.Errorf("sentinel strings: %q, %q", Inf.String(), NegInf.String())
	}
	if got := Max(NegInf, Exact(5)); got != Exact(5) {
		t.Errorf("Max(-∞, 5) = %v, want 5", got)
	}
	if got := Min(NegInf, Exact(5)); got != NegInf {
		t.Errorf("Min(-∞, 5) = %v, want -∞", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Pred(-∞) must panic")
			}
		}()
		NegInf.Pred()
	}()
}

func TestGenesisReadableUnderLargeDeviation(t *testing.T) {
	// A freshly created object's genesis version (validFrom = -∞) must be
	// readable even by a clock whose value is tiny compared to its
	// deviation — the scenario that motivated the -∞ sentinel.
	early := Timestamp{TS: 3, CID: 1, Dev: 1000}
	if !early.LaterEq(NegInf) {
		t.Error("small-value high-deviation timestamp must be ⪰ -∞")
	}
}
